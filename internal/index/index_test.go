package index

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

func sampleChunks() []ChunkMeta {
	// A 4×4 grid of 10×10 tiles over (X, Y), 100 rows each.
	var out []ChunkMeta
	off := int64(0)
	for gx := 0; gx < 4; gx++ {
		for gy := 0; gy < 4; gy++ {
			out = append(out, ChunkMeta{
				Offset:  off,
				NumRows: 100,
				Min:     []float64{float64(gx * 10), float64(gy * 10)},
				Max:     []float64{float64(gx*10 + 9), float64(gy*10 + 9)},
			})
			off += 100 * 16
		}
	}
	return out
}

func TestBuildAndSearch(t *testing.T) {
	ix, err := Build([]string{"X", "Y"}, sampleChunks())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ix.NumChunks() != 16 {
		t.Errorf("NumChunks = %d", ix.NumChunks())
	}
	if got := ix.Attrs(); len(got) != 2 || got[0] != "X" {
		t.Errorf("Attrs = %v", got)
	}
	q := sqlparser.MustParse("SELECT * FROM T WHERE X >= 0 AND X <= 9 AND Y >= 0 AND Y <= 9")
	hits := ix.Search(query.ExtractRanges(q.Where))
	if len(hits) != 1 || hits[0].Offset != 0 {
		t.Errorf("corner query hits = %v", hits)
	}
	// A query spanning two tiles in X.
	q2 := sqlparser.MustParse("SELECT * FROM T WHERE X >= 5 AND X <= 15 AND Y >= 0 AND Y <= 5")
	if hits := ix.Search(query.ExtractRanges(q2.Where)); len(hits) != 2 {
		t.Errorf("two-tile query hits = %d", len(hits))
	}
	// Unconstrained query hits everything.
	if hits := ix.Search(query.Ranges{}); len(hits) != 16 {
		t.Errorf("full query hits = %d", len(hits))
	}
	// Unsatisfiable ranges hit nothing.
	q3 := sqlparser.MustParse("SELECT * FROM T WHERE X > 5 AND X < 4")
	if hits := ix.Search(query.ExtractRanges(q3.Where)); len(hits) != 0 {
		t.Errorf("empty query hits = %d", len(hits))
	}
	// Multi-interval refinement: X IN (5, 25) must skip the tile 10-19.
	q4 := sqlparser.MustParse("SELECT * FROM T WHERE X IN (5, 25) AND Y <= 9")
	hits4 := ix.Search(query.ExtractRanges(q4.Where))
	if len(hits4) != 2 {
		t.Errorf("IN query hits = %d", len(hits4))
	}
	for _, h := range hits4 {
		if h.Min[0] == 10 || h.Min[0] == 30 {
			t.Errorf("IN query hit wrong tile at X=%g", h.Min[0])
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Error("no attrs accepted")
	}
	if _, err := Build([]string{"X"}, []ChunkMeta{{Min: []float64{0, 0}, Max: []float64{1, 1}}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := Build([]string{"X"}, []ChunkMeta{{Min: []float64{2}, Max: []float64{1}}}); err == nil {
		t.Error("inverted MBR accepted")
	}
	if _, err := Build([]string{"X"}, []ChunkMeta{{Offset: -1, Min: []float64{0}, Max: []float64{1}}}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	chunks := sampleChunks()
	var buf bytes.Buffer
	if err := Write(&buf, []string{"X", "Y"}, chunks); err != nil {
		t.Fatalf("Write: %v", err)
	}
	ix, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if ix.NumChunks() != len(chunks) {
		t.Fatalf("NumChunks = %d", ix.NumChunks())
	}
	got := ix.Chunks()
	for i := range chunks {
		if got[i].Offset != chunks[i].Offset || got[i].NumRows != chunks[i].NumRows ||
			got[i].Min[0] != chunks[i].Min[0] || got[i].Max[1] != chunks[i].Max[1] {
			t.Errorf("chunk %d mismatch: %+v vs %+v", i, got[i], chunks[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chunks.idx")
	if err := WriteFile(path, []string{"X"}, []ChunkMeta{
		{Offset: 0, NumRows: 10, Min: []float64{0}, Max: []float64{5}},
	}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ix, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if ix.NumChunks() != 1 {
		t.Errorf("NumChunks = %d", ix.NumChunks())
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.idx")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadCorrupt(t *testing.T) {
	var good bytes.Buffer
	if err := Write(&good, []string{"X"}, sample1D()); err != nil {
		t.Fatal(err)
	}
	full := good.Bytes()

	// Truncations at every prefix length must error, not panic.
	for n := 0; n < len(full); n += 7 {
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncated to %d bytes accepted", n)
		}
	}
	// Bad magic.
	bad := append([]byte("NOPE"), full[4:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad2 := append([]byte{}, full...)
	bad2[4] = 99
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Error("bad version accepted")
	}
	// Trailing garbage.
	bad3 := append(append([]byte{}, full...), 0xAB)
	if _, err := Read(bytes.NewReader(bad3)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func sample1D() []ChunkMeta {
	var out []ChunkMeta
	for i := 0; i < 5; i++ {
		out = append(out, ChunkMeta{
			Offset: int64(i * 1000), NumRows: 50,
			Min: []float64{float64(i * 10)}, Max: []float64{float64(i*10 + 9)},
		})
	}
	return out
}

// Property: Search agrees with a linear filter over chunks for random
// range queries.
func TestSearchMatchesLinearQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		chunks := make([]ChunkMeta, n)
		for i := range chunks {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			chunks[i] = ChunkMeta{
				Offset: int64(i) * 64, NumRows: int64(rng.Intn(100)),
				Min: []float64{x, y},
				Max: []float64{x + rng.Float64()*10, y + rng.Float64()*10},
			}
		}
		ix, err := Build([]string{"X", "Y"}, chunks)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			lox, loy := rng.Float64()*100, rng.Float64()*100
			hix, hiy := lox+rng.Float64()*30, loy+rng.Float64()*30
			ranges := query.Ranges{
				"X": query.NewSet(query.Interval{Lo: lox, Hi: hix}),
				"Y": query.NewSet(query.Interval{Lo: loy, Hi: hiy}),
			}
			want := map[int64]bool{}
			for _, c := range chunks {
				if c.Min[0] <= hix && c.Max[0] >= lox && c.Min[1] <= hiy && c.Max[1] >= loy {
					want[c.Offset] = true
				}
			}
			got := ix.Search(ranges)
			if len(got) != len(want) {
				return false
			}
			for _, c := range got {
				if !want[c.Offset] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, nil); err == nil {
		t.Error("no attrs accepted")
	}
	if err := Write(&buf, []string{""}, nil); err == nil {
		t.Error("empty attr name accepted")
	}
	if err := Write(&buf, []string{"X"}, []ChunkMeta{{Min: []float64{0, 0}, Max: []float64{1, 1}}}); err == nil {
		t.Error("MBR dims mismatch accepted")
	}
}
