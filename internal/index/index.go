// Package index implements the persisted spatial chunk index used for
// CHUNKED leaf datasets — the descriptor's INDEXFILE. The paper's
// satellite application stores processed data "as a set of chunks ...
// [with] a spatial index built so that chunks that intersect the query
// are searched for quickly" (§2.2). An index file records, for each
// variable-length chunk of a data file, its byte offset, row count, and
// minimum bounding rectangle over the DATAINDEX attributes; queries are
// answered with an STR-bulk-loaded R-tree rebuilt at load time.
package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"datavirt/internal/query"
	"datavirt/internal/rtree"
)

// ChunkMeta describes one chunk of a chunked data file.
type ChunkMeta struct {
	// Offset is the chunk's byte offset in the data file.
	Offset int64
	// NumRows is the number of fixed-width records in the chunk.
	NumRows int64
	// Min and Max bound the chunk's values of the index attributes, in
	// index-attribute order.
	Min, Max []float64
}

// ChunkIndex is a loaded index: the DATAINDEX attribute names, the chunk
// directory, and the R-tree over chunk MBRs.
type ChunkIndex struct {
	attrs  []string
	chunks []ChunkMeta
	rects  []rtree.Rect
	tree   *rtree.Tree
}

// Build constructs an in-memory index over the given chunks. Every
// chunk's MBR must have one dimension per index attribute.
func Build(attrs []string, chunks []ChunkMeta) (*ChunkIndex, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("index: no index attributes")
	}
	rects := make([]rtree.Rect, len(chunks))
	for i, c := range chunks {
		if len(c.Min) != len(attrs) || len(c.Max) != len(attrs) {
			return nil, fmt.Errorf("index: chunk %d MBR has %d/%d dims, want %d",
				i, len(c.Min), len(c.Max), len(attrs))
		}
		r, err := rtree.NewRect(c.Min, c.Max)
		if err != nil {
			return nil, fmt.Errorf("index: chunk %d: %w", i, err)
		}
		if c.Offset < 0 || c.NumRows < 0 {
			return nil, fmt.Errorf("index: chunk %d has negative offset or row count", i)
		}
		rects[i] = r
	}
	tree, err := rtree.Build(rects)
	if err != nil {
		return nil, err
	}
	return &ChunkIndex{attrs: attrs, chunks: chunks, rects: rects, tree: tree}, nil
}

// Attrs returns the index attribute names.
func (ix *ChunkIndex) Attrs() []string { return append([]string(nil), ix.attrs...) }

// NumChunks returns the number of indexed chunks.
func (ix *ChunkIndex) NumChunks() int { return len(ix.chunks) }

// Chunks returns all chunk metadata (do not mutate).
func (ix *ChunkIndex) Chunks() []ChunkMeta { return ix.chunks }

// Search returns the chunks whose MBR may contain rows satisfying the
// per-attribute constraint sets. It is the generated "index function"
// for chunked layouts: a bounding-box R-tree probe refined by exact
// interval-set overlap per attribute.
func (ix *ChunkIndex) Search(ranges query.Ranges) []ChunkMeta {
	qmin := make([]float64, len(ix.attrs))
	qmax := make([]float64, len(ix.attrs))
	sets := make([]query.Set, len(ix.attrs))
	for d, a := range ix.attrs {
		s := ranges.Get(a)
		sets[d] = s
		if s.Empty() {
			return nil
		}
		ivs := s.Intervals()
		lo, hi := ivs[0].Lo, ivs[len(ivs)-1].Hi
		if math.IsInf(lo, -1) {
			lo = -math.MaxFloat64
		}
		if math.IsInf(hi, 1) {
			hi = math.MaxFloat64
		}
		qmin[d], qmax[d] = lo, hi
	}
	q := rtree.Rect{Min: qmin, Max: qmax}
	var out []ChunkMeta
	ix.tree.Search(q, ix.rects, func(i int) bool {
		c := ix.chunks[i]
		for d, s := range sets {
			if !s.Overlaps(query.Interval{Lo: c.Min[d], Hi: c.Max[d]}) {
				return true // refine away; continue search
			}
		}
		out = append(out, c)
		return true
	})
	return out
}

// File format:
//
//	magic "DVIX" | version u16 | nattrs u16
//	nattrs × { nameLen u16 | name bytes }
//	nchunks u64
//	nchunks × { offset i64 | numRows i64 | nattrs × (min f64, max f64) }
//
// All integers little-endian.
var magic = [4]byte{'D', 'V', 'I', 'X'}

const version = 1

// Write serializes the index's chunk directory.
func Write(w io.Writer, attrs []string, chunks []ChunkMeta) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if len(attrs) == 0 || len(attrs) > 0xFFFF {
		return fmt.Errorf("index: bad attribute count %d", len(attrs))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(attrs))); err != nil {
		return err
	}
	for _, a := range attrs {
		if len(a) == 0 || len(a) > 0xFFFF {
			return fmt.Errorf("index: bad attribute name %q", a)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(a))); err != nil {
			return err
		}
		if _, err := bw.WriteString(a); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(chunks))); err != nil {
		return err
	}
	for i, c := range chunks {
		if len(c.Min) != len(attrs) || len(c.Max) != len(attrs) {
			return fmt.Errorf("index: chunk %d MBR dims mismatch", i)
		}
		if err := binary.Write(bw, binary.LittleEndian, c.Offset); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, c.NumRows); err != nil {
			return err
		}
		for d := range attrs {
			if err := binary.Write(bw, binary.LittleEndian, c.Min[d]); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, c.Max[d]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the index to path, creating or truncating it.
func WriteFile(path string, attrs []string, chunks []ChunkMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, attrs, chunks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses an index file and builds the in-memory R-tree.
func Read(r io.Reader) (*ChunkIndex, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("index: bad magic %q", m[:])
	}
	var ver, nattrs uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("index: unsupported version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &nattrs); err != nil {
		return nil, err
	}
	if nattrs == 0 {
		return nil, fmt.Errorf("index: zero attributes")
	}
	attrs := make([]string, nattrs)
	for i := range attrs {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("index: reading attribute name: %w", err)
		}
		attrs[i] = string(buf)
	}
	var nchunks uint64
	if err := binary.Read(br, binary.LittleEndian, &nchunks); err != nil {
		return nil, err
	}
	const maxChunks = 1 << 28 // sanity cap against corrupt headers
	if nchunks > maxChunks {
		return nil, fmt.Errorf("index: implausible chunk count %d", nchunks)
	}
	chunks := make([]ChunkMeta, nchunks)
	for i := range chunks {
		c := &chunks[i]
		if err := binary.Read(br, binary.LittleEndian, &c.Offset); err != nil {
			return nil, fmt.Errorf("index: chunk %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &c.NumRows); err != nil {
			return nil, fmt.Errorf("index: chunk %d: %w", i, err)
		}
		c.Min = make([]float64, nattrs)
		c.Max = make([]float64, nattrs)
		for d := 0; d < int(nattrs); d++ {
			if err := binary.Read(br, binary.LittleEndian, &c.Min[d]); err != nil {
				return nil, fmt.Errorf("index: chunk %d: %w", i, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &c.Max[d]); err != nil {
				return nil, fmt.Errorf("index: chunk %d: %w", i, err)
			}
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("index: trailing bytes after chunk directory")
	}
	return Build(attrs, chunks)
}

// ReadFile loads the index at path.
func ReadFile(path string) (*ChunkIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}
