package filter

import (
	"math"
	"testing"
)

func TestBuiltins(t *testing.T) {
	r := NewRegistry()
	speed, err := r.Lookup("speed", 3)
	if err != nil {
		t.Fatalf("Lookup(speed): %v", err)
	}
	if got := speed.Fn([]float64{3, 4, 0}); got != 5 {
		t.Errorf("SPEED(3,4,0) = %g", got)
	}
	dist, err := r.Lookup("DISTANCE", 2)
	if err != nil {
		t.Fatalf("Lookup(DISTANCE): %v", err)
	}
	if got := dist.Fn([]float64{6, 8}); got != 10 {
		t.Errorf("DISTANCE(6,8) = %g", got)
	}
	mag, _ := r.Lookup("MAGNITUDE", 1)
	if got := mag.Fn([]float64{-2.5}); got != 2.5 {
		t.Errorf("MAGNITUDE(-2.5) = %g", got)
	}
	mn, _ := r.Lookup("MINOF", 3)
	if got := mn.Fn([]float64{3, -1, 2}); got != -1 {
		t.Errorf("MINOF = %g", got)
	}
	mx, _ := r.Lookup("MAXOF", 3)
	if got := mx.Fn([]float64{3, -1, 2}); got != 3 {
		t.Errorf("MAXOF = %g", got)
	}
}

func TestArityChecks(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup("MAGNITUDE", 2); err == nil {
		t.Error("MAGNITUDE with 2 args accepted")
	}
	if _, err := r.Lookup("SPEED", 0); err == nil {
		t.Error("SPEED with 0 args accepted")
	}
	if _, err := r.Lookup("NOPE", 1); err == nil {
		t.Error("unknown filter accepted")
	}
}

func TestRegister(t *testing.T) {
	r := NewRegistry()
	err := r.Register(Func{
		Name: "HALF", MinArgs: 1, MaxArgs: 1,
		Fn: func(a []float64) float64 { return a[0] / 2 },
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	f, err := r.Lookup("half", 1)
	if err != nil || f.Fn([]float64{8}) != 4 {
		t.Errorf("HALF lookup/eval failed: %v", err)
	}
	// Duplicate (case-insensitive).
	if err := r.Register(Func{Name: "speed", MinArgs: 1, MaxArgs: 1, Fn: func(a []float64) float64 { return 0 }}); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Invalid registrations.
	if err := r.Register(Func{Name: "", Fn: func(a []float64) float64 { return 0 }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(Func{Name: "X", Fn: nil}); err == nil {
		t.Error("nil body accepted")
	}
	if err := r.Register(Func{Name: "Y", MinArgs: 3, MaxArgs: 1, Fn: func(a []float64) float64 { return 0 }}); err == nil {
		t.Error("inverted arg bounds accepted")
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) < 5 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestEuclideanSingle(t *testing.T) {
	r := NewRegistry()
	f, err := r.Lookup("SPEED", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Fn([]float64{-7}); got != 7 {
		t.Errorf("SPEED(-7) = %g", got)
	}
	if got := f.Fn([]float64{0}); got != 0 || math.Signbit(got) {
		t.Errorf("SPEED(0) = %g", got)
	}
}
