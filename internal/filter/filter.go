// Package filter implements STORM's filtering service primitives: the
// registry of user-defined filter functions that the query language's
// Filter(<Data Element>) clause invokes, e.g. the paper's
// SPEED(OILVX, OILVY, OILVZ) <= 30.0. Filters are pure numeric functions
// over attribute values of a single row; they exist because some
// application-specific selections "are difficult to express with simple
// comparison operations" (paper §2.1).
package filter

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Func is a registered filter function.
type Func struct {
	// Name is the case-insensitive invocation name.
	Name string
	// MinArgs and MaxArgs bound the accepted argument count; MaxArgs < 0
	// means unbounded.
	MinArgs, MaxArgs int
	// Fn computes the filter value.
	Fn func(args []float64) float64
	// Doc is a one-line description.
	Doc string
}

// Registry maps filter names to functions. The zero value is empty and
// ready to use; NewRegistry returns one preloaded with the built-ins.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func //dvlint:guardedby mu
}

// NewRegistry returns a registry preloaded with the built-in filters
// (SPEED, DISTANCE, MAGNITUDE, MINOF, MAXOF).
func NewRegistry() *Registry {
	r := &Registry{}
	for _, f := range builtins {
		if err := r.Register(f); err != nil {
			panic(err) // built-ins are statically correct
		}
	}
	return r
}

// Register adds a filter. Re-registering an existing name fails.
func (r *Registry) Register(f Func) error {
	if f.Name == "" || f.Fn == nil {
		return fmt.Errorf("filter: function must have a name and a body")
	}
	if f.MinArgs < 0 || (f.MaxArgs >= 0 && f.MaxArgs < f.MinArgs) {
		return fmt.Errorf("filter: %s: invalid arg bounds [%d, %d]", f.Name, f.MinArgs, f.MaxArgs)
	}
	key := strings.ToUpper(f.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = make(map[string]Func)
	}
	if _, dup := r.funcs[key]; dup {
		return fmt.Errorf("filter: %s already registered", f.Name)
	}
	r.funcs[key] = f
	return nil
}

// Lookup resolves a filter by name (case-insensitive) and validates the
// argument count.
func (r *Registry) Lookup(name string, nargs int) (Func, error) {
	r.mu.RLock()
	f, ok := r.funcs[strings.ToUpper(name)]
	r.mu.RUnlock()
	if !ok {
		return Func{}, fmt.Errorf("filter: unknown function %s", name)
	}
	if nargs < f.MinArgs || (f.MaxArgs >= 0 && nargs > f.MaxArgs) {
		return Func{}, fmt.Errorf("filter: %s: got %d args, want %d..%s",
			f.Name, nargs, f.MinArgs, maxStr(f.MaxArgs))
	}
	return f, nil
}

// Names returns the registered filter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for _, f := range r.funcs {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}

func maxStr(m int) string {
	if m < 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", m)
}

func euclidean(args []float64) float64 {
	s := 0.0
	for _, a := range args {
		s += a * a
	}
	return math.Sqrt(s)
}

var builtins = []Func{
	{
		Name: "SPEED", MinArgs: 1, MaxArgs: -1, Fn: euclidean,
		Doc: "Euclidean norm of the velocity components (paper's SPEED(OILVX,OILVY,OILVZ))",
	},
	{
		Name: "DISTANCE", MinArgs: 1, MaxArgs: -1, Fn: euclidean,
		Doc: "Euclidean distance from the origin (paper's DISTANCE(X,Y,Z))",
	},
	{
		Name: "MAGNITUDE", MinArgs: 1, MaxArgs: 1,
		Fn:  func(args []float64) float64 { return math.Abs(args[0]) },
		Doc: "absolute value",
	},
	{
		Name: "MINOF", MinArgs: 1, MaxArgs: -1,
		Fn: func(args []float64) float64 {
			m := args[0]
			for _, a := range args[1:] {
				m = math.Min(m, a)
			}
			return m
		},
		Doc: "minimum of the arguments",
	},
	{
		Name: "MAXOF", MinArgs: 1, MaxArgs: -1,
		Fn: func(args []float64) float64 {
			m := args[0]
			for _, a := range args[1:] {
				m = math.Max(m, a)
			}
			return m
		},
		Doc: "maximum of the arguments",
	},
}
