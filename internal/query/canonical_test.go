package query

import (
	"math"
	"strings"
	"testing"

	"datavirt/internal/sqlparser"
)

func canonRanges(t *testing.T, where string) (Ranges, string) {
	t.Helper()
	sql := "SELECT * FROM T"
	if where != "" {
		sql += " WHERE " + where
	}
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	r := ExtractRanges(q.Where)
	return r, string(r.AppendCanonical(nil))
}

func TestCanonicalEquivalences(t *testing.T) {
	equal := [][2]string{
		{"y < 10 AND x > 2", "x > 2 AND y < 10"},   // conjunct order
		{"x BETWEEN 1 AND 2", "x >= 1 AND x <= 2"}, // sugar
		{"x IN (1, 2)", "x = 2 OR x = 1"},          // IN vs OR, order
		{"NOT x < 3", "x >= 3"},                    // negation pushdown
		{"x > 2 AND (y < 5 OR y >= 5)", "x > 2"},   // full set dropped
		{"x = 0", "x = -0.0"},                      // -0 == +0
		{"x > 1 AND x > 2", "x > 2"},               // intersection
		{"x < 1 OR x < 2", "x < 2"},                // union merge
		{"x = 1 OR y = 2", "x = 3 OR y = 4"},       // OR across attrs constrains nothing
		{"x >= 1 AND x <= 2 AND x >= 1", "x BETWEEN 1 AND 2"},
	}
	for _, pair := range equal {
		_, a := canonRanges(t, pair[0])
		_, b := canonRanges(t, pair[1])
		if a != b {
			t.Errorf("canonical(%q) = %q != canonical(%q) = %q", pair[0], a, pair[1], b)
		}
	}
	distinct := [][2]string{
		{"x > 2", "x >= 2"},           // open vs closed
		{"x > 2", "y > 2"},            // attribute identity
		{"x > 2", "x > 2.0000001"},    // nearby floats
		{"x = 1", "x IN (1, 2)"},      // point vs pair
		{"x > 2 AND y < 1", "x > 2"},  // extra constraint
		{"x < 1 AND x > 2", "x = 99"}, // both unsatisfiable but on different sets? no — see below
	}
	for _, pair := range distinct[:5] {
		_, a := canonRanges(t, pair[0])
		_, b := canonRanges(t, pair[1])
		if a == b {
			t.Errorf("canonical(%q) == canonical(%q) = %q; want distinct", pair[0], pair[1], a)
		}
	}
	// Two unsatisfiable constraints on the same attribute are pointwise
	// equal (both empty sets on x) and must collide.
	_, a := canonRanges(t, "x < 1 AND x > 2")
	_, b := canonRanges(t, "x = 1 AND x = 2")
	if a != b {
		t.Errorf("empty sets on x diverge: %q vs %q", a, b)
	}
}

func TestCanonicalIntervalNormalization(t *testing.T) {
	// Infinite endpoints encode as open regardless of the stored flag.
	closedInf := Interval{Lo: math.Inf(-1), Hi: 5, HiOpen: true}
	openInf := Interval{Lo: math.Inf(-1), LoOpen: true, Hi: 5, HiOpen: true}
	if got, want := string(closedInf.AppendCanonical(nil)), string(openInf.AppendCanonical(nil)); got != want {
		t.Errorf("infinite endpoint: %q vs %q", got, want)
	}
	// Signed zero endpoints collapse.
	negz := Interval{Lo: math.Copysign(0, -1), Hi: math.Copysign(0, -1)}
	posz := Interval{Lo: 0, Hi: 0}
	if got, want := string(negz.AppendCanonical(nil)), string(posz.AppendCanonical(nil)); got != want {
		t.Errorf("signed zero: %q vs %q", got, want)
	}
}

func TestCanonicalInjectiveOnNames(t *testing.T) {
	// Length prefixes keep adversarial attribute names from colliding:
	// {"a=b": S} must not encode like {"a": S, "b": S} or similar.
	s := NewSet(Point(1))
	a := Ranges{"ab": s}
	b := Ranges{"a": s, "b": s}
	if got, other := string(a.AppendCanonical(nil)), string(b.AppendCanonical(nil)); got == other {
		t.Errorf("name boundaries ambiguous: %q", got)
	}
	if enc := string(a.AppendCanonical(nil)); !strings.Contains(enc, "2:ab") {
		t.Errorf("missing length prefix: %q", enc)
	}
}
