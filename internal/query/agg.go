// Aggregate planning and partial-aggregate state for push-down
// execution. A parsed aggregate query compiles to an AggPlan; every
// execution site (a local run, or each cluster leg) feeds matching rows
// into an AggState, which holds per-group partial accumulators. Partials
// are mergeable and wire-encodable (the cluster's 'A' frames), and by
// construction — exact integer arithmetic, error-free float summation
// (ExactSum), commutative min/max — the merged result is value-identical
// to a single-node pass no matter how rows were partitioned across legs.
//
// Semantics: the system has no NULLs, so COUNT(x) == COUNT(*) and every
// accumulator in a group observes every row of the group (one count per
// group suffices). A query matching zero rows yields zero result rows —
// including global aggregates, where SQL would return one row of NULLs —
// which keeps local, cluster, and all-blocks-skipped executions
// identical. SUM over integral attributes uses wrapping int64 arithmetic
// (commutative, so still partition-independent).

package query

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

// accKind selects the accumulator representation of one aggregate item.
type accKind int

const (
	accCount accKind = iota // COUNT: the shared group count
	accInt                  // SUM/MIN/MAX/AVG over an integral attribute
	accFloat                // MIN/MAX over a floating attribute
	accExact                // SUM/AVG over a floating attribute (ExactSum)
)

// AggSpec is one compiled aggregate select item.
type AggSpec struct {
	Func    sqlparser.AggFunc
	Col     string      // input attribute; empty for COUNT(*)
	InKind  schema.Kind // Invalid for COUNT(*)
	OutKind schema.Kind
	acc     accKind
}

// AggKey is one compiled GROUP BY key.
type AggKey struct {
	Col  string
	Kind schema.Kind
}

// AggPlan is a compiled aggregate query: grouping keys, aggregate
// accumulator specs, and the mapping from both onto the output columns.
type AggPlan struct {
	Keys []AggKey
	Aggs []AggSpec
	// out maps output column i to its source: out[i] >= 0 indexes Aggs,
	// out[i] < 0 indexes Keys as -out[i]-1.
	out       []int
	labels    []string
	outSchema *schema.Schema

	// Input positions resolved by Bind, in Keys/Aggs order.
	keyIdx []int
	aggIdx []int
	bound  bool
}

// BuildAggPlan compiles the aggregate shape of a parsed query against
// the table schema. The query must be an aggregate query (q.Aggregate()).
func BuildAggPlan(q *sqlparser.Query, sch *schema.Schema) (*AggPlan, error) {
	if !q.Aggregate() {
		return nil, fmt.Errorf("query: not an aggregate query")
	}
	p := &AggPlan{}
	keyPos := map[string]int{}
	for _, k := range q.GroupBy {
		kind, ok := sch.Kind(k)
		if !ok {
			return nil, fmt.Errorf("query: table %s has no attribute %q", sch.Name(), k)
		}
		if _, dup := keyPos[k]; dup {
			return nil, fmt.Errorf("query: duplicate GROUP BY column %s", k)
		}
		keyPos[k] = len(p.Keys)
		p.Keys = append(p.Keys, AggKey{Col: k, Kind: kind})
	}
	var attrs []schema.Attribute
	seenLabel := map[string]bool{}
	for _, it := range q.Items {
		label := it.String()
		if seenLabel[label] {
			return nil, fmt.Errorf("query: duplicate select item %s", label)
		}
		seenLabel[label] = true
		if it.Agg == sqlparser.AggNone {
			ki, ok := keyPos[it.Col]
			if !ok {
				return nil, fmt.Errorf("query: column %s in an aggregate select list must appear in GROUP BY", it.Col)
			}
			p.out = append(p.out, -ki-1)
			p.labels = append(p.labels, label)
			attrs = append(attrs, schema.Attribute{Name: label, Kind: p.Keys[ki].Kind})
			continue
		}
		spec := AggSpec{Func: it.Agg, Col: it.Col}
		if it.Star {
			if it.Agg != sqlparser.AggCount {
				return nil, fmt.Errorf("query: %s(*) is not supported", it.Agg)
			}
		} else {
			kind, ok := sch.Kind(it.Col)
			if !ok {
				return nil, fmt.Errorf("query: table %s has no attribute %q", sch.Name(), it.Col)
			}
			spec.InKind = kind
		}
		switch it.Agg {
		case sqlparser.AggCount:
			spec.OutKind, spec.acc = schema.Long, accCount
		case sqlparser.AggSum:
			if spec.InKind.Integral() {
				spec.OutKind, spec.acc = schema.Long, accInt
			} else {
				spec.OutKind, spec.acc = schema.Double, accExact
			}
		case sqlparser.AggMin, sqlparser.AggMax:
			spec.OutKind = spec.InKind
			if spec.InKind.Integral() {
				spec.acc = accInt
			} else {
				spec.acc = accFloat
			}
		case sqlparser.AggAvg:
			spec.OutKind = schema.Double
			if spec.InKind.Integral() {
				spec.acc = accInt
			} else {
				spec.acc = accExact
			}
		default:
			return nil, fmt.Errorf("query: unknown aggregate %v", it.Agg)
		}
		p.out = append(p.out, len(p.Aggs))
		p.labels = append(p.labels, label)
		attrs = append(attrs, schema.Attribute{Name: label, Kind: spec.OutKind})
		p.Aggs = append(p.Aggs, spec)
	}
	outSchema, err := schema.New(sch.Name(), attrs)
	if err != nil {
		return nil, fmt.Errorf("query: aggregate output schema: %w", err)
	}
	p.outSchema = outSchema
	return p, nil
}

// Labels returns the output column labels in select order (the rendered
// select items, e.g. "COUNT(*)").
func (p *AggPlan) Labels() []string { return p.labels }

// OutSchema returns the schema of the aggregate result rows.
func (p *AggPlan) OutSchema() *schema.Schema { return p.outSchema }

// InputColumns returns the distinct stored attributes the aggregation
// reads (group keys plus aggregate inputs), in first-appearance order.
func (p *AggPlan) InputColumns() []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, k := range p.Keys {
		add(k.Col)
	}
	for _, a := range p.Aggs {
		add(a.Col)
	}
	return out
}

// Bind resolves the plan's input attributes to positions in the working
// row/batch layout. It must be called once before building AggStates
// that observe rows or batches (merging encoded partials needs no
// binding beyond the plan shape).
func (p *AggPlan) Bind(lookup ColumnLookup) error {
	p.keyIdx = make([]int, len(p.Keys))
	for i, k := range p.Keys {
		idx, ok := lookup(k.Col)
		if !ok {
			return fmt.Errorf("query: unknown attribute %q", k.Col)
		}
		p.keyIdx[i] = idx
	}
	p.aggIdx = make([]int, len(p.Aggs))
	for i, a := range p.Aggs {
		if a.Col == "" {
			p.aggIdx[i] = -1
			continue
		}
		idx, ok := lookup(a.Col)
		if !ok {
			return fmt.Errorf("query: unknown attribute %q", a.Col)
		}
		p.aggIdx[i] = idx
	}
	p.bound = true
	return nil
}

// aggAcc is one aggregate item's accumulator within one group. Which
// field is live depends on the spec's accKind.
type aggAcc struct {
	i int64
	f float64
	x ExactSum
}

// aggGroup is the partial state of one group.
type aggGroup struct {
	keys  []schema.Value // canonical key values, GROUP BY order
	count int64
	accs  []aggAcc
}

// AggState accumulates per-group partial aggregates for one plan. It is
// not safe for concurrent use; parallel workers each hold their own
// state and Merge at the end.
type AggState struct {
	plan   *AggPlan
	groups map[string]*aggGroup
	keyBuf []byte
}

// NewAggState returns an empty partial-aggregate state for the plan.
func NewAggState(plan *AggPlan) *AggState {
	return &AggState{
		plan:   plan,
		groups: make(map[string]*aggGroup),
		keyBuf: make([]byte, 8*len(plan.Keys)),
	}
}

// Groups returns the number of groups currently held.
func (s *AggState) Groups() int { return len(s.groups) }

// canonFloat canonicalizes a float64 for group-key identity: -0 folds
// into +0 and every NaN into one bit pattern, so equal-comparing keys
// land in the same group on every leg.
func canonFloat(f float64) float64 {
	if f != f {
		return math.NaN()
	}
	if f == 0 {
		return 0
	}
	return f
}

// group finds or creates the group for the canonical key bits currently
// in s.keyBuf, with key values built by mk on a miss.
func (s *AggState) group(mk func() []schema.Value) *aggGroup {
	if g, ok := s.groups[string(s.keyBuf)]; ok {
		return g
	}
	g := &aggGroup{keys: mk(), accs: make([]aggAcc, len(s.plan.Aggs))}
	s.groups[string(s.keyBuf)] = g
	return g
}

// ObserveBatch folds the selected rows of a batch into the state. The
// batch's columns use the layout the plan was bound against; integral
// key and aggregate-input columns must have their I vectors filled.
func (s *AggState) ObserveBatch(b *Batch, sel []int32) {
	p := s.plan
	for _, r := range sel {
		for ki, idx := range p.keyIdx {
			c := &b.Cols[idx]
			var bits uint64
			if c.Kind.Integral() {
				bits = uint64(c.I[r])
			} else {
				bits = math.Float64bits(canonFloat(c.F[r]))
			}
			binary.LittleEndian.PutUint64(s.keyBuf[8*ki:], bits)
		}
		g := s.group(func() []schema.Value {
			keys := make([]schema.Value, len(p.Keys))
			for ki, idx := range p.keyIdx {
				c := &b.Cols[idx]
				if c.Kind.Integral() {
					keys[ki] = schema.Value{Kind: c.Kind, Int: c.I[r]}
				} else {
					keys[ki] = schema.Value{Kind: c.Kind, Float: canonFloat(c.F[r])}
				}
			}
			return keys
		})
		first := g.count == 0
		for ai := range p.Aggs {
			spec := &p.Aggs[ai]
			acc := &g.accs[ai]
			switch spec.acc {
			case accCount:
			case accInt:
				v := b.Cols[p.aggIdx[ai]].I[r]
				acc.updateInt(spec.Func, v, first)
			case accFloat:
				acc.updateFloat(spec.Func, b.Cols[p.aggIdx[ai]].F[r], first)
			case accExact:
				acc.x.Add(b.Cols[p.aggIdx[ai]].F[r])
			}
		}
		g.count++
	}
}

// ObserveRow folds one materialized row (working layout) into the
// state — the scalar-path counterpart of ObserveBatch, used by the
// per-row baseline and as the oracle in differential tests.
func (s *AggState) ObserveRow(row []schema.Value) {
	p := s.plan
	for ki, idx := range p.keyIdx {
		v := row[idx]
		var bits uint64
		if v.Kind.Integral() {
			bits = uint64(v.Int)
		} else {
			bits = math.Float64bits(canonFloat(v.Float))
		}
		binary.LittleEndian.PutUint64(s.keyBuf[8*ki:], bits)
	}
	g := s.group(func() []schema.Value {
		keys := make([]schema.Value, len(p.Keys))
		for ki, idx := range p.keyIdx {
			v := row[idx]
			if !v.Kind.Integral() {
				v.Float = canonFloat(v.Float)
			}
			keys[ki] = v
		}
		return keys
	})
	first := g.count == 0
	for ai := range p.Aggs {
		spec := &p.Aggs[ai]
		acc := &g.accs[ai]
		switch spec.acc {
		case accCount:
		case accInt:
			acc.updateInt(spec.Func, row[p.aggIdx[ai]].Int, first)
		case accFloat:
			acc.updateFloat(spec.Func, row[p.aggIdx[ai]].AsFloat(), first)
		case accExact:
			acc.x.Add(row[p.aggIdx[ai]].AsFloat())
		}
	}
	g.count++
}

func (a *aggAcc) updateInt(f sqlparser.AggFunc, v int64, first bool) {
	switch f {
	case sqlparser.AggSum, sqlparser.AggAvg:
		a.i += v
	case sqlparser.AggMin:
		if first || v < a.i {
			a.i = v
		}
	case sqlparser.AggMax:
		if first || v > a.i {
			a.i = v
		}
	}
}

func (a *aggAcc) updateFloat(f sqlparser.AggFunc, v float64, first bool) {
	if first {
		a.f = v
		return
	}
	// math.Min/Max propagate NaN and order ±0 consistently, so the fold
	// is commutative — partition- and merge-order-independent.
	if f == sqlparser.AggMin {
		a.f = math.Min(a.f, v)
	} else {
		a.f = math.Max(a.f, v)
	}
}

// Merge folds another state (for the same plan shape) into s.
func (s *AggState) Merge(o *AggState) {
	for key, og := range o.groups {
		s.mergeGroup(key, og)
	}
}

func (s *AggState) mergeGroup(key string, og *aggGroup) {
	g, ok := s.groups[key]
	if !ok {
		g = &aggGroup{keys: og.keys, accs: make([]aggAcc, len(s.plan.Aggs))}
		s.groups[key] = g
	}
	first := g.count == 0
	for ai := range s.plan.Aggs {
		spec := &s.plan.Aggs[ai]
		acc := &g.accs[ai]
		oa := &og.accs[ai]
		switch spec.acc {
		case accCount:
		case accInt:
			switch spec.Func {
			case sqlparser.AggSum, sqlparser.AggAvg:
				acc.i += oa.i
			case sqlparser.AggMin, sqlparser.AggMax:
				acc.updateInt(spec.Func, oa.i, first)
			}
		case accFloat:
			acc.updateFloat(spec.Func, oa.f, first)
		case accExact:
			acc.x.Merge(&oa.x)
		}
	}
	g.count += og.count
}

// Finalize renders the merged state as result rows in the plan's output
// schema, groups sorted by key values (integers exactly, floats with the
// single canonical NaN group last). Zero matching rows finalize to zero
// result rows, for global aggregates too.
func (s *AggState) Finalize() [][]schema.Value {
	groups := make([]*aggGroup, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].keys, groups[j].keys
		for k := range a {
			if c := compareKey(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([][]schema.Value, len(groups))
	for gi, g := range groups {
		row := make([]schema.Value, len(s.plan.out))
		for i, ref := range s.plan.out {
			if ref < 0 {
				row[i] = g.keys[-ref-1]
				continue
			}
			spec := &s.plan.Aggs[ref]
			acc := &g.accs[ref]
			switch {
			case spec.Func == sqlparser.AggCount:
				row[i] = schema.Value{Kind: schema.Long, Int: g.count}
			case spec.Func == sqlparser.AggAvg && spec.acc == accInt:
				row[i] = schema.Value{Kind: schema.Double, Float: float64(acc.i) / float64(g.count)}
			case spec.Func == sqlparser.AggAvg:
				row[i] = schema.Value{Kind: schema.Double, Float: acc.x.Value() / float64(g.count)}
			case spec.acc == accInt:
				row[i] = schema.Value{Kind: spec.OutKind, Int: acc.i}
			case spec.acc == accFloat:
				row[i] = schema.Value{Kind: spec.OutKind, Float: acc.f}
			default: // accExact SUM
				row[i] = schema.Value{Kind: spec.OutKind, Float: acc.x.Value()}
			}
		}
		out[gi] = row
	}
	return out
}

// compareKey orders canonical group-key values: integers exactly,
// floats numerically with NaN after everything.
func compareKey(a, b schema.Value) int {
	if a.Kind.Integral() {
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	}
	af, bf := a.Float, b.Float
	aNaN, bNaN := af != af, bf != bf
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return 1
	case bNaN:
		return -1
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// Wire format of an encoded partial chunk ('A' frame payload):
//
//	uint32  ngroups
//	per group:
//	  per key:       8 bytes (canonical bits: int64 or Float64bits)
//	  count:         8 bytes (int64)
//	  per aggregate (COUNT items encode nothing):
//	    accInt:      8 bytes (int64)
//	    accFloat:    8 bytes (Float64bits)
//	    accExact:    1 flag byte (1 NaN | 2 +Inf | 4 -Inf),
//	                 uint32 nterms, nterms × 8 bytes
//
// All integers are little-endian. Each chunk is independently mergeable;
// a state encodes to one or more chunks of roughly targetBytes each.

// EncodeChunks serializes the state's groups into independently
// mergeable chunks of roughly targetBytes each. An empty state encodes
// to no chunks.
func (s *AggState) EncodeChunks(targetBytes int) [][]byte {
	if len(s.groups) == 0 {
		return nil
	}
	if targetBytes <= 0 {
		targetBytes = 256 << 10
	}
	var chunks [][]byte
	var buf []byte
	n := 0
	flush := func() {
		if n == 0 {
			return
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(n))
		chunks = append(chunks, buf)
		buf, n = nil, 0
	}
	for key, g := range s.groups {
		if buf == nil {
			buf = append(make([]byte, 0, targetBytes+512), 0, 0, 0, 0)
		}
		buf = append(buf, key...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g.count))
		for ai := range s.plan.Aggs {
			acc := &g.accs[ai]
			switch s.plan.Aggs[ai].acc {
			case accCount:
			case accInt:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(acc.i))
			case accFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(acc.f))
			case accExact:
				terms, nan, pos, neg := acc.x.Terms()
				var flags byte
				if nan {
					flags |= 1
				}
				if pos {
					flags |= 2
				}
				if neg {
					flags |= 4
				}
				buf = append(buf, flags)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(terms)))
				for _, t := range terms {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t))
				}
			}
		}
		n++
		if len(buf) >= targetBytes {
			flush()
		}
	}
	flush()
	return chunks
}

// MergeEncoded merges one encoded partial chunk into the state.
func (s *AggState) MergeEncoded(data []byte) error {
	rd := wireReader{b: data}
	ngroups, err := rd.u32()
	if err != nil {
		return err
	}
	p := s.plan
	for gi := uint32(0); gi < ngroups; gi++ {
		og := &aggGroup{keys: make([]schema.Value, len(p.Keys)), accs: make([]aggAcc, len(p.Aggs))}
		keyStart := rd.off
		for ki, k := range p.Keys {
			bits, err := rd.u64()
			if err != nil {
				return err
			}
			if k.Kind.Integral() {
				og.keys[ki] = schema.Value{Kind: k.Kind, Int: int64(bits)}
			} else {
				og.keys[ki] = schema.Value{Kind: k.Kind, Float: math.Float64frombits(bits)}
			}
		}
		key := string(data[keyStart : keyStart+8*len(p.Keys)])
		cnt, err := rd.u64()
		if err != nil {
			return err
		}
		og.count = int64(cnt)
		for ai := range p.Aggs {
			acc := &og.accs[ai]
			switch p.Aggs[ai].acc {
			case accCount:
			case accInt:
				bits, err := rd.u64()
				if err != nil {
					return err
				}
				acc.i = int64(bits)
			case accFloat:
				bits, err := rd.u64()
				if err != nil {
					return err
				}
				acc.f = math.Float64frombits(bits)
			case accExact:
				flags, err := rd.u8()
				if err != nil {
					return err
				}
				nterms, err := rd.u32()
				if err != nil {
					return err
				}
				if int(nterms) > rd.remaining()/8 {
					return fmt.Errorf("query: aggregate partial: term count %d overruns payload", nterms)
				}
				for t := uint32(0); t < nterms; t++ {
					bits, err := rd.u64()
					if err != nil {
						return err
					}
					acc.x.AddTerm(math.Float64frombits(bits))
				}
				acc.x.setFlags(flags&1 != 0, flags&2 != 0, flags&4 != 0)
			}
		}
		s.mergeGroup(key, og)
	}
	if rd.remaining() != 0 {
		return fmt.Errorf("query: aggregate partial: %d trailing bytes", rd.remaining())
	}
	return nil
}

// wireReader is a bounds-checked little-endian cursor.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("query: aggregate partial: truncated payload")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *wireReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("query: aggregate partial: truncated payload")
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *wireReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("query: aggregate partial: truncated payload")
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}
