package query

import (
	"math"
	"math/rand"
	"testing"

	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

// Property test of the partial-aggregate merge: however the input rows
// are partitioned across legs, and however the legs' encoded partials
// are chunked and merge-ordered, the finalized result must be
// bit-identical to a single state observing every row — the invariant
// that makes local and cluster aggregate execution interchangeable.

const aggTestSQL = "SELECT G, H, COUNT(*), SUM(V), SUM(W), MIN(V), MAX(V), MIN(W), MAX(W), AVG(V), AVG(W) FROM T GROUP BY G, H"

func aggTestPlan(t *testing.T) *AggPlan {
	t.Helper()
	sch := schema.MustNew("T", []schema.Attribute{
		{Name: "G", Kind: schema.Int},
		{Name: "H", Kind: schema.Double},
		{Name: "V", Kind: schema.Long},
		{Name: "W", Kind: schema.Double},
	})
	q := sqlparser.MustParse(aggTestSQL)
	plan, err := BuildAggPlan(q, sch)
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"G", "H", "V", "W"}
	err = plan.Bind(func(name string) (int, bool) {
		for i, c := range cols {
			if c == name {
				return i, true
			}
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// randAggRows generates rows with few distinct keys (to force group
// collisions across legs) and adversarial float values, including a -0
// and NaN key so canonicalization is exercised.
func randAggRows(rng *rand.Rand, n int) [][]schema.Value {
	keys := []float64{1.5, -2.25, 0, math.Copysign(0, -1), math.NaN(), math.Inf(1)}
	// Adversarial SUM inputs, short of the running-sum overflow regime
	// where ExactSum deliberately saturates (order-dependently).
	tricky := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
		1e300, -1e300, 1e-300, math.SmallestNonzeroFloat64, 1e16, -1e16,
	}
	rows := make([][]schema.Value, n)
	for i := range rows {
		w := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		if rng.Intn(20) == 0 {
			w = tricky[rng.Intn(len(tricky))]
		}
		rows[i] = []schema.Value{
			{Kind: schema.Int, Int: int64(rng.Intn(4))},
			{Kind: schema.Double, Float: keys[rng.Intn(len(keys))]},
			{Kind: schema.Long, Int: rng.Int63n(1000) - 500},
			{Kind: schema.Double, Float: w},
		}
	}
	return rows
}

// sameRows asserts two finalized result sets are bit-identical
// (Float64bits, so NaN payloads and -0 count too).
func sameRows(t *testing.T, label string, want, got [][]schema.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d result rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			a, b := want[i][j], got[i][j]
			if a.Kind != b.Kind || a.Int != b.Int ||
				math.Float64bits(a.Float) != math.Float64bits(b.Float) {
				t.Fatalf("%s: row %d col %d: got %+v, want %+v", label, i, j, b, a)
			}
		}
	}
}

func TestAggMergePartitionIndependence(t *testing.T) {
	plan := aggTestPlan(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		rows := randAggRows(rng, rng.Intn(400))

		single := NewAggState(plan)
		for _, row := range rows {
			single.ObserveRow(row)
		}
		want := single.Finalize()

		// Partition the rows across 1..6 legs at random.
		nlegs := 1 + rng.Intn(6)
		legs := make([]*AggState, nlegs)
		for i := range legs {
			legs[i] = NewAggState(plan)
		}
		for _, row := range rows {
			legs[rng.Intn(nlegs)].ObserveRow(row)
		}

		// In-memory merge path (parallel workers within one node).
		merged := NewAggState(plan)
		for _, leg := range legs {
			merged.Merge(leg)
		}
		sameRows(t, "Merge", want, merged.Finalize())

		// Wire path (cluster 'A' frames): tiny target bytes force
		// multi-chunk encodings, and the chunks are merged shuffled.
		coord := NewAggState(plan)
		var chunks [][]byte
		for _, leg := range legs {
			chunks = append(chunks, leg.EncodeChunks(1+rng.Intn(200))...)
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		for _, c := range chunks {
			if err := coord.MergeEncoded(c); err != nil {
				t.Fatalf("MergeEncoded: %v", err)
			}
		}
		sameRows(t, "MergeEncoded", want, coord.Finalize())
	}
}

func TestAggBatchMatchesRowPath(t *testing.T) {
	plan := aggTestPlan(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		rows := randAggRows(rng, 1+rng.Intn(300))

		byRow := NewAggState(plan)
		for _, row := range rows {
			byRow.ObserveRow(row)
		}

		// The batch path observes the same rows through column vectors
		// with a partial selection; the unselected rows go through
		// ObserveRow so both states see the identical multiset.
		batch := &Batch{}
		batch.Reset(4, len(rows))
		for c := 0; c < 4; c++ {
			batch.Cols[c].Kind = rows[0][c].Kind
			f := batch.Cols[c].F
			var iv []int64
			if rows[0][c].Kind.Integral() {
				iv = batch.IntCol(c)
			}
			for r, row := range rows {
				f[r] = row[c].AsFloat()
				if iv != nil {
					iv[r] = row[c].Int
				}
			}
		}
		var sel, rest []int32
		for i := range rows {
			if rng.Intn(3) > 0 {
				sel = append(sel, int32(i))
			} else {
				rest = append(rest, int32(i))
			}
		}
		byBatch := NewAggState(plan)
		byBatch.ObserveBatch(batch, sel)
		for _, r := range rest {
			byBatch.ObserveRow(rows[r])
		}
		sameRows(t, "ObserveBatch", byRow.Finalize(), byBatch.Finalize())
	}
}

func TestAggEmptyAndEdgeCases(t *testing.T) {
	plan := aggTestPlan(t)

	empty := NewAggState(plan)
	if rows := empty.Finalize(); len(rows) != 0 {
		t.Errorf("empty state finalized to %d rows, want 0", len(rows))
	}
	if chunks := empty.EncodeChunks(0); chunks != nil {
		t.Errorf("empty state encoded to %d chunks, want none", len(chunks))
	}

	// Global aggregate (no GROUP BY) over zero rows must also finalize
	// empty — the documented departure from SQL's one-row-of-NULLs.
	sch := schema.MustNew("T", []schema.Attribute{{Name: "V", Kind: schema.Long}})
	gq := sqlparser.MustParse("SELECT COUNT(*), SUM(V) FROM T")
	gplan, err := BuildAggPlan(gq, sch)
	if err != nil {
		t.Fatal(err)
	}
	if err := gplan.Bind(func(string) (int, bool) { return 0, true }); err != nil {
		t.Fatal(err)
	}
	if rows := NewAggState(gplan).Finalize(); len(rows) != 0 {
		t.Errorf("global aggregate over zero rows finalized to %d rows, want 0", len(rows))
	}

	// -0 and +0 group keys must land in the same group; NaN keys in one
	// canonical group sorted last.
	s := NewAggState(plan)
	mk := func(h float64) []schema.Value {
		return []schema.Value{
			{Kind: schema.Int, Int: 1},
			{Kind: schema.Double, Float: h},
			{Kind: schema.Long, Int: 10},
			{Kind: schema.Double, Float: 1},
		}
	}
	s.ObserveRow(mk(0))
	s.ObserveRow(mk(math.Copysign(0, -1)))
	s.ObserveRow(mk(math.NaN()))
	rows := s.Finalize()
	if len(rows) != 2 {
		t.Fatalf("got %d groups, want 2 (±0 folded, NaN separate): %v", len(rows), rows)
	}
	if rows[0][2].Int != 2 {
		t.Errorf("±0 group count = %d, want 2", rows[0][2].Int)
	}
	if last := rows[1][1].Float; !math.IsNaN(last) {
		t.Errorf("NaN group should sort last, got key %v", last)
	}
}

func TestAggMergeEncodedRejectsCorrupt(t *testing.T) {
	plan := aggTestPlan(t)
	s := NewAggState(plan)
	s.ObserveRow(randAggRows(rand.New(rand.NewSource(1)), 1)[0])
	chunks := s.EncodeChunks(0)
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	good := chunks[0]
	cases := map[string][]byte{
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte(nil), good...), 0xEE),
		"short":       good[:2],
		"countsOnly":  {9, 0, 0, 0},
		"emptyButLen": {1, 0, 0, 0},
	}
	for name, data := range cases {
		fresh := NewAggState(plan)
		if err := fresh.MergeEncoded(data); err == nil {
			t.Errorf("%s payload accepted", name)
		}
	}
	// The pristine chunk still merges.
	fresh := NewAggState(plan)
	if err := fresh.MergeEncoded(good); err != nil {
		t.Errorf("pristine chunk rejected: %v", err)
	}
}
