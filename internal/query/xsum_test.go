package query

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigSum is the oracle: an exact big.Float accumulation rounded once to
// float64, the definition ExactSum.Value promises to match.
func bigSum(terms []float64) float64 {
	acc := new(big.Float).SetPrec(valuePrec)
	t := new(big.Float).SetPrec(valuePrec)
	for _, v := range terms {
		acc.Add(acc, t.SetFloat64(v))
	}
	f, _ := acc.Float64()
	return f
}

func randTerms(rng *rand.Rand, n int) []float64 {
	terms := make([]float64, n)
	for i := range terms {
		// Wildly mixed magnitudes: the regime where naive summation
		// loses low-order bits and order starts to matter.
		terms[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		if rng.Intn(10) == 0 {
			terms[i] = -terms[i]
		}
	}
	return terms
}

func TestExactSumMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		terms := randTerms(rng, rng.Intn(300))
		var x ExactSum
		for _, v := range terms {
			x.Add(v)
		}
		got, want := x.Value(), bigSum(terms)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (%d terms): ExactSum %g (%x), big.Float %g (%x)",
				trial, len(terms), got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestExactSumPartitionIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		terms := randTerms(rng, 1+rng.Intn(200))
		var whole ExactSum
		for _, v := range terms {
			whole.Add(v)
		}

		nparts := 1 + rng.Intn(5)
		parts := make([]ExactSum, nparts)
		for _, v := range terms {
			parts[rng.Intn(nparts)].Add(v)
		}
		var merged ExactSum
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if a, b := whole.Value(), merged.Value(); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("trial %d: whole %g != merged %g", trial, a, b)
		}

		// Wire round-trip: Terms → AddTerm/setFlags reproduces the state.
		var rt ExactSum
		ts, nan, pos, neg := merged.Terms()
		for _, v := range ts {
			rt.AddTerm(v)
		}
		rt.setFlags(nan, pos, neg)
		if a, b := merged.Value(), rt.Value(); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("trial %d: round-trip %g != %g", trial, b, a)
		}
	}
}

func TestExactSumNonFinite(t *testing.T) {
	add := func(vals ...float64) float64 {
		var x ExactSum
		for _, v := range vals {
			x.Add(v)
		}
		return x.Value()
	}
	if v := add(1, math.Inf(1), 2); !math.IsInf(v, 1) {
		t.Errorf("+Inf sum = %g", v)
	}
	if v := add(math.Inf(-1), 5); !math.IsInf(v, -1) {
		t.Errorf("-Inf sum = %g", v)
	}
	if v := add(math.Inf(1), math.Inf(-1)); !math.IsNaN(v) {
		t.Errorf("+Inf + -Inf = %g, want NaN", v)
	}
	if v := add(math.NaN(), 1, 2); !math.IsNaN(v) {
		t.Errorf("NaN sum = %g, want NaN", v)
	}
	if v := add(); v != 0 {
		t.Errorf("empty sum = %g, want 0", v)
	}
	// Running-sum overflow saturates like IEEE accumulation.
	if v := add(math.MaxFloat64, math.MaxFloat64); !math.IsInf(v, 1) {
		t.Errorf("overflowing sum = %g, want +Inf", v)
	}
	if v := add(-math.MaxFloat64, -math.MaxFloat64, 1); !math.IsInf(v, -1) {
		t.Errorf("overflowing negative sum = %g, want -Inf", v)
	}
	// Flags are order-independent: merging {+Inf} into {-Inf} equals
	// adding both to one state.
	var a, b ExactSum
	a.Add(math.Inf(1))
	b.Add(math.Inf(-1))
	a.Merge(&b)
	if v := a.Value(); !math.IsNaN(v) {
		t.Errorf("merged ±Inf = %g, want NaN", v)
	}
}

func TestExactSumCancellation(t *testing.T) {
	// Classic catastrophic-cancellation cases where naive left-to-right
	// summation returns the wrong answer outright.
	cases := [][]float64{
		{1e308, 1, -1e308},
		{1e16, 1, -1e16},
		{1e300, 1e300, -1e300, -1e300, 3.5},
		{1, 1e-300, -1, 1e-300},
	}
	for _, terms := range cases {
		var x ExactSum
		for _, v := range terms {
			x.Add(v)
		}
		got, want := x.Value(), bigSum(terms)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%v: got %g, want %g", terms, got, want)
		}
	}
}
