package query

import (
	"math"
	"sort"
	"strconv"
)

// Canonical encoding of constraint sets. Plan caching keys prepared
// queries by the *semantics* of their WHERE clause, not its text: two
// queries whose per-attribute constraint sets are pointwise equal must
// produce identical encodings, and two queries whose sets differ must
// not collide. normalize() already gives every Set a unique interval
// list (sorted, disjoint, merged); the encoding adds the remaining
// float-level identifications:
//
//   - -0 and +0 are the same point, so both encode as +0;
//   - an infinite endpoint is open whether or not the flag says so
//     (±Inf is never a member), so it always encodes as open;
//   - finite endpoints encode as raw IEEE-754 bits, which is injective
//     where it must be (distinct values → distinct bits).
//
// Attribute and interval boundaries are length-prefixed or delimited
// with characters that cannot appear inside a hex float encoding, so
// the overall encoding is injective regardless of attribute names.

// AppendCanonical appends the interval's canonical encoding to b:
// bracket characters carry the (normalized) open flags and endpoints
// are hex-encoded IEEE-754 bit patterns.
func (iv Interval) AppendCanonical(b []byte) []byte {
	lo, hi := iv.Lo, iv.Hi
	loOpen, hiOpen := iv.LoOpen, iv.HiOpen
	if lo == 0 {
		lo = 0 // collapse -0 to +0
	}
	if hi == 0 {
		hi = 0
	}
	if math.IsInf(lo, -1) {
		loOpen = true
	}
	if math.IsInf(hi, 1) {
		hiOpen = true
	}
	if loOpen {
		b = append(b, '(')
	} else {
		b = append(b, '[')
	}
	b = strconv.AppendUint(b, math.Float64bits(lo), 16)
	b = append(b, ',')
	b = strconv.AppendUint(b, math.Float64bits(hi), 16)
	if hiOpen {
		b = append(b, ')')
	} else {
		b = append(b, ']')
	}
	return b
}

// AppendCanonical appends the set's canonical encoding: its normalized
// intervals in order. The empty (unsatisfiable) set encodes as nothing,
// distinct from every non-empty set by the surrounding delimiters.
func (s Set) AppendCanonical(b []byte) []byte {
	for _, iv := range s.ivs {
		b = iv.AppendCanonical(b)
	}
	return b
}

// AppendCanonical appends the constraint map's canonical encoding:
// attributes sorted by name, each as a length-prefixed name followed by
// its set. Attributes whose set is full are dropped — an unconstrained
// attribute is semantically identical to an absent one (Ranges.Get
// returns FullSet either way), so "x > 2 AND (y < 5 OR y >= 5)" and
// "x > 2" encode identically.
func (r Ranges) AppendCanonical(b []byte) []byte {
	names := make([]string, 0, len(r))
	for n, s := range r {
		if s.IsFull() {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b = strconv.AppendInt(b, int64(len(n)), 10)
		b = append(b, ':')
		b = append(b, n...)
		b = append(b, '=')
		b = r[n].AppendCanonical(b)
		b = append(b, ';')
	}
	return b
}
