package query

import (
	"math"
	"math/rand"
	"testing"

	"datavirt/internal/filter"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

// Differential test of the vectorized filter: over random batches
// seeded with adversarial floats (NaN, ±Inf, -0, denormals) and random
// WHERE expressions covering every operator and connective, the
// selection produced by the compiled VectorPredicate must match the
// per-row Predicate row for row.

// diffCols is the working layout the differential tests compile
// against: two integral and two floating columns.
var diffCols = []schema.Attribute{
	{Name: "A", Kind: schema.Int},
	{Name: "B", Kind: schema.Long},
	{Name: "X", Kind: schema.Double},
	{Name: "Y", Kind: schema.Double},
}

func diffLookup(name string) (int, bool) {
	for i, c := range diffCols {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// trickyFloats are the values most likely to expose a semantic gap
// between the two filter paths.
var trickyFloats = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	math.Copysign(0, -1), 0, 1, -1, 0.5, -0.5,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	2, 3, 1e-300, 1e300,
}

func randFloat(rng *rand.Rand) float64 {
	switch rng.Intn(4) {
	case 0:
		return trickyFloats[rng.Intn(len(trickyFloats))]
	case 1:
		return float64(rng.Intn(7) - 3)
	default:
		return rng.NormFloat64()
	}
}

func randInt(rng *rand.Rand) int64 {
	switch rng.Intn(3) {
	case 0:
		return int64(rng.Intn(7) - 3)
	default:
		return rng.Int63n(200) - 100
	}
}

// randRows generates n random rows in the diffCols layout.
func randRows(rng *rand.Rand, n int) [][]schema.Value {
	rows := make([][]schema.Value, n)
	for i := range rows {
		row := make([]schema.Value, len(diffCols))
		for c, a := range diffCols {
			if a.Kind.Integral() {
				row[c] = schema.Value{Kind: a.Kind, Int: randInt(rng)}
			} else {
				row[c] = schema.Value{Kind: a.Kind, Float: randFloat(rng)}
			}
		}
		rows[i] = row
	}
	return rows
}

// rowsToBatch fills a Batch the way the extractor's vectorized fill
// does: F is the AsFloat currency for every column, I the raw integer
// for integral columns.
func rowsToBatch(rows [][]schema.Value) *Batch {
	b := &Batch{}
	b.Reset(len(diffCols), len(rows))
	for c, a := range diffCols {
		b.Cols[c].Kind = a.Kind
		f := b.Cols[c].F
		var iv []int64
		if a.Kind.Integral() {
			iv = b.IntCol(c)
		}
		for r, row := range rows {
			f[r] = row[c].AsFloat()
			if iv != nil {
				iv[r] = row[c].Int
			}
		}
	}
	return b
}

var cmpOps = []sqlparser.CmpOp{
	sqlparser.CmpLT, sqlparser.CmpLE, sqlparser.CmpGT,
	sqlparser.CmpGE, sqlparser.CmpEQ, sqlparser.CmpNE,
}

func randOperand(rng *rand.Rand) sqlparser.Operand {
	switch rng.Intn(5) {
	case 0:
		return sqlparser.Literal{Value: randFloat(rng)}
	case 1:
		return sqlparser.Call{Name: "MAGNITUDE", Args: []sqlparser.Operand{randOperand(rng)}}
	default:
		return sqlparser.Column{Name: diffCols[rng.Intn(len(diffCols))].Name}
	}
}

// randExpr builds a random WHERE expression of bounded depth. At depth
// 0 it emits a leaf (Cmp or In); otherwise it may combine subtrees with
// AND/OR/NOT.
func randExpr(rng *rand.Rand, depth int) sqlparser.Expr {
	if depth > 0 {
		switch rng.Intn(4) {
		case 0:
			return &sqlparser.Logic{Op: sqlparser.OpAnd, L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
		case 1:
			return &sqlparser.Logic{Op: sqlparser.OpOr, L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
		case 2:
			return &sqlparser.Not{X: randExpr(rng, depth-1)}
		}
	}
	if rng.Intn(5) == 0 {
		vals := make([]float64, 1+rng.Intn(3))
		for i := range vals {
			vals[i] = randFloat(rng)
		}
		return &sqlparser.In{Col: diffCols[rng.Intn(len(diffCols))].Name, Values: vals}
	}
	// Bias toward the specialized column-vs-literal shape, but keep
	// every operand combination reachable.
	var l, r sqlparser.Operand
	if rng.Intn(2) == 0 {
		l = sqlparser.Column{Name: diffCols[rng.Intn(len(diffCols))].Name}
		r = sqlparser.Literal{Value: randFloat(rng)}
	} else {
		l, r = randOperand(rng), randOperand(rng)
	}
	return &sqlparser.Cmp{Op: cmpOps[rng.Intn(len(cmpOps))], Left: l, Right: r}
}

// runDifferential evaluates one random expression both ways over one
// random block and fails on any selection mismatch.
func runDifferential(t *testing.T, rng *rand.Rand, reg *filter.Registry) {
	t.Helper()
	expr := randExpr(rng, 1+rng.Intn(3))
	pred, err := CompilePredicate(expr, diffLookup, reg)
	if err != nil {
		t.Fatalf("CompilePredicate(%s): %v", expr, err)
	}
	vec, err := CompileVectorPredicate(expr, diffLookup, reg)
	if err != nil {
		t.Fatalf("CompileVectorPredicate(%s): %v", expr, err)
	}
	rows := randRows(rng, 1+rng.Intn(200))
	batch := rowsToBatch(rows)

	var scr VectorScratch
	sel := Identity(nil, batch.N)
	sel = vec.Eval(batch, sel, &scr)

	var want []int32
	for i, row := range rows {
		if pred(row) {
			want = append(want, int32(i))
		}
	}
	if len(sel) != len(want) {
		t.Fatalf("expr %s: vectorized selected %d rows, scalar %d\nvec: %v\nscalar: %v",
			expr, len(sel), len(want), sel, want)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("expr %s: selection diverges at position %d: vectorized %d, scalar %d",
				expr, i, sel[i], want[i])
		}
	}
}

func TestVectorFilterDifferential(t *testing.T) {
	reg := filter.NewRegistry()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1500; trial++ {
		runDifferential(t, rng, reg)
	}
}

// FuzzVectorFilterDifferential drives the same differential property
// from a fuzzed seed, so `go test -fuzz` explores expression/data
// shapes beyond the fixed trial budget.
func FuzzVectorFilterDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	reg := filter.NewRegistry()
	f.Fuzz(func(t *testing.T, seed int64) {
		runDifferential(t, rand.New(rand.NewSource(seed)), reg)
	})
}

// TestVectorFilterOperatorMatrix pins the exact float comparison
// semantics on the specialized column-vs-literal loops: every operator
// against every tricky value pair, checked against the scalar path.
func TestVectorFilterOperatorMatrix(t *testing.T) {
	reg := filter.NewRegistry()
	rows := make([][]schema.Value, len(trickyFloats))
	for i, v := range trickyFloats {
		rows[i] = []schema.Value{
			{Kind: schema.Int, Int: int64(i)},
			{Kind: schema.Long, Int: int64(-i)},
			{Kind: schema.Double, Float: v},
			{Kind: schema.Double, Float: v},
		}
	}
	batch := rowsToBatch(rows)
	var scr VectorScratch
	for _, op := range cmpOps {
		for _, lit := range trickyFloats {
			expr := &sqlparser.Cmp{Op: op, Left: sqlparser.Column{Name: "X"}, Right: sqlparser.Literal{Value: lit}}
			pred, err := CompilePredicate(expr, diffLookup, reg)
			if err != nil {
				t.Fatal(err)
			}
			vec, err := CompileVectorPredicate(expr, diffLookup, reg)
			if err != nil {
				t.Fatal(err)
			}
			sel := vec.Eval(batch, Identity(nil, batch.N), &scr)
			got := map[int32]bool{}
			for _, r := range sel {
				got[r] = true
			}
			for i, row := range rows {
				if want := pred(row); want != got[int32(i)] {
					t.Errorf("%s with X=%v: scalar %v, vectorized %v",
						expr, rows[i][2].Float, want, got[int32(i)])
				}
			}
		}
	}
}

// TestVectorSelectionNarrowing checks the structural contract: Eval
// narrows the given selection in place, returns it sorted, and never
// resurrects rows outside the input selection.
func TestVectorSelectionNarrowing(t *testing.T) {
	reg := filter.NewRegistry()
	rng := rand.New(rand.NewSource(11))
	rows := randRows(rng, 64)
	batch := rowsToBatch(rows)
	expr := sqlparser.MustParse("SELECT * FROM T WHERE X > 0 OR A < 2").Where
	vec, err := CompileVectorPredicate(expr, diffLookup, reg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := CompilePredicate(expr, diffLookup, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a strict subset: even rows only.
	in := make([]int32, 0, 32)
	for i := 0; i < batch.N; i += 2 {
		in = append(in, int32(i))
	}
	var scr VectorScratch
	out := vec.Eval(batch, in, &scr)
	j := 0
	for _, r := range out {
		if r%2 != 0 {
			t.Fatalf("row %d outside the input selection was selected", r)
		}
		if j > 0 && out[j-1] >= r {
			t.Fatalf("selection not strictly sorted: %v", out)
		}
		j++
		if !pred(rows[r]) {
			t.Errorf("row %d selected but scalar predicate rejects it", r)
		}
	}
	for i := 0; i < batch.N; i += 2 {
		want := pred(rows[i])
		found := false
		for _, r := range out {
			if r == int32(i) {
				found = true
			}
		}
		if want != found {
			t.Errorf("row %d: scalar %v, in selection %v", i, want, found)
		}
	}
}
