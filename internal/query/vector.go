package query

import (
	"fmt"

	"datavirt/internal/filter"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

// This file implements batch (vectorized) predicate evaluation: instead
// of calling a compiled Predicate once per materialized row, the
// extractor fills block-sized column vectors and the compiled
// VectorPredicate narrows a selection-index vector over them. The float
// semantics are exactly those of the per-row path (every comparison is
// over the AsFloat value), so the two paths select identical rows —
// asserted by a differential fuzz test.

// Vec is one column of a batch. F always holds the AsFloat value of
// every row (the comparison currency shared with the scalar path); I
// additionally holds the raw integer value for integral kinds, which
// aggregate kernels use for exact integer arithmetic.
type Vec struct {
	Kind schema.Kind
	F    []float64
	I    []int64
}

// Batch is a block-sized set of column vectors, indexed by the same
// column positions the scalar row layout uses.
type Batch struct {
	N    int
	Cols []Vec
}

// Reset shapes the batch for ncols columns of n rows, reusing backing
// arrays. Kinds must be set by the filler (SetKind).
func (b *Batch) Reset(ncols, n int) {
	if cap(b.Cols) < ncols {
		b.Cols = make([]Vec, ncols)
	}
	b.Cols = b.Cols[:ncols]
	b.N = n
	for i := range b.Cols {
		c := &b.Cols[i]
		if cap(c.F) < n {
			c.F = make([]float64, n)
		}
		c.F = c.F[:n]
		c.I = c.I[:0]
	}
}

// IntCol ensures column i has an I vector of n rows and returns it.
func (b *Batch) IntCol(i int) []int64 {
	c := &b.Cols[i]
	if cap(c.I) < b.N {
		c.I = make([]int64, b.N)
	}
	c.I = c.I[:b.N]
	return c.I
}

// VectorScratch holds reusable selection buffers for one evaluation
// goroutine. The compiled VectorPredicate itself is stateless and safe
// for concurrent use; each worker brings its own scratch.
type VectorScratch struct {
	free [][]int32
}

func (s *VectorScratch) get(n int) []int32 {
	if k := len(s.free); k > 0 {
		b := s.free[k-1]
		s.free = s.free[:k-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]int32, 0, n)
}

func (s *VectorScratch) put(b []int32) { s.free = append(s.free, b) }

// Identity fills sel with 0..n-1 (the all-rows selection), growing it as
// needed, and returns it.
func Identity(sel []int32, n int) []int32 {
	if cap(sel) < n {
		sel = make([]int32, n)
	}
	sel = sel[:n]
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// vecEval narrows a sorted selection over a batch. Implementations may
// write the result in place into sel's backing array; the returned slice
// is always sorted and a subset of the input.
type vecEval func(b *Batch, sel []int32, scr *VectorScratch) []int32

// VectorPredicate is a WHERE clause compiled for batch evaluation.
type VectorPredicate struct {
	eval vecEval
}

// Eval filters sel (sorted row indices into b) down to the rows
// satisfying the predicate. The result reuses sel's backing array.
func (p *VectorPredicate) Eval(b *Batch, sel []int32, scr *VectorScratch) []int32 {
	return p.eval(b, sel, scr)
}

// CompileVectorPredicate compiles the WHERE expression for batch
// evaluation against the same column layout and filter registry the
// scalar CompilePredicate uses. A nil expression returns a nil predicate
// (every row selected).
func CompileVectorPredicate(e sqlparser.Expr, lookup ColumnLookup, reg *filter.Registry) (*VectorPredicate, error) {
	if e == nil {
		return nil, nil
	}
	ev, err := compileVecExpr(e, lookup, reg)
	if err != nil {
		return nil, err
	}
	return &VectorPredicate{eval: ev}, nil
}

func compileVecExpr(e sqlparser.Expr, lookup ColumnLookup, reg *filter.Registry) (vecEval, error) {
	switch v := e.(type) {
	case *sqlparser.Logic:
		l, err := compileVecExpr(v.L, lookup, reg)
		if err != nil {
			return nil, err
		}
		r, err := compileVecExpr(v.R, lookup, reg)
		if err != nil {
			return nil, err
		}
		if v.Op == sqlparser.OpAnd {
			// Short-circuit narrowing: the right side only sees rows the
			// left side kept — the fewer survivors, the less work.
			return func(b *Batch, sel []int32, scr *VectorScratch) []int32 {
				return r(b, l(b, sel, scr), scr)
			}, nil
		}
		return func(b *Batch, sel []int32, scr *VectorScratch) []int32 {
			// OR: evaluate both sides over the same input and merge the
			// two sorted survivor sets back into sel's backing array.
			tmp := scr.get(len(sel))
			tmp = append(tmp, sel...)
			ls := l(b, tmp, scr)
			rs := r(b, sel, scr)
			out := scr.get(len(ls) + len(rs))
			i, j := 0, 0
			for i < len(ls) && j < len(rs) {
				switch {
				case ls[i] < rs[j]:
					out = append(out, ls[i])
					i++
				case ls[i] > rs[j]:
					out = append(out, rs[j])
					j++
				default:
					out = append(out, ls[i])
					i++
					j++
				}
			}
			out = append(out, ls[i:]...)
			out = append(out, rs[j:]...)
			sel = append(sel[:0], out...)
			scr.put(tmp)
			scr.put(out)
			return sel
		}, nil
	case *sqlparser.Not:
		x, err := compileVecExpr(v.X, lookup, reg)
		if err != nil {
			return nil, err
		}
		return func(b *Batch, sel []int32, scr *VectorScratch) []int32 {
			tmp := scr.get(len(sel))
			tmp = append(tmp, sel...)
			kept := x(b, tmp, scr)
			// Complement within the input selection (two-pointer walk).
			out := sel[:0]
			j := 0
			for _, r := range sel {
				if j < len(kept) && kept[j] == r {
					j++
					continue
				}
				out = append(out, r)
			}
			scr.put(tmp)
			return out
		}, nil
	case *sqlparser.Cmp:
		return compileVecCmp(v, lookup, reg)
	case *sqlparser.In:
		idx, ok := lookup(v.Col)
		if !ok {
			return nil, fmt.Errorf("query: unknown attribute %q", v.Col)
		}
		vals := make(map[float64]bool, len(v.Values))
		for _, x := range v.Values {
			vals[x] = true
		}
		return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
			f := b.Cols[idx].F
			out := sel[:0]
			for _, r := range sel {
				if vals[f[r]] {
					out = append(out, r)
				}
			}
			return out
		}, nil
	}
	return nil, fmt.Errorf("query: unknown expression node %T", e)
}

// compileVecCmp specializes the hot column-vs-literal comparisons into
// tight loops over the column's F vector; other operand shapes fall back
// to a per-row operand closure (still batched, no row materialization).
func compileVecCmp(v *sqlparser.Cmp, lookup ColumnLookup, reg *filter.Registry) (vecEval, error) {
	if col, ok := v.Left.(sqlparser.Column); ok {
		if lit, ok := v.Right.(sqlparser.Literal); ok {
			idx, found := lookup(col.Name)
			if !found {
				return nil, fmt.Errorf("query: unknown attribute %q", col.Name)
			}
			c := lit.Value
			switch v.Op {
			case sqlparser.CmpLT:
				return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
					f := b.Cols[idx].F
					out := sel[:0]
					for _, r := range sel {
						if f[r] < c {
							out = append(out, r)
						}
					}
					return out
				}, nil
			case sqlparser.CmpLE:
				return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
					f := b.Cols[idx].F
					out := sel[:0]
					for _, r := range sel {
						if f[r] <= c {
							out = append(out, r)
						}
					}
					return out
				}, nil
			case sqlparser.CmpGT:
				return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
					f := b.Cols[idx].F
					out := sel[:0]
					for _, r := range sel {
						if f[r] > c {
							out = append(out, r)
						}
					}
					return out
				}, nil
			case sqlparser.CmpGE:
				return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
					f := b.Cols[idx].F
					out := sel[:0]
					for _, r := range sel {
						if f[r] >= c {
							out = append(out, r)
						}
					}
					return out
				}, nil
			case sqlparser.CmpEQ:
				return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
					f := b.Cols[idx].F
					out := sel[:0]
					for _, r := range sel {
						if f[r] == c {
							out = append(out, r)
						}
					}
					return out
				}, nil
			case sqlparser.CmpNE:
				return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
					f := b.Cols[idx].F
					out := sel[:0]
					for _, r := range sel {
						if f[r] != c {
							out = append(out, r)
						}
					}
					return out
				}, nil
			}
			return nil, fmt.Errorf("query: unknown comparison %v", v.Op)
		}
	}
	l, err := compileVecOperand(v.Left, lookup, reg)
	if err != nil {
		return nil, err
	}
	r, err := compileVecOperand(v.Right, lookup, reg)
	if err != nil {
		return nil, err
	}
	var keep func(a, b float64) bool
	switch v.Op {
	case sqlparser.CmpLT:
		keep = func(a, b float64) bool { return a < b }
	case sqlparser.CmpLE:
		keep = func(a, b float64) bool { return a <= b }
	case sqlparser.CmpGT:
		keep = func(a, b float64) bool { return a > b }
	case sqlparser.CmpGE:
		keep = func(a, b float64) bool { return a >= b }
	case sqlparser.CmpEQ:
		keep = func(a, b float64) bool { return a == b }
	case sqlparser.CmpNE:
		keep = func(a, b float64) bool { return a != b }
	default:
		return nil, fmt.Errorf("query: unknown comparison %v", v.Op)
	}
	return func(b *Batch, sel []int32, _ *VectorScratch) []int32 {
		out := sel[:0]
		for _, row := range sel {
			if keep(l(b, row), r(b, row)) {
				out = append(out, row)
			}
		}
		return out
	}, nil
}

// vecOperand evaluates one comparison operand for one batch row.
type vecOperand func(b *Batch, r int32) float64

func compileVecOperand(o sqlparser.Operand, lookup ColumnLookup, reg *filter.Registry) (vecOperand, error) {
	switch v := o.(type) {
	case sqlparser.Literal:
		val := v.Value
		return func(*Batch, int32) float64 { return val }, nil
	case sqlparser.Column:
		idx, ok := lookup(v.Name)
		if !ok {
			return nil, fmt.Errorf("query: unknown attribute %q", v.Name)
		}
		return func(b *Batch, r int32) float64 { return b.Cols[idx].F[r] }, nil
	case sqlparser.Call:
		if reg == nil {
			return nil, fmt.Errorf("query: filter %s used but no filter registry provided", v.Name)
		}
		fn, err := reg.Lookup(v.Name, len(v.Args))
		if err != nil {
			return nil, err
		}
		args := make([]vecOperand, len(v.Args))
		for i, a := range v.Args {
			af, err := compileVecOperand(a, lookup, reg)
			if err != nil {
				return nil, err
			}
			args[i] = af
		}
		return func(b *Batch, r int32) float64 {
			var a4 [4]float64
			var buf []float64
			if len(args) <= len(a4) {
				buf = a4[:len(args)]
			} else {
				buf = make([]float64, len(args))
			}
			for i, af := range args {
				buf[i] = af(b, r)
			}
			return fn.Fn(buf)
		}, nil
	}
	return nil, fmt.Errorf("query: unknown operand %T", o)
}
