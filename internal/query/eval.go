package query

import (
	"fmt"

	"datavirt/internal/filter"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

// Predicate decides whether a materialized row satisfies the WHERE
// clause. Rows are slices of schema.Value in virtual-table order.
type Predicate func(row []schema.Value) bool

// TruePredicate accepts every row (no WHERE clause).
func TruePredicate(row []schema.Value) bool { return true }

// ColumnLookup resolves an attribute name to its index in the row.
type ColumnLookup func(name string) (int, bool)

// CompilePredicate compiles the WHERE expression against a row layout
// and filter registry. Compilation resolves every column index and
// filter function once, so per-row evaluation does no lookups — the
// run-time analogue of the paper's generated extraction code. A nil
// expression compiles to TruePredicate.
func CompilePredicate(e sqlparser.Expr, lookup ColumnLookup, reg *filter.Registry) (Predicate, error) {
	if e == nil {
		return TruePredicate, nil
	}
	return compileExpr(e, lookup, reg)
}

func compileExpr(e sqlparser.Expr, lookup ColumnLookup, reg *filter.Registry) (Predicate, error) {
	switch v := e.(type) {
	case *sqlparser.Logic:
		l, err := compileExpr(v.L, lookup, reg)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(v.R, lookup, reg)
		if err != nil {
			return nil, err
		}
		if v.Op == sqlparser.OpAnd {
			return func(row []schema.Value) bool { return l(row) && r(row) }, nil
		}
		return func(row []schema.Value) bool { return l(row) || r(row) }, nil
	case *sqlparser.Not:
		x, err := compileExpr(v.X, lookup, reg)
		if err != nil {
			return nil, err
		}
		return func(row []schema.Value) bool { return !x(row) }, nil
	case *sqlparser.Cmp:
		l, err := compileOperand(v.Left, lookup, reg)
		if err != nil {
			return nil, err
		}
		r, err := compileOperand(v.Right, lookup, reg)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case sqlparser.CmpLT:
			return func(row []schema.Value) bool { return l(row) < r(row) }, nil
		case sqlparser.CmpLE:
			return func(row []schema.Value) bool { return l(row) <= r(row) }, nil
		case sqlparser.CmpGT:
			return func(row []schema.Value) bool { return l(row) > r(row) }, nil
		case sqlparser.CmpGE:
			return func(row []schema.Value) bool { return l(row) >= r(row) }, nil
		case sqlparser.CmpEQ:
			return func(row []schema.Value) bool { return l(row) == r(row) }, nil
		case sqlparser.CmpNE:
			return func(row []schema.Value) bool { return l(row) != r(row) }, nil
		}
		return nil, fmt.Errorf("query: unknown comparison %v", v.Op)
	case *sqlparser.In:
		idx, ok := lookup(v.Col)
		if !ok {
			return nil, fmt.Errorf("query: unknown attribute %q", v.Col)
		}
		vals := make(map[float64]bool, len(v.Values))
		for _, x := range v.Values {
			vals[x] = true
		}
		return func(row []schema.Value) bool { return vals[row[idx].AsFloat()] }, nil
	}
	return nil, fmt.Errorf("query: unknown expression node %T", e)
}

type operandFn func(row []schema.Value) float64

func compileOperand(o sqlparser.Operand, lookup ColumnLookup, reg *filter.Registry) (operandFn, error) {
	switch v := o.(type) {
	case sqlparser.Literal:
		val := v.Value
		return func([]schema.Value) float64 { return val }, nil
	case sqlparser.Column:
		idx, ok := lookup(v.Name)
		if !ok {
			return nil, fmt.Errorf("query: unknown attribute %q", v.Name)
		}
		return func(row []schema.Value) float64 { return row[idx].AsFloat() }, nil
	case sqlparser.Call:
		if reg == nil {
			return nil, fmt.Errorf("query: filter %s used but no filter registry provided", v.Name)
		}
		fn, err := reg.Lookup(v.Name, len(v.Args))
		if err != nil {
			return nil, err
		}
		args := make([]operandFn, len(v.Args))
		for i, a := range v.Args {
			af, err := compileOperand(a, lookup, reg)
			if err != nil {
				return nil, err
			}
			args[i] = af
		}
		return func(row []schema.Value) float64 {
			// Small fixed-size buffer keeps per-row evaluation
			// allocation-free for the common arities; the compiled
			// predicate stays safe for concurrent use.
			var a4 [4]float64
			var buf []float64
			if len(args) <= len(a4) {
				buf = a4[:len(args)]
			} else {
				buf = make([]float64, len(args))
			}
			for i, af := range args {
				buf[i] = af(row)
			}
			return fn.Fn(buf)
		}, nil
	}
	return nil, fmt.Errorf("query: unknown operand %T", o)
}

// Validate checks a parsed query against a schema: the select list and
// every attribute referenced in WHERE must exist, and filter calls must
// resolve. It returns the resolved output column names (expanding *).
func Validate(q *sqlparser.Query, sch *schema.Schema, reg *filter.Registry) ([]string, error) {
	var cols []string
	if q.Star {
		cols = sch.Names()
	} else {
		for _, c := range q.Columns {
			if !sch.Has(c) {
				return nil, fmt.Errorf("query: table %s has no attribute %q", sch.Name(), c)
			}
			cols = append(cols, c)
		}
	}
	for _, c := range sqlparser.ExprColumns(q.Where) {
		if !sch.Has(c) {
			return nil, fmt.Errorf("query: table %s has no attribute %q", sch.Name(), c)
		}
	}
	// Dry-compile to surface unknown filters and arity errors.
	lookup := func(name string) (int, bool) {
		i := sch.Index(name)
		return i, i >= 0
	}
	if _, err := CompilePredicate(q.Where, lookup, reg); err != nil {
		return nil, err
	}
	return cols, nil
}
