package query

import (
	"math"
	"math/big"
)

// ExactSum accumulates float64 terms without rounding error, so that
// partial sums computed independently on cluster legs merge to the exact
// same final value as a single-node pass regardless of partitioning or
// merge order. It keeps a Shewchuk-style nonoverlapping expansion: a
// slice of float64 whose exact mathematical sum equals the running sum.
// Adding a term costs a handful of flops amortized (the expansion stays
// 1–3 terms for realistic data); rounding to a final float64 happens
// once, at finalize time.
//
// Non-finite inputs cannot participate in an expansion; they are folded
// into commutative flags with IEEE semantics (+Inf + -Inf = NaN), so the
// result is still independent of accumulation order.
type ExactSum struct {
	terms []float64 // nonoverlapping expansion, increasing magnitude
	neg   bool      // saw -Inf
	pos   bool      // saw +Inf
	nan   bool      // saw NaN
}

// twoSum returns s = fl(a+b) and the exact rounding error e with
// a + b = s + e (Knuth's branch-free error-free transformation).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	av := s - bv
	br := b - bv
	ar := a - av
	return s, ar + br
}

// Add folds one value into the sum.
func (x *ExactSum) Add(v float64) {
	if v != v {
		x.nan = true
		return
	}
	if math.IsInf(v, 1) {
		x.pos = true
		return
	}
	if math.IsInf(v, -1) {
		x.neg = true
		return
	}
	// Grow-expansion: carry v through the existing terms, keeping only
	// nonzero rounding errors (zero elimination keeps the slice short).
	q := v
	out := x.terms[:0]
	for _, t := range x.terms {
		var err float64
		q, err = twoSum(q, t)
		if err != 0 {
			out = append(out, err)
		}
	}
	if math.IsInf(q, 0) {
		// The running sum overflowed float64 (the rounding errors
		// recorded past that point are garbage). Saturate the way IEEE
		// accumulation would: the sum is ±Inf from here on. Exactness —
		// and with it partition-independence — holds only while every
		// running sum stays in range.
		x.pos = x.pos || q > 0
		x.neg = x.neg || q < 0
		x.terms = x.terms[:0]
		return
	}
	if q != 0 || len(out) == 0 {
		out = append(out, q)
	}
	x.terms = out
}

// Merge folds another exact sum into x. Because both sides are exact,
// the merged state equals accumulating every input term directly, in any
// order.
func (x *ExactSum) Merge(y *ExactSum) {
	for _, t := range y.terms {
		x.Add(t)
	}
	x.nan = x.nan || y.nan
	x.pos = x.pos || y.pos
	x.neg = x.neg || y.neg
}

// Terms returns the expansion terms plus the non-finite flags for wire
// encoding; AddTerm-ing them into a fresh ExactSum reproduces the state.
func (x *ExactSum) Terms() (terms []float64, nan, pos, neg bool) {
	return x.terms, x.nan, x.pos, x.neg
}

// AddTerm folds one wire term back in; t may be non-finite.
func (x *ExactSum) AddTerm(t float64) { x.Add(t) }

// setFlags ORs the wire non-finite flags in.
func (x *ExactSum) setFlags(nan, pos, neg bool) {
	x.nan = x.nan || nan
	x.pos = x.pos || pos
	x.neg = x.neg || neg
}

// valuePrec is the big.Float precision used to round an expansion to its
// final float64. Any sum of float64 terms spans at most ~2100 bits of
// significand (exponent range 2^-1074 .. 2^1024 plus carry growth), so
// 2200 bits makes the big.Float arithmetic exact and the single final
// rounding correct — and therefore identical for every decomposition of
// the same mathematical sum.
const valuePrec = 2200

// Value rounds the exact sum to the nearest float64.
func (x *ExactSum) Value() float64 {
	switch {
	case x.nan, x.pos && x.neg:
		return math.NaN()
	case x.pos:
		return math.Inf(1)
	case x.neg:
		return math.Inf(-1)
	}
	if len(x.terms) == 0 {
		return 0
	}
	if len(x.terms) == 1 {
		return x.terms[0]
	}
	acc := new(big.Float).SetPrec(valuePrec)
	t := new(big.Float).SetPrec(valuePrec)
	for _, v := range x.terms {
		acc.Add(acc, t.SetFloat64(v))
	}
	f, _ := acc.Float64()
	return f
}
