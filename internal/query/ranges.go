package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"datavirt/internal/sqlparser"
)

// Ranges maps attribute names to the constraint Set the WHERE clause
// places on them. An attribute absent from the map is unconstrained.
// Ranges is a conservative over-approximation: every row satisfying the
// WHERE clause has each constrained attribute inside its set, so pruning
// a file or chunk whose attribute range misses the set is always safe.
type Ranges map[string]Set

// Get returns the constraint for attr, defaulting to the full set.
func (r Ranges) Get(attr string) Set {
	if s, ok := r[attr]; ok {
		return s
	}
	return FullSet()
}

// Unsatisfiable reports whether some attribute's constraint is empty,
// proving the query selects no rows.
func (r Ranges) Unsatisfiable() bool {
	for _, s := range r {
		if s.Empty() {
			return true
		}
	}
	return false
}

// String renders the constraints sorted by attribute, for diagnostics.
func (r Ranges) String() string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s ∈ %s", n, r[n])
	}
	return strings.Join(parts, ", ")
}

// ExtractRanges computes the per-attribute constraint sets implied by e.
// A nil expression constrains nothing. The extraction follows the
// paper's index usage: only direct comparisons between an attribute and
// a literal (and IN lists) contribute; user-defined filter calls and
// inequality (!=) contribute nothing.
func ExtractRanges(e sqlparser.Expr) Ranges {
	if e == nil {
		return Ranges{}
	}
	return extract(e, false)
}

func extract(e sqlparser.Expr, negated bool) Ranges {
	switch v := e.(type) {
	case *sqlparser.Logic:
		op := v.Op
		if negated {
			// De Morgan: ¬(a AND b) = ¬a OR ¬b.
			if op == sqlparser.OpAnd {
				op = sqlparser.OpOr
			} else {
				op = sqlparser.OpAnd
			}
		}
		l := extract(v.L, negated)
		r := extract(v.R, negated)
		if op == sqlparser.OpAnd {
			return andRanges(l, r)
		}
		return orRanges(l, r)
	case *sqlparser.Not:
		return extract(v.X, !negated)
	case *sqlparser.Cmp:
		col, ok := v.Left.(sqlparser.Column)
		if !ok {
			return Ranges{}
		}
		lit, ok := v.Right.(sqlparser.Literal)
		if !ok {
			return Ranges{}
		}
		op := v.Op
		if negated {
			op = negateCmp(op)
		}
		s, ok := cmpSet(op, lit.Value)
		if !ok {
			return Ranges{}
		}
		return Ranges{col.Name: s}
	case *sqlparser.In:
		var s Set
		if negated {
			// NOT IN: complement of the points.
			s = FullSet()
			for _, val := range v.Values {
				s = s.Intersect(notEqualSet(val))
			}
		} else {
			ivs := make([]Interval, len(v.Values))
			for i, val := range v.Values {
				ivs[i] = Point(val)
			}
			s = NewSet(ivs...)
		}
		return Ranges{v.Col: s}
	}
	return Ranges{}
}

func negateCmp(op sqlparser.CmpOp) sqlparser.CmpOp {
	switch op {
	case sqlparser.CmpLT:
		return sqlparser.CmpGE
	case sqlparser.CmpLE:
		return sqlparser.CmpGT
	case sqlparser.CmpGT:
		return sqlparser.CmpLE
	case sqlparser.CmpGE:
		return sqlparser.CmpLT
	case sqlparser.CmpEQ:
		return sqlparser.CmpNE
	default:
		return sqlparser.CmpEQ
	}
}

func cmpSet(op sqlparser.CmpOp, v float64) (Set, bool) {
	switch op {
	case sqlparser.CmpLT:
		return NewSet(Interval{Lo: math.Inf(-1), LoOpen: true, Hi: v, HiOpen: true}), true
	case sqlparser.CmpLE:
		return NewSet(Interval{Lo: math.Inf(-1), LoOpen: true, Hi: v}), true
	case sqlparser.CmpGT:
		return NewSet(Interval{Lo: v, LoOpen: true, Hi: math.Inf(1), HiOpen: true}), true
	case sqlparser.CmpGE:
		return NewSet(Interval{Lo: v, Hi: math.Inf(1), HiOpen: true}), true
	case sqlparser.CmpEQ:
		return NewSet(Point(v)), true
	case sqlparser.CmpNE:
		return notEqualSet(v), true
	}
	return Set{}, false
}

func notEqualSet(v float64) Set {
	return NewSet(
		Interval{Lo: math.Inf(-1), LoOpen: true, Hi: v, HiOpen: true},
		Interval{Lo: v, LoOpen: true, Hi: math.Inf(1), HiOpen: true},
	)
}

// andRanges intersects constraints attribute-wise; attributes
// constrained by only one side keep that side's constraint.
func andRanges(l, r Ranges) Ranges {
	out := make(Ranges, len(l)+len(r))
	for a, s := range l {
		out[a] = s
	}
	for a, s := range r {
		if prev, ok := out[a]; ok {
			out[a] = prev.Intersect(s)
		} else {
			out[a] = s
		}
	}
	return out
}

// orRanges unions constraints attribute-wise; an attribute missing from
// either side is unconstrained on that side, so it must be dropped.
func orRanges(l, r Ranges) Ranges {
	out := make(Ranges)
	for a, ls := range l {
		if rs, ok := r[a]; ok {
			out[a] = ls.Union(rs)
		}
	}
	return out
}
