package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 5, HiOpen: true} // [1, 5)
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	for v, want := range map[float64]bool{0.5: false, 1: true, 3: true, 5: false, 6: false} {
		if got := iv.Contains(v); got != want {
			t.Errorf("[1,5).Contains(%g) = %v", v, got)
		}
	}
	if !Point(2).Contains(2) || Point(2).Contains(2.1) {
		t.Error("Point misbehaves")
	}
	if (Interval{Lo: 3, Hi: 1}).Empty() != true {
		t.Error("inverted interval should be empty")
	}
	if (Interval{Lo: 1, Hi: 1, LoOpen: true}).Empty() != true {
		t.Error("half-open point should be empty")
	}
	if !Full().Contains(math.MaxFloat64) || !Full().Contains(-math.MaxFloat64) {
		t.Error("Full should contain everything finite")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 15, LoOpen: true}
	c := a.Intersect(b) // (5, 10]
	if c.Lo != 5 || !c.LoOpen || c.Hi != 10 || c.HiOpen {
		t.Errorf("intersect = %v", c)
	}
	if !a.Overlaps(b) {
		t.Error("overlap missed")
	}
	d := Interval{Lo: 20, Hi: 30}
	if a.Overlaps(d) {
		t.Error("false overlap")
	}
	// Touching endpoints: [0,5] and [5,10] overlap at 5; [0,5) and [5,10] do not.
	if !(Interval{Lo: 0, Hi: 5}).Overlaps(Interval{Lo: 5, Hi: 10}) {
		t.Error("touching closed endpoints should overlap")
	}
	if (Interval{Lo: 0, Hi: 5, HiOpen: true}).Overlaps(Interval{Lo: 5, Hi: 10}) {
		t.Error("open endpoint should not overlap")
	}
}

func TestSetNormalization(t *testing.T) {
	s := NewSet(
		Interval{Lo: 5, Hi: 10},
		Interval{Lo: 1, Hi: 6},
		Interval{Lo: 20, Hi: 25},
		Interval{Lo: 10, Hi: 12}, // touches [1,10]
		Interval{Lo: 9, Hi: 3},   // empty — dropped
	)
	ivs := s.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("normalized = %v", s)
	}
	if ivs[0].Lo != 1 || ivs[0].Hi != 12 || ivs[1].Lo != 20 || ivs[1].Hi != 25 {
		t.Errorf("normalized = %v", s)
	}
	// Open gap preserved: [1,2) and (2,3] must not merge.
	s2 := NewSet(
		Interval{Lo: 1, Hi: 2, HiOpen: true},
		Interval{Lo: 2, Hi: 3, LoOpen: true},
	)
	if len(s2.Intervals()) != 2 {
		t.Errorf("open-gap merged: %v", s2)
	}
	if s2.Contains(2) {
		t.Error("gap point contained")
	}
	// Closed touch merges: [1,2] and [2,3] → [1,3].
	s3 := NewSet(Interval{Lo: 1, Hi: 2}, Interval{Lo: 2, Hi: 3})
	if len(s3.Intervals()) != 1 {
		t.Errorf("closed touch not merged: %v", s3)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(Interval{Lo: 0, Hi: 10}, Interval{Lo: 20, Hi: 30})
	b := NewSet(Interval{Lo: 5, Hi: 25})
	inter := a.Intersect(b)
	ivs := inter.Intervals()
	if len(ivs) != 2 || ivs[0].Lo != 5 || ivs[0].Hi != 10 || ivs[1].Lo != 20 || ivs[1].Hi != 25 {
		t.Errorf("intersect = %v", inter)
	}
	uni := a.Union(b)
	if len(uni.Intervals()) != 1 || uni.Intervals()[0].Lo != 0 || uni.Intervals()[0].Hi != 30 {
		t.Errorf("union = %v", uni)
	}
	if !FullSet().IsFull() || a.IsFull() {
		t.Error("IsFull misbehaves")
	}
	empty := a.Intersect(NewSet(Interval{Lo: 100, Hi: 200}))
	if !empty.Empty() {
		t.Errorf("expected empty, got %v", empty)
	}
	if !a.Overlaps(Interval{Lo: 29, Hi: 40}) || a.Overlaps(Interval{Lo: 11, Hi: 19}) {
		t.Error("Set.Overlaps misbehaves")
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(Interval{Lo: 0, Hi: 10, HiOpen: true}, Point(15), Interval{Lo: 20, Hi: 30})
	for v, want := range map[float64]bool{
		-1: false, 0: true, 9.99: true, 10: false, 12: false,
		15: true, 15.5: false, 20: true, 30: true, 31: false,
	} {
		if got := s.Contains(v); got != want {
			t.Errorf("Contains(%g) = %v, want %v", v, got, want)
		}
	}
	if (Set{}).Contains(5) {
		t.Error("empty set contains something")
	}
}

func TestSetString(t *testing.T) {
	if got := (Set{}).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	s := NewSet(Interval{Lo: 1, Hi: 2, HiOpen: true}, Point(5))
	if got := s.String(); got != "[1, 2) ∪ [5, 5]" {
		t.Errorf("String = %q", got)
	}
}

func TestClipInt(t *testing.T) {
	// TIME ∈ (1000, 1100) clipped to loop 1:2000:1 → 1001..1099.
	s := NewSet(Interval{Lo: 1000, LoOpen: true, Hi: 1100, HiOpen: true})
	rs := s.ClipInt(1, 2000, 1)
	if len(rs) != 1 || rs[0].Lo != 1001 || rs[0].Hi != 1099 || rs[0].Count() != 99 {
		t.Errorf("ClipInt = %+v", rs)
	}
	// Point set.
	rs = NewSet(Point(7)).ClipInt(0, 10, 1)
	if len(rs) != 1 || rs[0].Lo != 7 || rs[0].Hi != 7 {
		t.Errorf("point clip = %+v", rs)
	}
	// Step alignment: lattice {0, 3, 6, 9}; set [2, 8] → {3, 6}.
	rs = NewSet(Interval{Lo: 2, Hi: 8}).ClipInt(0, 9, 3)
	if len(rs) != 1 || rs[0].Lo != 3 || rs[0].Hi != 6 || rs[0].Count() != 2 {
		t.Errorf("step clip = %+v", rs)
	}
	// Disjoint pieces.
	s2 := NewSet(Interval{Lo: 1, Hi: 3}, Interval{Lo: 7, Hi: 8})
	rs = s2.ClipInt(0, 10, 1)
	if len(rs) != 2 || rs[0].Lo != 1 || rs[0].Hi != 3 || rs[1].Lo != 7 || rs[1].Hi != 8 {
		t.Errorf("disjoint clip = %+v", rs)
	}
	// Adjacent integer runs merge: [0,1] ∪ (1,2] → 0..2.
	s3 := NewSet(Interval{Lo: 0, Hi: 1}, Interval{Lo: 1, LoOpen: true, Hi: 2})
	rs = s3.ClipInt(0, 10, 1)
	if len(rs) != 1 || rs[0].Lo != 0 || rs[0].Hi != 2 {
		t.Errorf("adjacent merge = %+v", rs)
	}
	// Empty cases.
	if rs := NewSet(Interval{Lo: 100, Hi: 200}).ClipInt(0, 10, 1); len(rs) != 0 {
		t.Errorf("out-of-range clip = %+v", rs)
	}
	if rs := FullSet().ClipInt(5, 1, 1); len(rs) != 0 {
		t.Errorf("inverted loop clip = %+v", rs)
	}
	if rs := FullSet().ClipInt(0, 10, 0); len(rs) != 0 {
		t.Errorf("zero step clip = %+v", rs)
	}
	// Full set covers the whole loop.
	rs = FullSet().ClipInt(3, 9, 2)
	if len(rs) != 1 || rs[0].Lo != 3 || rs[0].Hi != 9 || rs[0].Count() != 4 {
		t.Errorf("full clip = %+v", rs)
	}
}

// Property: ClipInt agrees with brute-force lattice membership.
func TestClipIntQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := int64(rng.Intn(50) - 25)
		hi := lo + int64(rng.Intn(60))
		step := int64(rng.Intn(4) + 1)
		// Random set of up to 3 intervals.
		var ivs []Interval
		for i := 0; i < rng.Intn(4); i++ {
			a := float64(rng.Intn(80) - 40)
			b := a + float64(rng.Intn(30))
			ivs = append(ivs, Interval{Lo: a, Hi: b, LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0})
		}
		s := NewSet(ivs...)
		got := map[int64]bool{}
		for _, r := range s.ClipInt(lo, hi, step) {
			if r.Step != step || (r.Lo-lo)%step != 0 {
				return false
			}
			for v := r.Lo; v <= r.Hi; v += step {
				got[v] = true
			}
		}
		for v := lo; v <= hi; v += step {
			if got[v] != s.Contains(float64(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Set.Contains after Intersect/Union equals the logical
// and/or of memberships.
func TestSetAlgebraQuick(t *testing.T) {
	mk := func(rng *rand.Rand) Set {
		var ivs []Interval
		for i := 0; i < rng.Intn(4); i++ {
			a := float64(rng.Intn(40) - 20)
			b := a + float64(rng.Intn(15))
			ivs = append(ivs, Interval{Lo: a, Hi: b, LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0})
		}
		return NewSet(ivs...)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := mk(rng), mk(rng)
		inter, uni := a.Intersect(b), a.Union(b)
		for i := 0; i < 100; i++ {
			v := float64(rng.Intn(90)-45) / 2
			ina, inb := a.Contains(v), b.Contains(v)
			if inter.Contains(v) != (ina && inb) {
				return false
			}
			if uni.Contains(v) != (ina || inb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
