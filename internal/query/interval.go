// Package query turns parsed SQL into the two artifacts the generated
// data services consume:
//
//   - Ranges: per-attribute interval sets conservatively over-
//     approximating the WHERE clause, used by index functions to prune
//     files and aligned file chunks without reading them;
//   - a compiled row predicate, used by extractors to filter the rows
//     that survive pruning (comparisons plus user-defined filters).
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a numeric interval with optionally open endpoints.
// Unbounded sides are ±Inf (and treated as open).
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Full returns the interval covering all reals.
func Full() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool {
	if v < iv.Lo || (v == iv.Lo && iv.LoOpen) {
		return false
	}
	if v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	out := iv
	if o.Lo > out.Lo || (o.Lo == out.Lo && o.LoOpen) {
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < out.Hi || (o.Hi == out.Hi && o.HiOpen) {
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	}
	return out
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

// String renders mathematical interval notation.
func (iv Interval) String() string {
	l, r := "[", "]"
	if iv.LoOpen {
		l = "("
	}
	if iv.HiOpen {
		r = ")"
	}
	return fmt.Sprintf("%s%g, %g%s", l, iv.Lo, iv.Hi, r)
}

// Set is a union of intervals — the constraint on one attribute. The
// canonical form (after normalize) is sorted and non-overlapping. A nil
// or empty Set means "no constraint" is NOT implied; use FullSet for
// that. An empty set after intersection means the constraint is
// unsatisfiable.
type Set struct {
	ivs []Interval
}

// FullSet returns the unconstrained set.
func FullSet() Set { return Set{ivs: []Interval{Full()}} }

// NewSet builds a set from the given intervals (normalized).
func NewSet(ivs ...Interval) Set {
	s := Set{ivs: append([]Interval(nil), ivs...)}
	s.normalize()
	return s
}

// Intervals returns the canonical interval list (do not mutate).
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether the set contains no points.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// IsFull reports whether the set is (-∞, ∞).
func (s Set) IsFull() bool {
	return len(s.ivs) == 1 && math.IsInf(s.ivs[0].Lo, -1) && math.IsInf(s.ivs[0].Hi, 1)
}

// Contains reports whether v lies in the set.
func (s Set) Contains(v float64) bool {
	// Binary search over the sorted canonical intervals.
	i := sort.Search(len(s.ivs), func(i int) bool {
		iv := s.ivs[i]
		return v < iv.Hi || (v == iv.Hi && !iv.HiOpen)
	})
	return i < len(s.ivs) && s.ivs[i].Contains(v)
}

// Intersect returns the pointwise intersection of two sets.
func (s Set) Intersect(o Set) Set {
	var out []Interval
	for _, a := range s.ivs {
		for _, b := range o.ivs {
			if c := a.Intersect(b); !c.Empty() {
				out = append(out, c)
			}
		}
	}
	r := Set{ivs: out}
	r.normalize()
	return r
}

// Union returns the pointwise union of two sets.
func (s Set) Union(o Set) Set {
	out := append(append([]Interval(nil), s.ivs...), o.ivs...)
	r := Set{ivs: out}
	r.normalize()
	return r
}

// Overlaps reports whether the set intersects iv.
func (s Set) Overlaps(iv Interval) bool {
	for _, a := range s.ivs {
		if a.Overlaps(iv) {
			return true
		}
	}
	return false
}

// String renders the union, e.g. "[0, 0] ∪ [1, 5)".
func (s Set) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// normalize sorts the intervals, drops empties, and merges overlapping
// or touching ones.
func (s *Set) normalize() {
	kept := s.ivs[:0]
	for _, iv := range s.ivs {
		if !iv.Empty() {
			kept = append(kept, iv)
		}
	}
	s.ivs = kept
	if len(s.ivs) == 0 {
		s.ivs = nil
		return
	}
	sort.Slice(s.ivs, func(i, j int) bool {
		a, b := s.ivs[i], s.ivs[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return !a.LoOpen && b.LoOpen
	})
	out := s.ivs[:1]
	for _, iv := range s.ivs[1:] {
		last := &out[len(out)-1]
		if mergeable(*last, iv) {
			if iv.Hi > last.Hi || (iv.Hi == last.Hi && !iv.HiOpen) {
				last.Hi, last.HiOpen = iv.Hi, iv.HiOpen
			}
			continue
		}
		out = append(out, iv)
	}
	s.ivs = out
}

// mergeable reports whether b can merge into a, given a.Lo <= b.Lo.
func mergeable(a, b Interval) bool {
	if b.Lo < a.Hi {
		return true
	}
	if b.Lo == a.Hi {
		// [1,2] [2,3] merge; [1,2) (2,3] do not (gap at 2).
		return !a.HiOpen || !b.LoOpen
	}
	return false
}

// IntRange is an inclusive integer subrange with a step, produced by
// clipping a Set against a loop's iteration range.
type IntRange struct {
	Lo, Hi, Step int64
}

// Count returns the number of iterations in the range.
func (r IntRange) Count() int64 {
	if r.Lo > r.Hi {
		return 0
	}
	return (r.Hi-r.Lo)/r.Step + 1
}

// ClipInt intersects the set with the integer lattice {lo, lo+step, ...,
// hi} and returns maximal contiguous runs. The index functions use this
// to turn per-attribute constraint sets into loop subranges.
func (s Set) ClipInt(lo, hi, step int64) []IntRange {
	if step <= 0 || lo > hi {
		return nil
	}
	var out []IntRange
	for _, iv := range s.ivs {
		l, h := clipIntervalToLattice(iv, lo, hi, step)
		if l > h {
			continue
		}
		out = append(out, IntRange{Lo: l, Hi: h, Step: step})
	}
	// Canonical intervals are disjoint and sorted, but adjacent lattice
	// runs may touch (e.g. [0,1] ∪ (1,2] over integers): merge them.
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && merged[n-1].Hi+step >= r.Lo {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// clipIntervalToLattice returns the first and last lattice points of
// {lo, lo+step, ..., hi} inside iv; l > h when none.
func clipIntervalToLattice(iv Interval, lo, hi, step int64) (l, h int64) {
	// Smallest lattice point >= (or >) iv.Lo.
	l = lo
	if !math.IsInf(iv.Lo, -1) {
		bound := int64(math.Ceil(iv.Lo))
		if float64(bound) == iv.Lo && iv.LoOpen {
			bound++
		}
		if bound > l {
			// Round up to the lattice.
			delta := bound - lo
			steps := delta / step
			if delta%step != 0 {
				steps++
			}
			l = lo + steps*step
		}
	}
	// Largest lattice point <= (or <) iv.Hi.
	h = hi
	if !math.IsInf(iv.Hi, 1) {
		bound := int64(math.Floor(iv.Hi))
		if float64(bound) == iv.Hi && iv.HiOpen {
			bound--
		}
		if bound < h {
			if bound < lo {
				return 1, 0
			}
			h = lo + ((bound-lo)/step)*step
		}
	}
	if l > hi || h < lo || l > h {
		return 1, 0
	}
	return l, h
}
