package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"datavirt/internal/filter"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

func iparsSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("IPARS", []schema.Attribute{
		{Name: "REL", Kind: schema.Short}, {Name: "TIME", Kind: schema.Int},
		{Name: "X", Kind: schema.Float}, {Name: "Y", Kind: schema.Float},
		{Name: "Z", Kind: schema.Float}, {Name: "SOIL", Kind: schema.Float},
		{Name: "SGAS", Kind: schema.Float},
	})
}

func TestExtractRangesPaperExample(t *testing.T) {
	// The paper's worked example (§4): REL in {0,1}, TIME from 1 to 100.
	q := sqlparser.MustParse("SELECT * FROM IparsData WHERE REL IN (0,1) AND TIME >= 1 AND TIME <= 100")
	r := ExtractRanges(q.Where)
	rel := r.Get("REL")
	if !rel.Contains(0) || !rel.Contains(1) || rel.Contains(2) {
		t.Errorf("REL set = %v", rel)
	}
	tm := r.Get("TIME")
	if !tm.Contains(1) || !tm.Contains(100) || tm.Contains(0.5) || tm.Contains(101) {
		t.Errorf("TIME set = %v", tm)
	}
	if !r.Get("SOIL").IsFull() {
		t.Errorf("SOIL should be unconstrained: %v", r.Get("SOIL"))
	}
	// Clip against the descriptor's loop ranges.
	times := tm.ClipInt(1, 500, 1)
	if len(times) != 1 || times[0].Count() != 100 {
		t.Errorf("TIME clip = %+v", times)
	}
}

func TestExtractRangesOperators(t *testing.T) {
	cases := []struct {
		where   string
		attr    string
		in, out []float64
	}{
		{"TIME > 10", "TIME", []float64{11, 100}, []float64{10, 9}},
		{"TIME >= 10", "TIME", []float64{10}, []float64{9.99}},
		{"TIME < 10", "TIME", []float64{9.99}, []float64{10}},
		{"TIME <= 10", "TIME", []float64{10}, []float64{10.01}},
		{"TIME = 10", "TIME", []float64{10}, []float64{9, 11}},
		{"TIME != 10", "TIME", []float64{9, 11}, []float64{10}},
		{"NOT TIME > 10", "TIME", []float64{10, 9}, []float64{11}},
		{"NOT (TIME > 10 OR TIME < 5)", "TIME", []float64{5, 10}, []float64{4, 11}},
		{"TIME > 10 AND TIME > 20", "TIME", []float64{21}, []float64{15}},
		{"TIME < 10 OR TIME > 20", "TIME", []float64{5, 25}, []float64{15}},
		{"NOT REL IN (1, 3)", "REL", []float64{0, 2}, []float64{1, 3}},
	}
	for _, c := range cases {
		q := sqlparser.MustParse("SELECT * FROM T WHERE " + c.where)
		s := ExtractRanges(q.Where).Get(c.attr)
		for _, v := range c.in {
			if !s.Contains(v) {
				t.Errorf("%q: %g should be in %v", c.where, v, s)
			}
		}
		for _, v := range c.out {
			if s.Contains(v) {
				t.Errorf("%q: %g should not be in %v", c.where, v, s)
			}
		}
	}
}

func TestExtractRangesConservative(t *testing.T) {
	// OR with an unconstrained side drops the attribute.
	q := sqlparser.MustParse("SELECT * FROM T WHERE TIME > 10 OR SOIL > 0.5")
	r := ExtractRanges(q.Where)
	if !r.Get("TIME").IsFull() || !r.Get("SOIL").IsFull() {
		t.Errorf("OR should drop both: %v", r)
	}
	// Filter calls contribute nothing but don't break extraction.
	q2 := sqlparser.MustParse("SELECT * FROM T WHERE SPEED(VX,VY) < 30 AND TIME > 10")
	r2 := ExtractRanges(q2.Where)
	if !r2.Get("VX").IsFull() {
		t.Errorf("VX should be unconstrained")
	}
	if r2.Get("TIME").Contains(10) || !r2.Get("TIME").Contains(11) {
		t.Errorf("TIME = %v", r2.Get("TIME"))
	}
	// nil WHERE.
	if r3 := ExtractRanges(nil); len(r3) != 0 || r3.Unsatisfiable() {
		t.Errorf("nil where: %v", r3)
	}
}

func TestUnsatisfiable(t *testing.T) {
	q := sqlparser.MustParse("SELECT * FROM T WHERE TIME > 10 AND TIME < 5")
	r := ExtractRanges(q.Where)
	if !r.Unsatisfiable() {
		t.Errorf("contradiction not detected: %v", r)
	}
}

func TestRangesString(t *testing.T) {
	q := sqlparser.MustParse("SELECT * FROM T WHERE B > 1 AND A < 2")
	s := ExtractRanges(q.Where).String()
	// Sorted by attribute: A before B.
	if s != "A ∈ (-Inf, 2), B ∈ (1, +Inf)" {
		t.Errorf("String = %q", s)
	}
}

func TestCompilePredicate(t *testing.T) {
	sch := iparsSchema(t)
	lookup := func(name string) (int, bool) {
		i := sch.Index(name)
		return i, i >= 0
	}
	reg := filter.NewRegistry()
	q := sqlparser.MustParse(
		"SELECT * FROM T WHERE REL IN (0, 2) AND TIME >= 10 AND SOIL > 0.5 AND SPEED(X, Y, Z) <= 5")
	pred, err := CompilePredicate(q.Where, lookup, reg)
	if err != nil {
		t.Fatalf("CompilePredicate: %v", err)
	}
	row := func(rel int64, tm int64, x, y, z, soil float64) []schema.Value {
		return []schema.Value{
			{Kind: schema.Short, Int: rel}, schema.IntValue(tm),
			schema.FloatValue(x), schema.FloatValue(y), schema.FloatValue(z),
			schema.FloatValue(soil), schema.FloatValue(0),
		}
	}
	if !pred(row(0, 10, 3, 4, 0, 0.6)) {
		t.Error("matching row rejected")
	}
	if pred(row(1, 10, 3, 4, 0, 0.6)) {
		t.Error("REL=1 accepted")
	}
	if pred(row(0, 9, 3, 4, 0, 0.6)) {
		t.Error("TIME=9 accepted")
	}
	if pred(row(0, 10, 3, 4, 0, 0.5)) {
		t.Error("SOIL=0.5 accepted (> is strict)")
	}
	if pred(row(0, 10, 3, 4, 1, 0.6)) {
		t.Error("SPEED>5 accepted")
	}
}

func TestCompilePredicateOperators(t *testing.T) {
	sch := schema.MustNew("T", []schema.Attribute{{Name: "A", Kind: schema.Double}})
	lookup := func(name string) (int, bool) { i := sch.Index(name); return i, i >= 0 }
	cases := map[string]map[float64]bool{
		"A < 1":          {0: true, 1: false},
		"A <= 1":         {1: true, 1.1: false},
		"A > 1":          {2: true, 1: false},
		"A >= 1":         {1: true, 0.9: false},
		"A = 1":          {1: true, 2: false},
		"A != 1":         {2: true, 1: false},
		"NOT A < 1":      {1: true, 0: false},
		"A < 0 OR A > 1": {-1: true, 0.5: false, 2: true},
	}
	for where, checks := range cases {
		q := sqlparser.MustParse("SELECT * FROM T WHERE " + where)
		pred, err := CompilePredicate(q.Where, lookup, nil)
		if err != nil {
			t.Fatalf("%q: %v", where, err)
		}
		for v, want := range checks {
			if got := pred([]schema.Value{schema.DoubleValue(v)}); got != want {
				t.Errorf("%q with A=%g: %v, want %v", where, v, got, want)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	sch := schema.MustNew("T", []schema.Attribute{{Name: "A", Kind: schema.Double}})
	lookup := func(name string) (int, bool) { i := sch.Index(name); return i, i >= 0 }
	reg := filter.NewRegistry()
	bad := []string{
		"B < 1",            // unknown column
		"B IN (1,2)",       // unknown column in IN
		"NOPE(A) < 1",      // unknown filter
		"MAGNITUDE(A,A)<1", // bad arity
	}
	for _, where := range bad {
		q := sqlparser.MustParse("SELECT * FROM T WHERE " + where)
		if _, err := CompilePredicate(q.Where, lookup, reg); err == nil {
			t.Errorf("%q compiled", where)
		}
	}
	// Filter without registry.
	q := sqlparser.MustParse("SELECT * FROM T WHERE SPEED(A) < 1")
	if _, err := CompilePredicate(q.Where, lookup, nil); err == nil {
		t.Error("filter without registry compiled")
	}
}

func TestValidate(t *testing.T) {
	sch := iparsSchema(t)
	reg := filter.NewRegistry()
	q := sqlparser.MustParse("SELECT SOIL, TIME FROM IPARS WHERE SGAS > 0.1")
	cols, err := Validate(q, sch, reg)
	if err != nil || len(cols) != 2 || cols[0] != "SOIL" {
		t.Errorf("Validate = %v, %v", cols, err)
	}
	star := sqlparser.MustParse("SELECT * FROM IPARS")
	cols, err = Validate(star, sch, reg)
	if err != nil || len(cols) != 7 {
		t.Errorf("star Validate = %v, %v", cols, err)
	}
	for _, bad := range []string{
		"SELECT NOPE FROM IPARS",
		"SELECT * FROM IPARS WHERE NOPE > 1",
		"SELECT * FROM IPARS WHERE BOGUS(SOIL) > 1",
	} {
		if _, err := Validate(sqlparser.MustParse(bad), sch, reg); err == nil {
			t.Errorf("Validate accepted %q", bad)
		}
	}
}

// Property (soundness of range extraction): for random predicates and
// random rows, pred(row) ⇒ every attribute value lies in its extracted
// range set. This is the invariant that makes index pruning safe.
func TestExtractRangesSoundQuick(t *testing.T) {
	attrs := []string{"A", "B", "C"}
	sch := schema.MustNew("T", []schema.Attribute{
		{Name: "A", Kind: schema.Double}, {Name: "B", Kind: schema.Double},
		{Name: "C", Kind: schema.Double},
	})
	lookup := func(name string) (int, bool) { i := sch.Index(name); return i, i >= 0 }

	var genExpr func(rng *rand.Rand, depth int) sqlparser.Expr
	genExpr = func(rng *rand.Rand, depth int) sqlparser.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			attr := attrs[rng.Intn(len(attrs))]
			if rng.Intn(5) == 0 {
				n := rng.Intn(3) + 1
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = float64(rng.Intn(11) - 5)
				}
				return &sqlparser.In{Col: attr, Values: vals}
			}
			ops := []sqlparser.CmpOp{sqlparser.CmpLT, sqlparser.CmpLE, sqlparser.CmpGT,
				sqlparser.CmpGE, sqlparser.CmpEQ, sqlparser.CmpNE}
			return &sqlparser.Cmp{
				Op:    ops[rng.Intn(len(ops))],
				Left:  sqlparser.Column{Name: attr},
				Right: sqlparser.Literal{Value: float64(rng.Intn(11) - 5)},
			}
		}
		switch rng.Intn(3) {
		case 0:
			return &sqlparser.Logic{Op: sqlparser.OpAnd, L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
		case 1:
			return &sqlparser.Logic{Op: sqlparser.OpOr, L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
		default:
			return &sqlparser.Not{X: genExpr(rng, depth-1)}
		}
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3)
		ranges := ExtractRanges(e)
		pred, err := CompilePredicate(e, lookup, nil)
		if err != nil {
			return false
		}
		for trial := 0; trial < 60; trial++ {
			row := []schema.Value{
				schema.DoubleValue(float64(rng.Intn(13) - 6)),
				schema.DoubleValue(float64(rng.Intn(13) - 6)),
				schema.DoubleValue(float64(rng.Intn(13) - 6)),
			}
			if !pred(row) {
				continue
			}
			for i, a := range attrs {
				if !ranges.Get(a).Contains(row[i].AsFloat()) {
					t.Logf("unsound: expr=%s row=%v attr=%s set=%v", e, row, a, ranges.Get(a))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCmpSetInfinities(t *testing.T) {
	s, ok := cmpSet(sqlparser.CmpGE, 5)
	if !ok || s.Contains(math.Inf(1)) == false {
		// +Inf is hi-open; membership at +Inf must be false.
		if s.Contains(math.Inf(1)) {
			t.Error("set contains +Inf")
		}
	}
	if s.Contains(4.999) {
		t.Error("contains below bound")
	}
}
