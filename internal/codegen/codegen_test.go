package codegen

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"datavirt/internal/afc"
	"datavirt/internal/codegen/genipars"
	"datavirt/internal/codegen/genpinned"
	"datavirt/internal/codegen/gentitan"
	"datavirt/internal/gen"
	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

func loadPlan(t *testing.T, descFile string) *afc.Plan {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", descFile))
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	p, err := afc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEmitIsGolden regenerates the checked-in fixture sources and
// requires byte identity — any change to the generator or the planner's
// analysis shows up as a diff here.
func TestEmitIsGolden(t *testing.T) {
	cases := []struct {
		desc, pkg, fixture string
	}{
		{"ipars_fixture.dvd", "genipars", "genipars/ipars_gen.go"},
		{"titan_fixture.dvd", "gentitan", "gentitan/titan_gen.go"},
		{"pinned_fixture.dvd", "genpinned", "genpinned/pinned_gen.go"},
	}
	for _, c := range cases {
		p := loadPlan(t, c.desc)
		got, err := Emit(p, c.pkg)
		if err != nil {
			t.Fatalf("%s: Emit: %v", c.desc, err)
		}
		want, err := os.ReadFile(c.fixture)
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s: emitted source differs from checked-in fixture %s;\n"+
				"regenerate with: go run ./cmd/dvcodegen -desc internal/codegen/testdata/%s -pkg %s -o internal/codegen/%s",
				c.desc, c.fixture, c.desc, c.pkg, c.fixture)
		}
	}
}

// TestGeneratedIparsMatchesPlanner runs the compiled-in generated index
// function against the generic planner for the full query space of the
// fixture: both must produce identical AFC lists.
func TestGeneratedIparsMatchesPlanner(t *testing.T) {
	p := loadPlan(t, "ipars_fixture.dvd")
	allAttrs := p.Schema.Names()
	queries := []string{
		"SELECT * FROM IparsData",
		"SELECT * FROM IparsData WHERE REL = 1",
		"SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 3",
		"SELECT * FROM IparsData WHERE REL IN (0) AND TIME = 5",
		"SELECT * FROM IparsData WHERE TIME > 99",
		"SELECT * FROM IparsData WHERE SOIL > 0.5",
		"SELECT * FROM IparsData WHERE TIME > 3 AND TIME < 2",
	}
	for _, sql := range queries {
		q := sqlparser.MustParse(sql)
		ranges := query.ExtractRanges(q.Where)
		want, err := p.Generate(ranges, allAttrs, nil)
		if err != nil {
			t.Fatalf("%s: Generate: %v", sql, err)
		}
		got := genipars.Index(ranges)
		if len(got) != len(want) {
			t.Fatalf("%s: generated %d AFCs, planner %d", sql, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: AFC %d differs:\ngen:  %s\nplan: %s", sql, i, got[i].String(), want[i].String())
			}
		}
	}
}

func TestGeneratedTitanMatchesPlanner(t *testing.T) {
	// Materialize the fixture's dataset so real index files exist.
	spec := gen.TitanSpec{Points: 100, XMax: 100, YMax: 100, ZMax: 10,
		TilesX: 2, TilesY: 2, TilesZ: 1, Nodes: 1, Seed: 1}
	root := t.TempDir()
	if _, err := gen.WriteTitan(root, spec); err != nil {
		t.Fatal(err)
	}
	p := loadPlan(t, "titan_fixture.dvd")
	load := func(node, path string) (*index.ChunkIndex, error) {
		return index.ReadFile(filepath.Join(root, node, filepath.FromSlash(path)))
	}
	planLoader := func(fi metadata.FileInstance) (*index.ChunkIndex, error) {
		return load(fi.Node(), fi.Path())
	}
	allAttrs := p.Schema.Names()
	for _, sql := range []string{
		"SELECT * FROM TitanData",
		"SELECT * FROM TitanData WHERE X <= 40 AND Y <= 40",
		"SELECT * FROM TitanData WHERE X > 1000",
		"SELECT * FROM TitanData WHERE X > 5 AND X < 2",
	} {
		q := sqlparser.MustParse(sql)
		ranges := query.ExtractRanges(q.Where)
		want, err := p.Generate(ranges, allAttrs, planLoader)
		if err != nil {
			t.Fatalf("%s: Generate: %v", sql, err)
		}
		got, err := gentitan.Index(ranges, load)
		if err != nil {
			t.Fatalf("%s: generated Index: %v", sql, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: generated %d AFCs, planner %d", sql, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: AFC %d differs:\ngen:  %s\nplan: %s", sql, i, got[i].String(), want[i].String())
			}
		}
	}
	// The generated schema matches the plan's.
	if gentitan.Schema().String() != p.Schema.String() {
		t.Error("generated Schema() differs")
	}
	if genipars.Schema().NumAttrs() != 8 {
		t.Error("genipars schema wrong")
	}
}

// TestGeneratedPinnedMatchesPlanner exercises the pinned-dimension
// case: one leaf loops over I while the other stores one file per I
// value, so every group joins at a single pinned I. The generated code
// must agree with the planner on every query.
func TestGeneratedPinnedMatchesPlanner(t *testing.T) {
	p := loadPlan(t, "pinned_fixture.dvd")
	allAttrs := p.Schema.Names()
	for _, sql := range []string{
		"SELECT * FROM PinData",
		"SELECT * FROM PinData WHERE I = 3",
		"SELECT * FROM PinData WHERE I >= 2 AND I <= 4 AND J = 1",
		"SELECT * FROM PinData WHERE J > 1",
		"SELECT * FROM PinData WHERE I > 99",
	} {
		q := sqlparser.MustParse(sql)
		ranges := query.ExtractRanges(q.Where)
		want, err := p.Generate(ranges, allAttrs, nil)
		if err != nil {
			t.Fatalf("%s: Generate: %v", sql, err)
		}
		got := genpinned.Index(ranges)
		if len(got) != len(want) {
			t.Fatalf("%s: generated %d AFCs, planner %d", sql, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: AFC %d differs:\ngen:  %s\nplan: %s", sql, i, got[i].String(), want[i].String())
			}
		}
	}
	// Sanity: the full scan joins 6 pinned groups × 1 axis run.
	full := genpinned.Index(query.Ranges{})
	if len(full) != 6 {
		t.Errorf("full scan AFCs = %d, want 6", len(full))
	}
	var rows int64
	for _, a := range full {
		rows += a.NumRows
	}
	if rows != 6*4 {
		t.Errorf("full scan rows = %d, want 24", rows)
	}
}

// TestEmitPinnedAxis emits code for a layout whose row axis itself is
// pinned by a file binding; the generated chunk must be a single row
// with constant RowDims.
func TestEmitPinnedAxis(t *testing.T) {
	src := `
[S]
J = int
A = float
B = double
[AxData]
DatasetDescription = S
DIR[0] = node0/rand
Dataset "AxData" {
  DATATYPE { S }
  DATAINDEX { J }
  Dataset "leaf0" {
    DATASPACE { LOOP J 0:3:1 { A } }
    DATA { DIR[0]/f0 }
  }
  Dataset "leaf1" {
    DATASPACE { B }
    DATA { DIR[0]/f1.$J J = 0:3:1 }
  }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := afc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Emit(p, "genax")
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	for _, want := range []string{
		"NumRows: int64(1)",                  // pinned axis: one row per group
		`RowDims: []afc.RowDim{{Name: "J"`,   // constant row-dim
		`ranges.Get("J").Contains(3)`,        // binding guard per group
		`File: "rand/f0", Offset: int64(12)`, // folded pinned offset (J=3)
	} {
		if !strings.Contains(code, want) {
			t.Errorf("emitted code missing %q:\n%s", want, code)
		}
	}
}

// TestEmitByteOrder verifies BYTEORDER { BIG } reaches the emitted
// segment literals.
func TestEmitByteOrder(t *testing.T) {
	src := `
[S]
T = int
A = float
[D]
DatasetDescription = S
DIR[0] = n0/d
Dataset "d" {
  DATATYPE { S }
  BYTEORDER { BIG }
  DATASPACE { LOOP T 0:3:1 { A } }
  DATA { DIR[0]/f }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := afc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Emit(p, "genbig")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "BigEndian: true") {
		t.Errorf("emitted code lost byte order:\n%s", code)
	}
}

// TestEmitAllIparsLayouts ensures the emitter handles every layout the
// generator can produce (compiling the output via go/format already
// happened inside Emit).
func TestEmitAllIparsLayouts(t *testing.T) {
	spec := gen.IparsSpec{Realizations: 2, TimeSteps: 3, GridPoints: 8, Partitions: 2, Attrs: 4, Seed: 2}
	for _, l := range gen.IparsLayouts() {
		src, err := gen.IparsDescriptor(spec, l)
		if err != nil {
			t.Fatal(err)
		}
		d, err := metadata.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := afc.Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		code, err := Emit(p, "gen"+strings.ToLower(l))
		if err != nil {
			t.Fatalf("%s: Emit: %v", l, err)
		}
		if !strings.Contains(code, "func Index(ranges query.Ranges)") {
			t.Errorf("%s: no Index function emitted", l)
		}
		if !strings.Contains(code, "DO NOT EDIT") {
			t.Errorf("%s: missing generated-code marker", l)
		}
	}
}

// TestGeneratedRowDims exercises a layout whose row axis is a schema
// attribute, so the generated code must synthesize RowDims.
func TestGeneratedRowDims(t *testing.T) {
	src := `
[S]
T = int
A = float
[D]
DatasetDescription = S
DIR[0] = n0/d
Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP T 1:10:1 { A } }
  DATA { DIR[0]/f }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := afc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Emit(p, "genrd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "RowDims:") || !strings.Contains(code, `afc.RowDim{{Name: "T"`) {
		t.Errorf("no RowDims in emitted code:\n%s", code)
	}
	if !strings.Contains(code, "axisRun.Count()") {
		t.Errorf("axis clipping missing:\n%s", code)
	}
}
