// Package layout compiles the DATASPACE loop nests of a meta-data
// descriptor into affine access paths: for every attribute stored in a
// file, a base offset plus one (stride, extent) term per enclosing loop.
// All later machinery — aligned-file-chunk computation, extraction, and
// code generation — reduces to arithmetic over these paths.
//
// Compilation is two-phase, mirroring the paper's design: CompileLeaf
// performs the symbolic analysis once per descriptor; Instantiate
// resolves a concrete file's bound variables (its implicit attributes,
// e.g. $DIRID) into integer strides and extents. Neither phase runs per
// query.
package layout

import (
	"fmt"

	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

// Leaf is the compiled symbolic layout of one DATASPACE leaf dataset.
type Leaf struct {
	Node *metadata.DatasetNode
	// Kinds maps every attribute visible in the leaf (schema plus
	// DATATYPE extras) to its kind.
	Kinds map[string]schema.Kind
	// payload lists the attributes stored in the dataspace, in document
	// order.
	payload []string
}

// CompileLeaf validates and compiles the dataspace of a leaf node
// against the attribute table visible at that node.
func CompileLeaf(node *metadata.DatasetNode, kinds map[string]schema.Kind) (*Leaf, error) {
	if node.Space == nil {
		return nil, fmt.Errorf("layout: dataset %q has no DATASPACE", node.Name)
	}
	l := &Leaf{Node: node, Kinds: kinds}
	seen := map[string]bool{}
	var walk func(items []metadata.SpaceItem) error
	walk = func(items []metadata.SpaceItem) error {
		for _, it := range items {
			switch v := it.(type) {
			case metadata.AttrRef:
				if seen[v.Name] {
					return fmt.Errorf("layout: dataset %q stores attribute %q twice", node.Name, v.Name)
				}
				if _, ok := kinds[v.Name]; !ok {
					return fmt.Errorf("layout: dataset %q stores unknown attribute %q", node.Name, v.Name)
				}
				seen[v.Name] = true
				l.payload = append(l.payload, v.Name)
			case *metadata.Loop:
				if err := walk(v.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(node.Space.Items); err != nil {
		return nil, err
	}
	if len(l.payload) == 0 {
		return nil, fmt.Errorf("layout: dataset %q stores no attributes", node.Name)
	}
	return l, nil
}

// PayloadAttrs returns the attributes stored in the leaf's files, in
// document order.
func (l *Leaf) PayloadAttrs() []string {
	return append([]string(nil), l.payload...)
}

// Dim is one concrete loop dimension of a file: an inclusive integer
// range with a step.
type Dim struct {
	Var          string
	Lo, Hi, Step int64
}

// Count returns the number of iterations of the dimension.
func (d Dim) Count() int64 {
	if d.Lo > d.Hi {
		return 0
	}
	return (d.Hi-d.Lo)/d.Step + 1
}

// AccessStep is one loop term of an affine access path.
type AccessStep struct {
	Var         string
	Lo, Step    int64 // the loop's lower bound and step
	StrideBytes int64 // bytes between consecutive iterations
}

// Access is the concrete affine access path of one attribute in a file:
//
//	offset(vals) = Base + Σ_i ((vals[Var_i] - Lo_i) / Step_i) * StrideBytes_i
type Access struct {
	Attr  string
	Kind  schema.Kind
	Size  int64
	Base  int64
	Steps []AccessStep
}

// Offset computes the byte offset of the attribute's element for the
// given dimension values. Values must include every step variable.
func (a *Access) Offset(vals map[string]int64) (int64, error) {
	off := a.Base
	for _, s := range a.Steps {
		v, ok := vals[s.Var]
		if !ok {
			return 0, fmt.Errorf("layout: access to %s needs dimension %s", a.Attr, s.Var)
		}
		if (v-s.Lo)%s.Step != 0 {
			return 0, fmt.Errorf("layout: dimension %s value %d not on lattice %d:%d", s.Var, v, s.Lo, s.Step)
		}
		off += (v - s.Lo) / s.Step * s.StrideBytes
	}
	return off, nil
}

// StrideAlong returns the byte stride of the access along the given
// dimension, or 0 if the attribute does not vary along it.
func (a *Access) StrideAlong(dim string) int64 {
	for _, s := range a.Steps {
		if s.Var == dim {
			return s.StrideBytes
		}
	}
	return 0
}

// FileLayout is the fully concrete layout of one file instance.
type FileLayout struct {
	// Env is the binding environment of the file instance.
	Env metadata.Env
	// Dims lists the loop dimensions, outermost first (first-occurrence
	// order). Sibling loops reusing a variable must agree on bounds and
	// appear once.
	Dims []Dim
	// Accesses holds one access path per stored attribute, in document
	// order.
	Accesses []Access
	// TotalBytes is the exact file size implied by the layout.
	TotalBytes int64
}

// Dim returns the named dimension and whether it exists.
func (fl *FileLayout) Dim(name string) (Dim, bool) {
	for _, d := range fl.Dims {
		if d.Var == name {
			return d, true
		}
	}
	return Dim{}, false
}

// Access returns the access path for attr, or nil.
func (fl *FileLayout) Access(attr string) *Access {
	for i := range fl.Accesses {
		if fl.Accesses[i].Attr == attr {
			return &fl.Accesses[i]
		}
	}
	return nil
}

// HasAttr reports whether the file stores attr.
func (fl *FileLayout) HasAttr(attr string) bool { return fl.Access(attr) != nil }

// Instantiate resolves the leaf's loop bounds under a file instance's
// binding environment, producing concrete strides, extents, and the
// exact file size.
func (l *Leaf) Instantiate(env metadata.Env) (*FileLayout, error) {
	fl := &FileLayout{Env: env}
	inst := &instantiator{env: env, fl: fl, leaf: l}
	size, err := inst.sizeOf(l.Node.Space.Items, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("layout: dataset %q: %w", l.Node.Name, err)
	}
	fl.TotalBytes = size
	return fl, nil
}

type instantiator struct {
	env  metadata.Env
	fl   *FileLayout
	leaf *Leaf
}

// sizeOf computes the byte size of an item list and, as a side effect,
// records dimension and access-path information. enclosing carries the
// (var, lo, step, stride-placeholder index) of enclosing loops via the
// partial []AccessStep — strides of enclosing loops are filled in after
// their body size is known, so the recursion returns sizes bottom-up and
// patches the steps.
func (in *instantiator) sizeOf(items []metadata.SpaceItem, enclosing []AccessStep, base int64) (int64, error) {
	off := base
	for _, it := range items {
		switch v := it.(type) {
		case metadata.AttrRef:
			kind := in.leaf.Kinds[v.Name]
			acc := Access{
				Attr:  v.Name,
				Kind:  kind,
				Size:  int64(kind.Size()),
				Base:  off,
				Steps: append([]AccessStep(nil), enclosing...),
			}
			in.fl.Accesses = append(in.fl.Accesses, acc)
			off += acc.Size
		case *metadata.Loop:
			lo, err := v.Lo.Eval(in.env)
			if err != nil {
				return 0, err
			}
			hi, err := v.Hi.Eval(in.env)
			if err != nil {
				return 0, err
			}
			step, err := v.Step.Eval(in.env)
			if err != nil {
				return 0, err
			}
			if step <= 0 {
				return 0, fmt.Errorf("loop %s: non-positive step %d", v.Var, step)
			}
			if lo > hi {
				return 0, fmt.Errorf("loop %s: empty range %d:%d", v.Var, lo, hi)
			}
			dim := Dim{Var: v.Var, Lo: lo, Hi: hi, Step: step}
			if prev, ok := in.fl.Dim(v.Var); ok {
				if prev != dim {
					return 0, fmt.Errorf("loop %s: inconsistent bounds %d:%d:%d vs %d:%d:%d",
						v.Var, prev.Lo, prev.Hi, prev.Step, lo, hi, step)
				}
			} else {
				in.fl.Dims = append(in.fl.Dims, dim)
			}
			// Record accesses of the body with a placeholder stride, then
			// patch the stride once the body size is known.
			firstAcc := len(in.fl.Accesses)
			stepIdx := len(enclosing)
			bodySteps := append(append([]AccessStep(nil), enclosing...),
				AccessStep{Var: v.Var, Lo: lo, Step: step})
			bodySize, err := in.sizeOf(v.Body, bodySteps, off)
			if err != nil {
				return 0, err
			}
			stride := bodySize - off
			for i := firstAcc; i < len(in.fl.Accesses); i++ {
				in.fl.Accesses[i].Steps[stepIdx].StrideBytes = stride
			}
			off += stride * dim.Count()
		}
	}
	return off, nil
}
