package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

func mustParse(t *testing.T, src string) *metadata.Descriptor {
	t.Helper()
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func kindsOf(t *testing.T, d *metadata.Descriptor, n *metadata.DatasetNode) map[string]schema.Kind {
	t.Helper()
	sch, extras, err := d.EffectiveSchema(n)
	if err != nil {
		t.Fatalf("EffectiveSchema: %v", err)
	}
	kinds := make(map[string]schema.Kind)
	for _, a := range sch.Attrs() {
		kinds[a.Name] = a.Kind
	}
	for _, a := range extras {
		kinds[a.Name] = a.Kind
	}
	return kinds
}

const iparsSrc = `
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

Dataset "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { Dataset ipars1 Dataset ipars2 }
  Dataset "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y Z }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  Dataset "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
`

func TestCompileLeafIpars(t *testing.T) {
	d := mustParse(t, iparsSrc)
	ip2 := d.Layout.Children[1]
	leaf, err := CompileLeaf(ip2, kindsOf(t, d, ip2))
	if err != nil {
		t.Fatalf("CompileLeaf: %v", err)
	}
	attrs := leaf.PayloadAttrs()
	if len(attrs) != 2 || attrs[0] != "SOIL" || attrs[1] != "SGAS" {
		t.Errorf("payload = %v", attrs)
	}
}

func TestInstantiateIpars2(t *testing.T) {
	d := mustParse(t, iparsSrc)
	ip2 := d.Layout.Children[1]
	leaf, err := CompileLeaf(ip2, kindsOf(t, d, ip2))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := leaf.Instantiate(metadata.Env{"DIRID": 1, "REL": 2})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	// 500 time steps × 100 grid points × (4+4) bytes.
	if fl.TotalBytes != 500*100*8 {
		t.Errorf("TotalBytes = %d", fl.TotalBytes)
	}
	if len(fl.Dims) != 2 || fl.Dims[0].Var != "TIME" || fl.Dims[1].Var != "GRID" {
		t.Fatalf("Dims = %+v", fl.Dims)
	}
	grid, _ := fl.Dim("GRID")
	if grid.Lo != 101 || grid.Hi != 200 || grid.Count() != 100 {
		t.Errorf("GRID dim = %+v", grid)
	}
	soil := fl.Access("SOIL")
	sgas := fl.Access("SGAS")
	if soil == nil || sgas == nil {
		t.Fatal("missing accesses")
	}
	if soil.Base != 0 || sgas.Base != 4 {
		t.Errorf("bases = %d, %d", soil.Base, sgas.Base)
	}
	if soil.StrideAlong("TIME") != 800 || soil.StrideAlong("GRID") != 8 {
		t.Errorf("SOIL strides = %d, %d", soil.StrideAlong("TIME"), soil.StrideAlong("GRID"))
	}
	if soil.StrideAlong("NOPE") != 0 {
		t.Error("stride along missing dim should be 0")
	}
	// Offset of SOIL at TIME=3, GRID=105: (3-1)*800 + (105-101)*8 = 1632.
	off, err := soil.Offset(map[string]int64{"TIME": 3, "GRID": 105})
	if err != nil || off != 1632 {
		t.Errorf("Offset = %d, %v", off, err)
	}
	// SGAS at the same point is 4 bytes later.
	off2, _ := sgas.Offset(map[string]int64{"TIME": 3, "GRID": 105})
	if off2 != 1636 {
		t.Errorf("SGAS offset = %d", off2)
	}
	if !fl.HasAttr("SOIL") || fl.HasAttr("X") {
		t.Error("HasAttr misbehaves")
	}
}

func TestInstantiateCoords(t *testing.T) {
	d := mustParse(t, iparsSrc)
	ip1 := d.Layout.Children[0]
	leaf, err := CompileLeaf(ip1, kindsOf(t, d, ip1))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := leaf.Instantiate(metadata.Env{"DIRID": 0})
	if err != nil {
		t.Fatal(err)
	}
	if fl.TotalBytes != 100*12 {
		t.Errorf("TotalBytes = %d", fl.TotalBytes)
	}
	y := fl.Access("Y")
	if y.Base != 4 || y.StrideAlong("GRID") != 12 {
		t.Errorf("Y = %+v", y)
	}
	off, _ := y.Offset(map[string]int64{"GRID": 5})
	if off != 4*12+4 {
		t.Errorf("Y offset at GRID=5: %d", off)
	}
}

const soaSrc = `
[S]
A = float
B = double

[D]
DatasetDescription = S
DIR[0] = n0/d

Dataset "d" {
  DATATYPE { S }
  DATASPACE {
    LOOP T 0:1:1 {
      LOOP G 0:9:1 { A }
      LOOP G 0:9:1 { B }
    }
  }
  DATA { DIR[0]/f }
}
`

func TestInstantiateSOA(t *testing.T) {
	d := mustParse(t, soaSrc)
	n := d.Layout
	leaf, err := CompileLeaf(n, kindsOf(t, d, n))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := leaf.Instantiate(metadata.Env{})
	if err != nil {
		t.Fatal(err)
	}
	// Per T iteration: 10×4 (A array) + 10×8 (B array) = 120; total 240.
	if fl.TotalBytes != 240 {
		t.Errorf("TotalBytes = %d", fl.TotalBytes)
	}
	// G appears in two sibling loops but is a single dimension.
	if len(fl.Dims) != 2 {
		t.Fatalf("Dims = %+v", fl.Dims)
	}
	a, b := fl.Access("A"), fl.Access("B")
	if a.StrideAlong("T") != 120 || a.StrideAlong("G") != 4 {
		t.Errorf("A strides = %d/%d", a.StrideAlong("T"), a.StrideAlong("G"))
	}
	if b.Base != 40 || b.StrideAlong("T") != 120 || b.StrideAlong("G") != 8 {
		t.Errorf("B = base %d strides %d/%d", b.Base, b.StrideAlong("T"), b.StrideAlong("G"))
	}
	// B at T=1, G=2: 120 + 40 + 2*8 = 176.
	off, err := b.Offset(map[string]int64{"T": 1, "G": 2})
	if err != nil || off != 176 {
		t.Errorf("B offset = %d, %v", off, err)
	}
}

func TestInstantiateErrors(t *testing.T) {
	// Inconsistent sibling bounds for the same variable.
	src := `
[S]
A = float
B = float
[D]
DatasetDescription = S
DIR[0] = n0/d
Dataset "d" {
  DATATYPE { S }
  DATASPACE {
    LOOP G 0:9:1 { A }
    LOOP G 0:8:1 { B }
  }
  DATA { DIR[0]/f }
}
`
	d := mustParse(t, src)
	leaf, err := CompileLeaf(d.Layout, kindsOf(t, d, d.Layout))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.Instantiate(metadata.Env{}); err == nil {
		t.Error("inconsistent sibling bounds accepted")
	}

	// Unbound $VAR in a bound surfaces at instantiation.
	d2 := mustParse(t, iparsSrc)
	ip1 := d2.Layout.Children[0]
	leaf2, _ := CompileLeaf(ip1, kindsOf(t, d2, ip1))
	if _, err := leaf2.Instantiate(metadata.Env{}); err == nil {
		t.Error("missing DIRID accepted")
	}
}

func TestCompileLeafErrors(t *testing.T) {
	// Duplicate attribute in one dataspace.
	src := `
[S]
A = float
[D]
DatasetDescription = S
DIR[0] = n0/d
Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP G 0:9:1 { A A } }
  DATA { DIR[0]/f }
}
`
	// The metadata validator doesn't reject duplicates (that's a layout
	// concern), so build the node manually to exercise CompileLeaf.
	d, err := metadata.Parse(src)
	if err != nil {
		t.Skipf("parser rejected duplicate early: %v", err)
	}
	if _, err := CompileLeaf(d.Layout, kindsOf(t, d, d.Layout)); err == nil {
		t.Error("duplicate payload attribute accepted")
	}
}

func TestOffsetErrors(t *testing.T) {
	a := Access{Attr: "A", Size: 4, Steps: []AccessStep{{Var: "G", Lo: 0, Step: 2, StrideBytes: 4}}}
	if _, err := a.Offset(map[string]int64{}); err == nil {
		t.Error("missing dim accepted")
	}
	if _, err := a.Offset(map[string]int64{"G": 3}); err == nil {
		t.Error("off-lattice value accepted")
	}
}

// Property: for a random AOS loop nest, the element intervals
// [offset, offset+size) over all dimension values and attributes
// exactly partition [0, TotalBytes).
func TestAccessPartitionQuick(t *testing.T) {
	kinds := map[string]schema.Kind{
		"A": schema.Float, "B": schema.Double, "C": schema.Short, "D": schema.Char,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random nest: 1-3 loops deep, random attrs at each level.
		attrsLeft := []string{"A", "B", "C", "D"}
		rng.Shuffle(len(attrsLeft), func(i, j int) { attrsLeft[i], attrsLeft[j] = attrsLeft[j], attrsLeft[i] })
		vars := []string{"I", "J", "K"}
		depth := rng.Intn(3) + 1
		var build func(level int) []metadata.SpaceItem
		build = func(level int) []metadata.SpaceItem {
			var items []metadata.SpaceItem
			// Maybe an attribute before the loop.
			take := func() {
				if len(attrsLeft) > 0 && rng.Intn(2) == 0 {
					items = append(items, metadata.AttrRef{Name: attrsLeft[0]})
					attrsLeft = attrsLeft[1:]
				}
			}
			take()
			if level < depth {
				lo := int64(rng.Intn(5))
				cnt := int64(rng.Intn(4) + 1)
				step := int64(rng.Intn(2) + 1)
				body := build(level + 1)
				items = append(items, &metadata.Loop{
					Var:  vars[level],
					Lo:   metadata.NumberExpr{Value: lo},
					Hi:   metadata.NumberExpr{Value: lo + (cnt-1)*step},
					Step: metadata.NumberExpr{Value: step},
					Body: body,
				})
			}
			take()
			if len(items) == 0 {
				items = append(items, metadata.AttrRef{Name: attrsLeft[0]})
				attrsLeft = attrsLeft[1:]
			}
			return items
		}
		items := build(0)
		node := &metadata.DatasetNode{
			Name:  "rand",
			Space: &metadata.Dataspace{Items: items},
			Files: []metadata.FileClause{{Dir: metadata.NumberExpr{Value: 0},
				Name: []metadata.NamePart{{Lit: "f"}}}},
		}
		leaf, err := CompileLeaf(node, kinds)
		if err != nil {
			return false
		}
		fl, err := leaf.Instantiate(metadata.Env{})
		if err != nil {
			return false
		}
		covered := make([]bool, fl.TotalBytes)
		// Enumerate the full cartesian product of dims.
		var dims []Dim = fl.Dims
		vals := map[string]int64{}
		var enum func(i int) bool
		enum = func(i int) bool {
			if i == len(dims) {
				for _, acc := range fl.Accesses {
					// Skip accesses not varying over trailing dims: they
					// are covered only for the dims they use. Offset needs
					// only its own vars, which vals includes.
					off, err := acc.Offset(vals)
					if err != nil {
						return false
					}
					// Only mark each element once: when the unused dims
					// are at their lower bounds.
					atLo := true
					used := map[string]bool{}
					for _, s := range acc.Steps {
						used[s.Var] = true
					}
					for _, d := range dims {
						if !used[d.Var] && vals[d.Var] != d.Lo {
							atLo = false
						}
					}
					if !atLo {
						continue
					}
					for b := off; b < off+acc.Size; b++ {
						if b < 0 || b >= fl.TotalBytes || covered[b] {
							return false
						}
						covered[b] = true
					}
				}
				return true
			}
			d := dims[i]
			for v := d.Lo; v <= d.Hi; v += d.Step {
				vals[d.Var] = v
				if !enum(i + 1) {
					return false
				}
			}
			return true
		}
		if !enum(0) {
			return false
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
