package cluster

import (
	"context"
	"net"
	"sort"
	"strings"
	"testing"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// startCluster generates a CLUSTER-layout IPARS dataset and launches
// one node server per partition, returning a ready coordinator.
func startCluster(t *testing.T, s gen.IparsSpec) (*Coordinator, gen.IparsSpec) {
	t.Helper()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[string]string{}
	for i := 0; i < s.Partitions; i++ {
		// Each node gets its own service over the shared root (on a real
		// cluster each node sees only its local disk; the resolver makes
		// that irrelevant here).
		svc, err := core.Open(descPath, root)
		if err != nil {
			t.Fatal(err)
		}
		name := svc.Nodes()[i]
		node, err := StartNode(context.Background(), name, svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node.Logf = t.Logf
		t.Cleanup(func() { node.Close() })
		addrs[name] = node.Addr()
	}
	coord, err := NewCoordinator(d, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, s
}

func defaultSpec() gen.IparsSpec {
	return gen.IparsSpec{
		Realizations: 2, TimeSteps: 5, GridPoints: 24, Partitions: 3,
		Attrs: 4, Seed: 33,
	}
}

func TestDistributedFullScan(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	rows, res, err := coord.CollectQueryContext(context.Background(), "SELECT * FROM IparsData")
	if err != nil {
		t.Fatalf("CollectQuery: %v", err)
	}
	if int64(len(rows)) != s.IparsTotalRows() {
		t.Errorf("rows = %d, want %d", len(rows), s.IparsTotalRows())
	}
	if res.Rows != s.IparsTotalRows() {
		t.Errorf("trailer rows = %d", res.Rows)
	}
	// Work spread over all three nodes, equally (uniform partitions).
	if len(res.PerNode) != 3 {
		t.Fatalf("PerNode = %v", res.PerNode)
	}
	for n, c := range res.PerNode {
		if c != s.IparsTotalRows()/3 {
			t.Errorf("node %s produced %d rows", n, c)
		}
	}
	if res.Stats.RowsScanned != s.IparsTotalRows() {
		t.Errorf("scanned = %d", res.Stats.RowsScanned)
	}
}

func TestDistributedMatchesLocal(t *testing.T) {
	s := defaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := startCluster(t, s)

	for _, sql := range []string{
		"SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 3",
		"SELECT SOIL, TIME FROM IparsData WHERE SGAS > 0.5 AND REL = 1",
		"SELECT * FROM IparsData WHERE TIME > 100", // empty
	} {
		lrows, err := local.QueryContext(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		var want []table.Row
		for lrows.Next() {
			want = append(want, lrows.Row())
		}
		if err := lrows.Close(); err != nil {
			t.Fatal(err)
		}
		got, _, err := coord.CollectQueryContext(context.Background(), sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: distributed %d rows, local %d", sql, len(got), len(want))
		}
		key := func(r table.Row) string {
			return table.FormatRow(r)
		}
		a := make([]string, len(got))
		b := make([]string, len(want))
		for i := range got {
			a[i] = key(got[i])
			b[i] = key(want[i])
		}
		sort.Strings(a)
		sort.Strings(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: row %d differs:\n%s\n%s", sql, i, a[i], b[i])
			}
		}
	}
}

func TestServerSidePartitioning(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	sinks := []storm.Sink{&storm.SliceSink{}, &storm.SliceSink{}}
	spec := storm.PartitionSpec{Scheme: storm.HashAttr, NumDests: 2, Attr: "TIME"}
	res, err := coord.QueryPartitionedContext(context.Background(), "SELECT TIME, SOIL FROM IparsData", spec, sinks)
	if err != nil {
		t.Fatalf("QueryPartitioned: %v", err)
	}
	n0 := len(sinks[0].(*storm.SliceSink).Rows)
	n1 := len(sinks[1].(*storm.SliceSink).Rows)
	if int64(n0+n1) != s.IparsTotalRows() || res.Rows != s.IparsTotalRows() {
		t.Errorf("partitioned rows = %d + %d, want %d", n0, n1, s.IparsTotalRows())
	}
	if n0 == 0 || n1 == 0 {
		t.Errorf("degenerate partitioning: %d/%d", n0, n1)
	}
	// Hash partitioning keeps equal TIME values on one destination.
	seen := map[float64]int{}
	for d, s := range sinks {
		for _, r := range s.(*storm.SliceSink).Rows {
			v := r[0].AsFloat()
			if prev, ok := seen[v]; ok && prev != d {
				t.Fatalf("TIME=%g appears on destinations %d and %d", v, prev, d)
			}
			seen[v] = d
		}
	}
	// Mismatched sink count is rejected.
	if _, err := coord.QueryPartitionedContext(context.Background(), "SELECT TIME FROM IparsData", spec, sinks[:1]); err == nil {
		t.Error("sink count mismatch accepted")
	}
}

func TestRangePartitionedQuery(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	sinks := []storm.Sink{&storm.SliceSink{}, &storm.SliceSink{}, &storm.SliceSink{}}
	spec := storm.PartitionSpec{
		Scheme: storm.RangeAttr, NumDests: 3, Attr: "TIME",
		Bounds: []float64{2.5, 4.5},
	}
	if _, err := coord.QueryPartitionedContext(context.Background(), "SELECT TIME FROM IparsData", spec, sinks); err != nil {
		t.Fatal(err)
	}
	perTime := s.IparsTotalRows() / int64(s.TimeSteps)
	wants := []int64{2 * perTime, 2 * perTime, 1 * perTime} // TIME 1-2 | 3-4 | 5
	for d, sink := range sinks {
		rows := sink.(*storm.SliceSink).Rows
		if int64(len(rows)) != wants[d] {
			t.Errorf("dest %d got %d rows, want %d", d, len(rows), wants[d])
		}
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	coord, _ := startCluster(t, defaultSpec())
	if _, _, err := coord.CollectQueryContext(context.Background(), "SELECT NOPE FROM IparsData"); err == nil {
		t.Error("bad column accepted")
	}
	if _, _, err := coord.CollectQueryContext(context.Background(), "garbage"); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestCoordinatorMissingNode(t *testing.T) {
	s := defaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(d, map[string]string{"node0": "127.0.0.1:1"}); err == nil {
		t.Error("incomplete address table accepted")
	}
}

func TestDeadNodeError(t *testing.T) {
	s := defaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	// Point every node at a port nobody listens on.
	addrs := map[string]string{}
	for i := 0; i < s.Partitions; i++ {
		addrs["node"+string(rune('0'+i))] = "127.0.0.1:1"
	}
	coord, err := NewCoordinator(d, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData"); err == nil {
		t.Error("dead nodes accepted")
	}
}

func TestNodeRejectsBadFrames(t *testing.T) {
	s := defaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	node, err := StartNode(context.Background(), "node0", svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node.Logf = func(string, ...any) {}
	defer node.Close()

	// Garbage request JSON → 'E' frame tagged with the same query ID.
	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameQuery, 42, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	typ, qid, payload, err := readFrame(conn, nil)
	if err != nil || typ != frameError || qid != 42 {
		t.Fatalf("frame = %q qid=%d, %v", typ, qid, err)
	}
	if !strings.Contains(string(payload), "bad request") {
		t.Errorf("error = %s", payload)
	}
	conn.Close()

	// Wrong protocol version.
	conn2, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFrame(conn2, frameQuery, 1, Request{Version: 99, SQL: "SELECT TIME FROM IparsData"}); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err = readFrame(conn2, nil)
	if err != nil || typ != frameError || !strings.Contains(string(payload), "version") {
		t.Fatalf("version check: %q %s %v", typ, payload, err)
	}
	conn2.Close()

	// A frame type only servers send → the session is torn down.
	conn3, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(conn3, frameRows, 1, []byte{}) //nolint:errcheck
	conn3.Close()

	// Node still serves after bad clients.
	coordAddrs := map[string]string{"node0": node.Addr()}
	_ = coordAddrs
	if node.Name() != "node0" {
		t.Error("Name wrong")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	s := defaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	node, err := StartNode(context.Background(), "node0", svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClusterCacheStatsCrossWire(t *testing.T) {
	coord, _ := startCluster(t, defaultSpec())
	sql := "SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= 3"

	_, cold, err := coord.CollectQueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheMisses == 0 || cold.Stats.FSBytesRead == 0 {
		t.Fatalf("cold distributed query reported no cache traffic: %+v", cold.Stats)
	}
	if cold.QueryStats.CacheMisses != cold.Stats.CacheMisses ||
		cold.QueryStats.FSBytesRead != cold.Stats.FSBytesRead {
		t.Errorf("QueryStats dropped cache counters: %+v vs %+v", cold.QueryStats, cold.Stats)
	}

	// Node services keep their block caches across queries: a repeat of
	// the same query is served warm on every node.
	_, warm, err := coord.CollectQueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rows != cold.Rows || warm.Rows == 0 {
		t.Fatalf("warm rows = %d, cold = %d", warm.Rows, cold.Rows)
	}
	if warm.Stats.FSBytesRead != 0 {
		t.Errorf("warm distributed query read %d fs bytes, want 0", warm.Stats.FSBytesRead)
	}
	if warm.Stats.CacheHits == 0 || warm.Stats.CacheMisses != 0 {
		t.Errorf("warm distributed query not cache-served: %+v", warm.Stats)
	}
	if warm.Stats.BytesRead != cold.Stats.BytesRead {
		t.Errorf("analytic BytesRead changed warm: %d vs %d", warm.Stats.BytesRead, cold.Stats.BytesRead)
	}
}
