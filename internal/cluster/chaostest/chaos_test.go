package chaostest

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datavirt/internal/cache"
	"datavirt/internal/cache/cachetest"
	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
)

const fullScan = "SELECT * FROM IparsData"

// TestKillEachNodeMidQuery is the acceptance gate: for every node in
// the replica chain, crash that node (proxy links dropped, node
// closed) after its leg has streamed at least one row batch, and
// demand the query still return rows byte-identical to a healthy
// local run — the staged-delivery contract means the partial stream
// is discarded and replayed on the standby, never double-delivered.
func TestKillEachNodeMidQuery(t *testing.T) {
	spec := DefaultSpec()
	for i := 0; i < spec.Partitions; i++ {
		victim := "node" + string(rune('0'+i))
		t.Run(victim, func(t *testing.T) {
			c := Start(t, Config{Spec: spec})
			want := c.LocalSorted(t, fullScan)
			base := runtime.NumGoroutine()

			c.Proxies[victim].KillAfter(1, func() { c.Nodes[victim].Close() }) //nolint:errcheck — crash by design
			got, res := c.CollectSorted(t, fullScan)

			AssertSameRows(t, got, want)
			if res.QueryStats.ReplicaFailovers < 1 {
				t.Errorf("ReplicaFailovers = %d, want >= 1", res.QueryStats.ReplicaFailovers)
			}
			if res.QueryStats.LegRedispatches < 1 {
				t.Errorf("LegRedispatches = %d, want >= 1", res.QueryStats.LegRedispatches)
			}
			c.Coord.Close() //nolint:errcheck — always nil
			WaitGoroutines(t, base)
		})
	}
}

// TestBlackholeStallFailover exercises the failure mode a connection
// error never signals: the node stays up, the TCP link stays open,
// but frames stop arriving. Only the per-leg stall watchdog can see
// this; it must abandon the leg and fail over within bounded time.
func TestBlackholeStallFailover(t *testing.T) {
	c := Start(t, Config{})
	c.Coord.LegStallAfter = 200 * time.Millisecond
	want := c.LocalSorted(t, fullScan)
	base := runtime.NumGoroutine()

	c.Proxies["node1"].BlackholeAfter(1)
	start := time.Now()
	got, res := c.CollectSorted(t, fullScan)
	elapsed := time.Since(start)

	AssertSameRows(t, got, want)
	if res.QueryStats.ReplicaFailovers < 1 {
		t.Errorf("ReplicaFailovers = %d, want >= 1", res.QueryStats.ReplicaFailovers)
	}
	// Bounded latency: one stall detection plus a replay, not a hang.
	if elapsed > 15*time.Second {
		t.Errorf("blackholed query took %v, want bounded", elapsed)
	}
	if elapsed < c.Coord.LegStallAfter {
		t.Errorf("query finished in %v, before the %v stall watchdog could have fired",
			elapsed, c.Coord.LegStallAfter)
	}
	c.Coord.Close() //nolint:errcheck — always nil
	WaitGoroutines(t, base)
}

// TestAggregateKillFailover kills a node before its partial-aggregate
// frame is delivered. A double merge would corrupt SUM/AVG/COUNT
// silently, so equality against the local run proves exactly-once.
func TestAggregateKillFailover(t *testing.T) {
	const sql = "SELECT REL, COUNT(*), SUM(TIME), AVG(SOIL) FROM IparsData GROUP BY REL"
	c := Start(t, Config{})
	want := c.LocalSorted(t, sql)

	c.Proxies["node2"].KillAfter(0, func() { c.Nodes["node2"].Close() }) //nolint:errcheck — crash by design
	got, res := c.CollectSorted(t, sql)

	AssertSameRows(t, got, want)
	if res.QueryStats.ReplicaFailovers < 1 {
		t.Errorf("ReplicaFailovers = %d, want >= 1", res.QueryStats.ReplicaFailovers)
	}
}

// TestShedStormFailover drives one replica into admission shedding
// (single execution slot, no queue) under a burst of concurrent
// queries: shed legs must fail over to the standby instead of
// erroring, and every query must still return the full result.
//
// The coordinator's own load-aware placement would dodge the storm —
// it routes legs away from a pool it has dispatched to — so the slot
// is pinned by a deliberately slow holder query from an independent
// coordinator (a second client process), invisible to the storm
// coordinator's in-flight accounting. The storm's legs then land on
// node0, shed at admission, and must fail over.
func TestShedStormFailover(t *testing.T) {
	disk := &cachetest.Disk{}
	// Small blocks × a per-read delay stretch node0's extraction to
	// hundreds of milliseconds — the slot stays held through the storm.
	disk.SetReadDelay(10 * time.Millisecond)
	c := Start(t, Config{
		Node: func(name string, n *cluster.Node) {
			if name == "node0" {
				n.MaxConcurrent = 1
				n.MaxQueue = -1
			}
		},
		Service: func(name string, svc *core.Service) {
			if name == "node0" {
				svc.SetCacheConfig(cache.Config{BlockBytes: 512, OpenFile: disk.Open})
			}
		},
	})
	want := c.LocalSorted(t, fullScan)

	// Holder: occupy node0's only execution slot from a separate
	// coordinator. Admission precedes planning and extraction, so the
	// first read on node0's fault disk proves the slot is held.
	holder := c.ExtraCoordinator(t)
	holderDone := make(chan error, 1)
	go func() {
		_, _, err := holder.CollectQueryContext(context.Background(), fullScan)
		holderDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for disk.Reads.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if disk.Reads.Load() == 0 {
		t.Fatal("holder query never reached node0 extraction")
	}

	const queries = 16
	var shed, failovers, retries atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rows, res, err := c.Coord.CollectQueryContext(context.Background(), fullScan)
			if err != nil {
				errs <- err
				return
			}
			got := SortedRows(rows)
			if len(got) != len(want) {
				t.Errorf("got %d rows, want %d", len(got), len(want))
				return
			}
			for j := range got {
				if got[j] != want[j] {
					t.Errorf("row %d differs under shed storm", j)
					break
				}
			}
			shed.Add(res.QueryStats.ShedQueries)
			failovers.Add(res.QueryStats.ReplicaFailovers)
			retries.Add(res.QueryStats.ReplicaRetries)
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed under shed storm: %v", err)
	}
	if err := <-holderDone; err != nil {
		t.Errorf("holder query failed: %v", err)
	}
	if shed.Load() < 1 {
		t.Errorf("ShedQueries total = %d, want >= 1 (storm never overloaded node0)", shed.Load())
	}
	if failovers.Load()+retries.Load() < 1 {
		t.Errorf("no failovers (%d) or retries (%d) despite %d sheds",
			failovers.Load(), retries.Load(), shed.Load())
	}
	t.Logf("storm: %d shed, %d failed over, %d retried", shed.Load(), failovers.Load(), retries.Load())
}

// TestReadFaultFailover injects physical-I/O chaos on one node via
// cachetest: every read is delayed, and one read fails outright. The
// extraction error must surface as a leg failure and fail over, not
// as a query error.
func TestReadFaultFailover(t *testing.T) {
	disk := &cachetest.Disk{}
	disk.SetReadDelay(time.Millisecond)
	disk.FailReadNumber(3)
	c := Start(t, Config{
		Service: func(name string, svc *core.Service) {
			if name == "node2" {
				svc.SetCacheConfig(cache.Config{BlockBytes: 4096, OpenFile: disk.Open})
			}
		},
	})
	want := c.LocalSorted(t, fullScan)

	got, res := c.CollectSorted(t, fullScan)

	AssertSameRows(t, got, want)
	if res.QueryStats.ReplicaFailovers < 1 {
		t.Errorf("ReplicaFailovers = %d, want >= 1", res.QueryStats.ReplicaFailovers)
	}
	if disk.Reads.Load() < 1 {
		t.Fatalf("fault disk saw no reads — chaos never engaged")
	}
}

// TestCorruptSidecarFailover covers the sparse-index interaction: the
// failover replica finds a corrupt .dvsx sidecar for the partition it
// inherits. The sidecar must degrade to a full scan (identical rows,
// SparseIndexMisses counted), never to wrong pruning.
func TestCorruptSidecarFailover(t *testing.T) {
	const sql = "SELECT SOIL, TIME FROM IparsData WHERE SGAS > 0.3"
	spec := DefaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sparse.BuildDataset(d, sparse.NodeResolver(root), sparse.BuildOptions{BlockBytes: 512}, nil); err != nil {
		t.Fatal(err)
	}
	// Baseline with healthy sidecars, then corrupt every sidecar under
	// partition node0 — the files the standby inherits on failover.
	healthy, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := healthy.Query(sql)
	healthy.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := SortedRows(rows)
	corrupted := 0
	err = filepath.WalkDir(filepath.Join(root, "node0"), func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, sparse.Suffix) {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b[1] ^= 0xFF // break the header magic
		corrupted++
		return os.WriteFile(path, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no sidecars found under node0 — corruption never staged")
	}

	c := StartAt(t, Config{}, spec, root, descPath)
	c.Proxies["node0"].KillAfter(0, func() { c.Nodes["node0"].Close() }) //nolint:errcheck — crash by design
	got, res := c.CollectSorted(t, sql)

	AssertSameRows(t, got, want)
	if res.QueryStats.ReplicaFailovers < 1 {
		t.Errorf("ReplicaFailovers = %d, want >= 1", res.QueryStats.ReplicaFailovers)
	}
	if res.Stats.SparseIndexMisses < 1 {
		t.Errorf("SparseIndexMisses = %d, want >= 1 (corrupt sidecar should fall back, not vanish)",
			res.Stats.SparseIndexMisses)
	}
}

// TestHedgeFailoverNoDoubleDelivery races the hedging path against
// failover: the first stream to node0 stalls before its first frame
// (forcing a hedge), the hedge stream claims the leg, delivers one
// row batch, and then the whole node drops. The staged batch must be
// discarded and the standby's replay delivered exactly once — row
// counts prove no duplication, equality proves no loss.
func TestHedgeFailoverNoDoubleDelivery(t *testing.T) {
	c := Start(t, Config{})
	c.Coord.HedgeAfter = 50 * time.Millisecond
	want := c.LocalSorted(t, fullScan)
	base := runtime.NumGoroutine()

	p := c.Proxies["node0"]
	p.StallFirstConn()
	p.KillAfter(1, func() { c.Nodes["node0"].Close() }) //nolint:errcheck — crash by design
	got, res := c.CollectSorted(t, fullScan)

	AssertSameRows(t, got, want)
	if res.QueryStats.HedgedLegs < 1 {
		t.Errorf("HedgedLegs = %d, want >= 1 (stalled first conn should have hedged)", res.QueryStats.HedgedLegs)
	}
	if res.QueryStats.ReplicaFailovers < 1 {
		t.Errorf("ReplicaFailovers = %d, want >= 1", res.QueryStats.ReplicaFailovers)
	}
	c.Coord.Close() //nolint:errcheck — always nil
	WaitGoroutines(t, base)
}

// TestHealthyReplicatedCluster pins the degenerate case: with no
// fault plan armed, a replicated cluster behaves exactly like the
// unreplicated one — primaries serve their own partitions and no
// failover machinery engages.
func TestHealthyReplicatedCluster(t *testing.T) {
	c := Start(t, Config{})
	want := c.LocalSorted(t, fullScan)
	got, res := c.CollectSorted(t, fullScan)
	AssertSameRows(t, got, want)
	if res.QueryStats.LegRedispatches != 0 || res.QueryStats.ReplicaFailovers != 0 {
		t.Errorf("healthy run redispatched %d / failed over %d legs, want 0/0",
			res.QueryStats.LegRedispatches, res.QueryStats.ReplicaFailovers)
	}
	for _, name := range []string{"node0", "node1", "node2"} {
		if n := c.Proxies[name].DataFrames(); n < 1 {
			t.Errorf("proxy %s forwarded %d data frames, want >= 1", name, n)
		}
	}
}
