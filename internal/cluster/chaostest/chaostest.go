// Package chaostest is the cluster's fault-injection harness: it
// stands up a real replicated cluster — generated dataset, one node
// server per cluster node, TCP proxies in front of every node, a real
// coordinator — and executes scripted fault plans against in-flight
// queries: kill a node after K result frames, blackhole a session
// mid-stream, corrupt sidecar files, delay or short-read a node's
// block I/O (via cachetest), or drive a node into an admission shed
// storm. Tests assert the paper-level contract: a query that survives
// a fault returns byte-identical rows and aggregates to a healthy
// run, within bounded latency, leaking no goroutines.
//
// The package is test support, not production code: it lives under
// internal/cluster so the chaos suite ships with the subsystem it
// exercises, and every helper takes a testing.TB.
package chaostest

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/table"
)

// Config shapes a chaos cluster before traffic arrives.
type Config struct {
	// Spec is the dataset to generate; the zero value means
	// DefaultSpec (3 partitions, 2-way chained replication).
	Spec gen.IparsSpec
	// Node, when set, configures each node server (admission knobs,
	// tracer) before it accepts traffic.
	Node func(name string, n *cluster.Node)
	// Service, when set, configures each node's core service (cache
	// backends, fault-injecting OpenFile hooks) before it serves.
	Service func(name string, svc *core.Service)
}

// DefaultSpec is a dataset big enough that every partition's full
// scan spans several row-batch frames — room to kill a node strictly
// mid-stream.
func DefaultSpec() gen.IparsSpec {
	return gen.IparsSpec{
		Realizations: 2, TimeSteps: 10, GridPoints: 120, Partitions: 3,
		Attrs: 4, Replicas: 2, Seed: 33,
	}
}

// Cluster is a running chaos cluster. Everything is shut down by
// t.Cleanup; kill faults may shut nodes down earlier.
type Cluster struct {
	Coord    *cluster.Coordinator
	Nodes    map[string]*cluster.Node
	Proxies  map[string]*Proxy
	Services map[string]*core.Service
	// Local is a coordinator-independent service over the same data
	// root: the healthy baseline chaos runs are compared against.
	Local *core.Service

	Spec     gen.IparsSpec
	Root     string
	DescPath string

	desc  *metadata.Descriptor
	addrs map[string]string
}

// ExtraCoordinator opens an independent coordinator over the same
// proxied cluster — its session pools and in-flight accounting are
// separate from Coord's, the way two client processes would be.
func (c *Cluster) ExtraCoordinator(t testing.TB) *cluster.Coordinator {
	t.Helper()
	coord, err := cluster.NewCoordinator(c.desc, c.addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() }) //nolint:errcheck — always nil
	return coord
}

// Start generates the dataset and launches the cluster: one node per
// descriptor node name, a frame-counting proxy in front of each, and
// a coordinator dialing through the proxies.
func Start(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	spec := cfg.Spec
	if spec == (gen.IparsSpec{}) {
		spec = DefaultSpec()
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	return StartAt(t, cfg, spec, root, descPath)
}

// StartAt launches the cluster over an already-materialized dataset —
// the hook for plans that damage files (stale sidecars) before any
// service opens them.
func StartAt(t testing.TB, cfg Config, spec gen.IparsSpec, root, descPath string) *Cluster {
	t.Helper()
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })

	c := &Cluster{
		Nodes:    map[string]*cluster.Node{},
		Proxies:  map[string]*Proxy{},
		Services: map[string]*core.Service{},
		Local:    local,
		Spec:     spec,
		Root:     root,
		DescPath: descPath,
	}
	addrs := map[string]string{}
	for _, name := range local.AllNodes() {
		svc, err := core.Open(descPath, root)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Service != nil {
			cfg.Service(name, svc)
		}
		node, err := cluster.StartNode(context.Background(), name, svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node.Logf = func(string, ...any) {} // chaos makes nodes noisy by design
		if cfg.Node != nil {
			cfg.Node(name, node)
		}
		t.Cleanup(func() { node.Close() })
		proxy := NewProxy(t, node.Addr())
		c.Nodes[name] = node
		c.Services[name] = svc
		c.Proxies[name] = proxy
		addrs[name] = proxy.Addr()
	}
	coord, err := cluster.NewCoordinator(d, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() }) //nolint:errcheck — always nil
	c.Coord = coord
	c.desc = d
	c.addrs = addrs
	return c
}

// Kill closes a node mid-everything: listener, connections, in-flight
// extractions, and the proxy in front of it — the whole machine gone.
func (c *Cluster) Kill(name string) {
	c.Proxies[name].Close()
	c.Nodes[name].Close() //nolint:errcheck — the node is being killed, its exit error is the point
}

// CollectSorted runs sql through the coordinator and returns the rows
// as sorted formatted strings (the cluster's only ordering guarantee
// is per-leg, so comparisons sort) plus the merged result.
func (c *Cluster) CollectSorted(t testing.TB, sql string) ([]string, *cluster.Result) {
	t.Helper()
	rows, res, err := c.Coord.CollectQueryContext(context.Background(), sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return SortedRows(rows), res
}

// LocalSorted runs sql on the baseline service.
func (c *Cluster) LocalSorted(t testing.TB, sql string) []string {
	t.Helper()
	rows, err := c.Local.Query(sql)
	if err != nil {
		t.Fatalf("local %q: %v", sql, err)
	}
	return SortedRows(rows)
}

// SortedRows formats and sorts rows for order-insensitive comparison.
func SortedRows(rows []table.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = table.FormatRow(r)
	}
	sort.Strings(keys)
	return keys
}

// AssertSameRows fails unless got and want are byte-identical.
func AssertSameRows(t testing.TB, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// WaitGoroutines polls until the goroutine count drops back to base,
// failing the test if it does not within two seconds.
func WaitGoroutines(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("goroutines leaked: %d before, %d after", base, g)
	}
}

// Proxy is a TCP interposer in front of one node. It forwards frames
// both ways, counting server→client data frames ('R' row batches and
// 'A' partial aggregates) across all connections, and executes one
// scripted fault when the count crosses a threshold:
//
//   - KillAfter: drop every link and refuse new ones (paired with
//     Cluster.Kill for a whole-machine crash).
//   - BlackholeAfter: keep the connections open but deliver nothing
//     further to the client — the stalled-stream failure mode only a
//     per-leg watchdog can see.
//
// StallFirstConn additionally blackholes the first accepted
// connection from byte zero, deterministically forcing the
// coordinator's hedge path before any scripted fault fires.
type Proxy struct {
	ln     net.Listener
	target string

	frames    atomic.Int64 // data frames forwarded server→client
	threshold int64
	action    int32 // 0 none, 1 kill, 2 blackhole
	fired     atomic.Bool

	onKill []func()

	stallFirst atomic.Bool
	connSeq    atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]bool //dvlint:guardedby mu
	closed bool              //dvlint:guardedby mu
}

// NewProxy starts a proxy for target; it is closed by t.Cleanup (or a
// kill fault).
func NewProxy(t testing.TB, target string) *Proxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &Proxy{ln: ln, target: target, conns: map[net.Conn]bool{}}
	t.Cleanup(p.Close)
	go p.acceptLoop()
	return p
}

// Addr is the address the coordinator should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// KillAfter arms the kill fault: after n data frames have been
// forwarded, the next server frame of any kind is not delivered and
// every link drops; each also func runs once after the drop (the
// usual one closes the node itself, turning a link failure into a
// whole-machine crash). Configure before traffic.
func (p *Proxy) KillAfter(n int64, also ...func()) { p.threshold, p.action, p.onKill = n, 1, also }

// BlackholeAfter arms the blackhole fault: after n data frames, the
// proxy swallows all further server→client traffic while keeping the
// connections alive. Configure before traffic.
func (p *Proxy) BlackholeAfter(n int64) { p.threshold, p.action = n, 2 }

// StallFirstConn blackholes the first accepted connection entirely,
// so the first session to this node never produces a frame.
func (p *Proxy) StallFirstConn() { p.stallFirst.Store(true) }

// DataFrames reports how many data frames the proxy delivered.
func (p *Proxy) DataFrames() int64 { return p.frames.Load() }

// Close drops every link and stops accepting. Idempotent.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close() //nolint:errcheck — teardown
	for _, c := range conns {
		c.Close() //nolint:errcheck — teardown
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = true
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // proxy closed
		}
		seq := p.connSeq.Add(1)
		if p.stallFirst.Load() && seq == 1 {
			// The stalled session: swallow the client's bytes (the query
			// frame included) and never answer.
			if !p.track(client) {
				client.Close()
				return
			}
			go func() {
				io.Copy(io.Discard, client) //nolint:errcheck — blackholed by design
				p.untrack(client)
				client.Close()
			}()
			continue
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue // node killed; refuse by hanging up
		}
		if !p.track(client) || !p.track(server) {
			client.Close()
			server.Close()
			return
		}
		go func() {
			// Client→server passes through untouched (cancel frames keep
			// flowing even into a blackholed node).
			io.Copy(server, client) //nolint:errcheck — proxy link, errors mean a side hung up
			server.Close()
		}()
		go func() {
			p.pump(server, client)
			p.untrack(client)
			p.untrack(server)
			client.Close()
			server.Close()
		}()
	}
}

// pump forwards server→client frame by frame, firing the scripted
// fault when the shared data-frame count crosses the threshold.
func (p *Proxy) pump(server, client net.Conn) {
	var hdr [9]byte // len uint32 LE | type byte | qid uint32 LE
	buf := make([]byte, 0, 1<<16)
	for {
		if _, err := io.ReadFull(server, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(server, buf); err != nil {
			return
		}
		typ := hdr[4]
		if p.action != 0 && p.frames.Load() >= p.threshold && p.fired.CompareAndSwap(false, true) {
			if p.action == 1 {
				p.Close()
				for _, f := range p.onKill {
					f()
				}
				return
			}
		}
		if p.fired.Load() && p.action == 2 {
			continue // blackhole: swallow, stay connected
		}
		if _, err := client.Write(hdr[:]); err != nil {
			return
		}
		if _, err := client.Write(buf); err != nil {
			return
		}
		if typ == 'R' || typ == 'A' {
			p.frames.Add(1)
		}
	}
}
