package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/metadata"
	"datavirt/internal/obs"
	"datavirt/internal/sqlparser"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// Coordinator is the client-side entry point of the distributed system:
// it holds the descriptor (for planning and row decoding), knows the
// address of every node server, fans each query out, and merges or
// routes the returned tuple streams. It performs no file I/O.
//
// The timeout fields may be adjusted after NewCoordinator and before
// the first query; they tolerate slow or dead nodes in the spirit of
// the paper's loosely coupled STORM services.
type Coordinator struct {
	svc   *core.Service
	addrs map[string]string // node name → host:port

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// DialRetries is how many times a failed dial is retried with
	// exponential backoff before the node is reported dead (default 2).
	DialRetries int
	// RetryBackoff is the first retry's delay, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// IOTimeout, when positive, bounds every frame write and read on a
	// node connection; a node that stalls longer mid-stream fails the
	// query. Zero relies on context deadlines alone.
	IOTimeout time.Duration

	// dialContext is the dial function; tests substitute it to inject
	// misbehaving nodes and to observe connection lifecycles.
	dialContext func(ctx context.Context, network, addr string) (net.Conn, error)
}

// NewCoordinator plans against the descriptor and dispatches to the
// given node address table. Every node named by the descriptor's
// storage section must appear in addrs.
func NewCoordinator(d *metadata.Descriptor, addrs map[string]string) (*Coordinator, error) {
	svc, err := core.Compile(d, func(node, file string) (string, error) {
		return "", fmt.Errorf("cluster: coordinator does not read data files")
	})
	if err != nil {
		return nil, err
	}
	for _, node := range svc.Nodes() {
		if _, ok := addrs[node]; !ok {
			return nil, fmt.Errorf("cluster: no address for node %q", node)
		}
	}
	return &Coordinator{
		svc:          svc,
		addrs:        addrs,
		DialTimeout:  5 * time.Second,
		DialRetries:  2,
		RetryBackoff: 50 * time.Millisecond,
	}, nil
}

// Schema returns the virtual table schema.
func (c *Coordinator) Schema() interface{ Names() []string } { return c.svc.Schema() }

// SetPlanCacheConfig replaces the coordinator's own semantic plan
// cache (each node server's cache is configured on its service).
func (c *Coordinator) SetPlanCacheConfig(cfg core.PlanCacheConfig) {
	c.svc.SetPlanCacheConfig(cfg)
}

// PlanCacheStats snapshots the coordinator-side plan cache counters.
func (c *Coordinator) PlanCacheStats() core.PlanCacheStats {
	return c.svc.PlanCacheStats()
}

// Result carries the merged outcome of a distributed query.
type Result struct {
	// Stats aggregates extraction statistics over all nodes.
	Stats extractor.Stats
	// Rows is the total tuple count transferred.
	Rows int64
	// PerNode maps node name → tuples produced there.
	PerNode map[string]int64
	// QueryStats is the per-query observability record: plan and index
	// times are the coordinator's, extract time is the slowest node's
	// (the straggler), filter time sums over nodes, and net time is the
	// fan-out wall time.
	QueryStats obs.QueryStats
}

// Query runs sql on every node with a background context; it is the
// convenience form of QueryContext.
func (c *Coordinator) Query(sql string, emit func(row table.Row) error) (*Result, error) {
	return c.QueryContext(context.Background(), sql, emit)
}

// QueryContext runs sql on every node and calls emit for each returned
// row (from a single goroutine; the row is only valid during the call,
// per the extractor.EmitFunc reuse contract). Columns follow the
// SELECT list. Cancelling ctx abandons every node leg promptly; a
// context deadline is also forwarded to the nodes so they stop
// extracting server-side.
func (c *Coordinator) QueryContext(ctx context.Context, sql string, emit func(row table.Row) error) (*Result, error) {
	return c.run(ctx, sql, storm.PartitionSpec{}, func(dest int, row table.Row) error {
		return emit(row)
	})
}

// QueryPartitioned is the convenience form of QueryPartitionedContext.
func (c *Coordinator) QueryPartitioned(sql string, spec storm.PartitionSpec, sinks []storm.Sink) (*Result, error) {
	return c.QueryPartitionedContext(context.Background(), sql, spec, sinks)
}

// QueryPartitionedContext runs sql with server-side partition
// generation: each node tags every tuple with its destination among
// spec.NumDests client processors, and the coordinator routes tuples
// to the matching sink — the data mover service.
func (c *Coordinator) QueryPartitionedContext(ctx context.Context, sql string, spec storm.PartitionSpec, sinks []storm.Sink) (*Result, error) {
	if spec.NumDests != len(sinks) {
		return nil, fmt.Errorf("cluster: partition spec has %d destinations, got %d sinks",
			spec.NumDests, len(sinks))
	}
	res, err := c.run(ctx, sql, spec, func(dest int, row table.Row) error {
		if dest < 0 || dest >= len(sinks) {
			return fmt.Errorf("cluster: destination %d out of range", dest)
		}
		return sinks[dest].Send(row)
	})
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return res, err
}

// CollectQuery runs sql and returns all rows (copied), in a
// deterministic order only within each node's stream.
func (c *Coordinator) CollectQuery(sql string) ([]table.Row, *Result, error) {
	return c.CollectQueryContext(context.Background(), sql)
}

// CollectQueryContext is CollectQuery under a context.
func (c *Coordinator) CollectQueryContext(ctx context.Context, sql string) ([]table.Row, *Result, error) {
	var rows []table.Row
	res, err := c.QueryContext(ctx, sql, func(r table.Row) error {
		rows = append(rows, append(table.Row(nil), r...))
		return nil
	})
	return rows, res, err
}

func (c *Coordinator) run(ctx context.Context, sql string, spec storm.PartitionSpec, deliver func(dest int, row table.Row) error) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Validate and resolve the output schema locally before contacting
	// any node; errors surface immediately and cheaply.
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	prep, err := c.svc.PrepareParsedContext(ctx, q)
	if err != nil {
		return nil, err
	}
	codec := table.NewCodec(prep.OutSchema)
	tracer := obs.TracerFrom(ctx)

	nodes := c.svc.Nodes()
	type nodeBatch struct {
		node string
		dest int
		rows []table.Row
	}
	type nodeDone struct {
		node    string
		trailer Trailer
		err     error
	}
	batchc := make(chan nodeBatch, len(nodes)*2)
	donec := make(chan nodeDone, len(nodes))
	var wg sync.WaitGroup

	netStart := time.Now()
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			endNet := obs.Begin(tracer, sql, obs.StageNet)
			tr, err := c.queryNode(ctx, node, sql, spec, codec, func(dest int, rows []table.Row) {
				batchc <- nodeBatch{node: node, dest: dest, rows: rows}
			})
			endNet(err)
			donec <- nodeDone{node: node, trailer: tr, err: err}
		}(node)
	}
	go func() {
		wg.Wait()
		close(batchc)
	}()

	res := &Result{PerNode: map[string]int64{}}
	var firstErr error
	for b := range batchc {
		if firstErr != nil {
			continue // drain
		}
		for _, r := range b.rows {
			if err := deliver(b.dest, r); err != nil {
				firstErr = err
				break
			}
		}
	}
	var slowestExtract int64
	var pcHits, pcMisses int64
	for range nodes {
		d := <-donec
		if d.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %s: %w", d.node, d.err)
		}
		res.Stats.Add(d.trailer.Stats)
		res.Rows += d.trailer.Rows
		res.PerNode[d.node] = d.trailer.Rows
		if d.trailer.ExtractNS > slowestExtract {
			slowestExtract = d.trailer.ExtractNS
		}
		pcHits += d.trailer.PlanCacheHits
		pcMisses += d.trailer.PlanCacheMisses
	}
	if firstErr != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}
	// A cancellation that loses the race to stream completion still
	// cancels the query: the caller asked for abandonment, not a result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, index := prep.PrepareStats()
	ownHits, ownMisses := prep.PlanCacheCounters()
	res.QueryStats = obs.QueryStats{
		ChunksPlanned: len(prep.AFCs),
		ChunksRead:    res.Stats.AFCs,
		BytesRead:     res.Stats.BytesRead,
		RowsScanned:   res.Stats.RowsScanned,
		RowsEmitted:   res.Stats.RowsEmitted,
		RowsFiltered:  res.Stats.RowsScanned - res.Stats.RowsEmitted,

		CacheHits:        res.Stats.CacheHits,
		CacheMisses:      res.Stats.CacheMisses,
		FSBytesRead:      res.Stats.FSBytesRead,
		CacheBytesServed: res.Stats.CacheBytesServed,
		MmapBlocksServed: res.Stats.MmapBlocksServed,
		MmapRemaps:       res.Stats.MmapRemaps,

		// The coordinator's own prepare plus every node leg's.
		PlanCacheHits:   ownHits + pcHits,
		PlanCacheMisses: ownMisses + pcMisses,

		PlanTime:    plan,
		IndexTime:   index,
		ExtractTime: time.Duration(slowestExtract),
		FilterTime:  time.Duration(res.Stats.FilterNS),
		NetTime:     time.Since(netStart),
	}
	return res, nil
}

// dialNode connects to a node with bounded retry and exponential
// backoff: transient dial failures (a node restarting, a full accept
// queue) are absorbed instead of failing the whole query.
func (c *Coordinator) dialNode(ctx context.Context, node string) (net.Conn, error) {
	dial := c.dialContext
	if dial == nil {
		d := &net.Dialer{Timeout: c.DialTimeout}
		dial = d.DialContext
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= c.DialRetries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		conn, err := dial(ctx, "tcp", c.addrs[node])
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("dial failed after %d attempts: %w", c.DialRetries+1, lastErr)
}

// queryNode runs one node's leg of the query over a fresh connection.
// Every return path closes the connection: the deferred Close covers
// handshake-write failures as well as streaming errors (a leak here
// once exhausted client FDs under node churn).
func (c *Coordinator) queryNode(ctx context.Context, node, sql string, spec storm.PartitionSpec,
	codec *table.Codec, onBatch func(dest int, rows []table.Row)) (Trailer, error) {

	conn, err := c.dialNode(ctx, node)
	if err != nil {
		return Trailer{}, err
	}
	defer conn.Close()

	// Watchdog: a context cancellation mid-I/O forces any blocked read
	// or write on this connection to fail immediately.
	watchStop := make(chan struct{})
	defer close(watchStop)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck — unblocks in-flight I/O
		case <-watchStop:
		}
	}()
	// ctxErr prefers the context's error over the I/O error it induced.
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}

	req := Request{
		Version:   protocolVersion,
		SQL:       sql,
		Partition: spec,
		Parallel:  true,
	}
	// Forward the deadline so the node stops extracting server-side
	// when the client's budget runs out.
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}
	if c.IOTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(c.IOTimeout)) //nolint:errcheck
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := writeJSONFrame(bw, frameQuery, req); err != nil {
		return Trailer{}, ctxErr(err)
	}
	if err := bw.Flush(); err != nil {
		return Trailer{}, ctxErr(err)
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	var buf []byte
	for {
		if c.IOTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.IOTimeout)) //nolint:errcheck
		}
		typ, payload, err := readFrame(br, buf)
		if err != nil {
			return Trailer{}, ctxErr(err)
		}
		buf = payload
		switch typ {
		case frameRows:
			if len(payload) < 8 {
				return Trailer{}, fmt.Errorf("cluster: short row batch")
			}
			dest := int(binary.LittleEndian.Uint32(payload[0:]))
			count := int(binary.LittleEndian.Uint32(payload[4:]))
			body := payload[8:]
			if count < 0 || len(body) != count*codec.RowBytes() {
				return Trailer{}, fmt.Errorf("cluster: row batch of %d bytes does not hold %d rows",
					len(body), count)
			}
			rows, err := codec.DecodeAll(body)
			if err != nil {
				return Trailer{}, err
			}
			onBatch(dest, rows)
		case frameDone:
			var tr Trailer
			if err := json.Unmarshal(payload, &tr); err != nil {
				return Trailer{}, fmt.Errorf("cluster: bad trailer: %w", err)
			}
			return tr, nil
		case frameError:
			return Trailer{}, fmt.Errorf("%s", payload)
		default:
			return Trailer{}, fmt.Errorf("cluster: unexpected frame %q", typ)
		}
	}
}

// Nodes returns the node names the coordinator dispatches to, sorted.
func (c *Coordinator) Nodes() []string {
	out := append([]string(nil), c.svc.Nodes()...)
	sort.Strings(out)
	return out
}
