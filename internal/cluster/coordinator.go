package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"

	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/metadata"
	"datavirt/internal/sqlparser"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// Coordinator is the client-side entry point of the distributed system:
// it holds the descriptor (for planning and row decoding), knows the
// address of every node server, fans each query out, and merges or
// routes the returned tuple streams. It performs no file I/O.
type Coordinator struct {
	svc   *core.Service
	addrs map[string]string // node name → host:port
}

// NewCoordinator plans against the descriptor and dispatches to the
// given node address table. Every node named by the descriptor's
// storage section must appear in addrs.
func NewCoordinator(d *metadata.Descriptor, addrs map[string]string) (*Coordinator, error) {
	svc, err := core.Compile(d, func(node, file string) (string, error) {
		return "", fmt.Errorf("cluster: coordinator does not read data files")
	})
	if err != nil {
		return nil, err
	}
	for _, node := range svc.Nodes() {
		if _, ok := addrs[node]; !ok {
			return nil, fmt.Errorf("cluster: no address for node %q", node)
		}
	}
	return &Coordinator{svc: svc, addrs: addrs}, nil
}

// Schema returns the virtual table schema.
func (c *Coordinator) Schema() interface{ Names() []string } { return c.svc.Schema() }

// Result carries the merged outcome of a distributed query.
type Result struct {
	// Stats aggregates extraction statistics over all nodes.
	Stats extractor.Stats
	// Rows is the total tuple count transferred.
	Rows int64
	// PerNode maps node name → tuples produced there.
	PerNode map[string]int64
}

// Query runs sql on every node and calls emit for each returned row
// (from a single goroutine; the row is only valid during the call).
// Columns follow the SELECT list.
func (c *Coordinator) Query(sql string, emit func(row table.Row) error) (*Result, error) {
	return c.run(sql, storm.PartitionSpec{}, func(dest int, row table.Row) error {
		return emit(row)
	})
}

// QueryPartitioned runs sql with server-side partition generation: each
// node tags every tuple with its destination among spec.NumDests client
// processors, and the coordinator routes tuples to the matching sink —
// the data mover service.
func (c *Coordinator) QueryPartitioned(sql string, spec storm.PartitionSpec, sinks []storm.Sink) (*Result, error) {
	if spec.NumDests != len(sinks) {
		return nil, fmt.Errorf("cluster: partition spec has %d destinations, got %d sinks",
			spec.NumDests, len(sinks))
	}
	res, err := c.run(sql, spec, func(dest int, row table.Row) error {
		if dest < 0 || dest >= len(sinks) {
			return fmt.Errorf("cluster: destination %d out of range", dest)
		}
		return sinks[dest].Send(row)
	})
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return res, err
}

// CollectQuery runs sql and returns all rows (copied), in a
// deterministic order only within each node's stream.
func (c *Coordinator) CollectQuery(sql string) ([]table.Row, *Result, error) {
	var rows []table.Row
	res, err := c.Query(sql, func(r table.Row) error {
		rows = append(rows, append(table.Row(nil), r...))
		return nil
	})
	return rows, res, err
}

func (c *Coordinator) run(sql string, spec storm.PartitionSpec, deliver func(dest int, row table.Row) error) (*Result, error) {
	// Validate and resolve the output schema locally before contacting
	// any node; errors surface immediately and cheaply.
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	prep, err := c.svc.PrepareParsed(q)
	if err != nil {
		return nil, err
	}
	codec := table.NewCodec(prep.OutSchema)

	nodes := c.svc.Nodes()
	type nodeBatch struct {
		node string
		dest int
		rows []table.Row
	}
	type nodeDone struct {
		node    string
		trailer Trailer
		err     error
	}
	batchc := make(chan nodeBatch, len(nodes)*2)
	donec := make(chan nodeDone, len(nodes))
	var wg sync.WaitGroup

	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			tr, err := c.queryNode(node, sql, spec, codec, func(dest int, rows []table.Row) {
				batchc <- nodeBatch{node: node, dest: dest, rows: rows}
			})
			donec <- nodeDone{node: node, trailer: tr, err: err}
		}(node)
	}
	go func() {
		wg.Wait()
		close(batchc)
	}()

	res := &Result{PerNode: map[string]int64{}}
	var firstErr error
	for b := range batchc {
		if firstErr != nil {
			continue // drain
		}
		for _, r := range b.rows {
			if err := deliver(b.dest, r); err != nil {
				firstErr = err
				break
			}
		}
	}
	for range nodes {
		d := <-donec
		if d.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %s: %w", d.node, d.err)
		}
		res.Stats.Add(d.trailer.Stats)
		res.Rows += d.trailer.Rows
		res.PerNode[d.node] = d.trailer.Rows
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// queryNode runs one node's leg of the query over a fresh connection.
func (c *Coordinator) queryNode(node, sql string, spec storm.PartitionSpec,
	codec *table.Codec, onBatch func(dest int, rows []table.Row)) (Trailer, error) {

	conn, err := net.Dial("tcp", c.addrs[node])
	if err != nil {
		return Trailer{}, err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := writeJSONFrame(bw, frameQuery, Request{
		Version:   protocolVersion,
		SQL:       sql,
		Partition: spec,
		Parallel:  true,
	}); err != nil {
		return Trailer{}, err
	}
	if err := bw.Flush(); err != nil {
		return Trailer{}, err
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	var buf []byte
	for {
		typ, payload, err := readFrame(br, buf)
		if err != nil {
			return Trailer{}, err
		}
		buf = payload
		switch typ {
		case frameRows:
			if len(payload) < 8 {
				return Trailer{}, fmt.Errorf("cluster: short row batch")
			}
			dest := int(binary.LittleEndian.Uint32(payload[0:]))
			count := int(binary.LittleEndian.Uint32(payload[4:]))
			body := payload[8:]
			if count < 0 || len(body) != count*codec.RowBytes() {
				return Trailer{}, fmt.Errorf("cluster: row batch of %d bytes does not hold %d rows",
					len(body), count)
			}
			rows, err := codec.DecodeAll(body)
			if err != nil {
				return Trailer{}, err
			}
			onBatch(dest, rows)
		case frameDone:
			var tr Trailer
			if err := json.Unmarshal(payload, &tr); err != nil {
				return Trailer{}, fmt.Errorf("cluster: bad trailer: %w", err)
			}
			return tr, nil
		case frameError:
			return Trailer{}, fmt.Errorf("%s", payload)
		default:
			return Trailer{}, fmt.Errorf("cluster: unexpected frame %q", typ)
		}
	}
}

// Nodes returns the node names the coordinator dispatches to, sorted.
func (c *Coordinator) Nodes() []string {
	out := append([]string(nil), c.svc.Nodes()...)
	sort.Strings(out)
	return out
}
