package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/metadata"
	"datavirt/internal/obs"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// Coordinator is the client-side entry point of the distributed system:
// it holds the descriptor (for planning and row decoding), keeps a pool
// of persistent multiplexed sessions to every node server, fans each
// query out, and merges or routes the returned tuple streams. It
// performs no file I/O.
//
// The knob fields may be adjusted after NewCoordinator and before the
// first query; they tolerate slow, overloaded or dead nodes in the
// spirit of the paper's loosely coupled STORM services. Call Close when
// done to release the pooled connections.
type Coordinator struct {
	svc   *core.Service
	addrs map[string]string // node name → host:port
	// replicas maps each partition (primary node name) to the ordered
	// set of nodes able to serve it, primary first (core.Replicas).
	// Immutable after NewCoordinator.
	replicas map[string][]string

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// DialRetries is how many times a failed dial is retried with
	// exponential backoff before the node is reported dead (default 2).
	DialRetries int
	// RetryBackoff is the first retry's delay, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// IOTimeout, when positive, bounds every frame write and the gap
	// between frames received while queries are in flight; a node that
	// stalls longer mid-stream fails its session. Zero relies on
	// context deadlines alone.
	IOTimeout time.Duration

	// PoolSize is how many persistent multiplexed sessions to keep per
	// node; concurrent queries share them round-robin. Zero means 2; a
	// negative value disables pooling entirely — every query leg dials
	// its own connection and closes it afterwards (the one-query-per-
	// connection shape of protocol v1, kept as a benchmark baseline).
	PoolSize int
	// HedgeAfter, when positive, hedges straggler legs: if a node has
	// not produced a first frame within this duration, a duplicate leg
	// is launched and the first stream to deliver wins while the loser
	// is cancelled. Zero disables hedging.
	HedgeAfter time.Duration
	// OverloadRetries is how many times a leg shed by a node's
	// admission control (ErrOverloaded) is retried with backoff before
	// the error is surfaced (default 2; negative means none).
	OverloadRetries int
	// OverloadBackoff is the first overload retry's delay, doubled per
	// attempt (default 25ms).
	OverloadBackoff time.Duration
	// WindowBytes is the per-query flow-control window granted to each
	// node (how far a node may run ahead of the merging consumer).
	// Zero means the protocol default (1 MiB).
	WindowBytes int64
	// LegStallAfter, when positive, bounds the gap between frames
	// received by one leg's stream: a leg with no frame progress for
	// this long fails with errLegStalled and, when its partition has
	// standby replicas, is re-dispatched to one. Unlike IOTimeout it is
	// per-leg, so a blackholed query does not tear down the session it
	// shares with healthy ones. Zero disables the watchdog.
	LegStallAfter time.Duration
	// FailoverStageBytes bounds how many result-payload bytes a
	// replicated leg stages before the coordinator commits them to the
	// merge. Staged legs can be re-dispatched to a standby replica
	// after a mid-stream failure without delivering any row twice;
	// once committed a leg's failure is final. Zero means 8 MiB;
	// partitions with a single replica never stage. See legStage.
	FailoverStageBytes int64

	poolMu sync.Mutex
	pools  map[string]*nodePool //dvlint:guardedby poolMu

	// dialContext is the dial function; tests substitute it to inject
	// misbehaving nodes and to observe connection lifecycles.
	dialContext func(ctx context.Context, network, addr string) (net.Conn, error)
}

// NewCoordinator plans against the descriptor and dispatches to the
// given node address table. Every node named by the descriptor's
// storage section — primaries and standby replicas alike — must
// appear in addrs.
func NewCoordinator(d *metadata.Descriptor, addrs map[string]string) (*Coordinator, error) {
	svc, err := core.Compile(d, func(node, file string) (string, error) {
		return "", fmt.Errorf("cluster: coordinator does not read data files")
	})
	if err != nil {
		return nil, err
	}
	for _, node := range svc.AllNodes() {
		if _, ok := addrs[node]; !ok {
			return nil, fmt.Errorf("cluster: no address for node %q", node)
		}
	}
	return &Coordinator{
		svc:          svc,
		addrs:        addrs,
		replicas:     svc.Replicas(),
		DialTimeout:  5 * time.Second,
		DialRetries:  2,
		RetryBackoff: 50 * time.Millisecond,
	}, nil
}

// Schema returns the virtual table schema.
func (c *Coordinator) Schema() *schema.Schema { return c.svc.Schema() }

// SetPlanCacheConfig replaces the coordinator's own semantic plan
// cache (each node server's cache is configured on its service).
func (c *Coordinator) SetPlanCacheConfig(cfg core.PlanCacheConfig) {
	c.svc.SetPlanCacheConfig(cfg)
}

// PlanCacheStats snapshots the coordinator-side plan cache counters.
func (c *Coordinator) PlanCacheStats() core.PlanCacheStats {
	return c.svc.PlanCacheStats()
}

// Close releases every pooled node session. In-flight queries fail;
// the coordinator may be used again afterwards (pools re-form).
func (c *Coordinator) Close() error {
	c.poolMu.Lock()
	pools := c.pools
	c.pools = nil
	c.poolMu.Unlock()
	for _, p := range pools {
		p.close()
	}
	return nil
}

// pool returns the session pool for node, creating it on first use
// (freezing PoolSize and IOTimeout for that node at that point).
func (c *Coordinator) pool(node string) *nodePool {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.pools == nil {
		c.pools = map[string]*nodePool{}
	}
	if p, ok := c.pools[node]; ok {
		return p
	}
	size := c.PoolSize
	if size == 0 {
		size = 2
	}
	if size < 0 {
		size = 0 // ephemeral: one conn per leg
	}
	p := &nodePool{
		dial: func(ctx context.Context) (net.Conn, error) { return c.dialNode(ctx, node) },
		size: size,
		io:   c.IOTimeout,
	}
	c.pools[node] = p
	return p
}

// Result carries the merged outcome of a distributed query.
type Result struct {
	// Stats aggregates extraction statistics over all nodes.
	Stats extractor.Stats
	// Rows is the total tuple count transferred. Aggregate queries
	// transfer partial aggregates instead of tuples, so it stays zero
	// for them.
	Rows int64
	// SentBytes is the result payload streamed by all legs ('R' row
	// batches or 'A' partial-aggregate frames) — the coordinator-side
	// transfer cost push-down aggregation minimizes.
	SentBytes int64
	// PerNode maps node name → tuples produced there.
	PerNode map[string]int64
	// QueryStats is the per-query observability record: plan and index
	// times are the coordinator's, extract time is the slowest node's
	// (the straggler), filter time sums over nodes, net time is the
	// fan-out wall time, and the serving counters report admission
	// queueing, load shedding and hedging across the legs.
	QueryStats obs.QueryStats
}

// QueryContext runs sql on every node and returns a streaming cursor
// over the merged rows — the same API shape as core.Service, so local
// and distributed execution are interchangeable to clients. Columns
// follow the SELECT list; rows arrive in a deterministic order only
// within each node's stream. Cancelling ctx (or Close on the cursor)
// abandons every node leg promptly, and a context deadline is
// forwarded to the nodes so they stop extracting server-side. The
// cursor's Stats include the serving counters (queued/shed/hedged).
func (c *Coordinator) QueryContext(ctx context.Context, sql string) (*core.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Parse and plan locally before contacting any node; errors
	// surface synchronously and cheaply.
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	prep, err := c.svc.PrepareParsedContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return core.NewRows(ctx, prep.Cols, func(runCtx context.Context, emit func(table.Row) error) (obs.QueryStats, error) {
		res, err := c.runPrepared(runCtx, sql, prep, storm.PartitionSpec{}, func(dest int, row table.Row) error {
			return emit(row)
		})
		if err != nil {
			return obs.QueryStats{}, err
		}
		return res.QueryStats, nil
	}), nil
}

// Query runs sql on every node with a background context.
//
// Deprecated: use QueryContext, which returns a streaming cursor and
// honours cancellation.
func (c *Coordinator) Query(sql string, emit func(row table.Row) error) (*Result, error) {
	return c.QueryFuncContext(context.Background(), sql, emit)
}

// QueryFuncContext runs sql on every node and calls emit for each
// returned row (from a single goroutine; the row is only valid during
// the call, per the extractor.EmitFunc reuse contract).
//
// Deprecated: use QueryContext, which returns a streaming cursor; this
// callback shim remains for push-style clients and returns the full
// per-node Result.
func (c *Coordinator) QueryFuncContext(ctx context.Context, sql string, emit func(row table.Row) error) (*Result, error) {
	return c.run(ctx, sql, storm.PartitionSpec{}, func(dest int, row table.Row) error {
		return emit(row)
	})
}

// QueryPartitioned runs a partitioned query with a background context.
//
// Deprecated: use QueryPartitionedContext, which honours cancellation.
func (c *Coordinator) QueryPartitioned(sql string, spec storm.PartitionSpec, sinks []storm.Sink) (*Result, error) {
	return c.QueryPartitionedContext(context.Background(), sql, spec, sinks)
}

// QueryPartitionedContext runs sql with server-side partition
// generation: each node tags every tuple with its destination among
// spec.NumDests client processors, and the coordinator routes tuples
// to the matching sink — the data mover service.
func (c *Coordinator) QueryPartitionedContext(ctx context.Context, sql string, spec storm.PartitionSpec, sinks []storm.Sink) (*Result, error) {
	if spec.NumDests != len(sinks) {
		return nil, fmt.Errorf("cluster: partition spec has %d destinations, got %d sinks",
			spec.NumDests, len(sinks))
	}
	res, err := c.run(ctx, sql, spec, func(dest int, row table.Row) error {
		if dest < 0 || dest >= len(sinks) {
			return fmt.Errorf("cluster: destination %d out of range", dest)
		}
		return sinks[dest].Send(row)
	})
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return res, err
}

// CollectQuery runs sql and returns all rows (copied), in a
// deterministic order only within each node's stream.
//
// Deprecated: use QueryContext and iterate the cursor.
func (c *Coordinator) CollectQuery(sql string) ([]table.Row, *Result, error) {
	return c.CollectQueryContext(context.Background(), sql)
}

// CollectQueryContext is CollectQuery under a context.
func (c *Coordinator) CollectQueryContext(ctx context.Context, sql string) ([]table.Row, *Result, error) {
	var rows []table.Row
	res, err := c.run(ctx, sql, storm.PartitionSpec{}, func(dest int, r table.Row) error {
		rows = append(rows, append(table.Row(nil), r...))
		return nil
	})
	return rows, res, err
}

// run parses, plans and executes sql across the cluster, delivering
// each row with its partition destination.
func (c *Coordinator) run(ctx context.Context, sql string, spec storm.PartitionSpec, deliver func(dest int, row table.Row) error) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	prep, err := c.svc.PrepareParsedContext(ctx, q)
	if err != nil {
		return nil, err
	}
	if prep.Agg != nil && spec.NumDests > 0 {
		// Partition generation routes individual tuples to client
		// processors; an aggregate's groups only exist after the
		// coordinator merge, so the two cannot compose.
		return nil, fmt.Errorf("cluster: aggregate queries cannot be partitioned")
	}
	return c.runPrepared(ctx, sql, prep, spec, deliver)
}

// legCounters aggregates serving events across a query's legs.
type legCounters struct {
	shed   atomic.Int64
	hedged atomic.Int64
	// redispatched counts legs dispatched more than once (any reason);
	// failovers counts re-dispatches to a different replica after the
	// serving node failed or stalled; retries counts same-node overload
	// retries of a replicated leg.
	redispatched atomic.Int64
	failovers    atomic.Int64
	retries      atomic.Int64
}

// runPrepared fans the prepared query out to every node over the
// session pools, merges the streams and assembles the Result.
func (c *Coordinator) runPrepared(ctx context.Context, sql string, prep *core.Prepared, spec storm.PartitionSpec, deliver func(dest int, row table.Row) error) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	codec := table.NewCodec(prep.OutSchema)
	tracer := obs.TracerFrom(ctx)

	req := Request{
		Version:     protocolVersion,
		SQL:         sql,
		Partition:   spec,
		Parallel:    true,
		WindowBytes: c.WindowBytes,
	}
	// Forward the deadline so the node stops extracting server-side
	// when the client's budget runs out.
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}

	// Aggregate queries: every leg ships partial aggregates in 'A'
	// frames; legs merge them into one coordinator-side state (the
	// mutex serializes merges across leg goroutines) and the final
	// groups are delivered after the fan-in.
	var aggMu sync.Mutex
	var aggState *query.AggState
	var onAgg func(payload []byte) error
	if prep.Agg != nil {
		aggState = query.NewAggState(prep.Agg)
		onAgg = func(payload []byte) error {
			aggMu.Lock()
			defer aggMu.Unlock()
			return aggState.MergeEncoded(payload)
		}
	}

	nodes := c.svc.Nodes()
	type nodeBatch struct {
		node string
		dest int
		rows []table.Row
	}
	type nodeDone struct {
		node    string
		trailer Trailer
		err     error
	}
	batchc := make(chan nodeBatch, len(nodes)*2)
	donec := make(chan nodeDone, len(nodes))
	var counters legCounters
	var wg sync.WaitGroup

	netStart := time.Now()
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			endNet := obs.Begin(tracer, sql, obs.StageNet)
			tr, err := c.runLeg(ctx, node, req, codec, &counters, func(dest int, rows []table.Row) {
				batchc <- nodeBatch{node: node, dest: dest, rows: rows}
			}, onAgg)
			endNet(err)
			donec <- nodeDone{node: node, trailer: tr, err: err}
		}(node)
	}
	go func() {
		wg.Wait()
		close(batchc)
	}()

	res := &Result{PerNode: map[string]int64{}}
	var firstErr error
	for b := range batchc {
		if firstErr != nil {
			continue // drain
		}
		for _, r := range b.rows {
			if err := deliver(b.dest, r); err != nil {
				firstErr = err
				break
			}
		}
	}
	var slowestExtract int64
	var pcHits, pcMisses int64
	var queuedLegs, queueNS int64
	for range nodes {
		d := <-donec
		if d.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %s: %w", d.node, d.err)
		}
		res.Stats.Add(d.trailer.Stats)
		res.Rows += d.trailer.Rows
		res.SentBytes += d.trailer.SentBytes
		res.PerNode[d.node] = d.trailer.Rows
		if d.trailer.ExtractNS > slowestExtract {
			slowestExtract = d.trailer.ExtractNS
		}
		pcHits += d.trailer.PlanCacheHits
		pcMisses += d.trailer.PlanCacheMisses
		queuedLegs += d.trailer.Queued
		queueNS += d.trailer.QueueNS
	}
	if firstErr != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}
	// A cancellation that loses the race to stream completion still
	// cancels the query: the caller asked for abandonment, not a result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Aggregate queries finalize here: every leg's partials are merged,
	// so this is the first (and only) place the complete groups exist.
	if aggState != nil {
		for _, row := range aggState.Finalize() {
			if err := deliver(0, row); err != nil {
				return nil, err
			}
		}
	}
	plan, index := prep.PrepareStats()
	ownHits, ownMisses := prep.PlanCacheCounters()
	// The trailer merge summed every leg's extractor counters into
	// res.Stats; everything QueryStats cannot derive from them travels
	// in the extras (see statsmerge_gen.go, kept in sync with the
	// QueryStats struct by dvlint -generate).
	res.QueryStats = mergeQueryStats(res.Stats, mergedStatsExtras{
		ChunksPlanned: len(prep.AFCs),
		RowsFiltered:  res.Stats.RowsScanned - res.Stats.RowsEmitted,

		// The coordinator's own prepare plus every node leg's.
		PlanCacheHits:   ownHits + pcHits,
		PlanCacheMisses: ownMisses + pcMisses,

		// Serving counters: admission queueing reported by the nodes,
		// shedding and hedging observed by the legs.
		QueuedQueries: queuedLegs,
		ShedQueries:   counters.shed.Load(),
		HedgedLegs:    counters.hedged.Load(),

		// Failover counters: dispatches beyond a leg's first, and why.
		LegRedispatches:  counters.redispatched.Load(),
		ReplicaFailovers: counters.failovers.Load(),
		ReplicaRetries:   counters.retries.Load(),

		PlanTime:    plan,
		IndexTime:   index,
		QueueTime:   time.Duration(queueNS),
		ExtractTime: time.Duration(slowestExtract),
		NetTime:     time.Since(netStart),
	})
	return res, nil
}

// runLeg drives one partition's leg: replica placement, session
// checkout, hedging, bounded retry of legs shed by admission control,
// and — when the partition has standby replicas — staged failover of
// a leg whose serving node dies or stalls mid-stream.
//
// The loop terminates: every iteration either returns, permanently
// adds a node to failed (candidates only shrink), or consumes one
// unit of the overload-retry budget.
func (c *Coordinator) runLeg(ctx context.Context, partition string, req Request, codec *table.Codec,
	counters *legCounters, onBatch func(dest int, rows []table.Row), onAgg func(payload []byte) error) (Trailer, error) {

	replicas := c.replicas[partition]
	if len(replicas) == 0 {
		replicas = []string{partition}
	}
	// Staged failover is only armed when a standby exists; a single-
	// replica partition streams straight into the merge, exactly the
	// pre-replica behavior.
	var stage *legStage
	if len(replicas) > 1 {
		req.NodeFilter = partition
		budget := c.FailoverStageBytes
		if budget <= 0 {
			budget = defaultStageBytes
		}
		stage = newLegStage(budget, int64(codec.RowBytes()), onBatch, onAgg)
		onBatch = stage.batch
		if onAgg != nil {
			onAgg = stage.agg
		}
	}

	overloadLeft := c.OverloadRetries
	if overloadLeft == 0 {
		overloadLeft = 2
	}
	if overloadLeft < 0 {
		overloadLeft = 0
	}
	backoff := c.OverloadBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}

	failed := map[string]bool{}
	dispatched := false
	avoid := ""
	for {
		node, ok := c.pickReplica(replicas, failed, avoid)
		if !ok {
			return Trailer{}, fmt.Errorf("cluster: no live replica left for partition %s", partition)
		}
		avoid = ""
		if dispatched {
			counters.redispatched.Add(1)
		}
		dispatched = true

		pool := c.pool(node)
		pool.legStarted()
		tr, err := c.legHedged(ctx, pool, req, codec, counters, onBatch, onAgg)
		pool.legDone()
		pool.reportResult(healthErr(err), c.RetryBackoff)
		if err == nil {
			if stage != nil {
				if cerr := stage.commit(); cerr != nil {
					return Trailer{}, cerr
				}
			}
			return tr, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return Trailer{}, cerr
		}
		if errors.Is(err, ErrOverloaded) {
			// Shedding is a healthy node protecting itself: the node is
			// not marked failed, but each shed consumes retry budget so a
			// cluster-wide overload storm still surfaces promptly.
			counters.shed.Add(1)
			if overloadLeft <= 0 {
				return Trailer{}, err
			}
			overloadLeft--
			if other, ok := c.pickReplica(replicas, failed, node); ok && other != node {
				// Another live replica can take the leg right now; no
				// point backing off against the loaded one.
				counters.failovers.Add(1)
				avoid = node
				continue
			}
			counters.retries.Add(1)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Trailer{}, ctx.Err()
			}
			backoff *= 2
			continue
		}
		// Hard failure: connection loss, stall, or a server error.
		if stage == nil || stage.committed {
			// Unreplicated, or rows already released to the merge — the
			// leg cannot be replayed without duplicating them.
			return Trailer{}, err
		}
		failed[node] = true
		if _, ok := c.pickReplica(replicas, failed, ""); !ok {
			return Trailer{}, err
		}
		// Nothing reached the merge: discard the staged partial stream
		// and replay the whole leg on a standby.
		stage.reset()
		counters.failovers.Add(1)
	}
}

// pickReplica chooses the replica to dispatch a leg to: health-gated
// nodes are considered only when no open one remains, the least
// loaded (fewest in-flight legs) wins, and ties keep replica-set
// order (primary first). avoid, when set, excludes that node unless
// it is the only candidate; ok is false when every replica has
// permanently failed.
func (c *Coordinator) pickReplica(replicas []string, failed map[string]bool, avoid string) (node string, ok bool) {
	var bestGated bool
	var bestLoad int64
	for _, n := range replicas {
		if failed[n] || n == avoid {
			continue
		}
		gated, inflight := c.pool(n).load()
		if !ok || (bestGated && !gated) || (gated == bestGated && inflight < bestLoad) {
			node, ok = n, true
			bestGated, bestLoad = gated, inflight
		}
	}
	if !ok && avoid != "" && !failed[avoid] {
		return avoid, true
	}
	return node, ok
}

// healthErr filters errors that should not count against a node's
// health: cancellation is the client's doing, and shedding is a
// healthy node protecting itself.
func healthErr(err error) error {
	if err == nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrOverloaded) {
		return nil
	}
	return err
}

// errHedgeLost is returned by the stream that lost the hedge race;
// it never surfaces to callers.
var errHedgeLost = errors.New("cluster: hedged leg lost the race")

// legHedged runs the leg, optionally duplicating it onto a second
// stream when the first has not produced a frame within HedgeAfter.
// Exactly one stream claims the right to deliver rows (an atomic CAS
// at its first delivered frame), so the merged result never sees
// duplicates; the loser is cancelled.
func (c *Coordinator) legHedged(ctx context.Context, pool *nodePool, req Request, codec *table.Codec,
	counters *legCounters, onBatch func(dest int, rows []table.Row), onAgg func(payload []byte) error) (Trailer, error) {

	var claim atomic.Int32
	if c.HedgeAfter <= 0 {
		tr, _, err := c.legStream(ctx, pool, req, codec, &claim, 1, onBatch, onAgg)
		return tr, err
	}

	type streamRes struct {
		tr      Trailer
		claimed bool
		err     error
	}
	// Loser-abandonment contract (checked by the golife analyzer's
	// bounded-body rule — the spawned closure below has no loop): at
	// most two streams ever launch, resc is buffered to hold both
	// results, so a loser's send never blocks even after legHedged has
	// returned; the deferred scancel cancels the losing stream's
	// context, and legStream's context.AfterFunc abandons its leg,
	// unblocking any wait inside it. A hedge loser therefore always
	// runs to its send and exits — it cannot leak.
	resc := make(chan streamRes, 2)
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	launch := func(id int32) {
		go func() {
			tr, claimed, err := c.legStream(sctx, pool, req, codec, &claim, id, onBatch, onAgg)
			resc <- streamRes{tr: tr, claimed: claimed, err: err}
		}()
	}
	launch(1)

	// The hedge timer and the result loop race; hmu linearizes the
	// "launch a hedge" vs "give up on this leg" decision so a hedge is
	// never launched after the leg has returned (a stray stream could
	// otherwise deliver rows into a closed merge).
	var hmu sync.Mutex
	hedged := false
	abandoned := false
	timer := time.AfterFunc(c.HedgeAfter, func() {
		hmu.Lock()
		defer hmu.Unlock()
		if abandoned || claim.Load() != 0 || sctx.Err() != nil {
			return
		}
		hedged = true
		counters.hedged.Add(1)
		launch(2)
	})
	defer timer.Stop()

	var lastErr error
	finished := 0
	for {
		r := <-resc
		finished++
		if r.err == nil {
			return r.tr, nil
		}
		if r.claimed {
			// The delivering stream failed mid-way; rows may already be
			// merged, so the leg cannot be retried or re-hedged.
			return Trailer{}, r.err
		}
		if !errors.Is(r.err, errHedgeLost) {
			lastErr = r.err
		}
		hmu.Lock()
		if !hedged {
			abandoned = true
			hmu.Unlock()
			return Trailer{}, lastErr
		}
		launched := 2
		hmu.Unlock()
		if finished >= launched {
			return Trailer{}, lastErr
		}
	}
}

// legStream runs one wire stream of a leg over a (possibly shared)
// session: sends the query, consumes its frames, grants flow-control
// credit, and decodes row batches ('R') or merges partial aggregates
// ('A', via onAgg). It only delivers rows or partials after winning
// the claim shared with a hedged twin.
func (c *Coordinator) legStream(ctx context.Context, pool *nodePool, req Request, codec *table.Codec,
	claim *atomic.Int32, id int32, onBatch func(dest int, rows []table.Row), onAgg func(payload []byte) error) (Trailer, bool, error) {

	// ctxErr prefers the context's error over the failure it induced.
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}

	sess, release, err := pool.session(ctx)
	if err != nil {
		return Trailer{}, false, ctxErr(err)
	}
	defer release()
	leg, err := sess.start(req)
	if err != nil {
		return Trailer{}, false, ctxErr(err)
	}
	// A context cancellation abandons the leg: the node is told to
	// cancel, the demux reader drops the query's residue frames, and
	// the blocked next() below returns.
	stop := context.AfterFunc(ctx, func() {
		sess.abandon(leg, ctx.Err())
	})
	defer stop()
	// The stall watchdog abandons a leg with no frame progress within
	// LegStallAfter — a blackholed stream on an otherwise live session,
	// which no session-level timeout can see. It is reset after every
	// frame; a fire racing a late frame only costs a spurious
	// re-dispatch, never a duplicate delivery (the leg's remaining
	// events drain before next returns the stall error, and on a
	// replicated partition the stage withholds them anyway).
	var watchdog *time.Timer
	if c.LegStallAfter > 0 {
		watchdog = time.AfterFunc(c.LegStallAfter, func() {
			sess.abandon(leg, errLegStalled)
		})
		defer watchdog.Stop()
	}

	claimed := false
	tryClaim := func() bool {
		if claimed {
			return true
		}
		if claim.CompareAndSwap(0, id) || claim.Load() == id {
			claimed = true
		}
		return claimed
	}

	for {
		ev, err := leg.next()
		if watchdog != nil {
			watchdog.Reset(c.LegStallAfter)
		}
		if err != nil {
			sess.abandon(leg, err)
			return Trailer{}, claimed, ctxErr(err)
		}
		switch ev.typ {
		case frameRows:
			if !tryClaim() {
				sess.abandon(leg, errHedgeLost)
				return Trailer{}, false, errHedgeLost
			}
			if len(ev.payload) < 8 {
				sess.abandon(leg, errHedgeLost)
				return Trailer{}, claimed, fmt.Errorf("cluster: short row batch")
			}
			dest := int(binary.LittleEndian.Uint32(ev.payload[0:]))
			count := int(binary.LittleEndian.Uint32(ev.payload[4:]))
			body := ev.payload[8:]
			if count < 0 || len(body) != count*codec.RowBytes() {
				sess.abandon(leg, errHedgeLost)
				return Trailer{}, claimed, fmt.Errorf("cluster: row batch of %d bytes does not hold %d rows",
					len(body), count)
			}
			rows, err := codec.DecodeAll(body)
			if err != nil {
				sess.abandon(leg, err)
				return Trailer{}, claimed, err
			}
			onBatch(dest, rows)
			leg.consumedRows(len(ev.payload))
		case frameAgg:
			if !tryClaim() {
				sess.abandon(leg, errHedgeLost)
				return Trailer{}, false, errHedgeLost
			}
			if onAgg == nil {
				err := fmt.Errorf("cluster: unexpected aggregate frame for a row query")
				sess.abandon(leg, err)
				return Trailer{}, claimed, err
			}
			if err := onAgg(ev.payload); err != nil {
				sess.abandon(leg, err)
				return Trailer{}, claimed, err
			}
			leg.consumedRows(len(ev.payload))
		case frameDone:
			if !tryClaim() {
				return Trailer{}, false, errHedgeLost
			}
			var tr Trailer
			if err := json.Unmarshal(ev.payload, &tr); err != nil {
				return Trailer{}, claimed, fmt.Errorf("cluster: bad trailer: %w", err)
			}
			return tr, claimed, nil
		case frameBusy:
			return Trailer{}, claimed, fmt.Errorf("node shed query: %w", ErrOverloaded)
		case frameError:
			return Trailer{}, claimed, fmt.Errorf("%s", ev.payload)
		default:
			sess.abandon(leg, errHedgeLost)
			return Trailer{}, claimed, fmt.Errorf("cluster: unexpected frame %q", ev.typ)
		}
	}
}

// dialNode connects to a node with bounded retry and exponential
// backoff: transient dial failures (a node restarting, a full accept
// queue) are absorbed instead of failing the whole query.
func (c *Coordinator) dialNode(ctx context.Context, node string) (net.Conn, error) {
	dial := c.dialContext
	if dial == nil {
		d := &net.Dialer{Timeout: c.DialTimeout}
		dial = d.DialContext
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= c.DialRetries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		conn, err := dial(ctx, "tcp", c.addrs[node])
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("dial failed after %d attempts: %w", c.DialRetries+1, lastErr)
}

// Nodes returns the node names the coordinator dispatches to, sorted.
func (c *Coordinator) Nodes() []string {
	out := append([]string(nil), c.svc.Nodes()...)
	sort.Strings(out)
	return out
}
