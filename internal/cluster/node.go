package cluster

import (
	"context"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"

	"datavirt/internal/core"
	"datavirt/internal/obs"
)

// Node is one cluster node server. It owns the subset of a dataset's
// files whose storage directories name it and answers query requests by
// running the generated index and extraction functions over that subset.
// Each accepted connection is a multiplexed session carrying many
// concurrent queries; a node-wide admission controller bounds how many
// run at once and sheds the excess.
type Node struct {
	name string
	svc  *core.Service
	ln   net.Listener
	// replicaOf is the set of partition primaries this node may serve:
	// its own name plus every primary whose replica set lists it.
	// Immutable after StartNode.
	replicaOf map[string]bool

	// baseCtx parents every query's context; Close cancels it so
	// in-flight extractions stop with the listener.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	closed bool              //dvlint:guardedby mu
	conns  map[net.Conn]bool //dvlint:guardedby mu
	wg     sync.WaitGroup

	admOnce sync.Once
	adm     *admission

	// Logf receives diagnostics; defaults to log.Printf. Set before
	// Serve traffic arrives.
	Logf func(format string, args ...any)

	// Tracer, when set, observes every stage of every query this node
	// executes (plan/index on cache misses, extract and filter always,
	// queue waits under admission); pair it with obs.LogTracer for
	// slow-query logging. Set before traffic arrives.
	Tracer obs.Tracer

	// MaxConcurrent bounds how many queries execute at once across all
	// of this node's sessions; further arrivals wait in a FIFO queue.
	// Zero means 2×GOMAXPROCS (at least 4). Set before traffic arrives.
	MaxConcurrent int

	// MaxQueue bounds the admission queue; arrivals beyond it are shed
	// with a busy frame (ErrOverloaded at the client). Zero means 64; a
	// negative value means no queue (shed as soon as MaxConcurrent run).
	// Set before traffic arrives.
	MaxQueue int
}

// StartNode launches a node server for the given cluster node name on
// addr (use "127.0.0.1:0" to pick a free port). ctx parents every
// query this node executes: cancelling it stops in-flight extractions,
// and Close does the same for the node's lifetime.
func StartNode(ctx context.Context, name string, svc *core.Service, addr string) (*Node, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	baseCtx, cancel := context.WithCancel(ctx)
	replicaOf := map[string]bool{name: true}
	for primary, set := range svc.Replicas() {
		for _, r := range set {
			if r == name {
				replicaOf[primary] = true
			}
		}
	}
	n := &Node{
		name:      name,
		svc:       svc,
		ln:        ln,
		replicaOf: replicaOf,
		baseCtx:   baseCtx,
		cancel:    cancel,
		conns:     map[net.Conn]bool{},
		Logf:      log.Printf,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the cluster node name served.
func (n *Node) Name() string { return n.name }

// Addr returns the listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// admission lazily builds the node's concurrency gate from the knobs,
// freezing them at first traffic.
func (n *Node) admission() *admission {
	n.admOnce.Do(func() {
		maxC := n.MaxConcurrent
		if maxC <= 0 {
			maxC = 2 * runtime.GOMAXPROCS(0)
			if maxC < 4 {
				maxC = 4
			}
		}
		maxQ := n.MaxQueue
		switch {
		case maxQ == 0:
			maxQ = 64
		case maxQ < 0:
			maxQ = 0
		}
		n.adm = &admission{max: maxC, maxQ: maxQ}
	})
	return n.adm
}

// partitionFor resolves the storage partition a request extracts: the
// request's NodeFilter when set (a coordinator dispatching a failed
// primary's leg to a standby), otherwise this node's own partition. A
// node refuses partitions it holds no replica of — it could not read
// their files.
func (n *Node) partitionFor(req Request) (string, error) {
	if req.NodeFilter == "" || req.NodeFilter == n.name {
		return n.name, nil
	}
	if !n.replicaOf[req.NodeFilter] {
		return "", fmt.Errorf("cluster: node %s does not replicate partition %s", n.name, req.NodeFilter)
	}
	return req.NodeFilter, nil
}

// AdmissionCounters reports how many queries have waited in the
// admission queue and how many were shed over the node's lifetime.
func (n *Node) AdmissionCounters() (queued, shed int64) {
	return n.admission().counters()
}

// Close stops the listener, cancels in-flight extractions and closes
// active connections.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.cancel()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
				conn.Close()
			}()
			if err := newNodeSession(n, conn).serve(); err != nil {
				n.Logf("cluster node %s: %v", n.name, err)
			}
		}()
	}
}
