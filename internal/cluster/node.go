package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/obs"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// Node is one cluster node server. It owns the subset of a dataset's
// files whose storage directories name it and answers query requests by
// running the generated index and extraction functions over that subset.
type Node struct {
	name string
	svc  *core.Service
	ln   net.Listener

	// baseCtx parents every query's context; Close cancels it so
	// in-flight extractions stop with the listener.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup

	// Logf receives diagnostics; defaults to log.Printf. Set before
	// Serve traffic arrives.
	Logf func(format string, args ...any)

	// Tracer, when set, observes every stage of every query this node
	// executes (plan/index on cache misses, extract and filter always);
	// pair it with obs.LogTracer for slow-query logging. Set before
	// traffic arrives.
	Tracer obs.Tracer
}

// StartNode launches a node server for the given cluster node name on
// addr (use "127.0.0.1:0" to pick a free port). ctx parents every
// query this node executes: cancelling it stops in-flight extractions,
// and Close does the same for the node's lifetime.
func StartNode(ctx context.Context, name string, svc *core.Service, addr string) (*Node, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	baseCtx, cancel := context.WithCancel(ctx)
	n := &Node{
		name:    name,
		svc:     svc,
		ln:      ln,
		baseCtx: baseCtx,
		cancel:  cancel,
		conns:   map[net.Conn]bool{},
		Logf:    log.Printf,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the cluster node name served.
func (n *Node) Name() string { return n.name }

// Addr returns the listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener, cancels in-flight extractions and closes
// active connections.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.cancel()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
				conn.Close()
			}()
			if err := n.handle(conn); err != nil {
				n.Logf("cluster node %s: %v", n.name, err)
			}
		}()
	}
}

// handle serves one connection: one request, one response stream.
func (n *Node) handle(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	typ, payload, err := readFrame(br, nil)
	if err != nil {
		return err
	}
	if typ != frameQuery {
		return fmt.Errorf("expected query frame, got %q", typ)
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		sendError(bw, fmt.Sprintf("bad request: %v", err))
		return nil
	}
	if req.Version != protocolVersion {
		sendError(bw, fmt.Sprintf("protocol version %d not supported", req.Version))
		return nil
	}
	if err := n.runQuery(bw, &req); err != nil {
		sendError(bw, err.Error())
	}
	return bw.Flush()
}

func sendError(bw *bufio.Writer, msg string) {
	writeFrame(bw, frameError, []byte(msg)) //nolint:errcheck — best effort on a dying stream
	bw.Flush()                              //nolint:errcheck
}

// runQuery prepares, executes and streams one query restricted to this
// node's files. The execution context descends from the node's base
// context (cancelled on Close) and honours the request's forwarded
// deadline, so a coordinator that has given up — or a node shutting
// down — stops extraction between block reads.
func (n *Node) runQuery(bw *bufio.Writer, req *Request) error {
	ctx := n.baseCtx
	if n.Tracer != nil {
		ctx = obs.WithTracer(ctx, n.Tracer)
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// Repeated remote queries are served by the service's semantic plan
	// cache: the AFC list is memoized by (table, ranges, needed columns)
	// fingerprint rather than SQL text, so textually distinct but
	// range-equal queries share one plan (the paper's "no code
	// generation or expensive runtime processing is required when a new
	// query is submitted" applies a fortiori to repeats).
	prep, err := n.svc.PrepareContext(ctx, req.SQL)
	if err != nil {
		return err
	}
	codec := table.NewCodec(prep.OutSchema)

	// Partition generation at the server: each outgoing row is tagged
	// with its destination processor.
	numDests := req.Partition.NumDests
	var part storm.Partitioner
	if numDests > 0 {
		part, err = storm.NewPartitioner(req.Partition, func(name string) (int, bool) {
			i := prep.OutSchema.Index(name)
			return i, i >= 0
		})
		if err != nil {
			return err
		}
	} else {
		numDests = 1
	}

	// Per-destination batches.
	type batch struct {
		rows int
		buf  []byte
	}
	batches := make([]batch, numDests)
	// The batch buffer doubles as the frame body and the encoder reuses
	// one header buffer for the connection, so flushing a full batch
	// allocates nothing.
	var enc rowsFrameEncoder
	flush := func(d int) error {
		b := &batches[d]
		if b.rows == 0 {
			return nil
		}
		err := enc.writeRowsFrame(bw, uint32(d), uint32(b.rows), b.buf)
		b.rows = 0
		b.buf = b.buf[:0]
		return err
	}

	var rows int64
	extractStart := time.Now()
	stats, err := prep.RunContext(ctx, core.Options{
		NodeFilter: n.name,
		Parallel:   req.Parallel,
	}, func(row table.Row) error {
		d := 0
		if part != nil {
			d = part.Dest(row)
			if d < 0 || d >= numDests {
				return fmt.Errorf("partitioner produced destination %d of %d", d, numDests)
			}
		}
		b := &batches[d]
		var err error
		b.buf, err = codec.Append(b.buf, row)
		if err != nil {
			return err
		}
		b.rows++
		rows++
		if b.rows >= batchRows {
			return flush(d)
		}
		return nil
	})
	extractNS := time.Since(extractStart).Nanoseconds()
	if err != nil {
		return err
	}
	for d := range batches {
		if err := flush(d); err != nil {
			return err
		}
	}
	pcHits, pcMisses := prep.PlanCacheCounters()
	return writeJSONFrame(bw, frameDone, Trailer{
		Stats: stats, Rows: rows, ExtractNS: extractNS,
		PlanCacheHits: pcHits, PlanCacheMisses: pcMisses,
	})
}
