package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/obs"
	"datavirt/internal/table"
)

// startOneNode launches a single-node cluster whose node can be
// configured (admission knobs, tracer) before any traffic arrives.
// wrap, when non-nil, rewrites the address the coordinator dials —
// used to interpose a misbehaving proxy in front of the real node.
func startOneNode(t *testing.T, configure func(*Node), wrap func(nodeAddr string) string) (*Coordinator, *Node, gen.IparsSpec) {
	t.Helper()
	s := gen.IparsSpec{
		Realizations: 1, TimeSteps: 5, GridPoints: 24, Partitions: 1,
		Attrs: 4, Seed: 17,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	name := svc.Nodes()[0]
	node, err := StartNode(context.Background(), name, svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node.Logf = t.Logf
	t.Cleanup(func() { node.Close() })
	if configure != nil {
		configure(node)
	}
	addr := node.Addr()
	if wrap != nil {
		addr = wrap(addr)
	}
	coord, err := NewCoordinator(d, map[string]string{name: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, node, s
}

func sortedKeys(rows []table.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = table.FormatRow(r)
	}
	sort.Strings(keys)
	return keys
}

// TestConcurrentClientsSharedPool is the tentpole's correctness test:
// many clients fire queries concurrently over one coordinator's pooled
// sessions (so queries genuinely interleave on shared connections) and
// every one of them must see exactly the rows a sequential run sees.
func TestConcurrentClientsSharedPool(t *testing.T) {
	coord, _ := startCluster(t, gen.IparsSpec{
		Realizations: 2, TimeSteps: 10, GridPoints: 120, Partitions: 3,
		Attrs: 6, Seed: 7,
	})
	queries := []string{
		"SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 6",
		"SELECT TIME, SOIL FROM IparsData WHERE REL = 1",
		"SELECT * FROM IparsData WHERE TIME > 1000", // empty
		"SELECT TIME FROM IparsData",
	}
	// Sequential baselines through the same coordinator.
	want := make([][]string, len(queries))
	for i, sql := range queries {
		rows, _, err := coord.CollectQueryContext(context.Background(), sql)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		want[i] = sortedKeys(rows)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		q := c % len(queries)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sql := queries[q]
			rows, err := coord.QueryContext(context.Background(), sql)
			if err != nil {
				errs <- fmt.Errorf("%q: %v", sql, err)
				return
			}
			got, err := collectRows(rows)
			if err != nil {
				errs <- fmt.Errorf("%q: %v", sql, err)
				return
			}
			keys := sortedKeys(got)
			if len(keys) != len(want[q]) {
				errs <- fmt.Errorf("%q: %d rows, want %d", sql, len(keys), len(want[q]))
				return
			}
			for i := range keys {
				if keys[i] != want[q][i] {
					errs <- fmt.Errorf("%q: row %d diverges: %s != %s", sql, i, keys[i], want[q][i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// gateTracer blocks one query inside its admission slot: the queue
// stage's StageEnd runs after acquire succeeds, so parking there holds
// the node's only execution slot until the test releases it.
type gateTracer struct {
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (g *gateTracer) StageStart(query string, stage obs.Stage) {}
func (g *gateTracer) StageEnd(query string, stage obs.Stage, d time.Duration, err error) {
	if stage == obs.StageQueue && err == nil && g.armed.CompareAndSwap(true, false) {
		g.entered <- struct{}{}
		<-g.release
	}
}

// TestLoadShedErrOverloaded drives a node whose admission gate has one
// slot and no queue into overload and checks the refusal surfaces as
// ErrOverloaded at the client, and that the node serves normally again
// once the slot frees.
func TestLoadShedErrOverloaded(t *testing.T) {
	gate := &gateTracer{entered: make(chan struct{}), release: make(chan struct{})}
	coord, node, _ := startOneNode(t, func(n *Node) {
		n.MaxConcurrent = 1
		n.MaxQueue = -1 // shed instead of queueing
		n.Tracer = gate
	}, nil)
	coord.OverloadRetries = -1 // surface the shed, don't retry it

	gate.armed.Store(true)
	holderErr := make(chan error, 1)
	go func() {
		_, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
		holderErr <- err
	}()
	select {
	case <-gate.entered: // the holder owns the node's only slot
	case <-time.After(5 * time.Second):
		t.Fatal("holder query never reached its admission slot")
	}

	_, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query: err = %v, want ErrOverloaded", err)
	}

	close(gate.release)
	if err := <-holderErr; err != nil {
		t.Fatalf("holder query: %v", err)
	}
	if _, shed := node.AdmissionCounters(); shed == 0 {
		t.Error("node counted no shed queries")
	}
	// The node is healthy again with its slot free.
	if _, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData"); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestOverloadRetrySucceeds checks the coordinator's default behaviour:
// a shed leg is retried with backoff and succeeds once the slot frees.
func TestOverloadRetrySucceeds(t *testing.T) {
	gate := &gateTracer{entered: make(chan struct{}), release: make(chan struct{})}
	coord, _, s := startOneNode(t, func(n *Node) {
		n.MaxConcurrent = 1
		n.MaxQueue = -1
		n.Tracer = gate
	}, nil)
	coord.OverloadBackoff = 10 * time.Millisecond

	gate.armed.Store(true)
	holderErr := make(chan error, 1)
	go func() {
		_, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
		holderErr <- err
	}()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("holder query never reached its admission slot")
	}
	// Free the slot while the second query is inside its retry backoff.
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(gate.release)
	}()
	rows, res, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
	if err != nil {
		t.Fatalf("retried query: %v", err)
	}
	if int64(len(rows)) != s.IparsTotalRows() {
		t.Errorf("rows = %d, want %d", len(rows), s.IparsTotalRows())
	}
	if res.QueryStats.ShedQueries == 0 {
		t.Error("stats counted no shed legs despite the retry")
	}
	if err := <-holderErr; err != nil {
		t.Fatalf("holder query: %v", err)
	}
}

// stallFirstProxy listens on a fresh port; the first accepted
// connection is blackholed (reads are swallowed, nothing is ever sent
// back), every later connection is forwarded to target. It simulates a
// node whose first session stalls — the straggler the hedge rescues.
func stallFirstProxy(t *testing.T, target string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var stalled atomic.Bool
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if stalled.CompareAndSwap(false, true) {
				go func() {
					io.Copy(io.Discard, c) //nolint:errcheck
					c.Close()
				}()
				continue
			}
			go func() {
				up, err := net.Dial("tcp", target)
				if err != nil {
					c.Close()
					return
				}
				go func() {
					io.Copy(up, c) //nolint:errcheck
					up.Close()
				}()
				io.Copy(c, up) //nolint:errcheck
				c.Close()
				up.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// TestHedgeRescuesStraggler runs a query whose first session is
// blackholed: the hedge timer must launch a second stream that wins,
// the query must return complete, correct rows, and afterwards neither
// goroutines nor connections may leak.
func TestHedgeRescuesStraggler(t *testing.T) {
	coord, _, s := startOneNode(t, nil, func(nodeAddr string) string {
		return stallFirstProxy(t, nodeAddr)
	})
	coord.HedgeAfter = 30 * time.Millisecond
	dialer := &trackingDialer{}
	coord.dialContext = dialer.dial

	before := runtime.NumGoroutine()
	rows, res, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	if int64(len(rows)) != s.IparsTotalRows() {
		t.Errorf("rows = %d, want %d", len(rows), s.IparsTotalRows())
	}
	if res.QueryStats.HedgedLegs == 0 {
		t.Error("stats counted no hedged legs")
	}

	coord.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked after hedged query: %d before, %d after", before, g)
	}
	dialer.assertAllClosed(t)
}

// TestHedgeCancellationNoLeaks cancels queries whose hedge timer fires
// on effectively every leg and checks nothing — goroutines or
// connections — outlives the coordinator.
func TestHedgeCancellationNoLeaks(t *testing.T) {
	coord, _ := startCluster(t, gen.IparsSpec{
		Realizations: 2, TimeSteps: 10, GridPoints: 201, Partitions: 3,
		Attrs: 6, Seed: 21,
	})
	coord.HedgeAfter = time.Nanosecond // hedge everything
	dialer := &trackingDialer{}
	coord.dialContext = dialer.dial

	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := coord.QueryContext(ctx, "SELECT * FROM IparsData")
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		var n int
		for rows.Next() {
			if n++; n == 50 {
				cancel()
			}
		}
		if err := rows.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want Canceled", i, err)
		}
		rows.Close()
		cancel()
	}

	coord.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
	dialer.assertAllClosed(t)
}
