package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/obs"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// admission is the node's concurrency gate: at most max queries run at
// once, at most maxQueue wait in FIFO order for a slot, and arrivals
// beyond that are shed immediately (the caller answers with a busy
// frame). Slots are node-wide, shared by every session.
type admission struct {
	mu      sync.Mutex
	max     int
	maxQ    int
	running int             //dvlint:guardedby mu
	queue   []chan struct{} //dvlint:guardedby mu (FIFO waiters, signalled by close)

	queued int64 //dvlint:guardedby mu (lifetime: queries that waited)
	shed   int64 //dvlint:guardedby mu (lifetime: queries rejected)
}

// acquire blocks until an execution slot is free, the queue overflows
// (ErrOverloaded), or ctx is cancelled. It reports whether and how long
// the query waited.
func (a *admission) acquire(ctx context.Context) (waited time.Duration, queued bool, err error) {
	a.mu.Lock()
	if a.running < a.max {
		a.running++
		a.mu.Unlock()
		return 0, false, nil
	}
	if len(a.queue) >= a.maxQ {
		a.shed++
		a.mu.Unlock()
		return 0, false, ErrOverloaded
	}
	slot := make(chan struct{})
	a.queue = append(a.queue, slot)
	a.queued++
	a.mu.Unlock()

	start := time.Now()
	select {
	case <-slot:
		return time.Since(start), true, nil
	case <-ctx.Done():
		a.mu.Lock()
		inQueue := false
		for i, s := range a.queue {
			if s == slot {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				inQueue = true
				break
			}
		}
		a.mu.Unlock()
		if !inQueue {
			// The slot was granted while we were giving up; hand it on.
			a.release()
		}
		return time.Since(start), true, ctx.Err()
	}
}

// release frees a slot, promoting the longest-waiting queued query.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		slot := a.queue[0]
		a.queue = a.queue[1:]
		close(slot) // slot ownership transfers; running stays
	} else {
		a.running--
	}
	a.mu.Unlock()
}

// counters snapshots the lifetime queued/shed counts.
func (a *admission) counters() (queued, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.shed
}

// outItem is one frame queued for a session's writer: a row batch
// (frameRows, subject to flow control) or a terminal frame.
type outItem struct {
	typ     byte
	payload []byte
}

// outStream is the per-query send state on a node session. The
// session's writer goroutine drains streams with a weighted-fair
// policy: among streams with a sendable head item it picks the one
// with the smallest virtual time (bytes sent divided by weight), so a
// heavy scan cannot starve point queries sharing the connection.
type outStream struct {
	qid     uint32
	weight  float64
	window  int64     //dvlint:guardedby nodeSession.mu (remaining flow-control credit, bytes)
	pending []outItem //dvlint:guardedby nodeSession.mu
	bytes   int       //dvlint:guardedby nodeSession.mu (payload bytes in pending; backpressures the extractor)
	vtime   float64   //dvlint:guardedby nodeSession.mu
	closed  bool      //dvlint:guardedby nodeSession.mu (terminal frame queued; drop further enqueues)
	// aborted marks a cancelled query: buffered row frames are
	// discarded (the client dropped the stream, and they could starve
	// the terminal frame of window credit) and the emitter is unblocked.
	aborted bool //dvlint:guardedby nodeSession.mu
	cancel  context.CancelFunc
}

// perStreamBuffer bounds how far a query's extraction may run ahead of
// its wire transmission before the emitting goroutine blocks.
const perStreamBuffer = 1 << 20

// nodeSession serves one multiplexed connection on a node: a reader
// loop (the caller) dispatches query/cancel/window frames, one
// goroutine per admitted query extracts rows, and a single writer
// goroutine owns the outbound half of the connection, scheduling row
// batches across queries fairly and within each query in order.
type nodeSession struct {
	node *Node
	conn net.Conn
	bw   *bufio.Writer

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	streams map[uint32]*outStream //dvlint:guardedby mu
	closed  bool                  //dvlint:guardedby mu
	wg      sync.WaitGroup
}

func newNodeSession(n *Node, conn net.Conn) *nodeSession {
	ctx, cancel := context.WithCancel(n.baseCtx)
	s := &nodeSession{
		node:    n,
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 1<<16),
		ctx:     ctx,
		cancel:  cancel,
		streams: map[uint32]*outStream{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// serve runs the session to connection close. It returns the first
// protocol-level error, nil on a clean client disconnect.
func (s *nodeSession) serve() error {
	s.wg.Add(1)
	go s.writeLoop()
	err := s.readLoop()
	// Tear down: stop queries, wake the writer, join everything.
	s.cancel()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *nodeSession) readLoop() error {
	br := bufio.NewReaderSize(s.conn, 1<<16)
	var buf []byte
	for {
		typ, qid, payload, err := readFrame(br, buf)
		if err != nil {
			if s.ctx.Err() != nil || isClosedConn(err) {
				return nil // node shutting down or client hung up
			}
			return err
		}
		buf = payload
		switch typ {
		case frameQuery:
			var req Request
			if err := json.Unmarshal(payload, &req); err != nil {
				s.finishStream(qid, frameError, []byte(fmt.Sprintf("bad request: %v", err)))
				continue
			}
			if req.Version != protocolVersion {
				s.finishStream(qid, frameError, []byte(fmt.Sprintf("protocol version %d not supported (want %d)", req.Version, protocolVersion)))
				continue
			}
			s.startQuery(qid, req)
		case frameCancel:
			s.mu.Lock()
			st := s.streams[qid]
			s.mu.Unlock()
			if st != nil {
				if st.cancel != nil {
					st.cancel()
				}
				s.abortStream(st)
			}
		case frameWindow:
			credit, err := parseWindow(payload)
			if err != nil {
				return err
			}
			s.mu.Lock()
			if st := s.streams[qid]; st != nil {
				st.window += int64(credit)
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		default:
			return fmt.Errorf("cluster: unexpected client frame %q", typ)
		}
	}
}

// startQuery registers the stream and launches the query goroutine.
func (s *nodeSession) startQuery(qid uint32, req Request) {
	qctx, qcancel := context.WithCancel(s.ctx)
	weight := float64(req.Weight)
	if weight <= 0 {
		weight = 1
	}
	window := req.WindowBytes
	if window <= 0 {
		window = defaultWindowBytes
	}
	st := &outStream{qid: qid, weight: weight, window: window, cancel: qcancel}
	s.mu.Lock()
	if _, dup := s.streams[qid]; dup || s.closed {
		s.mu.Unlock()
		qcancel()
		if dup {
			s.finishStream(qid, frameError, []byte(fmt.Sprintf("duplicate query id %d", qid)))
		}
		return
	}
	s.streams[qid] = st
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer qcancel()
		s.runQuery(qctx, st, req)
	}()
}

// enqueue appends a frame to the stream, blocking while the stream's
// buffered bytes exceed perStreamBuffer. It returns false once the
// stream or session is closed (the emitter should stop).
func (s *nodeSession) enqueue(st *outStream, item outItem) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for st.bytes >= perStreamBuffer && !st.closed && !st.aborted && !s.closed && s.ctx.Err() == nil {
		s.cond.Wait()
	}
	if st.closed || st.aborted || s.closed || s.ctx.Err() != nil {
		return false
	}
	st.pending = append(st.pending, item)
	st.bytes += len(item.payload)
	if !isDataFrame(item.typ) {
		st.closed = true
	}
	s.cond.Broadcast()
	return true
}

// finishStream queues a terminal frame for qid, creating a transient
// stream when none is registered (pre-admission errors).
func (s *nodeSession) finishStream(qid uint32, typ byte, payload []byte) {
	s.mu.Lock()
	st := s.streams[qid]
	if st == nil {
		st = &outStream{qid: qid, weight: 1}
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.streams[qid] = st
	}
	if st.closed {
		s.mu.Unlock()
		return
	}
	if st.aborted {
		// The client abandoned the query; drop buffered rows so the
		// terminal frame (which needs no window credit) goes right out.
		st.pending = st.pending[:0]
		st.bytes = 0
	}
	st.pending = append(st.pending, outItem{typ: typ, payload: payload})
	st.bytes += len(payload)
	st.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abortStream discards a cancelled query's buffered row frames
// (keeping any terminal frame) and unblocks its emitter.
func (s *nodeSession) abortStream(st *outStream) {
	s.mu.Lock()
	st.aborted = true
	kept := st.pending[:0]
	bytes := 0
	for _, it := range st.pending {
		if !isDataFrame(it.typ) {
			kept = append(kept, it)
			bytes += len(it.payload)
		}
	}
	st.pending = kept
	st.bytes = bytes
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pickStream chooses the next sendable stream under weighted-fair
// queuing; nil when nothing is ready. Callers hold s.mu.
func (s *nodeSession) pickStream() *outStream {
	var best *outStream
	for _, st := range s.streams {
		if len(st.pending) == 0 {
			continue
		}
		// Data frames need flow-control credit; terminal frames always go.
		if isDataFrame(st.pending[0].typ) && st.window <= 0 {
			continue
		}
		if best == nil || st.vtime < best.vtime {
			best = st
		}
	}
	return best
}

func (s *nodeSession) writeLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var st *outStream
		for {
			st = s.pickStream()
			if st != nil || s.closed {
				break
			}
			// Flush buffered frames before going idle.
			s.mu.Unlock()
			if err := s.bw.Flush(); err != nil {
				s.failWriter(err)
				return
			}
			s.mu.Lock()
			if st = s.pickStream(); st != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if st == nil { // closed and nothing ready
			s.mu.Unlock()
			s.bw.Flush() //nolint:errcheck — best effort on teardown
			return
		}
		item := st.pending[0]
		st.pending = st.pending[1:]
		st.bytes -= len(item.payload)
		if isDataFrame(item.typ) {
			st.window -= int64(len(item.payload))
			st.vtime += float64(len(item.payload)) / st.weight
		}
		terminal := st.closed && len(st.pending) == 0
		if terminal {
			delete(s.streams, st.qid)
		}
		s.cond.Broadcast() // unblock emitters waiting on buffer space
		s.mu.Unlock()

		if err := writeFrame(s.bw, item.typ, st.qid, item.payload); err != nil {
			s.failWriter(err)
			return
		}
		if terminal {
			if err := s.bw.Flush(); err != nil {
				s.failWriter(err)
				return
			}
		}
	}
}

// failWriter tears the session down after a write error: the peer is
// gone, so in-flight queries are cancelled rather than completed.
func (s *nodeSession) failWriter(err error) {
	if s.ctx.Err() == nil && !isClosedConn(err) {
		s.node.Logf("cluster node %s: write: %v", s.node.name, err)
	}
	s.cancel()
	s.conn.Close() // unblocks the reader
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runQuery admits, prepares, executes and streams one query, ending
// the stream with a done trailer, an error frame, or a busy frame.
func (s *nodeSession) runQuery(ctx context.Context, st *outStream, req Request) {
	n := s.node
	if n.Tracer != nil {
		ctx = obs.WithTracer(ctx, n.Tracer)
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Admission: acquire an execution slot (or shed). The wait is
	// reported as the query's queue stage and in the trailer.
	endQueue := obs.Begin(obs.TracerFrom(ctx), req.SQL, obs.StageQueue)
	waited, queued, err := n.admission().acquire(ctx)
	endQueue(err)
	if err != nil {
		if err == ErrOverloaded {
			s.finishStream(st.qid, frameBusy, []byte(err.Error()))
		} else {
			s.finishStream(st.qid, frameError, []byte(err.Error()))
		}
		return
	}
	defer n.admission().release()

	trailer, err := s.execute(ctx, st, req)
	if err != nil {
		s.finishStream(st.qid, frameError, []byte(err.Error()))
		return
	}
	trailer.QueueNS = waited.Nanoseconds()
	if queued {
		trailer.Queued = 1
	}
	payload, err := json.Marshal(trailer)
	if err != nil {
		s.finishStream(st.qid, frameError, []byte(err.Error()))
		return
	}
	s.finishStream(st.qid, frameDone, payload)
}

// execute runs the admitted query, streaming row batches through the
// session scheduler, and returns the trailer.
func (s *nodeSession) execute(ctx context.Context, st *outStream, req Request) (Trailer, error) {
	n := s.node
	// Repeated remote queries are served by the service's semantic plan
	// cache: the AFC list is memoized by (table, ranges, needed columns)
	// fingerprint rather than SQL text, so textually distinct but
	// range-equal queries share one plan (the paper's "no code
	// generation or expensive runtime processing is required when a new
	// query is submitted" applies a fortiori to repeats).
	prep, err := n.svc.PrepareContext(ctx, req.SQL)
	if err != nil {
		return Trailer{}, err
	}
	partition, err := n.partitionFor(req)
	if err != nil {
		return Trailer{}, err
	}
	if prep.Agg != nil {
		return s.executeAggregate(ctx, st, req, prep, partition)
	}
	codec := table.NewCodec(prep.OutSchema)

	// Partition generation at the server: each outgoing row is tagged
	// with its destination processor.
	numDests := req.Partition.NumDests
	var part storm.Partitioner
	if numDests > 0 {
		part, err = storm.NewPartitioner(req.Partition, func(name string) (int, bool) {
			i := prep.OutSchema.Index(name)
			return i, i >= 0
		})
		if err != nil {
			return Trailer{}, err
		}
	} else {
		numDests = 1
	}

	// Per-destination batches, flushed through the scheduler as encoded
	// 'R' payloads (the scheduler owns frame ordering across queries).
	type batch struct {
		rows int
		buf  []byte
	}
	batches := make([]batch, numDests)
	var sentBytes int64
	flush := func(d int) error {
		b := &batches[d]
		if b.rows == 0 {
			return nil
		}
		payload := encodeRowsBody(uint32(d), uint32(b.rows), b.buf)
		sentBytes += int64(len(payload))
		if req.MaxResultBytes > 0 && sentBytes > req.MaxResultBytes {
			return fmt.Errorf("cluster: query exceeded its %d-byte result budget", req.MaxResultBytes)
		}
		if !s.enqueue(st, outItem{typ: frameRows, payload: payload}) {
			return context.Canceled // stream or session closed under us
		}
		b.rows = 0
		b.buf = b.buf[:0]
		return nil
	}

	var rows int64
	extractStart := time.Now()
	stats, err := prep.RunContext(ctx, core.Options{
		NodeFilter: partition,
		Parallel:   req.Parallel,
	}, func(row table.Row) error {
		d := 0
		if part != nil {
			d = part.Dest(row)
			if d < 0 || d >= numDests {
				return fmt.Errorf("partitioner produced destination %d of %d", d, numDests)
			}
		}
		b := &batches[d]
		var err error
		b.buf, err = codec.Append(b.buf, row)
		if err != nil {
			return err
		}
		b.rows++
		rows++
		if b.rows >= batchRows {
			return flush(d)
		}
		return nil
	})
	extractNS := time.Since(extractStart).Nanoseconds()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Trailer{}, cerr
		}
		return Trailer{}, err
	}
	for d := range batches {
		if err := flush(d); err != nil {
			return Trailer{}, err
		}
	}
	pcHits, pcMisses := prep.PlanCacheCounters()
	return Trailer{
		Stats: stats, Rows: rows, ExtractNS: extractNS, SentBytes: sentBytes,
		PlanCacheHits: pcHits, PlanCacheMisses: pcMisses,
	}, nil
}

// executeAggregate runs an aggregate query leg: partial aggregates are
// folded directly over extracted blocks (no row materialization) and
// shipped to the coordinator in 'A' frames, each an independently
// mergeable chunk of groups. The coordinator merges every leg's
// partials and finalizes, so this leg never sees the final result.
func (s *nodeSession) executeAggregate(ctx context.Context, st *outStream, req Request, prep *core.Prepared, partition string) (Trailer, error) {
	if req.Partition.NumDests > 0 {
		return Trailer{}, fmt.Errorf("cluster: aggregate queries cannot be partitioned")
	}
	extractStart := time.Now()
	state, stats, err := prep.RunAggPartialContext(ctx, core.Options{
		NodeFilter: partition,
		Parallel:   req.Parallel,
	})
	extractNS := time.Since(extractStart).Nanoseconds()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Trailer{}, cerr
		}
		return Trailer{}, err
	}
	var sentBytes int64
	for _, chunk := range state.EncodeChunks(0) {
		sentBytes += int64(len(chunk))
		if req.MaxResultBytes > 0 && sentBytes > req.MaxResultBytes {
			return Trailer{}, fmt.Errorf("cluster: query exceeded its %d-byte result budget", req.MaxResultBytes)
		}
		if !s.enqueue(st, outItem{typ: frameAgg, payload: chunk}) {
			return Trailer{}, context.Canceled // stream or session closed under us
		}
	}
	pcHits, pcMisses := prep.PlanCacheCounters()
	return Trailer{
		Stats: stats, ExtractNS: extractNS, SentBytes: sentBytes,
		PlanCacheHits: pcHits, PlanCacheMisses: pcMisses,
	}, nil
}

// isClosedConn reports whether err is the use-of-closed-connection
// error a torn-down listener/conn produces (or a peer hang-up).
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}
