package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"datavirt/internal/schema"
	"datavirt/internal/table"
)

// TestOverloadBackoffHonorsCancel pins the regression the overload
// retry loop used to invite: a shed leg sleeping out its backoff must
// wake the moment the query's context is cancelled, not when the
// timer fires. The backoff here is absurd (30s) so a pass can only
// mean cancellation cut it short.
func TestOverloadBackoffHonorsCancel(t *testing.T) {
	gate := &gateTracer{entered: make(chan struct{}), release: make(chan struct{})}
	coord, _, _ := startOneNode(t, func(n *Node) {
		n.MaxConcurrent = 1
		n.MaxQueue = -1
		n.Tracer = gate
	}, nil)
	coord.OverloadBackoff = 30 * time.Second

	gate.armed.Store(true)
	holderErr := make(chan error, 1)
	go func() {
		_, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
		holderErr <- err
	}()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("holder query never reached execution")
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := coord.CollectQueryContext(ctx, "SELECT TIME FROM IparsData")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backoff returned %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the leg slept out its 30s backoff", elapsed)
	}

	close(gate.release)
	if err := <-holderErr; err != nil {
		t.Fatalf("holder query failed: %v", err)
	}
}

// TestLegStage exercises the exactly-once staging buffer directly:
// nothing reaches the merge before commit, reset discards cleanly,
// and a budget overflow force-commits.
func TestLegStage(t *testing.T) {
	row := func(v int64) table.Row { return table.Row{schema.IntValue(v)} }

	t.Run("withholds until commit", func(t *testing.T) {
		var got []int64
		g := newLegStage(1<<20, 8, func(dest int, rows []table.Row) {
			for _, r := range rows {
				got = append(got, r[0].Int)
			}
		}, nil)
		g.batch(0, []table.Row{row(1), row(2)})
		if len(got) != 0 {
			t.Fatalf("staged rows leaked to the merge: %v", got)
		}
		if err := g.commit(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("commit delivered %v, want [1 2]", got)
		}
		// Post-commit deliveries pass straight through.
		g.batch(0, []table.Row{row(3)})
		if len(got) != 3 || got[2] != 3 {
			t.Fatalf("post-commit delivery got %v", got)
		}
	})

	t.Run("reset discards uncommitted", func(t *testing.T) {
		var got []int64
		g := newLegStage(1<<20, 8, func(dest int, rows []table.Row) {
			for _, r := range rows {
				got = append(got, r[0].Int)
			}
		}, nil)
		g.batch(0, []table.Row{row(1)})
		g.reset()
		g.batch(0, []table.Row{row(7)}) // the replay
		if err := g.commit(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != 7 {
			t.Fatalf("after reset+replay got %v, want [7]", got)
		}
	})

	t.Run("budget overflow commits early", func(t *testing.T) {
		var got int
		g := newLegStage(16, 8, func(dest int, rows []table.Row) { got += len(rows) }, nil)
		g.batch(0, []table.Row{row(1)}) // 8 bytes: under budget, staged
		if got != 0 {
			t.Fatalf("under-budget batch delivered %d rows early", got)
		}
		g.batch(0, []table.Row{row(2)}) // 16 bytes: budget hit, auto-commit
		if !g.committed || got != 2 {
			t.Fatalf("overflow: committed=%v delivered=%d, want true/2", g.committed, got)
		}
	})

	t.Run("agg payloads stage and propagate merge errors", func(t *testing.T) {
		boom := errors.New("merge rejected")
		var calls int
		g := newLegStage(1<<20, 0, nil, func(payload []byte) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		})
		if err := g.agg([]byte("p1")); err != nil {
			t.Fatal(err)
		}
		if err := g.agg([]byte("p2")); err != nil {
			t.Fatal(err)
		}
		if calls != 0 {
			t.Fatalf("staged partials leaked: %d merge calls", calls)
		}
		if err := g.commit(); !errors.Is(err, boom) {
			t.Fatalf("commit = %v, want the merge error", err)
		}
	})
}

// TestPickReplica pins the placement policy: skip failed and avoided
// nodes, prefer an ungated pool over a health-gated one, break ties
// by in-flight legs and then replica order (primary first), and fall
// back to the avoided node when it is the only survivor.
func TestPickReplica(t *testing.T) {
	newCoord := func() *Coordinator {
		return &Coordinator{addrs: map[string]string{"a": "x", "b": "x", "c": "x"}}
	}
	replicas := []string{"a", "b", "c"}

	t.Run("primary wins ties", func(t *testing.T) {
		c := newCoord()
		n, ok := c.pickReplica(replicas, nil, "")
		if !ok || n != "a" {
			t.Fatalf("got %q/%v, want primary a", n, ok)
		}
	})

	t.Run("least in-flight wins", func(t *testing.T) {
		c := newCoord()
		c.pool("a").legStarted()
		c.pool("b").legStarted()
		c.pool("b").legStarted()
		n, ok := c.pickReplica(replicas, nil, "")
		if !ok || n != "c" {
			t.Fatalf("got %q/%v, want idle c", n, ok)
		}
	})

	t.Run("health gate loses to ungated", func(t *testing.T) {
		c := newCoord()
		// Three straight failures gate a pool behind retryAt.
		for i := 0; i < 3; i++ {
			c.pool("a").reportResult(errors.New("down"), time.Minute)
		}
		c.pool("b").legStarted() // busier, but healthy
		n, ok := c.pickReplica(replicas[:2], nil, "")
		if !ok || n != "b" {
			t.Fatalf("got %q/%v, want ungated b", n, ok)
		}
	})

	t.Run("failed and avoided skipped", func(t *testing.T) {
		c := newCoord()
		n, ok := c.pickReplica(replicas, map[string]bool{"a": true}, "b")
		if !ok || n != "c" {
			t.Fatalf("got %q/%v, want c", n, ok)
		}
	})

	t.Run("avoid is better than nothing", func(t *testing.T) {
		c := newCoord()
		n, ok := c.pickReplica(replicas, map[string]bool{"a": true, "c": true}, "b")
		if !ok || n != "b" {
			t.Fatalf("got %q/%v, want the avoided-but-live b", n, ok)
		}
	})

	t.Run("all failed", func(t *testing.T) {
		c := newCoord()
		if n, ok := c.pickReplica(replicas, map[string]bool{"a": true, "b": true, "c": true}, ""); ok {
			t.Fatalf("got %q, want no candidate", n)
		}
	})
}

// TestPartitionFor pins the serve-side replica check: a node accepts
// its own partition and partitions it is declared a standby for, and
// rejects everything else — a coordinator bug must not make a node
// read files it does not hold.
func TestPartitionFor(t *testing.T) {
	n := &Node{name: "n1", replicaOf: map[string]bool{"n1": true, "n0": true}}
	for _, tc := range []struct {
		filter, want string
		wantErr      bool
	}{
		{"", "n1", false},   // pre-replica clients: own partition
		{"n1", "n1", false}, // explicit self
		{"n0", "n0", false}, // declared standby
		{"n2", "", true},    // not replicated here
	} {
		got, err := n.partitionFor(Request{NodeFilter: tc.filter})
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("partitionFor(%q) = %q, %v; want %q, err=%v", tc.filter, got, err, tc.want, tc.wantErr)
		}
	}
}
