package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/table"
)

// buildCoordinator compiles a coordinator whose every node resolves to
// addr (used to point a whole descriptor at one fake node server).
func buildCoordinator(t *testing.T, addr string) *Coordinator {
	t.Helper()
	s := defaultSpec()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[string]string{}
	for i := 0; i < s.Partitions; i++ {
		addrs[fmt.Sprintf("node%d", i)] = addr
	}
	coord, err := NewCoordinator(d, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// collectRows drains a cursor into a slice, returning the iteration
// error.
func collectRows(rows *core.Rows) ([]table.Row, error) {
	var out []table.Row
	for rows.Next() {
		out = append(out, rows.Row())
	}
	err := rows.Err()
	rows.Close()
	return out, err
}

// TestCoordinatorDeadlineAgainstStalledNode points the coordinator at
// a node server that accepts connections and then never responds; the
// context deadline must fire and surface promptly as the query error.
func TestCoordinatorDeadlineAgainstStalledNode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var mu sync.Mutex
	go func() { // accept and stall: read nothing, send nothing
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		for _, c := range held {
			c.Close()
		}
		mu.Unlock()
	}()

	coord := buildCoordinator(t, ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	rows, err := coord.QueryContext(ctx, "SELECT TIME FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	_, err = collectRows(rows)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled node: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

// trackedConn observes Close so tests can prove no connection leaks.
type trackedConn struct {
	net.Conn
	closed *atomic.Bool
}

func (c *trackedConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// trackingDialer wraps real dials, remembering every connection.
type trackingDialer struct {
	mu    sync.Mutex
	conns []*atomic.Bool
}

func (d *trackingDialer) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	conn, err := (&net.Dialer{}).DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	closed := &atomic.Bool{}
	d.mu.Lock()
	d.conns = append(d.conns, closed)
	d.mu.Unlock()
	return &trackedConn{Conn: conn, closed: closed}, nil
}

func (d *trackingDialer) assertAllClosed(t *testing.T) {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.conns) == 0 {
		t.Fatal("no connections were dialed; test is vacuous")
	}
	for i, closed := range d.conns {
		if !closed.Load() {
			t.Errorf("connection %d of %d leaked (never closed)", i, len(d.conns))
		}
	}
}

// TestNoConnLeakOnMisbehavingNode is the regression test for the
// queryNode connection leak: whichever way a node misbehaves — closing
// during the handshake, or answering with a garbage frame — every
// dialed connection must be closed by the time the query returns.
func TestNoConnLeakOnMisbehavingNode(t *testing.T) {
	cases := []struct {
		name  string
		serve func(c net.Conn)
	}{
		{"close-during-handshake", func(c net.Conn) {
			c.Close() // handshake write (or first read) fails
		}},
		{"garbage-frame", func(c net.Conn) {
			readFrame(c, nil)                      //nolint:errcheck
			writeFrame(c, 'X', 1, []byte("bogus")) //nolint:errcheck
			time.Sleep(100 * time.Millisecond)     // outlive the client
			c.Close()
		}},
		{"corrupt-length", func(c net.Conn) {
			readFrame(c, nil)                                       //nolint:errcheck
			c.Write([]byte{0xff, 0xff, 0xff, 0xff, frameRows, 0x0}) //nolint:errcheck
			time.Sleep(100 * time.Millisecond)
			c.Close()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go func() {
				for {
					c, err := ln.Accept()
					if err != nil {
						return
					}
					go tc.serve(c)
				}
			}()

			coord := buildCoordinator(t, ln.Addr().String())
			coord.DialRetries = 0
			dialer := &trackingDialer{}
			coord.dialContext = dialer.dial
			rows, err := coord.QueryContext(context.Background(), "SELECT TIME FROM IparsData")
			if err == nil {
				_, err = collectRows(rows)
			}
			if err == nil {
				t.Fatal("misbehaving node produced no error")
			}
			coord.Close()
			dialer.assertAllClosed(t)
		})
	}
}

// TestDialRetryWithBackoff verifies dead nodes are retried the
// configured number of times before the query fails.
func TestDialRetryWithBackoff(t *testing.T) {
	coord := buildCoordinator(t, "127.0.0.1:1") // nobody listens
	coord.DialRetries = 2
	coord.RetryBackoff = time.Millisecond
	var attempts atomic.Int64
	coord.dialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("connection refused (simulated)")
	}
	rows, err := coord.QueryContext(context.Background(), "SELECT TIME FROM IparsData")
	if err == nil {
		_, err = collectRows(rows)
	}
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	// 3 nodes × 3 attempts each.
	if got := attempts.Load(); got != 9 {
		t.Errorf("dial attempts = %d, want 9", got)
	}

	// Cancellation aborts the backoff wait immediately.
	coord.RetryBackoff = time.Hour
	attempts.Store(0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rows, err = coord.QueryContext(ctx, "SELECT TIME FROM IparsData")
	if err == nil {
		_, err = collectRows(rows)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel during backoff: err = %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("cancellation did not interrupt backoff")
	}
}

// TestClusterQueryCancelledMidStream cancels the context from the emit
// callback of a real distributed query; the coordinator must return
// ctx.Err() promptly and leave no goroutines behind.
func TestClusterQueryCancelledMidStream(t *testing.T) {
	coord, _ := startCluster(t, gen.IparsSpec{
		Realizations: 2, TimeSteps: 20, GridPoints: 201, Partitions: 3,
		Attrs: 6, Seed: 9,
	})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := coord.QueryContext(ctx, "SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for rows.Next() {
		if n++; n == 100 {
			cancel()
		}
	}
	err = rows.Err()
	rows.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel: err = %v", err)
	}
	// Coordinator-side goroutines must drain once the pooled sessions
	// are released (node-side handlers close with their connections).
	coord.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestClusterQueryStats checks the coordinator's per-query stats on a
// successful distributed query.
func TestClusterQueryStats(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	_, res, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	qs := res.QueryStats
	if qs.RowsScanned != s.IparsTotalRows() || qs.RowsEmitted != s.IparsTotalRows() {
		t.Errorf("rows: %+v", qs)
	}
	if qs.ChunksPlanned == 0 || qs.ChunksRead == 0 {
		t.Errorf("chunks not counted: %+v", qs)
	}
	if qs.NetTime <= 0 || qs.ExtractTime <= 0 {
		t.Errorf("stage times not recorded: net=%v extract=%v", qs.NetTime, qs.ExtractTime)
	}
	if qs.PlanTime <= 0 || qs.IndexTime <= 0 {
		t.Errorf("prepare times not recorded: plan=%v index=%v", qs.PlanTime, qs.IndexTime)
	}
}

// TestNodeHonoursForwardedDeadline gives the whole query a deadline far
// shorter than the node needs: the node-side context must stop its
// extraction (we observe the query failing with DeadlineExceeded while
// the node keeps serving later queries).
func TestNodeHonoursForwardedDeadline(t *testing.T) {
	coord, _ := startCluster(t, gen.IparsSpec{
		Realizations: 2, TimeSteps: 20, GridPoints: 300, Partitions: 3,
		Attrs: 8, Seed: 13,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	rows, err := coord.QueryContext(ctx, "SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		time.Sleep(100 * time.Microsecond) // slow client keeps the stream alive past the deadline
	}
	err = rows.Err()
	rows.Close()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forwarded deadline: err = %v", err)
	}
	// The cluster still works afterwards.
	if _, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData WHERE TIME = 1"); err != nil {
		t.Fatalf("cluster unhealthy after timed-out query: %v", err)
	}
}
