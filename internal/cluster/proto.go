// Package cluster executes virtual-table queries across the nodes of a
// (simulated) cluster: one node server per cluster node, each owning the
// files whose storage directories name it, and a coordinator that fans a
// query out, merges the tuple streams, and optionally routes tuples to
// client processors using the partition generated at the server side —
// the deployment the paper evaluates on 1–16 nodes.
//
// The wire protocol is length-prefixed binary frames over TCP:
//
//	frame   = len uint32 (LE) | type byte | payload
//	'Q'     = query request (JSON header)
//	'R'     = row batch: destID uint32 | rowCount uint32 | rows (codec)
//	'D'     = done: JSON stats trailer
//	'E'     = error: UTF-8 message
//
// Rows travel in the fixed-width schema codec of internal/table; both
// ends derive the row layout from the query's SELECT list against the
// shared descriptor.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"datavirt/internal/extractor"
	"datavirt/internal/storm"
)

const (
	frameQuery = 'Q'
	frameRows  = 'R'
	frameDone  = 'D'
	frameError = 'E'

	// maxFrame guards against corrupt length prefixes.
	maxFrame = 64 << 20

	// protocolVersion is checked at handshake.
	protocolVersion = 1

	// batchRows is the number of rows per 'R' frame.
	batchRows = 512
)

// Request is the JSON header of a 'Q' frame.
type Request struct {
	Version int
	// SQL is the query text.
	SQL string
	// Partition describes the client program's distribution; the node
	// computes each tuple's destination (partition generation at the
	// server). A zero NumDests means a single unpartitioned stream.
	Partition storm.PartitionSpec
	// Parallel asks the node to extract with a worker pool.
	Parallel bool
	// TimeoutMS bounds the node-side execution in milliseconds; the
	// coordinator derives it from its context deadline so a node keeps
	// no work in flight after the client has given up. Zero means no
	// server-side bound.
	TimeoutMS int64 `json:",omitempty"`
}

// Trailer is the JSON payload of a 'D' frame.
type Trailer struct {
	Stats extractor.Stats
	Rows  int64
	// ExtractNS is the node's extraction wall time in nanoseconds; the
	// coordinator keeps the maximum across nodes (the straggler).
	ExtractNS int64 `json:",omitempty"`
	// PlanCacheHits/Misses report whether this leg's prepare hit the
	// node's semantic plan cache; the coordinator sums them into the
	// query's stats alongside its own prepare.
	PlanCacheHits   int64 `json:",omitempty"`
	PlanCacheMisses int64 `json:",omitempty"`
}

// writeFrame writes one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// rowsFrameEncoder writes 'R' frames — destID | rowCount | rows —
// without assembling the payload in a temporary: the 13-byte header
// (length prefix, type, destination, count) is encoded into the
// reused per-connection buffer and the row body is written straight
// from the caller's batch buffer, so steady-state row streaming
// allocates nothing per frame (the old path copied every batch into a
// fresh payload slice).
type rowsFrameEncoder struct {
	hdr [13]byte
}

func (e *rowsFrameEncoder) writeRowsFrame(w io.Writer, dest, count uint32, body []byte) error {
	if 8+len(body) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", 8+len(body))
	}
	binary.LittleEndian.PutUint32(e.hdr[0:4], uint32(8+len(body)))
	e.hdr[4] = frameRows
	binary.LittleEndian.PutUint32(e.hdr[5:9], dest)
	binary.LittleEndian.PutUint32(e.hdr[9:13], count)
	if _, err := w.Write(e.hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame, reusing buf when it has capacity.
func readFrame(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("cluster: short frame: %w", err)
	}
	return hdr[4], buf, nil
}

// writeJSONFrame marshals v into a frame.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, b)
}
