// Package cluster executes virtual-table queries across the nodes of a
// (simulated) cluster: one node server per cluster node, each owning the
// files whose storage directories name it, and a coordinator that fans a
// query out, merges the tuple streams, and optionally routes tuples to
// client processors using the partition generated at the service side —
// the deployment the paper evaluates on 1–16 nodes, grown into a
// concurrent serving system: many in-flight queries are multiplexed
// over a small set of persistent node connections.
//
// The wire protocol (version 3) is length-prefixed binary frames over
// TCP, every frame tagged with the query ID it belongs to so one
// connection carries many queries at once:
//
//	frame   = len uint32 (LE) | type byte | qid uint32 (LE) | payload
//	'Q'     = query request (JSON header), client → node
//	'C'     = cancel query qid (empty payload), client → node
//	'W'     = flow-control credit: uint32 window bytes, client → node
//	'R'     = row batch: destID uint32 | rowCount uint32 | rows (codec)
//	'A'     = partial aggregates (query.AggState wire encoding)
//	'D'     = done: JSON stats trailer (terminal)
//	'E'     = error: UTF-8 message (terminal)
//	'B'     = busy: the node shed the query at admission (terminal)
//
// Rows travel in the fixed-width schema codec of internal/table; both
// ends derive the row layout from the query's SELECT list against the
// shared descriptor. Aggregate queries (GROUP BY / aggregate
// functions) ship no rows at all: each leg evaluates partial
// aggregates over its blocks and streams them in 'A' frames — each an
// independently mergeable group of partials — which the coordinator
// merges and finalizes, so result traffic scales with group count
// rather than row count. Each query has a byte-granular flow-control
// window: the node only sends row or aggregate batches against credit
// the client has granted ('Q' carries the initial window, 'W'
// replenishes it), so one slow consumer cannot monopolize a shared
// connection.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"datavirt/internal/extractor"
	"datavirt/internal/storm"
)

const (
	frameQuery  = 'Q'
	frameCancel = 'C'
	frameWindow = 'W'
	frameRows   = 'R'
	frameAgg    = 'A'
	frameDone   = 'D'
	frameError  = 'E'
	frameBusy   = 'B'

	// maxFrame guards against corrupt length prefixes.
	maxFrame = 64 << 20

	// protocolVersion is checked per query request. Version 2 added
	// query-ID-tagged frames (connection multiplexing), flow-control
	// windows, and the cancel/busy frames; version 3 added the 'A'
	// partial-aggregate frame (push-down aggregation).
	protocolVersion = 3

	// batchRows is the number of rows per 'R' frame.
	batchRows = 512

	// defaultWindowBytes is the flow-control credit a query starts with
	// when the request does not name one.
	defaultWindowBytes = 1 << 20

	// frameHeaderLen is len + type + qid.
	frameHeaderLen = 9
)

// ErrOverloaded is the typed load-shedding error: a node whose
// admission queue is full rejects the query with a 'B' busy frame
// (the 429 of this protocol) instead of letting it pile up. The
// coordinator retries shed legs with backoff; when retries are
// exhausted the query fails with an error matching this via errors.Is.
var ErrOverloaded = errors.New("cluster: node overloaded, query shed")

// Request is the JSON payload of a 'Q' frame.
type Request struct {
	Version int
	// SQL is the query text.
	SQL string
	// Partition describes the client program's distribution; the node
	// computes each tuple's destination (partition generation at the
	// server). A zero NumDests means a single unpartitioned stream.
	Partition storm.PartitionSpec
	// Parallel asks the node to extract with a worker pool.
	Parallel bool
	// TimeoutMS bounds the node-side execution in milliseconds; the
	// coordinator derives it from its context deadline so a node keeps
	// no work in flight after the client has given up. Zero means no
	// server-side bound.
	TimeoutMS int64 `json:",omitempty"`
	// WindowBytes is the initial flow-control credit: the node may send
	// at most this many row-batch payload bytes before waiting for 'W'
	// frames. Zero means defaultWindowBytes.
	WindowBytes int64 `json:",omitempty"`
	// Weight is the query's share under the node's weighted-fair
	// scheduler (relative to other in-flight queries on the node;
	// 0 means 1).
	Weight int `json:",omitempty"`
	// MaxResultBytes, when positive, is the query's byte budget: a leg
	// that streams more row-batch bytes than this is aborted with an
	// error instead of saturating the wire indefinitely.
	MaxResultBytes int64 `json:",omitempty"`
	// NodeFilter names the storage partition (by its primary node) the
	// leg should extract. Empty means the serving node's own partition
	// — the only shape before replica sets existed, so the field is
	// wire-compatible. A coordinator failing a leg over sets this to
	// the partition's primary so a standby replica extracts the same
	// files; the node rejects names whose partition it does not hold.
	NodeFilter string `json:",omitempty"`
}

// Trailer is the JSON payload of a 'D' frame.
type Trailer struct {
	Stats extractor.Stats
	Rows  int64
	// ExtractNS is the node's extraction wall time in nanoseconds; the
	// coordinator keeps the maximum across nodes (the straggler).
	ExtractNS int64 `json:",omitempty"`
	// PlanCacheHits/Misses report whether this leg's prepare hit the
	// node's semantic plan cache; the coordinator sums them into the
	// query's stats alongside its own prepare.
	PlanCacheHits   int64 `json:",omitempty"`
	PlanCacheMisses int64 `json:",omitempty"`
	// Queued is 1 when this leg waited in the node's admission queue
	// before running; QueueNS is that wait in nanoseconds.
	Queued  int64 `json:",omitempty"`
	QueueNS int64 `json:",omitempty"`
	// SentBytes is the result payload the leg streamed ('R' or 'A'
	// frame bodies) — the coordinator-side transfer cost a pushed-down
	// aggregate keeps proportional to group count, not row count.
	SentBytes int64 `json:",omitempty"`
}

// isDataFrame reports whether typ carries result data subject to flow
// control ('R' row batches and 'A' partial aggregates); every other
// server frame is terminal.
func isDataFrame(typ byte) bool { return typ == frameRows || typ == frameAgg }

// writeFrame writes one frame tagged with qid.
func writeFrame(w io.Writer, typ byte, qid uint32, payload []byte) error {
	var hdr [frameHeaderLen]byte
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:9], qid)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// rowsFrameEncoder writes 'R' frames — destID | rowCount | rows —
// without assembling the payload in a temporary: the 17-byte header
// (length prefix, type, query ID, destination, count) is encoded into
// the reused per-stream buffer and the row body is written straight
// from the caller's batch buffer, so steady-state row streaming
// allocates nothing per frame.
type rowsFrameEncoder struct {
	hdr [frameHeaderLen + 8]byte
}

func (e *rowsFrameEncoder) writeRowsFrame(w io.Writer, qid, dest, count uint32, body []byte) error {
	if 8+len(body) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", 8+len(body))
	}
	binary.LittleEndian.PutUint32(e.hdr[0:4], uint32(8+len(body)))
	e.hdr[4] = frameRows
	binary.LittleEndian.PutUint32(e.hdr[5:9], qid)
	binary.LittleEndian.PutUint32(e.hdr[9:13], dest)
	binary.LittleEndian.PutUint32(e.hdr[13:17], count)
	if _, err := w.Write(e.hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// encodeRowsBody prepends destID | rowCount to a row batch, producing
// the payload of an 'R' frame (used by the node-side scheduler, which
// queues encoded payloads rather than writing them inline).
func encodeRowsBody(dest, count uint32, rows []byte) []byte {
	body := make([]byte, 8+len(rows))
	binary.LittleEndian.PutUint32(body[0:4], dest)
	binary.LittleEndian.PutUint32(body[4:8], count)
	copy(body[8:], rows)
	return body
}

// readFrame reads one frame, reusing buf when it has capacity.
func readFrame(r io.Reader, buf []byte) (typ byte, qid uint32, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("cluster: frame length %d exceeds limit", n)
	}
	qid = binary.LittleEndian.Uint32(hdr[5:9])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, fmt.Errorf("cluster: short frame: %w", err)
	}
	return hdr[4], qid, buf, nil
}

// writeJSONFrame marshals v into a frame.
func writeJSONFrame(w io.Writer, typ byte, qid uint32, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, qid, b)
}

// windowPayload encodes a 'W' credit grant.
func windowPayload(credit uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], credit)
	return b[:]
}

// parseWindow decodes a 'W' payload.
func parseWindow(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("cluster: window frame of %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}
