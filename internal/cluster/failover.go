package cluster

import (
	"errors"

	"datavirt/internal/table"
)

// defaultStageBytes is the FailoverStageBytes default: how much of a
// replicated leg's result payload the coordinator holds back before
// committing it to the merge (and giving up replayability).
const defaultStageBytes = 8 << 20

// errLegStalled fails a leg whose stream made no frame progress
// within LegStallAfter. It counts against the node's health, and on a
// replicated partition the coordinator re-dispatches the leg to a
// standby.
var errLegStalled = errors.New("cluster: leg stalled: no frame progress within LegStallAfter")

// legStage buffers a replicated leg's results until the leg commits —
// its done trailer arrives, or the staged bytes exceed the budget —
// so a leg whose serving node dies mid-stream can be replayed on a
// standby replica without delivering any row or partial twice: until
// commit, nothing has reached the merge, and after commit a failure
// is final (runLeg checks committed before re-dispatching).
//
// No lock guards the fields: within one dispatch the claim CAS in
// legStream lets exactly one stream deliver, and across dispatches
// runLeg only starts the next after legHedged has returned (the
// result-channel receive orders the previous stream's last delivery
// before it). Queries are either row or aggregate, never both, so a
// stage holds 'R' batches or 'A' partials, not a mix.
type legStage struct {
	budget   int64
	rowBytes int64 // wire bytes per row, for budget accounting
	onBatch  func(dest int, rows []table.Row)
	onAgg    func(payload []byte) error

	staged    []stagedItem
	bytes     int64
	committed bool
}

// stagedItem is one withheld delivery: a decoded row batch (agg nil)
// or an encoded partial-aggregate payload. Both are safe to retain —
// the demux reader copies every frame payload and DecodeAll allocates
// fresh rows.
type stagedItem struct {
	dest int
	rows []table.Row
	agg  []byte
}

func newLegStage(budget, rowBytes int64, onBatch func(dest int, rows []table.Row), onAgg func(payload []byte) error) *legStage {
	return &legStage{budget: budget, rowBytes: rowBytes, onBatch: onBatch, onAgg: onAgg}
}

// batch stages (or, once committed, passes through) one row batch.
// A budget overflow commits everything staged so far: memory stays
// bounded at the price of making the leg non-replayable.
func (g *legStage) batch(dest int, rows []table.Row) {
	if g.committed {
		g.onBatch(dest, rows)
		return
	}
	g.staged = append(g.staged, stagedItem{dest: dest, rows: rows})
	g.bytes += int64(len(rows)) * g.rowBytes
	if g.bytes >= g.budget {
		g.commit() //nolint:errcheck — row-only path; commit errors come from onAgg, never reached here
	}
}

// agg stages (or passes through) one partial-aggregate payload. Only
// a commit can fail — the downstream merge rejecting a payload — and
// that error aborts the leg like any onAgg failure.
func (g *legStage) agg(payload []byte) error {
	if g.committed {
		return g.onAgg(payload)
	}
	g.staged = append(g.staged, stagedItem{agg: payload})
	g.bytes += int64(len(payload))
	if g.bytes >= g.budget {
		return g.commit()
	}
	return nil
}

// commit releases everything staged to the merge and makes the leg
// final: from here on deliveries pass straight through and a failure
// can no longer be failed over.
func (g *legStage) commit() error {
	g.committed = true
	staged := g.staged
	g.staged = nil
	for _, it := range staged {
		if it.agg != nil {
			if err := g.onAgg(it.agg); err != nil {
				return err
			}
		} else {
			g.onBatch(it.dest, it.rows)
		}
	}
	return nil
}

// reset discards an uncommitted partial stream so the leg can be
// replayed from scratch on another replica. Callers must check
// committed first.
func (g *legStage) reset() {
	g.staged = nil
	g.bytes = 0
}
