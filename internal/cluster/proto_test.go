package cluster

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, frameRows, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf, nil)
	if err != nil || typ != frameRows || string(got) != string(payload) {
		t.Fatalf("round trip: %q %q %v", typ, got, err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, frameRows, []byte("aaaa")) //nolint:errcheck
	writeFrame(&buf, frameDone, []byte("bb"))   //nolint:errcheck
	scratch := make([]byte, 16)
	_, p1, err := readFrame(&buf, scratch)
	if err != nil || string(p1) != "aaaa" {
		t.Fatal(err)
	}
	_, p2, err := readFrame(&buf, p1)
	if err != nil || string(p2) != "bb" {
		t.Fatalf("second frame: %q %v", p2, err)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameRows, make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized write accepted")
	}
	// A corrupt length prefix is rejected before allocation.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = frameRows
	if _, _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("corrupt length: %v", err)
	}
	// Truncated payload.
	var short bytes.Buffer
	binary.LittleEndian.PutUint32(hdr[:4], 100)
	short.Write(hdr[:])
	short.WriteString("only a little")
	if _, _, err := readFrame(&short, nil); err == nil {
		t.Error("short frame accepted")
	}
}
