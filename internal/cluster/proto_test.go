package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, frameRows, 7, payload); err != nil {
		t.Fatal(err)
	}
	typ, qid, got, err := readFrame(&buf, nil)
	if err != nil || typ != frameRows || qid != 7 || string(got) != string(payload) {
		t.Fatalf("round trip: %q qid=%d %q %v", typ, qid, got, err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, frameRows, 1, []byte("aaaa")) //nolint:errcheck
	writeFrame(&buf, frameDone, 2, []byte("bb"))   //nolint:errcheck
	scratch := make([]byte, 16)
	_, q1, p1, err := readFrame(&buf, scratch)
	if err != nil || q1 != 1 || string(p1) != "aaaa" {
		t.Fatal(err)
	}
	_, q2, p2, err := readFrame(&buf, p1)
	if err != nil || q2 != 2 || string(p2) != "bb" {
		t.Fatalf("second frame: %q %v", p2, err)
	}
}

func TestRowsFrameWireFormat(t *testing.T) {
	// writeRowsFrame must emit exactly the bytes of writeFrame over an
	// assembled destID|rowCount|body payload (encodeRowsBody) — the
	// session reader cannot tell them apart.
	body := []byte("0123456789abcdef0123456789abcdef")
	var want bytes.Buffer
	if err := writeFrame(&want, frameRows, 9, encodeRowsBody(3, 2, body)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var enc rowsFrameEncoder
	if err := enc.writeRowsFrame(&got, 9, 3, 2, body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("wire bytes differ:\n got %x\nwant %x", got.Bytes(), want.Bytes())
	}
	if err := enc.writeRowsFrame(io.Discard, 0, 0, 0, make([]byte, maxFrame)); err == nil {
		t.Error("oversized rows frame accepted")
	}
}

func TestRowsFrameNoAllocs(t *testing.T) {
	body := make([]byte, 512*64)
	enc := &rowsFrameEncoder{}
	allocs := testing.AllocsPerRun(100, func() {
		if err := enc.writeRowsFrame(io.Discard, 1, 1, 512, body); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("writeRowsFrame allocates %.1f objects per frame, want 0", allocs)
	}
}

func TestWindowPayloadRoundTrip(t *testing.T) {
	got, err := parseWindow(windowPayload(1 << 20))
	if err != nil || got != 1<<20 {
		t.Fatalf("window round trip: %d %v", got, err)
	}
	if _, err := parseWindow([]byte{1, 2, 3}); err == nil {
		t.Error("short window payload accepted")
	}
}

// BenchmarkRowsFrame compares the zero-copy 'R' frame writer against
// the assemble-then-write path; run with -benchmem to see the
// per-batch allocation drop (one payload-sized allocation per frame).
func BenchmarkRowsFrame(b *testing.B) {
	body := make([]byte, 512*64) // one full batch of 64-byte rows
	b.Run("direct", func(b *testing.B) {
		enc := &rowsFrameEncoder{}
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			if err := enc.writeRowsFrame(io.Discard, 1, 1, 512, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("assemble", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			if err := writeFrame(io.Discard, frameRows, 1, encodeRowsBody(1, 512, body)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameRows, 1, make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized write accepted")
	}
	// A corrupt length prefix is rejected before allocation.
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = frameRows
	if _, _, _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("corrupt length: %v", err)
	}
	// Truncated payload.
	var short bytes.Buffer
	binary.LittleEndian.PutUint32(hdr[:4], 100)
	short.Write(hdr[:])
	short.WriteString("only a little")
	if _, _, _, err := readFrame(&short, nil); err == nil {
		t.Error("short frame accepted")
	}
}
