package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, frameRows, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf, nil)
	if err != nil || typ != frameRows || string(got) != string(payload) {
		t.Fatalf("round trip: %q %q %v", typ, got, err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, frameRows, []byte("aaaa")) //nolint:errcheck
	writeFrame(&buf, frameDone, []byte("bb"))   //nolint:errcheck
	scratch := make([]byte, 16)
	_, p1, err := readFrame(&buf, scratch)
	if err != nil || string(p1) != "aaaa" {
		t.Fatal(err)
	}
	_, p2, err := readFrame(&buf, p1)
	if err != nil || string(p2) != "bb" {
		t.Fatalf("second frame: %q %v", p2, err)
	}
}

func TestRowsFrameWireFormat(t *testing.T) {
	// writeRowsFrame must emit exactly the bytes of writeFrame over an
	// assembled destID|rowCount|body payload — the coordinator's reader
	// cannot tell them apart.
	body := []byte("0123456789abcdef0123456789abcdef")
	var want bytes.Buffer
	payload := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(payload[0:], 3)
	binary.LittleEndian.PutUint32(payload[4:], 2)
	copy(payload[8:], body)
	if err := writeFrame(&want, frameRows, payload); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var enc rowsFrameEncoder
	if err := enc.writeRowsFrame(&got, 3, 2, body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("wire bytes differ:\n got %x\nwant %x", got.Bytes(), want.Bytes())
	}
	if err := enc.writeRowsFrame(io.Discard, 0, 0, make([]byte, maxFrame)); err == nil {
		t.Error("oversized rows frame accepted")
	}
}

func TestRowsFrameNoAllocs(t *testing.T) {
	body := make([]byte, 512*64)
	enc := &rowsFrameEncoder{}
	allocs := testing.AllocsPerRun(100, func() {
		if err := enc.writeRowsFrame(io.Discard, 1, 512, body); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("writeRowsFrame allocates %.1f objects per frame, want 0", allocs)
	}
}

// BenchmarkRowsFrame compares the zero-copy 'R' frame writer against
// the old assemble-then-write path; run with -benchmem to see the
// per-batch allocation drop (one payload-sized allocation per frame).
func BenchmarkRowsFrame(b *testing.B) {
	body := make([]byte, 512*64) // one full batch of 64-byte rows
	b.Run("direct", func(b *testing.B) {
		enc := &rowsFrameEncoder{}
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			if err := enc.writeRowsFrame(io.Discard, 1, 512, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("assemble", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			payload := make([]byte, 8+len(body))
			binary.LittleEndian.PutUint32(payload[0:], 1)
			binary.LittleEndian.PutUint32(payload[4:], 512)
			copy(payload[8:], body)
			if err := writeFrame(io.Discard, frameRows, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameRows, make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized write accepted")
	}
	// A corrupt length prefix is rejected before allocation.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = frameRows
	if _, _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("corrupt length: %v", err)
	}
	// Truncated payload.
	var short bytes.Buffer
	binary.LittleEndian.PutUint32(hdr[:4], 100)
	short.Write(hdr[:])
	short.WriteString("only a little")
	if _, _, err := readFrame(&short, nil); err == nil {
		t.Error("short frame accepted")
	}
}
