package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// clientSession is one multiplexed client connection to a node server.
// Many queries share it concurrently: a writer mutex serializes frame
// writes, and a demux reader goroutine dispatches incoming frames to
// the per-query leg they are tagged with. Query IDs are monotonically
// assigned per session and never reused, so frames of an abandoned
// query are recognized and dropped.
type clientSession struct {
	conn net.Conn
	// ioTimeout, when positive, bounds the gap between frames while
	// queries are in flight (and every frame write).
	ioTimeout time.Duration

	wmu sync.Mutex    // serializes writes to conn
	bw  *bufio.Writer //dvlint:guardedby wmu

	mu      sync.Mutex
	legs    map[uint32]*clientLeg //dvlint:guardedby mu
	nextQID uint32                //dvlint:guardedby mu
	err     error                 //dvlint:guardedby mu
	closed  bool                  //dvlint:guardedby mu

	wg sync.WaitGroup
}

// legEvent is one frame delivered to a query leg, payload copied.
type legEvent struct {
	typ     byte
	payload []byte
}

// clientLeg is the client-side state of one query on a session: the
// demux reader appends events, the consuming goroutine pops them.
type clientLeg struct {
	sess   *clientSession
	qid    uint32
	window int64

	mu     sync.Mutex
	cond   *sync.Cond
	events []legEvent //dvlint:guardedby mu
	done   bool       //dvlint:guardedby mu (terminal event queued or leg failed)
	err    error      //dvlint:guardedby mu (session/cancel failure, checked after events drain)

	consumed int64 // bytes eaten since the last credit grant; consumer-goroutine-owned
}

// newClientSession wraps an established connection and starts its
// demux reader.
func newClientSession(conn net.Conn, ioTimeout time.Duration) *clientSession {
	s := &clientSession{
		conn:      conn,
		ioTimeout: ioTimeout,
		bw:        bufio.NewWriterSize(conn, 1<<16),
		legs:      map[uint32]*clientLeg{},
	}
	s.wg.Add(1)
	go s.readLoop()
	return s
}

// start registers a new leg and sends its query frame.
func (s *clientSession) start(req Request) (*clientLeg, error) {
	if req.WindowBytes <= 0 {
		req.WindowBytes = defaultWindowBytes
	}
	s.mu.Lock()
	if s.err != nil || s.closed {
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
	s.nextQID++
	l := &clientLeg{sess: s, qid: s.nextQID, window: req.WindowBytes}
	l.cond = sync.NewCond(&l.mu)
	s.legs[l.qid] = l
	s.mu.Unlock()

	if err := s.writeJSON(frameQuery, l.qid, req); err != nil {
		s.fail(err)
		return nil, err
	}
	if s.ioTimeout > 0 {
		// Arm the inter-frame watchdog in case the reader was parked
		// with no deadline on an idle session.
		s.conn.SetReadDeadline(time.Now().Add(s.ioTimeout)) //nolint:errcheck
	}
	return l, nil
}

func (s *clientSession) writeFrame(typ byte, qid uint32, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.ioTimeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.ioTimeout)) //nolint:errcheck
	}
	if err := writeFrame(s.bw, typ, qid, payload); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *clientSession) writeJSON(typ byte, qid uint32, v any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.ioTimeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.ioTimeout)) //nolint:errcheck
	}
	if err := writeJSONFrame(s.bw, typ, qid, v); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *clientSession) readLoop() {
	defer s.wg.Done()
	br := bufio.NewReaderSize(s.conn, 1<<16)
	var buf []byte
	for {
		if s.ioTimeout > 0 {
			s.mu.Lock()
			busy := len(s.legs) > 0
			s.mu.Unlock()
			if busy {
				s.conn.SetReadDeadline(time.Now().Add(s.ioTimeout)) //nolint:errcheck
			} else {
				s.conn.SetReadDeadline(time.Time{}) //nolint:errcheck
			}
		}
		typ, qid, payload, err := readFrame(br, buf)
		if err != nil {
			s.fail(err)
			return
		}
		buf = payload
		switch typ {
		case frameRows, frameAgg, frameDone, frameError, frameBusy:
			terminal := !isDataFrame(typ)
			s.mu.Lock()
			l := s.legs[qid]
			if l != nil && terminal {
				delete(s.legs, qid)
			}
			s.mu.Unlock()
			if l == nil {
				continue // residue of an abandoned query
			}
			l.deliver(legEvent{typ: typ, payload: append([]byte(nil), payload...)})
		default:
			s.fail(fmt.Errorf("cluster: unexpected server frame %q", typ))
			return
		}
	}
}

// fail marks the session dead, closes the connection and fails every
// in-flight leg. The first error wins; later calls are no-ops beyond
// re-closing the conn.
func (s *clientSession) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	legs := s.legs
	s.legs = map[uint32]*clientLeg{}
	s.closed = true
	s.mu.Unlock()
	s.conn.Close()
	for _, l := range legs {
		l.failLeg(err)
	}
}

// broken reports whether the session can no longer carry queries.
func (s *clientSession) broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.err != nil
}

// Close tears the session down; in-flight legs fail with net.ErrClosed.
func (s *clientSession) Close() error {
	s.fail(net.ErrClosed)
	s.wg.Wait()
	return nil
}

// abandon deregisters a leg (so its remaining frames are dropped by
// the demux reader), tells the node to cancel it, and unblocks its
// consumer with reason. Safe to call while another goroutine consumes
// the leg.
func (s *clientSession) abandon(l *clientLeg, reason error) {
	s.mu.Lock()
	_, live := s.legs[l.qid]
	delete(s.legs, l.qid)
	closed := s.closed
	s.mu.Unlock()
	if live && !closed {
		s.writeFrame(frameCancel, l.qid, nil) //nolint:errcheck — best effort to a node we may be giving up on
	}
	l.failLeg(reason)
}

// deliver hands a frame to the leg's consumer.
func (l *clientLeg) deliver(ev legEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	if !isDataFrame(ev.typ) {
		l.done = true
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// failLeg terminates the leg without an event: pending events remain
// consumable, then next returns err.
func (l *clientLeg) failLeg(err error) {
	l.mu.Lock()
	if !l.done {
		l.err = err
		l.done = true
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// next blocks for the leg's next event. After the last event of a
// failed leg it returns the failure; a terminal frame is returned as a
// normal event (io.EOF is only seen if the caller reads past it).
func (l *clientLeg) next() (legEvent, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.events) == 0 {
		if l.done {
			if l.err != nil {
				return legEvent{}, l.err
			}
			return legEvent{}, io.EOF
		}
		l.cond.Wait()
	}
	ev := l.events[0]
	l.events = l.events[1:]
	return ev, nil
}

// consumedRows replenishes the node's flow-control window after the
// consumer has processed n payload bytes: once half the window has
// been eaten a 'W' credit grant is sent.
func (l *clientLeg) consumedRows(n int) {
	l.consumed += int64(n)
	if l.consumed >= l.window/2 {
		credit := l.consumed
		l.consumed = 0
		l.sess.writeFrame(frameWindow, l.qid, windowPayload(uint32(credit))) //nolint:errcheck — a dead session fails the leg through the reader
	}
}

// nodePool maintains the persistent sessions to one node plus its
// health state. PoolSize<=0 means no pooling: each leg gets an
// ephemeral session closed when the leg ends (protocol v1's
// connection-per-query shape, kept as the benchmark baseline).
type nodePool struct {
	dial func(ctx context.Context) (net.Conn, error)
	size int
	io   time.Duration

	// inflight counts the legs currently dispatched to this node; the
	// coordinator's replica placement prefers the least-loaded live
	// replica of a partition.
	inflight atomic.Int64

	mu       sync.Mutex
	sessions []*clientSession //dvlint:guardedby mu
	next     int              //dvlint:guardedby mu

	fails   int       //dvlint:guardedby mu (consecutive failures)
	retryAt time.Time //dvlint:guardedby mu (health gate: fail fast until then)
	lastErr error     //dvlint:guardedby mu
}

// errUnhealthy wraps the gate error so callers can tell a fail-fast
// from a live failure.
type errUnhealthy struct{ err error }

func (e errUnhealthy) Error() string {
	return fmt.Sprintf("cluster: node marked unhealthy after repeated failures: %v", e.err)
}
func (e errUnhealthy) Unwrap() error { return e.err }

// session returns a live session and a release function. Pooled
// sessions are shared round-robin and released as a no-op; ephemeral
// sessions are closed by release.
func (p *nodePool) session(ctx context.Context) (*clientSession, func(), error) {
	p.mu.Lock()
	if p.fails > 0 && !p.retryAt.IsZero() && time.Now().Before(p.retryAt) {
		err := errUnhealthy{err: p.lastErr}
		p.mu.Unlock()
		return nil, nil, err
	}
	p.mu.Unlock()

	if p.size <= 0 {
		conn, err := p.dial(ctx)
		if err != nil {
			return nil, nil, err
		}
		s := newClientSession(conn, p.io)
		return s, func() { s.Close() }, nil
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	// Prune dead sessions; their conns are already closed, the
	// goroutine join happens off the lock.
	live := p.sessions[:0]
	for _, s := range p.sessions {
		if s.broken() {
			go s.Close()
		} else {
			live = append(live, s)
		}
	}
	p.sessions = live
	if len(p.sessions) >= p.size {
		s := p.sessions[p.next%len(p.sessions)]
		p.next++
		return s, func() {}, nil
	}
	// Grow the pool. Dialing happens off the lock, so a concurrent
	// burst may transiently overshoot size; every session stays
	// tracked and is closed with the pool.
	p.mu.Unlock()
	conn, err := p.dial(ctx)
	p.mu.Lock()
	if err != nil {
		return nil, nil, err
	}
	s := newClientSession(conn, p.io)
	p.sessions = append(p.sessions, s)
	return s, func() {}, nil
}

// legStarted/legDone bracket a leg dispatch for load accounting.
func (p *nodePool) legStarted() { p.inflight.Add(1) }
func (p *nodePool) legDone()    { p.inflight.Add(-1) }

// load snapshots the pool's placement signals: whether the node's
// health gate is currently armed (repeated failures, fail-fast window
// still open) and how many legs are in flight.
func (p *nodePool) load() (gated bool, inflight int64) {
	p.mu.Lock()
	gated = p.fails > 0 && !p.retryAt.IsZero() && time.Now().Before(p.retryAt)
	p.mu.Unlock()
	return gated, p.inflight.Load()
}

// reportResult updates node health: failure arms (or extends) the
// fail-fast gate with exponential backoff, success clears it.
func (p *nodePool) reportResult(err error, backoff time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err == nil {
		p.fails = 0
		p.retryAt = time.Time{}
		p.lastErr = nil
		return
	}
	p.fails++
	p.lastErr = err
	if p.fails >= 3 { // a couple of strikes before gating
		d := backoff << uint(p.fails-3)
		if d > 5*time.Second {
			d = 5 * time.Second
		}
		p.retryAt = time.Now().Add(d)
	}
}

// close shuts every pooled session down.
func (p *nodePool) close() {
	p.mu.Lock()
	sessions := p.sessions
	p.sessions = nil
	p.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}
