package cluster

import (
	"sync"
	"testing"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/table"
)

// TestConcurrentQueries hammers one cluster with parallel clients; each
// must see a complete, private result stream.
func TestConcurrentQueries(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	counts := make([]int64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rows, _, err := coord.CollectQuery("SELECT TIME, SOIL FROM IparsData WHERE REL = 0")
			errs[c] = err
			counts[c] = int64(len(rows))
		}(c)
	}
	wg.Wait()
	want := s.IparsTotalRows() / int64(s.Realizations)
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if counts[c] != want {
			t.Errorf("client %d: %d rows, want %d", c, counts[c], want)
		}
	}
}

// TestPreparedPlanCache confirms repeated remote queries reuse the
// node-side plan and that the cache stays bounded.
func TestPreparedPlanCache(t *testing.T) {
	spec := gen.IparsSpec{
		Realizations: 1, TimeSteps: 4, GridPoints: 8, Partitions: 1,
		Attrs: 2, Seed: 8,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	node, err := StartNode("node0", svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	coord, err := NewCoordinator(d, map[string]string{"node0": node.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := coord.CollectQuery("SELECT TIME FROM IparsData WHERE TIME = 2"); err != nil {
			t.Fatal(err)
		}
	}
	if got := node.PreparedCacheLen(); got != 1 {
		t.Errorf("cache holds %d plans after 5 identical queries, want 1", got)
	}
	// Distinct queries beyond the cap evict FIFO-style without error.
	for i := 0; i < prepCacheCap+10; i++ {
		sql := "SELECT TIME FROM IparsData WHERE TIME = " + string(rune('0'+i%4))
		if _, _, err := coord.CollectQuery(sql); err != nil {
			t.Fatal(err)
		}
	}
	if got := node.PreparedCacheLen(); got > prepCacheCap {
		t.Errorf("cache grew to %d, cap %d", got, prepCacheCap)
	}
}

// TestLargeStreamCrossesBatches uses a dataset big enough that every
// node sends many row batches; counts must be exact.
func TestLargeStreamCrossesBatches(t *testing.T) {
	spec := gen.IparsSpec{
		Realizations: 1, TimeSteps: 20, GridPoints: 600, Partitions: 2,
		Attrs: 2, Seed: 5,
	}
	coord, _ := startCluster(t, spec)
	// 12000 rows per query >> batchRows (512) per node.
	rows, res, err := coord.CollectQuery("SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != spec.IparsTotalRows() || res.Rows != spec.IparsTotalRows() {
		t.Errorf("rows = %d / trailer %d, want %d", len(rows), res.Rows, spec.IparsTotalRows())
	}
}

// TestNodeDiesMidStream kills one node server while a large query is
// streaming; the coordinator must report an error, not silently return
// a truncated result.
func TestNodeDiesMidStream(t *testing.T) {
	// Big enough that no node's response fits in TCP socket buffers, so
	// killing the servers mid-stream cannot race with completion.
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 40, GridPoints: 3000, Partitions: 3,
		Attrs: 17, Seed: 6,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[string]string{}
	var victims []*Node
	for i := 0; i < spec.Partitions; i++ {
		svc, err := core.Open(descPath, root)
		if err != nil {
			t.Fatal(err)
		}
		name := svc.Nodes()[i]
		node, err := StartNode(name, svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node.Logf = func(string, ...any) {}
		t.Cleanup(func() { node.Close() })
		addrs[name] = node.Addr()
		victims = append(victims, node)
	}
	coord, err := NewCoordinator(d, addrs)
	if err != nil {
		t.Fatal(err)
	}

	// Kill every node server once the first rows arrive.
	killed := false
	var mu sync.Mutex
	_, err = coord.Query("SELECT * FROM IparsData", func(r table.Row) error {
		mu.Lock()
		if !killed {
			killed = true
			for _, v := range victims {
				v.Close()
			}
		}
		mu.Unlock()
		return nil
	})
	if err == nil {
		t.Error("coordinator returned success despite dead nodes")
	}
}
