package cluster

import (
	"context"
	"sync"
	"testing"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
)

// TestConcurrentQueries hammers one cluster with parallel clients; each
// must see a complete, private result stream.
func TestConcurrentQueries(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	counts := make([]int64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rows, _, err := coord.CollectQueryContext(context.Background(), "SELECT TIME, SOIL FROM IparsData WHERE REL = 0")
			errs[c] = err
			counts[c] = int64(len(rows))
		}(c)
	}
	wg.Wait()
	want := s.IparsTotalRows() / int64(s.Realizations)
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if counts[c] != want {
			t.Errorf("client %d: %d rows, want %d", c, counts[c], want)
		}
	}
}

// TestPreparedPlanCache confirms remote queries share the node's
// semantic plan cache — two textually different but range-equal
// queries produce one plan construction and one hit — and that the
// cache stays bounded under distinct queries.
func TestPreparedPlanCache(t *testing.T) {
	spec := gen.IparsSpec{
		Realizations: 1, TimeSteps: 4, GridPoints: 8, Partitions: 1,
		Attrs: 2, Seed: 8,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	node, err := StartNode(context.Background(), "node0", svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	coord, err := NewCoordinator(d, map[string]string{"node0": node.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Two textually different queries with equal normalized ranges and
	// needed columns: the second must hit the plan built by the first.
	rowsA, resA, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData WHERE TIME >= 1 AND TIME <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if resA.QueryStats.PlanCacheHits != 0 || resA.QueryStats.PlanCacheMisses != 2 {
		t.Errorf("cold query plan cache = %d hits / %d misses, want 0/2 (coordinator + node)",
			resA.QueryStats.PlanCacheHits, resA.QueryStats.PlanCacheMisses)
	}
	rowsB, resB, err := coord.CollectQueryContext(context.Background(), "SELECT TIME FROM IparsData WHERE TIME BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	if resB.QueryStats.PlanCacheHits != 2 || resB.QueryStats.PlanCacheMisses != 0 {
		t.Errorf("range-equal query plan cache = %d hits / %d misses, want 2/0 (coordinator + node)",
			resB.QueryStats.PlanCacheHits, resB.QueryStats.PlanCacheMisses)
	}
	if len(rowsA) == 0 || len(rowsA) != len(rowsB) {
		t.Errorf("cached plan returned %d rows, fresh plan %d", len(rowsB), len(rowsA))
	}
	// Node-side proof of a single plan construction: one miss built the
	// entry, the range-equal repeat hit it.
	st := svc.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("node plan cache stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}

	// Distinct queries beyond a tiny cap evict instead of growing.
	svc.SetPlanCacheConfig(core.PlanCacheConfig{MaxEntries: 2, Shards: 1})
	for i := 0; i < 10; i++ {
		sql := "SELECT TIME FROM IparsData WHERE TIME = " + string(rune('0'+i%4))
		if _, _, err := coord.CollectQueryContext(context.Background(), sql); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.PlanCacheStats(); st.Entries > 2 {
		t.Errorf("plan cache grew to %d entries, cap 2", st.Entries)
	}
}

// TestLargeStreamCrossesBatches uses a dataset big enough that every
// node sends many row batches; counts must be exact.
func TestLargeStreamCrossesBatches(t *testing.T) {
	spec := gen.IparsSpec{
		Realizations: 1, TimeSteps: 20, GridPoints: 600, Partitions: 2,
		Attrs: 2, Seed: 5,
	}
	coord, _ := startCluster(t, spec)
	// 12000 rows per query >> batchRows (512) per node.
	rows, res, err := coord.CollectQueryContext(context.Background(), "SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != spec.IparsTotalRows() || res.Rows != spec.IparsTotalRows() {
		t.Errorf("rows = %d / trailer %d, want %d", len(rows), res.Rows, spec.IparsTotalRows())
	}
}

// TestNodeDiesMidStream kills one node server while a large query is
// streaming; the coordinator must report an error, not silently return
// a truncated result.
func TestNodeDiesMidStream(t *testing.T) {
	// Big enough that no node's response fits in TCP socket buffers, so
	// killing the servers mid-stream cannot race with completion.
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 40, GridPoints: 3000, Partitions: 3,
		Attrs: 17, Seed: 6,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[string]string{}
	var victims []*Node
	for i := 0; i < spec.Partitions; i++ {
		svc, err := core.Open(descPath, root)
		if err != nil {
			t.Fatal(err)
		}
		name := svc.Nodes()[i]
		node, err := StartNode(context.Background(), name, svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node.Logf = func(string, ...any) {}
		t.Cleanup(func() { node.Close() })
		addrs[name] = node.Addr()
		victims = append(victims, node)
	}
	coord, err := NewCoordinator(d, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Kill every node server once the first rows arrive.
	rows, err := coord.QueryContext(context.Background(), "SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	for rows.Next() {
		if !killed {
			killed = true
			for _, v := range victims {
				v.Close()
			}
		}
	}
	err = rows.Err()
	rows.Close()
	if err == nil {
		t.Error("coordinator returned success despite dead nodes")
	}
}
