package cluster

import (
	"context"
	"math"
	"testing"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

// localService opens a single-process service over the same generated
// dataset a cluster was started on, for local-vs-distributed oracles.
func localService(t *testing.T, s gen.IparsSpec) *core.Service {
	t.Helper()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestDistributedAggregateMatchesLocal is the push-down correctness
// contract: per-leg partials shipped as 'A' frames and merged at the
// coordinator must produce rows bit-identical to local execution —
// same group order, same float bit patterns, including empty results.
func TestDistributedAggregateMatchesLocal(t *testing.T) {
	s := defaultSpec()
	local := localService(t, s)
	coord, _ := startCluster(t, s)

	for _, sql := range []string{
		"SELECT REL, COUNT(*), SUM(TIME), AVG(SOIL) FROM IparsData GROUP BY REL",
		"SELECT TIME, MIN(SOIL), MAX(SGAS), AVG(SGAS) FROM IparsData WHERE SGAS > 0.3 GROUP BY TIME",
		"SELECT COUNT(*), SUM(SOIL) FROM IparsData",
		"SELECT REL, TIME, COUNT(*) FROM IparsData WHERE SOIL > 0.5 GROUP BY REL, TIME",
		"SELECT REL, COUNT(*) FROM IparsData WHERE TIME > 100 GROUP BY REL", // all chunks pruned
		"SELECT COUNT(*) FROM IparsData WHERE SOIL > 2",                     // zero matches, global
	} {
		p, err := local.Prepare(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		want, _, err := p.Collect(core.Options{})
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		got, res, err := coord.CollectQueryContext(context.Background(), sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: distributed %d rows, local %d", sql, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				a, b := want[i][j], got[i][j]
				if a.Kind != b.Kind || a.Int != b.Int ||
					math.Float64bits(a.Float) != math.Float64bits(b.Float) {
					t.Fatalf("%q: row %d col %d: distributed %+v, local %+v", sql, i, j, b, a)
				}
			}
		}
		// Aggregate legs transfer partials, not tuples.
		if res.Rows != 0 {
			t.Errorf("%q: trailer counted %d tuple rows for an aggregate", sql, res.Rows)
		}
		if len(want) > 0 && res.SentBytes == 0 {
			t.Errorf("%q: no payload bytes accounted", sql)
		}
		if res.QueryStats.AggPushedQueries == 0 {
			t.Errorf("%q: AggPushedQueries not merged into QueryStats", sql)
		}
	}
}

// TestDistributedAggregateBytesScaleWithGroups demonstrates the point
// of the push-down: coordinator-side result traffic scales with the
// group count, not the matching-row count.
func TestDistributedAggregateBytesScaleWithGroups(t *testing.T) {
	coord, s := startCluster(t, defaultSpec())
	_, rowsRes, err := coord.CollectQueryContext(context.Background(), "SELECT REL, TIME, SOIL FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	_, aggRes, err := coord.CollectQueryContext(context.Background(), "SELECT REL, COUNT(*), AVG(SOIL) FROM IparsData GROUP BY REL")
	if err != nil {
		t.Fatal(err)
	}
	if rowsRes.Rows != s.IparsTotalRows() || rowsRes.SentBytes == 0 {
		t.Fatalf("row query trailer: %+v", rowsRes)
	}
	if aggRes.SentBytes == 0 || aggRes.SentBytes*4 > rowsRes.SentBytes {
		t.Errorf("aggregate sent %d bytes vs %d for rows — push-down is not paying off",
			aggRes.SentBytes, rowsRes.SentBytes)
	}
}

func TestAggregateQueryCannotBePartitioned(t *testing.T) {
	coord, _ := startCluster(t, defaultSpec())
	sinks := []storm.Sink{&storm.SliceSink{}, &storm.SliceSink{}}
	spec := storm.PartitionSpec{Scheme: storm.HashAttr, NumDests: 2, Attr: "REL"}
	_, err := coord.QueryPartitionedContext(context.Background(),
		"SELECT REL, COUNT(*) FROM IparsData GROUP BY REL", spec, sinks)
	if err == nil {
		t.Fatal("partitioned aggregate accepted")
	}
}

// TestDistributedAggregateStreaming drives the streaming cursor over an
// aggregate result: finalized rows arrive in sorted group order.
func TestDistributedAggregateStreaming(t *testing.T) {
	coord, _ := startCluster(t, defaultSpec())
	var got []table.Row
	res, err := coord.QueryFuncContext(context.Background(),
		"SELECT TIME, COUNT(*) FROM IparsData GROUP BY TIME",
		func(row table.Row) error {
			r := make(table.Row, len(row))
			copy(r, row)
			got = append(got, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(got) == 0 {
		t.Fatal("no rows streamed")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][0].AsFloat() >= got[i][0].AsFloat() {
			t.Fatalf("groups not sorted: %v then %v", got[i-1][0], got[i][0])
		}
	}
}
