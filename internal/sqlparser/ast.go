// Package sqlparser parses the SQL subset of the paper's canonical query
// structure (Figure 1):
//
//	SELECT <Data Elements>
//	FROM   <Dataset Name>
//	WHERE  <Expression> AND Filter(<Data Element>)
//
// Supported WHERE syntax: comparisons (< <= > >= = != <>) between an
// attribute or user-defined filter call and a numeric literal, IN lists,
// BETWEEN, AND/OR/NOT and parentheses. Joins are deliberately rejected —
// the virtual table is always a single dataset.
//
// Beyond the paper's subsetting queries, the select list may carry
// aggregate functions (COUNT, SUM, MIN, MAX, AVG) over stored
// attributes, optionally grouped with GROUP BY; these are planned as
// push-down partial aggregates by internal/query and internal/core.
package sqlparser

import (
	"fmt"
	"strings"
)

// AggFunc identifies an aggregate function in the select list.
type AggFunc int

// Aggregate functions. AggNone marks a plain (grouping) column in an
// aggregate select list.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL spelling of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return ""
}

// aggFuncs maps the lower-case select-list spellings.
var aggFuncs = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "min": AggMin, "max": AggMax, "avg": AggAvg,
}

// SelectItem is one entry of an aggregate select list: either an
// aggregate over a stored attribute (or COUNT(*)), or — with Agg ==
// AggNone — a plain column that must also appear in GROUP BY.
type SelectItem struct {
	Agg  AggFunc
	Col  string // attribute name; empty for COUNT(*)
	Star bool   // true only for COUNT(*)
}

// String renders the item as it appeared in the select list; it is also
// the output column label.
func (it SelectItem) String() string {
	if it.Agg == AggNone {
		return it.Col
	}
	if it.Star {
		return it.Agg.String() + "(*)"
	}
	return it.Agg.String() + "(" + it.Col + ")"
}

// Query is a parsed SELECT statement.
type Query struct {
	// Star is true for SELECT *.
	Star bool
	// Columns holds the selected attribute names when Star is false and
	// the select list has no aggregates.
	Columns []string
	// Items holds the select list of an aggregate query (one with any
	// aggregate function or a GROUP BY clause); it is empty for plain
	// subsetting queries. Aggregate() distinguishes the two shapes.
	Items []SelectItem
	// GroupBy lists the grouping attributes of an aggregate query.
	GroupBy []string
	// From names the virtual table (the dataset name of Component II).
	From string
	// Where is the predicate tree, or nil when there is no WHERE clause.
	Where Expr
}

// Aggregate reports whether the query computes aggregates (and therefore
// uses Items/GroupBy instead of Star/Columns).
func (q *Query) Aggregate() bool { return len(q.Items) > 0 }

// String renders the query in SQL syntax; the output re-parses to an
// equivalent query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case q.Aggregate():
		for i, it := range q.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	case q.Star:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(q.Columns, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(q.From)
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.GroupBy, ", "))
	}
	return b.String()
}

// Expr is a node of the WHERE predicate tree.
type Expr interface {
	String() string
	expr()
}

// LogicOp is AND or OR.
type LogicOp int

// Logical operators.
const (
	OpAnd LogicOp = iota
	OpOr
)

// Logic is a binary AND/OR node.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

func (*Logic) expr() {}

func (l *Logic) String() string {
	op := "AND"
	if l.Op == OpOr {
		op = "OR"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// Not is logical negation.
type Not struct{ X Expr }

func (*Not) expr() {}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	}
	return "?"
}

// Flip mirrors the operator (for rewriting literal-on-the-left
// comparisons): a < b  ≡  b > a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	}
	return op
}

// Cmp compares an operand against another operand. The parser normalizes
// literal-op-column to column-op-literal, so Left is a Column or Call
// and Right is a Literal in all parser output.
type Cmp struct {
	Op    CmpOp
	Left  Operand
	Right Operand
}

func (*Cmp) expr() {}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// In is attribute IN (v1, v2, ...).
type In struct {
	Col    string
	Values []float64
}

func (*In) expr() {}

func (in *In) String() string {
	parts := make([]string, len(in.Values))
	for i, v := range in.Values {
		parts[i] = trimFloat(v)
	}
	return fmt.Sprintf("%s IN (%s)", in.Col, strings.Join(parts, ", "))
}

// Operand is a comparison operand: Column, Literal, or Call.
type Operand interface {
	String() string
	operand()
}

// Column references an attribute of the virtual table.
type Column struct{ Name string }

func (Column) operand() {}

func (c Column) String() string { return c.Name }

// Literal is a numeric constant.
type Literal struct{ Value float64 }

func (Literal) operand() {}

func (l Literal) String() string { return trimFloat(l.Value) }

// Call is a user-defined filter invocation, e.g. SPEED(OILVX, OILVY,
// OILVZ). Arguments are attribute references or literals.
type Call struct {
	Name string
	Args []Operand
}

func (Call) operand() {}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// Columns returns the distinct attribute names referenced anywhere in
// the expression, in first-appearance order.
func ExprColumns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkOp func(o Operand)
	walkOp = func(o Operand) {
		switch v := o.(type) {
		case Column:
			add(v.Name)
		case Call:
			for _, a := range v.Args {
				walkOp(a)
			}
		}
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Logic:
			walk(v.L)
			walk(v.R)
		case *Not:
			walk(v.X)
		case *Cmp:
			walkOp(v.Left)
			walkOp(v.Right)
		case *In:
			add(v.Col)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}
