package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

type tkind int

const (
	tEOF tkind = iota
	tIdent
	tNumber
	tPunct // ( ) , * ;
	tOp    // < <= > >= = != <>
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

func lexSQL(src string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == ';':
			out = append(out, tok{tPunct, string(c), i})
			i++
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{tOp, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				out = append(out, tok{tOp, "!=", i})
				i += 2
			} else {
				out = append(out, tok{tOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{tOp, ">=", i})
				i += 2
			} else {
				out = append(out, tok{tOp, ">", i})
				i++
			}
		case c == '=':
			out = append(out, tok{tOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{tOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: position %d: unexpected '!'", i)
			}
		case c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' || c == '+' {
				j++
			}
			digits := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
				j, digits = j+1, true
			}
			if j < len(src) && src[j] == '.' {
				j++
				for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
					j, digits = j+1, true
				}
			}
			if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < len(src) && (src[k] == '-' || src[k] == '+') {
					k++
				}
				expDigits := false
				for k < len(src) && (src[k] >= '0' && src[k] <= '9') {
					k, expDigits = k+1, true
				}
				if expDigits {
					j = k
				}
			}
			if !digits {
				return nil, fmt.Errorf("sql: position %d: malformed number", i)
			}
			out = append(out, tok{tNumber, src[i:j], i})
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(src) && (src[j] == '_' || (src[j] >= 'a' && src[j] <= 'z') ||
				(src[j] >= 'A' && src[j] <= 'Z') || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			out = append(out, tok{tIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sql: position %d: unexpected character %q", i, c)
		}
	}
	out = append(out, tok{tEOF, "", len(src)})
	return out, nil
}

type sqlParser struct {
	toks []tok
	pos  int
}

func (p *sqlParser) peek() tok { return p.toks[p.pos] }

func (p *sqlParser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: near position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *sqlParser) kw(kw string) bool {
	return p.peek().kind == tIdent && strings.EqualFold(p.peek().text, kw)
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.kw(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	p.next()
	return nil
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "in": true, "between": true,
}

func isReserved(s string) bool { return reservedWords[strings.ToLower(s)] }

// Parse parses one SELECT statement. A trailing semicolon is allowed.
func Parse(src string) (*Query, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	q := &Query{}

	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	var items []SelectItem
	hasAgg := false
	if p.peek().kind == tPunct && p.peek().text == "*" {
		p.next()
		q.Star = true
	} else {
		for {
			it, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if it.Agg != AggNone {
				hasAgg = true
			}
			if p.peek().kind == tPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	ft := p.next()
	if ft.kind != tIdent || isReserved(ft.text) {
		return nil, p.errf("expected table name, got %s", ft)
	}
	q.From = ft.text
	if p.kw("JOIN") || (p.peek().kind == tPunct && p.peek().text == ",") {
		return nil, p.errf("joins are not supported: the system only performs subsetting")
	}

	if p.kw("WHERE") {
		p.next()
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.kw("GROUP") {
		p.next()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tIdent || isReserved(t.text) {
				return nil, p.errf("expected grouping column name, got %s", t)
			}
			q.GroupBy = append(q.GroupBy, t.text)
			if p.peek().kind == tPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().kind == tPunct && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tEOF {
		return nil, p.errf("unexpected trailing input: %s", p.peek())
	}

	// Classify the select list: any aggregate function or GROUP BY makes
	// this an aggregate query carrying Items; otherwise plain items
	// collapse to the classic Columns form.
	switch {
	case q.Star && len(q.GroupBy) > 0:
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY; name the grouping columns")
	case hasAgg || len(q.GroupBy) > 0:
		q.Items = items
		for _, it := range items {
			if it.Agg == AggNone && !containsName(q.GroupBy, it.Col) {
				return nil, fmt.Errorf("sql: column %s in an aggregate select list must appear in GROUP BY", it.Col)
			}
		}
	default:
		for _, it := range items {
			q.Columns = append(q.Columns, it.Col)
		}
	}
	return q, nil
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// parseSelectItem parses one select-list entry: a column name, an
// aggregate call AGG(col), or COUNT(*).
func (p *sqlParser) parseSelectItem() (SelectItem, error) {
	t := p.next()
	if t.kind != tIdent || isReserved(t.text) {
		return SelectItem{}, p.errf("expected column name or aggregate, got %s", t)
	}
	if !(p.peek().kind == tPunct && p.peek().text == "(") {
		return SelectItem{Col: t.text}, nil
	}
	agg, ok := aggFuncs[strings.ToLower(t.text)]
	if !ok {
		return SelectItem{}, p.errf("unknown aggregate function %s (want COUNT, SUM, MIN, MAX or AVG)", t)
	}
	p.next() // consume '('
	it := SelectItem{Agg: agg}
	switch a := p.next(); {
	case a.kind == tPunct && a.text == "*":
		if agg != AggCount {
			return SelectItem{}, p.errf("%s(*) is not supported; only COUNT(*)", agg)
		}
		it.Star = true
	case a.kind == tIdent && !isReserved(a.text):
		it.Col = a.text
	default:
		return SelectItem{}, p.errf("expected attribute name inside %s(), got %s", agg, a)
	}
	if !(p.peek().kind == tPunct && p.peek().text == ")") {
		return SelectItem{}, p.errf("expected ) after %s argument", agg)
	}
	p.next()
	return it, nil
}

// MustParse is Parse but panics on error; for tests and fixed queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Logic{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Logic{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.kw("NOT") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses a parenthesized expression, a comparison, an IN
// list, or a BETWEEN (desugared to two comparisons).
func (p *sqlParser) parsePredicate() (Expr, error) {
	if p.peek().kind == tPunct && p.peek().text == "(" {
		// Could be a parenthesized boolean expression.
		save := p.pos
		p.next()
		e, err := p.parseOr()
		if err == nil && p.peek().kind == tPunct && p.peek().text == ")" {
			p.next()
			return e, nil
		}
		p.pos = save
		return nil, p.errf("malformed parenthesized expression")
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.kw("IN") {
		col, ok := left.(Column)
		if !ok {
			return nil, p.errf("IN requires an attribute on the left")
		}
		p.next()
		if p.peek().kind != tPunct || p.peek().text != "(" {
			return nil, p.errf("expected ( after IN")
		}
		p.next()
		var vals []float64
		for {
			t := p.next()
			if t.kind != tNumber {
				return nil, p.errf("expected number in IN list, got %s", t)
			}
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			vals = append(vals, v)
			if p.peek().kind == tPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tPunct || p.peek().text != ")" {
			return nil, p.errf("expected ) after IN list")
		}
		p.next()
		return &In{Col: col.Name, Values: vals}, nil
	}
	if p.kw("BETWEEN") {
		col, ok := left.(Column)
		if !ok {
			return nil, p.errf("BETWEEN requires an attribute on the left")
		}
		p.next()
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		loLit, ok1 := lo.(Literal)
		hiLit, ok2 := hi.(Literal)
		if !ok1 || !ok2 {
			return nil, p.errf("BETWEEN bounds must be numeric literals")
		}
		return &Logic{Op: OpAnd,
			L: &Cmp{Op: CmpGE, Left: col, Right: loLit},
			R: &Cmp{Op: CmpLE, Left: col, Right: hiLit},
		}, nil
	}
	if p.peek().kind != tOp {
		return nil, p.errf("expected comparison operator, got %s", p.peek())
	}
	opText := p.next().text
	var op CmpOp
	switch opText {
	case "<":
		op = CmpLT
	case "<=":
		op = CmpLE
	case ">":
		op = CmpGT
	case ">=":
		op = CmpGE
	case "=":
		op = CmpEQ
	case "!=":
		op = CmpNE
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// Normalize literal-op-nonliteral to nonliteral-flip(op)-literal.
	if _, leftIsLit := left.(Literal); leftIsLit {
		if _, rightIsLit := right.(Literal); !rightIsLit {
			left, right = right, left
			op = op.Flip()
		}
	}
	return &Cmp{Op: op, Left: left, Right: right}, nil
}

// parseOperand parses a column, a numeric literal, or a filter call.
func (p *sqlParser) parseOperand() (Operand, error) {
	t := p.peek()
	switch {
	case t.kind == tNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return Literal{Value: v}, nil
	case t.kind == tIdent && !isReserved(t.text):
		p.next()
		if p.peek().kind == tPunct && p.peek().text == "(" {
			p.next()
			call := Call{Name: t.text}
			for {
				a, err := p.parseOperand()
				if err != nil {
					return nil, err
				}
				if _, ok := a.(Call); ok {
					return nil, p.errf("nested filter calls are not supported")
				}
				call.Args = append(call.Args, a)
				if p.peek().kind == tPunct && p.peek().text == "," {
					p.next()
					continue
				}
				break
			}
			if p.peek().kind != tPunct || p.peek().text != ")" {
				return nil, p.errf("expected ) after filter arguments")
			}
			p.next()
			return call, nil
		}
		return Column{Name: t.text}, nil
	}
	return nil, p.errf("expected attribute, literal, or filter call, got %s", t)
}
