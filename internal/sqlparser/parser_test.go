package sqlparser

import (
	"strings"
	"testing"
)

func TestParsePaperQueries(t *testing.T) {
	// Every query from the paper's Figures 1, 7 and 8 must parse.
	queries := []string{
		`SELECT * FROM IparsData WHERE RID in (0,6,26,27) AND TIME >= 1000 AND TIME <= 1100 AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 30.0;`,
		`SELECT * FROM TITAN`,
		`SELECT * FROM TITAN WHERE X>=0 AND Y<=10000 AND Y>=0 AND Y<=10000 AND Z>=0 AND Z<=100`,
		`SELECT * FROM TITAN WHERE DISTANCE(X, Y, Z)<1000`,
		`SELECT * FROM TITAN WHERE S1 < 0.01`,
		`SELECT * FROM TITAN WHERE S1 < 0.5`,
		`SELECT * FROM IPARS`,
		`SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1100`,
		`SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1100 AND SOIL>0.7`,
		`SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1100 AND SPEED(OILVX,OILVY,OILVZ) < 30`,
		`SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1050`,
	}
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if !q.Star {
			t.Errorf("%q: expected SELECT *", src)
		}
	}
}

func TestParseStructure(t *testing.T) {
	q, err := Parse("SELECT SOIL, TIME FROM IparsData WHERE REL IN (0, 1) AND TIME BETWEEN 1 AND 100")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Star || len(q.Columns) != 2 || q.Columns[0] != "SOIL" || q.Columns[1] != "TIME" {
		t.Errorf("columns = %v (star=%v)", q.Columns, q.Star)
	}
	if q.From != "IparsData" {
		t.Errorf("from = %q", q.From)
	}
	and, ok := q.Where.(*Logic)
	if !ok || and.Op != OpAnd {
		t.Fatalf("where = %v", q.Where)
	}
	in, ok := and.L.(*In)
	if !ok || in.Col != "REL" || len(in.Values) != 2 {
		t.Errorf("left = %v", and.L)
	}
	// BETWEEN desugars to (TIME >= 1 AND TIME <= 100).
	rng, ok := and.R.(*Logic)
	if !ok || rng.Op != OpAnd {
		t.Fatalf("right = %v", and.R)
	}
	lo := rng.L.(*Cmp)
	hi := rng.R.(*Cmp)
	if lo.Op != CmpGE || hi.Op != CmpLE {
		t.Errorf("between ops = %v, %v", lo.Op, hi.Op)
	}
}

func TestLiteralOnLeftNormalized(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE 10 < TIME")
	c := q.Where.(*Cmp)
	if col, ok := c.Left.(Column); !ok || col.Name != "TIME" || c.Op != CmpGT {
		t.Errorf("normalized cmp = %v", q.Where)
	}
}

func TestOperatorSpellings(t *testing.T) {
	cases := map[string]CmpOp{
		"A < 1": CmpLT, "A <= 1": CmpLE, "A > 1": CmpGT,
		"A >= 1": CmpGE, "A = 1": CmpEQ, "A != 1": CmpNE, "A <> 1": CmpNE,
	}
	for src, want := range cases {
		q := MustParse("SELECT * FROM T WHERE " + src)
		if got := q.Where.(*Cmp).Op; got != want {
			t.Errorf("%q: op = %v, want %v", src, got, want)
		}
	}
}

func TestPrecedenceAndParens(t *testing.T) {
	// OR binds looser than AND.
	q := MustParse("SELECT * FROM T WHERE A < 1 AND B < 2 OR C < 3")
	or, ok := q.Where.(*Logic)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %v", q.Where)
	}
	if and, ok := or.L.(*Logic); !ok || and.Op != OpAnd {
		t.Errorf("left of OR = %v", or.L)
	}
	// Parens override.
	q2 := MustParse("SELECT * FROM T WHERE A < 1 AND (B < 2 OR C < 3)")
	and, ok := q2.Where.(*Logic)
	if !ok || and.Op != OpAnd {
		t.Fatalf("top = %v", q2.Where)
	}
	if or2, ok := and.R.(*Logic); !ok || or2.Op != OpOr {
		t.Errorf("right of AND = %v", and.R)
	}
	// NOT.
	q3 := MustParse("SELECT * FROM T WHERE NOT A < 1")
	if _, ok := q3.Where.(*Not); !ok {
		t.Errorf("NOT = %v", q3.Where)
	}
}

func TestNumbers(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE A < -1.5 AND B < 2e3 AND C < .25 AND D < 1.5e-2")
	want := []float64{-1.5, 2000, 0.25, 0.015}
	var got []float64
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Logic:
			walk(v.L)
			walk(v.R)
		case *Cmp:
			got = append(got, v.Right.(Literal).Value)
		}
	}
	walk(q.Where)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("number %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRejected(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT FROM T",
		"UPDATE T SET A = 1",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T WHERE A",
		"SELECT * FROM T WHERE A <",
		"SELECT * FROM T WHERE A < 1 trailing",
		"SELECT * FROM T WHERE A IN ()",
		"SELECT * FROM T WHERE A IN (1",
		"SELECT * FROM T WHERE SPEED(A IN (1,2)",
		"SELECT * FROM T WHERE F(G(A)) < 1",
		"SELECT * FROM T WHERE A BETWEEN B AND C",
		"SELECT * FROM T, U WHERE A < 1",
		"SELECT * FROM T GROUP BY A",
		"SELECT SUM(*) FROM T",
		"SELECT MEDIAN(A) FROM T",
		"SELECT COUNT(A, B) FROM T",
		"SELECT COUNT(A FROM T",
		"SELECT COUNT() FROM T",
		"SELECT A, COUNT(B) FROM T",
		"SELECT SUM(A) FROM T GROUP BY",
		"SELECT SUM(A), B FROM T GROUP BY C",
		"SELECT * FROM T WHERE 1 IN (1,2)",
		"SELECT * FROM T WHERE (A < 1",
		"SELECT * FROM T WHERE A ! 1",
		"SELECT a#b FROM T",
	}
	for _, src := range bad {
		if q, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted: %v", src, q)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM T WHERE RID IN (0, 6, 26, 27) AND TIME >= 1000",
		"SELECT SOIL, SGAS FROM IparsData",
		"SELECT * FROM T WHERE (A < 1 OR B > 2) AND NOT C = 3",
		"SELECT * FROM T WHERE SPEED(VX, VY, VZ) <= 30 AND S1 < 0.01",
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip: %q -> %q", q1.String(), q2.String())
		}
	}
}

func TestExprColumns(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE A < 1 AND SPEED(B, C) < 2 AND A IN (1,2) AND NOT D = 0")
	got := ExprColumns(q.Where)
	want := []string{"A", "B", "C", "D"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ExprColumns = %v, want %v", got, want)
	}
	if cols := ExprColumns(nil); cols != nil {
		t.Errorf("ExprColumns(nil) = %v", cols)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("SELECT REL, COUNT(*), avg(SOIL) FROM IparsData WHERE TIME > 10 GROUP BY REL")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Aggregate() {
		t.Fatal("Aggregate() = false")
	}
	want := []SelectItem{
		{Col: "REL"},
		{Agg: AggCount, Star: true},
		{Agg: AggAvg, Col: "SOIL"},
	}
	if len(q.Items) != len(want) {
		t.Fatalf("items = %v", q.Items)
	}
	for i := range want {
		if q.Items[i] != want[i] {
			t.Errorf("item %d = %v, want %v", i, q.Items[i], want[i])
		}
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "REL" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.Where == nil {
		t.Error("where lost")
	}
	if len(q.Columns) != 0 || q.Star {
		t.Errorf("plain fields set: columns=%v star=%v", q.Columns, q.Star)
	}

	// Global aggregates need no GROUP BY.
	g := MustParse("SELECT COUNT(*), SUM(SOIL), MIN(TIME), MAX(TIME) FROM T")
	if !g.Aggregate() || len(g.Items) != 4 || len(g.GroupBy) != 0 {
		t.Errorf("global aggregate = %+v", g)
	}

	// A GROUP BY alone (no aggregate function) is still an aggregate
	// query: plain items become grouping items.
	d := MustParse("SELECT REL FROM T GROUP BY REL")
	if !d.Aggregate() || len(d.Items) != 1 || d.Items[0].Agg != AggNone {
		t.Errorf("distinct-style query = %+v", d)
	}
}

func TestAggregateStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM T",
		"SELECT REL, COUNT(*), AVG(SOIL) FROM T WHERE TIME > 10 GROUP BY REL",
		"SELECT TIME, REL, SUM(SGAS) FROM T GROUP BY TIME, REL",
		"SELECT MIN(A), MAX(A) FROM T WHERE B IN (1, 2)",
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if q1.String() != src {
			t.Errorf("String() = %q, want %q", q1.String(), src)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip: %q -> %q", q1.String(), q2.String())
		}
	}
}

func TestSemicolonAndCase(t *testing.T) {
	q, err := Parse("select * from T where a < 1;")
	if err != nil {
		t.Fatalf("lower-case parse: %v", err)
	}
	if q.From != "T" {
		t.Errorf("from = %q", q.From)
	}
}
