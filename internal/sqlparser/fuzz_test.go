package sqlparser

import "testing"

// FuzzParse guards the SQL parser against panics and checks that every
// accepted query prints to a fixpoint.
func FuzzParse(f *testing.F) {
	f.Add("SELECT * FROM T")
	f.Add("SELECT a, b FROM T WHERE a < 1 AND b IN (1,2,3) OR NOT c >= 2.5e-3")
	f.Add("SELECT * FROM IparsData WHERE RID in (0,6,26,27) AND TIME >= 1000 AND SPEED(OILVX, OILVY, OILVZ) <= 30.0;")
	f.Add("SELECT * FROM T WHERE x BETWEEN 1 AND 2")
	f.Add("select")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed query does not re-parse: %v\n%s", err, printed)
		}
		if q2.String() != printed {
			t.Fatalf("print is not a fixpoint:\n%s\nvs\n%s", printed, q2.String())
		}
	})
}
