// Package handwritten contains hand-coded, layout-specific index and
// extractor functions — the baselines the paper compares its generated
// code against ("whose performance was reported in earlier publications
// on STORM", §5). Each implementation hard-codes one physical layout:
// file naming, offsets, strides and chunk structure are written out
// by hand exactly as an application programmer would, with no use of
// the meta-data descriptor, the layout compiler, or the AFC machinery.
//
// SQL parsing, range extraction and predicate evaluation are shared
// with the generated path (in STORM those live in the middleware, not
// in the user-supplied functions), so measured differences isolate the
// index/extractor code itself.
package handwritten

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// IparsCluster hand-codes the paper's Figure 4 layout: per partition
// directory, a COORDS file of x/y/z triples and one DATA<rel> file
// holding, per time step, all variables for the partition's grid
// points.
type IparsCluster struct {
	Root string
	Spec gen.IparsSpec
	// Dirs restricts extraction to the given partition directories
	// (nil = all). Cluster deployments give each node server its own
	// partitions, mirroring the generated path's node filter.
	Dirs []int
}

// Schema returns the virtual table schema the extractor produces.
func (h *IparsCluster) Schema() *schema.Schema {
	attrs := []schema.Attribute{
		{Name: "REL", Kind: schema.Short}, {Name: "TIME", Kind: schema.Int},
		{Name: "X", Kind: schema.Float}, {Name: "Y", Kind: schema.Float},
		{Name: "Z", Kind: schema.Float},
	}
	for _, n := range gen.IparsAttrNames(h.Spec.Attrs) {
		attrs = append(attrs, schema.Attribute{Name: n, Kind: schema.Float})
	}
	return schema.MustNew("IPARS", attrs)
}

// Query executes sql with the hand-written index and extractor and
// returns the number of emitted rows. The emitted row is reused.
func (h *IparsCluster) Query(sql string, emit func(table.Row) error) (int64, error) {
	s := h.Spec
	sch := h.Schema()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	reg := filter.NewRegistry()
	cols, err := query.Validate(q, sch, reg)
	if err != nil {
		return 0, err
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i := sch.Index(name)
		return i, i >= 0
	}, reg)
	if err != nil {
		return 0, err
	}
	ranges := query.ExtractRanges(q.Where)
	project := make([]int, len(cols))
	for i, c := range cols {
		project[i] = sch.Index(c)
	}

	// Hand-written index function: REL from the file name, TIME from
	// position within each DATA file.
	relSet := ranges.Get("REL")
	timeRuns := ranges.Get("TIME").ClipInt(1, int64(s.TimeSteps), 1)
	if len(timeRuns) == 0 {
		return 0, nil
	}

	A := s.Attrs
	gp := s.GridPoints / s.Partitions
	stepBytes := gp * A * 4

	row := make(table.Row, sch.NumAttrs())
	out := make(table.Row, len(cols))
	var emitted int64

	coords := make([]byte, gp*12)
	buf := make([]byte, stepBytes)

	dirs := h.Dirs
	if dirs == nil {
		dirs = make([]int, s.Partitions)
		for i := range dirs {
			dirs[i] = i
		}
	}
	for _, dir := range dirs {
		dpath := filepath.Join(h.Root, fmt.Sprintf("node%d", dir), "ipars")
		cf, err := os.Open(filepath.Join(dpath, "COORDS"))
		if err != nil {
			return emitted, err
		}
		if _, err := cf.ReadAt(coords, 0); err != nil {
			cf.Close()
			return emitted, fmt.Errorf("handwritten: COORDS: %w", err)
		}
		cf.Close()
		for rel := 0; rel < s.Realizations; rel++ {
			if !relSet.Contains(float64(rel)) {
				continue // index: skip the whole realization file
			}
			df, err := os.Open(filepath.Join(dpath, fmt.Sprintf("DATA%d", rel)))
			if err != nil {
				return emitted, err
			}
			for _, run := range timeRuns {
				for tm := run.Lo; tm <= run.Hi; tm += run.Step {
					off := (tm - 1) * int64(stepBytes)
					if _, err := df.ReadAt(buf, off); err != nil {
						df.Close()
						return emitted, fmt.Errorf("handwritten: DATA%d: %w", rel, err)
					}
					for g := 0; g < gp; g++ {
						row[0] = schema.Value{Kind: schema.Short, Int: int64(rel)}
						row[1] = schema.IntValue(tm)
						c := g * 12
						row[2] = schema.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[c:]))))
						row[3] = schema.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[c+4:]))))
						row[4] = schema.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[c+8:]))))
						b := g * A * 4
						for a := 0; a < A; a++ {
							row[5+a] = schema.FloatValue(float64(math.Float32frombits(
								binary.LittleEndian.Uint32(buf[b+a*4:]))))
						}
						if !pred(row) {
							continue
						}
						for i, p := range project {
							out[i] = row[p]
						}
						if err := emit(out); err != nil {
							df.Close()
							return emitted, err
						}
						emitted++
					}
				}
			}
			df.Close()
		}
	}
	return emitted, nil
}

// IparsL0 hand-codes the original application layout L0: one COORDS
// file plus one file per variable per realization (<ATTR>.R<rel>), each
// ordered by time step then grid point. Answering a query opens
// 3-coordinates + Attrs files together, exactly the "18 different
// files ... for one set of aligned file chunks" the paper describes.
type IparsL0 struct {
	Root string
	Spec gen.IparsSpec
}

// Schema returns the virtual table schema.
func (h *IparsL0) Schema() *schema.Schema {
	return (&IparsCluster{Spec: h.Spec}).Schema()
}

// Query executes sql against the L0 layout.
func (h *IparsL0) Query(sql string, emit func(table.Row) error) (int64, error) {
	s := h.Spec
	sch := h.Schema()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	reg := filter.NewRegistry()
	cols, err := query.Validate(q, sch, reg)
	if err != nil {
		return 0, err
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i := sch.Index(name)
		return i, i >= 0
	}, reg)
	if err != nil {
		return 0, err
	}
	ranges := query.ExtractRanges(q.Where)
	project := make([]int, len(cols))
	for i, c := range cols {
		project[i] = sch.Index(c)
	}

	relSet := ranges.Get("REL")
	timeRuns := ranges.Get("TIME").ClipInt(1, int64(s.TimeSteps), 1)
	if len(timeRuns) == 0 {
		return 0, nil
	}

	G := s.GridPoints
	A := s.Attrs
	names := gen.IparsAttrNames(A)
	dpath := filepath.Join(h.Root, "node0", "ipars")

	coords := make([]byte, G*12)
	cf, err := os.Open(filepath.Join(dpath, "COORDS"))
	if err != nil {
		return 0, err
	}
	if _, err := cf.ReadAt(coords, 0); err != nil {
		cf.Close()
		return 0, fmt.Errorf("handwritten: COORDS: %w", err)
	}
	cf.Close()

	row := make(table.Row, sch.NumAttrs())
	out := make(table.Row, len(cols))
	var emitted int64
	stepBytes := int64(G * 4)
	bufs := make([][]byte, A)
	for a := range bufs {
		bufs[a] = make([]byte, stepBytes)
	}

	for rel := 0; rel < s.Realizations; rel++ {
		if !relSet.Contains(float64(rel)) {
			continue
		}
		// Open all attribute files of this realization together.
		files := make([]*os.File, A)
		for a, n := range names {
			f, err := os.Open(filepath.Join(dpath, fmt.Sprintf("%s.R%d", n, rel)))
			if err != nil {
				for _, g := range files[:a] {
					g.Close()
				}
				return emitted, err
			}
			files[a] = f
		}
		closeAll := func() {
			for _, f := range files {
				f.Close()
			}
		}
		for _, run := range timeRuns {
			for tm := run.Lo; tm <= run.Hi; tm += run.Step {
				off := (tm - 1) * stepBytes
				for a := range files {
					if _, err := files[a].ReadAt(bufs[a], off); err != nil {
						closeAll()
						return emitted, fmt.Errorf("handwritten: %s.R%d: %w", names[a], rel, err)
					}
				}
				for g := 0; g < G; g++ {
					row[0] = schema.Value{Kind: schema.Short, Int: int64(rel)}
					row[1] = schema.IntValue(tm)
					c := g * 12
					row[2] = schema.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[c:]))))
					row[3] = schema.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[c+4:]))))
					row[4] = schema.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[c+8:]))))
					for a := 0; a < A; a++ {
						row[5+a] = schema.FloatValue(float64(math.Float32frombits(
							binary.LittleEndian.Uint32(bufs[a][g*4:]))))
					}
					if !pred(row) {
						continue
					}
					for i, p := range project {
						out[i] = row[p]
					}
					if err := emit(out); err != nil {
						closeAll()
						return emitted, err
					}
					emitted++
				}
			}
		}
		closeAll()
	}
	return emitted, nil
}
