package handwritten

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/index"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// Titan hand-codes the chunked satellite layout: chunks.dat holds
// 32-byte records (three int32 coordinates, five float32 sensors)
// grouped into space-time chunks; chunks.idx is the R-tree directory
// over chunk bounds. The index function probes the R-tree; the
// extractor decodes records directly.
type Titan struct {
	Root string
	Spec gen.TitanSpec

	idx  []*index.ChunkIndex // per node, lazily loaded
	data []*os.File
}

// Schema returns the TITAN schema.
func (h *Titan) Schema() *schema.Schema { return gen.TitanSchema() }

// open loads the per-node index files and data handles.
func (h *Titan) open() error {
	if h.idx != nil {
		return nil
	}
	for n := 0; n < h.Spec.Nodes; n++ {
		dir := filepath.Join(h.Root, fmt.Sprintf("node%d", n), "titan")
		ix, err := index.ReadFile(filepath.Join(dir, "chunks.idx"))
		if err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(dir, "chunks.dat"))
		if err != nil {
			return err
		}
		h.idx = append(h.idx, ix)
		h.data = append(h.data, f)
	}
	return nil
}

// Close releases data file handles.
func (h *Titan) Close() error {
	var first error
	for _, f := range h.data {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	h.data, h.idx = nil, nil
	return first
}

// Query executes sql with the hand-written chunk reader.
func (h *Titan) Query(sql string, emit func(table.Row) error) (int64, error) {
	if err := h.open(); err != nil {
		return 0, err
	}
	sch := h.Schema()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	reg := filter.NewRegistry()
	cols, err := query.Validate(q, sch, reg)
	if err != nil {
		return 0, err
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i := sch.Index(name)
		return i, i >= 0
	}, reg)
	if err != nil {
		return 0, err
	}
	ranges := query.ExtractRanges(q.Where)
	project := make([]int, len(cols))
	for i, c := range cols {
		project[i] = sch.Index(c)
	}

	row := make(table.Row, 8)
	out := make(table.Row, len(cols))
	var emitted int64
	var buf []byte
	for n := range h.idx {
		for _, chunk := range h.idx[n].Search(ranges) {
			span := chunk.NumRows * gen.TitanRecordBytes
			if int64(cap(buf)) < span {
				buf = make([]byte, span)
			}
			b := buf[:span]
			if _, err := h.data[n].ReadAt(b, chunk.Offset); err != nil {
				return emitted, fmt.Errorf("handwritten: chunks.dat: %w", err)
			}
			for r := int64(0); r < chunk.NumRows; r++ {
				rec := b[r*gen.TitanRecordBytes:]
				row[0] = schema.IntValue(int64(int32(binary.LittleEndian.Uint32(rec[0:]))))
				row[1] = schema.IntValue(int64(int32(binary.LittleEndian.Uint32(rec[4:]))))
				row[2] = schema.IntValue(int64(int32(binary.LittleEndian.Uint32(rec[8:]))))
				for k := 0; k < 5; k++ {
					row[3+k] = schema.FloatValue(float64(math.Float32frombits(
						binary.LittleEndian.Uint32(rec[12+4*k:]))))
				}
				if !pred(row) {
					continue
				}
				for i, p := range project {
					out[i] = row[p]
				}
				if err := emit(out); err != nil {
					return emitted, err
				}
				emitted++
			}
		}
	}
	return emitted, nil
}
