package handwritten

import (
	"context"
	"sort"
	"testing"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

// collect gathers rows from a hand-written Query into sorted strings.
func collect(t *testing.T, run func(emit func(table.Row) error) (int64, error)) []string {
	t.Helper()
	var out []string
	n, err := run(func(r table.Row) error {
		out = append(out, table.FormatRow(r))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(out) {
		t.Fatalf("reported %d rows, emitted %d", n, len(out))
	}
	sort.Strings(out)
	return out
}

// generatedRows runs the same SQL through the compiled engine.
func generatedRows(t *testing.T, descPath, root, sql string) []string {
	t.Helper()
	svc, err := core.Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := svc.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for cur.Next() {
		out = append(out, table.FormatRow(cur.Row()))
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func assertEqual(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d:\nhand: %s\ngen:  %s", label, i, got[i], want[i])
		}
	}
}

// TestHandwrittenMatchesGenerated is the correctness side of the
// paper's hand-written vs compiler-generated comparison: both codes
// must produce identical virtual tables on every query class of
// Figure 8.
func TestIparsClusterMatchesGenerated(t *testing.T) {
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 6, GridPoints: 16, Partitions: 2,
		Attrs: 17, Seed: 77,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	h := &IparsCluster{Root: root, Spec: spec}
	for _, sql := range []string{
		"SELECT * FROM IparsData",
		"SELECT * FROM IparsData WHERE TIME > 2 AND TIME < 5",
		"SELECT * FROM IparsData WHERE TIME > 2 AND TIME < 5 AND SOIL > 0.7",
		"SELECT * FROM IparsData WHERE TIME <= 3 AND SPEED(OILVX, OILVY, OILVZ) < 20",
		"SELECT SOIL, SGAS FROM IparsData WHERE REL = 1",
		"SELECT * FROM IparsData WHERE TIME > 50",
	} {
		hand := collect(t, func(emit func(table.Row) error) (int64, error) {
			return h.Query(sql, emit)
		})
		want := generatedRows(t, descPath, root, sql)
		assertEqual(t, sql, hand, want)
	}
}

func TestIparsL0MatchesGenerated(t *testing.T) {
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 4, GridPoints: 12, Partitions: 1,
		Attrs: 17, Seed: 78,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, spec, "L0")
	if err != nil {
		t.Fatal(err)
	}
	h := &IparsL0{Root: root, Spec: spec}
	for _, sql := range []string{
		"SELECT * FROM IparsData",
		"SELECT * FROM IparsData WHERE TIME = 2 AND SGAS > 0.4",
		"SELECT POIL FROM IparsData WHERE REL = 0 AND TIME >= 3",
	} {
		hand := collect(t, func(emit func(table.Row) error) (int64, error) {
			return h.Query(sql, emit)
		})
		want := generatedRows(t, descPath, root, sql)
		assertEqual(t, sql, hand, want)
	}
}

func TestTitanMatchesGenerated(t *testing.T) {
	spec := gen.TitanSpec{
		Points: 5000, XMax: 1000, YMax: 1000, ZMax: 100,
		TilesX: 4, TilesY: 4, TilesZ: 2, Nodes: 1, Seed: 79,
	}
	root := t.TempDir()
	descPath, err := gen.WriteTitan(root, spec)
	if err != nil {
		t.Fatal(err)
	}
	h := &Titan{Root: root, Spec: spec}
	defer h.Close()
	for _, sql := range []string{
		"SELECT * FROM TitanData",
		"SELECT * FROM TitanData WHERE X >= 0 AND X <= 300 AND Y >= 0 AND Y <= 300 AND Z >= 0 AND Z <= 30",
		"SELECT * FROM TitanData WHERE DISTANCE(X, Y, Z) < 400",
		"SELECT * FROM TitanData WHERE S1 < 0.01",
		"SELECT S1, S2 FROM TitanData WHERE S1 < 0.5",
	} {
		hand := collect(t, func(emit func(table.Row) error) (int64, error) {
			return h.Query(sql, emit)
		})
		want := generatedRows(t, descPath, root, sql)
		assertEqual(t, sql, hand, want)
	}
}

func TestHandwrittenErrors(t *testing.T) {
	spec := gen.IparsSpec{Realizations: 1, TimeSteps: 2, GridPoints: 4, Partitions: 1, Attrs: 2, Seed: 1}
	h := &IparsCluster{Root: t.TempDir(), Spec: spec} // no data generated
	if _, err := h.Query("SELECT * FROM IparsData", func(table.Row) error { return nil }); err == nil {
		t.Error("missing files accepted")
	}
	if _, err := h.Query("bad sql", func(table.Row) error { return nil }); err == nil {
		t.Error("bad sql accepted")
	}
	ht := &Titan{Root: t.TempDir(), Spec: gen.TitanSpec{Points: 1, XMax: 1, YMax: 1, ZMax: 1, TilesX: 1, TilesY: 1, TilesZ: 1, Nodes: 1}}
	if _, err := ht.Query("SELECT * FROM TitanData", func(table.Row) error { return nil }); err == nil {
		t.Error("missing titan files accepted")
	}
}
