package afc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"datavirt/internal/layout"
	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

// Plan is the product of the tool's compile phase: every file of every
// leaf dataset enumerated and its layout instantiated, once, when the
// descriptor is loaded. Query-time work (Generate) only intersects the
// query's ranges with these precomputed structures — "the expensive
// processing associated with the meta-data does not need to be carried
// out at runtime" (paper §4).
type Plan struct {
	Desc   *metadata.Descriptor
	Schema *schema.Schema

	// DataLeaves holds DATASPACE leaves; ChunkedLeaves holds CHUNKED
	// leaves. A descriptor uses one style or the other.
	DataLeaves    []*LeafFiles
	ChunkedLeaves []*ChunkedLeaf

	groupsOnce sync.Once
	groups     []Group
	groupsErr  error
}

// LeafFiles is one compiled DATASPACE leaf with its file instances.
type LeafFiles struct {
	Leaf  *layout.Leaf
	Files []FileState
}

// FileState pairs a concrete file with its instantiated layout.
type FileState struct {
	Inst   metadata.FileInstance
	Layout *layout.FileLayout
	// Big marks files whose dataset declares BYTEORDER { BIG }.
	Big bool
}

// ChunkedLeaf is one compiled CHUNKED leaf.
type ChunkedLeaf struct {
	Node *metadata.DatasetNode
	// Attrs is the per-record attribute order with resolved kinds.
	Attrs []schema.Attribute
	// RecordBytes is the fixed record size.
	RecordBytes int64
	// IndexAttrs names the DATAINDEX attributes of the paired index
	// files, in index order.
	IndexAttrs []string
	// Files pairs each data file with its index file.
	Files []ChunkedFile
	// Big marks datasets declared with BYTEORDER { BIG }.
	Big bool
}

// ChunkedFile is a data file and its paired index file.
type ChunkedFile struct {
	Data  metadata.FileInstance
	Index metadata.FileInstance
}

// Compile builds a Plan from a validated descriptor.
func Compile(d *metadata.Descriptor) (*Plan, error) {
	sch := d.TableSchema()
	if sch == nil {
		return nil, fmt.Errorf("afc: descriptor has no resolvable table schema")
	}
	p := &Plan{Desc: d, Schema: sch}
	for _, node := range d.Layout.Leaves(nil) {
		esch, extras, err := d.EffectiveSchema(node)
		if err != nil {
			return nil, err
		}
		kinds := make(map[string]schema.Kind, esch.NumAttrs()+len(extras))
		for _, a := range esch.Attrs() {
			kinds[a.Name] = a.Kind
		}
		for _, a := range extras {
			kinds[a.Name] = a.Kind
		}
		files, err := metadata.ExpandLeaf(d.Storage, node)
		if err != nil {
			return nil, err
		}
		big := d.EffectiveByteOrder(node) == "BIG"
		if len(node.Chunked) > 0 {
			cl, err := compileChunked(d, node, kinds, files)
			if err != nil {
				return nil, err
			}
			cl.Big = big
			p.ChunkedLeaves = append(p.ChunkedLeaves, cl)
			continue
		}
		leaf, err := layout.CompileLeaf(node, kinds)
		if err != nil {
			return nil, err
		}
		lf := &LeafFiles{Leaf: leaf}
		for _, fi := range files {
			fl, err := leaf.Instantiate(fi.Env)
			if err != nil {
				return nil, fmt.Errorf("afc: file %s: %w", fi, err)
			}
			// Loop variables must not collide with binding variables: the
			// value would be ambiguous (implicit constant vs row axis).
			for _, dim := range fl.Dims {
				if _, clash := fi.Env[dim.Var]; clash {
					return nil, fmt.Errorf("afc: file %s: loop variable %s collides with a file binding", fi, dim.Var)
				}
			}
			lf.Files = append(lf.Files, FileState{Inst: fi, Layout: fl, Big: big})
		}
		p.DataLeaves = append(p.DataLeaves, lf)
	}
	if len(p.DataLeaves) > 0 && len(p.ChunkedLeaves) > 0 {
		return nil, fmt.Errorf("afc: descriptor mixes DATASPACE and CHUNKED leaves; use one style per dataset")
	}
	if len(p.DataLeaves) == 0 && len(p.ChunkedLeaves) == 0 {
		return nil, fmt.Errorf("afc: descriptor has no leaf datasets")
	}
	return p, nil
}

func compileChunked(d *metadata.Descriptor, node *metadata.DatasetNode, kinds map[string]schema.Kind, files []metadata.FileInstance) (*ChunkedLeaf, error) {
	cl := &ChunkedLeaf{Node: node, IndexAttrs: d.EffectiveIndexAttrs(node)}
	if len(cl.IndexAttrs) == 0 {
		return nil, fmt.Errorf("afc: chunked dataset %q has no DATAINDEX", node.Name)
	}
	for _, name := range node.Chunked {
		k, ok := kinds[name]
		if !ok {
			return nil, fmt.Errorf("afc: chunked dataset %q: unknown attribute %q", node.Name, name)
		}
		cl.Attrs = append(cl.Attrs, schema.Attribute{Name: name, Kind: k})
		cl.RecordBytes += int64(k.Size())
	}
	for _, a := range cl.IndexAttrs {
		found := false
		for _, rec := range cl.Attrs {
			if rec.Name == a {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("afc: chunked dataset %q: DATAINDEX attribute %q is not in the record", node.Name, a)
		}
	}
	pairs, err := metadata.ExpandIndexFiles(d.Storage, node, files)
	if err != nil {
		return nil, err
	}
	for i, fi := range files {
		cl.Files = append(cl.Files, ChunkedFile{Data: fi, Index: pairs[i]})
	}
	return cl, nil
}

// AvailableAttrs returns every schema attribute obtainable from the
// plan: payload attributes plus implicit ones (file bindings and loop
// variables that name schema attributes).
func (p *Plan) AvailableAttrs() []string {
	avail := map[string]bool{}
	for _, lf := range p.DataLeaves {
		for _, a := range lf.Leaf.PayloadAttrs() {
			if p.Schema.Has(a) {
				avail[a] = true
			}
		}
		for _, fs := range lf.Files {
			for v := range fs.Inst.Env {
				if p.Schema.Has(v) {
					avail[v] = true
				}
			}
			for _, d := range fs.Layout.Dims {
				if p.Schema.Has(d.Var) {
					avail[d.Var] = true
				}
			}
		}
	}
	for _, cl := range p.ChunkedLeaves {
		for _, a := range cl.Attrs {
			if p.Schema.Has(a.Name) {
				avail[a.Name] = true
			}
		}
		for _, cf := range cl.Files {
			for v := range cf.Data.Env {
				if p.Schema.Has(v) {
					avail[v] = true
				}
			}
		}
	}
	out := make([]string, 0, len(avail))
	for a := range avail {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// CheckCoverage verifies that every needed attribute is obtainable.
func (p *Plan) CheckCoverage(needed []string) error {
	avail := map[string]bool{}
	for _, a := range p.AvailableAttrs() {
		avail[a] = true
	}
	var missing []string
	for _, n := range needed {
		if !avail[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("afc: attributes not available from the dataset layout: %s",
			strings.Join(missing, ", "))
	}
	return nil
}

// TotalDataBytes sums the layout-implied sizes of all data files — the
// full-scan volume of the dataset. Chunked leaves are excluded (their
// size is in the index, not the layout).
func (p *Plan) TotalDataBytes() int64 {
	var n int64
	for _, lf := range p.DataLeaves {
		for _, fs := range lf.Files {
			n += fs.Layout.TotalBytes
		}
	}
	return n
}
