package afc

import (
	"math"
	"sort"
	"testing"

	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

// semanticEqual is an independent oracle for plan identity: same table,
// same de-duplicated needed-column set, and pointwise-equal constraint
// sets per attribute. It deliberately avoids the canonical encoding —
// it walks the normalized interval lists directly — so a bug in
// AppendCanonical cannot hide from the fuzzer by breaking both sides
// the same way.
func semanticEqual(qa, qb *sqlparser.Query) bool {
	if qa.From != qb.From {
		return false
	}
	colsA := sortedUnique(qa.Columns)
	colsB := sortedUnique(qb.Columns)
	if len(colsA) != len(colsB) {
		return false
	}
	for i := range colsA {
		if colsA[i] != colsB[i] {
			return false
		}
	}
	ra := query.ExtractRanges(qa.Where)
	rb := query.ExtractRanges(qb.Where)
	attrs := map[string]bool{}
	for n := range ra {
		attrs[n] = true
	}
	for n := range rb {
		attrs[n] = true
	}
	for n := range attrs {
		// Ranges.Get defaults to the full set for absent attributes, so
		// "absent" and "present but unconstrained" compare equal here.
		if !setEqual(ra.Get(n), rb.Get(n)) {
			return false
		}
	}
	return true
}

func sortedUnique(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}

func setEqual(a, b query.Set) bool {
	ia, ib := a.Intervals(), b.Intervals()
	if len(ia) != len(ib) {
		return false
	}
	for i := range ia {
		if !intervalEqual(ia[i], ib[i]) {
			return false
		}
	}
	return true
}

func intervalEqual(a, b query.Interval) bool {
	return endpointBits(a.Lo) == endpointBits(b.Lo) &&
		endpointBits(a.Hi) == endpointBits(b.Hi) &&
		loOpen(a) == loOpen(b) && hiOpen(a) == hiOpen(b)
}

// endpointBits identifies -0 with +0 and is otherwise bit-exact.
func endpointBits(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v)
}

// ±Inf is never a set member, so an infinite endpoint is open whether
// or not the flag says so.
func loOpen(iv query.Interval) bool { return iv.LoOpen || math.IsInf(iv.Lo, -1) }
func hiOpen(iv query.Interval) bool { return iv.HiOpen || math.IsInf(iv.Hi, 1) }

// FuzzFingerprint asserts the plan-cache key property end to end:
// fingerprints collide iff the normalized range sets, needed columns,
// and table are semantically equal.
func FuzzFingerprint(f *testing.F) {
	seeds := [][2]string{
		{"SELECT x, y FROM T WHERE y < 10 AND x > 2", "SELECT x, y FROM T WHERE x > 2 AND y < 10"},
		{"SELECT x FROM T WHERE x BETWEEN 1 AND 2", "SELECT x FROM T WHERE x >= 1 AND x <= 2"},
		{"SELECT x FROM T WHERE x IN (1,2)", "SELECT x FROM T WHERE x = 2 OR x = 1"},
		{"SELECT x FROM T WHERE x > 2", "SELECT x FROM T WHERE x >= 2"},
		{"SELECT x FROM T WHERE NOT x < 3", "SELECT x FROM T WHERE x >= 3"},
		{"SELECT x FROM T WHERE x > 2 AND (y < 5 OR y >= 5)", "SELECT x FROM T WHERE x > 2"},
		{"SELECT x FROM T WHERE x = 0", "SELECT x FROM T WHERE x = -0.0"},
		{"SELECT a, b FROM T WHERE a < 1 AND b IN (1,2,3) OR NOT c >= 2.5e-3", "SELECT b, a FROM T WHERE a < 1"},
		{"SELECT x FROM T WHERE x < 1 AND x > 2", "SELECT x FROM T WHERE x = 1 AND x = 2"},
		{"SELECT x, x FROM T", "SELECT x FROM T"},
		{"SELECT * FROM T WHERE x > 2", "SELECT * FROM U WHERE x > 2"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, srcA, srcB string) {
		qa, err := sqlparser.Parse(srcA)
		if err != nil {
			return
		}
		qb, err := sqlparser.Parse(srcB)
		if err != nil {
			return
		}
		fa := Fingerprint(qa.From, query.ExtractRanges(qa.Where), qa.Columns)
		fb := Fingerprint(qb.From, query.ExtractRanges(qb.Where), qb.Columns)
		want := semanticEqual(qa, qb)
		if got := fa == fb; got != want {
			t.Fatalf("fingerprint collision = %v, semantic equality = %v\nA: %s\n   %q\nB: %s\n   %q",
				got, want, srcA, fa, srcB, fb)
		}
	})
}
