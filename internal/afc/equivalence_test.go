package afc

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
)

// TestAFCEquivalence is the randomized-layout property test promised by
// DESIGN.md (E8): for descriptors with random loop nests, attribute
// distributions across files, array-vs-record element order, partition
// counts and bindings, the AFC enumeration must describe exactly the
// virtual table that a naive enumeration of the dimension space
// produces. Rows are compared through real files written by the
// materializer and decoded segment arithmetic, so every layer from
// parser to offset computation is under test.
func TestAFCEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		desc, ni, nj, attrs := randomDescriptor(rng)
		d, err := metadata.Parse(desc)
		if err != nil {
			t.Logf("seed %d: generated descriptor invalid: %v\n%s", seed, err, desc)
			return false
		}
		root := t.TempDir()
		value := func(attr string, at map[string]int64) float64 {
			// A distinct, decodable value per (attr, I, J): pack the
			// coordinates; float32-exact for small ints.
			ai := int64(indexOf(attrs, attr))
			return float64(ai*4000 + at["I"]*100 + at["J"])
		}
		if err := gen.Materialize(d, root, value); err != nil {
			t.Logf("seed %d: materialize: %v\n%s", seed, err, desc)
			return false
		}
		p, err := Compile(d)
		if err != nil {
			t.Logf("seed %d: compile: %v\n%s", seed, err, desc)
			return false
		}

		// A random conjunctive query over I and one payload attribute.
		iLo := int64(rng.Intn(ni))
		iHi := iLo + int64(rng.Intn(ni-int(iLo)))
		ranges := query.Ranges{
			"I": query.NewSet(query.Interval{Lo: float64(iLo), Hi: float64(iHi)}),
		}
		needed := append([]string{"I", "J"}, attrs...)

		afcs, err := p.Generate(ranges, needed, nil)
		if err != nil {
			t.Logf("seed %d: generate: %v\n%s", seed, err, desc)
			return false
		}

		// Decode every AFC against the real files.
		got, err := decodeAFCs(root, afcs, needed)
		if err != nil {
			t.Logf("seed %d: decode: %v\n%s", seed, err, desc)
			return false
		}

		// Naive reference: enumerate the dimension space directly.
		var want []string
		for i := iLo; i <= iHi; i++ {
			for j := 0; j < nj; j++ {
				row := make([]string, 0, len(needed))
				row = append(row, fmt.Sprint(i), fmt.Sprint(j))
				for _, a := range attrs {
					row = append(row, fmt.Sprint(value(a, map[string]int64{"I": i, "J": int64(j)})))
				}
				want = append(want, strings.Join(row, "|"))
			}
		}
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Logf("seed %d: %d rows, want %d\n%s", seed, len(got), len(want), desc)
			return false
		}
		for k := range want {
			if got[k] != want[k] {
				t.Logf("seed %d: row %d: got %s want %s\n%s", seed, k, got[k], want[k], desc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomDescriptor builds a random two-dimensional dataset over
// dimensions I (0..ni-1) and J (0..nj-1) with payload attributes spread
// across 1..3 leaves, each leaf choosing record-vs-array element order
// and (sometimes) splitting I across partition directories or file
// bindings.
func randomDescriptor(rng *rand.Rand) (desc string, ni, nj int, attrs []string) {
	ni = rng.Intn(5) + 2
	nj = rng.Intn(5) + 2
	all := []string{"A", "B", "C", "D"}
	attrs = all[:rng.Intn(3)+2]

	var b strings.Builder
	b.WriteString("[S]\nI = int\nJ = int\n")
	kinds := []string{"float", "double", "int", "short int"}
	attrKinds := map[string]string{}
	for _, a := range attrs {
		k := kinds[rng.Intn(len(kinds))]
		attrKinds[a] = k
		fmt.Fprintf(&b, "%s = %s\n", a, k)
	}
	parts := 1
	if ni%2 == 0 && rng.Intn(2) == 0 {
		parts = 2
	}
	b.WriteString("\n[RandData]\nDatasetDescription = S\n")
	for p := 0; p < parts; p++ {
		fmt.Fprintf(&b, "DIR[%d] = node%d/rand\n", p, p)
	}
	b.WriteString("\nDataset \"RandData\" {\n  DATATYPE { S }\n  DATAINDEX { I J }\n")

	// Split attrs into 1..3 leaves.
	leafCount := rng.Intn(3) + 1
	if leafCount > len(attrs) {
		leafCount = len(attrs)
	}
	per := (len(attrs) + leafCount - 1) / leafCount
	leafNo := 0
	for start := 0; start < len(attrs); start += per {
		end := start + per
		if end > len(attrs) {
			end = len(attrs)
		}
		grp := attrs[start:end]
		iLoExpr, iHiExpr := "0", fmt.Sprint(ni-1)
		dirRef := "0"
		binding := ""
		if parts == 2 {
			half := ni / 2
			iLoExpr = fmt.Sprintf("($DIRID*%d)", half)
			iHiExpr = fmt.Sprintf("($DIRID*%d+%d)", half, half-1)
			dirRef = "$DIRID"
			binding = " DIRID = 0:1:1"
		}
		// Element order: record (all attrs in the inner loop body) or
		// array (one inner loop per attr).
		var space string
		if rng.Intn(2) == 0 {
			space = fmt.Sprintf("LOOP I %s:%s:1 { LOOP J 0:%d:1 { %s } }",
				iLoExpr, iHiExpr, nj-1, strings.Join(grp, " "))
		} else {
			var inner strings.Builder
			for _, a := range grp {
				fmt.Fprintf(&inner, "LOOP J 0:%d:1 { %s } ", nj-1, a)
			}
			space = fmt.Sprintf("LOOP I %s:%s:1 { %s}", iLoExpr, iHiExpr, inner.String())
		}
		// Sometimes split the outer dimension into one file per I value
		// instead of looping it (bindings become implicit attributes).
		if parts == 1 && rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				space = fmt.Sprintf("LOOP J 0:%d:1 { %s }", nj-1, strings.Join(grp, " "))
			} else {
				var inner strings.Builder
				for _, a := range grp {
					fmt.Fprintf(&inner, "LOOP J 0:%d:1 { %s } ", nj-1, a)
				}
				space = inner.String()
			}
			fmt.Fprintf(&b, "  Dataset \"leaf%d\" {\n    DATASPACE { %s }\n    DATA { DIR[0]/f%d.$I I = 0:%d:1 }\n  }\n",
				leafNo, space, leafNo, ni-1)
		} else {
			fmt.Fprintf(&b, "  Dataset \"leaf%d\" {\n    DATASPACE { %s }\n    DATA { DIR[%s]/f%d%s }\n  }\n",
				leafNo, space, dirRef, leafNo, binding)
		}
		leafNo++
	}
	b.WriteString("}\n")
	return b.String(), ni, nj, attrs
}

func readAt(path string, buf []byte, off int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.ReadAt(buf, off)
	return err
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// decodeAFCs reads the AFC byte regions from the materialized files and
// renders each row as "I|J|attr values..." in needed order. It is a
// deliberately independent (and slow) re-implementation of the
// extractor, exercising only the AFC offsets themselves.
func decodeAFCs(root string, afcs []AFC, needed []string) ([]string, error) {
	var out []string
	for ai := range afcs {
		a := &afcs[ai]
		for r := int64(0); r < a.NumRows; r++ {
			vals := map[string]string{}
			for _, im := range a.Implicits {
				vals[im.Name] = fmt.Sprint(im.Value.AsFloat())
			}
			for ri := range a.RowDims {
				rd := &a.RowDims[ri]
				vals[rd.Name] = fmt.Sprint(float64(rd.ValueAt(r)))
			}
			for _, seg := range a.Segments {
				path := filepath.Join(root, seg.Node, filepath.FromSlash(seg.File))
				raw := make([]byte, seg.RowBytes)
				off := seg.Offset
				if seg.RowStride != 0 {
					off += r * seg.RowStride
				}
				if err := readAt(path, raw, off); err != nil {
					return nil, err
				}
				for _, at := range seg.Attrs {
					v := schema.DecodeValue(at.Kind, raw[at.Off:])
					vals[at.Name] = fmt.Sprint(v.AsFloat())
				}
			}
			row := make([]string, 0, len(needed))
			for _, n := range needed {
				sv, ok := vals[n]
				if !ok {
					return nil, fmt.Errorf("AFC %s supplies no value for %s", a.String(), n)
				}
				row = append(row, sv)
			}
			out = append(out, strings.Join(row, "|"))
		}
	}
	return out, nil
}

// TestAFCEquivalenceWithFilters repeats the equivalence check through
// the SQL front end with a residual predicate, confirming that range
// extraction plus per-row filtering matches naive filtering.
func TestAFCEquivalenceWithFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		desc, ni, nj, attrs := randomDescriptor(rng)
		d, err := metadata.Parse(desc)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, desc)
		}
		root := t.TempDir()
		value := func(attr string, at map[string]int64) float64 {
			ai := int64(indexOf(attrs, attr))
			return float64(ai*4000 + at["I"]*100 + at["J"])
		}
		if err := gen.Materialize(d, root, value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p, err := Compile(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// WHERE J >= nj/2 AND A < bound: J is an index-visible dimension
		// in some leaves and a payload-free implicit in others.
		bound := float64(rng.Intn(ni)) * 100
		sql := fmt.Sprintf("SELECT * FROM RandData WHERE J >= %d AND %s < %g", nj/2, attrs[0], bound)
		q := sqlparser.MustParse(sql)
		ranges := query.ExtractRanges(q.Where)
		needed := append([]string{"I", "J"}, attrs...)
		afcs, err := p.Generate(ranges, needed, nil)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, desc)
		}
		rows, err := decodeAFCs(root, afcs, needed)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// AFC-level pruning is conservative; apply the full predicate to
		// the decoded rows, then compare with the naive filter.
		var got []string
		for _, r := range rows {
			parts := strings.Split(r, "|")
			var j, a0 float64
			fmt.Sscanf(parts[1], "%g", &j)
			fmt.Sscanf(parts[2], "%g", &a0)
			if j >= float64(nj/2) && a0 < bound {
				got = append(got, r)
			}
		}
		var want []string
		for i := 0; i < ni; i++ {
			for j := nj / 2; j < nj; j++ {
				if value(attrs[0], map[string]int64{"I": int64(i), "J": int64(j)}) >= bound {
					continue
				}
				row := []string{fmt.Sprint(i), fmt.Sprint(j)}
				for _, a := range attrs {
					row = append(row, fmt.Sprint(value(a, map[string]int64{"I": int64(i), "J": int64(j)})))
				}
				want = append(want, strings.Join(row, "|"))
			}
		}
		sort.Strings(got)
		sort.Strings(want)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("trial %d: filtered mismatch (%d vs %d rows)\n%s", trial, len(got), len(want), desc)
		}
	}
}
