package afc

import (
	"sort"
	"strconv"

	"datavirt/internal/query"
)

// Fingerprint returns the semantic plan-cache key of a query against
// the named virtual table: a canonical encoding of (table, needed
// columns, per-attribute constraint sets). Generate is a pure function
// of exactly these inputs (plus the immutable compiled plan and the
// chunk-index files), so two queries with equal fingerprints provably
// need the same aligned file chunks — "y < 10 AND x > 2" and
// "x > 2 AND y < 10" share one cached AFC list, and so does any textual
// variant implying the same normalized ranges. The residual predicate
// is NOT part of the key: it is compiled per query and only filters
// rows after extraction, so plans may be shared across queries whose
// predicates differ but whose range sets agree.
//
// The needed column list is sorted and de-duplicated, range sets use
// query's canonical encoding (full sets dropped, intervals normalized,
// floats bit-exact), and every component is length-delimited, making
// the key injective: fingerprints collide iff the inputs are
// semantically equal.
func Fingerprint(table string, ranges query.Ranges, needed []string) string {
	cols := append([]string(nil), needed...)
	sort.Strings(cols)
	uniq := cols[:0]
	for i, c := range cols {
		if i == 0 || c != cols[i-1] {
			uniq = append(uniq, c)
		}
	}
	b := make([]byte, 0, 64)
	b = strconv.AppendInt(b, int64(len(table)), 10)
	b = append(b, ':')
	b = append(b, table...)
	b = append(b, '|')
	for _, c := range uniq {
		b = strconv.AppendInt(b, int64(len(c)), 10)
		b = append(b, ':')
		b = append(b, c...)
		b = append(b, ',')
	}
	b = append(b, '|')
	b = ranges.AppendCanonical(b)
	return string(b)
}
