package afc

import (
	"fmt"
	"sort"
	"strings"

	"datavirt/internal/index"
	"datavirt/internal/layout"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/schema"
)

// IndexLoader resolves the chunk index for an INDEXFILE instance. The
// AFC package does no I/O itself; callers supply a loader (typically a
// caching one over index.ReadFile).
type IndexLoader func(fi metadata.FileInstance) (*index.ChunkIndex, error)

// maxChunkCombos caps the number of AFC sets one file group may emit,
// guarding against degenerate descriptors.
const maxChunkCombos = 1 << 24

// Generate runs the query-time phases of the paper's Figure 5 and
// returns the aligned file chunks that must be read to answer a query
// whose WHERE clause implies ranges and whose select+where attributes
// are needed. The loader is only consulted for chunked leaves; pass nil
// for pure DATASPACE plans.
func (p *Plan) Generate(ranges query.Ranges, needed []string, loader IndexLoader) ([]AFC, error) {
	if err := p.CheckCoverage(needed); err != nil {
		return nil, err
	}
	if ranges.Unsatisfiable() {
		return nil, nil
	}
	neededSet := map[string]bool{}
	for _, n := range needed {
		neededSet[n] = true
	}
	var out []AFC
	if len(p.DataLeaves) > 0 {
		afcs, err := p.generateDataspace(ranges, neededSet)
		if err != nil {
			return nil, err
		}
		out = append(out, afcs...)
	}
	for _, cl := range p.ChunkedLeaves {
		afcs, err := cl.generate(p.Schema, ranges, neededSet, loader)
		if err != nil {
			return nil, err
		}
		out = append(out, afcs...)
	}
	return out, nil
}

// Group is one aligned file group: one file from each attribute-set
// class, with consistent implicit attributes, plus the alignment
// analysis (union of loop dimensions and the chosen row axis). Groups
// are computed once per plan — they depend only on the meta-data, not
// on any query.
type Group struct {
	Files []*FileState
	// Dims is the union of the files' loop dimensions, outermost first.
	Dims []layout.Dim
	// Axis is the row-axis dimension when HasAxis is set.
	Axis    string
	HasAxis bool
	// Pins fixes dimensions that another group member binds per file:
	// when one file loops over a variable (say I) and a partner file is
	// one-of-many selected by a binding on the same variable (f.$I),
	// the group only joins consistently at the bound value. Groups
	// whose pin falls outside the dimension's lattice are discarded
	// during analysis.
	Pins map[string]int64
}

// Groups returns the file groups of the plan's DATASPACE leaves,
// computing and caching them on first use (Find_File_Groups, run at
// compile time since it needs no query input).
func (p *Plan) Groups() ([]Group, error) {
	p.groupsOnce.Do(func() {
		p.groups, p.groupsErr = p.analyzeGroups()
	})
	return p.groups, p.groupsErr
}

func (p *Plan) analyzeGroups() ([]Group, error) {
	// Classify files by the set of attributes they store.
	type class struct {
		key   string
		files []*FileState
	}
	var classes []*class
	classByKey := map[string]*class{}
	for _, lf := range p.DataLeaves {
		key := strings.Join(lf.Leaf.PayloadAttrs(), "\x00")
		c := classByKey[key]
		if c == nil {
			c = &class{key: key}
			classByKey[key] = c
			classes = append(classes, c)
		}
		for i := range lf.Files {
			c.files = append(c.files, &lf.Files[i])
		}
	}
	// Cartesian product with implicit-attribute consistency pruning.
	var groups []Group
	chosen := make([]*FileState, 0, len(classes))
	var pick func(i int) error
	pick = func(i int) error {
		if i == len(classes) {
			g := Group{Files: append([]*FileState(nil), chosen...)}
			have := map[string]bool{}
			for _, fs := range g.Files {
				for _, d := range fs.Layout.Dims {
					if !have[d.Var] {
						have[d.Var] = true
						g.Dims = append(g.Dims, d)
					}
				}
			}
			// Binding variables that name a group dimension pin it: the
			// paper's implicit-attribute consistency between a file
			// selected by the variable and files iterating over it.
			for _, fs := range g.Files {
				for v, val := range fs.Inst.Env {
					d, isDim := dimOf(g.Dims, v)
					if !isDim {
						continue
					}
					if val < d.Lo || val > d.Hi || (val-d.Lo)%d.Step != 0 {
						return nil // inconsistent group: discard
					}
					if g.Pins == nil {
						g.Pins = map[string]int64{}
					}
					g.Pins[v] = val // envAgrees guarantees a single value
				}
			}
			axis, hasAxis, err := chooseAxis(g.Files)
			if err != nil {
				return err
			}
			g.Axis, g.HasAxis = axis, hasAxis
			groups = append(groups, g)
			return nil
		}
		for _, fs := range classes[i].files {
			if !consistentWith(chosen, fs) {
				continue
			}
			chosen = append(chosen, fs)
			if err := pick(i + 1); err != nil {
				return err
			}
			chosen = chosen[:len(chosen)-1]
		}
		return nil
	}
	if err := pick(0); err != nil {
		return nil, err
	}
	return groups, nil
}

// generateDataspace implements the query-time part of Figure 5: prune
// the precomputed groups against the query ranges, then process each
// surviving group into aligned file chunks.
func (p *Plan) generateDataspace(ranges query.Ranges, needed map[string]bool) ([]AFC, error) {
	groups, err := p.Groups()
	if err != nil {
		return nil, err
	}
	var out []AFC
	for i := range groups {
		g := &groups[i]
		pruned := false
		for _, fs := range g.Files {
			if p.filePrunable(fs, ranges) {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		afcs, err := alignGroup(p.Schema, g, ranges, needed)
		if err != nil {
			return nil, err
		}
		out = append(out, afcs...)
	}
	return out, nil
}

// filePrunable reports whether the file provably contributes no rows:
// some implicit attribute value (binding) lies outside the query ranges,
// or some loop dimension naming a schema attribute has an empty clip.
// This is the file-level index check of the paper's worked example
// ("files DATA2 and DATA3 will be excluded ... because the file names
// are related to the REL values").
func (p *Plan) filePrunable(fs *FileState, ranges query.Ranges) bool {
	for v, val := range fs.Inst.Env {
		if !p.Schema.Has(v) {
			continue
		}
		if !ranges.Get(v).Contains(float64(val)) {
			return true
		}
	}
	for _, d := range fs.Layout.Dims {
		if !p.Schema.Has(d.Var) {
			continue
		}
		if len(ranges.Get(d.Var).ClipInt(d.Lo, d.Hi, d.Step)) == 0 {
			return true
		}
	}
	return false
}

// consistentWith checks the candidate against the already-chosen files:
// shared binding variables must agree and shared loop dimensions must
// have identical bounds. This is the paper's "if the values of implicit
// attributes are not inconsistent" test — e.g. DIR[0]/COORD and
// DIR[1]/DATA0 have non-overlapping grid ranges and are rejected.
func consistentWith(chosen []*FileState, cand *FileState) bool {
	for _, prev := range chosen {
		for v, val := range prev.Inst.Env {
			if cv, ok := cand.Inst.Env[v]; ok && cv != val {
				return false
			}
		}
		for _, d := range prev.Layout.Dims {
			if cd, ok := cand.Layout.Dim(d.Var); ok && cd != d {
				return false
			}
		}
	}
	return true
}

// alignGroup finds the aligned file chunks of one file group.
func alignGroup(sch *schema.Schema, g *Group, ranges query.Ranges, needed map[string]bool) ([]AFC, error) {
	group, dims := g.Files, g.Dims
	axis, hasAxis := g.Axis, g.HasAxis

	// Clip every dimension against the query ranges. Dimensions naming
	// schema attributes are constrained; others run in full. This is the
	// chunk-level index check ("Check against index", Figure 5): for the
	// worked example it reduces 500 TIME chunks to the 100 in range.
	clip := func(d layout.Dim) []query.IntRange {
		if pin, ok := g.Pins[d.Var]; ok {
			// Pinned by a group member's binding: the dimension joins at
			// a single value (its lattice validity was checked during
			// group analysis), still subject to the query's ranges.
			if sch.Has(d.Var) && !ranges.Get(d.Var).Contains(float64(pin)) {
				return nil
			}
			return []query.IntRange{{Lo: pin, Hi: pin, Step: d.Step}}
		}
		if sch.Has(d.Var) {
			return ranges.Get(d.Var).ClipInt(d.Lo, d.Hi, d.Step)
		}
		return []query.IntRange{{Lo: d.Lo, Hi: d.Hi, Step: d.Step}}
	}

	var chunkDims []layout.Dim
	var chunkRuns [][]query.IntRange
	var axisRuns []query.IntRange
	combos := int64(1)
	for _, d := range dims {
		runs := clip(d)
		if len(runs) == 0 {
			return nil, nil
		}
		if hasAxis && d.Var == axis {
			axisRuns = runs
			continue
		}
		chunkDims = append(chunkDims, d)
		chunkRuns = append(chunkRuns, runs)
		var vals int64
		for _, r := range runs {
			vals += r.Count()
		}
		combos *= vals
		if combos > maxChunkCombos {
			return nil, fmt.Errorf("afc: file group expands to more than %d aligned chunk sets", maxChunkCombos)
		}
	}
	if !hasAxis {
		axisRuns = []query.IntRange{{Lo: 0, Hi: 0, Step: 1}}
	}

	var out []AFC
	combo := map[string]int64{}
	var enum func(i int) error
	enum = func(i int) error {
		if i == len(chunkDims) {
			for _, run := range axisRuns {
				a, err := buildAFC(sch, group, axis, hasAxis, run, chunkDims, combo, needed)
				if err != nil {
					return err
				}
				out = append(out, a)
			}
			return nil
		}
		for _, r := range chunkRuns[i] {
			for v := r.Lo; v <= r.Hi; v += r.Step {
				combo[chunkDims[i].Var] = v
				if err := enum(i + 1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := enum(0); err != nil {
		return nil, err
	}
	return out, nil
}

// chooseAxis picks the row axis: the loop dimension shared by every
// dimensioned file of the group with the smallest worst-case byte
// stride, i.e. the dimension along which reads are closest to
// contiguous. It reports hasAxis=false when no file has dimensions.
func chooseAxis(group []*FileState) (string, bool, error) {
	var common map[string]bool
	dimmed := 0
	for _, fs := range group {
		if len(fs.Layout.Dims) == 0 {
			continue
		}
		dimmed++
		set := map[string]bool{}
		for _, d := range fs.Layout.Dims {
			set[d.Var] = true
		}
		if common == nil {
			common = set
			continue
		}
		for v := range common {
			if !set[v] {
				delete(common, v)
			}
		}
	}
	if dimmed == 0 {
		return "", false, nil
	}
	if len(common) == 0 {
		return "", false, fmt.Errorf("afc: file group has no common loop dimension to align on")
	}
	best, bestCost := "", int64(-1)
	for v := range common {
		var cost int64
		for _, fs := range group {
			for _, acc := range fs.Layout.Accesses {
				if s := acc.StrideAlong(v); s > cost {
					cost = s
				}
			}
		}
		if bestCost < 0 || cost < bestCost || (cost == bestCost && v < best) {
			best, bestCost = v, cost
		}
	}
	return best, true, nil
}

// buildAFC materializes one aligned file chunk set for a fixed chunk-
// dimension assignment and axis run.
func buildAFC(sch *schema.Schema, group []*FileState, axis string, hasAxis bool,
	run query.IntRange, chunkDims []layout.Dim, combo map[string]int64,
	needed map[string]bool) (AFC, error) {

	a := AFC{NumRows: run.Count()}
	if len(group) > 0 {
		a.Node = group[0].Inst.Node()
	}

	vals := make(map[string]int64, len(combo)+1)
	for k, v := range combo {
		vals[k] = v
	}
	if hasAxis {
		vals[axis] = run.Lo
	}

	type accRef struct {
		off    int64
		stride int64
		acc    *layout.Access
	}
	for _, fs := range group {
		var refs []accRef
		for i := range fs.Layout.Accesses {
			acc := &fs.Layout.Accesses[i]
			if !needed[acc.Attr] {
				continue
			}
			off, err := acc.Offset(vals)
			if err != nil {
				return AFC{}, err
			}
			refs = append(refs, accRef{off: off, stride: acc.StrideAlong(axis), acc: acc})
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].off < refs[j].off })
		// Merge adjacent same-stride accesses into segments (the paper's
		// contiguous Num_Bytes per row).
		for i := 0; i < len(refs); {
			seg := Segment{
				Node:      fs.Inst.Node(),
				File:      fs.Inst.Path(),
				Offset:    refs[i].off,
				RowStride: refs[i].stride,
				BigEndian: fs.Big,
			}
			j := i
			for j < len(refs) {
				r := refs[j]
				if r.stride != seg.RowStride {
					break
				}
				if r.off != seg.Offset+seg.RowBytes {
					break
				}
				if seg.RowStride > 0 && seg.RowBytes+r.acc.Size > seg.RowStride {
					break
				}
				seg.Attrs = append(seg.Attrs, SegAttr{
					Name: r.acc.Attr, Kind: r.acc.Kind, Off: seg.RowBytes,
				})
				seg.RowBytes += r.acc.Size
				j++
			}
			a.Segments = append(a.Segments, seg)
			i = j
		}
	}

	// Implicit attributes: binding variables and chunk dimensions that
	// name schema attributes. Group consistency guarantees agreement.
	seen := map[string]bool{}
	addImplicit := func(name string, v int64) {
		if seen[name] {
			return
		}
		k, ok := sch.Kind(name)
		if !ok {
			return
		}
		seen[name] = true
		a.Implicits = append(a.Implicits, Implicit{Name: name, Value: schema.KindValue(k, float64(v))})
	}
	for _, fs := range group {
		// Iterate deterministically for stable output.
		envVars := make([]string, 0, len(fs.Inst.Env))
		for v := range fs.Inst.Env {
			envVars = append(envVars, v)
		}
		sort.Strings(envVars)
		for _, v := range envVars {
			addImplicit(v, fs.Inst.Env[v])
		}
	}
	for _, d := range chunkDims {
		addImplicit(d.Var, combo[d.Var])
	}
	if hasAxis {
		if k, ok := sch.Kind(axis); ok {
			a.RowDims = append(a.RowDims, RowDim{Name: axis, Kind: k, Lo: run.Lo, Step: run.Step})
		}
	}
	return a, nil
}

// generate produces the AFCs of a chunked leaf: one AFC per chunk whose
// MBR intersects the query, as reported by the paired index file.
func (cl *ChunkedLeaf) generate(sch *schema.Schema, ranges query.Ranges, needed map[string]bool, loader IndexLoader) ([]AFC, error) {
	if loader == nil {
		return nil, fmt.Errorf("afc: chunked dataset %q requires an index loader", cl.Node.Name)
	}
	var out []AFC
	for _, cf := range cl.Files {
		pruned := false
		for v, val := range cf.Data.Env {
			if sch.Has(v) && !ranges.Get(v).Contains(float64(val)) {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		ix, err := loader(cf.Index)
		if err != nil {
			return nil, fmt.Errorf("afc: loading index %s: %w", cf.Index, err)
		}
		if got := ix.Attrs(); !equalStrings(got, cl.IndexAttrs) {
			return nil, fmt.Errorf("afc: index %s covers attributes %v, descriptor declares %v",
				cf.Index, got, cl.IndexAttrs)
		}
		// Record-internal offsets of the needed attributes.
		type field struct {
			off  int64
			attr schema.Attribute
		}
		var fields []field
		off := int64(0)
		for _, at := range cl.Attrs {
			if needed[at.Name] {
				fields = append(fields, field{off: off, attr: at})
			}
			off += int64(at.Kind.Size())
		}
		var implicits []Implicit
		envVars := make([]string, 0, len(cf.Data.Env))
		for v := range cf.Data.Env {
			envVars = append(envVars, v)
		}
		sort.Strings(envVars)
		for _, v := range envVars {
			if k, ok := sch.Kind(v); ok {
				implicits = append(implicits, Implicit{Name: v, Value: schema.KindValue(k, float64(cf.Data.Env[v]))})
			}
		}
		for _, chunk := range ix.Search(ranges) {
			a := AFC{NumRows: chunk.NumRows, Implicits: implicits, Node: cf.Data.Node()}
			for i := 0; i < len(fields); {
				seg := Segment{
					Node:      cf.Data.Node(),
					File:      cf.Data.Path(),
					Offset:    chunk.Offset + fields[i].off,
					RowStride: cl.RecordBytes,
					BigEndian: cl.Big,
				}
				j := i
				for j < len(fields) {
					f := fields[j]
					if chunk.Offset+f.off != seg.Offset+seg.RowBytes {
						break
					}
					if seg.RowBytes+int64(f.attr.Kind.Size()) > seg.RowStride {
						break
					}
					seg.Attrs = append(seg.Attrs, SegAttr{Name: f.attr.Name, Kind: f.attr.Kind, Off: seg.RowBytes})
					seg.RowBytes += int64(f.attr.Kind.Size())
					j++
				}
				a.Segments = append(a.Segments, seg)
				i = j
			}
			out = append(out, a)
		}
	}
	return out, nil
}

// dimOf finds the named dimension in a dim list.
func dimOf(dims []layout.Dim, v string) (layout.Dim, bool) {
	for _, d := range dims {
		if d.Var == v {
			return d, true
		}
	}
	return layout.Dim{}, false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
