package afc

import (
	"strings"
	"testing"

	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

func fpFromSQL(t *testing.T, sql string) string {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ranges := query.ExtractRanges(q.Where)
	return Fingerprint(q.From, ranges, q.Columns)
}

func TestFingerprintSemanticEquality(t *testing.T) {
	equal := [][2]string{
		{
			"SELECT x, y FROM T WHERE y < 10 AND x > 2",
			"SELECT x, y FROM T WHERE x > 2 AND y < 10",
		},
		{
			"SELECT x, y FROM T WHERE x BETWEEN 1 AND 2",
			"SELECT y, x FROM T WHERE x >= 1 AND x <= 2",
		},
		{
			"SELECT x FROM T WHERE x IN (1, 2, 3)",
			"SELECT x FROM T WHERE x = 3 OR x = 1 OR x = 2",
		},
		{
			// Duplicate needed columns collapse.
			"SELECT x, x, y FROM T WHERE x > 0",
			"SELECT y, x FROM T WHERE x > 0",
		},
		{
			// Residual-only predicates share a plan: the OR across two
			// attributes constrains neither, so the range sets agree.
			"SELECT x, y FROM T WHERE x = 1 OR y = 2",
			"SELECT x, y FROM T",
		},
	}
	for _, pair := range equal {
		a, b := fpFromSQL(t, pair[0]), fpFromSQL(t, pair[1])
		if a != b {
			t.Errorf("Fingerprint(%q) = %q\n!= Fingerprint(%q) = %q", pair[0], a, pair[1], b)
		}
	}

	distinct := [][2]string{
		{
			"SELECT x FROM T WHERE x > 2",
			"SELECT x FROM T WHERE x >= 2",
		},
		{
			"SELECT x FROM T WHERE x > 2",
			"SELECT y FROM T WHERE x > 2", // needed columns differ
		},
		{
			"SELECT x FROM T WHERE x > 2",
			"SELECT x FROM U WHERE x > 2", // table differs
		},
		{
			"SELECT x FROM T WHERE x > 2 AND y < 1",
			"SELECT x FROM T WHERE x > 2",
		},
	}
	for _, pair := range distinct {
		a, b := fpFromSQL(t, pair[0]), fpFromSQL(t, pair[1])
		if a == b {
			t.Errorf("Fingerprint(%q) == Fingerprint(%q) = %q; want distinct", pair[0], pair[1], a)
		}
	}
}

func TestFingerprintInjectiveOnBoundaries(t *testing.T) {
	// Length prefixes must keep table/column boundaries unambiguous.
	r := query.Ranges{}
	if a, b := Fingerprint("T", r, []string{"ab"}), Fingerprint("T", r, []string{"a", "b"}); a == b {
		t.Errorf("column boundary ambiguous: %q", a)
	}
	if a, b := Fingerprint("Ta", r, []string{"b"}), Fingerprint("T", r, []string{"ab"}); a == b {
		t.Errorf("table/column boundary ambiguous: %q", a)
	}
	if !strings.HasPrefix(Fingerprint("T", r, nil), "1:T|") {
		t.Errorf("unexpected prefix: %q", Fingerprint("T", r, nil))
	}
}

func TestFingerprintDoesNotMutateNeeded(t *testing.T) {
	needed := []string{"z", "a", "z"}
	Fingerprint("T", query.Ranges{}, needed)
	if needed[0] != "z" || needed[1] != "a" || needed[2] != "z" {
		t.Errorf("needed slice mutated: %v", needed)
	}
}
