package afc

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

// layoutIPlan compiles a Layout-I descriptor (everything in one file,
// REL and TIME as outer loops).
func layoutIPlan(t *testing.T, spec gen.IparsSpec) *Plan {
	t.Helper()
	src, err := gen.IparsDescriptor(spec, "I")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCoalesceLayoutIFullScan: a full scan of Layout I must collapse to
// a single chunk covering the whole file.
func TestCoalesceLayoutIFullScan(t *testing.T) {
	spec := gen.IparsSpec{Realizations: 3, TimeSteps: 5, GridPoints: 8, Partitions: 1, Attrs: 2, Seed: 1}
	p := layoutIPlan(t, spec)
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs) != 15 { // REL(3) × TIME(5) chunks before coalescing
		t.Fatalf("raw AFCs = %d", len(afcs))
	}
	merged := Coalesce(afcs)
	if len(merged) != 1 {
		for _, a := range merged {
			t.Logf("  %s", a.String())
		}
		t.Fatalf("coalesced AFCs = %d, want 1", len(merged))
	}
	m := merged[0]
	if m.NumRows != spec.IparsTotalRows() {
		t.Errorf("rows = %d, want %d", m.NumRows, spec.IparsTotalRows())
	}
	// TIME wraps every 8 rows with 5 values; REL advances every 40 rows.
	var timeRD, relRD *RowDim
	for i := range m.RowDims {
		switch m.RowDims[i].Name {
		case "TIME":
			timeRD = &m.RowDims[i]
		case "REL":
			relRD = &m.RowDims[i]
		}
	}
	if timeRD == nil || relRD == nil {
		t.Fatalf("row dims = %+v", m.RowDims)
	}
	if timeRD.ValueAt(0) != 1 || timeRD.ValueAt(8) != 2 || timeRD.ValueAt(39) != 5 || timeRD.ValueAt(40) != 1 {
		t.Errorf("TIME dim = %+v", timeRD)
	}
	if relRD.ValueAt(0) != 0 || relRD.ValueAt(39) != 0 || relRD.ValueAt(40) != 1 || relRD.ValueAt(119) != 2 {
		t.Errorf("REL dim = %+v", relRD)
	}
}

// TestCoalescePreservesRows compares extraction-independent decoding of
// raw vs coalesced AFCs over real files, for Layout I and Layout V and
// a clipped query.
func TestCoalescePreservesRows(t *testing.T) {
	spec := gen.IparsSpec{Realizations: 2, TimeSteps: 6, GridPoints: 10, Partitions: 1, Attrs: 3, Seed: 3}
	for _, layoutID := range []string{"I", "III", "V"} {
		src, err := gen.IparsDescriptor(spec, layoutID)
		if err != nil {
			t.Fatal(err)
		}
		d, err := metadata.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		root := t.TempDir()
		if err := gen.Materialize(d, root, spec.ValueFunc()); err != nil {
			t.Fatal(err)
		}
		p, err := Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		needed := p.Schema.Names()
		for _, sql := range []string{
			"SELECT * FROM IparsData",
			"SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 4",
			"SELECT * FROM IparsData WHERE REL = 1",
		} {
			q := sqlparser.MustParse(sql)
			afcs, err := p.Generate(query.ExtractRanges(q.Where), needed, nil)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := decodeAFCs(root, afcs, needed)
			if err != nil {
				t.Fatal(err)
			}
			merged := Coalesce(afcs)
			if len(merged) > len(afcs) {
				t.Fatalf("%s/%s: coalescing grew the chunk list", layoutID, sql)
			}
			got, err := decodeAFCs(root, merged, needed)
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(raw)
			sort.Strings(got)
			if strings.Join(raw, "\n") != strings.Join(got, "\n") {
				t.Fatalf("%s / %q: coalesced rows differ (%d vs %d)", layoutID, sql, len(got), len(raw))
			}
		}
	}
}

// TestCoalesceRandomizedEquivalence folds Coalesce into the randomized
// layout property: decoded rows must be identical before and after.
func TestCoalesceRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		desc, ni, _, attrs := randomDescriptor(rng)
		d, err := metadata.Parse(desc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		root := t.TempDir()
		value := func(attr string, at map[string]int64) float64 {
			ai := int64(indexOf(attrs, attr))
			return float64(ai*4000 + at["I"]*100 + at["J"])
		}
		if err := gen.Materialize(d, root, value); err != nil {
			t.Fatal(err)
		}
		p, err := Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		needed := append([]string{"I", "J"}, attrs...)
		ranges := query.Ranges{}
		if rng.Intn(2) == 0 {
			hi := rng.Intn(ni)
			ranges["I"] = query.NewSet(query.Interval{Lo: 0, Hi: float64(hi)})
		}
		afcs, err := p.Generate(ranges, needed, nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := decodeAFCs(root, afcs, needed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeAFCs(root, Coalesce(afcs), needed)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, desc)
		}
		sort.Strings(raw)
		sort.Strings(got)
		if strings.Join(raw, "\n") != strings.Join(got, "\n") {
			t.Fatalf("trial %d: coalesce changed rows (%d vs %d)\n%s", trial, len(got), len(raw), desc)
		}
	}
}

// TestCoalesceDoesNotMergeRepeatedCoords: the Figure 4 cluster layout
// re-reads COORDS per TIME chunk; those chunks are NOT contiguous and
// must not merge.
func TestCoalesceDoesNotMergeRepeatedCoords(t *testing.T) {
	d, err := metadata.Parse(iparsSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparser.MustParse("SELECT * FROM IparsData WHERE REL = 0 AND TIME <= 10")
	afcs, err := p.Generate(query.ExtractRanges(q.Where), p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	merged := Coalesce(afcs)
	if len(merged) != len(afcs) {
		t.Errorf("coalesced %d -> %d; COORDS-sharing chunks are not mergeable", len(afcs), len(merged))
	}
}

func TestRowDimValueAt(t *testing.T) {
	rd := RowDim{Lo: 10, Step: 5, Div: 3, Count: 4}
	// idx = (i/3) % 4 → values 10,10,10,15,15,15,20,20,20,25,25,25,10,...
	want := []int64{10, 10, 10, 15, 15, 15, 20, 20, 20, 25, 25, 25, 10}
	for i, w := range want {
		if got := rd.ValueAt(int64(i)); got != w {
			t.Errorf("ValueAt(%d) = %d, want %d", i, got, w)
		}
	}
	plain := RowDim{Lo: 7, Step: 2}
	if plain.ValueAt(0) != 7 || plain.ValueAt(3) != 13 {
		t.Error("plain form broken")
	}
}
