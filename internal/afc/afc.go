// Package afc computes Aligned File Chunks — the central data structure
// of the paper (§4):
//
//	{num_rows, {File_1, Offset_1, Num_Bytes_1}, ..., {File_m, Offset_m, Num_Bytes_m}}
//
// An AFC names, for each participating file, a byte region that yields
// exactly num_rows rows of the virtual table when the regions are read
// in lockstep. The package implements the two-step algorithm of the
// paper's Figure 5: Find_File_Groups (match files against the query,
// classify by attribute set, take the cartesian product, and prune
// groups whose implicit attributes are inconsistent) and
// Process_File_Groups (find the aligned chunks of each group, supply
// implicit attributes, check each chunk against the index, and compute
// offsets and lengths).
//
// Two generalizations over the paper's formulation:
//
//   - a Segment carries a RowStride in addition to RowBytes, so layouts
//     that store each variable as a separate array (the paper's layouts
//     II, IV, VI) are expressible: consecutive rows of an attribute may
//     be non-adjacent. When RowStride == RowBytes the structure is
//     exactly the paper's contiguous chunk.
//   - several segments may reference the same file, so a single file
//     holding multiple per-variable arrays contributes one segment per
//     array rather than being unrepresentable.
package afc

import (
	"fmt"
	"strings"

	"datavirt/internal/schema"
)

// SegAttr locates one attribute inside a segment's per-row byte run.
type SegAttr struct {
	Name string
	Kind schema.Kind
	// Off is the attribute's byte offset within the row run.
	Off int64
}

// Segment is one aligned byte region of one file. Row i of the AFC
// occupies bytes [Offset + i*RowStride, Offset + i*RowStride + RowBytes).
// RowStride == 0 means the region is constant across rows (the attribute
// does not vary along the row axis and is replicated).
type Segment struct {
	// Node is the cluster node holding the file; File is the path
	// relative to that node's data root.
	Node string
	File string

	Offset    int64
	RowStride int64
	RowBytes  int64
	Attrs     []SegAttr

	// BigEndian marks data declared with BYTEORDER { BIG }.
	BigEndian bool
}

// Implicit is an attribute whose value is constant over an entire AFC,
// inferred from the file name, directory, or an outer loop variable
// rather than stored in any file (paper §4, "implicit attributes").
type Implicit struct {
	Name  string
	Value schema.Value
}

// RowDim synthesizes a per-row attribute from the row position. In the
// plain form produced by the planner, value(i) = Lo + i*Step. Coalesced
// chunks (see Coalesce) use the generalized modular-affine form
//
//	value(i) = Lo + ((i/Div) mod Count) * Step
//
// where Div ≤ 1 means 1 (no inner repetition) and Count ≤ 0 means
// unbounded (no wrap).
type RowDim struct {
	Name     string
	Kind     schema.Kind
	Lo, Step int64
	// Div repeats each value for Div consecutive rows.
	Div int64
	// Count wraps the sequence after Count distinct values.
	Count int64
}

// ValueAt computes the attribute's value for absolute row index i.
func (rd *RowDim) ValueAt(i int64) int64 {
	idx := i
	if rd.Div > 1 {
		idx /= rd.Div
	}
	if rd.Count > 0 {
		idx %= rd.Count
	}
	return rd.Lo + idx*rd.Step
}

// AFC is one aligned file chunk set.
type AFC struct {
	NumRows   int64
	Segments  []Segment
	Implicits []Implicit
	RowDims   []RowDim
	// Node is the cluster node the chunk's files live on (the first
	// group file's node). It remains meaningful even when a projection
	// needs no payload bytes and Segments is empty, so distributed
	// execution can still assign the chunk to exactly one node.
	Node string
}

// Bytes returns the total number of data bytes the AFC reads.
func (a *AFC) Bytes() int64 {
	var n int64
	for _, s := range a.Segments {
		if s.RowStride == 0 {
			n += s.RowBytes
			continue
		}
		n += s.RowBytes * a.NumRows
	}
	return n
}

// String renders a compact diagnostic form.
func (a *AFC) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AFC{rows=%d", a.NumRows)
	for _, s := range a.Segments {
		names := make([]string, len(s.Attrs))
		for i, at := range s.Attrs {
			names[i] = at.Name
		}
		fmt.Fprintf(&b, ", %s:%s@%d+%dx%d(%s)", s.Node, s.File, s.Offset, s.RowStride, s.RowBytes,
			strings.Join(names, ","))
	}
	for _, im := range a.Implicits {
		fmt.Fprintf(&b, ", %s=%s", im.Name, im.Value)
	}
	for _, rd := range a.RowDims {
		fmt.Fprintf(&b, ", %s=row(%d+%d*i)", rd.Name, rd.Lo, rd.Step)
	}
	b.WriteString("}")
	return b.String()
}
