package afc

// Coalesce merges runs of consecutive AFCs that read contiguous byte
// ranges of the same files into larger chunks, turning many small reads
// into few big ones. It is an optimization the paper leaves on the
// table (its extractor processes one aligned chunk set per outer-loop
// value); DESIGN.md tracks it as an ablation, and dvbench's
// ablation-coalesce experiment measures it.
//
// Two consecutive AFCs merge when:
//
//   - they live on the same node, have the same row count, and their
//     segments are structurally identical (file, stride, attributes,
//     byte order) and byte-contiguous (or constant and byte-identical);
//   - their row-dimension patterns match, so the merged chunk's rows
//     keep synthesizing the same values (the pattern wraps per chunk);
//   - their implicit attributes agree except for at most one, whose
//     value advances by a constant integral delta — that implicit is
//     promoted to a modular-affine RowDim in the merged chunk.
//
// Passes repeat until a fixpoint, so nested flattenings compose: a full
// scan of the paper's Layout I (one file, REL and TIME both outer
// loops) collapses to a single chunk covering the whole file.
//
// The input is not modified. Order of surviving chunks is preserved.
func Coalesce(afcs []AFC) []AFC {
	out := afcs
	for {
		merged := coalesceOnce(out)
		if len(merged) == len(out) {
			return merged
		}
		out = merged
	}
}

func coalesceOnce(afcs []AFC) []AFC {
	out := make([]AFC, 0, len(afcs))
	i := 0
	for i < len(afcs) {
		run := []*AFC{&afcs[i]}
		varyName := ""
		var delta int64
		j := i + 1
		for j < len(afcs) {
			name, d, ok := canAppend(run, &afcs[j], varyName, delta)
			if !ok {
				break
			}
			if name != "" && varyName == "" {
				varyName, delta = name, d
			}
			run = append(run, &afcs[j])
			j++
		}
		out = append(out, mergeRun(run, varyName, delta))
		i = j
	}
	return out
}

// canAppend decides whether cand extends the run, returning the varying
// implicit's name and delta when one is involved.
func canAppend(run []*AFC, cand *AFC, varyName string, delta int64) (string, int64, bool) {
	base, last := run[0], run[len(run)-1]
	if cand.Node != base.Node || cand.NumRows != base.NumRows || cand.NumRows == 0 {
		return "", 0, false
	}
	if len(cand.Segments) != len(base.Segments) ||
		len(cand.Implicits) != len(base.Implicits) ||
		len(cand.RowDims) != len(base.RowDims) {
		return "", 0, false
	}
	for si := range base.Segments {
		b, l, c := &base.Segments[si], &last.Segments[si], &cand.Segments[si]
		if c.Node != b.Node || c.File != b.File || c.RowStride != b.RowStride ||
			c.RowBytes != b.RowBytes || c.BigEndian != b.BigEndian || !sameAttrs(c.Attrs, b.Attrs) {
			return "", 0, false
		}
		if b.RowStride == 0 {
			// Constant segments must reference the same bytes.
			if c.Offset != b.Offset {
				return "", 0, false
			}
			continue
		}
		if c.Offset != l.Offset+base.NumRows*b.RowStride {
			return "", 0, false
		}
	}
	for ri := range base.RowDims {
		if cand.RowDims[ri] != base.RowDims[ri] {
			return "", 0, false
		}
	}
	// Implicits: all equal to the last chunk's, except at most one with
	// a constant integral step.
	vary := ""
	var d int64
	for ii := range base.Implicits {
		b, l, c := &base.Implicits[ii], &last.Implicits[ii], &cand.Implicits[ii]
		if c.Name != b.Name || c.Value.Kind != b.Value.Kind {
			return "", 0, false
		}
		if c.Value == l.Value {
			continue
		}
		if vary != "" {
			return "", 0, false // more than one varying implicit
		}
		vary = c.Name
		d = c.Value.AsInt() - l.Value.AsInt()
		// The value must be integral for the promotion to be exact.
		if float64(c.Value.AsInt()) != c.Value.AsFloat() || float64(l.Value.AsInt()) != l.Value.AsFloat() {
			return "", 0, false
		}
	}
	if vary == "" {
		// Pure contiguation; fine regardless of an established pattern.
		return "", 0, true
	}
	if varyName != "" && (vary != varyName || d != delta) {
		return "", 0, false
	}
	if d == 0 {
		return "", 0, false
	}
	return vary, d, true
}

func sameAttrs(a, b []SegAttr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeRun builds the merged chunk.
func mergeRun(run []*AFC, varyName string, delta int64) AFC {
	if len(run) == 1 {
		return *run[0]
	}
	base := run[0]
	rows0 := base.NumRows
	out := AFC{
		NumRows:  rows0 * int64(len(run)),
		Node:     base.Node,
		Segments: append([]Segment(nil), base.Segments...),
	}
	for i := range out.Segments {
		out.Segments[i].Attrs = append([]SegAttr(nil), base.Segments[i].Attrs...)
	}
	// Existing row dims wrap per original chunk.
	for _, rd := range base.RowDims {
		if rd.Count <= 0 {
			div := rd.Div
			if div < 1 {
				div = 1
			}
			rd.Count = rows0 / div
		}
		out.RowDims = append(out.RowDims, rd)
	}
	// Constant implicits stay; the varying one becomes a row dimension.
	for _, im := range base.Implicits {
		if im.Name != varyName {
			out.Implicits = append(out.Implicits, im)
			continue
		}
		out.RowDims = append(out.RowDims, RowDim{
			Name: im.Name, Kind: im.Value.Kind,
			Lo: im.Value.AsInt(), Step: delta, Div: rows0,
		})
	}
	return out
}
