package afc

import (
	"testing"

	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

// pinnedDescriptor mixes a looped dimension with per-value file
// bindings of the same variable: leaf0 iterates I inside one file,
// leaf1 stores one file per I. Groups must join only at the matching I.
const pinnedDescriptor = `
[S]
I = int
J = int
A = float
B = double

[PinData]
DatasetDescription = S
DIR[0] = node0/rand

Dataset "PinData" {
  DATATYPE { S }
  DATAINDEX { I J }
  Dataset "leaf0" {
    DATASPACE { LOOP I 0:5:1 { LOOP J 0:3:1 { A } } }
    DATA { DIR[0]/f0 }
  }
  Dataset "leaf1" {
    DATASPACE { LOOP J 0:3:1 { B } }
    DATA { DIR[0]/f1.$I I = 0:5:1 }
  }
}
`

func TestPinnedDimensionGroups(t *testing.T) {
	d, err := metadata.Parse(pinnedDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := p.Groups()
	if err != nil {
		t.Fatal(err)
	}
	// 1 f0 × 6 f1.k files = 6 groups, each pinning I to k.
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6", len(groups))
	}
	seen := map[int64]bool{}
	for _, g := range groups {
		pin, ok := g.Pins["I"]
		if !ok {
			t.Fatalf("group lacks I pin: %+v", g.Files)
		}
		if seen[pin] {
			t.Fatalf("duplicate pin %d", pin)
		}
		seen[pin] = true
	}

	// Full scan: 6 groups × 1 pinned I × 1 J-run of 4 rows = 24 rows,
	// exactly the 6×4 virtual table (no cross joins).
	afcs, err := p.Generate(query.Ranges{}, []string{"I", "J", "A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, a := range afcs {
		rows += a.NumRows
	}
	if rows != 24 {
		t.Fatalf("full scan rows = %d, want 24 (pin leak would give 144)", rows)
	}
	// I = 3 selects exactly one group.
	q := sqlparser.MustParse("SELECT * FROM PinData WHERE I = 3")
	afcs, err = p.Generate(query.ExtractRanges(q.Where), []string{"I", "J", "A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs) != 1 || afcs[0].NumRows != 4 {
		t.Fatalf("I=3 afcs = %v", afcs)
	}
	// f0's A offset for I=3 must start at (3-0)*4*4 = 48.
	found := false
	for _, seg := range afcs[0].Segments {
		if seg.File == "rand/f0" {
			found = true
			if seg.Offset != 48 {
				t.Errorf("f0 offset = %d, want 48", seg.Offset)
			}
		}
	}
	if !found {
		t.Error("no f0 segment")
	}
}

// TestPinnedAxis pins the row axis itself: leaf1 stores one scalar file
// per J while leaf0 iterates J. Each group is a single-row join at the
// pinned J.
func TestPinnedAxis(t *testing.T) {
	src := `
[S]
J = int
A = float
B = double

[AxData]
DatasetDescription = S
DIR[0] = node0/rand

Dataset "AxData" {
  DATATYPE { S }
  DATAINDEX { J }
  Dataset "leaf0" {
    DATASPACE { LOOP J 0:3:1 { A } }
    DATA { DIR[0]/f0 }
  }
  Dataset "leaf1" {
    DATASPACE { B }
    DATA { DIR[0]/f1.$J J = 0:3:1 }
  }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	afcs, err := p.Generate(query.Ranges{}, []string{"J", "A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs) != 4 {
		t.Fatalf("afcs = %d, want 4 (one per pinned J)", len(afcs))
	}
	var rows int64
	offsets := map[int64]bool{}
	for _, a := range afcs {
		rows += a.NumRows
		if a.NumRows != 1 {
			t.Errorf("pinned-axis AFC rows = %d, want 1", a.NumRows)
		}
		for _, seg := range a.Segments {
			if seg.File == "rand/f0" {
				offsets[seg.Offset] = true
			}
		}
	}
	if rows != 4 {
		t.Errorf("rows = %d", rows)
	}
	// f0 offsets must be 0, 4, 8, 12 — one element per pinned J.
	for _, want := range []int64{0, 4, 8, 12} {
		if !offsets[want] {
			t.Errorf("missing f0 offset %d (got %v)", want, offsets)
		}
	}
	// Query J >= 2 keeps two groups.
	q := sqlparser.MustParse("SELECT * FROM AxData WHERE J >= 2")
	afcs, err = p.Generate(query.ExtractRanges(q.Where), []string{"J", "A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs) != 2 {
		t.Fatalf("J>=2 afcs = %d, want 2", len(afcs))
	}
}
