package afc

import (
	"strings"
	"testing"

	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
)

const iparsSrc = `
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

Dataset "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { Dataset ipars1 Dataset ipars2 }
  Dataset "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y Z }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  Dataset "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
`

func compileIpars(t *testing.T) *Plan {
	t.Helper()
	d, err := metadata.Parse(iparsSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func allAttrs() []string {
	return []string{"REL", "TIME", "X", "Y", "Z", "SOIL", "SGAS"}
}

// TestPaperWorkedExample asserts the exact counts of the paper's §4
// walk-through: query REL ∈ {0,1}, TIME 1..100 on the Figure 4 layout.
// "Eight such groups are put in the set T" and "a total of 500 such
// aligned file chunk sets can be formed from each set in T. By using the
// query range, we can see that only 100 of these should be processed."
func TestPaperWorkedExample(t *testing.T) {
	p := compileIpars(t)
	q := sqlparser.MustParse("SELECT * FROM IparsData WHERE REL IN (0,1) AND TIME >= 1 AND TIME <= 100")
	ranges := query.ExtractRanges(q.Where)

	afcs, err := p.Generate(ranges, allAttrs(), nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// 8 groups × 100 TIME chunks.
	if len(afcs) != 800 {
		t.Fatalf("AFC sets = %d, want 800", len(afcs))
	}
	var rows int64
	for _, a := range afcs {
		rows += a.NumRows
	}
	// 2 RELs × 100 TIMEs × 400 grid points.
	if rows != 80000 {
		t.Errorf("total rows = %d, want 80000", rows)
	}
	// Every AFC reads one COORDS chunk and one DATA chunk, aligned on
	// GRID, 100 rows each.
	first := afcs[0]
	if first.NumRows != 100 {
		t.Errorf("NumRows = %d", first.NumRows)
	}
	if len(first.Segments) != 2 {
		t.Fatalf("segments = %d: %s", len(first.Segments), first.String())
	}
	var coords, data *Segment
	for i := range first.Segments {
		s := &first.Segments[i]
		if strings.HasSuffix(s.File, "COORDS") {
			coords = s
		} else {
			data = s
		}
	}
	if coords == nil || data == nil {
		t.Fatalf("segments = %s", first.String())
	}
	// COORDS: 12 bytes per row (X, Y, Z), contiguous.
	if coords.RowBytes != 12 || coords.RowStride != 12 || coords.Offset != 0 {
		t.Errorf("coords segment = %+v", coords)
	}
	if len(coords.Attrs) != 3 || coords.Attrs[0].Name != "X" || coords.Attrs[2].Off != 8 {
		t.Errorf("coords attrs = %+v", coords.Attrs)
	}
	// DATA: 8 bytes per row (SOIL, SGAS), contiguous.
	if data.RowBytes != 8 || data.RowStride != 8 {
		t.Errorf("data segment = %+v", data)
	}
	// Implicits: REL from the file name, TIME from the chunk dimension.
	im := map[string]float64{}
	for _, i := range first.Implicits {
		im[i.Name] = i.Value.AsFloat()
	}
	if _, ok := im["REL"]; !ok {
		t.Errorf("missing REL implicit: %s", first.String())
	}
	if _, ok := im["TIME"]; !ok {
		t.Errorf("missing TIME implicit: %s", first.String())
	}
	// DIRID is not a schema attribute and must not leak into implicits.
	if _, ok := im["DIRID"]; ok {
		t.Error("DIRID leaked into implicits")
	}
	// Distinct (REL, TIME, dir) combinations across all AFCs: 2×100×4.
	seen := map[string]bool{}
	for i := range afcs {
		var rel, tm float64
		for _, im := range afcs[i].Implicits {
			switch im.Name {
			case "REL":
				rel = im.Value.AsFloat()
			case "TIME":
				tm = im.Value.AsFloat()
			}
		}
		if rel > 1 {
			t.Fatalf("REL=%g survived pruning", rel)
		}
		if tm < 1 || tm > 100 {
			t.Fatalf("TIME=%g outside query range", tm)
		}
		key := afcs[i].Segments[0].File + "|" + afcs[i].String()
		if seen[key] {
			t.Fatalf("duplicate AFC %s", key)
		}
		seen[key] = true
	}
}

func TestDataOffsets(t *testing.T) {
	p := compileIpars(t)
	// Pin REL=1, TIME=3, grid partition DIRID=2 (grid 201..300).
	q := sqlparser.MustParse("SELECT * FROM IparsData WHERE REL = 1 AND TIME = 3")
	afcs, err := p.Generate(query.ExtractRanges(q.Where), allAttrs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// One AFC per directory.
	if len(afcs) != 4 {
		t.Fatalf("AFCs = %d", len(afcs))
	}
	for _, a := range afcs {
		var data *Segment
		for i := range a.Segments {
			if strings.Contains(a.Segments[i].File, "DATA") {
				data = &a.Segments[i]
			}
		}
		if data == nil {
			t.Fatal("no data segment")
		}
		if !strings.HasSuffix(data.File, "DATA1") {
			t.Errorf("file = %s, want DATA1", data.File)
		}
		// Offset = (TIME-1)*100*8 = 1600 within each DATA file.
		if data.Offset != 1600 {
			t.Errorf("offset = %d, want 1600", data.Offset)
		}
		if a.NumRows != 100 {
			t.Errorf("rows = %d", a.NumRows)
		}
	}
}

func TestEmptyAndPrunedQueries(t *testing.T) {
	p := compileIpars(t)
	// TIME out of the stored range: everything pruned.
	q := sqlparser.MustParse("SELECT * FROM IparsData WHERE TIME > 9000")
	afcs, err := p.Generate(query.ExtractRanges(q.Where), allAttrs(), nil)
	if err != nil || len(afcs) != 0 {
		t.Errorf("out-of-range query: %d AFCs, %v", len(afcs), err)
	}
	// Contradictory ranges.
	q2 := sqlparser.MustParse("SELECT * FROM IparsData WHERE TIME > 10 AND TIME < 5")
	afcs, err = p.Generate(query.ExtractRanges(q2.Where), allAttrs(), nil)
	if err != nil || len(afcs) != 0 {
		t.Errorf("contradiction: %d AFCs, %v", len(afcs), err)
	}
	// REL without any match.
	q3 := sqlparser.MustParse("SELECT * FROM IparsData WHERE REL = 99")
	afcs, err = p.Generate(query.ExtractRanges(q3.Where), allAttrs(), nil)
	if err != nil || len(afcs) != 0 {
		t.Errorf("no-REL query: %d AFCs, %v", len(afcs), err)
	}
}

func TestFullScanCounts(t *testing.T) {
	p := compileIpars(t)
	afcs, err := p.Generate(query.Ranges{}, allAttrs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 RELs × 4 dirs groups... groups: COORDS class (4) × DATA class
	// (16) with DIRID agreement → 16 groups × 500 TIME chunks.
	if len(afcs) != 16*500 {
		t.Fatalf("AFCs = %d, want 8000", len(afcs))
	}
	var rows int64
	for _, a := range afcs {
		rows += a.NumRows
	}
	// 4 RELs × 500 TIMEs × 400 grid points.
	if rows != 4*500*400 {
		t.Errorf("rows = %d", rows)
	}
}

func TestProjectionSegments(t *testing.T) {
	p := compileIpars(t)
	// Needing only SOIL must not read COORDS bytes and must split SGAS
	// out of the data segment.
	q := sqlparser.MustParse("SELECT SOIL FROM IparsData WHERE REL = 0 AND TIME = 1")
	afcs, err := p.Generate(query.ExtractRanges(q.Where), []string{"SOIL"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs) != 4 {
		t.Fatalf("AFCs = %d", len(afcs))
	}
	for _, a := range afcs {
		if len(a.Segments) != 1 {
			t.Fatalf("segments = %s", a.String())
		}
		s := a.Segments[0]
		if !strings.HasSuffix(s.File, "DATA0") {
			t.Errorf("file = %s", s.File)
		}
		// SOIL only: 4 bytes per row at stride 8.
		if s.RowBytes != 4 || s.RowStride != 8 {
			t.Errorf("segment = %+v", s)
		}
		// Multiplicity is preserved: still one AFC per (REL, TIME, dir)
		// with 100 grid rows.
		if a.NumRows != 100 {
			t.Errorf("rows = %d", a.NumRows)
		}
	}
}

func TestCoverageErrors(t *testing.T) {
	p := compileIpars(t)
	if err := p.CheckCoverage([]string{"SOIL", "NOPE"}); err == nil {
		t.Error("missing attribute accepted")
	}
	if _, err := p.Generate(query.Ranges{}, []string{"NOPE"}, nil); err == nil {
		t.Error("Generate with missing attribute accepted")
	}
	avail := p.AvailableAttrs()
	want := "REL SGAS SOIL TIME X Y Z"
	if strings.Join(avail, " ") != want {
		t.Errorf("AvailableAttrs = %v", avail)
	}
}

func TestPlanStats(t *testing.T) {
	p := compileIpars(t)
	// 4 COORDS files of 1200 bytes + 16 DATA files of 400000 bytes.
	want := int64(4*1200 + 16*400000)
	if got := p.TotalDataBytes(); got != want {
		t.Errorf("TotalDataBytes = %d, want %d", got, want)
	}
}

const titanSrc = `
[TITAN]
X = int
Y = int
Z = int
S1 = float
S2 = float
S3 = float
S4 = float
S5 = float

[TitanData]
DatasetDescription = TITAN
DIR[0] = osu0/titan

Dataset "TitanData" {
  DATATYPE { TITAN }
  DATAINDEX { X Y Z }
  Dataset "chunks" {
    CHUNKED { X Y Z S1 S2 S3 S4 S5 }
    DATA { DIR[0]/chunks.dat PART = 0:0:1 }
    INDEXFILE { DIR[0]/chunks.idx PART = 0:0:1 }
  }
}
`

func titanLoader(t *testing.T) IndexLoader {
	t.Helper()
	// Two chunks: X,Y,Z boxes [0..9]^3 (50 rows at offset 0) and
	// [10..19]^3 (30 rows after the first chunk's 50×32 bytes).
	ix, err := index.Build([]string{"X", "Y", "Z"}, []index.ChunkMeta{
		{Offset: 0, NumRows: 50, Min: []float64{0, 0, 0}, Max: []float64{9, 9, 9}},
		{Offset: 50 * 32, NumRows: 30, Min: []float64{10, 10, 10}, Max: []float64{19, 19, 19}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return func(fi metadata.FileInstance) (*index.ChunkIndex, error) {
		return ix, nil
	}
}

func TestChunkedGenerate(t *testing.T) {
	d, err := metadata.Parse(titanSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(p.ChunkedLeaves) != 1 || p.ChunkedLeaves[0].RecordBytes != 3*4+5*4 {
		t.Fatalf("chunked plan = %+v", p.ChunkedLeaves)
	}
	needed := []string{"X", "Y", "Z", "S1", "S2", "S3", "S4", "S5"}

	// Query hitting only the first chunk.
	q := sqlparser.MustParse("SELECT * FROM TitanData WHERE X >= 0 AND X <= 5 AND Y <= 5 AND Z <= 5")
	afcs, err := p.Generate(query.ExtractRanges(q.Where), needed, titanLoader(t))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(afcs) != 1 || afcs[0].NumRows != 50 {
		t.Fatalf("afcs = %v", afcs)
	}
	s := afcs[0].Segments[0]
	if s.Offset != 0 || s.RowStride != 32 || s.RowBytes != 32 || len(s.Attrs) != 8 {
		t.Errorf("segment = %+v", s)
	}

	// Full scan hits both chunks.
	afcs, err = p.Generate(query.Ranges{}, needed, titanLoader(t))
	if err != nil || len(afcs) != 2 {
		t.Fatalf("full scan afcs = %d, %v", len(afcs), err)
	}
	if afcs[1].Segments[0].Offset != 50*32 {
		t.Errorf("second chunk offset = %d", afcs[1].Segments[0].Offset)
	}

	// Projection of a non-prefix subset splits segments.
	afcs, err = p.Generate(query.Ranges{}, []string{"X", "S1"}, titanLoader(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs[0].Segments) != 2 {
		t.Fatalf("projected segments = %s", afcs[0].String())
	}
	if afcs[0].Segments[0].RowBytes != 4 || afcs[0].Segments[1].Offset != 12 {
		t.Errorf("projected = %s", afcs[0].String())
	}

	// Missing loader errors.
	if _, err := p.Generate(query.Ranges{}, needed, nil); err == nil {
		t.Error("nil loader accepted for chunked plan")
	}

	// Index/descriptor attribute mismatch errors.
	badIx, _ := index.Build([]string{"X", "Y"}, nil)
	badLoader := func(fi metadata.FileInstance) (*index.ChunkIndex, error) { return badIx, nil }
	if _, err := p.Generate(query.Ranges{}, needed, badLoader); err == nil {
		t.Error("index attr mismatch accepted")
	}
}

func TestAFCBytesAndString(t *testing.T) {
	a := AFC{
		NumRows: 10,
		Segments: []Segment{
			{File: "f1", RowStride: 8, RowBytes: 8, Attrs: []SegAttr{{Name: "A"}}},
			{File: "f2", RowStride: 0, RowBytes: 4, Attrs: []SegAttr{{Name: "B"}}},
		},
	}
	if got := a.Bytes(); got != 84 {
		t.Errorf("Bytes = %d", got)
	}
	if s := a.String(); !strings.Contains(s, "rows=10") || !strings.Contains(s, ":f1@0") {
		t.Errorf("String = %q", s)
	}
}

func TestCompileErrors(t *testing.T) {
	// Loop variable colliding with a binding variable.
	src := `
[S]
A = float
T = int
[D]
DatasetDescription = S
DIR[0] = n0/d
Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP T 0:9:1 { A } }
  DATA { DIR[0]/f$T T = 0:9:1 }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Compile(d); err == nil {
		t.Error("loop/binding collision accepted")
	}
}
