package cache_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datavirt/internal/cache"
	"datavirt/internal/cache/cachetest"
)

// The cross-backend conformance suite: every workload below runs
// against the pread and mmap backends over identical real files and
// asserts byte-identical results with identical hit/miss/eviction
// sequences. Where the backends may differ is HOW a cold block gets
// its bytes — so FSBytesRead (bytes copied through the read path) is
// compared with ≤, never ==.

// writeConfFiles writes a deterministic set of awkwardly-sized files
// under a real directory (so the mmap backend can map them) and
// returns path → contents.
func writeConfFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	sizes := map[string]int{
		"empty":      0,
		"tiny":       7,         // smaller than any block
		"oneblock":   512,       // exactly one block at bs=512
		"big":        64 * 1024, // many blocks, several windows
		"pagecross":  4096 + 33, // spills past one page/window
		"blockcross": 512*5 + 1, // final block is a single byte
	}
	files := make(map[string][]byte, len(sizes))
	seed := int64(7000)
	for name, n := range sizes {
		seed++
		data := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(data)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		files[filepath.Join(dir, name)] = data
	}
	return files
}

// backendPair runs fn once per backend over the same file set and
// returns the two caches' final stats for cross-backend comparison.
func backendPair(t *testing.T, cfg cache.Config, files map[string][]byte,
	fn func(t *testing.T, c *cache.Cache, files map[string][]byte)) map[string]cache.Stats {
	t.Helper()
	stats := map[string]cache.Stats{}
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		bcfg := cfg
		bcfg.Backend = backend
		c := cache.New(bcfg)
		fn(t, c, files)
		st := c.Stats()
		if err := c.Close(); err != nil {
			t.Fatalf("%s: Close: %v", backend, err)
		}
		stats[backend] = st
	}
	return stats
}

// assertParity checks the invariants both backends must share: the
// lookup sequence (hits/misses/evictions) is identical, and mmap never
// copies more through the read path than pread.
func assertParity(t *testing.T, stats map[string]cache.Stats) {
	t.Helper()
	p, m := stats[cache.BackendPread], stats[cache.BackendMmap]
	if p.Hits != m.Hits || p.Misses != m.Misses || p.Evictions != m.Evictions {
		t.Errorf("lookup sequences diverge:\npread %+v\nmmap  %+v", p, m)
	}
	if p.BytesServed != m.BytesServed {
		t.Errorf("served bytes diverge: pread %d mmap %d", p.BytesServed, m.BytesServed)
	}
	if m.BytesRead > p.BytesRead {
		t.Errorf("mmap copied more than pread: %d > %d", m.BytesRead, p.BytesRead)
	}
}

// TestConformanceScripted runs a deterministic script of edge-case
// reads — block straddles, EOF boundaries, empty files, re-reads —
// against both backends.
func TestConformanceScripted(t *testing.T) {
	files := writeConfFiles(t, t.TempDir())
	cfg := cache.Config{BlockBytes: 512, MaxBytes: 1 << 20, MmapWindowBytes: 4096}
	stats := backendPair(t, cfg, files, func(t *testing.T, c *cache.Cache, files map[string][]byte) {
		for path, want := range files {
			r, err := c.Open(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			size := int64(len(want))
			// Offsets around every interesting boundary in the file.
			offs := []int64{0, 1, 511, 512, 513, 4095, 4096, 4097, size - 1, size, size + 100}
			lens := []int{1, 7, 512, 513, 4096}
			for _, off := range offs {
				if off < 0 {
					continue
				}
				for _, n := range lens {
					buf := make([]byte, n)
					got, err := r.ReadAt(buf, off)
					wantN := int(size - off)
					if wantN < 0 {
						wantN = 0
					}
					if wantN > n {
						wantN = n
					}
					if got != wantN {
						t.Fatalf("%s @%d+%d: n=%d want %d (err %v)", path, off, n, got, wantN, err)
					}
					if wantN < n && err == nil {
						t.Fatalf("%s @%d+%d: short read with nil error", path, off, n)
					}
					if got > 0 && !bytes.Equal(buf[:got], want[off:off+int64(got)]) {
						t.Fatalf("%s @%d+%d: bytes differ", path, off, n)
					}
				}
			}
			// Single-block views on both backends.
			if v, ok := r.(cache.Viewer); ok {
				for _, off := range []int64{0, 512, 1024} {
					if off+256 > size {
						continue
					}
					if data, ok := v.ViewAt(off, 256); ok {
						if !bytes.Equal(data, want[off:off+256]) {
							t.Fatalf("%s: ViewAt(%d, 256) bytes differ", path, off)
						}
					}
				}
			}
			r.Release()
		}
	})
	assertParity(t, stats)
}

// TestConformanceRandomized replays the same seeded random workload —
// interleaved reads across files, sizes spanning many blocks — on both
// backends and requires byte-identical results and lookup parity.
func TestConformanceRandomized(t *testing.T) {
	files := writeConfFiles(t, t.TempDir())
	var paths []string
	for p := range files {
		paths = append(paths, p)
	}
	// Small budget forces evictions; a small window forces remaps.
	cfg := cache.Config{BlockBytes: 512, MaxBytes: 8 << 10, Shards: 2, MmapWindowBytes: 4096}
	stats := backendPair(t, cfg, files, func(t *testing.T, c *cache.Cache, files map[string][]byte) {
		rng := rand.New(rand.NewSource(99))
		readers := map[string]cache.Reader{}
		defer func() {
			for _, r := range readers {
				r.Release()
			}
		}()
		for i := 0; i < 4000; i++ {
			path := paths[rng.Intn(len(paths))]
			want := files[path]
			r := readers[path]
			if r == nil {
				var err error
				r, err = c.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				readers[path] = r
			}
			if len(want) == 0 {
				buf := make([]byte, 8)
				if n, _ := r.ReadAt(buf, 0); n != 0 {
					t.Fatalf("%s: read %d bytes from an empty file", path, n)
				}
				continue
			}
			off := rng.Int63n(int64(len(want)))
			n := 1 + rng.Intn(2048)
			buf := make([]byte, n)
			got, err := r.ReadAt(buf, off)
			if int64(got) != min64(int64(n), int64(len(want))-off) {
				t.Fatalf("%s @%d+%d: n=%d err=%v", path, off, n, got, err)
			}
			if !bytes.Equal(buf[:got], want[off:off+int64(got)]) {
				t.Fatalf("%s @%d+%d: bytes differ", path, off, n)
			}
			// Occasionally take a view of the same span's first block.
			if v, ok := r.(cache.Viewer); ok && i%7 == 0 {
				vn := rng.Intn(256) + 1
				if data, ok := v.ViewAt(off, vn); ok {
					if !bytes.Equal(data, want[off:off+int64(vn)]) {
						t.Fatalf("%s: ViewAt(%d,%d) bytes differ", path, off, vn)
					}
				}
			}
		}
	})
	assertParity(t, stats)
	if mmapOK() && stats[cache.BackendMmap].MmapBlocksServed == 0 {
		t.Error("mmap backend served no blocks from mappings on this platform")
	}
}

// TestConformanceWarmPassesReadNothing checks the defining cache
// invariant on both backends: a warm re-scan does zero physical I/O.
func TestConformanceWarmPassesReadNothing(t *testing.T) {
	dir := t.TempDir()
	want := make([]byte, 32*1024)
	rand.New(rand.NewSource(123)).Read(want)
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		t.Run(backend, func(t *testing.T) {
			c := cache.New(cache.Config{BlockBytes: 1024, Backend: backend})
			defer c.Close()
			scan := func() cache.Counters {
				r, err := c.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Release()
				buf := make([]byte, 1024)
				for off := int64(0); off < int64(len(want)); off += 1024 {
					if _, err := r.ReadAt(buf, off); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf, want[off:off+1024]) {
						t.Fatalf("bytes differ at %d", off)
					}
				}
				return r.Counters()
			}
			cold := scan()
			warm := scan()
			if cold.Misses == 0 || cold.BytesRead+int64(cold.MmapBlocksServed) == 0 {
				t.Errorf("cold scan saw no traffic: %+v", cold)
			}
			if warm.BytesRead != 0 || warm.Misses != 0 {
				t.Errorf("warm scan was not free: %+v", warm)
			}
			if warm.Hits != cold.Hits+cold.Misses {
				t.Errorf("warm hits = %d, want %d", warm.Hits, cold.Hits+cold.Misses)
			}
		})
	}
}

// TestConformanceMmapRefusalFallback injects the mmap-refusal fault
// (an unmappable descriptor) under the mmap backend and checks the
// pread fallback serves every byte.
func TestConformanceMmapRefusalFallback(t *testing.T) {
	dir := t.TempDir()
	want := make([]byte, 16*1024)
	rand.New(rand.NewSource(321)).Read(want)
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	disk := &cachetest.Disk{RefuseMmap: true}
	c := cache.New(cache.Config{BlockBytes: 1024, Backend: cache.BackendMmap, OpenFile: disk.Open})
	defer c.Close()
	got := readAll(t, c, path, 0, len(want))
	if !bytes.Equal(got, want) {
		t.Fatal("fallback served wrong bytes")
	}
	st := c.Stats()
	if st.MmapBlocksServed != 0 {
		t.Errorf("refused mapping still served %d blocks", st.MmapBlocksServed)
	}
	if st.BytesRead != int64(len(want)) || disk.Reads.Load() == 0 {
		t.Errorf("fallback did not pread the file: %+v (%d physical reads)", st, disk.Reads.Load())
	}
}

// TestConformanceFaultsUnderBothBackends runs the injected open and
// read faults through a Disk opener under each backend (RefuseMmap
// keeps even the mmap backend on the counted pread path) and checks
// identical error-and-recovery behavior.
func TestConformanceFaultsUnderBothBackends(t *testing.T) {
	dir := t.TempDir()
	want := make([]byte, 8192)
	rand.New(rand.NewSource(55)).Read(want)
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		t.Run(backend, func(t *testing.T) {
			disk := &cachetest.Disk{RefuseMmap: true}
			c := cache.New(cache.Config{BlockBytes: 1024, Backend: backend, OpenFile: disk.Open})
			defer c.Close()

			disk.FailNextOpens(1)
			if _, err := c.Open(path); err == nil {
				t.Fatal("open fault did not surface")
			}
			r, err := c.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Release()
			disk.FailReadNumber(disk.Reads.Load() + 1)
			buf := make([]byte, 1024)
			if _, err := r.ReadAt(buf, 0); err == nil {
				t.Fatal("read fault did not surface")
			}
			if _, err := r.ReadAt(buf, 0); err != nil {
				t.Fatalf("retry after read fault: %v", err)
			}
			if !bytes.Equal(buf, want[:1024]) {
				t.Fatal("retry served wrong bytes")
			}
		})
	}
}

// TestConformanceCloseStorm races concurrent readers against Close on
// both backends under -race: reads that lose the race may error, but
// nothing may panic, leak, or return wrong bytes.
func TestConformanceCloseStorm(t *testing.T) {
	files := writeConfFiles(t, t.TempDir())
	var paths []string
	for p := range files {
		if len(files[p]) > 0 {
			paths = append(paths, p)
		}
	}
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		t.Run(backend, func(t *testing.T) {
			c := cache.New(cache.Config{
				BlockBytes: 512, MaxBytes: 8 << 10, Shards: 2,
				MmapWindowBytes: 4096, Backend: backend, Readahead: 2,
			})
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 400; i++ {
						path := paths[rng.Intn(len(paths))]
						want := files[path]
						r, err := c.Open(path)
						if err != nil {
							return // lost the race to Close
						}
						off := rng.Int63n(int64(len(want)))
						n := 1 + rng.Intn(1024)
						buf := make([]byte, n)
						got, _ := r.ReadAt(buf, off) // losing the race to Close is an error, never corruption
						if !bytes.Equal(buf[:got], want[off:off+int64(got)]) {
							r.Release()
							panic(fmt.Sprintf("%s @%d+%d: corrupt bytes", path, off, n))
						}
						r.Release()
					}
				}(w)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
		})
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// mmapOK reports whether this platform's mmap backend actually maps
// (ResolveBackend("auto") picks mmap only where supported).
func mmapOK() bool {
	b, err := cache.ResolveBackend(cache.BackendAuto)
	return err == nil && b == cache.BackendMmap
}
