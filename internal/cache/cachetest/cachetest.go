// Package cachetest provides the shared test doubles for code that
// reads through internal/cache: an in-memory fake filesystem (FS) and
// a counting wrapper over real files (Disk), both pluggable into
// cache.Config.OpenFile and both with injectable fault points — open
// failures, an I/O error on the Nth physical read, short reads, and
// (for Disk) mmap refusal forcing the mmap backend's pread fallback.
// The cache, extractor and core test suites all build on it, so every
// layer exercises the same failure modes.
package cachetest

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"datavirt/internal/cache"
)

// Injected fault errors, distinguishable from real failures.
var (
	// ErrIO is returned by a read the faults selected for failure.
	ErrIO = errors.New("cachetest: injected I/O error")
	// ErrOpen is returned by an open the faults selected for failure.
	ErrOpen = errors.New("cachetest: injected open failure")
)

// Faults are the injectable failure points, safe for concurrent use;
// the zero value injects nothing. FS and Disk embed it.
type Faults struct {
	failOpens atomic.Int64
	failRead  atomic.Int64
	shortRead atomic.Int64
	readDelay atomic.Int64
}

// FailNextOpens makes the next n opens fail with ErrOpen.
func (f *Faults) FailNextOpens(n int) { f.failOpens.Store(int64(n)) }

// FailReadNumber makes the nth physical read (1-based, counted across
// all files) fail with ErrIO; 0 disarms.
func (f *Faults) FailReadNumber(n int64) { f.failRead.Store(n) }

// LimitReadBytes caps how many bytes each physical read delivers.
// Reads asked for more return a short count with a nil error — the
// lazy-reader shape io.ReaderAt implementations are allowed to take
// only at EOF, which callers above the cache must surface as a clean
// error rather than decode as data. 0 disarms.
func (f *Faults) LimitReadBytes(n int) { f.shortRead.Store(int64(n)) }

// SetReadDelay stalls every physical read by d, letting concurrent
// callers pile onto the cache's single-flight path.
func (f *Faults) SetReadDelay(d time.Duration) { f.readDelay.Store(int64(d)) }

// openFault consumes one pending open failure, if armed.
func (f *Faults) openFault() error {
	for {
		n := f.failOpens.Load()
		if n <= 0 {
			return nil
		}
		if f.failOpens.CompareAndSwap(n, n-1) {
			return ErrOpen
		}
	}
}

// readFault applies the read-level faults to the readNo-th physical
// read: an injected error, or a shortened destination buffer.
func (f *Faults) readFault(readNo int64, p []byte) ([]byte, error) {
	if d := f.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if n := f.failRead.Load(); n > 0 && readNo == n {
		return nil, ErrIO
	}
	if max := f.shortRead.Load(); max > 0 && int64(len(p)) > max {
		p = p[:max]
	}
	return p, nil
}

// FS is an in-memory fake filesystem that counts physical opens, reads
// and closes — the observability leak and single-flight tests need.
// Its files carry no descriptor, so under the mmap cache backend they
// are unmappable and served through the pread path; use Disk for
// mapping-path coverage.
type FS struct {
	Faults
	Opens  atomic.Int64
	Reads  atomic.Int64
	Closes atomic.Int64

	mu    sync.Mutex
	files map[string][]byte //dvlint:guardedby mu
}

// NewFS returns an empty fake filesystem.
func NewFS() *FS { return &FS{files: map[string][]byte{}} }

// Put installs n deterministically pseudorandom bytes (by seed) at
// path and returns them.
func (fs *FS) Put(path string, n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	fs.PutBytes(path, data)
	return data
}

// PutBytes installs data at path.
func (fs *FS) PutBytes(path string, data []byte) {
	fs.mu.Lock()
	fs.files[path] = data
	fs.mu.Unlock()
}

// Bytes returns the current contents of path (nil if absent).
func (fs *FS) Bytes(path string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.files[path]
}

// WriteDir materializes every file under dir on the real filesystem,
// so the same workload can run against fake and real files (the
// cross-backend conformance suite does this to put the mmap backend
// over identical content).
func (fs *FS) WriteDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for path, data := range fs.files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Open is the cache.Config.OpenFile hook.
func (fs *FS) Open(path string) (cache.File, error) {
	fs.mu.Lock()
	data, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cachetest: no file %q", path)
	}
	if err := fs.openFault(); err != nil {
		return nil, err
	}
	fs.Opens.Add(1)
	return &memFile{fs: fs, data: data}, nil
}

type memFile struct {
	fs     *FS
	data   []byte
	closed atomic.Int64
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() > 0 {
		return 0, fmt.Errorf("cachetest: read of closed file")
	}
	readNo := f.fs.Reads.Add(1)
	dst, err := f.fs.readFault(readNo, p)
	if err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(dst, f.data[off:])
	if n < len(dst) {
		return n, io.EOF
	}
	return n, nil // may be short of len(p) under LimitReadBytes
}

func (f *memFile) Close() error {
	if f.closed.Add(1) > 1 {
		panic("cachetest: double close")
	}
	f.fs.Closes.Add(1)
	return nil
}

// Disk opens real files through os.Open with the same counters and
// fault points as FS — the opener extractor and core tests hand to
// cache.Config.OpenFile when they want physical-I/O accounting over
// generated datasets. Configure the Mappable/RefuseMmap knobs before
// the first Open.
type Disk struct {
	Faults
	Opens  atomic.Int64
	Reads  atomic.Int64
	Closes atomic.Int64

	// Mappable passes the real descriptor through, so the mmap cache
	// backend can map the file (mapped reads bypass the Reads counter —
	// that is the point of the backend). Default: the descriptor is
	// hidden and every backend reads through ReadAt.
	Mappable bool
	// RefuseMmap advertises an invalid descriptor instead: the mmap
	// backend attempts to map, fails, and must fall back to pread
	// without data loss. Takes precedence over Mappable.
	RefuseMmap bool
}

// Open is the cache.Config.OpenFile hook.
func (d *Disk) Open(path string) (cache.File, error) {
	if err := d.openFault(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	d.Opens.Add(1)
	df := &diskFile{d: d, f: f}
	switch {
	case d.RefuseMmap:
		return refusingFile{df}, nil
	case d.Mappable:
		return mappableFile{df}, nil
	}
	return df, nil
}

type diskFile struct {
	d      *Disk
	f      *os.File
	closed atomic.Int64
}

func (f *diskFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() > 0 {
		return 0, fmt.Errorf("cachetest: read of closed file")
	}
	readNo := f.d.Reads.Add(1)
	dst, err := f.d.readFault(readNo, p)
	if err != nil {
		return 0, err
	}
	n, err := f.f.ReadAt(dst, off)
	if err == nil && n == len(dst) {
		return n, nil // may be short of len(p) under LimitReadBytes
	}
	return n, err
}

func (f *diskFile) Close() error {
	if f.closed.Add(1) > 1 {
		panic("cachetest: double close")
	}
	f.d.Closes.Add(1)
	return f.f.Close()
}

// mappableFile exposes the real descriptor for the mmap backend.
type mappableFile struct{ *diskFile }

func (m mappableFile) Fd() uintptr                { return m.diskFile.f.Fd() }
func (m mappableFile) Stat() (os.FileInfo, error) { return m.diskFile.f.Stat() }

// refusingFile advertises an invalid descriptor: mapping attempts fail
// at the mmap syscall and the cache degrades the file to pread.
type refusingFile struct{ *diskFile }

func (r refusingFile) Fd() uintptr                { return ^uintptr(0) }
func (r refusingFile) Stat() (os.FileInfo, error) { return r.diskFile.f.Stat() }
