// Package cache is the node-local caching layer between the extraction
// engine and the filesystem. It exists because the hot path of the
// paper's design re-reads aligned file chunks from flat files on every
// query: STORM's data-source service gets no reuse across queries even
// when interactive clients zoom and pan over overlapping spatial
// ranges. The cache turns those repeated chunk reads into memory hits.
//
// Three cooperating pieces:
//
//   - a bounded file-handle cache (LRU over open files, close-on-evict,
//     reference-counted so a handle is never closed under a concurrent
//     ReadAt) — see handles.go;
//   - a sharded block cache: fixed-size aligned blocks keyed by
//     (path, blockNo), per-shard LRU eviction under a byte budget, with
//     single-flight loading so N concurrent workers asking for the same
//     block issue exactly one filesystem read;
//   - an optional sequential readahead prefetcher that detects forward
//     scans within a reader and pre-populates the next blocks off the
//     critical path — see readahead.go.
//
// The extractor consumes the cache through the Source/Reader interfaces
// and never touches os.Open directly; one Cache instance is shared
// across queries by core.Service (and therefore by every cluster node
// server built on it).
package cache

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// File is the cache's view of one underlying file. The default opener
// wraps *os.File; tests substitute counting fakes through
// Config.OpenFile.
type File interface {
	io.ReaderAt
	io.Closer
}

// Source opens named byte sources for the extraction engine.
// Implementations must be safe for concurrent use.
type Source interface {
	// Open returns a reader positioned over the file at path. Each
	// extraction goroutine opens its own Reader (readers are not safe
	// for concurrent use; the Source and the cache behind it are).
	Open(path string) (Reader, error)
}

// Reader reads one file through the cache. A Reader is owned by a
// single goroutine; Release returns its resources (the file-handle
// reference) to the cache. ReadAt follows the io.ReaderAt contract:
// a read past the end of the file returns io.EOF with a short count.
type Reader interface {
	io.ReaderAt
	// Release returns the reader's handle reference; the reader must
	// not be used afterwards. Release is idempotent.
	Release()
	// Counters snapshots the reader's demand-read counters (readahead
	// I/O is accounted only on the cache's global Stats).
	Counters() Counters
}

// Viewer is the optional Reader extension for zero-copy access: when a
// span fits inside one cache block, ViewAt hands out the cached bytes
// themselves — a slice of the immutable block buffer on the pread
// backend, a slice of the file mapping on the mmap backend — instead
// of copying them out. Both backends implement it, so callers probe
// once and keep a single code path.
type Viewer interface {
	// ViewAt returns a read-only slice over [off, off+n), valid until
	// the Reader is Released; the caller must not write to it or retain
	// it past Release. ok is false when the span crosses a block
	// boundary, runs past EOF, the read fails, or the reader is in
	// disabled mode — callers fall back to ReadAt.
	ViewAt(off int64, n int) (data []byte, ok bool)
}

// Counters are one reader's demand-read totals.
type Counters struct {
	// Hits and Misses count block lookups (zero in disabled mode).
	Hits   int64
	Misses int64
	// BytesRead is the bytes this reader's demand loads pulled from the
	// filesystem (positional reads only; mmap views touch no read path).
	BytesRead int64
	// BytesServed is the bytes delivered to the caller.
	BytesServed int64
	// MmapBlocksServed counts block lookups served zero-copy from a
	// file mapping; MmapRemaps counts mapping windows this reader's
	// loads created beyond each file's first.
	MmapBlocksServed int64
	MmapRemaps       int64
}

// Stats is a snapshot of the cache's global counters.
type Stats struct {
	// Hits and Misses count demand block lookups.
	Hits   int64
	Misses int64
	// Evictions counts blocks dropped under byte pressure.
	Evictions int64
	// Prefetches counts blocks loaded by the readahead worker;
	// PrefetchHits counts demand lookups served by a prefetched block.
	Prefetches   int64
	PrefetchHits int64
	// BytesRead is bytes pulled from the filesystem (demand + readahead);
	// BytesServed is bytes delivered to readers. The difference is the
	// I/O the cache saved.
	BytesRead   int64
	BytesServed int64
	// MmapBlocksServed counts demand block lookups served zero-copy
	// from a file mapping (such blocks contribute nothing to
	// BytesRead); MmapRemaps counts mapping windows created beyond each
	// file's first.
	MmapBlocksServed int64
	MmapRemaps       int64
	// HandleOpens and HandleEvicts count file-handle churn.
	HandleOpens  int64
	HandleEvicts int64
	// Blocks and Bytes are the current residency.
	Blocks int64
	Bytes  int64
}

// BytesSaved is the filesystem I/O avoided: bytes served minus bytes
// actually read (clamped at zero for cold caches with readahead waste).
func (s Stats) BytesSaved() int64 {
	if v := s.BytesServed - s.BytesRead; v > 0 {
		return v
	}
	return 0
}

// Defaults applied by New for zero Config fields.
const (
	DefaultMaxBytes        = 64 << 20
	DefaultBlockBytes      = 256 << 10
	DefaultMaxHandles      = 128
	DefaultMmapWindowBytes = 1 << 30
	defaultShards          = 16
)

// Backend names accepted by Config.Backend and ResolveBackend.
const (
	// BackendPread copies blocks out of files with positional reads.
	BackendPread = "pread"
	// BackendMmap serves resident blocks as zero-copy views of chunked
	// read-only file mappings, falling back to pread per file when a
	// file cannot be mapped (fakes without descriptors, non-regular
	// files, a refused mmap syscall).
	BackendMmap = "mmap"
	// BackendAuto picks mmap where the platform supports it, pread
	// elsewhere.
	BackendAuto = "auto"
)

// backendEnv overrides the backend for an empty Config.Backend — the
// seam CI uses to run the whole test matrix under both backends.
const backendEnv = "DATAVIRT_CACHE_BACKEND"

// ResolveBackend canonicalizes a backend name to pread or mmap. Empty
// consults the DATAVIRT_CACHE_BACKEND environment variable and then
// defaults to pread; auto resolves by platform support; mmap on an
// unsupported platform degrades to pread, so configurations stay
// portable and only the zero-copy serving is lost. Unknown names are
// an error.
func ResolveBackend(name string) (string, error) {
	if name == "" {
		name = os.Getenv(backendEnv)
	}
	switch name {
	case "", BackendPread:
		return BackendPread, nil
	case BackendMmap, BackendAuto:
		if mmapSupported {
			return BackendMmap, nil
		}
		return BackendPread, nil
	default:
		return "", fmt.Errorf("cache: unknown backend %q (want %s, %s or %s)", name, BackendPread, BackendMmap, BackendAuto)
	}
}

// Config sizes a Cache. The zero value gives a 64 MiB cache of 256 KiB
// blocks over at most 128 open handles, with readahead off.
type Config struct {
	// MaxBytes is the block cache byte budget (approximate: it is split
	// evenly across shards and each shard keeps at least one block).
	MaxBytes int64
	// BlockBytes is the aligned block size.
	BlockBytes int
	// MaxHandles bounds the open file handles pooled by the cache.
	// Handles pinned by active readers can exceed the bound transiently;
	// they are closed as soon as the last reference is released.
	MaxHandles int
	// Readahead is how many blocks the prefetcher loads ahead of a
	// detected forward scan; 0 disables readahead.
	Readahead int
	// Disabled bypasses the block layer entirely: readers perform direct
	// positional reads, but handles are still pooled and byte counters
	// still maintained. This is the configuration for `-cache-mb 0`.
	Disabled bool
	// Shards is the number of block-cache shards (default 16).
	Shards int
	// Backend selects how cold blocks are loaded: BackendPread (the
	// default) copies through positional reads, BackendMmap serves
	// blocks as views of read-only file mappings, BackendAuto picks
	// mmap where supported. Empty consults DATAVIRT_CACHE_BACKEND; see
	// ResolveBackend.
	Backend string
	// MmapWindowBytes caps each mapping segment under BackendMmap
	// (default 1 GiB, rounded up to a whole number of pages); larger
	// files get several windows, mapped on demand. Blocks straddling a
	// window boundary load via pread.
	MmapWindowBytes int64
	// OpenFile opens underlying files; defaults to os.Open. Tests use it
	// to count physical opens and reads.
	OpenFile func(path string) (File, error)
}

// blockKey names one cached block.
type blockKey struct {
	path    string
	blockNo int64
}

// entry is one resident block. On the pread backend data is an
// immutable heap buffer, so readers may copy from it without holding
// the shard lock. On the mmap backend data may instead alias a file
// mapping; such an entry holds a reference (h) on the handle owning
// the mapping, so "eviction unmaps": dropping the entry releases the
// reference, and the last release closes the handle, which unmaps.
type entry struct {
	key        blockKey
	data       []byte
	eof        bool    // the block ends at (or past) the end of the file
	prefetched bool    // loaded by the readahead worker, not yet demanded
	h          *handle // non-nil iff data aliases h's file mapping
	elem       *list.Element
}

// flight is one in-progress block load; concurrent callers for the
// same block wait on done instead of issuing their own read.
type flight struct {
	done   chan struct{}
	data   []byte
	eof    bool
	viewed bool // data aliases a mapping pinned only by the cache entry
	err    error
}

// blockRes is one getBlock result. When pin is non-nil the data slice
// aliases a mapping owned by a handle other than the caller's, and the
// call transferred one reference on it to the caller, who must release
// it once done with the data (readers keep such pins until Release).
type blockRes struct {
	data   []byte
	eof    bool
	viewed bool // served zero-copy from a file mapping
	pin    *handle
}

// shard is one lock domain of the block cache.
type shard struct {
	mu       sync.Mutex
	entries  map[blockKey]*entry  //dvlint:guardedby mu
	flights  map[blockKey]*flight //dvlint:guardedby mu
	lru      *list.List           //dvlint:guardedby mu (front = most recent)
	bytes    int64                //dvlint:guardedby mu
	maxBytes int64                // immutable after New
}

// Cache is the node-local block cache. Safe for concurrent use; one
// instance is shared across every query of a service.
type Cache struct {
	cfg     Config
	handles *handleCache
	shards  []shard

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	prefetches   atomic.Int64
	prefetchHits atomic.Int64
	bytesRead    atomic.Int64
	bytesServed  atomic.Int64
	mmapServed   atomic.Int64
	mmapRemaps   atomic.Int64

	pfCh      chan prefetchReq
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a cache, normalizing zero Config fields to the defaults.
// Close must be called to release pooled handles and stop the
// readahead worker.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = DefaultBlockBytes
	}
	if cfg.MaxHandles <= 0 {
		cfg.MaxHandles = DefaultMaxHandles
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.OpenFile == nil {
		cfg.OpenFile = func(path string) (File, error) { return os.Open(path) }
	}
	if b, err := ResolveBackend(cfg.Backend); err == nil {
		cfg.Backend = b
	} else {
		cfg.Backend = BackendPread
	}
	if cfg.MmapWindowBytes <= 0 {
		cfg.MmapWindowBytes = DefaultMmapWindowBytes
	}
	if ps := int64(os.Getpagesize()); cfg.MmapWindowBytes%ps != 0 {
		cfg.MmapWindowBytes += ps - cfg.MmapWindowBytes%ps
	}
	if cfg.Backend == BackendMmap && !cfg.Disabled {
		// Wrap the opener so pooled handles come back mmap-backed where
		// possible. Disabled mode skips the block layer entirely, so
		// views would never be asked for — leave its reads positional.
		open, window := cfg.OpenFile, cfg.MmapWindowBytes
		cfg.OpenFile = func(path string) (File, error) {
			f, err := open(path)
			if err != nil {
				return nil, err
			}
			return wrapMmap(f, window), nil
		}
	}
	c := &Cache{
		cfg:     cfg,
		handles: newHandleCache(cfg.MaxHandles, cfg.OpenFile),
		shards:  make([]shard, cfg.Shards),
		done:    make(chan struct{}),
	}
	perShard := cfg.MaxBytes / int64(cfg.Shards)
	if perShard < int64(cfg.BlockBytes) {
		perShard = int64(cfg.BlockBytes)
	}
	for i := range c.shards {
		c.shards[i].entries = map[blockKey]*entry{}
		c.shards[i].flights = map[blockKey]*flight{}
		c.shards[i].lru = list.New()
		c.shards[i].maxBytes = perShard
	}
	if !cfg.Disabled && cfg.Readahead > 0 {
		c.pfCh = make(chan prefetchReq, prefetchQueue)
		c.wg.Add(1)
		go c.prefetchLoop()
	}
	return c
}

// Close stops the readahead worker, closes every pooled handle and
// drops all cached blocks. Readers still open keep their handle alive
// until Release; new reads through them fail once the handle is
// released and closed. Close is idempotent.
func (c *Cache) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	// Drop resident blocks first, releasing the handle references of
	// view-backed entries (outside the shard locks — a release may
	// close, which may unmap), so closeAll then sees them unreferenced.
	var pinned []*handle
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			if e.h != nil {
				pinned = append(pinned, e.h)
				e.h = nil
			}
		}
		s.entries = map[blockKey]*entry{}
		s.lru.Init()
		s.bytes = 0
		s.mu.Unlock()
	}
	for _, h := range pinned {
		c.handles.release(h)
	}
	c.handles.closeAll()
	return nil
}

// Open implements Source.
func (c *Cache) Open(path string) (Reader, error) {
	h, err := c.handles.acquire(path)
	if err != nil {
		return nil, err
	}
	return &reader{c: c, path: path, h: h, lastBlock: -2, memoNo: -1}, nil
}

// Stats snapshots the global counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Prefetches:   c.prefetches.Load(),
		PrefetchHits: c.prefetchHits.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesServed:  c.bytesServed.Load(),

		MmapBlocksServed: c.mmapServed.Load(),
		MmapRemaps:       c.mmapRemaps.Load(),
	}
	st.HandleOpens, st.HandleEvicts = c.handles.stats()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Blocks += int64(len(s.entries))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

func (c *Cache) shard(k blockKey) *shard {
	// FNV-1a over the path plus the block number spreads neighbouring
	// blocks of one file across shards, so a sequential scan does not
	// serialize on a single lock.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.path); i++ {
		h ^= uint64(k.path[i])
		h *= 1099511628211
	}
	h ^= uint64(k.blockNo)
	h *= 1099511628211
	return &c.shards[h%uint64(len(c.shards))]
}

// contains reports block residency without promoting it (used by the
// prefetcher to skip work cheaply).
func (c *Cache) contains(k blockKey) bool {
	s := c.shard(k)
	s.mu.Lock()
	_, resident := s.entries[k]
	_, loading := s.flights[k]
	s.mu.Unlock()
	return resident || loading
}

// getBlock returns the named block, loading it through the
// single-flight path on a miss. ctr receives the demand attribution
// (nil for prefetch loads). Pread-backed results are immutable heap
// slices; view-backed results stay valid for as long as the caller
// holds the loading handle h (plus the returned pin, when set).
func (c *Cache) getBlock(h *handle, k blockKey, ctr *Counters, prefetch bool) (blockRes, error) {
	s := c.shard(k)
	waited := false
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok {
			s.lru.MoveToFront(e.elem)
			wasPrefetched := e.prefetched
			e.prefetched = false
			res := blockRes{data: e.data, eof: e.eof, viewed: e.h != nil}
			if !prefetch && e.h != nil && e.h != h {
				// The view belongs to another handle's mapping (ours was
				// evicted and the path reopened); pin it for the caller so
				// the data survives this entry's eviction. ref is a bare
				// counter bump — safe under the shard lock.
				c.handles.ref(e.h)
				res.pin = e.h
			}
			s.mu.Unlock()
			if !prefetch {
				if waited {
					// We waited out another goroutine's load: that is a
					// miss from this caller's perspective, as before the
					// retry loop existed.
					c.misses.Add(1)
					ctr.Misses++
				} else {
					c.hits.Add(1)
					ctr.Hits++
					if wasPrefetched {
						c.prefetchHits.Add(1)
					}
				}
				if res.viewed {
					ctr.MmapBlocksServed++
				}
			}
			return res, nil
		}
		if f, ok := s.flights[k]; ok {
			s.mu.Unlock()
			if prefetch {
				return blockRes{}, nil // someone is already loading it
			}
			<-f.done
			if f.err != nil {
				c.misses.Add(1)
				ctr.Misses++
				return blockRes{}, f.err
			}
			if !f.viewed {
				c.misses.Add(1)
				ctr.Misses++
				return blockRes{data: f.data, eof: f.eof}, nil
			}
			// View-backed flight: its slice is pinned only by the cache
			// entry, which may be evicted (and the mapping unmapped) any
			// time after done closes. Retry the lookup to take a pin of
			// our own — or to reload if the entry is already gone.
			waited = true
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[k] = f
		s.mu.Unlock()
		return c.loadBlock(s, h, k, f, ctr, prefetch)
	}
}

// loadBlock performs the cold half of getBlock: read or map the block,
// publish the flight, install the entry, evict under byte pressure.
// The caller has already registered f in s.flights.
func (c *Cache) loadBlock(s *shard, h *handle, k blockKey, f *flight, ctr *Counters, prefetch bool) (blockRes, error) {
	off := k.blockNo * int64(c.cfg.BlockBytes)
	var (
		data   []byte
		eof    bool
		viewed bool
		remaps int64
		err    error
	)
	if v, ok := h.f.(blockViews); ok {
		data, eof, remaps, err = v.view(off, int64(c.cfg.BlockBytes))
		viewed = err == nil
	}
	if !viewed {
		// The pread path: the default backend, and the mmap backend's
		// fallback when this file cannot be mapped.
		buf := make([]byte, c.cfg.BlockBytes)
		var n int
		n, err = h.f.ReadAt(buf, off)
		eof = false
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			eof, err = true, nil
		}
		if err == nil {
			data = buf[:n]
		}
	}
	if err != nil {
		f.err = fmt.Errorf("cache: reading %s block %d: %w", k.path, k.blockNo, err)
		s.mu.Lock()
		delete(s.flights, k)
		s.mu.Unlock()
		close(f.done)
		if !prefetch {
			c.misses.Add(1)
			ctr.Misses++
		}
		return blockRes{}, f.err
	}
	f.data, f.eof, f.viewed = data, eof, viewed
	if viewed {
		c.mmapRemaps.Add(remaps)
	} else {
		c.bytesRead.Add(int64(len(data)))
	}
	if prefetch {
		c.prefetches.Add(1)
	} else {
		c.misses.Add(1)
		ctr.Misses++
		if viewed {
			ctr.MmapBlocksServed++
			ctr.MmapRemaps += remaps
		} else {
			ctr.BytesRead += int64(len(data))
		}
	}

	e := &entry{key: k, data: data, eof: eof, prefetched: prefetch}
	if viewed {
		// The entry keeps the mapping alive past our caller's handle
		// reference; evicting the entry drops it again.
		c.handles.ref(h)
		e.h = h
	}
	var victims []*handle
	s.mu.Lock()
	delete(s.flights, k)
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.bytes += int64(len(data))
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		tail := s.lru.Back()
		victim := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.entries, victim.key)
		s.bytes -= int64(len(victim.data))
		c.evictions.Add(1)
		if victim.h != nil {
			// Handle releases may close (and unmap) — run them after the
			// shard lock is dropped.
			victims = append(victims, victim.h)
			victim.h = nil
		}
	}
	s.mu.Unlock()
	close(f.done)
	for _, vh := range victims {
		c.handles.release(vh)
	}
	return blockRes{data: data, eof: eof, viewed: viewed}, nil
}

// reader is the Reader implementation for both cached and disabled
// modes. It is single-goroutine by contract, so its counters and scan
// state need no synchronization.
type reader struct {
	c    *Cache
	path string
	h    *handle
	ctr  Counters

	// lastBlock tracks the most recent demand block for sequential-scan
	// detection (-2 = no access yet, so the very first block does not
	// count as "forward progress").
	lastBlock int64
	released  bool

	// memo holds the most recent block touched by this reader, served
	// without the shard lock: sequential small reads land in the same
	// block hundreds of times in a row, and this keeps the hot path at
	// memcpy cost. Pread block data is immutable, so the memo stays
	// valid even after the block is evicted (it pins at most one block
	// per reader); view-backed data stays valid because the mapping it
	// aliases belongs either to r.h (held until Release) or to a pinned
	// handle in pins.
	memoNo   int64 // -1 = empty
	memoData []byte
	memoEOF  bool
	memoView bool

	// pins are extra handle references adopted from getBlock when a
	// cached view aliases a mapping other than r.h's (the path was
	// reopened after a handle eviction). They keep every slice this
	// reader has been handed valid until Release; one pin per distinct
	// handle suffices, so the slice stays tiny.
	pins []*handle
}

// adopt takes ownership of a pin returned by getBlock. A duplicate of
// an already-held pin is released immediately — the held one already
// keeps the mapping alive until Release.
func (r *reader) adopt(pin *handle) {
	if pin == nil {
		return
	}
	for _, p := range r.pins {
		if p == pin {
			r.c.handles.release(pin)
			return
		}
	}
	r.pins = append(r.pins, pin)
}

// ReadAt implements io.ReaderAt through the block cache (or directly
// in disabled mode).
func (r *reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("cache: negative offset %d", off)
	}
	if r.c.cfg.Disabled {
		n, err := r.h.f.ReadAt(p, off)
		r.ctr.BytesRead += int64(n)
		r.ctr.BytesServed += int64(n)
		r.c.bytesRead.Add(int64(n))
		r.c.bytesServed.Add(int64(n))
		return n, err
	}
	bs := int64(r.c.cfg.BlockBytes)
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		bn, boff := chunkAt(pos, bs)
		var data []byte
		var eof bool
		if bn == r.memoNo {
			data, eof = r.memoData, r.memoEOF
			r.ctr.Hits++
			r.c.hits.Add(1)
			if r.memoView {
				r.ctr.MmapBlocksServed++
			}
		} else {
			res, err := r.c.getBlock(r.h, blockKey{r.path, bn}, &r.ctr, false)
			if err != nil {
				r.account(n)
				return n, err
			}
			r.adopt(res.pin)
			data, eof = res.data, res.eof
			r.memoNo, r.memoData, r.memoEOF, r.memoView = bn, data, eof, res.viewed
			r.note(bn, eof)
		}
		if int64(len(data)) <= boff {
			r.account(n)
			if eof {
				return n, io.EOF
			}
			// A non-final block is always full; a short one means the
			// file shrank under us after the block was cached.
			return n, io.ErrUnexpectedEOF
		}
		m := copy(p[n:], data[boff:])
		n += m
		if n < len(p) && eof {
			r.account(n)
			return n, io.EOF
		}
	}
	r.account(n)
	return n, nil
}

func (r *reader) account(n int) {
	r.ctr.BytesServed += int64(n)
	r.c.bytesServed.Add(int64(n))
}

// note updates the sequential-scan state after touching block bn and
// schedules readahead when the scan moved forward to the next block.
func (r *reader) note(bn int64, eof bool) {
	forward := bn == r.lastBlock+1
	if bn != r.lastBlock {
		r.lastBlock = bn
	}
	if forward && !eof && r.c.cfg.Readahead > 0 {
		r.c.schedulePrefetch(r.path, bn, r.c.cfg.Readahead)
	}
}

// ViewAt implements Viewer: spans inside one cache block are served as
// a slice of the cached bytes themselves — no copy on either backend,
// no mapping memory on pread (the block buffer is heap-held and
// immutable). The block lookup is the same one ReadAt performs, so
// hit/miss accounting is identical whichever entry point a caller
// uses.
func (r *reader) ViewAt(off int64, n int) ([]byte, bool) {
	if n <= 0 || off < 0 || r.c.cfg.Disabled {
		return nil, false
	}
	bs := int64(r.c.cfg.BlockBytes)
	if crossesChunk(off, int64(n), bs) {
		return nil, false
	}
	bn, boff := chunkAt(off, bs)
	var data []byte
	if bn == r.memoNo {
		data = r.memoData
		r.ctr.Hits++
		r.c.hits.Add(1)
		if r.memoView {
			r.ctr.MmapBlocksServed++
		}
	} else {
		res, err := r.c.getBlock(r.h, blockKey{r.path, bn}, &r.ctr, false)
		if err != nil {
			return nil, false // let the ReadAt fallback surface the error
		}
		r.adopt(res.pin)
		r.memoNo, r.memoData, r.memoEOF, r.memoView = bn, res.data, res.eof, res.viewed
		r.note(bn, res.eof)
		data = res.data
	}
	if int64(len(data)) < boff+int64(n) {
		return nil, false // short block: the span runs past EOF
	}
	r.account(n)
	return data[boff : boff+int64(n)], true
}

// Release implements Reader.
func (r *reader) Release() {
	if r.released {
		return
	}
	r.released = true
	// The global mmap-served counter is batched per reader: an atomic
	// add per serve is the difference between the backends' warm paths
	// (tens of thousands of memo hits per scan). Demand paths count only
	// into ctr; the flush here is the sole writer of the global.
	if r.ctr.MmapBlocksServed > 0 {
		r.c.mmapServed.Add(r.ctr.MmapBlocksServed)
	}
	r.memoNo, r.memoData = -1, nil
	for _, p := range r.pins {
		r.c.handles.release(p)
	}
	r.pins = nil
	r.c.handles.release(r.h)
}

// Counters implements Reader.
func (r *reader) Counters() Counters { return r.ctr }
