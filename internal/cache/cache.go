// Package cache is the node-local caching layer between the extraction
// engine and the filesystem. It exists because the hot path of the
// paper's design re-reads aligned file chunks from flat files on every
// query: STORM's data-source service gets no reuse across queries even
// when interactive clients zoom and pan over overlapping spatial
// ranges. The cache turns those repeated chunk reads into memory hits.
//
// Three cooperating pieces:
//
//   - a bounded file-handle cache (LRU over open files, close-on-evict,
//     reference-counted so a handle is never closed under a concurrent
//     ReadAt) — see handles.go;
//   - a sharded block cache: fixed-size aligned blocks keyed by
//     (path, blockNo), per-shard LRU eviction under a byte budget, with
//     single-flight loading so N concurrent workers asking for the same
//     block issue exactly one filesystem read;
//   - an optional sequential readahead prefetcher that detects forward
//     scans within a reader and pre-populates the next blocks off the
//     critical path — see readahead.go.
//
// The extractor consumes the cache through the Source/Reader interfaces
// and never touches os.Open directly; one Cache instance is shared
// across queries by core.Service (and therefore by every cluster node
// server built on it).
package cache

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// File is the cache's view of one underlying file. The default opener
// wraps *os.File; tests substitute counting fakes through
// Config.OpenFile.
type File interface {
	io.ReaderAt
	io.Closer
}

// Source opens named byte sources for the extraction engine.
// Implementations must be safe for concurrent use.
type Source interface {
	// Open returns a reader positioned over the file at path. Each
	// extraction goroutine opens its own Reader (readers are not safe
	// for concurrent use; the Source and the cache behind it are).
	Open(path string) (Reader, error)
}

// Reader reads one file through the cache. A Reader is owned by a
// single goroutine; Release returns its resources (the file-handle
// reference) to the cache. ReadAt follows the io.ReaderAt contract:
// a read past the end of the file returns io.EOF with a short count.
type Reader interface {
	io.ReaderAt
	// Release returns the reader's handle reference; the reader must
	// not be used afterwards. Release is idempotent.
	Release()
	// Counters snapshots the reader's demand-read counters (readahead
	// I/O is accounted only on the cache's global Stats).
	Counters() Counters
}

// Counters are one reader's demand-read totals.
type Counters struct {
	// Hits and Misses count block lookups (zero in disabled mode).
	Hits   int64
	Misses int64
	// BytesRead is the bytes this reader's demand loads pulled from the
	// filesystem.
	BytesRead int64
	// BytesServed is the bytes delivered to the caller.
	BytesServed int64
}

// Stats is a snapshot of the cache's global counters.
type Stats struct {
	// Hits and Misses count demand block lookups.
	Hits   int64
	Misses int64
	// Evictions counts blocks dropped under byte pressure.
	Evictions int64
	// Prefetches counts blocks loaded by the readahead worker;
	// PrefetchHits counts demand lookups served by a prefetched block.
	Prefetches   int64
	PrefetchHits int64
	// BytesRead is bytes pulled from the filesystem (demand + readahead);
	// BytesServed is bytes delivered to readers. The difference is the
	// I/O the cache saved.
	BytesRead   int64
	BytesServed int64
	// HandleOpens and HandleEvicts count file-handle churn.
	HandleOpens  int64
	HandleEvicts int64
	// Blocks and Bytes are the current residency.
	Blocks int64
	Bytes  int64
}

// BytesSaved is the filesystem I/O avoided: bytes served minus bytes
// actually read (clamped at zero for cold caches with readahead waste).
func (s Stats) BytesSaved() int64 {
	if v := s.BytesServed - s.BytesRead; v > 0 {
		return v
	}
	return 0
}

// Defaults applied by New for zero Config fields.
const (
	DefaultMaxBytes   = 64 << 20
	DefaultBlockBytes = 256 << 10
	DefaultMaxHandles = 128
	defaultShards     = 16
)

// Config sizes a Cache. The zero value gives a 64 MiB cache of 256 KiB
// blocks over at most 128 open handles, with readahead off.
type Config struct {
	// MaxBytes is the block cache byte budget (approximate: it is split
	// evenly across shards and each shard keeps at least one block).
	MaxBytes int64
	// BlockBytes is the aligned block size.
	BlockBytes int
	// MaxHandles bounds the open file handles pooled by the cache.
	// Handles pinned by active readers can exceed the bound transiently;
	// they are closed as soon as the last reference is released.
	MaxHandles int
	// Readahead is how many blocks the prefetcher loads ahead of a
	// detected forward scan; 0 disables readahead.
	Readahead int
	// Disabled bypasses the block layer entirely: readers perform direct
	// positional reads, but handles are still pooled and byte counters
	// still maintained. This is the configuration for `-cache-mb 0`.
	Disabled bool
	// Shards is the number of block-cache shards (default 16).
	Shards int
	// OpenFile opens underlying files; defaults to os.Open. Tests use it
	// to count physical opens and reads.
	OpenFile func(path string) (File, error)
}

// blockKey names one cached block.
type blockKey struct {
	path    string
	blockNo int64
}

// entry is one resident block. data is immutable once installed, so
// readers may copy from it without holding the shard lock.
type entry struct {
	key        blockKey
	data       []byte
	eof        bool // the block ends at (or past) the end of the file
	prefetched bool // loaded by the readahead worker, not yet demanded
	elem       *list.Element
}

// flight is one in-progress block load; concurrent callers for the
// same block wait on done instead of issuing their own read.
type flight struct {
	done chan struct{}
	data []byte
	eof  bool
	err  error
}

// shard is one lock domain of the block cache.
type shard struct {
	mu       sync.Mutex
	entries  map[blockKey]*entry
	flights  map[blockKey]*flight
	lru      *list.List // front = most recent
	bytes    int64
	maxBytes int64
}

// Cache is the node-local block cache. Safe for concurrent use; one
// instance is shared across every query of a service.
type Cache struct {
	cfg     Config
	handles *handleCache
	shards  []shard

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	prefetches   atomic.Int64
	prefetchHits atomic.Int64
	bytesRead    atomic.Int64
	bytesServed  atomic.Int64

	pfCh      chan prefetchReq
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a cache, normalizing zero Config fields to the defaults.
// Close must be called to release pooled handles and stop the
// readahead worker.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = DefaultBlockBytes
	}
	if cfg.MaxHandles <= 0 {
		cfg.MaxHandles = DefaultMaxHandles
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.OpenFile == nil {
		cfg.OpenFile = func(path string) (File, error) { return os.Open(path) }
	}
	c := &Cache{
		cfg:     cfg,
		handles: newHandleCache(cfg.MaxHandles, cfg.OpenFile),
		shards:  make([]shard, cfg.Shards),
		done:    make(chan struct{}),
	}
	perShard := cfg.MaxBytes / int64(cfg.Shards)
	if perShard < int64(cfg.BlockBytes) {
		perShard = int64(cfg.BlockBytes)
	}
	for i := range c.shards {
		c.shards[i].entries = map[blockKey]*entry{}
		c.shards[i].flights = map[blockKey]*flight{}
		c.shards[i].lru = list.New()
		c.shards[i].maxBytes = perShard
	}
	if !cfg.Disabled && cfg.Readahead > 0 {
		c.pfCh = make(chan prefetchReq, prefetchQueue)
		c.wg.Add(1)
		go c.prefetchLoop()
	}
	return c
}

// Close stops the readahead worker, closes every pooled handle and
// drops all cached blocks. Readers still open keep their handle alive
// until Release; new reads through them fail once the handle is
// released and closed. Close is idempotent.
func (c *Cache) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	c.handles.closeAll()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = map[blockKey]*entry{}
		s.lru.Init()
		s.bytes = 0
		s.mu.Unlock()
	}
	return nil
}

// Open implements Source.
func (c *Cache) Open(path string) (Reader, error) {
	h, err := c.handles.acquire(path)
	if err != nil {
		return nil, err
	}
	return &reader{c: c, path: path, h: h, lastBlock: -2, memoNo: -1}, nil
}

// Stats snapshots the global counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Prefetches:   c.prefetches.Load(),
		PrefetchHits: c.prefetchHits.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesServed:  c.bytesServed.Load(),
	}
	st.HandleOpens, st.HandleEvicts = c.handles.stats()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Blocks += int64(len(s.entries))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

func (c *Cache) shard(k blockKey) *shard {
	// FNV-1a over the path plus the block number spreads neighbouring
	// blocks of one file across shards, so a sequential scan does not
	// serialize on a single lock.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.path); i++ {
		h ^= uint64(k.path[i])
		h *= 1099511628211
	}
	h ^= uint64(k.blockNo)
	h *= 1099511628211
	return &c.shards[h%uint64(len(c.shards))]
}

// contains reports block residency without promoting it (used by the
// prefetcher to skip work cheaply).
func (c *Cache) contains(k blockKey) bool {
	s := c.shard(k)
	s.mu.Lock()
	_, resident := s.entries[k]
	_, loading := s.flights[k]
	s.mu.Unlock()
	return resident || loading
}

// getBlock returns the named block's data, loading it through the
// single-flight path on a miss. ctr receives the demand attribution
// (nil for prefetch loads). The returned slice is immutable.
func (c *Cache) getBlock(h *handle, k blockKey, ctr *Counters, prefetch bool) ([]byte, bool, error) {
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.lru.MoveToFront(e.elem)
		wasPrefetched := e.prefetched
		e.prefetched = false
		data, eof := e.data, e.eof
		s.mu.Unlock()
		if !prefetch {
			c.hits.Add(1)
			ctr.Hits++
			if wasPrefetched {
				c.prefetchHits.Add(1)
			}
		}
		return data, eof, nil
	}
	if f, ok := s.flights[k]; ok {
		s.mu.Unlock()
		if prefetch {
			return nil, false, nil // someone is already loading it
		}
		<-f.done
		c.misses.Add(1)
		ctr.Misses++
		return f.data, f.eof, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[k] = f
	s.mu.Unlock()

	buf := make([]byte, c.cfg.BlockBytes)
	n, err := h.f.ReadAt(buf, k.blockNo*int64(c.cfg.BlockBytes))
	eof := false
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		eof, err = true, nil
	}
	if err != nil {
		f.err = fmt.Errorf("cache: reading %s block %d: %w", k.path, k.blockNo, err)
		s.mu.Lock()
		delete(s.flights, k)
		s.mu.Unlock()
		close(f.done)
		if !prefetch {
			c.misses.Add(1)
			ctr.Misses++
		}
		return nil, false, f.err
	}
	data := buf[:n]
	f.data, f.eof = data, eof
	c.bytesRead.Add(int64(n))
	if prefetch {
		c.prefetches.Add(1)
	} else {
		c.misses.Add(1)
		ctr.Misses++
		ctr.BytesRead += int64(n)
	}

	s.mu.Lock()
	delete(s.flights, k)
	e := &entry{key: k, data: data, eof: eof, prefetched: prefetch}
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.bytes += int64(len(data))
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		tail := s.lru.Back()
		victim := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.entries, victim.key)
		s.bytes -= int64(len(victim.data))
		c.evictions.Add(1)
	}
	s.mu.Unlock()
	close(f.done)
	return data, eof, nil
}

// reader is the Reader implementation for both cached and disabled
// modes. It is single-goroutine by contract, so its counters and scan
// state need no synchronization.
type reader struct {
	c    *Cache
	path string
	h    *handle
	ctr  Counters

	// lastBlock tracks the most recent demand block for sequential-scan
	// detection (-2 = no access yet, so the very first block does not
	// count as "forward progress").
	lastBlock int64
	released  bool

	// memo holds the most recent block touched by this reader, served
	// without the shard lock: sequential small reads land in the same
	// block hundreds of times in a row, and this keeps the hot path at
	// memcpy cost. Block data is immutable, so the memo stays valid even
	// after the block is evicted (it pins at most one block per reader).
	memoNo   int64 // -1 = empty
	memoData []byte
	memoEOF  bool
}

// ReadAt implements io.ReaderAt through the block cache (or directly
// in disabled mode).
func (r *reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("cache: negative offset %d", off)
	}
	if r.c.cfg.Disabled {
		n, err := r.h.f.ReadAt(p, off)
		r.ctr.BytesRead += int64(n)
		r.ctr.BytesServed += int64(n)
		r.c.bytesRead.Add(int64(n))
		r.c.bytesServed.Add(int64(n))
		return n, err
	}
	bs := int64(r.c.cfg.BlockBytes)
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		bn := pos / bs
		boff := pos - bn*bs
		var data []byte
		var eof bool
		if bn == r.memoNo {
			data, eof = r.memoData, r.memoEOF
			r.ctr.Hits++
			r.c.hits.Add(1)
		} else {
			var err error
			data, eof, err = r.c.getBlock(r.h, blockKey{r.path, bn}, &r.ctr, false)
			if err != nil {
				r.account(n)
				return n, err
			}
			r.memoNo, r.memoData, r.memoEOF = bn, data, eof
			r.note(bn, eof)
		}
		if int64(len(data)) <= boff {
			r.account(n)
			if eof {
				return n, io.EOF
			}
			// A non-final block is always full; a short one means the
			// file shrank under us after the block was cached.
			return n, io.ErrUnexpectedEOF
		}
		m := copy(p[n:], data[boff:])
		n += m
		if n < len(p) && eof {
			r.account(n)
			return n, io.EOF
		}
	}
	r.account(n)
	return n, nil
}

func (r *reader) account(n int) {
	r.ctr.BytesServed += int64(n)
	r.c.bytesServed.Add(int64(n))
}

// note updates the sequential-scan state after touching block bn and
// schedules readahead when the scan moved forward to the next block.
func (r *reader) note(bn int64, eof bool) {
	forward := bn == r.lastBlock+1
	if bn != r.lastBlock {
		r.lastBlock = bn
	}
	if forward && !eof && r.c.cfg.Readahead > 0 {
		r.c.schedulePrefetch(r.path, bn, r.c.cfg.Readahead)
	}
}

// Release implements Reader.
func (r *reader) Release() {
	if r.released {
		return
	}
	r.released = true
	r.memoNo, r.memoData = -1, nil
	r.c.handles.release(r.h)
}

// Counters implements Reader.
func (r *reader) Counters() Counters { return r.ctr }
