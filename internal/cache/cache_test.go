package cache_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"datavirt/internal/cache"
	"datavirt/internal/cache/cachetest"
)

// readAll pulls [off, off+n) through a fresh reader.
func readAll(t *testing.T, c *cache.Cache, path string, off int64, n int) []byte {
	t.Helper()
	r, err := c.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	buf := make([]byte, n)
	if _, err := r.ReadAt(buf, off); err != nil {
		t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
	}
	return buf
}

func TestReadThroughMatchesFile(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 10_000, 1)
	c := cache.New(cache.Config{BlockBytes: 64, MaxBytes: 1 << 20, OpenFile: fs.Open})
	defer c.Close()

	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		off := rng.Int63n(10_000)
		n := 1 + rng.Intn(700)
		if off+int64(n) > 10_000 {
			n = int(10_000 - off)
		}
		buf := make([]byte, n)
		if _, err := r.ReadAt(buf, off); err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", off, n, err)
		}
		if !bytes.Equal(buf, want[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d,%d): bytes differ", off, n)
		}
	}
	ctr := r.Counters()
	if ctr.Hits == 0 || ctr.Misses == 0 {
		t.Errorf("expected both hits and misses over random reads: %+v", ctr)
	}
	if ctr.BytesServed == 0 {
		t.Errorf("BytesServed not counted: %+v", ctr)
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 100, 3)
	c := cache.New(cache.Config{BlockBytes: 64, OpenFile: fs.Open})
	defer c.Close()
	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()

	// Exact read to the end: full count, no error (io.ReaderAt allows
	// either; we promise nil like bytes.Reader at an exact boundary via
	// the non-final-block path — accept both).
	buf := make([]byte, 40)
	n, err := r.ReadAt(buf, 60)
	if n != 40 || (err != nil && err != io.EOF) {
		t.Errorf("exact-end read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, want[60:]) {
		t.Error("exact-end read: wrong bytes")
	}
	// Read spanning the end: short count + io.EOF.
	buf = make([]byte, 40)
	n, err = r.ReadAt(buf, 80)
	if n != 20 || err != io.EOF {
		t.Errorf("spanning read: n=%d err=%v, want 20, EOF", n, err)
	}
	if !bytes.Equal(buf[:20], want[80:]) {
		t.Error("spanning read: wrong bytes")
	}
	// Read entirely past the end.
	n, err = r.ReadAt(buf, 200)
	if n != 0 || err != io.EOF {
		t.Errorf("past-end read: n=%d err=%v, want 0, EOF", n, err)
	}
}

// TestSingleFlight proves N concurrent callers for the same cold block
// trigger exactly one underlying read.
func TestSingleFlight(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 4096, 4)
	fs.SetReadDelay(20 * time.Millisecond)
	c := cache.New(cache.Config{BlockBytes: 4096, OpenFile: fs.Open})
	defer c.Close()

	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Open("a")
			if err != nil {
				errs <- err
				return
			}
			defer r.Release()
			buf := make([]byte, 4096)
			if _, err := r.ReadAt(buf, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, want) {
				errs <- fmt.Errorf("wrong bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fs.Reads.Load(); got != 1 {
		t.Errorf("underlying reads = %d, want 1 (single-flight)", got)
	}
	st := c.Stats()
	if st.Hits+st.Misses != callers {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, callers)
	}
	if st.BytesRead != 4096 {
		t.Errorf("BytesRead = %d, want 4096", st.BytesRead)
	}
}

func TestEvictionRespectsByteBudget(t *testing.T) {
	fs := cachetest.NewFS()
	fs.Put("a", 1<<20, 5)
	// 4 KiB budget over one shard of 1 KiB blocks → at most ~4 resident.
	c := cache.New(cache.Config{BlockBytes: 1024, MaxBytes: 4096, Shards: 1, OpenFile: fs.Open})
	defer c.Close()
	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	buf := make([]byte, 1024)
	for off := int64(0); off < 1<<20; off += 1024 {
		if _, err := r.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Errorf("resident bytes %d exceed budget 4096", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under a full scan 256x the budget")
	}
	// LRU: re-reading the last block is a hit, the first a miss.
	before := c.Stats()
	r.ReadAt(buf, 1<<20-1024) //nolint:errcheck
	r.ReadAt(buf, 0)          //nolint:errcheck
	after := c.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses+1 {
		t.Errorf("LRU recency not honoured: before %+v after %+v", before, after)
	}
}

func TestHandleLRUBoundsOpenFiles(t *testing.T) {
	fs := cachetest.NewFS()
	for i := 0; i < 10; i++ {
		fs.Put(fmt.Sprintf("f%d", i), 512, int64(i))
	}
	c := cache.New(cache.Config{MaxHandles: 4, BlockBytes: 256, OpenFile: fs.Open})
	// Sweep all ten files once, then re-touch the four most recent —
	// those must be served from the pool without reopening.
	for i := 0; i < 10; i++ {
		readAll(t, c, fmt.Sprintf("f%d", i), 0, 256)
	}
	for i := 6; i < 10; i++ {
		readAll(t, c, fmt.Sprintf("f%d", i), 0, 256)
	}
	// No reader is live, so opens minus closes is the resident pool.
	if got := fs.Opens.Load() - fs.Closes.Load(); got > 4 {
		t.Errorf("resident handles = %d, want <= 4", got)
	}
	st := c.Stats()
	if st.HandleEvicts == 0 {
		t.Error("no handle evictions with 10 files over a 4-handle budget")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Opens.Load() != fs.Closes.Load() {
		t.Errorf("fd leak: %d opens, %d closes", fs.Opens.Load(), fs.Closes.Load())
	}
	// The re-touched files were resident: 10 opens for 14 acquires.
	if fs.Opens.Load() != 10 {
		t.Errorf("opens = %d, want 10 (4 acquires served from the pool)", fs.Opens.Load())
	}
}

// TestHandleEvictedWhileReferenced pins a handle with a live reader,
// forces its eviction, and checks the reader keeps working and the
// file is closed exactly once — on the final release.
func TestHandleEvictedWhileReferenced(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("pinned", 512, 42)
	for i := 0; i < 4; i++ {
		fs.Put(fmt.Sprintf("f%d", i), 512, int64(i))
	}
	c := cache.New(cache.Config{MaxHandles: 2, BlockBytes: 128, OpenFile: fs.Open})
	defer c.Close()

	r, err := c.Open("pinned")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // evict "pinned" from the pool
		readAll(t, c, fmt.Sprintf("f%d", i), 0, 128)
	}
	buf := make([]byte, 128)
	if _, err := r.ReadAt(buf, 256); err != nil {
		t.Fatalf("read through evicted handle: %v", err)
	}
	if !bytes.Equal(buf, want[256:384]) {
		t.Error("read through evicted handle: wrong bytes")
	}
	r.Release()
	r.Release() // idempotent
	if fs.Closes.Load() == 0 {
		t.Error("evicted handle never closed after release")
	}
}

// TestConcurrentStorm hammers a tiny cache from many goroutines under
// -race: hits, misses, evictions, handle churn and single-flight all
// interleave. Correctness of every byte is asserted.
func TestConcurrentStorm(t *testing.T) {
	fs := cachetest.NewFS()
	const files, fileSize = 6, 64 * 1024
	contents := make([][]byte, files)
	for i := range contents {
		contents[i] = fs.Put(fmt.Sprintf("f%d", i), fileSize, int64(100+i))
	}
	c := cache.New(cache.Config{
		BlockBytes: 512, MaxBytes: 16 << 10, MaxHandles: 3,
		Shards: 4, Readahead: 2, OpenFile: fs.Open,
	})

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				fi := rng.Intn(files)
				path := fmt.Sprintf("f%d", fi)
				r, err := c.Open(path)
				if err != nil {
					errs <- err
					return
				}
				off := rng.Int63n(fileSize - 600)
				n := 1 + rng.Intn(600)
				buf := make([]byte, n)
				if _, err := r.ReadAt(buf, off); err != nil {
					r.Release()
					errs <- fmt.Errorf("%s @%d+%d: %w", path, off, n, err)
					return
				}
				if !bytes.Equal(buf, contents[fi][off:off+int64(n)]) {
					r.Release()
					errs <- fmt.Errorf("%s @%d+%d: corrupt bytes", path, off, n)
					return
				}
				r.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("storm did not exercise the cache: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Give lossy in-flight prefetch handle releases nothing to leak:
	// every opened file must be closed after Close.
	if fs.Opens.Load() != fs.Closes.Load() {
		t.Errorf("fd leak after Close: %d opens, %d closes", fs.Opens.Load(), fs.Closes.Load())
	}
}

// TestCloseLeavesNoGoroutines starts a cache with readahead (the only
// goroutine owner) and checks Close joins it — the goroutine-hygiene
// style of internal/cluster/cancel_test.go.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	fs := cachetest.NewFS()
	fs.Put("a", 1<<20, 7)
	before := runtime.NumGoroutine()
	c := cache.New(cache.Config{BlockBytes: 4096, Readahead: 8, OpenFile: fs.Open})
	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for off := int64(0); off < 64*4096; off += 4096 { // sequential scan feeds the prefetcher
		r.ReadAt(buf, off) //nolint:errcheck
	}
	r.Release()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after Close", before, g)
	}
	if fs.Opens.Load() != fs.Closes.Load() {
		t.Errorf("fd leak after Close: %d opens, %d closes", fs.Opens.Load(), fs.Closes.Load())
	}
}

// TestReadahead drives a forward scan and checks the prefetcher
// populates blocks ahead of it (prefetches happen, and later demand
// reads hit prefetched blocks).
func TestReadahead(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 1<<20, 8)
	c := cache.New(cache.Config{BlockBytes: 4096, Readahead: 4, OpenFile: fs.Open})
	defer c.Close()
	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()

	buf := make([]byte, 4096)
	for off := int64(0); off < 1<<20; off += 4096 {
		if _, err := r.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want[off:off+4096]) {
			t.Fatalf("corrupt bytes at %d", off)
		}
		if off%16384 == 0 {
			time.Sleep(time.Millisecond) // let the worker run ahead
		}
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if st := c.Stats(); st.Prefetches > 0 && st.PrefetchHits > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("readahead ineffective: %+v", c.Stats())
}

func TestDisabledModePoolsHandlesAndCounts(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 8192, 9)
	c := cache.New(cache.Config{Disabled: true, OpenFile: fs.Open})
	for i := 0; i < 5; i++ {
		got := readAll(t, c, "a", 128, 1024)
		if !bytes.Equal(got, want[128:128+1024]) {
			t.Fatal("disabled mode: wrong bytes")
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Blocks != 0 {
		t.Errorf("disabled mode cached blocks: %+v", st)
	}
	if st.BytesRead != 5*1024 || st.BytesServed != 5*1024 {
		t.Errorf("disabled mode byte counters: %+v", st)
	}
	if fs.Opens.Load() != 1 {
		t.Errorf("disabled mode reopened the file: %d opens for 5 readers", fs.Opens.Load())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Closes.Load() != 1 {
		t.Errorf("closes = %d, want 1", fs.Closes.Load())
	}
}

func TestOpenMissingFile(t *testing.T) {
	c := cache.New(cache.Config{})
	defer c.Close()
	if _, err := c.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open of a missing file succeeded")
	}
}

// TestRealFiles exercises the default os.Open path end to end.
func TestRealFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	want := make([]byte, 100_000)
	rand.New(rand.NewSource(10)).Read(want)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	c := cache.New(cache.Config{BlockBytes: 1 << 12, Readahead: 2})
	defer c.Close()
	for i := 0; i < 2; i++ {
		got := readAll(t, c, path, 4000, 50_000)
		if !bytes.Equal(got, want[4000:54_000]) {
			t.Fatal("real-file read mismatch")
		}
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Errorf("second pass did not hit: %+v", st)
	}
	if st.BytesSaved() == 0 {
		t.Errorf("BytesSaved = 0: %+v", st)
	}
}

func TestStatsSnapshotConsistency(t *testing.T) {
	fs := cachetest.NewFS()
	fs.Put("a", 4096, 11)
	c := cache.New(cache.Config{BlockBytes: 1024, OpenFile: fs.Open})
	defer c.Close()
	readAll(t, c, "a", 0, 4096)
	st := c.Stats()
	if st.Misses != 4 || st.Blocks != 4 || st.Bytes != 4096 {
		t.Errorf("cold pass stats: %+v", st)
	}
	readAll(t, c, "a", 0, 4096)
	st = c.Stats()
	if st.Hits != 4 || st.BytesRead != 4096 || st.BytesServed != 8192 {
		t.Errorf("warm pass stats: %+v", st)
	}
	if st.BytesSaved() != 4096 {
		t.Errorf("BytesSaved = %d, want 4096", st.BytesSaved())
	}
}

// TestOpenFaultSurfaces arms an injected open failure and checks it
// reaches the caller once, then clears.
func TestOpenFaultSurfaces(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 1024, 20)
	c := cache.New(cache.Config{BlockBytes: 256, OpenFile: fs.Open})
	defer c.Close()

	fs.FailNextOpens(1)
	if _, err := c.Open("a"); !errors.Is(err, cachetest.ErrOpen) {
		t.Fatalf("Open with injected fault: err=%v, want ErrOpen", err)
	}
	got := readAll(t, c, "a", 0, 1024)
	if !bytes.Equal(got, want) {
		t.Error("read after open fault: wrong bytes")
	}
}

// TestReadFaultNotCached injects an I/O error on the first physical
// read, checks the error surfaces (wrapped, errors.Is-able), and that
// the failed block is NOT cached — the retry re-reads and succeeds.
func TestReadFaultNotCached(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 4096, 21)
	c := cache.New(cache.Config{BlockBytes: 1024, OpenFile: fs.Open})
	defer c.Close()
	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()

	fs.FailReadNumber(1)
	buf := make([]byte, 1024)
	if _, err := r.ReadAt(buf, 0); !errors.Is(err, cachetest.ErrIO) {
		t.Fatalf("faulted read: err=%v, want ErrIO", err)
	}
	st := c.Stats()
	if st.Blocks != 0 {
		t.Errorf("failed block was cached: %+v", st)
	}
	// The fault is spent (read #1 is past); the retry must succeed.
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	if !bytes.Equal(buf, want[:1024]) {
		t.Error("retry after fault: wrong bytes")
	}
	if got := fs.Reads.Load(); got != 2 {
		t.Errorf("physical reads = %d, want 2 (fault + retry)", got)
	}
}

// TestShortReadSurfacesCleanError makes the file deliver fewer bytes
// than asked (a lazy io.ReaderAt shape that is only legal at EOF). The
// cache must not serve the missing range as data: the read returns the
// delivered prefix and an error, never wrong bytes.
func TestShortReadSurfacesCleanError(t *testing.T) {
	fs := cachetest.NewFS()
	want := fs.Put("a", 4096, 22)
	c := cache.New(cache.Config{BlockBytes: 64, OpenFile: fs.Open})
	defer c.Close()
	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()

	fs.LimitReadBytes(16)
	buf := make([]byte, 64)
	n, err := r.ReadAt(buf, 0)
	if err == nil {
		t.Fatalf("read over a truncated block returned n=%d with no error", n)
	}
	if !bytes.Equal(buf[:n], want[:n]) {
		t.Errorf("truncated block served wrong bytes in its prefix")
	}
	// With the fault cleared, fresh blocks load whole again.
	fs.LimitReadBytes(0)
	got := readAll(t, c, "a", 1024, 512)
	if !bytes.Equal(got, want[1024:1536]) {
		t.Error("read after clearing short-read fault: wrong bytes")
	}
}
