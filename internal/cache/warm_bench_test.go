package cache_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"datavirt/internal/cache"
)

// BenchmarkWarmReads measures the warm (fully cached) serve path of
// both backends: tiny reads sweeping a file that is entirely resident,
// the regime the dvbench mmap experiment times.
func BenchmarkWarmReads(b *testing.B) {
	dir := b.TempDir()
	const size = 4 << 20
	want := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(want)
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		b.Fatal(err)
	}
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		for _, rd := range []int{128, 4096} {
			b.Run(fmt.Sprintf("%s/read%d", backend, rd), func(b *testing.B) {
				c := cache.New(cache.Config{BlockBytes: 256 << 10, Backend: backend})
				defer c.Close()
				r, err := c.Open(path)
				if err != nil {
					b.Fatal(err)
				}
				defer r.Release()
				buf := make([]byte, rd)
				for off := int64(0); off < size; off += int64(rd) { // populate
					r.ReadAt(buf, off) //nolint:errcheck
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := (int64(i) * int64(rd)) % (size - int64(rd))
					if _, err := r.ReadAt(buf, off); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
