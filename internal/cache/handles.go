package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// handle is one pooled open file. refs counts the readers (and the
// prefetch worker) currently using it; a handle evicted or closed
// while referenced is marked dead and closed by the last release, so
// no ReadAt ever races a Close.
type handle struct {
	path string
	f    File
	refs int
	dead bool
	elem *list.Element
}

// handleCache is a bounded LRU over open files. The map and list hold
// only live (non-dead) handles, so residency never exceeds max even
// when referenced handles are evicted — those live on solely through
// their refs and are closed on the final release.
type handleCache struct {
	mu     sync.Mutex
	max    int
	open   func(path string) (File, error)
	m      map[string]*handle
	lru    *list.List // front = most recent
	opens  int64
	evicts int64
}

func newHandleCache(max int, open func(path string) (File, error)) *handleCache {
	return &handleCache{
		max:  max,
		open: open,
		m:    map[string]*handle{},
		lru:  list.New(),
	}
}

// acquire returns a referenced handle for path, opening it on a miss
// and evicting the least recently used unreferenced handle when over
// budget. The open happens under the lock: handle churn is rare by
// design (the point of the cache), and this gives single-flight opens
// for free.
func (c *handleCache) acquire(path string) (*handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.m[path]; ok {
		h.refs++
		c.lru.MoveToFront(h.elem)
		return h, nil
	}
	f, err := c.open(path)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c.opens++
	h := &handle{path: path, f: f, refs: 1}
	h.elem = c.lru.PushFront(h)
	c.m[path] = h
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		if tail == nil || tail == h.elem {
			break
		}
		victim := tail.Value.(*handle)
		c.lru.Remove(tail)
		delete(c.m, victim.path)
		c.evicts++
		if victim.refs == 0 {
			victim.f.Close() //nolint:errcheck — read-only handle
		} else {
			victim.dead = true // last release closes it
		}
	}
	return h, nil
}

// release drops one reference; a dead handle is closed when the last
// reference goes away.
func (c *handleCache) release(h *handle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h.refs--
	if h.dead && h.refs == 0 {
		h.f.Close() //nolint:errcheck
	}
}

// closeAll closes every unreferenced handle and marks the rest dead.
func (c *handleCache) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.m {
		if h.refs == 0 {
			h.f.Close() //nolint:errcheck
		} else {
			h.dead = true
		}
	}
	c.m = map[string]*handle{}
	c.lru.Init()
}

// stats reports open/evict totals.
func (c *handleCache) stats() (opens, evicts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opens, c.evicts
}

// len reports current residency (for tests).
func (c *handleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
