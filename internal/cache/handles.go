package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// handle is one pooled open file. refs counts the readers (and the
// prefetch worker) currently using it; a handle evicted or closed
// while referenced is marked dead and closed by the last release, so
// no ReadAt ever races a Close.
//
// A handle is inserted before its file is opened: ready is closed when
// the open completes (f or err set), so concurrent acquires of the
// same path wait on the channel — outside the cache lock — instead of
// opening a duplicate.
type handle struct {
	path string
	f    File          // set once before ready closes; read via <-ready
	err  error         // set once before ready closes; read via <-ready
	refs int           //dvlint:guardedby handleCache.mu
	dead bool          //dvlint:guardedby handleCache.mu
	elem *list.Element //dvlint:guardedby handleCache.mu

	ready chan struct{}
}

// handleCache is a bounded LRU over open files. The map and list hold
// only live (non-dead) handles, so residency never exceeds max even
// when referenced handles are evicted — those live on solely through
// their refs and are closed on the final release.
type handleCache struct {
	mu     sync.Mutex
	max    int
	open   func(path string) (File, error)
	m      map[string]*handle //dvlint:guardedby mu
	lru    *list.List         //dvlint:guardedby mu (front = most recent)
	opens  int64              //dvlint:guardedby mu
	evicts int64              //dvlint:guardedby mu
}

func newHandleCache(max int, open func(path string) (File, error)) *handleCache {
	return &handleCache{
		max:  max,
		open: open,
		m:    map[string]*handle{},
		lru:  list.New(),
	}
}

// acquire returns a referenced handle for path, opening it on a miss
// and evicting the least recently used unreferenced handle when over
// budget. All blocking work — the open and the victims' closes —
// happens outside the lock; a placeholder handle inserted before the
// open keeps misses single-flight (racing acquires wait on ready).
func (c *handleCache) acquire(path string) (*handle, error) {
	c.mu.Lock()
	if h, ok := c.m[path]; ok {
		h.refs++
		c.lru.MoveToFront(h.elem)
		c.mu.Unlock()
		<-h.ready
		if h.err != nil {
			c.release(h)
			return nil, fmt.Errorf("cache: %w", h.err)
		}
		return h, nil
	}

	c.opens++
	h := &handle{path: path, refs: 1, ready: make(chan struct{})}
	h.elem = c.lru.PushFront(h)
	c.m[path] = h
	// The placeholder counts toward the budget, so evict now; victims
	// are closed after unlocking.
	var victims []File
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		if tail == nil || tail == h.elem {
			break
		}
		victim := tail.Value.(*handle)
		c.lru.Remove(tail)
		delete(c.m, victim.path)
		c.evicts++
		if victim.refs == 0 {
			if victim.f != nil {
				victims = append(victims, victim.f)
				victim.f = nil
			}
		} else {
			victim.dead = true // last release closes it
		}
	}
	c.mu.Unlock()

	for _, f := range victims {
		f.Close() //nolint:errcheck — read-only handle
	}
	f, err := c.open(path)

	c.mu.Lock()
	h.f, h.err = f, err
	if err != nil {
		// Withdraw the placeholder so a later acquire retries the open
		// (unless it was evicted meanwhile, or the slot re-used).
		h.dead = true
		h.refs--
		c.lru.Remove(h.elem) // no-op if already evicted
		if c.m[path] == h {
			delete(c.m, path)
		}
	}
	c.mu.Unlock()
	close(h.ready)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return h, nil
}

// ref takes an additional reference on h. The caller must already hold
// a live reference (block-cache entries ref the handle their views
// alias while the loading reader's own reference is still held), so h
// cannot be concurrently closed out from under the bump. A bare
// counter update — safe to call with a block-cache shard lock held.
func (c *handleCache) ref(h *handle) {
	c.mu.Lock()
	h.refs++
	c.mu.Unlock()
}

// release drops one reference; a dead handle is closed — outside the
// lock — when the last reference goes away.
func (c *handleCache) release(h *handle) {
	c.mu.Lock()
	h.refs--
	var toClose File
	if h.dead && h.refs == 0 && h.f != nil {
		toClose = h.f
		h.f = nil
	}
	c.mu.Unlock()
	if toClose != nil {
		toClose.Close() //nolint:errcheck
	}
}

// closeAll closes every unreferenced handle and marks the rest dead.
// The closes happen after the lock is dropped.
func (c *handleCache) closeAll() {
	c.mu.Lock()
	var toClose []File
	for _, h := range c.m {
		if h.refs == 0 {
			if h.f != nil {
				toClose = append(toClose, h.f)
				h.f = nil
			}
		} else {
			h.dead = true
		}
	}
	c.m = map[string]*handle{}
	c.lru.Init()
	c.mu.Unlock()
	for _, f := range toClose {
		f.Close() //nolint:errcheck
	}
}

// stats reports open/evict totals.
func (c *handleCache) stats() (opens, evicts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opens, c.evicts
}

// len reports current residency (for tests).
func (c *handleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
