//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package cache

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

// mmapSupported gates the mmap backend: on these platforms BackendMmap
// and BackendAuto map files; elsewhere they degrade to pread (see
// mmap_other.go).
const mmapSupported = true

// mappable is the shape a File must have for the cache to memory-map
// it — notably *os.File. Files without it (test fakes, wrappers) stay
// on the pread path even under BackendMmap.
type mappable interface {
	Fd() uintptr
	Stat() (os.FileInfo, error)
}

// blockViews is the optional File extension the block cache probes for
// zero-copy loads: view returns a slice aliasing a read-only mapping
// of [off, off+n), clipped at EOF, instead of copying through a read
// call. remapped reports how many new mapping windows the call created
// beyond the file's first (the MmapRemaps counter). A view error is
// never fatal: the caller falls back to the pread path.
type blockViews interface {
	view(off, n int64) (data []byte, eof bool, remapped int64, err error)
}

// wrapMmap wraps f in an mmap-backed File when it can be mapped;
// otherwise it returns f unchanged. window is the mapping-window size
// in bytes (already normalized to a page multiple). Mapping itself is
// lazy — a file that refuses to map at view time degrades to pread for
// its remaining lifetime, so a refused mmap costs one failed syscall,
// not the file.
func wrapMmap(f File, window int64) File {
	m, ok := f.(mappable)
	if !ok {
		return f
	}
	fi, err := m.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		return f
	}
	return &mmapFile{inner: f, fd: m.Fd(), size: fi.Size(), window: window}
}

// mmapFile serves a file through chunked read-only mappings: the file
// is split into window-sized segments, each mapped on first demand and
// kept mapped until Close (address space, not memory — the pages stay
// reclaimable and shared with every other process mapping the file,
// which is the point: the OS page cache is the block store and resident
// blocks cost no copy). Close unmaps everything; the cache's
// refcounted handle LRU guarantees Close only runs once no reader and
// no cached block still aliases a window.
type mmapFile struct {
	inner  File // pread fallback and the underlying Close
	fd     uintptr
	size   int64
	window int64

	mu     sync.Mutex
	wins   map[int64][]byte //dvlint:guardedby mu (window index → mapping)
	mapped bool             //dvlint:guardedby mu (a window has been mapped; remap counting)
	failed bool             //dvlint:guardedby mu (a map failed; all views degrade to pread)
	closed bool             //dvlint:guardedby mu
}

// view implements blockViews.
func (m *mmapFile) view(off, n int64) (data []byte, eof bool, remapped int64, err error) {
	if off < 0 || n <= 0 {
		return nil, false, 0, fmt.Errorf("cache: bad view [%d,+%d)", off, n)
	}
	if off >= m.size {
		return nil, true, 0, nil // wholly past EOF: empty view, like a 0,EOF read
	}
	end := off + n
	if end > m.size {
		end = m.size
	}
	eof = end-off < n
	if crossesChunk(off, end-off, m.window) {
		return nil, false, 0, fmt.Errorf("cache: view [%d,+%d) crosses a %d-byte mapping window", off, n, m.window)
	}
	wi, woff := chunkAt(off, m.window)
	win, created, err := m.ensureWindow(wi)
	if err != nil {
		return nil, false, 0, err
	}
	return win[woff : woff+(end-off)], eof, created, nil
}

// ensureWindow returns window wi's mapping, creating it on first use.
// created reports whether this call mapped a window beyond the file's
// first. The mmap syscall runs outside the lock; a racing duplicate is
// unmapped and the first install wins.
func (m *mmapFile) ensureWindow(wi int64) (win []byte, created int64, err error) {
	m.mu.Lock()
	if m.failed || m.closed {
		m.mu.Unlock()
		return nil, 0, fmt.Errorf("cache: mmap of %d-byte window unavailable", m.window)
	}
	if w, ok := m.wins[wi]; ok {
		m.mu.Unlock()
		return w, 0, nil
	}
	m.mu.Unlock()

	base := wi * m.window
	length := m.size - base
	if length > m.window {
		length = m.window
	}
	b, merr := syscall.Mmap(int(m.fd), base, int(length), syscall.PROT_READ, syscall.MAP_SHARED)

	m.mu.Lock()
	if merr != nil {
		m.failed = true // degrade the whole file to pread, once
		m.mu.Unlock()
		return nil, 0, fmt.Errorf("cache: mmap window %d: %w", wi, merr)
	}
	if m.closed {
		m.mu.Unlock()
		syscall.Munmap(b) //nolint:errcheck
		return nil, 0, fmt.Errorf("cache: mmap after close")
	}
	if w, ok := m.wins[wi]; ok { // racing mapper won
		m.mu.Unlock()
		syscall.Munmap(b) //nolint:errcheck
		return w, 0, nil
	}
	if m.wins == nil {
		m.wins = map[int64][]byte{}
	}
	m.wins[wi] = b
	if m.mapped {
		created = 1
	}
	m.mapped = true
	m.mu.Unlock()
	return b, created, nil
}

// ReadAt implements io.ReaderAt through the underlying file: the copy
// path for disabled-mode readers, for blocks straddling a window
// boundary, and for files whose mapping was refused.
func (m *mmapFile) ReadAt(p []byte, off int64) (int, error) {
	return m.inner.ReadAt(p, off)
}

// Close unmaps every window and closes the underlying file. The handle
// cache calls it only after the last reference — reader or resident
// block view — is gone, so no view ever outlives its mapping.
func (m *mmapFile) Close() error {
	m.mu.Lock()
	wins := m.wins
	m.wins = nil
	m.closed = true
	m.mu.Unlock()
	for _, b := range wins {
		syscall.Munmap(b) //nolint:errcheck — read-only mapping
	}
	return m.inner.Close()
}
