package cache

import (
	"math"
	"math/big"
	"testing"
)

// The block-slicing math (offset/length → block index and intra-block
// range) backs every ReadAt, every memo hit, and the mmap backend's
// window placement — a wrong answer is silent data corruption. These
// fuzz targets check it against a big-integer oracle that cannot
// overflow, seeded with the block- and remap-window edges the
// implementation special-cases.

// slicingSeeds are the boundary cases: block edges, window edges
// (DefaultMmapWindowBytes and the 4 KiB page-rounded minimum the
// conformance suite uses), and the extremes of int64.
var slicingSeeds = [][2]int64{
	{0, 512}, {511, 512}, {512, 512}, {513, 512},
	{4095, 4096}, {4096, 4096}, {4097, 4096},
	{DefaultMmapWindowBytes - 1, DefaultMmapWindowBytes},
	{DefaultMmapWindowBytes, DefaultMmapWindowBytes},
	{DefaultMmapWindowBytes + 1, DefaultMmapWindowBytes},
	{math.MaxInt64, 1}, {math.MaxInt64, 512}, {math.MaxInt64, math.MaxInt64},
	{1 << 62, 4096}, {0, 1}, {1, 1},
}

func FuzzChunkAt(f *testing.F) {
	for _, s := range slicingSeeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, pos, size int64) {
		if pos < 0 || size <= 0 {
			t.Skip() // outside chunkAt's contract (callers guard both)
		}
		idx, off := chunkAt(pos, size)
		if off < 0 || off >= size {
			t.Fatalf("chunkAt(%d, %d): off %d out of [0, %d)", pos, size, off, size)
		}
		if idx < 0 {
			t.Fatalf("chunkAt(%d, %d): negative index %d", pos, size, idx)
		}
		// idx*size + off == pos, computed without overflow.
		back := new(big.Int).Mul(big.NewInt(idx), big.NewInt(size))
		back.Add(back, big.NewInt(off))
		if back.Cmp(big.NewInt(pos)) != 0 {
			t.Fatalf("chunkAt(%d, %d) = (%d, %d): reconstructs %s", pos, size, idx, off, back)
		}
	})
}

func FuzzCrossesChunk(f *testing.F) {
	for _, s := range slicingSeeds {
		f.Add(s[0], int64(1), s[1])
		f.Add(s[0], s[1], s[1])
		f.Add(s[0], s[1]+1, s[1])
	}
	f.Fuzz(func(t *testing.T, off, n, size int64) {
		if off < 0 || size <= 0 {
			t.Skip()
		}
		got := crossesChunk(off, n, size)
		if n <= 0 {
			if got {
				t.Fatalf("crossesChunk(%d, %d, %d) = true for an empty span", off, n, size)
			}
			return
		}
		// Oracle: does [off, off+n) extend past the chunk holding off?
		coff := new(big.Int).Mod(big.NewInt(off), big.NewInt(size))
		end := new(big.Int).Add(coff, big.NewInt(n))
		want := end.Cmp(big.NewInt(size)) > 0
		if got != want {
			t.Fatalf("crossesChunk(%d, %d, %d) = %v, oracle says %v", off, n, size, got, want)
		}
	})
}
