package cache

// The readahead prefetcher: a single background worker that loads the
// next blocks of a detected forward scan into the cache off the
// critical path. Extraction reads an AFC segment front to back in
// block-sized spans; once a reader advances from block b to b+1 the
// next Config.Readahead blocks are queued here, so by the time the
// scan arrives they are (ideally) already resident and the demand read
// is a memory copy.
//
// The queue is lossy by design: when it is full, requests are dropped
// rather than ever stalling a demand read. Prefetch I/O and block
// installs go through the same single-flight path as demand loads, so
// a demand read that arrives mid-prefetch waits for that one read
// instead of duplicating it.

// prefetchQueue bounds the pending prefetch requests.
const prefetchQueue = 256

type prefetchReq struct {
	path    string
	blockNo int64
}

// schedulePrefetch queues the n blocks after bn for background
// loading, skipping ones already resident or in flight. Never blocks.
func (c *Cache) schedulePrefetch(path string, bn int64, n int) {
	for i := 1; i <= n; i++ {
		k := blockKey{path, bn + int64(i)}
		if c.contains(k) {
			continue
		}
		select {
		case c.pfCh <- prefetchReq{path: k.path, blockNo: k.blockNo}:
		default:
			return // queue full; drop the rest
		}
	}
}

// prefetchLoop is the background worker; it exits when Close is
// called. Errors are deliberately swallowed: a failed prefetch simply
// leaves the block to the demand path, which reports the error with
// full context.
func (c *Cache) prefetchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case req := <-c.pfCh:
			k := blockKey{req.path, req.blockNo}
			if c.contains(k) {
				continue
			}
			h, err := c.handles.acquire(req.path)
			if err != nil {
				continue
			}
			c.getBlock(h, k, nil, true) //nolint:errcheck — demand path reports errors
			c.handles.release(h)
		}
	}
}
