package cache

// Block- and window-slicing math, factored out of the reader and the
// mmap backend so the two layers agree by construction and the fuzz
// suite (slicing_fuzz_test.go) can check them against a naive oracle.
// Both layers partition a file into fixed-size aligned chunks — the
// reader into cache blocks of Config.BlockBytes, the mmap backend into
// mapping windows of Config.MmapWindowBytes — and both need the same
// two answers: which chunk holds a byte, and whether a span stays
// inside one chunk.

// chunkAt returns the index of the fixed-size chunk containing pos and
// the offset of pos within that chunk. pos must be non-negative and
// size positive.
func chunkAt(pos, size int64) (idx, off int64) {
	idx = pos / size
	return idx, pos - idx*size
}

// crossesChunk reports whether the span [off, off+n) straddles a chunk
// boundary of the given chunk size — the condition under which a
// single zero-copy view cannot serve it. Spans are never considered
// in-chunk when they would overflow int64 arithmetic.
func crossesChunk(off, n, size int64) bool {
	if n <= 0 {
		return false
	}
	_, coff := chunkAt(off, size)
	if coff > size-n { // written to avoid coff+n overflow
		return true
	}
	return false
}
