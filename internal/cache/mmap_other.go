//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package cache

// The portability gate's pread side: platforms without syscall.Mmap
// (or where its semantics are unverified) run every backend — pread,
// mmap, auto — over positional reads. The Backend knob stays accepted
// so configurations are portable; only the zero-copy serving is lost.

const mmapSupported = false

// blockViews is never implemented here; the probe in getBlock simply
// misses.
type blockViews interface {
	view(off, n int64) (data []byte, eof bool, remapped int64, err error)
}

// wrapMmap is the identity on platforms without mmap support.
func wrapMmap(f File, window int64) File { return f }
