package sparse

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"datavirt/internal/query"
)

// FuzzSidecarRoundTrip feeds arbitrary bytes to the decoder; anything
// that decodes must re-encode byte-identically (the format has exactly
// one serialization per sidecar), and decoding must never panic.
func FuzzSidecarRoundTrip(f *testing.F) {
	seed := sampleSidecar()
	if b, err := seed.EncodeBytes(); err == nil {
		f.Add(b)
	}
	seed.Grid = nil
	if b, err := seed.EncodeBytes(); err == nil {
		f.Add(b)
	}
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, b []byte) {
		sc, err := Decode(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			return
		}
		out, err := sc.EncodeBytes()
		if err != nil {
			t.Fatalf("decoded sidecar fails to encode: %v", err)
		}
		sc2, err := Decode(bytes.NewReader(out), int64(len(out)))
		if err != nil {
			t.Fatalf("re-encoded sidecar fails to decode: %v", err)
		}
		out2, err := sc2.EncodeBytes()
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("encode not idempotent: %d vs %d bytes", len(out), len(out2))
		}
	})
}

// FuzzPruneOracle checks soundness of zone pruning: over a synthetic
// file whose values are known, any span SpanMayMatch prunes must truly
// contain no row in the queried range. Completeness (pruning everything
// prunable) is not required — only that pruning never loses rows.
func FuzzPruneOracle(f *testing.F) {
	f.Add(int64(0), int64(1024), uint16(64), false, false)
	f.Add(int64(-50), int64(50), uint16(16), true, false)
	f.Add(int64(100), int64(90), uint16(256), false, true)
	f.Fuzz(func(t *testing.T, lo, hi int64, blockRows uint16, openLo, openHi bool) {
		const n = 256
		if blockRows == 0 {
			blockRows = 1
		}
		data := make([]byte, 16*n)
		vals := make([]float64, n)
		for i := int64(0); i < n; i++ {
			// Non-monotone but deterministic values exercise zones whose
			// blocks overlap in value space.
			v := float64((i*37)%101) - 50
			vals[i] = v
			binary.LittleEndian.PutUint64(data[i*16:], math.Float64bits(v))
			binary.LittleEndian.PutUint64(data[i*16+8:], math.Float64bits(float64(i)))
		}
		fl := flatLayout(n)
		bb := int64(blockRows) * 16
		sc, err := BuildFile(fl, bytes.NewReader(data), int64(len(data)), false, nil,
			BuildOptions{BlockBytes: bb})
		if err != nil {
			t.Fatal(err)
		}
		iv := query.Interval{Lo: float64(lo), Hi: float64(hi), LoOpen: openLo, HiOpen: openHi}
		set := query.NewSet(iv)
		for row := int64(0); row < n; row++ {
			off, span := row*16, int64(16)
			if sc.SpanMayMatch("X", off, span, set) {
				continue
			}
			if set.Contains(vals[row]) {
				t.Fatalf("row %d (X=%g) pruned by range [%d,%d] open=%v/%v",
					row, vals[row], lo, hi, openLo, openHi)
			}
		}
	})
}
