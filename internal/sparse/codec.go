package sparse

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// On-disk layout, all fields little-endian:
//
//	header   8 B   magic "DVSX" | version u16 | flags u16
//	zones          blockBytes i64 | numBlocks i64 | nattrs u16 |
//	               nattrs × { nameLen u16 | name | numBlocks × (min f64, max f64) }
//	grid     opt   ndims u16 | ndims × { nameLen u16 | name | cells u32 | min f64 | max f64 } |
//	               nwords u64 | words u64[nwords]
//	trailer  48 B  zonesOff i64 | zonesLen i64 | gridOff i64 | gridLen i64 |
//	               dataBytes i64 | version u16 | flags u16 | magic "DVSX"
//
// The trailer is fixed-size at EOF, so a reader seeks to size-48, checks
// the magic, and reads the two sections it points at — opening never
// scans the file. The grid section is absent when gridLen == 0.

const (
	magic       = "DVSX"
	Version     = 1
	trailerSize = 48
	headerSize  = 8

	// Sanity caps: a sidecar describing more blocks or attributes than
	// these is treated as corrupt rather than allocated for.
	maxBlocks    = 1 << 28
	maxAttrs     = 1 << 12
	maxGridDims  = 1 << 6
	maxGridWords = 1 << 24
	maxNameLen   = 1 << 10
)

// A CorruptError describes why a sidecar failed validation. Callers
// treat any decode error as "no sidecar" and fall back to full scans;
// the distinct type exists so tools (dvindex verify) can report it.
type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return "sparse: corrupt sidecar: " + e.Reason }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// EncodeBytes serializes the sidecar into the on-disk format.
func (sc *Sidecar) EncodeBytes() ([]byte, error) {
	if sc.BlockBytes <= 0 {
		return nil, fmt.Errorf("sparse: encode: BlockBytes %d", sc.BlockBytes)
	}
	if sc.NumBlocks != ceilDiv(sc.DataBytes, sc.BlockBytes) {
		return nil, fmt.Errorf("sparse: encode: NumBlocks %d != ceil(%d/%d)",
			sc.NumBlocks, sc.DataBytes, sc.BlockBytes)
	}
	buf := make([]byte, 0, sc.encodedSizeHint())
	buf = append(buf, magic...)
	buf = appendU16(buf, Version)
	buf = appendU16(buf, 0) // flags

	zonesOff := int64(len(buf))
	buf = appendI64(buf, sc.BlockBytes)
	buf = appendI64(buf, sc.NumBlocks)
	if len(sc.Attrs) > maxAttrs {
		return nil, fmt.Errorf("sparse: encode: %d attrs", len(sc.Attrs))
	}
	buf = appendU16(buf, uint16(len(sc.Attrs)))
	for i := range sc.Attrs {
		a := &sc.Attrs[i]
		if int64(len(a.Min)) != sc.NumBlocks || int64(len(a.Max)) != sc.NumBlocks {
			return nil, fmt.Errorf("sparse: encode: attr %s has %d/%d zones, want %d",
				a.Name, len(a.Min), len(a.Max), sc.NumBlocks)
		}
		if len(a.Name) > maxNameLen {
			return nil, fmt.Errorf("sparse: encode: attr name %d bytes", len(a.Name))
		}
		buf = appendU16(buf, uint16(len(a.Name)))
		buf = append(buf, a.Name...)
		for b := int64(0); b < sc.NumBlocks; b++ {
			buf = appendF64(buf, a.Min[b])
			buf = appendF64(buf, a.Max[b])
		}
	}
	zonesLen := int64(len(buf)) - zonesOff

	gridOff, gridLen := int64(0), int64(0)
	if g := sc.Grid; g != nil {
		if len(g.Attrs) == 0 || len(g.Attrs) > maxGridDims ||
			len(g.Min) != len(g.Attrs) || len(g.Max) != len(g.Attrs) || len(g.Cells) != len(g.Attrs) {
			return nil, fmt.Errorf("sparse: encode: malformed grid (%d dims)", len(g.Attrs))
		}
		gridOff = int64(len(buf))
		buf = appendU16(buf, uint16(len(g.Attrs)))
		for d, name := range g.Attrs {
			if len(name) > maxNameLen {
				return nil, fmt.Errorf("sparse: encode: grid attr name %d bytes", len(name))
			}
			if g.Cells[d] <= 0 || g.Cells[d] > math.MaxUint32 {
				return nil, fmt.Errorf("sparse: encode: grid dim %s has %d cells", name, g.Cells[d])
			}
			buf = appendU16(buf, uint16(len(name)))
			buf = append(buf, name...)
			buf = appendU32(buf, uint32(g.Cells[d]))
			buf = appendF64(buf, g.Min[d])
			buf = appendF64(buf, g.Max[d])
		}
		if len(g.Bits) > maxGridWords {
			return nil, fmt.Errorf("sparse: encode: grid bitmap %d words", len(g.Bits))
		}
		buf = appendU64(buf, uint64(len(g.Bits)))
		for _, w := range g.Bits {
			buf = appendU64(buf, w)
		}
		gridLen = int64(len(buf)) - gridOff
	}

	buf = appendI64(buf, zonesOff)
	buf = appendI64(buf, zonesLen)
	buf = appendI64(buf, gridOff)
	buf = appendI64(buf, gridLen)
	buf = appendI64(buf, sc.DataBytes)
	buf = appendU16(buf, Version)
	buf = appendU16(buf, 0) // flags
	buf = append(buf, magic...)
	return buf, nil
}

func (sc *Sidecar) encodedSizeHint() int {
	n := headerSize + trailerSize + 18
	for i := range sc.Attrs {
		n += 2 + len(sc.Attrs[i].Name) + 16*int(sc.NumBlocks)
	}
	if sc.Grid != nil {
		n += 10
		for _, name := range sc.Grid.Attrs {
			n += 22 + len(name)
		}
		n += 8 * len(sc.Grid.Bits)
	}
	return n
}

// Encode writes the serialized sidecar to w.
func (sc *Sidecar) Encode(w io.Writer) error {
	buf, err := sc.EncodeBytes()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Decode reads a sidecar from r, whose total length is size. It reads
// the trailer and the sections it points at; it never reads anything
// else, so opening stays O(index), not O(data). Any structural problem
// returns a *CorruptError.
func Decode(r io.ReaderAt, size int64) (*Sidecar, error) {
	if size < headerSize+trailerSize {
		return nil, corruptf("file %d bytes, smaller than header+trailer", size)
	}
	tr := make([]byte, trailerSize)
	if _, err := r.ReadAt(tr, size-trailerSize); err != nil {
		return nil, fmt.Errorf("sparse: read trailer: %w", err)
	}
	if string(tr[44:48]) != magic {
		return nil, corruptf("bad trailer magic %q", tr[44:48])
	}
	zonesOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	zonesLen := int64(binary.LittleEndian.Uint64(tr[8:]))
	gridOff := int64(binary.LittleEndian.Uint64(tr[16:]))
	gridLen := int64(binary.LittleEndian.Uint64(tr[24:]))
	dataBytes := int64(binary.LittleEndian.Uint64(tr[32:]))
	version := binary.LittleEndian.Uint16(tr[40:])
	if version != Version {
		return nil, corruptf("version %d, want %d", version, Version)
	}
	if dataBytes < 0 {
		return nil, corruptf("negative data size %d", dataBytes)
	}
	hdr := make([]byte, headerSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("sparse: read header: %w", err)
	}
	if string(hdr[0:4]) != magic {
		return nil, corruptf("bad header magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != Version {
		return nil, corruptf("header version %d, want %d", v, Version)
	}
	if zonesLen < 18 || zonesLen > size || zonesOff < headerSize || zonesOff > size-trailerSize-zonesLen {
		return nil, corruptf("zones section [%d,+%d) out of bounds", zonesOff, zonesLen)
	}
	zb := make([]byte, zonesLen)
	if _, err := r.ReadAt(zb, zonesOff); err != nil {
		return nil, fmt.Errorf("sparse: read zones: %w", err)
	}
	sc := &Sidecar{DataBytes: dataBytes}
	if err := sc.decodeZones(zb); err != nil {
		return nil, err
	}
	if sc.NumBlocks != ceilDiv(dataBytes, sc.BlockBytes) {
		return nil, corruptf("numBlocks %d != ceil(%d/%d)", sc.NumBlocks, dataBytes, sc.BlockBytes)
	}
	if gridLen > 0 {
		if gridLen > size || gridOff < headerSize || gridOff > size-trailerSize-gridLen {
			return nil, corruptf("grid section [%d,+%d) out of bounds", gridOff, gridLen)
		}
		gb := make([]byte, gridLen)
		if _, err := r.ReadAt(gb, gridOff); err != nil {
			return nil, fmt.Errorf("sparse: read grid: %w", err)
		}
		if err := sc.decodeGrid(gb); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

type cursor struct {
	b   []byte
	off int
}

func (c *cursor) need(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, corruptf("section truncated at byte %d (need %d of %d)", c.off, n, len(c.b))
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p, nil
}

func (c *cursor) u16() (uint16, error) {
	p, err := c.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(p), nil
}

func (c *cursor) u32() (uint32, error) {
	p, err := c.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

func (c *cursor) u64() (uint64, error) {
	p, err := c.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

func (c *cursor) i64() (int64, error) {
	v, err := c.u64()
	return int64(v), err
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *cursor) name() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	if n == 0 || int(n) > maxNameLen {
		return "", corruptf("attr name length %d", n)
	}
	p, err := c.need(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func (sc *Sidecar) decodeZones(b []byte) error {
	c := &cursor{b: b}
	var err error
	if sc.BlockBytes, err = c.i64(); err != nil {
		return err
	}
	if sc.BlockBytes <= 0 {
		return corruptf("blockBytes %d", sc.BlockBytes)
	}
	if sc.NumBlocks, err = c.i64(); err != nil {
		return err
	}
	if sc.NumBlocks < 0 || sc.NumBlocks > maxBlocks {
		return corruptf("numBlocks %d", sc.NumBlocks)
	}
	nattrs, err := c.u16()
	if err != nil {
		return err
	}
	if int(nattrs) > maxAttrs {
		return corruptf("%d attrs", nattrs)
	}
	sc.Attrs = make([]AttrZones, nattrs)
	for i := range sc.Attrs {
		a := &sc.Attrs[i]
		if a.Name, err = c.name(); err != nil {
			return err
		}
		a.Min = make([]float64, sc.NumBlocks)
		a.Max = make([]float64, sc.NumBlocks)
		for bi := int64(0); bi < sc.NumBlocks; bi++ {
			if a.Min[bi], err = c.f64(); err != nil {
				return err
			}
			if a.Max[bi], err = c.f64(); err != nil {
				return err
			}
		}
	}
	if c.off != len(b) {
		return corruptf("zones section has %d trailing bytes", len(b)-c.off)
	}
	return nil
}

func (sc *Sidecar) decodeGrid(b []byte) error {
	c := &cursor{b: b}
	ndims, err := c.u16()
	if err != nil {
		return err
	}
	if ndims == 0 || int(ndims) > maxGridDims {
		return corruptf("grid with %d dims", ndims)
	}
	g := &Grid{
		Attrs: make([]string, ndims),
		Min:   make([]float64, ndims),
		Max:   make([]float64, ndims),
		Cells: make([]int, ndims),
	}
	cellTotal := 1
	for d := 0; d < int(ndims); d++ {
		if g.Attrs[d], err = c.name(); err != nil {
			return err
		}
		cells, err := c.u32()
		if err != nil {
			return err
		}
		if cells == 0 {
			return corruptf("grid dim %s with 0 cells", g.Attrs[d])
		}
		g.Cells[d] = int(cells)
		if cellTotal > maxGridWords*64/int(cells) {
			return corruptf("grid cell space overflow")
		}
		cellTotal *= int(cells)
		if g.Min[d], err = c.f64(); err != nil {
			return err
		}
		if g.Max[d], err = c.f64(); err != nil {
			return err
		}
	}
	nwords, err := c.u64()
	if err != nil {
		return err
	}
	if nwords > maxGridWords {
		return corruptf("grid bitmap %d words", nwords)
	}
	if int(nwords)*64 < cellTotal {
		return corruptf("grid bitmap %d words for %d cells", nwords, cellTotal)
	}
	g.Bits = make([]uint64, nwords)
	for i := range g.Bits {
		if g.Bits[i], err = c.u64(); err != nil {
			return err
		}
	}
	if c.off != len(b) {
		return corruptf("grid section has %d trailing bytes", len(b)-c.off)
	}
	sc.Grid = g
	return nil
}

// WriteFile atomically writes the sidecar beside path's data file (at
// path + Suffix when path does not already carry the suffix is the
// caller's concern — path here is the sidecar path itself). The write
// goes to a temp file in the same directory and renames into place, so
// readers never observe a partial sidecar.
func WriteFile(path string, sc *Sidecar) error {
	buf, err := sc.EncodeBytes()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".dvsx-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadFile opens and decodes the sidecar at path.
func ReadFile(path string) (*Sidecar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return Decode(f, fi.Size())
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
