// Package sparse implements the persistent sparse block index: a
// versioned, immutable sidecar file written once beside each DATASPACE
// data file, holding per-block min/max zone maps for the file's stored
// attributes plus a coarse multidimensional grid summary over up to
// three spatially meaningful attributes. It is the within-chunk
// counterpart of the paper's indexing service: the planner prunes at
// aligned-file-chunk granularity, the sidecar lets the extractor skip
// byte blocks inside a chunk that provably contain no matching row.
//
// Pruning safety rests on two conservative facts. First, query.Ranges
// is an over-approximation of the WHERE clause: every surviving row has
// each constrained attribute inside its set, so a block whose recorded
// [min, max] for that attribute misses the set cannot contribute a row.
// Second, zone blocks are byte-granular over the data file, so merging
// the zones of every block a read span overlaps only widens the bound —
// a widened bound can fail to prune, never prune wrongly. The grid
// summary is sound for a row only when every constrained grid attribute
// is read from the same file (the occupancy bitmap records joint value
// tuples at a common element index); callers must check that sourcing
// condition before consulting it.
//
// The on-disk format (see codec.go) ends in a fixed-size trailer that
// locates the zone-map and grid sections, so opening a sidecar reads
// the trailer and the two sections directly and never scans data.
package sparse

import (
	"math"

	"datavirt/internal/query"
)

// Suffix is appended to a data file's path to name its sidecar.
const Suffix = ".dvsx"

// DefaultBlockBytes is the zone-map block granularity used when a
// build does not choose one: small enough that a selective query skips
// most of a multi-megabyte file, large enough that the sidecar stays a
// negligible fraction of the data.
const DefaultBlockBytes = 64 << 10

// AttrZones is the zone map of one attribute: Min[b] and Max[b] bound
// the attribute's values whose encoded bytes touch byte block b of the
// data file. A block holding no element of the attribute has the empty
// zone (Min = +Inf, Max = -Inf).
type AttrZones struct {
	Name string
	Min  []float64
	Max  []float64
}

// Grid is the coarse multidimensional summary: the data file's joint
// (attr_1, ..., attr_d) value tuples, bucketed into Cells[i] equal-width
// cells per dimension between the observed Min[i] and Max[i], with one
// occupancy bit per cell tuple (row-major, dimension 0 outermost).
type Grid struct {
	Attrs []string
	Min   []float64
	Max   []float64
	Cells []int
	Bits  []uint64
}

// Sidecar is one decoded sparse index.
type Sidecar struct {
	// DataBytes is the size of the data file the sidecar was built from;
	// readers compare it against the live file to detect staleness.
	DataBytes int64
	// BlockBytes is the zone-map block granularity.
	BlockBytes int64
	// NumBlocks is len(zone slices): ceil(DataBytes / BlockBytes).
	NumBlocks int64
	// Attrs holds one zone map per indexed attribute.
	Attrs []AttrZones
	// Grid is the multidimensional summary, nil when the file has fewer
	// than two co-dimensional attributes to summarize.
	Grid *Grid
}

// Zones returns the zone map for attr, or nil when the sidecar does
// not index it.
func (sc *Sidecar) Zones(attr string) *AttrZones {
	for i := range sc.Attrs {
		if sc.Attrs[i].Name == attr {
			return &sc.Attrs[i]
		}
	}
	return nil
}

// emptyZone reports whether the zone holds no recorded values.
func emptyZone(lo, hi float64) bool {
	return !(lo <= hi) // catches Min > Max and NaN
}

// SpanMayMatch reports whether the byte span [off, off+span) of the
// data file may hold a value of attr inside set. It merges the zones of
// every block the span overlaps; spans reaching outside the recorded
// blocks, attributes the sidecar does not index, and empty or invalid
// zones all answer true — pruning is only ever an optimization.
func (sc *Sidecar) SpanMayMatch(attr string, off, span int64, set query.Set) bool {
	z := sc.Zones(attr)
	if z == nil || span <= 0 || sc.BlockBytes <= 0 {
		return true
	}
	b0 := off / sc.BlockBytes
	b1 := (off + span - 1) / sc.BlockBytes
	if b0 < 0 || b1 >= int64(len(z.Min)) {
		return true // span outside the recorded blocks: no evidence
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for b := b0; b <= b1; b++ {
		if z.Min[b] < lo {
			lo = z.Min[b]
		}
		if z.Max[b] > hi {
			hi = z.Max[b]
		}
	}
	if emptyZone(lo, hi) {
		// The span's blocks claim to hold no values of an attribute the
		// extractor is about to read there: the sidecar is inconsistent
		// with the layout, so refuse to prune on it.
		return true
	}
	return set.Overlaps(query.Interval{Lo: lo, Hi: hi})
}

// GridAttrs returns the grid's dimension attributes, nil without a grid.
func (sc *Sidecar) GridAttrs() []string {
	if sc.Grid == nil {
		return nil
	}
	return sc.Grid.Attrs
}

// GridMayMatch reports whether any joint value tuple recorded in the
// grid satisfies every dimension's constraint set. Callers must ensure
// every *constrained* grid attribute is sourced from this file by the
// rows being tested (see the package comment); unconstrained dimensions
// pass every cell. A sidecar without a grid answers true.
func (sc *Sidecar) GridMayMatch(ranges query.Ranges) bool {
	g := sc.Grid
	if g == nil || len(g.Attrs) == 0 {
		return true
	}
	// Per-dimension allowed-cell masks. A cell covers the closed
	// interval [min + c*w, min + (c+1)*w]; closed on both ends keeps
	// boundary values conservative.
	allowed := make([][]bool, len(g.Attrs))
	constrainedAny := false
	for d, attr := range g.Attrs {
		cells := g.Cells[d]
		if cells <= 0 || len(g.Bits) == 0 {
			return true // malformed grid: refuse to prune
		}
		set := ranges.Get(attr)
		mask := make([]bool, cells)
		if set.IsFull() {
			for c := range mask {
				mask[c] = true
			}
			allowed[d] = mask
			continue
		}
		constrainedAny = true
		w := (g.Max[d] - g.Min[d]) / float64(cells)
		if !(w >= 0) || math.IsInf(w, 0) {
			return true // degenerate bounds: refuse to prune
		}
		for c := range mask {
			iv := query.Interval{Lo: g.Min[d] + float64(c)*w, Hi: g.Min[d] + float64(c+1)*w}
			if w == 0 {
				iv = query.Interval{Lo: g.Min[d], Hi: g.Max[d]}
			}
			mask[c] = set.Overlaps(iv)
		}
		allowed[d] = mask
	}
	if !constrainedAny {
		return true
	}
	// Scan occupied cell tuples (row-major over dimensions).
	total := 1
	for _, c := range g.Cells {
		total *= c
	}
	if total > len(g.Bits)*64 {
		return true // bitmap shorter than the cell space: malformed
	}
	for i := 0; i < total; i++ {
		if g.Bits[i>>6]&(1<<uint(i&63)) == 0 {
			continue
		}
		idx := i
		ok := true
		for d := len(g.Cells) - 1; d >= 0; d-- {
			c := idx % g.Cells[d]
			idx /= g.Cells[d]
			if !allowed[d][c] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
