package sparse

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datavirt/internal/layout"
	"datavirt/internal/query"
	"datavirt/internal/schema"
)

// sampleSidecar builds a small in-memory sidecar for codec tests.
func sampleSidecar() *Sidecar {
	return &Sidecar{
		DataBytes:  1000,
		BlockBytes: 256,
		NumBlocks:  4,
		Attrs: []AttrZones{
			{Name: "X", Min: []float64{0, 10, 20, 30}, Max: []float64{9, 19, 29, 39}},
			{Name: "Y", Min: []float64{-1, math.Inf(1), 5, 7}, Max: []float64{1, math.Inf(-1), 6, 8}},
		},
		Grid: &Grid{
			Attrs: []string{"X", "Y"},
			Min:   []float64{0, -1},
			Max:   []float64{39, 8},
			Cells: []int{4, 4},
			Bits:  []uint64{0x8421},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sc := sampleSidecar()
	buf, err := sc.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := got.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(buf), len(buf2))
	}
	if got.DataBytes != sc.DataBytes || got.BlockBytes != sc.BlockBytes || got.NumBlocks != sc.NumBlocks {
		t.Fatalf("header fields differ: %+v", got)
	}
	if got.Zones("X") == nil || got.Zones("Y") == nil || got.Zones("Z") != nil {
		t.Fatalf("attrs differ: %+v", got.Attrs)
	}
	if got.Grid == nil || got.Grid.Bits[0] != 0x8421 {
		t.Fatalf("grid differs: %+v", got.Grid)
	}
}

func TestEncodeNoGrid(t *testing.T) {
	sc := sampleSidecar()
	sc.Grid = nil
	buf, err := sc.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != nil {
		t.Fatalf("expected no grid, got %+v", got.Grid)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	sc := sampleSidecar()
	buf, err := sc.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated to header", func(b []byte) []byte { return b[:8] }},
		{"truncated mid-file", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad header magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad trailer magic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[len(b)-8:], Version+7)
			return b
		}},
		{"data size mismatch", func(b []byte) []byte {
			// numBlocks no longer matches ceil(dataBytes/blockBytes).
			binary.LittleEndian.PutUint64(b[len(b)-16:], 1<<20)
			return b
		}},
		{"zones out of bounds", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(b)-48:], uint64(len(b)))
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mb := tc.mut(append([]byte(nil), buf...))
			if _, err := Decode(bytes.NewReader(mb), int64(len(mb))); err == nil {
				t.Fatalf("decode of corrupt sidecar succeeded")
			}
		})
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin"+Suffix)
	sc := sampleSidecar()
	if err := WriteFile(path, sc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks != sc.NumBlocks || len(got.Attrs) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

func TestSpanMayMatch(t *testing.T) {
	sc := sampleSidecar()
	set := query.NewSet(query.Interval{Lo: 15, Hi: 17})
	// Block 1 holds X in [10,19]: spans inside it may match.
	if !sc.SpanMayMatch("X", 256, 64, set) {
		t.Error("span in matching block pruned")
	}
	// Block 3 holds X in [30,39]: cannot match.
	if sc.SpanMayMatch("X", 800, 64, set) {
		t.Error("span in non-matching block not pruned")
	}
	// A span crossing blocks 0-1 merges to [0,19]: may match.
	if !sc.SpanMayMatch("X", 200, 100, set) {
		t.Error("cross-block span pruned")
	}
	// Unknown attribute: may match.
	if !sc.SpanMayMatch("Z", 0, 64, set) {
		t.Error("unknown attribute pruned")
	}
	// Span beyond recorded blocks: may match.
	if !sc.SpanMayMatch("X", 100000, 64, set) {
		t.Error("out-of-range span pruned")
	}
	// Empty zone (block 1 of Y is +Inf/-Inf): may match.
	if !sc.SpanMayMatch("Y", 256, 64, query.NewSet(query.Interval{Lo: 0, Hi: 0})) {
		t.Error("empty zone pruned")
	}
	// Zero-length span: may match (no evidence).
	if !sc.SpanMayMatch("X", 800, 0, set) {
		t.Error("zero span pruned")
	}
}

func TestGridMayMatch(t *testing.T) {
	// Grid over X in [0,4), Y in [0,4), 4 cells each, occupancy only on
	// the diagonal cells (X cell == Y cell).
	g := &Grid{
		Attrs: []string{"X", "Y"},
		Min:   []float64{0, 0},
		Max:   []float64{4, 4},
		Cells: []int{4, 4},
	}
	g.Bits = make([]uint64, 1)
	for c := 0; c < 4; c++ {
		cell := c*4 + c
		g.Bits[cell>>6] |= 1 << uint(cell&63)
	}
	sc := &Sidecar{BlockBytes: 64, Grid: g}
	diag := func(xlo, xhi, ylo, yhi float64) bool {
		return sc.GridMayMatch(query.Ranges{
			"X": query.NewSet(query.Interval{Lo: xlo, Hi: xhi}),
			"Y": query.NewSet(query.Interval{Lo: ylo, Hi: yhi}),
		})
	}
	if !diag(0.1, 0.2, 0.1, 0.2) {
		t.Error("on-diagonal query pruned")
	}
	if diag(0.1, 0.2, 3.1, 3.2) {
		t.Error("off-diagonal query not pruned")
	}
	// Constraining only one dim passes when any diagonal cell overlaps.
	if !sc.GridMayMatch(query.Ranges{"X": query.NewSet(query.Interval{Lo: 3.5, Hi: 3.6})}) {
		t.Error("single-dim on-grid query pruned")
	}
	// Unconstrained ranges: always true.
	if !sc.GridMayMatch(query.Ranges{}) {
		t.Error("unconstrained query pruned")
	}
	// No grid: always true.
	if !(&Sidecar{}).GridMayMatch(query.Ranges{"X": query.NewSet()}) {
		t.Error("grid-less sidecar pruned")
	}
}

// flatLayout hand-builds a single-dimension layout: n interleaved
// (X float64, Y float64) pairs.
func flatLayout(n int64) *layout.FileLayout {
	step := func(stride int64) []layout.AccessStep {
		return []layout.AccessStep{{Var: "I", Lo: 0, Step: 1, StrideBytes: stride}}
	}
	return &layout.FileLayout{
		Dims: []layout.Dim{{Var: "I", Lo: 0, Hi: n - 1, Step: 1}},
		Accesses: []layout.Access{
			{Attr: "X", Kind: schema.Double, Size: 8, Base: 0, Steps: step(16)},
			{Attr: "Y", Kind: schema.Double, Size: 8, Base: 8, Steps: step(16)},
		},
		TotalBytes: 16 * n,
	}
}

func TestBuildFile(t *testing.T) {
	const n = 64
	data := make([]byte, 16*n)
	for i := int64(0); i < n; i++ {
		binary.LittleEndian.PutUint64(data[i*16:], math.Float64bits(float64(i)))
		binary.LittleEndian.PutUint64(data[i*16+8:], math.Float64bits(float64(n-1-i)))
	}
	fl := flatLayout(n)
	sc, err := BuildFile(fl, bytes.NewReader(data), int64(len(data)), false, nil,
		BuildOptions{BlockBytes: 256, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumBlocks != 4 {
		t.Fatalf("NumBlocks = %d, want 4", sc.NumBlocks)
	}
	// Block b holds rows [16b, 16b+15]: X zone is exactly that range.
	x := sc.Zones("X")
	for b := int64(0); b < 4; b++ {
		if x.Min[b] != float64(16*b) || x.Max[b] != float64(16*b+15) {
			t.Errorf("X zone[%d] = [%g,%g], want [%d,%d]", b, x.Min[b], x.Max[b], 16*b, 16*b+15)
		}
	}
	// Y runs backwards.
	y := sc.Zones("Y")
	if y.Min[0] != 48 || y.Max[0] != 63 {
		t.Errorf("Y zone[0] = [%g,%g], want [48,63]", y.Min[0], y.Max[0])
	}
	// X and Y share dimension I: a 2-attr grid must exist, and only
	// anti-diagonal cells are occupied (Y = 63 - X).
	if sc.Grid == nil {
		t.Fatal("no grid built")
	}
	if !sc.GridMayMatch(query.Ranges{
		"X": query.NewSet(query.Interval{Lo: 0, Hi: 2}),
		"Y": query.NewSet(query.Interval{Lo: 60, Hi: 63}),
	}) {
		t.Error("anti-diagonal corner pruned")
	}
	if sc.GridMayMatch(query.Ranges{
		"X": query.NewSet(query.Interval{Lo: 0, Hi: 2}),
		"Y": query.NewSet(query.Interval{Lo: 0, Hi: 2}),
	}) {
		t.Error("empty joint region not pruned")
	}
	// Pruning oracle on zones: for every block and a fixed range, the
	// zone verdict must not contradict the actual rows.
	set := query.NewSet(query.Interval{Lo: 20, Hi: 25})
	for b := int64(0); b < 4; b++ {
		off, span := b*256, int64(256)
		may := sc.SpanMayMatch("X", off, span, set)
		has := false
		for i := off / 16; i < (off+span)/16; i++ {
			if v := float64(i); v >= 20 && v <= 25 {
				has = true
			}
		}
		if has && !may {
			t.Errorf("block %d has matching rows but was pruned", b)
		}
	}
}

func TestBuildFileShortData(t *testing.T) {
	fl := flatLayout(64)
	_, err := BuildFile(fl, bytes.NewReader(make([]byte, 100)), 100, false, nil, BuildOptions{})
	if err == nil {
		t.Fatal("build over short data succeeded")
	}
}

func TestChooseGridAttrsExplicitErrors(t *testing.T) {
	fl := flatLayout(4)
	if _, err := chooseGridAttrs(fl, []string{"X", "Y"}, nil, []string{"X", "NOPE"}); err == nil {
		t.Error("unknown explicit grid attr accepted")
	}
	if _, err := chooseGridAttrs(fl, []string{"X"}, nil, []string{"X", "Y"}); err == nil {
		t.Error("grid attr outside zone set accepted")
	}
}

func TestVerifyFile(t *testing.T) {
	const n = 64
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.bin")
	data := make([]byte, 16*n)
	for i := int64(0); i < n; i++ {
		binary.LittleEndian.PutUint64(data[i*16:], math.Float64bits(float64(i)))
		binary.LittleEndian.PutUint64(data[i*16+8:], math.Float64bits(float64(i)*2))
	}
	if err := os.WriteFile(dataPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fl := flatLayout(n)
	sc, err := BuildFile(fl, bytes.NewReader(data), int64(len(data)), false, nil,
		BuildOptions{BlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(SidecarPath(dataPath), sc); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(fl, dataPath, false); err != nil {
		t.Fatalf("verify of honest sidecar: %v", err)
	}
	// Tamper with a zone value: verify must fail.
	raw, err := os.ReadFile(SidecarPath(dataPath))
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(raw[30:], math.Float64bits(-999))
	if err := os.WriteFile(SidecarPath(dataPath), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(fl, dataPath, false); err == nil {
		t.Fatal("verify of tampered sidecar succeeded")
	} else if !strings.Contains(err.Error(), "match") {
		t.Fatalf("unexpected verify error: %v", err)
	}
	// Stale: shrink the data file.
	if err := os.WriteFile(SidecarPath(dataPath), mustEncode(t, sc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(dataPath, 512); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(flatLayout(32), dataPath, false); err == nil {
		t.Fatal("verify of stale sidecar succeeded")
	}
}

func mustEncode(t *testing.T, sc *Sidecar) []byte {
	t.Helper()
	b, err := sc.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
