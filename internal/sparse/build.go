package sparse

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"datavirt/internal/layout"
	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

// BuildOptions configures a sidecar build.
type BuildOptions struct {
	// BlockBytes is the zone-map granularity; DefaultBlockBytes when 0.
	BlockBytes int64
	// Attrs restricts the zone maps to these attributes; all stored
	// payload attributes when empty.
	Attrs []string
	// GridAttrs forces the grid dimensions; when empty the builder
	// prefers the descriptor's DATAINDEX attributes that the file stores,
	// then payload order, up to three co-dimensional attributes, and
	// omits the grid when fewer than two qualify.
	GridAttrs []string
	// GridCells is the cell count per grid dimension; 16 when 0.
	GridCells int
}

const defaultGridCells = 16

func (o BuildOptions) blockBytes() int64 {
	if o.BlockBytes > 0 {
		return o.BlockBytes
	}
	return DefaultBlockBytes
}

func (o BuildOptions) gridCells() int {
	if o.GridCells > 0 {
		return o.GridCells
	}
	return defaultGridCells
}

// dimKey canonicalizes the set of loop variables an access varies along.
func dimKey(a *layout.Access) string {
	vars := make([]string, 0, len(a.Steps))
	for _, s := range a.Steps {
		vars = append(vars, s.Var)
	}
	sort.Strings(vars)
	return strings.Join(vars, "\x00")
}

// BuildFile computes the sidecar for one data file whose instantiated
// layout is fl. data must cover [0, dataBytes); big selects big-endian
// value decoding. indexAttrs (may be nil) is the descriptor's effective
// DATAINDEX list, consulted when choosing default grid dimensions.
func BuildFile(fl *layout.FileLayout, data io.ReaderAt, dataBytes int64, big bool, indexAttrs []string, opt BuildOptions) (*Sidecar, error) {
	if dataBytes < fl.TotalBytes {
		return nil, fmt.Errorf("sparse: data file %d bytes, layout needs %d", dataBytes, fl.TotalBytes)
	}
	bb := opt.blockBytes()
	sc := &Sidecar{
		DataBytes:  dataBytes,
		BlockBytes: bb,
		NumBlocks:  ceilDiv(dataBytes, bb),
	}
	attrs := opt.Attrs
	if len(attrs) == 0 {
		for i := range fl.Accesses {
			attrs = append(attrs, fl.Accesses[i].Attr)
		}
	}
	// Zone pass: one monotone sweep per attribute, recording per-block
	// and global bounds.
	global := map[string][2]float64{}
	for _, name := range attrs {
		acc := fl.Access(name)
		if acc == nil {
			return nil, fmt.Errorf("sparse: file does not store attribute %q", name)
		}
		z := AttrZones{Name: name, Min: make([]float64, sc.NumBlocks), Max: make([]float64, sc.NumBlocks)}
		for b := range z.Min {
			z.Min[b], z.Max[b] = math.Inf(1), math.Inf(-1)
		}
		glo, ghi := math.Inf(1), math.Inf(-1)
		cr := &chunkReader{r: data, size: dataBytes}
		err := walkAccess(fl, acc, func(off int64) error {
			p, err := cr.at(off, acc.Size)
			if err != nil {
				return fmt.Errorf("sparse: read %s at %d: %w", name, off, err)
			}
			v := schema.DecodeValueOrder(acc.Kind, p, big).AsFloat()
			b0, b1 := off/bb, (off+acc.Size-1)/bb
			for b := b0; b <= b1; b++ {
				if v < z.Min[b] {
					z.Min[b] = v
				}
				if v > z.Max[b] {
					z.Max[b] = v
				}
			}
			if v < glo {
				glo = v
			}
			if v > ghi {
				ghi = v
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		global[name] = [2]float64{glo, ghi}
		sc.Attrs = append(sc.Attrs, z)
	}
	gridAttrs, err := chooseGridAttrs(fl, attrs, indexAttrs, opt.GridAttrs)
	if err != nil {
		return nil, err
	}
	if len(gridAttrs) >= 2 {
		g, err := buildGrid(fl, data, dataBytes, big, gridAttrs, opt.gridCells(), global)
		if err != nil {
			return nil, err
		}
		sc.Grid = g
	}
	return sc, nil
}

// chooseGridAttrs picks the grid dimensions: the explicit list when
// given (validated), otherwise index attributes the file stores followed
// by payload order, pruned to the first attribute's dimension set, at
// most three.
func chooseGridAttrs(fl *layout.FileLayout, zoneAttrs, indexAttrs, explicit []string) ([]string, error) {
	zone := map[string]bool{}
	for _, a := range zoneAttrs {
		zone[a] = true
	}
	if len(explicit) > 0 {
		key := ""
		for i, name := range explicit {
			acc := fl.Access(name)
			if acc == nil {
				return nil, fmt.Errorf("sparse: grid attribute %q not stored in file", name)
			}
			if !zone[name] {
				return nil, fmt.Errorf("sparse: grid attribute %q is not in the indexed attribute set", name)
			}
			if i == 0 {
				key = dimKey(acc)
			} else if dimKey(acc) != key {
				return nil, fmt.Errorf("sparse: grid attributes %q and %q vary along different dimensions",
					explicit[0], name)
			}
		}
		return explicit, nil
	}
	var cand []string
	seen := map[string]bool{}
	for _, name := range indexAttrs {
		if zone[name] && fl.Access(name) != nil && !seen[name] {
			cand = append(cand, name)
			seen[name] = true
		}
	}
	for i := range fl.Accesses {
		name := fl.Accesses[i].Attr
		if zone[name] && !seen[name] {
			cand = append(cand, name)
			seen[name] = true
		}
	}
	if len(cand) == 0 {
		return nil, nil
	}
	key := dimKey(fl.Access(cand[0]))
	var out []string
	for _, name := range cand {
		if dimKey(fl.Access(name)) == key {
			out = append(out, name)
			if len(out) == 3 {
				break
			}
		}
	}
	if len(out) < 2 {
		return nil, nil
	}
	return out, nil
}

// buildGrid performs the joint sweep: for every common element index of
// the co-dimensional grid attributes, bucket the value tuple and set its
// occupancy bit.
func buildGrid(fl *layout.FileLayout, data io.ReaderAt, dataBytes int64, big bool, attrs []string, cells int, global map[string][2]float64) (*Grid, error) {
	g := &Grid{
		Attrs: attrs,
		Min:   make([]float64, len(attrs)),
		Max:   make([]float64, len(attrs)),
		Cells: make([]int, len(attrs)),
	}
	accs := make([]*layout.Access, len(attrs))
	for d, name := range attrs {
		accs[d] = fl.Access(name)
		gb, ok := global[name]
		if !ok || emptyZone(gb[0], gb[1]) || math.IsInf(gb[0], 0) || math.IsInf(gb[1], 0) {
			return nil, nil // no finite bounds to bucket against
		}
		g.Min[d], g.Max[d] = gb[0], gb[1]
		g.Cells[d] = cells
	}
	total := 1
	for range attrs {
		if total > maxGridWords*64/cells {
			return nil, fmt.Errorf("sparse: grid cell space overflow (%d cells/dim, %d dims)", cells, len(attrs))
		}
		total *= cells
	}
	g.Bits = make([]uint64, (total+63)/64)
	// All attrs share one dimension set; walk it once using the first
	// access's step order and compute each attr's offset from the same
	// counter. Per-attr chunk readers keep reads sequential even when
	// the attributes live far apart in the file.
	readers := make([]*chunkReader, len(attrs))
	for d := range readers {
		readers[d] = &chunkReader{r: data, size: dataBytes}
	}
	anchor := accs[0]
	steps := make([][]int64, len(attrs)) // strides aligned to anchor's step order
	for d, acc := range accs {
		strides := make([]int64, len(anchor.Steps))
		for i, s := range anchor.Steps {
			strides[i] = acc.StrideAlong(s.Var)
		}
		steps[d] = strides
	}
	counts := make([]int64, len(anchor.Steps))
	for i, s := range anchor.Steps {
		dim, ok := fl.Dim(s.Var)
		if !ok {
			return nil, fmt.Errorf("sparse: access %s uses unknown dimension %s", anchor.Attr, s.Var)
		}
		counts[i] = dim.Count()
	}
	ctr := make([]int64, len(counts))
	widths := make([]float64, len(attrs))
	for d := range attrs {
		widths[d] = (g.Max[d] - g.Min[d]) / float64(cells)
	}
	for {
		cell := 0
		for d := range attrs {
			off := accs[d].Base
			for i, c := range ctr {
				off += c * steps[d][i]
			}
			p, err := readers[d].at(off, accs[d].Size)
			if err != nil {
				return nil, fmt.Errorf("sparse: read %s at %d: %w", attrs[d], off, err)
			}
			v := schema.DecodeValueOrder(accs[d].Kind, p, big).AsFloat()
			c := 0
			if widths[d] > 0 {
				c = int((v - g.Min[d]) / widths[d])
				if c < 0 {
					c = 0
				}
				if c >= cells {
					c = cells - 1
				}
			}
			cell = cell*cells + c
		}
		g.Bits[cell>>6] |= 1 << uint(cell&63)
		// Mixed-radix increment, innermost (last) fastest.
		i := len(ctr) - 1
		for ; i >= 0; i-- {
			ctr[i]++
			if ctr[i] < counts[i] {
				break
			}
			ctr[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return g, nil
}

// walkAccess visits the byte offset of every element of acc in layout
// order (innermost dimension fastest, so offsets are monotone).
func walkAccess(fl *layout.FileLayout, acc *layout.Access, visit func(off int64) error) error {
	counts := make([]int64, len(acc.Steps))
	for i, s := range acc.Steps {
		dim, ok := fl.Dim(s.Var)
		if !ok {
			return fmt.Errorf("sparse: access %s uses unknown dimension %s", acc.Attr, s.Var)
		}
		counts[i] = dim.Count()
	}
	ctr := make([]int64, len(counts))
	for {
		off := acc.Base
		for i, c := range ctr {
			off += c * acc.Steps[i].StrideBytes
		}
		if err := visit(off); err != nil {
			return err
		}
		i := len(ctr) - 1
		for ; i >= 0; i-- {
			ctr[i]++
			if ctr[i] < counts[i] {
				break
			}
			ctr[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// chunkReader serves small monotone reads from a large backing file with
// one syscall per chunk instead of one per element.
type chunkReader struct {
	r    io.ReaderAt
	size int64
	buf  []byte
	off  int64
	n    int64
}

const chunkReadBytes = 1 << 20

func (c *chunkReader) at(off, n int64) ([]byte, error) {
	if n <= 0 || off < 0 || off+n > c.size {
		return nil, io.ErrUnexpectedEOF
	}
	if off >= c.off && off+n <= c.off+c.n {
		return c.buf[off-c.off : off-c.off+n], nil
	}
	if c.buf == nil {
		c.buf = make([]byte, chunkReadBytes)
	}
	want := int64(len(c.buf))
	if off+want > c.size {
		want = c.size - off
	}
	m, err := c.r.ReadAt(c.buf[:want], off)
	if int64(m) < want {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	c.off, c.n = off, want
	return c.buf[:n], nil
}

// Resolver maps a (node, file) pair to a local filesystem path.
type Resolver func(node, file string) (string, error)

// NodeResolver resolves files under root/<node>/<file>, the convention
// shared with core.NodeResolver.
func NodeResolver(root string) Resolver {
	return func(node, file string) (string, error) {
		return filepath.Join(root, node, filepath.FromSlash(file)), nil
	}
}

// SidecarPath returns the sidecar path for a data file path.
func SidecarPath(dataPath string) string { return dataPath + Suffix }

// BuildDataset builds (or rebuilds) sidecars for every DATASPACE leaf
// file of the descriptor, resolving data files through resolve. It
// returns the number of sidecars written. CHUNKED leaves are skipped:
// their paired DVIX index files already provide chunk-level pruning.
// logf (may be nil) receives one line per written sidecar.
func BuildDataset(d *metadata.Descriptor, resolve Resolver, opt BuildOptions, logf func(format string, args ...any)) (int, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	written := 0
	for _, node := range d.Layout.Leaves(nil) {
		if len(node.Chunked) > 0 {
			continue
		}
		esch, extras, err := d.EffectiveSchema(node)
		if err != nil {
			return written, err
		}
		kinds := make(map[string]schema.Kind, esch.NumAttrs()+len(extras))
		for _, a := range esch.Attrs() {
			kinds[a.Name] = a.Kind
		}
		for _, a := range extras {
			kinds[a.Name] = a.Kind
		}
		leaf, err := layout.CompileLeaf(node, kinds)
		if err != nil {
			return written, err
		}
		files, err := metadata.ExpandLeaf(d.Storage, node)
		if err != nil {
			return written, err
		}
		big := d.EffectiveByteOrder(node) == "BIG"
		indexAttrs := d.EffectiveIndexAttrs(node)
		for _, fi := range files {
			fl, err := leaf.Instantiate(fi.Env)
			if err != nil {
				return written, fmt.Errorf("sparse: file %s: %w", fi, err)
			}
			path, err := resolve(fi.Node(), fi.Path())
			if err != nil {
				return written, err
			}
			sc, err := buildOne(fl, path, big, indexAttrs, opt)
			if err != nil {
				return written, fmt.Errorf("sparse: %s: %w", path, err)
			}
			scPath := SidecarPath(path)
			if err := WriteFile(scPath, sc); err != nil {
				return written, err
			}
			written++
			logf("sparse: wrote %s (%d blocks, %d attrs, grid=%v)",
				scPath, sc.NumBlocks, len(sc.Attrs), sc.GridAttrs())
		}
	}
	return written, nil
}

func buildOne(fl *layout.FileLayout, path string, big bool, indexAttrs []string, opt BuildOptions) (*Sidecar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return BuildFile(fl, f, st.Size(), big, indexAttrs, opt)
}

// VerifyDataset checks every DATASPACE leaf file's sidecar against its
// data: the sidecar must exist, decode, match the live file size, and
// reproduce bit-identically when rebuilt with its own parameters. It
// returns the number of sidecars verified.
func VerifyDataset(d *metadata.Descriptor, resolve Resolver, logf func(format string, args ...any)) (int, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	verified := 0
	for _, node := range d.Layout.Leaves(nil) {
		if len(node.Chunked) > 0 {
			continue
		}
		esch, extras, err := d.EffectiveSchema(node)
		if err != nil {
			return verified, err
		}
		kinds := make(map[string]schema.Kind, esch.NumAttrs()+len(extras))
		for _, a := range esch.Attrs() {
			kinds[a.Name] = a.Kind
		}
		for _, a := range extras {
			kinds[a.Name] = a.Kind
		}
		leaf, err := layout.CompileLeaf(node, kinds)
		if err != nil {
			return verified, err
		}
		files, err := metadata.ExpandLeaf(d.Storage, node)
		if err != nil {
			return verified, err
		}
		big := d.EffectiveByteOrder(node) == "BIG"
		for _, fi := range files {
			fl, err := leaf.Instantiate(fi.Env)
			if err != nil {
				return verified, fmt.Errorf("sparse: file %s: %w", fi, err)
			}
			path, err := resolve(fi.Node(), fi.Path())
			if err != nil {
				return verified, err
			}
			if err := VerifyFile(fl, path, big); err != nil {
				return verified, err
			}
			verified++
			logf("sparse: ok %s", SidecarPath(path))
		}
	}
	return verified, nil
}

// VerifyFile checks the sidecar beside one data file: decode, staleness
// against the live size, and a rebuild with the sidecar's own block
// size, attribute list, and grid shape that must match exactly.
func VerifyFile(fl *layout.FileLayout, dataPath string, big bool) error {
	scPath := SidecarPath(dataPath)
	sc, err := ReadFile(scPath)
	if err != nil {
		return fmt.Errorf("%s: %w", scPath, err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if sc.DataBytes != st.Size() {
		return fmt.Errorf("%s: stale: sidecar built for %d data bytes, file has %d",
			scPath, sc.DataBytes, st.Size())
	}
	opt := BuildOptions{BlockBytes: sc.BlockBytes}
	for i := range sc.Attrs {
		opt.Attrs = append(opt.Attrs, sc.Attrs[i].Name)
	}
	if g := sc.Grid; g != nil {
		opt.GridAttrs = append(opt.GridAttrs, g.Attrs...)
		opt.GridCells = g.Cells[0]
	}
	want, err := BuildFile(fl, f, st.Size(), big, nil, opt)
	if err != nil {
		return fmt.Errorf("%s: rebuild: %w", scPath, err)
	}
	if sc.Grid == nil {
		want.Grid = nil // explicit GridAttrs may have produced one anyway
	}
	wantBytes, err := want.EncodeBytes()
	if err != nil {
		return err
	}
	gotBytes, err := sc.EncodeBytes()
	if err != nil {
		return err
	}
	if string(wantBytes) != string(gotBytes) {
		return fmt.Errorf("%s: sidecar does not match a rebuild from data", scPath)
	}
	return nil
}
