// Package rtree implements an in-memory R-tree over axis-aligned
// bounding boxes, bulk-loaded with the Sort-Tile-Recursive (STR)
// algorithm. It is the spatial-index substrate behind the indexing
// service for chunked datasets (the paper's satellite-data case: "a
// spatial index is built so that chunks that intersect the query are
// searched for quickly").
//
// The tree stores integer item references; payloads stay with the
// caller. Trees are immutable after Build, so concurrent Search calls
// need no locking.
package rtree

import (
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned box: Min[d] <= Max[d] for every dimension d.
type Rect struct {
	Min, Max []float64
}

// NewRect builds a rect and validates its shape.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) || len(min) == 0 {
		return Rect{}, fmt.Errorf("rtree: min/max dimension mismatch (%d vs %d)", len(min), len(max))
	}
	for d := range min {
		if min[d] > max[d] {
			return Rect{}, fmt.Errorf("rtree: inverted rect in dimension %d: %g > %g", d, min[d], max[d])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

// Dims returns the dimensionality.
func (r Rect) Dims() int { return len(r.Min) }

// Intersects reports whether the two boxes share any point (closed
// boxes: touching faces intersect).
func (r Rect) Intersects(o Rect) bool {
	for d := range r.Min {
		if r.Max[d] < o.Min[d] || o.Max[d] < r.Min[d] {
			return false
		}
	}
	return true
}

// Contains reports whether the point lies in the closed box.
func (r Rect) Contains(pt []float64) bool {
	for d := range r.Min {
		if pt[d] < r.Min[d] || pt[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// center returns the box center along dimension d.
func (r Rect) center(d int) float64 { return (r.Min[d] + r.Max[d]) / 2 }

// extend grows r to cover o.
func (r *Rect) extend(o Rect) {
	for d := range r.Min {
		r.Min[d] = math.Min(r.Min[d], o.Min[d])
		r.Max[d] = math.Max(r.Max[d], o.Max[d])
	}
}

// cloneRect deep-copies a rect (nodes own their boxes).
func cloneRect(r Rect) Rect {
	min := append([]float64(nil), r.Min...)
	max := append([]float64(nil), r.Max...)
	return Rect{Min: min, Max: max}
}

// MaxEntries is the node fan-out used by Build.
const MaxEntries = 16

// Tree is an immutable R-tree. Item i of Search results indexes the
// rects slice passed to Build.
type Tree struct {
	dims  int
	root  *node
	count int
}

type node struct {
	rect     Rect
	children []*node // nil for leaves
	items    []int   // item references, leaves only
}

// Build bulk-loads a tree from the given boxes using STR. The returned
// tree references items by their index in rects. An empty input yields
// an empty tree.
func Build(rects []Rect) (*Tree, error) {
	if len(rects) == 0 {
		return &Tree{}, nil
	}
	dims := rects[0].Dims()
	if dims == 0 {
		return nil, fmt.Errorf("rtree: zero-dimensional rects")
	}
	for i, r := range rects {
		if r.Dims() != dims {
			return nil, fmt.Errorf("rtree: rect %d has %d dims, want %d", i, r.Dims(), dims)
		}
		for d := 0; d < dims; d++ {
			if r.Min[d] > r.Max[d] {
				return nil, fmt.Errorf("rtree: rect %d inverted in dimension %d", i, d)
			}
		}
	}
	// Leaf level: STR-tile the items.
	idx := make([]int, len(rects))
	for i := range idx {
		idx[i] = i
	}
	leafGroups := strTile(idx, dims, 0, func(i int, d int) float64 { return rects[i].center(d) })
	level := make([]*node, 0, len(leafGroups))
	for _, g := range leafGroups {
		n := &node{items: g, rect: cloneRect(rects[g[0]])}
		for _, it := range g[1:] {
			n.rect.extend(rects[it])
		}
		level = append(level, n)
	}
	// Upper levels.
	for len(level) > 1 {
		idx := make([]int, len(level))
		for i := range idx {
			idx[i] = i
		}
		groups := strTile(idx, dims, 0, func(i int, d int) float64 { return level[i].rect.center(d) })
		next := make([]*node, 0, len(groups))
		for _, g := range groups {
			n := &node{rect: cloneRect(level[g[0]].rect)}
			for _, ci := range g {
				n.children = append(n.children, level[ci])
				n.rect.extend(level[ci].rect)
			}
			next = append(next, n)
		}
		level = next
	}
	return &Tree{dims: dims, root: level[0], count: len(rects)}, nil
}

// strTile recursively partitions idx into groups of at most MaxEntries
// using sort-tile-recursive: sort by the current dimension's center,
// split into vertical slabs, recurse on the next dimension.
func strTile(idx []int, dims, d int, center func(i, d int) float64) [][]int {
	if len(idx) <= MaxEntries {
		return [][]int{idx}
	}
	sort.Slice(idx, func(a, b int) bool { return center(idx[a], d) < center(idx[b], d) })
	if d == dims-1 {
		// Last dimension: chop into runs of MaxEntries.
		var out [][]int
		for i := 0; i < len(idx); i += MaxEntries {
			j := i + MaxEntries
			if j > len(idx) {
				j = len(idx)
			}
			out = append(out, idx[i:j])
		}
		return out
	}
	// Number of slabs: ceil((N/M)^(1/(dims-d))) slabs along this axis.
	leaves := float64(len(idx)) / float64(MaxEntries)
	slabs := int(math.Ceil(math.Pow(leaves, 1/float64(dims-d))))
	if slabs < 1 {
		slabs = 1
	}
	per := (len(idx) + slabs - 1) / slabs
	var out [][]int
	for i := 0; i < len(idx); i += per {
		j := i + per
		if j > len(idx) {
			j = len(idx)
		}
		out = append(out, strTile(idx[i:j], dims, d+1, center)...)
	}
	return out
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.count }

// Dims returns the tree's dimensionality (0 when empty).
func (t *Tree) Dims() int { return t.dims }

// Search visits every item whose box intersects q, in unspecified
// order. Returning false from fn stops the search.
func (t *Tree) Search(q Rect, rects []Rect, fn func(item int) bool) {
	if t.root == nil {
		return
	}
	t.search(t.root, q, rects, fn)
}

func (t *Tree) search(n *node, q Rect, rects []Rect, fn func(item int) bool) bool {
	if !n.rect.Intersects(q) {
		return true
	}
	if n.children == nil {
		for _, it := range n.items {
			if rects[it].Intersects(q) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.search(c, q, rects, fn) {
			return false
		}
	}
	return true
}

// SearchAll collects the matching items of Search.
func (t *Tree) SearchAll(q Rect, rects []Rect) []int {
	var out []int
	t.Search(q, rects, func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Depth returns the height of the tree (0 when empty); exposed for
// tests and diagnostics.
func (t *Tree) Depth() int {
	d, n := 0, t.root
	for n != nil {
		d++
		if n.children == nil {
			break
		}
		n = n.children[0]
	}
	return d
}
