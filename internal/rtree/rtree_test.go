package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRect(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1, 1}); err != nil {
		t.Errorf("valid rect rejected: %v", err)
	}
	if _, err := NewRect([]float64{0}, []float64{1, 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect(nil, nil); err == nil {
		t.Error("empty rect accepted")
	}
}

func TestRectOps(t *testing.T) {
	r1 := Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}
	r2 := Rect{Min: []float64{5, 5}, Max: []float64{15, 15}}
	r3 := Rect{Min: []float64{11, 0}, Max: []float64{12, 10}}
	if !r1.Intersects(r2) || r1.Intersects(r3) {
		t.Error("Intersects misbehaves")
	}
	// Touching faces intersect (closed boxes).
	r4 := Rect{Min: []float64{10, 0}, Max: []float64{20, 10}}
	if !r1.Intersects(r4) {
		t.Error("touching boxes should intersect")
	}
	if !r1.Contains([]float64{10, 10}) || r1.Contains([]float64{10.1, 0}) {
		t.Error("Contains misbehaves")
	}
	if r1.Dims() != 2 {
		t.Error("Dims wrong")
	}
}

func TestBuildEmpty(t *testing.T) {
	tr, err := Build(nil)
	if err != nil {
		t.Fatalf("Build(nil): %v", err)
	}
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Errorf("empty tree: len=%d depth=%d", tr.Len(), tr.Depth())
	}
	tr.Search(Rect{Min: []float64{0}, Max: []float64{1}}, nil, func(int) bool {
		t.Error("search on empty tree visited an item")
		return true
	})
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]Rect{
		{Min: []float64{0, 0}, Max: []float64{1, 1}},
		{Min: []float64{0}, Max: []float64{1}},
	}); err == nil {
		t.Error("mixed dims accepted")
	}
	if _, err := Build([]Rect{{Min: []float64{2}, Max: []float64{1}}}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := Build([]Rect{{}}); err == nil {
		t.Error("zero-dim rect accepted")
	}
}

func TestSearchSmall(t *testing.T) {
	rects := []Rect{
		{Min: []float64{0, 0}, Max: []float64{1, 1}},
		{Min: []float64{2, 2}, Max: []float64{3, 3}},
		{Min: []float64{0.5, 0.5}, Max: []float64{2.5, 2.5}},
	}
	tr, err := Build(rects)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.SearchAll(Rect{Min: []float64{0.9, 0.9}, Max: []float64{1.1, 1.1}}, rects)
	if len(got) != 2 {
		t.Errorf("SearchAll = %v", got)
	}
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	if !found[0] || !found[2] || found[1] {
		t.Errorf("SearchAll items = %v", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	var rects []Rect
	for i := 0; i < 100; i++ {
		rects = append(rects, Rect{Min: []float64{0}, Max: []float64{1}})
	}
	tr, _ := Build(rects)
	visits := 0
	tr.Search(Rect{Min: []float64{0}, Max: []float64{1}}, rects, func(int) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early stop visited %d items", visits)
	}
}

func TestTreeShape(t *testing.T) {
	var rects []Rect
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		rects = append(rects, Rect{Min: []float64{x, y}, Max: []float64{x + 1, y + 1}})
	}
	tr, err := Build(rects)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Errorf("Len = %d", tr.Len())
	}
	// 10000 items at fan-out 16 should give a shallow tree.
	if d := tr.Depth(); d < 3 || d > 5 {
		t.Errorf("Depth = %d, want 3..5", d)
	}
	if tr.Dims() != 2 {
		t.Errorf("Dims = %d", tr.Dims())
	}
}

// Property: Search returns exactly the same items as a linear scan, for
// random boxes in 1-3 dimensions.
func TestSearchMatchesLinearQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(3) + 1
		n := rng.Intn(300) + 1
		rects := make([]Rect, n)
		mk := func() Rect {
			min := make([]float64, dims)
			max := make([]float64, dims)
			for d := 0; d < dims; d++ {
				a := rng.Float64() * 100
				b := a + rng.Float64()*20
				min[d], max[d] = a, b
			}
			return Rect{Min: min, Max: max}
		}
		for i := range rects {
			rects[i] = mk()
		}
		tr, err := Build(rects)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			q := mk()
			want := map[int]bool{}
			for i, r := range rects {
				if r.Intersects(q) {
					want[i] = true
				}
			}
			got := tr.SearchAll(q, rects)
			if len(got) != len(want) {
				return false
			}
			for _, i := range got {
				if !want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
