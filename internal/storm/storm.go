// Package storm models the STORM middleware of Narayanan et al. — "a
// suite of loosely coupled services" for data selection, partitioning
// and transfer over flat-file datasets on a parallel system (paper
// §2.3). In this reproduction the services map to:
//
//	query service        — core.Service.Prepare (SQL → plan)
//	data source service  — internal/extractor over aligned file chunks
//	indexing service     — internal/afc pruning + internal/index R-trees
//	filtering service    — internal/filter + compiled predicates
//	partition generation — this package's Partitioner implementations
//	data mover           — this package's Mover over Sink implementations
//
// The partition generation service "makes it possible ... to implement
// the data distribution scheme employed in the client program at the
// server"; the data mover "transfers selected data elements to
// destination processors based on the partitioning description".
package storm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"datavirt/internal/schema"
	"datavirt/internal/table"
)

// Scheme selects a partition generation strategy.
type Scheme int

const (
	// RoundRobin deals rows to destinations cyclically.
	RoundRobin Scheme = iota
	// HashAttr routes by a hash of one attribute's value, keeping equal
	// values together.
	HashAttr
	// RangeAttr routes by comparing one attribute against ordered
	// boundaries: dest i gets values in [Bounds[i-1], Bounds[i]).
	RangeAttr
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case HashAttr:
		return "hash"
	case RangeAttr:
		return "range"
	}
	return "unknown"
}

// PartitionSpec describes the client program's data distribution, as
// registered with the partition generation service.
type PartitionSpec struct {
	Scheme Scheme
	// NumDests is the number of client processors.
	NumDests int
	// Attr is the partitioning attribute (HashAttr, RangeAttr).
	Attr string
	// Bounds are the NumDests-1 ascending range boundaries (RangeAttr).
	Bounds []float64
}

// Partitioner assigns each row a destination processor.
type Partitioner interface {
	Dest(row table.Row) int
}

// ColumnLookup resolves an attribute name to a row index.
type ColumnLookup func(name string) (int, bool)

// NewPartitioner builds the partitioner for a spec against a row
// layout.
func NewPartitioner(spec PartitionSpec, lookup ColumnLookup) (Partitioner, error) {
	if spec.NumDests < 1 {
		return nil, fmt.Errorf("storm: partition spec needs at least one destination")
	}
	switch spec.Scheme {
	case RoundRobin:
		return &roundRobin{n: spec.NumDests}, nil
	case HashAttr:
		idx, ok := lookup(spec.Attr)
		if !ok {
			return nil, fmt.Errorf("storm: hash partitioning on unknown attribute %q", spec.Attr)
		}
		return &hashPart{idx: idx, n: spec.NumDests}, nil
	case RangeAttr:
		idx, ok := lookup(spec.Attr)
		if !ok {
			return nil, fmt.Errorf("storm: range partitioning on unknown attribute %q", spec.Attr)
		}
		if len(spec.Bounds) != spec.NumDests-1 {
			return nil, fmt.Errorf("storm: range partitioning needs %d bounds, got %d",
				spec.NumDests-1, len(spec.Bounds))
		}
		if !sort.Float64sAreSorted(spec.Bounds) {
			return nil, fmt.Errorf("storm: range bounds must be ascending")
		}
		return &rangePart{idx: idx, bounds: spec.Bounds}, nil
	}
	return nil, fmt.Errorf("storm: unknown partition scheme %d", spec.Scheme)
}

type roundRobin struct {
	mu   sync.Mutex
	next int //dvlint:guardedby mu
	n    int // immutable after construction
}

func (r *roundRobin) Dest(table.Row) int {
	r.mu.Lock()
	d := r.next
	r.next = (r.next + 1) % r.n
	r.mu.Unlock()
	return d
}

type hashPart struct {
	idx, n int
}

func (h *hashPart) Dest(row table.Row) int {
	// SplitMix64 finalizer: integer-valued floats differ only in high
	// mantissa bits, so mix thoroughly before reducing.
	x := math.Float64bits(row[h.idx].AsFloat())
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(h.n))
}

type rangePart struct {
	idx    int
	bounds []float64
}

func (r *rangePart) Dest(row table.Row) int {
	v := row[r.idx].AsFloat()
	// Destination = index of the first boundary strictly greater than v,
	// so dest i covers [Bounds[i-1], Bounds[i]).
	return sort.Search(len(r.bounds), func(i int) bool { return v < r.bounds[i] })
}

// Sink receives the rows of one destination processor.
type Sink interface {
	// Send delivers one row under the same reuse contract as
	// extractor.EmitFunc: the slice is reused by the caller after Send
	// returns, so a sink that retains the row must copy it.
	Send(row table.Row) error
	// Close flushes and finalizes the sink.
	Close() error
}

// Mover is the data mover service: it routes each selected row to the
// sink of its destination processor.
type Mover struct {
	part  Partitioner
	sinks []Sink
	sent  []int64
}

// NewMover pairs a partitioner with one sink per destination.
func NewMover(part Partitioner, sinks []Sink) (*Mover, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("storm: mover needs at least one sink")
	}
	return &Mover{part: part, sinks: sinks, sent: make([]int64, len(sinks))}, nil
}

// Move routes one row.
func (m *Mover) Move(row table.Row) error {
	d := m.part.Dest(row)
	if d < 0 || d >= len(m.sinks) {
		return fmt.Errorf("storm: partitioner produced destination %d of %d", d, len(m.sinks))
	}
	m.sent[d]++
	return m.sinks[d].Send(row)
}

// Sent reports rows delivered per destination.
func (m *Mover) Sent() []int64 { return append([]int64(nil), m.sent...) }

// Close closes every sink, returning the first error.
func (m *Mover) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SliceSink collects rows in memory (copies them).
type SliceSink struct {
	mu sync.Mutex
	// Rows is guarded by mu while senders are active; read it only
	// after the Mover completes. (Cross-package readers are outside
	// guardedby's scope.)
	Rows []table.Row //dvlint:guardedby mu
}

// Send implements Sink.
func (s *SliceSink) Send(row table.Row) error {
	s.mu.Lock()
	s.Rows = append(s.Rows, append(table.Row(nil), row...))
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *SliceSink) Close() error { return nil }

// StreamSink encodes rows with a fixed-width codec onto a writer — the
// on-the-wire form of the data mover.
type StreamSink struct {
	w     *bufio.Writer
	codec *table.Codec
	buf   []byte
}

// NewStreamSink wraps w with the schema's codec.
func NewStreamSink(w io.Writer, sch *schema.Schema) *StreamSink {
	return &StreamSink{w: bufio.NewWriterSize(w, 1<<16), codec: table.NewCodec(sch)}
}

// Send implements Sink.
func (s *StreamSink) Send(row table.Row) error {
	b, err := s.codec.Append(s.buf[:0], row)
	if err != nil {
		return err
	}
	s.buf = b
	_, err = s.w.Write(b)
	return err
}

// Close implements Sink.
func (s *StreamSink) Close() error { return s.w.Flush() }

// FuncSink adapts a function to Sink.
type FuncSink func(row table.Row) error

// Send implements Sink.
func (f FuncSink) Send(row table.Row) error { return f(row) }

// Close implements Sink.
func (FuncSink) Close() error { return nil }
