package storm

import (
	"bytes"
	"testing"
	"testing/quick"

	"datavirt/internal/schema"
	"datavirt/internal/table"
)

func rowOf(vals ...float64) table.Row {
	r := make(table.Row, len(vals))
	for i, v := range vals {
		r[i] = schema.DoubleValue(v)
	}
	return r
}

func lookup2(name string) (int, bool) {
	switch name {
	case "A":
		return 0, true
	case "B":
		return 1, true
	}
	return 0, false
}

func TestRoundRobin(t *testing.T) {
	p, err := NewPartitioner(PartitionSpec{Scheme: RoundRobin, NumDests: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{}
	for i := 0; i < 7; i++ {
		got = append(got, p.Dest(rowOf(1)))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin = %v", got)
		}
	}
}

func TestHashPartitioner(t *testing.T) {
	p, err := NewPartitioner(PartitionSpec{Scheme: HashAttr, NumDests: 4, Attr: "B"}, lookup2)
	if err != nil {
		t.Fatal(err)
	}
	// Same value → same destination.
	if p.Dest(rowOf(1, 7)) != p.Dest(rowOf(2, 7)) {
		t.Error("hash partitioner not value-stable")
	}
	// Distribution over many integer values touches all destinations.
	seen := map[int]int{}
	for v := 0; v < 100; v++ {
		d := p.Dest(rowOf(0, float64(v)))
		if d < 0 || d >= 4 {
			t.Fatalf("dest out of range: %d", d)
		}
		seen[d]++
	}
	if len(seen) != 4 {
		t.Errorf("hash used only %d of 4 destinations: %v", len(seen), seen)
	}
}

func TestRangePartitioner(t *testing.T) {
	p, err := NewPartitioner(PartitionSpec{
		Scheme: RangeAttr, NumDests: 3, Attr: "A", Bounds: []float64{10, 20},
	}, lookup2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]int{-5: 0, 9.9: 0, 10: 1, 19.9: 1, 20: 2, 100: 2}
	for v, want := range cases {
		if got := p.Dest(rowOf(v, 0)); got != want {
			t.Errorf("range dest(%g) = %d, want %d", v, got, want)
		}
	}
}

func TestPartitionerErrors(t *testing.T) {
	cases := []PartitionSpec{
		{Scheme: RoundRobin, NumDests: 0},
		{Scheme: HashAttr, NumDests: 2, Attr: "NOPE"},
		{Scheme: RangeAttr, NumDests: 3, Attr: "A", Bounds: []float64{1}},
		{Scheme: RangeAttr, NumDests: 3, Attr: "A", Bounds: []float64{5, 1}},
		{Scheme: Scheme(99), NumDests: 1},
	}
	for i, spec := range cases {
		if _, err := NewPartitioner(spec, lookup2); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || HashAttr.String() != "hash" ||
		RangeAttr.String() != "range" || Scheme(9).String() != "unknown" {
		t.Error("Scheme.String wrong")
	}
}

// Property: for any scheme, the mover's per-destination outputs are a
// disjoint cover of the input rows.
func TestMoverPartitionsAreCoverQuick(t *testing.T) {
	f := func(vals []float64, pick uint8) bool {
		if len(vals) == 0 {
			return true
		}
		specs := []PartitionSpec{
			{Scheme: RoundRobin, NumDests: 3},
			{Scheme: HashAttr, NumDests: 3, Attr: "A"},
			{Scheme: RangeAttr, NumDests: 3, Attr: "A", Bounds: []float64{-1, 1}},
		}
		spec := specs[int(pick)%len(specs)]
		p, err := NewPartitioner(spec, lookup2)
		if err != nil {
			return false
		}
		sinks := []Sink{&SliceSink{}, &SliceSink{}, &SliceSink{}}
		m, err := NewMover(p, sinks)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if err := m.Move(rowOf(v, float64(i))); err != nil {
				return false
			}
		}
		if err := m.Close(); err != nil {
			return false
		}
		total := 0
		for _, s := range sinks {
			total += len(s.(*SliceSink).Rows)
		}
		if total != len(vals) {
			return false
		}
		var sent int64
		for _, n := range m.Sent() {
			sent += n
		}
		return sent == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStreamSink(t *testing.T) {
	sch := schema.MustNew("T", []schema.Attribute{
		{Name: "A", Kind: schema.Int}, {Name: "B", Kind: schema.Float},
	})
	var buf bytes.Buffer
	s := NewStreamSink(&buf, sch)
	rows := []table.Row{
		{schema.IntValue(1), schema.FloatValue(0.5)},
		{schema.IntValue(2), schema.FloatValue(-1.5)},
	}
	for _, r := range rows {
		if err := s.Send(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := table.NewCodec(sch).DecodeAll(buf.Bytes())
	if err != nil || len(got) != 2 {
		t.Fatalf("decode: %v (%d rows)", err, len(got))
	}
	for i := range rows {
		if !table.RowsEqual(rows[i], got[i]) {
			t.Errorf("row %d: %v vs %v", i, rows[i], got[i])
		}
	}
}

func TestFuncSinkAndMoverErrors(t *testing.T) {
	if _, err := NewMover(&roundRobin{n: 1}, nil); err == nil {
		t.Error("mover without sinks accepted")
	}
	// A partitioner that misbehaves is caught.
	bad := &rangePart{idx: 0, bounds: nil} // always dest 0, fine
	m, err := NewMover(bad, []Sink{FuncSink(func(table.Row) error { return nil })})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Move(rowOf(1)); err != nil {
		t.Errorf("Move: %v", err)
	}
}
