// Package rowstore is the relational baseline of the paper's Figure 6
// comparison: a from-scratch, PostgreSQL-flavoured row store. Loading a
// dataset COPYs every tuple into slotted 8 KiB heap pages with
// Postgres-sized per-tuple headers (hence the storage blow-up the paper
// reports: 6 GB raw Titan data became 18 GB loaded); queries run through
// a tiny cost-based planner choosing between a sequential scan and a
// B+-tree index scan; pages move through an LRU buffer pool.
//
// It is deliberately a credible miniature of a 2004-era row store, not a
// toy wrapper: the effects the paper measures (full scans slower than
// raw flat-file streaming, selective indexed lookups faster) emerge from
// the same mechanics.
package rowstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"datavirt/internal/btree"
	"datavirt/internal/pagefile"
	"datavirt/internal/schema"
	"datavirt/internal/table"
)

const (
	// pageHdr mirrors PostgreSQL's 24-byte page header.
	pageHdr = 24
	// linePtr is the per-tuple line pointer in the slot directory.
	linePtr = 4
	// tupleHdr mirrors PostgreSQL's 23-byte tuple header rounded to 24
	// (xmin, xmax, ctid, infomasks, hoff).
	tupleHdr = 24
	// tupleAlign rounds tuples to MAXALIGN.
	tupleAlign = 8

	// poolPages sizes each relation's buffer pool (8 MiB), standing in
	// for shared_buffers.
	poolPages = 1024
)

// DB is a directory of tables.
type DB struct {
	dir    string
	tables map[string]*Table
}

// Open opens (or initializes) a database directory.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, tables: map[string]*Table{}}
	catPath := filepath.Join(dir, "catalog.json")
	data, err := os.ReadFile(catPath)
	if os.IsNotExist(err) {
		return db, nil
	}
	if err != nil {
		return nil, err
	}
	var cat catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("rowstore: corrupt catalog: %w", err)
	}
	for _, tc := range cat.Tables {
		t, err := db.loadTable(tc)
		if err != nil {
			db.Close()
			return nil, err
		}
		db.tables[t.sch.Name()] = t
	}
	return db, nil
}

// catalog is the persisted metadata.
type catalog struct {
	Tables []tableCat
}

type tableCat struct {
	Name    string
	Attrs   []attrCat
	Rows    int64
	Indexes []string
	Stats   map[string]AttrStats
}

type attrCat struct {
	Name string
	Kind string
}

// AttrStats is the planner's per-attribute statistics, collected at
// load time (pg_statistic's poor cousin).
type AttrStats struct {
	Min, Max float64
}

// Table is one relation.
type Table struct {
	db      *DB
	sch     *schema.Schema
	codec   *table.Codec
	heap    *pagefile.File
	rows    int64
	indexes map[string]*btree.Tree
	stats   map[string]AttrStats

	// insertion cursor
	curPage uint32
	haveCur bool
}

func (db *DB) heapPath(name string) string {
	return filepath.Join(db.dir, name+".heap")
}

func (db *DB) indexPath(tbl, attr string) string {
	return filepath.Join(db.dir, tbl+"."+attr+".btree")
}

func (db *DB) loadTable(tc tableCat) (*Table, error) {
	attrs := make([]schema.Attribute, len(tc.Attrs))
	for i, a := range tc.Attrs {
		k, err := schema.ParseKind(a.Kind)
		if err != nil {
			return nil, err
		}
		attrs[i] = schema.Attribute{Name: a.Name, Kind: k}
	}
	sch, err := schema.New(tc.Name, attrs)
	if err != nil {
		return nil, err
	}
	heap, err := pagefile.Open(db.heapPath(tc.Name), poolPages)
	if err != nil {
		return nil, err
	}
	t := &Table{
		db: db, sch: sch, codec: table.NewCodec(sch), heap: heap,
		rows: tc.Rows, indexes: map[string]*btree.Tree{}, stats: tc.Stats,
	}
	for _, attr := range tc.Indexes {
		ix, err := btree.Open(db.indexPath(tc.Name, attr), poolPages/4)
		if err != nil {
			heap.Close()
			return nil, err
		}
		t.indexes[attr] = ix
	}
	return t, nil
}

// Create creates an empty table for the schema.
func (db *DB) Create(sch *schema.Schema) (*Table, error) {
	if _, dup := db.tables[sch.Name()]; dup {
		return nil, fmt.Errorf("rowstore: table %s already exists", sch.Name())
	}
	heap, err := pagefile.Create(db.heapPath(sch.Name()), poolPages)
	if err != nil {
		return nil, err
	}
	t := &Table{
		db: db, sch: sch, codec: table.NewCodec(sch), heap: heap,
		indexes: map[string]*btree.Tree{}, stats: map[string]AttrStats{},
	}
	db.tables[sch.Name()] = t
	return t, db.saveCatalog()
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Close closes every relation, persisting the catalog.
func (db *DB) Close() error {
	err := db.saveCatalog()
	for _, t := range db.tables {
		if e := t.heap.Close(); e != nil && err == nil {
			err = e
		}
		for _, ix := range t.indexes {
			if e := ix.Close(); e != nil && err == nil {
				err = e
			}
		}
	}
	db.tables = map[string]*Table{}
	return err
}

func (db *DB) saveCatalog() error {
	var cat catalog
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		tc := tableCat{Name: n, Rows: t.rows, Stats: t.stats}
		for _, a := range t.sch.Attrs() {
			tc.Attrs = append(tc.Attrs, attrCat{Name: a.Name, Kind: a.Kind.String()})
		}
		for attr := range t.indexes {
			tc.Indexes = append(tc.Indexes, attr)
		}
		sort.Strings(tc.Indexes)
		cat.Tables = append(cat.Tables, tc)
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(db.dir, "catalog.json"), data, 0o644)
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.sch }

// Rows returns the tuple count.
func (t *Table) Rows() int64 { return t.rows }

// SizeBytes returns the heap's on-disk size plus all index sizes — the
// loaded footprint the paper contrasts with the raw flat files.
func (t *Table) SizeBytes() int64 {
	n := t.heap.SizeBytes()
	for _, ix := range t.indexes {
		n += ix.SizeBytes()
	}
	return n
}

// Stats returns the planner statistics for attr.
func (t *Table) Stats(attr string) (AttrStats, bool) {
	s, ok := t.stats[attr]
	return s, ok
}

// tupleSpace is the aligned space one tuple occupies in a page body.
func (t *Table) tupleSpace() int {
	raw := tupleHdr + t.codec.RowBytes()
	return (raw + tupleAlign - 1) / tupleAlign * tupleAlign
}

// Page body layout:
//
//	[0:2)  lower — end of the slot directory
//	[2:4)  upper — start of tuple space
//	[4:6)  nslots
//	[24:lower) line pointers: (off uint16, len uint16) each
//	[upper:PageSize) tuples, each tupleHdr + row bytes, MAXALIGNed
func pageLower(pg *pagefile.Page) int  { return int(binary.LittleEndian.Uint16(pg[0:])) }
func pageUpper(pg *pagefile.Page) int  { return int(binary.LittleEndian.Uint16(pg[2:])) }
func pageNSlots(pg *pagefile.Page) int { return int(binary.LittleEndian.Uint16(pg[4:])) }

func pageInit(pg *pagefile.Page) {
	binary.LittleEndian.PutUint16(pg[0:], pageHdr)
	binary.LittleEndian.PutUint16(pg[2:], pagefile.PageSize)
	binary.LittleEndian.PutUint16(pg[4:], 0)
}

func pageSlot(pg *pagefile.Page, i int) (off, length int) {
	base := pageHdr + i*linePtr
	return int(binary.LittleEndian.Uint16(pg[base:])), int(binary.LittleEndian.Uint16(pg[base+2:]))
}

// pageInsert places a tuple; returns the slot or -1 when full.
func pageInsert(pg *pagefile.Page, tuple []byte, space int) int {
	lower, upper := pageLower(pg), pageUpper(pg)
	if upper-lower < space+linePtr {
		return -1
	}
	slot := pageNSlots(pg)
	upper -= space
	copy(pg[upper:], tuple)
	base := pageHdr + slot*linePtr
	binary.LittleEndian.PutUint16(pg[base:], uint16(upper))
	binary.LittleEndian.PutUint16(pg[base+2:], uint16(len(tuple)))
	binary.LittleEndian.PutUint16(pg[0:], uint16(lower+linePtr))
	binary.LittleEndian.PutUint16(pg[2:], uint16(upper))
	binary.LittleEndian.PutUint16(pg[4:], uint16(slot+1))
	return slot
}

// Insert appends one row and returns its TID (page<<16 | slot).
func (t *Table) Insert(row table.Row) (uint64, error) {
	// Build the tuple: simulated header + encoded row.
	space := t.tupleSpace()
	if space+linePtr > pagefile.PageSize-pageHdr {
		return 0, fmt.Errorf("rowstore: tuple of %d bytes does not fit a page", space)
	}
	tuple := make([]byte, tupleHdr, space)
	binary.LittleEndian.PutUint32(tuple[0:], 2) // xmin: frozen
	binary.LittleEndian.PutUint32(tuple[4:], 0) // xmax
	tuple[22] = tupleHdr                        // hoff
	tuple[23] = byte(t.sch.NumAttrs())          // natts (truncated)
	encoded, err := t.codec.Append(tuple, row)  //nolint:staticcheck
	if err != nil {
		return 0, err
	}
	tuple = encoded

	for {
		var id uint32
		var pg *pagefile.Page
		if t.haveCur {
			id = t.curPage
			pg, err = t.heap.Get(id)
			if err != nil {
				return 0, err
			}
		} else {
			id, pg, err = t.heap.Alloc()
			if err != nil {
				return 0, err
			}
			pageInit(pg)
			t.curPage, t.haveCur = id, true
		}
		slot := pageInsert(pg, tuple, space)
		if slot < 0 {
			t.heap.Unpin(id)
			t.haveCur = false
			continue
		}
		t.heap.MarkDirty(id)
		t.heap.Unpin(id)
		t.rows++
		// Maintain stats.
		for i, a := range t.sch.Attrs() {
			v := row[i].AsFloat()
			s, ok := t.stats[a.Name]
			if !ok {
				s = AttrStats{Min: v, Max: v}
			} else {
				s.Min = math.Min(s.Min, v)
				s.Max = math.Max(s.Max, v)
			}
			t.stats[a.Name] = s
		}
		// Maintain indexes.
		tid := uint64(id)<<16 | uint64(slot)
		for attr, ix := range t.indexes {
			if err := ix.Insert(row[t.sch.Index(attr)].AsFloat(), tid); err != nil {
				return 0, err
			}
		}
		return tid, nil
	}
}

// CopyFrom bulk-loads rows from next, which returns (row, true, nil)
// until exhausted — the COPY path of the Figure 6 experiment.
func (t *Table) CopyFrom(next func() (table.Row, bool, error)) (int64, error) {
	var n int64
	for {
		row, ok, err := next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		if _, err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
	if err := t.heap.Flush(); err != nil {
		return n, err
	}
	return n, t.db.saveCatalog()
}

// CreateIndex builds a B+-tree on attr by scanning the heap, sorting,
// and bulk-loading — CREATE INDEX.
func (t *Table) CreateIndex(attr string) error {
	col := t.sch.Index(attr)
	if col < 0 {
		return fmt.Errorf("rowstore: table %s has no attribute %q", t.sch.Name(), attr)
	}
	if _, dup := t.indexes[attr]; dup {
		return fmt.Errorf("rowstore: index on %s.%s already exists", t.sch.Name(), attr)
	}
	entries := make([]btree.Entry, 0, t.rows)
	err := t.scanHeap(func(tid uint64, row table.Row) error {
		entries = append(entries, btree.Entry{Key: row[col].AsFloat(), TID: tid})
		return nil
	}, nil)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].TID < entries[j].TID
	})
	ix, err := btree.Create(t.db.indexPath(t.sch.Name(), attr), poolPages/4)
	if err != nil {
		return err
	}
	if err := ix.BulkLoad(entries); err != nil {
		ix.Close()
		return err
	}
	t.indexes[attr] = ix
	return t.db.saveCatalog()
}

// Indexes lists the indexed attributes, sorted.
func (t *Table) Indexes() []string {
	out := make([]string, 0, len(t.indexes))
	for a := range t.indexes {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// decodeTuple decodes the row stored at a slot.
func (t *Table) decodeTuple(pg *pagefile.Page, slot int, dst table.Row) (table.Row, error) {
	off, length := pageSlot(pg, slot)
	if off < pageHdr || off+length > pagefile.PageSize || length < tupleHdr {
		return nil, fmt.Errorf("rowstore: corrupt line pointer (off %d len %d)", off, length)
	}
	hoff := int(pg[off+22])
	row, _, err := t.codec.Decode(dst, pg[off+hoff:off+length])
	return row, err
}

// scanHeap visits every tuple; fetch restricts to the given sorted TIDs
// when non-nil.
func (t *Table) scanHeap(fn func(tid uint64, row table.Row) error, only []uint64) error {
	var row table.Row
	if only != nil {
		var curID uint32
		var pg *pagefile.Page
		havePg := false
		defer func() {
			if havePg {
				t.heap.Unpin(curID)
			}
		}()
		for _, tid := range only {
			id := uint32(tid >> 16)
			slot := int(tid & 0xFFFF)
			if !havePg || id != curID {
				if havePg {
					t.heap.Unpin(curID)
					havePg = false
				}
				var err error
				pg, err = t.heap.Get(id)
				if err != nil {
					return err
				}
				curID, havePg = id, true
			}
			var err error
			row, err = t.decodeTuple(pg, slot, row)
			if err != nil {
				return err
			}
			if err := fn(tid, row); err != nil {
				return err
			}
		}
		return nil
	}
	n := t.heap.NumPages()
	for id := uint32(0); id < n; id++ {
		pg, err := t.heap.Get(id)
		if err != nil {
			return err
		}
		slots := pageNSlots(pg)
		for s := 0; s < slots; s++ {
			row, err = t.decodeTuple(pg, s, row)
			if err != nil {
				t.heap.Unpin(id)
				return err
			}
			if err := fn(uint64(id)<<16|uint64(s), row); err != nil {
				t.heap.Unpin(id)
				return err
			}
		}
		t.heap.Unpin(id)
	}
	return nil
}
