package rowstore

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"datavirt/internal/schema"
	"datavirt/internal/table"
)

func titanSchema() *schema.Schema {
	return schema.MustNew("TITAN", []schema.Attribute{
		{Name: "X", Kind: schema.Int}, {Name: "Y", Kind: schema.Int},
		{Name: "Z", Kind: schema.Int}, {Name: "S1", Kind: schema.Float},
	})
}

func loadRows(t *testing.T, tbl *Table, n int, seed int64) []table.Row {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]table.Row, n)
	i := 0
	_, err := tbl.CopyFrom(func() (table.Row, bool, error) {
		if i >= n {
			return nil, false, nil
		}
		r := table.Row{
			schema.IntValue(int64(rng.Intn(1000))),
			schema.IntValue(int64(rng.Intn(1000))),
			schema.IntValue(int64(i)),
			schema.FloatValue(float64(float32(rng.Float64()))),
		}
		rows[i] = r
		i++
		return r, true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCreateCopyAndSeqScan(t *testing.T) {
	db := openDB(t)
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	want := loadRows(t, tbl, 5000, 1)
	if tbl.Rows() != 5000 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	got, stats, err := db.Query("SELECT * FROM TITAN")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != "seqscan" {
		t.Errorf("plan = %s", stats.Plan)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d", len(got))
	}
	// Heap preserves insertion order for a pure seq scan.
	for i := range want {
		if !table.RowsEqual(got[i], want[i]) {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
	if stats.TuplesScanned != 5000 || stats.TuplesReturned != 5000 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestStorageOverhead(t *testing.T) {
	db := openDB(t)
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	loadRows(t, tbl, 20000, 2)
	raw := int64(20000) * int64(tbl.Schema().RowBytes())
	loaded := tbl.SizeBytes()
	// The paper reports 6 GB raw → 18 GB loaded. Our tuple headers and
	// slot directory should cost at least 1.8× before indexes.
	if loaded < raw*18/10 {
		t.Errorf("loaded %d bytes for %d raw: blow-up only %.2fx",
			loaded, raw, float64(loaded)/float64(raw))
	}
	if err := tbl.CreateIndex("S1"); err != nil {
		t.Fatal(err)
	}
	withIdx := tbl.SizeBytes()
	if withIdx <= loaded {
		t.Errorf("index added no bytes: %d vs %d", withIdx, loaded)
	}
	t.Logf("raw=%d heap=%d heap+index=%d (%.2fx)", raw, loaded, withIdx, float64(withIdx)/float64(raw))
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	db := openDB(t)
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	loadRows(t, tbl, 30000, 3)
	if err := tbl.CreateIndex("S1"); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Indexes(); len(got) != 1 || got[0] != "S1" {
		t.Fatalf("Indexes = %v", got)
	}

	// Selective query → index scan.
	sql := "SELECT * FROM TITAN WHERE S1 < 0.01"
	got, stats, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != "indexscan(S1)" {
		t.Errorf("plan = %s", stats.Plan)
	}
	if stats.TuplesScanned >= 30000/2 {
		t.Errorf("index scan visited %d tuples", stats.TuplesScanned)
	}
	// Reference: disable the index by querying a fresh DB handle via
	// seq-scan-only predicate (use the unindexed attr alongside).
	want := 0
	for _, r := range seqAll(t, db) {
		if r[3].AsFloat() < 0.01 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("index scan rows = %d, want %d", len(got), want)
	}

	// Unselective query → seq scan (the planner's crossover).
	_, stats2, err := db.Query("SELECT * FROM TITAN WHERE S1 < 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Plan != "seqscan" {
		t.Errorf("unselective plan = %s", stats2.Plan)
	}
}

func seqAll(t *testing.T, db *DB) []table.Row {
	t.Helper()
	rows, _, err := db.Query("SELECT * FROM TITAN")
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	loadRows(t, tbl, 3000, 4)
	if err := tbl.CreateIndex("Z"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.Table("TITAN")
	if tbl2 == nil || tbl2.Rows() != 3000 {
		t.Fatalf("reopened table = %+v", tbl2)
	}
	rows, stats, err := db2.Query("SELECT Z FROM TITAN WHERE Z >= 10 AND Z <= 19")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != "indexscan(Z)" {
		t.Errorf("plan after reopen = %s", stats.Plan)
	}
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
	st, ok := tbl2.Stats("Z")
	if !ok || st.Min != 0 || st.Max != 2999 {
		t.Errorf("stats = %+v, %v", st, ok)
	}
}

func TestQueryErrors(t *testing.T) {
	db := openDB(t)
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	loadRows(t, tbl, 10, 5)
	bad := []string{
		"garbage",
		"SELECT * FROM NOPE",
		"SELECT MISSING FROM TITAN",
		"SELECT * FROM TITAN WHERE BOGUS(X) > 1",
	}
	for _, sql := range bad {
		if _, _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q) accepted", sql)
		}
	}
	if _, err := db.Create(titanSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := tbl.CreateIndex("NOPE"); err == nil {
		t.Error("index on missing attr accepted")
	}
	if err := tbl.CreateIndex("X"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("X"); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestProjectionAndFilters(t *testing.T) {
	db := openDB(t)
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	loadRows(t, tbl, 1000, 6)
	rows, _, err := db.Query("SELECT S1, X FROM TITAN WHERE DISTANCE(X, Y) < 300")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("row width = %d", len(r))
		}
	}
	if len(rows) == 0 {
		t.Error("DISTANCE filter selected nothing")
	}
}

// Property: for random data and random range predicates on an indexed
// attribute, index scan plans and seq scan plans return identical row
// multisets.
func TestPlansAgreeQuick(t *testing.T) {
	db := openDB(t)
	tbl, err := db.Create(schema.MustNew("R", []schema.Attribute{
		{Name: "K", Kind: schema.Int}, {Name: "V", Kind: schema.Double},
	}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const N = 20000
	i := 0
	if _, err := tbl.CopyFrom(func() (table.Row, bool, error) {
		if i >= N {
			return nil, false, nil
		}
		i++
		return table.Row{
			schema.IntValue(int64(rng.Intn(10000))),
			schema.DoubleValue(rng.Float64()),
		}, true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("K"); err != nil {
		t.Fatal(err)
	}
	f := func(loRaw uint16) bool {
		lo := int(loRaw) % 10000
		hi := lo + 99 // ~1% selectivity → index plan
		sqlIdx := "SELECT K, V FROM R WHERE K >= " + itoa(lo) + " AND K <= " + itoa(hi)
		idxRows, st1, err := db.Query(sqlIdx)
		if err != nil || !strings.HasPrefix(st1.Plan, "indexscan") {
			t.Logf("plan1 = %v %v", st1.Plan, err)
			return false
		}
		// Force a seq scan by including a filter call, which contributes
		// no ranges... it still leaves K bounded. Instead compare with a
		// manual scan.
		seqRows, _, err := db.Query("SELECT K, V FROM R")
		if err != nil {
			return false
		}
		want := map[string]int{}
		for _, r := range seqRows {
			k := r[0].AsInt()
			if k >= int64(lo) && k <= int64(hi) {
				want[table.FormatRow(r)]++
			}
		}
		got := map[string]int{}
		for _, r := range idxRows {
			got[table.FormatRow(r)]++
		}
		if len(gotDiff(want, got)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBiggerThanBufferPool loads a heap larger than the 8 MiB buffer
// pool, forcing evictions on both the COPY and the scan path, and
// checks full-table counts plus index-scan correctness afterwards.
func TestBiggerThanBufferPool(t *testing.T) {
	if testing.Short() {
		t.Skip("large load")
	}
	db := openDB(t)
	tbl, err := db.Create(titanSchema())
	if err != nil {
		t.Fatal(err)
	}
	// ~60 bytes/tuple loaded → 200k tuples ≈ 12 MB heap > 8 MB pool.
	const N = 200_000
	i := 0
	if _, err := tbl.CopyFrom(func() (table.Row, bool, error) {
		if i >= N {
			return nil, false, nil
		}
		r := table.Row{
			schema.IntValue(int64(i % 977)), schema.IntValue(int64(i % 331)),
			schema.IntValue(int64(i)), schema.FloatValue(float64(i%1000) / 1000),
		}
		i++
		return r, true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("Z"); err != nil {
		t.Fatal(err)
	}
	rows, stats, err := db.Query("SELECT Z FROM TITAN WHERE Z >= 150000 AND Z < 150100")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != "indexscan(Z)" || len(rows) != 100 {
		t.Errorf("plan=%s rows=%d", stats.Plan, len(rows))
	}
	var count int64
	if _, err := db.QueryStream("SELECT X FROM TITAN", func(table.Row) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != N {
		t.Errorf("full scan = %d rows", count)
	}
	if tbl.SizeBytes() < 10<<20 {
		t.Errorf("heap+index only %d bytes; pool eviction untested", tbl.SizeBytes())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func gotDiff(want, got map[string]int) []string {
	var diff []string
	for k, n := range want {
		if got[k] != n {
			diff = append(diff, k)
		}
	}
	for k, n := range got {
		if want[k] != n {
			diff = append(diff, k)
		}
	}
	sort.Strings(diff)
	return diff
}
