package rowstore

import (
	"fmt"
	"math"
	"sort"

	"datavirt/internal/btree"
	"datavirt/internal/filter"
	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// ExecStats reports how a query ran.
type ExecStats struct {
	// Plan is "seqscan" or "indexscan(ATTR)".
	Plan string
	// TuplesScanned counts heap tuples visited.
	TuplesScanned int64
	// TuplesReturned counts rows emitted.
	TuplesReturned int64
	// IndexEntries counts index entries visited (index scans).
	IndexEntries int64
}

// indexSelThreshold is the planner's crossover: use an index scan when
// the estimated selectivity on an indexed attribute is below this
// fraction. Random heap fetches above it cost more than one sequential
// pass — PostgreSQL's effective behaviour in the paper's Figure 6,
// where it beat the flat-file system "only when a small portion of the
// data is accessed directly via an index" (Query 4, S1 < 0.01) and lost
// on Query 5 (S1 < 0.5).
const indexSelThreshold = 0.05

// Query executes a SELECT and returns all rows.
func (db *DB) Query(sql string) ([]table.Row, ExecStats, error) {
	var rows []table.Row
	stats, err := db.QueryStream(sql, func(r table.Row) error {
		rows = append(rows, append(table.Row(nil), r...))
		return nil
	})
	return rows, stats, err
}

// QueryStream executes a SELECT, emitting projected rows (the slice is
// reused between calls).
func (db *DB) QueryStream(sql string, emit func(row table.Row) error) (ExecStats, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return ExecStats{}, err
	}
	t := db.Table(q.From)
	if t == nil {
		return ExecStats{}, fmt.Errorf("rowstore: no table %q", q.From)
	}
	reg := filter.NewRegistry()
	cols, err := query.Validate(q, t.sch, reg)
	if err != nil {
		return ExecStats{}, err
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i := t.sch.Index(name)
		return i, i >= 0
	}, reg)
	if err != nil {
		return ExecStats{}, err
	}
	project := make([]int, len(cols))
	for i, c := range cols {
		project[i] = t.sch.Index(c)
	}
	out := make(table.Row, len(cols))
	stats := ExecStats{}
	sink := func(row table.Row) error {
		stats.TuplesScanned++
		if !pred(row) {
			return nil
		}
		stats.TuplesReturned++
		for i, p := range project {
			out[i] = row[p]
		}
		return emit(out)
	}

	ranges := query.ExtractRanges(q.Where)
	if attr, lo, hi, ok := t.chooseIndex(ranges); ok {
		stats.Plan = "indexscan(" + attr + ")"
		err = t.indexScan(attr, lo, hi, &stats, sink)
	} else {
		stats.Plan = "seqscan"
		err = t.scanHeap(func(_ uint64, row table.Row) error { return sink(row) }, nil)
	}
	return stats, err
}

// chooseIndex picks the most selective usable index, PostgreSQL-style:
// the constraint must bound an indexed attribute and the estimated
// selectivity (uniform over the attribute's loaded min/max) must beat
// the sequential-scan threshold.
func (t *Table) chooseIndex(ranges query.Ranges) (attr string, lo, hi float64, ok bool) {
	bestSel := math.Inf(1)
	for _, cand := range t.Indexes() {
		set, constrained := ranges[cand]
		if !constrained || set.Empty() || set.IsFull() {
			continue
		}
		st, haveStats := t.stats[cand]
		if !haveStats {
			continue
		}
		ivs := set.Intervals()
		clo := math.Max(ivs[0].Lo, st.Min)
		chi := math.Min(ivs[len(ivs)-1].Hi, st.Max)
		if clo > chi {
			// Provably empty: an index scan returns nothing instantly.
			clo, chi = st.Min, st.Min-1
		}
		width := st.Max - st.Min
		var sel float64
		switch {
		case chi < clo:
			sel = 0
		case width <= 0:
			sel = 1
		default:
			// Sum interval coverage, clamped to the stats range.
			covered := 0.0
			for _, iv := range ivs {
				l := math.Max(iv.Lo, st.Min)
				h := math.Min(iv.Hi, st.Max)
				if h > l {
					covered += h - l
				} else if h == l {
					covered += width / math.Max(float64(t.rows), 1)
				}
			}
			sel = covered / width
		}
		if sel < indexSelThreshold && sel < bestSel {
			bestSel = sel
			attr, lo, hi, ok = cand, clo, chi, true
		}
	}
	return attr, lo, hi, ok
}

// indexScan probes the B+-tree, sorts the matching TIDs for heap
// locality (a bitmap-heap-scan flavour), fetches and rechecks.
func (t *Table) indexScan(attr string, lo, hi float64, stats *ExecStats, sink func(table.Row) error) error {
	ix := t.indexes[attr]
	const batch = 1 << 16
	tids := make([]uint64, 0, batch)
	flush := func() error {
		if len(tids) == 0 {
			return nil
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		if err := t.scanHeap(func(_ uint64, row table.Row) error { return sink(row) }, tids); err != nil {
			return err
		}
		tids = tids[:0]
		return nil
	}
	var scanErr error
	err := ix.Scan(lo, hi, func(e btree.Entry) bool {
		stats.IndexEntries++
		tids = append(tids, e.TID)
		if len(tids) >= batch {
			if scanErr = flush(); scanErr != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	return flush()
}
