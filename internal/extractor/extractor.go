// Package extractor implements the runtime half of the generated
// extraction functions: given the aligned file chunks computed by
// internal/afc, it reads the named byte regions, assembles rows of the
// virtual table (payload attributes decoded from file bytes, implicit
// attributes supplied from the AFC, row-axis attributes synthesized),
// applies the residual WHERE predicate, and emits the surviving rows.
//
// "By reading the m files simultaneously, with Num_Bytes_i bytes from
// the file File_i, we create one row of the table." (paper §4)
package extractor

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"datavirt/internal/afc"
	"datavirt/internal/cache"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sparse"
	"datavirt/internal/table"
)

// Resolver maps a (node, file) pair from an AFC segment to a local
// filesystem path. Single-node deployments ignore node; the cluster
// node server restricts it to its own name.
type Resolver func(node, file string) (string, error)

// SafeJoin joins name under root, rejecting absolute names and names
// whose cleaned form escapes the root (a leading ".."): descriptor
// file names are data, and data must not address files outside the
// data directory.
func SafeJoin(root, name string) (string, error) {
	rel := filepath.FromSlash(name)
	if rel == "" || filepath.IsAbs(rel) {
		return "", fmt.Errorf("extractor: file name %q is not relative", name)
	}
	rel = filepath.Clean(rel)
	if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("extractor: file name %q escapes the data root", name)
	}
	return filepath.Join(root, rel), nil
}

// DirResolver resolves every file under a single root directory,
// ignoring the node name. Names that would escape the root are
// rejected.
func DirResolver(root string) Resolver {
	return func(node, file string) (string, error) {
		return SafeJoin(root, file)
	}
}

// Stats accumulates extraction counters.
type Stats struct {
	AFCs        int
	RowsScanned int64
	RowsEmitted int64
	BytesRead   int64
	// FilterNS is the time spent evaluating the residual predicate and
	// delivering rows, in nanoseconds, summed across workers (so it can
	// exceed the run's wall time under RunParallel).
	FilterNS int64

	// CacheHits and CacheMisses count block-cache lookups made by this
	// run's segment reads (zero when the run reads through a disabled
	// cache).
	CacheHits   int64
	CacheMisses int64
	// FSBytesRead is the bytes physically read from the filesystem by
	// this run's demand reads; a warm cache drives it toward zero while
	// BytesRead (the logical payload bytes, above) stays constant.
	// Readahead I/O is accounted on the cache's global Stats, not here.
	FSBytesRead int64
	// CacheBytesServed is the bytes delivered through the cache layer
	// (hits and misses combined, including stride gaps within spans).
	CacheBytesServed int64
	// MmapBlocksServed counts block lookups served zero-copy from a
	// file mapping by this run's demand reads (such blocks add nothing
	// to FSBytesRead); MmapRemaps counts mapping windows those reads
	// created beyond each file's first. Both stay zero under the pread
	// cache backend.
	MmapBlocksServed int64
	MmapRemaps       int64

	// BlocksSkipped counts extraction blocks proven row-free by a sparse
	// sidecar and never read (whole-AFC grid skips count as their
	// block-equivalents). SparseIndexHits and SparseIndexMisses count
	// sidecar lookups per (AFC, file) with constrained stored attributes:
	// a hit found a usable sidecar, a miss fell back to a full scan.
	BlocksSkipped     int64
	SparseIndexHits   int64
	SparseIndexMisses int64

	// VectorBatches counts blocks whose residual predicate ran through
	// the vectorized (batch/columnar) evaluator instead of per-row
	// Pred calls.
	VectorBatches int64
	// AggNS is the time spent folding selected rows into partial
	// aggregates, in nanoseconds, summed across workers.
	AggNS int64
	// AggPushedQueries counts aggregate runs evaluated push-down style
	// (no row materialization); AggPartialGroups is the number of
	// partial groups those runs produced before any coordinator merge.
	// Both are set once per RunAggregate* call, not per AFC.
	AggPushedQueries int64
	AggPartialGroups int64
}

// Add merges other run's counters into s.
func (s *Stats) Add(o Stats) {
	s.AFCs += o.AFCs
	s.RowsScanned += o.RowsScanned
	s.RowsEmitted += o.RowsEmitted
	s.BytesRead += o.BytesRead
	s.FilterNS += o.FilterNS
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.FSBytesRead += o.FSBytesRead
	s.CacheBytesServed += o.CacheBytesServed
	s.MmapBlocksServed += o.MmapBlocksServed
	s.MmapRemaps += o.MmapRemaps
	s.BlocksSkipped += o.BlocksSkipped
	s.SparseIndexHits += o.SparseIndexHits
	s.SparseIndexMisses += o.SparseIndexMisses
	s.VectorBatches += o.VectorBatches
	s.AggNS += o.AggNS
	s.AggPushedQueries += o.AggPushedQueries
	s.AggPartialGroups += o.AggPartialGroups
}

// EmitFunc receives each surviving row.
//
// Row reuse contract (the one canonical statement; every emitting API
// in this module — extractor.Run*, core.Prepared.Run*, the cluster
// coordinator's emit callbacks, and storm.Sink.Send — follows it): the
// row slice and its backing array are owned by the extractor and
// reused for the next row; an implementation that retains a row beyond
// the call must copy it (append(table.Row(nil), row...)). The
// core.Rows cursor performs this copy for its caller.
type EmitFunc func(row table.Row) error

// Options configure an extraction run. Rows are delivered under the
// reuse contract documented on EmitFunc.
type Options struct {
	// Cols is the working row layout: every attribute the predicate or
	// the final projection needs, in output order.
	Cols []schema.Attribute
	// Pred filters rows; nil accepts everything.
	Pred query.Predicate
	// VecPred is the same WHERE clause compiled for vectorized (batch)
	// evaluation. When set (and ScalarFilter is off), blocks are decoded
	// into column vectors, the predicate narrows a selection vector, and
	// only surviving rows are materialized — identical row sets to Pred,
	// asserted by a differential fuzz test.
	VecPred *query.VectorPredicate
	// ScalarFilter forces the per-row Pred path even when VecPred is
	// set — the oracle in differential tests and the baseline in
	// benchmarks.
	ScalarFilter bool
	// BlockBytes bounds the I/O buffer per segment (default 1 MiB).
	BlockBytes int
	// Workers sets the parallelism of RunParallel (default GOMAXPROCS
	// capped at 8).
	Workers int
	// Source supplies byte readers for segment files — typically the
	// node's shared block cache (*cache.Cache, see internal/cache), so
	// repeated and overlapping queries reuse resident blocks. nil uses
	// a run-scoped passthrough source: direct reads, but open handles
	// are still pooled across the run's AFCs instead of reopening the
	// file per chunk.
	Source cache.Source

	// Ranges is the query's canonical per-attribute constraint sets
	// (conservatively over-approximating the WHERE clause). Together
	// with Sparse it enables data skipping: blocks whose sidecar zone
	// maps cannot intersect the ranges are never read.
	Ranges query.Ranges
	// Sparse returns the sparse sidecar for a (node, file) pair, or nil
	// when the file has none. nil disables data skipping entirely;
	// pruning is always a pure optimization — rows are identical with
	// and without it.
	Sparse func(node, file string) *sparse.Sidecar
}

const defaultBlockBytes = 1 << 20

// runSource resolves opt.Source for one run; the cleanup closes the
// fallback source (a no-op closure when the caller supplied one, whose
// lifetime the caller owns).
func runSource(opt Options) (cache.Source, func()) {
	if opt.Source != nil {
		return opt.Source, func() {}
	}
	local := cache.New(cache.Config{Disabled: true})
	return local, func() { local.Close() }
}

// segKey identifies one pooled segment reader. dup distinguishes
// multiple segments of a single AFC that reference the same file, so
// each keeps its own reader — its own block memo and its own forward
// scan as seen by the cache's readahead.
type segKey struct {
	node, file string
	dup        int
}

// segPool caches resolved paths and open readers across the AFCs of
// one extraction goroutine. Datasets with thousands of chunk-sized
// AFCs over a handful of files would otherwise pay a resolver call
// and a reader allocation per segment per AFC — enough garbage that
// GC frequency, not the serve path, dominates warm-scan timing.
// Pooling opens each (node, file, dup) once and releases it when the
// run (or worker) finishes. Demand counters are delta-folded into
// Stats after each AFC, so totals match the unpooled accounting.
type segPool struct {
	src     cache.Source
	resolve Resolver
	readers map[segKey]*poolEntry
	scratch []cache.Reader // per-AFC reader slice, reused across open calls
	dups    map[segKey]int // per-AFC occurrence counts, reused (dup field zero)
}

type poolEntry struct {
	r      cache.Reader
	folded cache.Counters // counter values already folded into Stats
}

func newSegPool(src cache.Source, resolve Resolver) *segPool {
	return &segPool{
		src:     src,
		resolve: resolve,
		readers: make(map[segKey]*poolEntry),
		dups:    make(map[segKey]int),
	}
}

// open returns one reader per segment of the AFC, opening only
// segments not seen before. The returned slice is valid until the
// next open call. On error, already-pooled readers stay open for the
// pool's release to reclaim.
func (p *segPool) open(a *afc.AFC) ([]cache.Reader, error) {
	if cap(p.scratch) < len(a.Segments) {
		p.scratch = make([]cache.Reader, len(a.Segments))
	}
	readers := p.scratch[:len(a.Segments)]
	clear(p.dups)
	for i, s := range a.Segments {
		base := segKey{node: s.Node, file: s.File}
		k := base
		k.dup = p.dups[base]
		p.dups[base] = k.dup + 1
		e, ok := p.readers[k]
		if !ok {
			path, err := p.resolve(s.Node, s.File)
			if err != nil {
				return nil, fmt.Errorf("extractor: %s:%s: %w", s.Node, s.File, err)
			}
			r, err := p.src.Open(path)
			if err != nil {
				return nil, fmt.Errorf("extractor: %s:%s: %w", s.Node, s.File, err)
			}
			e = &poolEntry{r: r}
			p.readers[k] = e
		}
		readers[i] = e.r
	}
	return readers, nil
}

// fold adds every pooled reader's demand-counter growth since the
// last fold into stats, keeping per-run totals exact while readers
// stay open across AFCs.
func (p *segPool) fold(stats *Stats) {
	for _, e := range p.readers {
		c := e.r.Counters()
		stats.CacheHits += c.Hits - e.folded.Hits
		stats.CacheMisses += c.Misses - e.folded.Misses
		stats.FSBytesRead += c.BytesRead - e.folded.BytesRead
		stats.CacheBytesServed += c.BytesServed - e.folded.BytesServed
		stats.MmapBlocksServed += c.MmapBlocksServed - e.folded.MmapBlocksServed
		stats.MmapRemaps += c.MmapRemaps - e.folded.MmapRemaps
		e.folded = c
	}
}

// release returns every pooled reader to the source. Counters were
// folded after each AFC, so no stats are lost here.
func (p *segPool) release() {
	for _, e := range p.readers {
		e.r.Release()
	}
	clear(p.readers)
}

// Run extracts the AFCs sequentially with a background context; it is
// the convenience form of RunContext.
func Run(afcs []afc.AFC, resolver Resolver, opt Options, emit EmitFunc) (Stats, error) {
	return RunContext(context.Background(), afcs, resolver, opt, emit)
}

// RunContext extracts the AFCs sequentially, calling emit for each
// surviving row, and returns run statistics. Cancelling ctx stops the
// run between block reads; the context's error is returned.
func RunContext(ctx context.Context, afcs []afc.AFC, resolver Resolver, opt Options, emit EmitFunc) (Stats, error) {
	src, done := runSource(opt)
	defer done()
	var stats Stats
	pool := newSegPool(src, resolver)
	defer pool.release()
	bb := &blockBuf{}
	for i := range afcs {
		if err := extractOne(ctx, &afcs[i], pool, opt, bb, &stats, nil, emit); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// RunParallel extracts AFCs with a bounded worker pool and a background
// context; it is the convenience form of RunParallelContext.
func RunParallel(afcs []afc.AFC, resolver Resolver, opt Options, emit EmitFunc) (Stats, error) {
	return RunParallelContext(context.Background(), afcs, resolver, opt, emit)
}

// RunParallelContext extracts AFCs with a bounded worker pool. Rows are
// delivered to emit from a single collector goroutine, so emit needs no
// locking; row order across AFCs is unspecified (as in the paper's
// middleware, which partitions and ships tuples as they are produced).
// Cancelling ctx stops the feeder and every worker between block reads;
// all goroutines have exited by the time the call returns.
func RunParallelContext(ctx context.Context, afcs []afc.AFC, resolver Resolver, opt Options, emit EmitFunc) (Stats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(afcs) {
		workers = len(afcs)
	}
	if workers <= 1 {
		return RunContext(ctx, afcs, resolver, opt, emit)
	}

	src, srcDone := runSource(opt)
	defer srcDone()

	type batch struct {
		rows  []table.Row
		stats Stats
	}
	work := make(chan *afc.AFC)
	results := make(chan batch, workers)
	done := make(chan struct{})
	var once sync.Once
	var workerErr error
	fail := func(err error) {
		once.Do(func() {
			workerErr = err
			close(done)
		})
	}
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bb := &blockBuf{}
			pool := newSegPool(src, resolver)
			defer pool.release()
			for a := range work {
				var b batch
				collect := func(r table.Row) error {
					b.rows = append(b.rows, append(table.Row(nil), r...))
					return nil
				}
				if err := extractOne(ctx, a, pool, opt, bb, &b.stats, nil, collect); err != nil {
					fail(err)
					return
				}
				select {
				case results <- b:
				case <-done:
					return
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
			}
		}()
	}

	// Feeder: stops early when any worker fails or ctx is cancelled.
	go func() {
		defer close(work)
		for i := range afcs {
			select {
			case work <- &afcs[i]:
			case <-done:
				return
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
		}
	}()

	// Close results when all workers exit.
	go func() {
		wg.Wait()
		close(results)
	}()

	var stats Stats
	var emitErr error
	for b := range results {
		stats.Add(b.stats)
		if emitErr != nil {
			continue // drain
		}
		for _, r := range b.rows {
			if err := emit(r); err != nil {
				emitErr = err
				fail(err)
				break
			}
		}
	}
	if workerErr != nil {
		return stats, workerErr
	}
	return stats, emitErr
}

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// colSource binds one output column to its value source within an AFC.
type colSource struct {
	// seg >= 0: decode from segment seg at attrOff within the row run.
	seg     int
	attrOff int64
	kind    schema.Kind
	// implicit: constant value (seg < 0, rowDim == nil).
	implicit schema.Value
	// rowDim: synthesized from the row index (seg < 0).
	rowDim *afc.RowDim
}

// bind resolves each working column to a source in the AFC, filling
// scratch when it has the capacity (the extraction loop re-binds per
// AFC; reusing the slice keeps the warm path allocation-free).
func bind(a *afc.AFC, cols []schema.Attribute, scratch []colSource) ([]colSource, error) {
	out := scratch
	if cap(out) < len(cols) {
		out = make([]colSource, len(cols))
	}
	out = out[:len(cols)]
Cols:
	for i, c := range cols {
		for si := range a.Segments {
			for _, at := range a.Segments[si].Attrs {
				if at.Name == c.Name {
					out[i] = colSource{seg: si, attrOff: at.Off, kind: at.Kind}
					continue Cols
				}
			}
		}
		for _, im := range a.Implicits {
			if im.Name == c.Name {
				out[i] = colSource{seg: -1, implicit: im.Value}
				continue Cols
			}
		}
		for ri := range a.RowDims {
			if a.RowDims[ri].Name == c.Name {
				out[i] = colSource{seg: -1, rowDim: &a.RowDims[ri]}
				continue Cols
			}
		}
		return nil, fmt.Errorf("extractor: AFC provides no source for attribute %q", c.Name)
	}
	return out, nil
}

// maxBlockRows caps the block materialization buffer.
const maxBlockRows = 512

// blockBuf holds the reusable block-materialization state of one
// extraction goroutine: a column-major-filled matrix of rows plus the
// per-segment byte buffers.
//
// Buffer-ownership discipline (checked by the cross-backend
// conformance tests): spans holds the bytes each decode loop reads
// from, and may alias cache-owned memory — a block buffer or, under
// the mmap backend, a file mapping — borrowed through
// cache.Viewer.ViewAt. Borrowed spans are only valid while the
// extraction's readers are open, so extractOne clears every spans slot
// before it releases them; nothing may write into spans or retain one
// across extractOne calls. own holds the goroutine-owned scratch
// buffers the copying ReadAt path reuses — writes go there and nowhere
// else.
type blockBuf struct {
	flat  []schema.Value
	rows  []table.Row
	spans [][]byte
	own   [][]byte
	srcs  []colSource // bind scratch, reused across AFCs
	prune []segPrune  // sparse-pruning scratch, reused across AFCs
	files []fileSidecar

	// Vectorized-filter state: the column-vector batch, the selection
	// index vector, and the evaluator's scratch buffers — all reused
	// across blocks so the hot loop stays allocation-free.
	batch query.Batch
	sel   []int32
	vscr  query.VectorScratch
}

// segPrune is the per-segment data-skipping state of one AFC: the
// file's sidecar (nil disables pruning for the segment) and the
// constrained attributes the segment stores.
type segPrune struct {
	sc    *sparse.Sidecar
	attrs []pruneAttr
}

type pruneAttr struct {
	name string
	set  query.Set
}

// fileSidecar memoizes one sidecar lookup within an AFC.
type fileSidecar struct {
	node, file string
	sc         *sparse.Sidecar
}

func (bb *blockBuf) shape(rows, cols, segs int) {
	// cols can be zero (a bare COUNT(*) reads no attributes); the row
	// slice must still exist for the scalar delivery path.
	if cap(bb.flat) < rows*cols || len(bb.rows) < rows || (len(bb.rows) > 0 && len(bb.rows[0]) != cols) {
		bb.flat = make([]schema.Value, rows*cols)
		bb.rows = make([]table.Row, rows)
		for i := range bb.rows {
			bb.rows[i] = bb.flat[i*cols : (i+1)*cols]
		}
	}
	if len(bb.spans) < segs {
		bb.spans = make([][]byte, segs)
	}
	if len(bb.own) < segs {
		bb.own = make([][]byte, segs)
	}
}

// dropSpans forgets every borrowed span; it runs before the segment
// readers are released so no view outlives the mapping pinning it.
func (bb *blockBuf) dropSpans() {
	for i := range bb.spans {
		bb.spans[i] = nil
	}
}

// extractOne streams one AFC: it reads the block's byte spans through
// the segment readers (cache-backed or passthrough), fills the block
// column by column with kind-specialized tight loops (the run-time
// counterpart of the generated extraction code's straight-line
// decoding), then filters and delivers rows. The context is checked
// between blocks, bounding cancellation latency to one block read
// (≤ maxBlockRows rows). One reader per segment means the cache's
// readahead sees each segment as its own forward scan.
//
// Delivery has three modes. With a vectorized predicate the block is
// decoded into column vectors, the predicate narrows a selection index
// vector, and only surviving rows are materialized and emitted. With
// agg set, selected rows are folded straight into the partial-aggregate
// state and never materialized at all. Otherwise (or under
// Options.ScalarFilter) the original fill-every-row, per-row-Pred path
// runs.
func extractOne(ctx context.Context, a *afc.AFC, pool *segPool, opt Options, bb *blockBuf, stats *Stats, agg *query.AggState, emit EmitFunc) error {
	stats.AFCs++
	if a.NumRows == 0 {
		return nil
	}
	sources, err := bind(a, opt.Cols, bb.srcs)
	if err != nil {
		return err
	}
	bb.srcs = sources

	blockBytes := opt.BlockBytes
	if blockBytes <= 0 {
		blockBytes = defaultBlockBytes
	}
	// Rows per block: bounded by the widest segment stride.
	maxStride := int64(1)
	for _, s := range a.Segments {
		st := s.RowStride
		if st == 0 {
			st = s.RowBytes
		}
		if st > maxStride {
			maxStride = st
		}
	}
	rowsPerBlock := int64(blockBytes) / maxStride
	if rowsPerBlock < 1 {
		rowsPerBlock = 1
	}
	if rowsPerBlock > maxBlockRows {
		rowsPerBlock = maxBlockRows
	}

	// Sparse data skipping: resolved before any file is opened, so an
	// AFC pruned whole by the grid summary costs zero I/O.
	pruning := bb.setupPrune(a, opt, stats)
	if pruning && !gridMayMatch(a, opt.Ranges, bb) {
		stats.BlocksSkipped += (a.NumRows + rowsPerBlock - 1) / rowsPerBlock
		return nil
	}

	files, err := pool.open(a)
	if err != nil {
		return err
	}
	defer pool.fold(stats)
	defer bb.dropSpans() // borrowed views must not be retained past this AFC

	bb.shape(int(rowsPerBlock), len(opt.Cols), len(a.Segments))
	spans := bb.spans
	pred := opt.Pred
	// The batch path needs the predicate in vectorized form (or no
	// predicate at all); otherwise fall back to per-row evaluation.
	vectorized := !opt.ScalarFilter && (opt.VecPred != nil || (agg != nil && pred == nil))
	constRead := false
	var rowsSkipped int64
	for base := int64(0); base < a.NumRows; base += rowsPerBlock {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := rowsPerBlock
		if base+n > a.NumRows {
			n = a.NumRows - base
		}
		if pruning && blockPrunable(a, bb.prune, base, n) {
			stats.BlocksSkipped++
			rowsSkipped += n
			continue
		}
		// Read each segment's span for this block.
		for si := range a.Segments {
			s := &a.Segments[si]
			var span, off int64
			if s.RowStride == 0 {
				if constRead {
					continue // constant segment already read for this AFC
				}
				span = s.RowBytes
				off = s.Offset
			} else {
				span = (n-1)*s.RowStride + s.RowBytes
				off = s.Offset + base*s.RowStride
			}
			// Zero-copy fast path: borrow the span straight from the
			// cache (block buffer or file mapping) when it lies within
			// one cache block. Borrowed spans are read-only and dropped
			// before the readers are released.
			if v, ok := files[si].(cache.Viewer); ok {
				if data, ok := v.ViewAt(off, int(span)); ok {
					spans[si] = data
					continue
				}
			}
			if cap(bb.own[si]) < int(span) {
				bb.own[si] = make([]byte, span)
			}
			buf := bb.own[si][:span]
			if _, err := files[si].ReadAt(buf, off); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return fmt.Errorf("extractor: %s:%s: file shorter than layout requires (need %d bytes at offset %d)",
						s.Node, s.File, span, off)
				}
				return fmt.Errorf("extractor: reading %s:%s: %w", s.Node, s.File, err)
			}
			bb.own[si] = buf
			spans[si] = buf
		}
		constRead = true
		stats.RowsScanned += n

		if vectorized {
			// Decode the block into column vectors, narrow the selection
			// with the vectorized predicate, then deliver only survivors:
			// folded into the partial aggregates, or gather-materialized
			// into rows for emit.
			bb.fillBatch(a, sources, spans, base, int(n))
			filterStart := time.Now()
			sel := query.Identity(bb.sel, int(n))
			if opt.VecPred != nil {
				sel = opt.VecPred.Eval(&bb.batch, sel, &bb.vscr)
			}
			bb.sel = sel
			stats.VectorBatches++
			stats.FilterNS += time.Since(filterStart).Nanoseconds()
			stats.RowsEmitted += int64(len(sel))
			if agg != nil {
				aggStart := time.Now()
				agg.ObserveBatch(&bb.batch, sel)
				stats.AggNS += time.Since(aggStart).Nanoseconds()
				continue
			}
			emitStart := time.Now()
			rows := bb.rows[:len(sel)]
			gatherRows(rows, &bb.batch, sel, opt.Cols)
			for r := range rows {
				if err := emit(rows[r]); err != nil {
					stats.FilterNS += time.Since(emitStart).Nanoseconds()
					return err
				}
			}
			stats.FilterNS += time.Since(emitStart).Nanoseconds()
			continue
		}

		// Scalar path: fill the block column-major with kind-specialized
		// loops, then filter and deliver row-wise.
		rows := bb.rows[:n]
		for ci := range sources {
			src := &sources[ci]
			switch {
			case src.seg >= 0:
				seg := &a.Segments[src.seg]
				if seg.BigEndian {
					fillColumnBE(rows, ci, src.kind, spans[src.seg], src.attrOff, seg.RowStride)
				} else {
					fillColumn(rows, ci, src.kind, spans[src.seg], src.attrOff, seg.RowStride)
				}
			case src.rowDim != nil:
				rd := src.rowDim
				if rd.Kind.Integral() {
					for r := range rows {
						rows[r][ci] = schema.Value{Kind: rd.Kind, Int: rd.ValueAt(base + int64(r))}
					}
				} else {
					for r := range rows {
						rows[r][ci] = schema.Value{Kind: rd.Kind, Float: float64(rd.ValueAt(base + int64(r)))}
					}
				}
			default:
				for r := range rows {
					rows[r][ci] = src.implicit
				}
			}
		}

		filterStart := time.Now()
		aggNS0 := stats.AggNS
		for r := int64(0); r < n; r++ {
			if pred != nil && !pred(rows[r]) {
				continue
			}
			stats.RowsEmitted++
			if agg != nil {
				aggStart := time.Now()
				agg.ObserveRow(rows[r])
				stats.AggNS += time.Since(aggStart).Nanoseconds()
				continue
			}
			if err := emit(rows[r]); err != nil {
				stats.FilterNS += time.Since(filterStart).Nanoseconds()
				return err
			}
		}
		// Aggregation time is attributed to its own stage, not filter.
		stats.FilterNS += time.Since(filterStart).Nanoseconds() - (stats.AggNS - aggNS0)
	}
	for _, s := range a.Segments {
		if s.RowStride == 0 {
			if constRead {
				stats.BytesRead += s.RowBytes
			}
		} else {
			stats.BytesRead += s.RowBytes * (a.NumRows - rowsSkipped)
		}
	}
	return nil
}

// setupPrune resolves the AFC's sidecars and constrained stored
// attributes into bb.prune, counting one sidecar hit or miss per
// distinct file that stores at least one constrained attribute. It
// reports whether any pruning state is active for this AFC.
func (bb *blockBuf) setupPrune(a *afc.AFC, opt Options, stats *Stats) bool {
	if opt.Sparse == nil || len(opt.Ranges) == 0 {
		return false
	}
	if cap(bb.prune) < len(a.Segments) {
		next := make([]segPrune, len(a.Segments))
		copy(next, bb.prune)
		bb.prune = next
	}
	bb.prune = bb.prune[:len(a.Segments)]
	bb.files = bb.files[:0]
	active := false
	for si := range a.Segments {
		s := &a.Segments[si]
		p := &bb.prune[si]
		p.sc = nil
		p.attrs = p.attrs[:0]
		for _, at := range s.Attrs {
			if set := opt.Ranges.Get(at.Name); !set.IsFull() {
				p.attrs = append(p.attrs, pruneAttr{name: at.Name, set: set})
			}
		}
		if len(p.attrs) == 0 {
			continue
		}
		found := false
		for i := range bb.files {
			if bb.files[i].node == s.Node && bb.files[i].file == s.File {
				p.sc = bb.files[i].sc
				found = true
				break
			}
		}
		if !found {
			sc := opt.Sparse(s.Node, s.File)
			bb.files = append(bb.files, fileSidecar{node: s.Node, file: s.File, sc: sc})
			p.sc = sc
			if sc != nil {
				stats.SparseIndexHits++
			} else {
				stats.SparseIndexMisses++
			}
		}
		if p.sc != nil {
			active = true
		}
	}
	return active
}

// gridMayMatch consults each sidecar's multidimensional grid summary
// for the whole AFC. Soundness: a grid records the file's joint value
// tuples at common dimension coordinates, and an AFC row pairs
// attribute values at common dimension coordinates too, so constraining
// only the grid attributes this file's segments actually store in this
// AFC can never prune a surviving row. It returns false when some grid
// proves no row of the AFC can match.
func gridMayMatch(a *afc.AFC, ranges query.Ranges, bb *blockBuf) bool {
	for i := range bb.files {
		f := &bb.files[i]
		if f.sc == nil || f.sc.Grid == nil {
			continue
		}
		var reduced query.Ranges
		for _, attr := range f.sc.GridAttrs() {
			set := ranges.Get(attr)
			if set.IsFull() || !fileStoresAttr(a, f.node, f.file, attr) {
				continue
			}
			if reduced == nil {
				reduced = make(query.Ranges, 3)
			}
			reduced[attr] = set
		}
		if len(reduced) > 0 && !f.sc.GridMayMatch(reduced) {
			return false
		}
	}
	return true
}

func fileStoresAttr(a *afc.AFC, node, file, attr string) bool {
	for si := range a.Segments {
		s := &a.Segments[si]
		if s.Node != node || s.File != file {
			continue
		}
		for _, at := range s.Attrs {
			if at.Name == attr {
				return true
			}
		}
	}
	return false
}

// blockPrunable reports whether the zone maps prove the block starting
// at row base (n rows) holds no row satisfying the constraints: some
// constrained attribute's merged zone over the block's byte span
// misses its set entirely.
func blockPrunable(a *afc.AFC, prune []segPrune, base, n int64) bool {
	for si := range a.Segments {
		p := &prune[si]
		if p.sc == nil || len(p.attrs) == 0 {
			continue
		}
		s := &a.Segments[si]
		var off, span int64
		if s.RowStride == 0 {
			off, span = s.Offset, s.RowBytes
		} else {
			off = s.Offset + base*s.RowStride
			span = (n-1)*s.RowStride + s.RowBytes
		}
		for _, pa := range p.attrs {
			if !p.sc.SpanMayMatch(pa.name, off, span, pa.set) {
				return true
			}
		}
	}
	return false
}

// fillColumn decodes one attribute for every row of the block with a
// kind-specialized tight loop.
func fillColumn(rows []table.Row, ci int, kind schema.Kind, buf []byte, off, stride int64) {
	p := off
	switch kind {
	case schema.Char:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(int8(buf[p]))}
			p += stride
		}
	case schema.Short:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(int16(binary.LittleEndian.Uint16(buf[p : p+2])))}
			p += stride
		}
	case schema.Int:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(int32(binary.LittleEndian.Uint32(buf[p : p+4])))}
			p += stride
		}
	case schema.Long:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(binary.LittleEndian.Uint64(buf[p : p+8]))}
			p += stride
		}
	case schema.Float:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Float: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[p : p+4])))}
			p += stride
		}
	case schema.Double:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Float: math.Float64frombits(binary.LittleEndian.Uint64(buf[p : p+8]))}
			p += stride
		}
	}
}

// fillColumnBE is fillColumn for big-endian segments (BYTEORDER { BIG }).
func fillColumnBE(rows []table.Row, ci int, kind schema.Kind, buf []byte, off, stride int64) {
	p := off
	switch kind {
	case schema.Char:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(int8(buf[p]))}
			p += stride
		}
	case schema.Short:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(int16(binary.BigEndian.Uint16(buf[p : p+2])))}
			p += stride
		}
	case schema.Int:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(int32(binary.BigEndian.Uint32(buf[p : p+4])))}
			p += stride
		}
	case schema.Long:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Int: int64(binary.BigEndian.Uint64(buf[p : p+8]))}
			p += stride
		}
	case schema.Float:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Float: float64(math.Float32frombits(binary.BigEndian.Uint32(buf[p : p+4])))}
			p += stride
		}
	case schema.Double:
		for r := range rows {
			rows[r][ci] = schema.Value{Kind: kind, Float: math.Float64frombits(binary.BigEndian.Uint64(buf[p : p+8]))}
			p += stride
		}
	}
}
