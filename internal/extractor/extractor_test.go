package extractor

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"datavirt/internal/afc"
	"datavirt/internal/cache"
	"datavirt/internal/cache/cachetest"
	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// nodeResolver resolves node/file pairs under a generated root.
func nodeResolver(root string) Resolver {
	return func(node, file string) (string, error) {
		return filepath.Join(gen.NodePath(root, node), filepath.FromSlash(file)), nil
	}
}

func spec() gen.IparsSpec {
	return gen.IparsSpec{
		Realizations: 2, TimeSteps: 6, GridPoints: 20, Partitions: 2,
		Attrs: 5, Seed: 11,
	}
}

// setupIpars generates the dataset in the given layout and returns the
// compiled plan plus the data root.
func setupIpars(t *testing.T, s gen.IparsSpec, layoutID string) (*afc.Plan, string) {
	t.Helper()
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, layoutID)
	if err != nil {
		t.Fatalf("WriteIpars(%s): %v", layoutID, err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := afc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	return p, root
}

// naiveRows enumerates the expected virtual table directly from the
// spec: the reference implementation every layout must reproduce.
func naiveRows(s gen.IparsSpec, sch *schema.Schema, cols []string, keep func(vals map[string]float64) bool) [][]float64 {
	names := gen.IparsAttrNames(s.Attrs)
	var out [][]float64
	for rel := int64(0); rel < int64(s.Realizations); rel++ {
		for tm := int64(1); tm <= int64(s.TimeSteps); tm++ {
			for g := int64(0); g < int64(s.GridPoints); g++ {
				vals := map[string]float64{"REL": float64(rel), "TIME": float64(tm)}
				x, y, z := s.Coord(g)
				vals["X"], vals["Y"], vals["Z"] = x, y, z
				for ai, n := range names {
					vals[n] = float64(float32(s.Value(ai, rel, tm, g)))
				}
				if keep != nil && !keep(vals) {
					continue
				}
				row := make([]float64, len(cols))
				for i, c := range cols {
					row[i] = vals[c]
				}
				out = append(out, row)
			}
		}
	}
	return out
}

// runQuery executes SQL against a plan and returns rows as float slices.
func runQuery(t *testing.T, p *afc.Plan, root, sql string, parallel bool) ([][]float64, Stats) {
	t.Helper()
	q := sqlparser.MustParse(sql)
	reg := filter.NewRegistry()
	cols, err := query.Validate(q, p.Schema, reg)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Working columns: select + where attrs, in schema order.
	needed := map[string]bool{}
	for _, c := range cols {
		needed[c] = true
	}
	for _, c := range sqlparser.ExprColumns(q.Where) {
		needed[c] = true
	}
	var work []schema.Attribute
	for _, a := range p.Schema.Attrs() {
		if needed[a.Name] {
			work = append(work, a)
		}
	}
	workIdx := map[string]int{}
	for i, a := range work {
		workIdx[a.Name] = i
	}
	neededNames := make([]string, len(work))
	for i, a := range work {
		neededNames[i] = a.Name
	}
	ranges := query.ExtractRanges(q.Where)
	loader := func(fi metadata.FileInstance) (*index.ChunkIndex, error) {
		return index.ReadFile(filepath.Join(gen.NodePath(root, fi.Node()), filepath.FromSlash(fi.Path())))
	}
	afcs, err := p.Generate(ranges, neededNames, loader)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i, ok := workIdx[name]
		return i, ok
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]float64
	emit := func(r table.Row) error {
		out := make([]float64, len(cols))
		for i, c := range cols {
			out[i] = r[workIdx[c]].AsFloat()
		}
		rows = append(rows, out)
		return nil
	}
	opt := Options{Cols: work, Pred: pred}
	var stats Stats
	if parallel {
		opt.Workers = 4
		stats, err = RunParallel(afcs, nodeResolver(root), opt, emit)
	} else {
		stats, err = Run(afcs, nodeResolver(root), opt, emit)
	}
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return rows, stats
}

// sortRows canonicalizes row order for comparison.
func sortRows(rows [][]float64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func assertSameRows(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	sortRows(got)
	sortRows(want)
	for i := range want {
		for k := range want[i] {
			g, w := got[i][k], want[i][k]
			if g != w && math.Abs(g-w) > 1e-6*math.Max(math.Abs(g), math.Abs(w)) {
				t.Fatalf("%s: row %d col %d: got %g, want %g\ngot  %v\nwant %v",
					label, i, k, g, w, got[i], want[i])
			}
		}
	}
}

// TestAllLayoutsEquivalent is the cross-layout correctness test of the
// paper's second experiment: the same queries over the same data in
// every layout must produce identical virtual tables, and they must
// match the naive reference enumeration.
func TestAllLayoutsEquivalent(t *testing.T) {
	s := spec()
	queries := []struct {
		sql  string
		keep func(map[string]float64) bool
		cols []string
	}{
		{
			sql:  "SELECT * FROM IparsData",
			keep: nil,
			cols: append([]string{"REL", "TIME", "X", "Y", "Z"}, gen.IparsAttrNames(s.Attrs)...),
		},
		{
			sql:  "SELECT * FROM IparsData WHERE TIME > 2 AND TIME < 5",
			keep: func(v map[string]float64) bool { return v["TIME"] > 2 && v["TIME"] < 5 },
			cols: append([]string{"REL", "TIME", "X", "Y", "Z"}, gen.IparsAttrNames(s.Attrs)...),
		},
		{
			sql: "SELECT * FROM IparsData WHERE TIME > 2 AND TIME < 5 AND SOIL > 0.5",
			keep: func(v map[string]float64) bool {
				return v["TIME"] > 2 && v["TIME"] < 5 && v["SOIL"] > 0.5
			},
			cols: append([]string{"REL", "TIME", "X", "Y", "Z"}, gen.IparsAttrNames(s.Attrs)...),
		},
		{
			sql: "SELECT SOIL, TIME FROM IparsData WHERE REL = 1 AND SGAS <= 0.25",
			keep: func(v map[string]float64) bool {
				return v["REL"] == 1 && v["SGAS"] <= 0.25
			},
			cols: []string{"SOIL", "TIME"},
		},
	}
	for _, layoutID := range gen.IparsLayouts() {
		p, root := setupIpars(t, s, layoutID)
		for qi, qc := range queries {
			want := naiveRows(s, p.Schema, qc.cols, qc.keep)
			got, _ := runQuery(t, p, root, qc.sql, false)
			assertSameRows(t, fmt.Sprintf("%s/q%d", layoutID, qi), got, want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	sql := "SELECT * FROM IparsData WHERE TIME >= 2 AND SOIL > 0.3"
	seq, seqStats := runQuery(t, p, root, sql, false)
	par, parStats := runQuery(t, p, root, sql, true)
	assertSameRows(t, "parallel-vs-sequential", par, seq)
	if seqStats.RowsEmitted != parStats.RowsEmitted || seqStats.RowsScanned != parStats.RowsScanned {
		t.Errorf("stats mismatch: %+v vs %+v", seqStats, parStats)
	}
}

func TestFilterFunctionQuery(t *testing.T) {
	s := spec()
	s.Attrs = 11 // include OILVX..OILVZ
	p, root := setupIpars(t, s, "CLUSTER")
	sql := "SELECT * FROM IparsData WHERE TIME <= 3 AND SPEED(OILVX, OILVY, OILVZ) < 20"
	cols := append([]string{"REL", "TIME", "X", "Y", "Z"}, gen.IparsAttrNames(s.Attrs)...)
	want := naiveRows(s, p.Schema, cols, func(v map[string]float64) bool {
		sp := math.Sqrt(v["OILVX"]*v["OILVX"] + v["OILVY"]*v["OILVY"] + v["OILVZ"]*v["OILVZ"])
		return v["TIME"] <= 3 && sp < 20
	})
	got, _ := runQuery(t, p, root, sql, false)
	assertSameRows(t, "speed-filter", got, want)
	if len(got) == 0 {
		t.Fatal("filter selected nothing; test is vacuous")
	}
}

func TestTitanChunkedExtraction(t *testing.T) {
	root := t.TempDir()
	ts := gen.TitanSpec{
		Points: 4000, XMax: 1000, YMax: 1000, ZMax: 100,
		TilesX: 4, TilesY: 4, TilesZ: 2, Nodes: 1, Seed: 5,
	}
	descPath, err := gen.WriteTitan(root, ts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := afc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM TitanData WHERE X <= 300 AND Y <= 300 AND Z <= 40 AND S1 < 0.5"
	got, stats := runQuery(t, p, root, sql, false)

	var want [][]float64
	for j := int64(0); j < int64(ts.Points); j++ {
		x, y, z, sens := ts.Point(j)
		if x <= 300 && y <= 300 && z <= 40 && sens[0] < 0.5 {
			want = append(want, []float64{float64(x), float64(y), float64(z),
				float64(sens[0]), float64(sens[1]), float64(sens[2]), float64(sens[3]), float64(sens[4])})
		}
	}
	assertSameRows(t, "titan", got, want)
	if len(want) == 0 {
		t.Fatal("query selected nothing; test is vacuous")
	}
	// The chunk index must have pruned most of the file.
	if stats.RowsScanned >= int64(ts.Points) {
		t.Errorf("index pruned nothing: scanned %d of %d", stats.RowsScanned, ts.Points)
	}
}

func TestStatsBytesRead(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	// Full scan reads every payload byte of every AFC exactly once per
	// group: COORDS bytes are re-read per TIME chunk (paper behaviour),
	// so BytesRead >= total data bytes.
	_, stats := runQuery(t, p, root, "SELECT * FROM IparsData", false)
	if stats.BytesRead < p.TotalDataBytes() {
		t.Errorf("BytesRead = %d < data %d", stats.BytesRead, p.TotalDataBytes())
	}
	if stats.RowsScanned != s.IparsTotalRows() {
		t.Errorf("RowsScanned = %d, want %d", stats.RowsScanned, s.IparsTotalRows())
	}
}

func TestTruncatedFileError(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	// Truncate one data file.
	victim := filepath.Join(root, "node0", "ipars", "DATA0")
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	q := sqlparser.MustParse("SELECT * FROM IparsData")
	needed := p.Schema.Names()
	afcs, err := p.Generate(query.ExtractRanges(q.Where), needed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var work []schema.Attribute
	work = append(work, p.Schema.Attrs()...)
	_, err = Run(afcs, nodeResolver(root), Options{Cols: work}, func(table.Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "shorter than layout requires") {
		t.Errorf("truncated file: err = %v", err)
	}
	// Parallel run surfaces the same failure.
	_, err = RunParallel(afcs, nodeResolver(root), Options{Cols: work, Workers: 4},
		func(table.Row) error { return nil })
	if err == nil {
		t.Error("parallel run ignored truncated file")
	}
}

func TestMissingFileError(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	if err := os.Remove(filepath.Join(root, "node1", "ipars", "COORDS")); err != nil {
		t.Fatal(err)
	}
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs()},
		func(table.Row) error { return nil })
	if err == nil {
		t.Error("missing file not reported")
	}
}

func TestEmitError(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("sink full")
	n := 0
	_, err = Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs()},
		func(table.Row) error {
			n++
			if n > 10 {
				return boom
			}
			return nil
		})
	if err != boom {
		t.Errorf("emit error not propagated: %v", err)
	}
	// Parallel: emit errors stop the run promptly.
	n = 0
	_, err = RunParallel(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs(), Workers: 4},
		func(table.Row) error {
			n++
			if n > 10 {
				return boom
			}
			return nil
		})
	if err != boom {
		t.Errorf("parallel emit error: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	a := afc.AFC{NumRows: 1, Segments: []afc.Segment{
		{File: "f", RowStride: 4, RowBytes: 4,
			Attrs: []afc.SegAttr{{Name: "A", Kind: schema.Float}}},
	}}
	_, err := Run([]afc.AFC{a}, DirResolver("/nonexistent"),
		Options{Cols: []schema.Attribute{{Name: "B", Kind: schema.Float}}},
		func(table.Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no source for attribute") {
		t.Errorf("bind error = %v", err)
	}
}

func TestSmallBlockSizes(t *testing.T) {
	// Tiny BlockBytes forces multi-block iteration including constant
	// (stride 0) segment reuse.
	s := spec()
	p, root := setupIpars(t, s, "V")
	q := sqlparser.MustParse("SELECT * FROM IparsData WHERE TIME = 1")
	needed := p.Schema.Names()
	afcs, err := p.Generate(query.ExtractRanges(q.Where), needed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rowsBig, rowsSmall int64
	if _, err := Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs()},
		func(table.Row) error { rowsBig++; return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs(), BlockBytes: 16},
		func(table.Row) error { rowsSmall++; return nil }); err != nil {
		t.Fatal(err)
	}
	if rowsBig != rowsSmall || rowsBig == 0 {
		t.Errorf("block size changed results: %d vs %d", rowsBig, rowsSmall)
	}
}

// TestDirResolverRejectsEscapes is the regression test for the path
// traversal fix: a descriptor file name containing ".." (or an
// absolute path) must not resolve outside the data directory.
func TestDirResolverRejectsEscapes(t *testing.T) {
	r := DirResolver("/data/root")
	for _, bad := range []string{
		"../secret",
		"../../etc/passwd",
		"dir/../../escape",
		"/etc/passwd",
		"",
	} {
		if got, err := r("node0", bad); err == nil {
			t.Errorf("DirResolver accepted %q -> %q", bad, got)
		}
	}
	for file, want := range map[string]string{
		"plain":        filepath.Join("/data/root", "plain"),
		"dir/file":     filepath.Join("/data/root", "dir", "file"),
		"dir/../file":  filepath.Join("/data/root", "file"), // stays inside
		"./dir/./file": filepath.Join("/data/root", "dir", "file"),
	} {
		got, err := r("node0", file)
		if err != nil {
			t.Errorf("DirResolver rejected %q: %v", file, err)
		} else if got != want {
			t.Errorf("DirResolver(%q) = %q, want %q", file, got, want)
		}
	}
}

// TestHandleReuseAcrossAFCs: with the block cache disabled, a run over
// many AFCs of the same files must open each file once, not once per
// chunk (the pre-cache implementation's churn).
func TestHandleReuseAcrossAFCs(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afcs) < 4 {
		t.Fatalf("need several AFCs, got %d", len(afcs))
	}
	distinct := map[string]bool{}
	for _, a := range afcs {
		for _, seg := range a.Segments {
			distinct[seg.Node+"/"+seg.File] = true
		}
	}
	// The shared cachetest.Disk opener counts physical opens; the block
	// cache is disabled so every open is the extractor's own demand.
	disk := &cachetest.Disk{}
	src := cache.New(cache.Config{Disabled: true, OpenFile: disk.Open})
	defer src.Close()
	var rows int64
	_, err = Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs(), Source: src},
		func(table.Row) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("no rows; test is vacuous")
	}
	if got := disk.Opens.Load(); got != int64(len(distinct)) {
		t.Errorf("opened files %d times for %d distinct files across %d AFCs",
			got, len(distinct), len(afcs))
	}
}

// TestCachedRunMatchesUncached runs the same query through the block
// cache (cold, then warm) and without it; rows must be identical and
// the warm pass must read nothing from the filesystem.
func TestCachedRunMatchesUncached(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	sql := "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 5"
	plain, _ := runQuery(t, p, root, sql, false)

	q := sqlparser.MustParse(sql)
	needed := p.Schema.Names()
	afcs, err := p.Generate(query.ExtractRanges(q.Where), needed, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i := p.Schema.Index(name)
		return i, i >= 0
	}, filter.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(cache.Config{BlockBytes: 4096, Readahead: 2})
	defer c.Close()
	opt := Options{Cols: p.Schema.Attrs(), Pred: pred, Source: c}
	collect := func() ([][]float64, Stats) {
		var rows [][]float64
		stats, err := Run(afcs, nodeResolver(root), opt, func(r table.Row) error {
			out := make([]float64, len(r))
			for i := range r {
				out[i] = r[i].AsFloat()
			}
			rows = append(rows, out)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows, stats
	}
	cold, coldStats := collect()
	warm, warmStats := collect()
	assertSameRows(t, "cold-vs-plain", cold, plain)
	assertSameRows(t, "warm-vs-plain", warm, plain)
	// Under the mmap backend a cold pass serves blocks as mapping views
	// instead of copying them through the read path.
	if coldStats.CacheMisses == 0 || coldStats.FSBytesRead+coldStats.MmapBlocksServed == 0 {
		t.Errorf("cold pass did not read: %+v", coldStats)
	}
	if warmStats.FSBytesRead != 0 {
		t.Errorf("warm pass read %d bytes from the filesystem, want 0", warmStats.FSBytesRead)
	}
	if warmStats.CacheMisses != 0 || warmStats.CacheHits == 0 {
		t.Errorf("warm pass not served from cache: %+v", warmStats)
	}
	// Parallel through the same shared cache agrees too.
	opt.Workers = 4
	var rows int64
	pstats, err := RunParallel(afcs, nodeResolver(root), opt, func(table.Row) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rows != int64(len(plain)) {
		t.Errorf("parallel cached rows = %d, want %d", rows, len(plain))
	}
	if pstats.FSBytesRead != 0 {
		t.Errorf("parallel warm pass read %d fs bytes", pstats.FSBytesRead)
	}
}

// TestMmapRefusalFallsBackToPread requests the mmap backend over files
// whose descriptor cannot be mapped (cachetest.Disk's refusal fault):
// every block must still arrive, byte-identical, through the pread
// fallback, with zero blocks served from mappings.
func TestMmapRefusalFallsBackToPread(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	sql := "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 5"
	plain, _ := runQuery(t, p, root, sql, false)

	q := sqlparser.MustParse(sql)
	afcs, err := p.Generate(query.ExtractRanges(q.Where), p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i := p.Schema.Index(name)
		return i, i >= 0
	}, filter.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	disk := &cachetest.Disk{RefuseMmap: true}
	c := cache.New(cache.Config{BlockBytes: 4096, Backend: cache.BackendMmap, OpenFile: disk.Open})
	defer c.Close()
	var rows [][]float64
	stats, err := Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs(), Pred: pred, Source: c},
		func(r table.Row) error {
			out := make([]float64, len(r))
			for i := range r {
				out[i] = r[i].AsFloat()
			}
			rows = append(rows, out)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "mmap-refused-vs-plain", rows, plain)
	if stats.MmapBlocksServed != 0 {
		t.Errorf("refused mappings still served %d blocks", stats.MmapBlocksServed)
	}
	if stats.FSBytesRead == 0 || disk.Reads.Load() == 0 {
		t.Errorf("fallback did not read through pread: %+v (%d physical reads)",
			stats, disk.Reads.Load())
	}
}
