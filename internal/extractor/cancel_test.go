package extractor

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"datavirt/internal/query"
	"datavirt/internal/table"
)

func TestRunContextCancelled(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Cols: p.Schema.Attrs(), BlockBytes: 64}

	// Pre-cancelled context: nothing is extracted.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n int64
	_, err = RunContext(ctx, afcs, nodeResolver(root), opt, func(table.Row) error {
		n++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v", err)
	}
	if n != 0 {
		t.Errorf("pre-cancelled run emitted %d rows", n)
	}

	// Cancel mid-stream from the emit callback: the run stops at the
	// next block boundary and reports ctx.Err().
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	n = 0
	_, err = RunContext(ctx, afcs, nodeResolver(root), opt, func(table.Row) error {
		n++
		if n == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel: err = %v", err)
	}
	if n >= s.IparsTotalRows() {
		t.Errorf("cancelled run still scanned everything (%d rows)", n)
	}
}

// TestRunParallelContextCancelled cancels a parallel extraction
// mid-flight and asserts the run returns ctx.Err() promptly without
// leaking worker goroutines (the acceptance criterion of ISSUE 1).
func TestRunParallelContextCancelled(t *testing.T) {
	s := spec()
	s.TimeSteps, s.GridPoints = 20, 200 // enough AFCs/rows to be mid-flight
	p, root := setupIpars(t, s, "CLUSTER")
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Cols: p.Schema.Attrs(), Workers: 4, BlockBytes: 64}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n int64
	_, err = RunParallelContext(ctx, afcs, nodeResolver(root), opt, func(table.Row) error {
		n++
		if n == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel cancel: err = %v", err)
	}
	// All pool goroutines (workers, feeder, closer) must have exited;
	// allow the scheduler a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, g)
	}
}

func TestRunParallelContextDeadline(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = RunParallelContext(ctx, afcs, nodeResolver(root),
		Options{Cols: p.Schema.Attrs(), Workers: 4}, func(table.Row) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v", err)
	}
}

func TestFilterTimeRecorded(t *testing.T) {
	s := spec()
	p, root := setupIpars(t, s, "CLUSTER")
	afcs, err := p.Generate(query.Ranges{}, p.Schema.Names(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(afcs, nodeResolver(root), Options{Cols: p.Schema.Attrs()},
		func(table.Row) error { time.Sleep(10 * time.Microsecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Delivery slept ≥ 10µs per row, all charged to the filter stage.
	if min := stats.RowsEmitted * 10 * int64(time.Microsecond) / 2; stats.FilterNS < min {
		t.Errorf("FilterNS = %d, want ≥ %d", stats.FilterNS, min)
	}
}
