package extractor

import (
	"os"
	"path/filepath"
	"testing"

	"datavirt/internal/afc"
	"datavirt/internal/schema"
	"datavirt/internal/table"
)

// allKindsAFC builds a one-segment AFC over a hand-written file holding
// rows of every kind, in the requested byte order.
func allKindsAFC(t *testing.T, dir string, big bool, rows int64) (afc.AFC, []schema.Attribute) {
	t.Helper()
	attrs := []schema.Attribute{
		{Name: "C", Kind: schema.Char},
		{Name: "S", Kind: schema.Short},
		{Name: "I", Kind: schema.Int},
		{Name: "L", Kind: schema.Long},
		{Name: "F", Kind: schema.Float},
		{Name: "D", Kind: schema.Double},
	}
	var buf []byte
	rowBytes := int64(0)
	for _, a := range attrs {
		rowBytes += int64(a.Kind.Size())
	}
	for r := int64(0); r < rows; r++ {
		for k, a := range attrs {
			v := schema.KindValue(a.Kind, float64(r*10+int64(k)))
			buf = schema.EncodeValueOrder(buf, v, big)
		}
	}
	name := "le.bin"
	if big {
		name = "be.bin"
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	a := afc.AFC{NumRows: rows, Node: "n"}
	seg := afc.Segment{
		Node: "n", File: name, Offset: 0,
		RowStride: rowBytes, RowBytes: rowBytes, BigEndian: big,
	}
	off := int64(0)
	for _, at := range attrs {
		seg.Attrs = append(seg.Attrs, afc.SegAttr{Name: at.Name, Kind: at.Kind, Off: off})
		off += int64(at.Kind.Size())
	}
	a.Segments = []afc.Segment{seg}
	return a, attrs
}

// TestFillColumnAllKindsBothOrders decodes every primitive kind in both
// byte orders through the block extractor.
func TestFillColumnAllKindsBothOrders(t *testing.T) {
	for _, big := range []bool{false, true} {
		dir := t.TempDir()
		a, attrs := allKindsAFC(t, dir, big, 7)
		var got []table.Row
		_, err := Run([]afc.AFC{a}, DirResolver(dir), Options{Cols: attrs},
			func(r table.Row) error {
				got = append(got, append(table.Row(nil), r...))
				return nil
			})
		if err != nil {
			t.Fatalf("big=%v: %v", big, err)
		}
		if len(got) != 7 {
			t.Fatalf("big=%v: rows = %d", big, len(got))
		}
		for r, row := range got {
			for k := range attrs {
				want := float64(r*10 + k)
				if row[k].AsFloat() != want {
					t.Fatalf("big=%v row %d col %s = %v, want %g", big, r, attrs[k].Name, row[k], want)
				}
			}
		}
	}
}

// TestDefaultWorkers exercises the automatic pool sizing path.
func TestDefaultWorkers(t *testing.T) {
	if n := defaultWorkers(); n < 1 || n > 8 {
		t.Errorf("defaultWorkers = %d", n)
	}
	dir := t.TempDir()
	var afcs []afc.AFC
	var attrs []schema.Attribute
	for i := 0; i < 4; i++ {
		a, at := allKindsAFC(t, dir, false, 3)
		afcs = append(afcs, a)
		attrs = at
	}
	var n int64
	// Workers: 0 → defaultWorkers (may collapse to sequential on 1 CPU).
	_, err := RunParallel(afcs, DirResolver(dir), Options{Cols: attrs, Workers: 0},
		func(table.Row) error { n++; return nil })
	if err != nil || n != 12 {
		t.Errorf("RunParallel default workers: %d rows, %v", n, err)
	}
}

// TestRowDimFloatKind covers the non-integral row-axis synthesis branch.
func TestRowDimFloatKind(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f"), make([]byte, 40), 0o644); err != nil {
		t.Fatal(err)
	}
	a := afc.AFC{
		NumRows: 5,
		Node:    "n",
		Segments: []afc.Segment{{
			Node: "n", File: "f", RowStride: 8, RowBytes: 8,
			Attrs: []afc.SegAttr{{Name: "P", Kind: schema.Double, Off: 0}},
		}},
		RowDims: []afc.RowDim{{Name: "T", Kind: schema.Float, Lo: 10, Step: 2}},
	}
	cols := []schema.Attribute{{Name: "T", Kind: schema.Float}, {Name: "P", Kind: schema.Double}}
	var ts []float64
	_, err := Run([]afc.AFC{a}, DirResolver(dir), Options{Cols: cols},
		func(r table.Row) error {
			ts = append(ts, r[0].AsFloat())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 12, 14, 16, 18}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("row dims = %v", ts)
		}
	}
}
