package extractor

import (
	"context"
	"sync"

	"datavirt/internal/afc"
	"datavirt/internal/query"
)

// RunAggregateContext extracts the AFCs sequentially, folding every row
// that survives the residual predicate into partial aggregates for the
// plan — no rows are materialized or emitted. The returned state holds
// un-finalized partials; the caller finalizes locally or merges states
// from several legs first. The plan must be bound against the same
// working layout as opt.Cols.
func RunAggregateContext(ctx context.Context, afcs []afc.AFC, resolver Resolver, opt Options, plan *query.AggPlan) (*query.AggState, Stats, error) {
	src, done := runSource(opt)
	defer done()
	var stats Stats
	state := query.NewAggState(plan)
	pool := newSegPool(src, resolver)
	defer pool.release()
	bb := &blockBuf{}
	for i := range afcs {
		if err := extractOne(ctx, &afcs[i], pool, opt, bb, &stats, state, nil); err != nil {
			return state, stats, err
		}
	}
	stats.AggPushedQueries = 1
	stats.AggPartialGroups = int64(state.Groups())
	return state, stats, nil
}

// RunAggregateParallelContext is RunAggregateContext with a bounded
// worker pool: each worker folds its AFCs into a private AggState, and
// the states merge at the end. Aggregation is exact and commutative
// (see internal/query), so the result is identical to the sequential
// run regardless of AFC scheduling.
func RunAggregateParallelContext(ctx context.Context, afcs []afc.AFC, resolver Resolver, opt Options, plan *query.AggPlan) (*query.AggState, Stats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(afcs) {
		workers = len(afcs)
	}
	if workers <= 1 {
		return RunAggregateContext(ctx, afcs, resolver, opt, plan)
	}

	src, srcDone := runSource(opt)
	defer srcDone()

	type result struct {
		state *query.AggState
		stats Stats
	}
	work := make(chan *afc.AFC)
	results := make(chan result, workers)
	done := make(chan struct{})
	var once sync.Once
	var workerErr error
	fail := func(err error) {
		once.Do(func() {
			workerErr = err
			close(done)
		})
	}
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bb := &blockBuf{}
			pool := newSegPool(src, resolver)
			defer pool.release()
			r := result{state: query.NewAggState(plan)}
			for a := range work {
				if err := extractOne(ctx, a, pool, opt, bb, &r.stats, r.state, nil); err != nil {
					fail(err)
					return
				}
			}
			select {
			case results <- r:
			case <-done:
			}
		}()
	}

	// Feeder: stops early when any worker fails or ctx is cancelled.
	go func() {
		defer close(work)
		for i := range afcs {
			select {
			case work <- &afcs[i]:
			case <-done:
				return
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
		}
	}()

	go func() {
		wg.Wait()
		close(results)
	}()

	state := query.NewAggState(plan)
	var stats Stats
	for r := range results {
		stats.Add(r.stats)
		state.Merge(r.state)
	}
	if workerErr != nil {
		return state, stats, workerErr
	}
	if err := ctx.Err(); err != nil {
		return state, stats, err
	}
	stats.AggPushedQueries = 1
	stats.AggPartialGroups = int64(state.Groups())
	return state, stats, nil
}
