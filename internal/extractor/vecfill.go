package extractor

import (
	"encoding/binary"
	"math"

	"datavirt/internal/afc"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/table"
)

// fillBatch decodes one block into the reusable column-vector batch:
// every working column's F vector gets the AsFloat value (the predicate
// comparison currency, bit-identical to the scalar path), and integral
// columns additionally get their raw values in I (exact integers for
// group keys and aggregate kernels — float64 would corrupt Longs beyond
// 2^53).
func (bb *blockBuf) fillBatch(a *afc.AFC, sources []colSource, spans [][]byte, base int64, n int) {
	bb.batch.Reset(len(sources), n)
	for ci := range sources {
		src := &sources[ci]
		c := &bb.batch.Cols[ci]
		switch {
		case src.seg >= 0:
			seg := &a.Segments[src.seg]
			c.Kind = src.kind
			var ints []int64
			if src.kind.Integral() {
				ints = bb.batch.IntCol(ci)
			}
			if seg.BigEndian {
				fillVecBE(c.F[:n], ints, src.kind, spans[src.seg], src.attrOff, seg.RowStride)
			} else {
				fillVec(c.F[:n], ints, src.kind, spans[src.seg], src.attrOff, seg.RowStride)
			}
		case src.rowDim != nil:
			rd := src.rowDim
			c.Kind = rd.Kind
			f := c.F[:n]
			if rd.Kind.Integral() {
				ints := bb.batch.IntCol(ci)
				for r := 0; r < n; r++ {
					v := rd.ValueAt(base + int64(r))
					ints[r] = v
					f[r] = float64(v)
				}
			} else {
				for r := 0; r < n; r++ {
					f[r] = float64(rd.ValueAt(base + int64(r)))
				}
			}
		default:
			v := src.implicit
			c.Kind = v.Kind
			f := c.F[:n]
			af := v.AsFloat()
			for r := 0; r < n; r++ {
				f[r] = af
			}
			if v.Kind.Integral() {
				ints := bb.batch.IntCol(ci)
				for r := 0; r < n; r++ {
					ints[r] = v.Int
				}
			}
		}
	}
}

// gatherRows materializes the selected batch rows into the reusable row
// matrix (working-layout rows, compacted to len(sel)).
func gatherRows(rows []table.Row, b *query.Batch, sel []int32, cols []schema.Attribute) {
	for ci := range cols {
		kind := cols[ci].Kind
		c := &b.Cols[ci]
		if kind.Integral() {
			ints := c.I
			for j, r := range sel {
				rows[j][ci] = schema.Value{Kind: kind, Int: ints[r]}
			}
		} else {
			f := c.F
			for j, r := range sel {
				rows[j][ci] = schema.Value{Kind: kind, Float: f[r]}
			}
		}
	}
}

// fillVec decodes one little-endian attribute column into float (and,
// for integral kinds, integer) vectors with a kind-specialized tight
// loop — the columnar counterpart of fillColumn.
func fillVec(f []float64, ints []int64, kind schema.Kind, buf []byte, off, stride int64) {
	p := off
	switch kind {
	case schema.Char:
		for r := range f {
			v := int64(int8(buf[p]))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Short:
		for r := range f {
			v := int64(int16(binary.LittleEndian.Uint16(buf[p : p+2])))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Int:
		for r := range f {
			v := int64(int32(binary.LittleEndian.Uint32(buf[p : p+4])))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Long:
		for r := range f {
			v := int64(binary.LittleEndian.Uint64(buf[p : p+8]))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Float:
		for r := range f {
			f[r] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[p : p+4])))
			p += stride
		}
	case schema.Double:
		for r := range f {
			f[r] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p : p+8]))
			p += stride
		}
	}
}

// fillVecBE is fillVec for big-endian segments (BYTEORDER { BIG }).
func fillVecBE(f []float64, ints []int64, kind schema.Kind, buf []byte, off, stride int64) {
	p := off
	switch kind {
	case schema.Char:
		for r := range f {
			v := int64(int8(buf[p]))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Short:
		for r := range f {
			v := int64(int16(binary.BigEndian.Uint16(buf[p : p+2])))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Int:
		for r := range f {
			v := int64(int32(binary.BigEndian.Uint32(buf[p : p+4])))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Long:
		for r := range f {
			v := int64(binary.BigEndian.Uint64(buf[p : p+8]))
			ints[r], f[r] = v, float64(v)
			p += stride
		}
	case schema.Float:
		for r := range f {
			f[r] = float64(math.Float32frombits(binary.BigEndian.Uint32(buf[p : p+4])))
			p += stride
		}
	case schema.Double:
		for r := range f {
			f[r] = math.Float64frombits(binary.BigEndian.Uint64(buf[p : p+8]))
			p += stride
		}
	}
}
