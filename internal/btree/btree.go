// Package btree implements a disk-backed B+-tree over (float64 key,
// uint64 tid) entries, the secondary-index substrate of the rowstore
// baseline (the role PostgreSQL's nbtree plays in the paper's Figure 6
// comparison). Duplicate keys are allowed; entries are ordered by
// (key, tid). Leaves are chained for range scans. Trees support both
// one-shot bulk loading (CREATE INDEX over sorted input) and incremental
// inserts with node splits.
package btree

import (
	"encoding/binary"
	"fmt"
	"math"

	"datavirt/internal/pagefile"
)

const (
	pageMeta     = 0
	typeInternal = 1
	typeLeaf     = 2

	metaMagic = 0xB7EE0001

	// Leaf layout: type(1) count(2) pad(1) next(4) | entries…
	leafHdr   = 8
	leafEntry = 16 // key float64 + tid uint64
	// Internal layout: type(1) count(2) pad(5) | (minKey float64, child uint32)…
	intHdr   = 8
	intEntry = 12

	maxLeaf = (pagefile.PageSize - leafHdr) / leafEntry
	maxInt  = (pagefile.PageSize - intHdr) / intEntry
)

// Entry is one index entry.
type Entry struct {
	Key float64
	TID uint64
}

// Tree is an open B+-tree.
type Tree struct {
	pf     *pagefile.File
	root   uint32
	height uint32 // 1 = root is a leaf
	count  uint64
}

// Create initializes a new tree at path.
func Create(path string, poolPages int) (*Tree, error) {
	pf, err := pagefile.Create(path, poolPages)
	if err != nil {
		return nil, err
	}
	t := &Tree{pf: pf}
	// Page 0: meta. Page 1: empty leaf root.
	if _, _, err := pf.Alloc(); err != nil {
		return nil, err
	}
	pf.Unpin(pageMeta)
	rootID, rootPg, err := pf.Alloc()
	if err != nil {
		return nil, err
	}
	initLeaf(rootPg)
	pf.MarkDirty(rootID)
	pf.Unpin(rootID)
	t.root, t.height = rootID, 1
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree.
func Open(path string, poolPages int) (*Tree, error) {
	pf, err := pagefile.Open(path, poolPages)
	if err != nil {
		return nil, err
	}
	t := &Tree{pf: pf}
	pg, err := pf.Get(pageMeta)
	if err != nil {
		pf.Close()
		return nil, err
	}
	defer pf.Unpin(pageMeta)
	if binary.LittleEndian.Uint32(pg[0:]) != metaMagic {
		pf.Close()
		return nil, fmt.Errorf("btree: %s: bad magic", path)
	}
	t.root = binary.LittleEndian.Uint32(pg[4:])
	t.height = binary.LittleEndian.Uint32(pg[8:])
	t.count = binary.LittleEndian.Uint64(pg[12:])
	if t.root == 0 || t.height == 0 {
		pf.Close()
		return nil, fmt.Errorf("btree: %s: corrupt meta", path)
	}
	return t, nil
}

func (t *Tree) writeMeta() error {
	pg, err := t.pf.Get(pageMeta)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(pg[0:], metaMagic)
	binary.LittleEndian.PutUint32(pg[4:], t.root)
	binary.LittleEndian.PutUint32(pg[8:], t.height)
	binary.LittleEndian.PutUint64(pg[12:], t.count)
	t.pf.MarkDirty(pageMeta)
	t.pf.Unpin(pageMeta)
	return nil
}

// Close persists the meta page and closes the backing file.
func (t *Tree) Close() error {
	if err := t.writeMeta(); err != nil {
		t.pf.Close()
		return err
	}
	return t.pf.Close()
}

// Len returns the number of entries.
func (t *Tree) Len() uint64 { return t.count }

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() uint32 { return t.height }

// SizeBytes returns the on-disk size of the index.
func (t *Tree) SizeBytes() int64 { return t.pf.SizeBytes() }

// --- page accessors ---

func initLeaf(pg *pagefile.Page) {
	for i := range pg[:leafHdr] {
		pg[i] = 0
	}
	pg[0] = typeLeaf
}

func initInternal(pg *pagefile.Page) {
	for i := range pg[:intHdr] {
		pg[i] = 0
	}
	pg[0] = typeInternal
}

func pageType(pg *pagefile.Page) byte { return pg[0] }

func pageCount(pg *pagefile.Page) int {
	return int(binary.LittleEndian.Uint16(pg[1:]))
}

func setPageCount(pg *pagefile.Page, n int) {
	binary.LittleEndian.PutUint16(pg[1:], uint16(n))
}

func leafNext(pg *pagefile.Page) uint32 {
	return binary.LittleEndian.Uint32(pg[4:])
}

func setLeafNext(pg *pagefile.Page, id uint32) {
	binary.LittleEndian.PutUint32(pg[4:], id)
}

func leafEntryAt(pg *pagefile.Page, i int) Entry {
	off := leafHdr + i*leafEntry
	return Entry{
		Key: math.Float64frombits(binary.LittleEndian.Uint64(pg[off:])),
		TID: binary.LittleEndian.Uint64(pg[off+8:]),
	}
}

func setLeafEntry(pg *pagefile.Page, i int, e Entry) {
	off := leafHdr + i*leafEntry
	binary.LittleEndian.PutUint64(pg[off:], math.Float64bits(e.Key))
	binary.LittleEndian.PutUint64(pg[off+8:], e.TID)
}

func intPairAt(pg *pagefile.Page, i int) (float64, uint32) {
	off := intHdr + i*intEntry
	return math.Float64frombits(binary.LittleEndian.Uint64(pg[off:])),
		binary.LittleEndian.Uint32(pg[off+8:])
}

func setIntPair(pg *pagefile.Page, i int, key float64, child uint32) {
	off := intHdr + i*intEntry
	binary.LittleEndian.PutUint64(pg[off:], math.Float64bits(key))
	binary.LittleEndian.PutUint32(pg[off+8:], child)
}

// less orders entries by (key, tid).
func (e Entry) less(o Entry) bool {
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.TID < o.TID
}

// --- search ---

// findLeaf descends to the leaf that may contain e, returning the page
// id and the path of internal page ids (for splits).
func (t *Tree) findLeaf(e Entry) (uint32, []uint32, error) {
	id := t.root
	var path []uint32
	for level := t.height; level > 1; level-- {
		pg, err := t.pf.Get(id)
		if err != nil {
			return 0, nil, err
		}
		n := pageCount(pg)
		// Last child whose minKey is strictly below the key (first child
		// otherwise): with duplicate keys the leftmost leaf that can hold
		// the key may end exactly at it, and scans must start there.
		child := uint32(0)
		for i := 0; i < n; i++ {
			k, c := intPairAt(pg, i)
			if i == 0 || k < e.Key {
				child = c
			} else {
				break
			}
		}
		t.pf.Unpin(id)
		path = append(path, id)
		id = child
	}
	return id, path, nil
}

// Insert adds an entry (duplicates by TID allowed).
func (t *Tree) Insert(key float64, tid uint64) error {
	e := Entry{Key: key, TID: tid}
	leafID, path, err := t.findLeaf(e)
	if err != nil {
		return err
	}
	promo, newChild, err := t.insertLeaf(leafID, e)
	if err != nil {
		return err
	}
	// Propagate splits up the path.
	for i := len(path) - 1; i >= 0 && newChild != 0; i-- {
		promo, newChild, err = t.insertInternal(path[i], promo, newChild)
		if err != nil {
			return err
		}
	}
	if newChild != 0 {
		// Root split: new root with two children.
		oldRoot := t.root
		var oldMin float64
		if t.height == 1 {
			pg, err := t.pf.Get(oldRoot)
			if err != nil {
				return err
			}
			oldMin = leafEntryAt(pg, 0).Key
			t.pf.Unpin(oldRoot)
		} else {
			pg, err := t.pf.Get(oldRoot)
			if err != nil {
				return err
			}
			oldMin, _ = intPairAt(pg, 0)
			t.pf.Unpin(oldRoot)
		}
		rootID, rootPg, err := t.pf.Alloc()
		if err != nil {
			return err
		}
		initInternal(rootPg)
		setIntPair(rootPg, 0, oldMin, oldRoot)
		setIntPair(rootPg, 1, promo, newChild)
		setPageCount(rootPg, 2)
		t.pf.MarkDirty(rootID)
		t.pf.Unpin(rootID)
		t.root = rootID
		t.height++
	}
	t.count++
	return nil
}

// insertLeaf inserts e into the leaf; on split it returns the new right
// sibling's minimum key and page id.
func (t *Tree) insertLeaf(id uint32, e Entry) (float64, uint32, error) {
	pg, err := t.pf.Get(id)
	if err != nil {
		return 0, 0, err
	}
	n := pageCount(pg)
	// Binary search for insert position.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if leafEntryAt(pg, mid).less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if n < maxLeaf {
		for i := n; i > pos; i-- {
			setLeafEntry(pg, i, leafEntryAt(pg, i-1))
		}
		setLeafEntry(pg, pos, e)
		setPageCount(pg, n+1)
		t.pf.MarkDirty(id)
		t.pf.Unpin(id)
		return 0, 0, nil
	}
	// Split: move the upper half to a new leaf.
	rightID, rightPg, err := t.pf.Alloc()
	if err != nil {
		t.pf.Unpin(id)
		return 0, 0, err
	}
	initLeaf(rightPg)
	half := n / 2
	for i := half; i < n; i++ {
		setLeafEntry(rightPg, i-half, leafEntryAt(pg, i))
	}
	setPageCount(rightPg, n-half)
	setLeafNext(rightPg, leafNext(pg))
	setPageCount(pg, half)
	setLeafNext(pg, rightID)
	// Insert into the proper half.
	if pos <= half {
		t.pf.MarkDirty(id)
		t.pf.MarkDirty(rightID)
		rightMin := leafEntryAt(rightPg, 0).Key
		t.pf.Unpin(rightID)
		t.pf.Unpin(id)
		if _, _, err := t.insertLeaf(id, e); err != nil {
			return 0, 0, err
		}
		return rightMin, rightID, nil
	}
	t.pf.MarkDirty(id)
	t.pf.MarkDirty(rightID)
	t.pf.Unpin(rightID)
	t.pf.Unpin(id)
	if _, _, err := t.insertLeaf(rightID, e); err != nil {
		return 0, 0, err
	}
	// Right page's minimum may have changed by the insert.
	rpg, err := t.pf.Get(rightID)
	if err != nil {
		return 0, 0, err
	}
	rightMin := leafEntryAt(rpg, 0).Key
	t.pf.Unpin(rightID)
	return rightMin, rightID, nil
}

// insertInternal adds (minKey, child) into an internal page; on split it
// returns the promotion for the next level up.
func (t *Tree) insertInternal(id uint32, key float64, child uint32) (float64, uint32, error) {
	pg, err := t.pf.Get(id)
	if err != nil {
		return 0, 0, err
	}
	n := pageCount(pg)
	pos := n
	for i := 0; i < n; i++ {
		if k, _ := intPairAt(pg, i); key < k {
			pos = i
			break
		}
	}
	if n < maxInt {
		for i := n; i > pos; i-- {
			k, c := intPairAt(pg, i-1)
			setIntPair(pg, i, k, c)
		}
		setIntPair(pg, pos, key, child)
		setPageCount(pg, n+1)
		t.pf.MarkDirty(id)
		t.pf.Unpin(id)
		return 0, 0, nil
	}
	// Split internal node.
	rightID, rightPg, err := t.pf.Alloc()
	if err != nil {
		t.pf.Unpin(id)
		return 0, 0, err
	}
	initInternal(rightPg)
	half := n / 2
	for i := half; i < n; i++ {
		k, c := intPairAt(pg, i)
		setIntPair(rightPg, i-half, k, c)
	}
	setPageCount(rightPg, n-half)
	setPageCount(pg, half)
	t.pf.MarkDirty(id)
	t.pf.MarkDirty(rightID)
	rightMin, _ := intPairAt(rightPg, 0)
	t.pf.Unpin(rightID)
	t.pf.Unpin(id)
	target := id
	if key >= rightMin {
		target = rightID
	}
	if _, _, err := t.insertInternal(target, key, child); err != nil {
		return 0, 0, err
	}
	// Minimum of the right sibling may have shifted.
	rpg, err := t.pf.Get(rightID)
	if err != nil {
		return 0, 0, err
	}
	rightMin, _ = intPairAt(rpg, 0)
	t.pf.Unpin(rightID)
	return rightMin, rightID, nil
}

// BulkLoad replaces the tree's contents with the given entries, which
// must be sorted by (key, tid). It builds leaves left to right and then
// each internal level — the CREATE INDEX path.
func (t *Tree) BulkLoad(entries []Entry) error {
	for i := 1; i < len(entries); i++ {
		if entries[i].less(entries[i-1]) {
			return fmt.Errorf("btree: BulkLoad input not sorted at %d", i)
		}
	}
	const fill = maxLeaf * 9 / 10 // leave split slack, like a fillfactor
	type childRef struct {
		min  float64
		page uint32
	}
	var level []childRef

	// Leaves.
	var prevLeaf uint32
	for i := 0; i < len(entries) || i == 0; {
		id, pg, err := t.pf.Alloc()
		if err != nil {
			return err
		}
		initLeaf(pg)
		n := 0
		for ; n < fill && i+n < len(entries); n++ {
			setLeafEntry(pg, n, entries[i+n])
		}
		setPageCount(pg, n)
		minKey := math.Inf(-1)
		if n > 0 {
			minKey = entries[i].Key
		}
		level = append(level, childRef{min: minKey, page: id})
		t.pf.MarkDirty(id)
		t.pf.Unpin(id)
		if prevLeaf != 0 {
			ppg, err := t.pf.Get(prevLeaf)
			if err != nil {
				return err
			}
			setLeafNext(ppg, id)
			t.pf.MarkDirty(prevLeaf)
			t.pf.Unpin(prevLeaf)
		}
		prevLeaf = id
		i += n
		if n == 0 {
			break
		}
	}
	height := uint32(1)
	const intFill = maxInt * 9 / 10
	for len(level) > 1 {
		var next []childRef
		for i := 0; i < len(level); {
			id, pg, err := t.pf.Alloc()
			if err != nil {
				return err
			}
			initInternal(pg)
			n := 0
			for ; n < intFill && i+n < len(level); n++ {
				setIntPair(pg, n, level[i+n].min, level[i+n].page)
			}
			setPageCount(pg, n)
			next = append(next, childRef{min: level[i].min, page: id})
			t.pf.MarkDirty(id)
			t.pf.Unpin(id)
			i += n
		}
		level = next
		height++
	}
	t.root = level[0].page
	t.height = height
	t.count = uint64(len(entries))
	return t.writeMeta()
}

// Scan visits entries with lo <= key <= hi in ascending key order (tid
// order within equal keys is unspecified after incremental inserts);
// returning false stops early.
func (t *Tree) Scan(lo, hi float64, fn func(Entry) bool) error {
	id, _, err := t.findLeaf(Entry{Key: lo, TID: 0})
	if err != nil {
		return err
	}
	for id != 0 {
		pg, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		n := pageCount(pg)
		if pageType(pg) != typeLeaf {
			t.pf.Unpin(id)
			return fmt.Errorf("btree: scan reached non-leaf page %d", id)
		}
		for i := 0; i < n; i++ {
			e := leafEntryAt(pg, i)
			if e.Key < lo {
				continue
			}
			if e.Key > hi {
				t.pf.Unpin(id)
				return nil
			}
			if !fn(e) {
				t.pf.Unpin(id)
				return nil
			}
		}
		next := leafNext(pg)
		t.pf.Unpin(id)
		id = next
	}
	return nil
}

// ScanAll collects the matching entries of Scan.
func (t *Tree) ScanAll(lo, hi float64) ([]Entry, error) {
	var out []Entry
	err := t.Scan(lo, hi, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}
