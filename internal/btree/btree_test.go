package btree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Create(filepath.Join(t.TempDir(), "ix.bt"), 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestInsertAndScanSmall(t *testing.T) {
	tr := newTree(t)
	vals := []float64{5, 1, 9, 3, 7, 3, 5}
	for i, v := range vals {
		if err := tr.Insert(v, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != uint64(len(vals)) {
		t.Errorf("Len = %d", tr.Len())
	}
	got, err := tr.ScanAll(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // 5,3,7,3,5
		t.Fatalf("scan [3,7] = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Errorf("scan not key-ordered: %v", got)
		}
	}
	// Empty range.
	if got, _ := tr.ScanAll(100, 200); len(got) != 0 {
		t.Errorf("empty range returned %v", got)
	}
	// Early stop.
	n := 0
	tr.Scan(0, 10, func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestSplitsAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.bt")
	tr, err := Create(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	const N = 20000
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, N)
	for i := range keys {
		keys[i] = float64(rng.Intn(5000))
		if err := tr.Insert(keys[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d after %d inserts", tr.Height(), N)
	}
	if tr.Len() != N {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	tr2, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != N || tr2.Height() != tr.Height() {
		t.Errorf("reopened: len=%d height=%d", tr2.Len(), tr2.Height())
	}
	// Spot-check a range against brute force.
	lo, hi := 100.0, 160.0
	want := 0
	for _, k := range keys {
		if k >= lo && k <= hi {
			want++
		}
	}
	got, err := tr2.ScanAll(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Errorf("range [%g,%g]: %d entries, want %d", lo, hi, len(got), want)
	}
}

func TestBulkLoad(t *testing.T) {
	tr := newTree(t)
	const N = 50000
	entries := make([]Entry, N)
	for i := range entries {
		entries[i] = Entry{Key: float64(i / 3), TID: uint64(i)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != N {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d", tr.Height())
	}
	got, err := tr.ScanAll(100, 102)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Errorf("scan = %d entries, want 9", len(got))
	}
	// Full scan is everything in order.
	var prev Entry
	n := 0
	tr.Scan(0, float64(N), func(e Entry) bool {
		if n > 0 && e.less(prev) {
			t.Fatalf("out of order at %d: %v after %v", n, e, prev)
		}
		prev = e
		n++
		return true
	})
	if n != N {
		t.Errorf("full scan = %d", n)
	}
	// Unsorted input rejected.
	if err := tr.BulkLoad([]Entry{{Key: 2}, {Key: 1}}); err == nil {
		t.Error("unsorted bulk load accepted")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := newTree(t)
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.ScanAll(-1e18, 1e18); len(got) != 0 {
		t.Errorf("empty tree scan = %v", got)
	}
	// Insert after empty bulk load works.
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.ScanAll(0, 2); len(got) != 1 {
		t.Errorf("scan after insert = %v", got)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.bt"), 16); err == nil {
		t.Error("missing file accepted")
	}
}

// Property: after random inserts, every range scan matches a sorted
// reference slice (the B+-tree ≡ sorted-map invariant).
func TestScanMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		tr, err := Create(filepath.Join(dir, "ix.bt"), 32)
		if err != nil {
			return false
		}
		defer tr.Close()
		n := rng.Intn(3000) + 1
		ref := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			k := float64(rng.Intn(200))
			if err := tr.Insert(k, uint64(i)); err != nil {
				return false
			}
			ref = append(ref, Entry{Key: k, TID: uint64(i)})
		}
		sort.Slice(ref, func(a, b int) bool { return ref[a].less(ref[b]) })
		for trial := 0; trial < 5; trial++ {
			lo := float64(rng.Intn(220) - 10)
			hi := lo + float64(rng.Intn(100))
			got, err := tr.ScanAll(lo, hi)
			if err != nil {
				return false
			}
			want := map[uint64]bool{}
			count := 0
			for _, e := range ref {
				if e.Key >= lo && e.Key <= hi {
					want[e.TID] = true
					count++
				}
			}
			if len(got) != count {
				t.Logf("seed %d: range [%g,%g] got %d want %d", seed, lo, hi, len(got), count)
				return false
			}
			for _, e := range got {
				if !want[e.TID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	tr := newTree(t)
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: float64(i), TID: uint64(i)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tr.SizeBytes() < 10000*16 {
		t.Errorf("SizeBytes = %d, implausibly small", tr.SizeBytes())
	}
}
