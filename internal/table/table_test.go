package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datavirt/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.MustNew("T", []schema.Attribute{
		{Name: "REL", Kind: schema.Short},
		{Name: "TIME", Kind: schema.Int},
		{Name: "SOIL", Kind: schema.Float},
		{Name: "P", Kind: schema.Double},
	})
}

func TestCodecBasics(t *testing.T) {
	c := NewCodec(testSchema())
	if c.RowBytes() != 2+4+4+8 {
		t.Fatalf("RowBytes = %d", c.RowBytes())
	}
	if c.NumCols() != 4 {
		t.Fatalf("NumCols = %d", c.NumCols())
	}
	row := Row{
		{Kind: schema.Short, Int: 3}, schema.IntValue(1042),
		schema.FloatValue(0.75), schema.DoubleValue(-1.5),
	}
	b, err := c.Append(nil, row)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if len(b) != c.RowBytes() {
		t.Fatalf("encoded %d bytes", len(b))
	}
	got, rest, err := c.Decode(nil, b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("Decode: %v rest=%d", err, len(rest))
	}
	if !RowsEqual(row, got) {
		t.Errorf("round trip: %v -> %v", row, got)
	}
}

func TestCodecErrors(t *testing.T) {
	c := NewCodec(testSchema())
	if _, err := c.Append(nil, Row{schema.IntValue(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, _, err := c.Decode(nil, make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := c.DecodeAll(make([]byte, c.RowBytes()+1)); err == nil {
		t.Error("ragged buffer accepted")
	}
}

func TestCodecCoercion(t *testing.T) {
	c := NewCodec(testSchema())
	// Values with mismatched kinds are coerced to the schema.
	row := Row{
		schema.DoubleValue(3), schema.DoubleValue(1042),
		schema.IntValue(1), schema.IntValue(-2),
	}
	b, err := c.Append(nil, row)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, _, _ := c.Decode(nil, b)
	if got[0].Kind != schema.Short || got[0].Int != 3 {
		t.Errorf("coerced[0] = %+v", got[0])
	}
	if got[2].Kind != schema.Float || got[2].Float != 1 {
		t.Errorf("coerced[2] = %+v", got[2])
	}
}

func TestDecodeAll(t *testing.T) {
	c := NewCodec(testSchema())
	var buf []byte
	var want []Row
	for i := 0; i < 10; i++ {
		row := Row{
			{Kind: schema.Short, Int: int64(i)}, schema.IntValue(int64(i * 100)),
			schema.FloatValue(float64(i) / 2), schema.DoubleValue(float64(-i)),
		}
		want = append(want, row)
		var err error
		buf, err = c.Append(buf, row)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.DecodeAll(buf)
	if err != nil || len(got) != 10 {
		t.Fatalf("DecodeAll: %d rows, %v", len(got), err)
	}
	for i := range want {
		if !RowsEqual(want[i], got[i]) {
			t.Errorf("row %d: %v != %v", i, want[i], got[i])
		}
	}
}

func TestFormatRow(t *testing.T) {
	row := Row{schema.IntValue(7), schema.DoubleValue(0.5)}
	if got := FormatRow(row); got != "7\t0.5" {
		t.Errorf("FormatRow = %q", got)
	}
}

func TestRowsEqual(t *testing.T) {
	a := Row{schema.IntValue(1), schema.FloatValue(2)}
	b := Row{schema.DoubleValue(1), schema.IntValue(2)} // same numeric values
	if !RowsEqual(a, b) {
		t.Error("numerically equal rows reported unequal")
	}
	if RowsEqual(a, Row{schema.IntValue(1)}) {
		t.Error("different arity reported equal")
	}
	if RowsEqual(a, Row{schema.IntValue(1), schema.FloatValue(3)}) {
		t.Error("different values reported equal")
	}
}

// Property: encode-then-decode is identity for random rows.
func TestCodecRoundTripQuick(t *testing.T) {
	c := NewCodec(testSchema())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := []byte{}
		var rows []Row
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			row := Row{
				{Kind: schema.Short, Int: int64(int16(rng.Int()))},
				schema.IntValue(int64(int32(rng.Int()))),
				schema.FloatValue(float64(float32(rng.NormFloat64()))),
				schema.DoubleValue(rng.NormFloat64()),
			}
			rows = append(rows, row)
			var err error
			buf, err = c.Append(buf, row)
			if err != nil {
				return false
			}
		}
		got, err := c.DecodeAll(buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range rows {
			if !RowsEqual(rows[i], got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
