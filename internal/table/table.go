// Package table defines the virtual-table row representation shared by
// the extractor, the STORM services, and the cluster wire protocol, plus
// a schema-directed fixed-width binary codec for rows.
package table

import (
	"fmt"

	"datavirt/internal/schema"
)

// Row is one row of a virtual table: values in schema order.
type Row = []schema.Value

// Codec encodes and decodes rows of a fixed schema. Rows travel as the
// concatenation of their values' little-endian encodings; both sides of
// a connection know the schema, so no per-row framing is needed.
type Codec struct {
	kinds    []schema.Kind
	rowBytes int
}

// NewCodec builds a codec for the given schema.
func NewCodec(s *schema.Schema) *Codec {
	kinds := make([]schema.Kind, s.NumAttrs())
	total := 0
	for i := 0; i < s.NumAttrs(); i++ {
		kinds[i] = s.Attr(i).Kind
		total += kinds[i].Size()
	}
	return &Codec{kinds: kinds, rowBytes: total}
}

// RowBytes returns the encoded size of one row.
func (c *Codec) RowBytes() int { return c.rowBytes }

// NumCols returns the number of columns.
func (c *Codec) NumCols() int { return len(c.kinds) }

// Append encodes row onto dst and returns the extended slice. The row
// must match the codec's schema arity; kinds are coerced to the schema.
func (c *Codec) Append(dst []byte, row Row) ([]byte, error) {
	if len(row) != len(c.kinds) {
		return dst, fmt.Errorf("table: row has %d values, schema has %d columns", len(row), len(c.kinds))
	}
	for i, v := range row {
		if v.Kind != c.kinds[i] {
			// Coerce: keep the numeric value, adopt the schema kind.
			v = schema.KindValue(c.kinds[i], v.AsFloat())
		}
		dst = schema.EncodeValue(dst, v)
	}
	return dst, nil
}

// Decode decodes one row from the start of b into dst (reused if it has
// capacity) and returns the row and the remaining bytes.
func (c *Codec) Decode(dst Row, b []byte) (Row, []byte, error) {
	if len(b) < c.rowBytes {
		return nil, b, fmt.Errorf("table: short row: have %d bytes, need %d", len(b), c.rowBytes)
	}
	if cap(dst) < len(c.kinds) {
		dst = make(Row, len(c.kinds))
	}
	dst = dst[:len(c.kinds)]
	off := 0
	for i, k := range c.kinds {
		dst[i] = schema.DecodeValue(k, b[off:])
		off += k.Size()
	}
	return dst, b[c.rowBytes:], nil
}

// DecodeAll decodes every row in b; len(b) must be a multiple of
// RowBytes.
func (c *Codec) DecodeAll(b []byte) ([]Row, error) {
	if len(b)%c.rowBytes != 0 {
		return nil, fmt.Errorf("table: buffer of %d bytes is not a whole number of %d-byte rows", len(b), c.rowBytes)
	}
	out := make([]Row, 0, len(b)/c.rowBytes)
	for len(b) > 0 {
		var row Row
		var err error
		row, b, err = c.Decode(nil, b)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatRow renders a row for display: values separated by tabs.
func FormatRow(row Row) string {
	out := ""
	for i, v := range row {
		if i > 0 {
			out += "\t"
		}
		out += v.String()
	}
	return out
}

// RowsEqual compares two rows value-wise (numeric comparison).
func RowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}
