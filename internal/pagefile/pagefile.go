// Package pagefile provides the paged-file substrate of the rowstore
// baseline: fixed-size pages backed by a single file, cached by an LRU
// buffer pool with pin counts and write-back of dirty pages. It plays
// the role PostgreSQL's buffer manager plays for the paper's relational
// baseline.
package pagefile

import (
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size (PostgreSQL's default).
const PageSize = 8192

// Page is one in-memory page image.
type Page [PageSize]byte

// File is a paged file with an LRU buffer pool. Methods are safe for
// concurrent use.
type File struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32 //dvlint:guardedby mu

	frames  []frame        //dvlint:guardedby mu
	byID    map[uint32]int //dvlint:guardedby mu (page id → frame index)
	clockAt int            //dvlint:guardedby mu

	// Stats
	hits, misses, evictions, writes int64 //dvlint:guardedby mu
}

type frame struct {
	id     uint32
	page   Page
	pins   int
	dirty  bool
	used   bool
	refbit bool
}

// Create creates (truncating) a paged file with the given buffer-pool
// capacity in pages.
func Create(path string, poolPages int) (*File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return newFile(f, 0, poolPages)
}

// Open opens an existing paged file.
func Open(path string, poolPages int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s: size %d is not page-aligned", path, st.Size())
	}
	return newFile(f, uint32(st.Size()/PageSize), poolPages)
}

func newFile(f *os.File, pages uint32, poolPages int) (*File, error) {
	if poolPages < 4 {
		poolPages = 4
	}
	return &File{
		f:      f,
		pages:  pages,
		frames: make([]frame, poolPages),
		byID:   make(map[uint32]int, poolPages),
	}, nil
}

// NumPages returns the number of allocated pages.
func (pf *File) NumPages() uint32 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.pages
}

// Stats returns (cache hits, misses, evictions, page writes).
func (pf *File) Stats() (hits, misses, evictions, writes int64) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.hits, pf.misses, pf.evictions, pf.writes
}

// Alloc appends a zeroed page and returns its id with the page pinned.
func (pf *File) Alloc() (uint32, *Page, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	id := pf.pages
	pf.pages++
	fi, err := pf.frameFor(id, false)
	if err != nil {
		pf.pages--
		return 0, nil, err
	}
	fr := &pf.frames[fi]
	fr.page = Page{}
	fr.dirty = true
	return id, &fr.page, nil
}

// Get pins and returns the page with the given id, reading it from disk
// on a cache miss. Callers must Unpin exactly once when done; writers
// must MarkDirty before unpinning.
func (pf *File) Get(id uint32) (*Page, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if id >= pf.pages {
		return nil, fmt.Errorf("pagefile: page %d out of range (have %d)", id, pf.pages)
	}
	fi, err := pf.frameFor(id, true)
	if err != nil {
		return nil, err
	}
	return &pf.frames[fi].page, nil
}

// frameFor returns a pinned frame holding page id, loading from disk
// when load is set and the page is absent. Caller holds pf.mu.
func (pf *File) frameFor(id uint32, load bool) (int, error) {
	if fi, ok := pf.byID[id]; ok {
		pf.hits++
		pf.frames[fi].pins++
		pf.frames[fi].refbit = true
		return fi, nil
	}
	pf.misses++
	fi, err := pf.evict()
	if err != nil {
		return 0, err
	}
	fr := &pf.frames[fi]
	if load {
		if _, err := pf.f.ReadAt(fr.page[:], int64(id)*PageSize); err != nil {
			// A page that was allocated but never flushed reads as zeros.
			fr.page = Page{}
		}
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	fr.used = true
	fr.refbit = true
	pf.byID[id] = fi
	return fi, nil
}

// evict frees a frame using the clock algorithm, writing it back if
// dirty. Caller holds pf.mu.
func (pf *File) evict() (int, error) {
	// First pass: any unused frame.
	for i := range pf.frames {
		if !pf.frames[i].used {
			return i, nil
		}
	}
	// Clock sweep over unpinned frames.
	for turn := 0; turn < 2*len(pf.frames); turn++ {
		fi := pf.clockAt
		pf.clockAt = (pf.clockAt + 1) % len(pf.frames)
		fr := &pf.frames[fi]
		if fr.pins > 0 {
			continue
		}
		if fr.refbit {
			fr.refbit = false
			continue
		}
		if fr.dirty {
			if err := pf.writeFrame(fr); err != nil {
				return 0, err
			}
		}
		delete(pf.byID, fr.id)
		pf.evictions++
		fr.used = false
		return fi, nil
	}
	return 0, fmt.Errorf("pagefile: buffer pool exhausted (%d pages all pinned)", len(pf.frames))
}

func (pf *File) writeFrame(fr *frame) error {
	if _, err := pf.f.WriteAt(fr.page[:], int64(fr.id)*PageSize); err != nil {
		return err
	}
	pf.writes++
	fr.dirty = false
	return nil
}

// MarkDirty flags a pinned page as modified.
func (pf *File) MarkDirty(id uint32) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if fi, ok := pf.byID[id]; ok {
		pf.frames[fi].dirty = true
	}
}

// Unpin releases one pin on the page.
func (pf *File) Unpin(id uint32) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if fi, ok := pf.byID[id]; ok && pf.frames[fi].pins > 0 {
		pf.frames[fi].pins--
	}
}

// Flush writes every dirty page back to disk.
func (pf *File) Flush() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	for i := range pf.frames {
		fr := &pf.frames[i]
		if fr.used && fr.dirty {
			if err := pf.writeFrame(fr); err != nil {
				return err
			}
		}
	}
	return pf.f.Sync()
}

// Close flushes and closes the file.
func (pf *File) Close() error {
	if err := pf.Flush(); err != nil {
		pf.f.Close()
		return err
	}
	return pf.f.Close()
}

// SizeBytes returns the on-disk size implied by the page count.
func (pf *File) SizeBytes() int64 { return int64(pf.NumPages()) * PageSize }
