package pagefile

import (
	"encoding/binary"
	"path/filepath"
	"testing"
)

func TestCreateAllocGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := Create(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	id, pg, err := pf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || pf.NumPages() != 1 {
		t.Fatalf("id=%d pages=%d", id, pf.NumPages())
	}
	binary.LittleEndian.PutUint64(pg[0:], 0xDEADBEEF)
	pf.MarkDirty(id)
	pf.Unpin(id)

	got, err := pf.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got[0:]) != 0xDEADBEEF {
		t.Error("page content lost")
	}
	pf.Unpin(id)

	if _, err := pf.Get(99); err == nil {
		t.Error("out-of-range Get accepted")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := Create(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id, pg, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(pg[0:], uint32(i)*7)
		pf.MarkDirty(id)
		pf.Unpin(id)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := Open(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if pf2.NumPages() != 20 {
		t.Fatalf("pages = %d", pf2.NumPages())
	}
	for i := 0; i < 20; i++ {
		pg, err := pf2.Get(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint32(pg[0:]) != uint32(i)*7 {
			t.Errorf("page %d content = %d", i, binary.LittleEndian.Uint32(pg[0:]))
		}
		pf2.Unpin(uint32(i))
	}
	if pf2.SizeBytes() != 20*PageSize {
		t.Errorf("SizeBytes = %d", pf2.SizeBytes())
	}
}

func TestEvictionWritesBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := Create(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	// Write 32 pages through a 4-page pool.
	for i := 0; i < 32; i++ {
		id, pg, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(pg[0:], uint32(i)+1000)
		pf.MarkDirty(id)
		pf.Unpin(id)
	}
	for i := 0; i < 32; i++ {
		pg, err := pf.Get(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint32(pg[0:]); got != uint32(i)+1000 {
			t.Fatalf("page %d = %d after eviction", i, got)
		}
		pf.Unpin(uint32(i))
	}
	_, misses, evictions, writes := pf.Stats()
	if evictions == 0 || writes == 0 || misses == 0 {
		t.Errorf("expected eviction activity: misses=%d evictions=%d writes=%d",
			misses, evictions, writes)
	}
}

func TestAllPinnedExhaustsPool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := Create(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := pf.Alloc(); err != nil {
			t.Fatal(err)
		}
		// deliberately not unpinned
	}
	if _, _, err := pf.Alloc(); err == nil {
		t.Error("exhausted pool accepted")
	}
}

func TestCacheHitStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := Create(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	id, _, err := pf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(id)
	for i := 0; i < 5; i++ {
		if _, err := pf.Get(id); err != nil {
			t.Fatal(err)
		}
		pf.Unpin(id)
	}
	hits, _, _, _ := pf.Stats()
	if hits < 5 {
		t.Errorf("hits = %d", hits)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing"), 4); err == nil {
		t.Error("missing file accepted")
	}
}
