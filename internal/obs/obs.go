// Package obs provides per-query observability for the datavirt
// engine: QueryStats aggregates what a query cost (chunks, bytes,
// rows, per-stage wall times) and Tracer is a pluggable hook that
// observes stage boundaries as they happen (span start/end, slow-query
// logging).
//
// The stages map onto the paper's STORM middleware services (§2.3):
// plan is the query service, index the indexing service, extract the
// data source service, filter the filtering service, and net the data
// mover transferring tuples between nodes. A Tracer therefore sees the
// same per-service cost breakdown the paper reports for its 1–16 node
// experiments.
package obs

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"
)

// Stage names one phase of query execution.
type Stage string

const (
	// StagePlan covers SQL parsing, validation and predicate compilation.
	StagePlan Stage = "plan"
	// StageIndex covers aligned-file-chunk generation (chunk-index
	// lookups included); it is skipped entirely when the plan cache
	// serves a memoized AFC list. Range extraction belongs to StagePlan:
	// it is part of the plan's semantic identity.
	StageIndex Stage = "index"
	// StageQueue covers the wait in a node's admission queue before a
	// query is granted an execution slot; it is zero when the node is
	// unloaded and for purely local execution.
	StageQueue Stage = "queue"
	// StageExtract covers chunk reads and row assembly.
	StageExtract Stage = "extract"
	// StageFilter covers residual predicate evaluation and row delivery
	// (accumulated across workers, so it can exceed extract wall time).
	StageFilter Stage = "filter"
	// StageAggregate covers folding filtered rows into partial
	// aggregates (pushed-down GROUP BY); it is zero for row queries.
	StageAggregate Stage = "aggregate"
	// StageNet covers cluster dials, request writes and tuple-stream
	// reads on the coordinator.
	StageNet Stage = "net"
)

// Stages lists all stages in execution order.
var Stages = []Stage{StagePlan, StageIndex, StageQueue, StageExtract, StageFilter, StageAggregate, StageNet}

// QueryStats aggregates the measured cost of one query execution.
type QueryStats struct {
	// ChunksPlanned counts the aligned file chunks the plan selected
	// after index pruning.
	ChunksPlanned int
	// ChunksRead counts the chunks actually extracted (after node
	// filtering and coalescing they can differ from ChunksPlanned).
	ChunksRead int
	// BytesRead is the payload bytes read from data files.
	BytesRead int64
	// RowsScanned is the rows materialized from chunks.
	RowsScanned int64
	// RowsEmitted is the rows that survived the residual predicate.
	RowsEmitted int64
	// RowsFiltered is the rows scanned but rejected by the predicate.
	RowsFiltered int64

	// CacheHits counts block-cache hits during extraction; CacheMisses
	// counts the blocks loaded from the filesystem on demand.
	CacheHits   int64
	CacheMisses int64
	// FSBytesRead is the bytes physically read from data files; on a
	// warm cache it drops toward zero while BytesRead (the analytic
	// payload size) stays constant.
	FSBytesRead int64
	// CacheBytesServed is the bytes copied out of cached blocks.
	CacheBytesServed int64
	// MmapBlocksServed counts block lookups served zero-copy from a
	// file mapping (the mmap cache backend); MmapRemaps counts mapping
	// windows created beyond each file's first. Both stay zero under
	// the pread backend.
	MmapBlocksServed int64
	MmapRemaps       int64

	// PlanCacheHits counts prepares whose AFC list came from the
	// semantic plan cache (the index stage was skipped); PlanCacheMisses
	// counts prepares that had to generate it. Both stay zero when plan
	// caching is disabled.
	PlanCacheHits   int64
	PlanCacheMisses int64

	// BlocksSkipped counts extraction blocks a sparse sidecar proved
	// row-free and the extractor never read. SparseIndexHits and
	// SparseIndexMisses count per-chunk sidecar lookups for files with
	// constrained attributes: a miss means that file fell back to a full
	// scan. All stay zero when no sidecars exist or the query has no
	// range constraints.
	BlocksSkipped     int64
	SparseIndexHits   int64
	SparseIndexMisses int64

	// QueuedQueries counts executions (node legs, under the cluster)
	// that waited in an admission queue before being granted a slot;
	// ShedQueries counts legs a loaded node rejected with a busy frame
	// (each shed attempt counts, including ones that later succeeded on
	// retry); HedgedLegs counts duplicate straggler legs the coordinator
	// launched. All stay zero for purely local execution.
	QueuedQueries int64
	ShedQueries   int64
	HedgedLegs    int64

	// LegRedispatches counts cluster legs the coordinator dispatched
	// more than once (any reason — overload, failover, stall);
	// ReplicaFailovers counts re-dispatches that moved a leg to a
	// different replica of its partition after the serving node failed,
	// stalled, or shed while a standby was free; ReplicaRetries counts
	// same-node overload retries. All stay zero for purely local
	// execution and for clusters that never shed or fail.
	LegRedispatches  int64
	ReplicaFailovers int64
	ReplicaRetries   int64

	// AggPushedQueries counts executions (node legs, under the cluster)
	// that evaluated a pushed-down aggregate over extracted blocks
	// instead of materializing rows; AggPartialGroups sums the partial
	// groups those executions produced before the coordinator merge.
	// VectorBatches counts the column-vector blocks the extractor
	// filtered with the vectorized (batch) predicate path. All stay zero
	// for per-row row queries.
	AggPushedQueries int64
	AggPartialGroups int64
	VectorBatches    int64

	// PlanTime is the wall time of StagePlan; likewise below. QueueTime
	// sums admission-queue waits over node legs (StageQueue).
	PlanTime    time.Duration
	IndexTime   time.Duration
	QueueTime   time.Duration
	ExtractTime time.Duration
	FilterTime  time.Duration
	AggTime     time.Duration
	NetTime     time.Duration
}

// StageTime returns the wall time recorded for one stage.
func (s *QueryStats) StageTime(st Stage) time.Duration {
	switch st {
	case StagePlan:
		return s.PlanTime
	case StageIndex:
		return s.IndexTime
	case StageQueue:
		return s.QueueTime
	case StageExtract:
		return s.ExtractTime
	case StageFilter:
		return s.FilterTime
	case StageAggregate:
		return s.AggTime
	case StageNet:
		return s.NetTime
	}
	return 0
}

// Add is generated into add_gen.go by dvlint -generate so a counter
// added to the struct can never be forgotten in the merge.

// Counters renders the deterministic (time-free) counters, one value
// per line — the form golden tests compare.
func (s *QueryStats) Counters() string {
	return fmt.Sprintf("chunks planned: %d\nchunks read: %d\nbytes read: %d\nrows scanned: %d\nrows emitted: %d\nrows filtered: %d",
		s.ChunksPlanned, s.ChunksRead, s.BytesRead, s.RowsScanned, s.RowsEmitted, s.RowsFiltered)
}

// CacheBytesSaved reports the bytes the block cache kept off the
// filesystem: bytes served from cached blocks minus bytes physically
// read, clamped at zero (a cold scan can read more than it serves due
// to block alignment).
func (s *QueryStats) CacheBytesSaved() int64 {
	saved := s.CacheBytesServed - s.FSBytesRead
	if saved < 0 {
		return 0
	}
	return saved
}

// String renders counters plus per-stage times on one line each. When
// the block or plan cache saw any traffic a summary line for it is
// appended; Counters stays byte-stable for golden tests either way.
func (s *QueryStats) String() string {
	var b strings.Builder
	b.WriteString(s.Counters())
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(&b, "\ncache: %d hits / %d misses, %d fs bytes, %d bytes served, %d bytes saved",
			s.CacheHits, s.CacheMisses, s.FSBytesRead, s.CacheBytesServed, s.CacheBytesSaved())
	}
	if s.MmapBlocksServed+s.MmapRemaps > 0 {
		fmt.Fprintf(&b, "\nmmap: %d blocks served, %d remaps", s.MmapBlocksServed, s.MmapRemaps)
	}
	if s.PlanCacheHits+s.PlanCacheMisses > 0 {
		fmt.Fprintf(&b, "\nplans: %d hits / %d misses", s.PlanCacheHits, s.PlanCacheMisses)
	}
	if s.BlocksSkipped+s.SparseIndexHits+s.SparseIndexMisses > 0 {
		fmt.Fprintf(&b, "\nsparse: %d blocks skipped, %d hits / %d misses",
			s.BlocksSkipped, s.SparseIndexHits, s.SparseIndexMisses)
	}
	if s.QueuedQueries+s.ShedQueries+s.HedgedLegs > 0 {
		fmt.Fprintf(&b, "\nserving: %d queued / %d shed / %d hedged",
			s.QueuedQueries, s.ShedQueries, s.HedgedLegs)
	}
	if s.LegRedispatches+s.ReplicaFailovers+s.ReplicaRetries > 0 {
		fmt.Fprintf(&b, "\nfailover: %d redispatched / %d failed over / %d retried",
			s.LegRedispatches, s.ReplicaFailovers, s.ReplicaRetries)
	}
	if s.AggPushedQueries+s.AggPartialGroups > 0 {
		fmt.Fprintf(&b, "\nagg: %d pushed / %d partial groups",
			s.AggPushedQueries, s.AggPartialGroups)
	}
	if s.VectorBatches > 0 {
		fmt.Fprintf(&b, "\nvector: %d batches", s.VectorBatches)
	}
	for _, st := range Stages {
		fmt.Fprintf(&b, "\n%-7s %s", st+":", s.StageTime(st).Round(time.Microsecond))
	}
	return b.String()
}

// Tracer observes query stages as they run. Implementations must be
// safe for concurrent use: a cluster coordinator traces the net stage
// of every node leg from its own goroutine.
type Tracer interface {
	// StageStart marks the beginning of stage for the given query text.
	StageStart(query string, stage Stage)
	// StageEnd marks its completion after elapsed d; err is the stage's
	// terminal error, nil on success.
	StageEnd(query string, stage Stage, d time.Duration, err error)
}

// CacheReporter is an optional Tracer extension: tracers implementing
// it additionally receive the block-cache outcome of each execution
// (hits, misses, bytes kept off the filesystem). The engine only calls
// it for executions that touched the cache.
type CacheReporter interface {
	CacheReport(query string, hits, misses, bytesSaved int64)
}

// ReportCache forwards an execution's cache outcome to t if it
// implements CacheReporter; no-op otherwise or when the cache saw no
// traffic.
func ReportCache(t Tracer, query string, hits, misses, bytesSaved int64) {
	if hits+misses == 0 {
		return
	}
	if cr, ok := t.(CacheReporter); ok {
		cr.CacheReport(query, hits, misses, bytesSaved)
	}
}

// PlanCacheReporter is an optional Tracer extension: tracers
// implementing it additionally receive each prepare's plan-cache
// outcome. hits and misses are each 0 or 1 per prepare (the aggregate
// lives in QueryStats); the engine only calls it when plan caching is
// enabled.
type PlanCacheReporter interface {
	PlanCacheReport(query string, hits, misses int64)
}

// ReportPlanCache forwards a prepare's plan-cache outcome to t if it
// implements PlanCacheReporter; no-op otherwise or when caching saw no
// traffic.
func ReportPlanCache(t Tracer, query string, hits, misses int64) {
	if hits+misses == 0 {
		return
	}
	if pr, ok := t.(PlanCacheReporter); ok {
		pr.PlanCacheReport(query, hits, misses)
	}
}

// SparseReporter is an optional Tracer extension: tracers implementing
// it receive each execution's data-skipping outcome, and — separately —
// a warning when a sidecar exists but was unusable (corrupt, stale, or
// version-mismatched) and the engine fell back to a full scan.
type SparseReporter interface {
	SparseReport(query string, blocksSkipped, hits, misses int64)
	SparseFallback(file, reason string)
}

// ReportSparse forwards an execution's data-skipping outcome to t if it
// implements SparseReporter; no-op otherwise or when no sidecar was
// consulted.
func ReportSparse(t Tracer, query string, blocksSkipped, hits, misses int64) {
	if blocksSkipped+hits+misses == 0 {
		return
	}
	if sr, ok := t.(SparseReporter); ok {
		sr.SparseReport(query, blocksSkipped, hits, misses)
	}
}

// ReportSparseFallback forwards a sidecar fallback warning to t if it
// implements SparseReporter.
func ReportSparseFallback(t Tracer, file, reason string) {
	if sr, ok := t.(SparseReporter); ok {
		sr.SparseFallback(file, reason)
	}
}

// NopTracer discards all events.
type NopTracer struct{}

// StageStart implements Tracer.
func (NopTracer) StageStart(string, Stage) {}

// StageEnd implements Tracer.
func (NopTracer) StageEnd(string, Stage, time.Duration, error) {}

// LogTracer logs stage ends through Logf. Stages faster than Slow are
// suppressed (Slow = 0 logs everything); failed stages always log.
type LogTracer struct {
	// Logf receives the formatted events; defaults to log.Printf.
	Logf func(format string, args ...any)
	// Slow is the slow-query threshold applied per stage.
	Slow time.Duration
}

// StageStart implements Tracer (start events are not logged).
func (t *LogTracer) StageStart(string, Stage) {}

// StageEnd implements Tracer.
func (t *LogTracer) StageEnd(query string, stage Stage, d time.Duration, err error) {
	if err == nil && d < t.Slow {
		return
	}
	logf := t.Logf
	if logf == nil {
		logf = log.Printf
	}
	if err != nil {
		logf("obs: %s %s failed after %s: %v", stage, truncateQuery(query), d.Round(time.Microsecond), err)
		return
	}
	logf("obs: %s %s took %s", stage, truncateQuery(query), d.Round(time.Microsecond))
}

// CacheReport implements CacheReporter; cache outcomes log only when
// Slow is zero (full logging), mirroring the per-stage suppression.
func (t *LogTracer) CacheReport(query string, hits, misses, bytesSaved int64) {
	if t.Slow > 0 {
		return
	}
	logf := t.Logf
	if logf == nil {
		logf = log.Printf
	}
	logf("obs: cache %s: %d hits / %d misses, %d bytes saved", truncateQuery(query), hits, misses, bytesSaved)
}

// PlanCacheReport implements PlanCacheReporter; like CacheReport it
// logs only when Slow is zero (full logging).
func (t *LogTracer) PlanCacheReport(query string, hits, misses int64) {
	if t.Slow > 0 {
		return
	}
	logf := t.Logf
	if logf == nil {
		logf = log.Printf
	}
	logf("obs: plans %s: %d hits / %d misses", truncateQuery(query), hits, misses)
}

// SparseReport implements SparseReporter; like CacheReport it logs only
// when Slow is zero (full logging).
func (t *LogTracer) SparseReport(query string, blocksSkipped, hits, misses int64) {
	if t.Slow > 0 {
		return
	}
	logf := t.Logf
	if logf == nil {
		logf = log.Printf
	}
	logf("obs: sparse %s: %d blocks skipped, %d hits / %d misses",
		truncateQuery(query), blocksSkipped, hits, misses)
}

// SparseFallback implements SparseReporter. Fallbacks always log — an
// unusable sidecar silently costs full scans until it is rebuilt.
func (t *LogTracer) SparseFallback(file, reason string) {
	logf := t.Logf
	if logf == nil {
		logf = log.Printf
	}
	logf("obs: sparse sidecar for %s unusable, falling back to full scan: %s", file, reason)
}

// maxLoggedQuery bounds the SQL text echoed into logs.
const maxLoggedQuery = 120

func truncateQuery(q string) string {
	if len(q) > maxLoggedQuery {
		return q[:maxLoggedQuery] + "..."
	}
	return q
}

// MultiTracer fans events out to every tracer in order.
type MultiTracer []Tracer

// StageStart implements Tracer.
func (m MultiTracer) StageStart(query string, stage Stage) {
	for _, t := range m {
		t.StageStart(query, stage)
	}
}

// StageEnd implements Tracer.
func (m MultiTracer) StageEnd(query string, stage Stage, d time.Duration, err error) {
	for _, t := range m {
		t.StageEnd(query, stage, d, err)
	}
}

// CacheReport implements CacheReporter, forwarding to every member
// tracer that implements it.
func (m MultiTracer) CacheReport(query string, hits, misses, bytesSaved int64) {
	for _, t := range m {
		if cr, ok := t.(CacheReporter); ok {
			cr.CacheReport(query, hits, misses, bytesSaved)
		}
	}
}

// PlanCacheReport implements PlanCacheReporter, forwarding to every
// member tracer that implements it.
func (m MultiTracer) PlanCacheReport(query string, hits, misses int64) {
	for _, t := range m {
		if pr, ok := t.(PlanCacheReporter); ok {
			pr.PlanCacheReport(query, hits, misses)
		}
	}
}

// SparseReport implements SparseReporter, forwarding to every member
// tracer that implements it.
func (m MultiTracer) SparseReport(query string, blocksSkipped, hits, misses int64) {
	for _, t := range m {
		if sr, ok := t.(SparseReporter); ok {
			sr.SparseReport(query, blocksSkipped, hits, misses)
		}
	}
}

// SparseFallback implements SparseReporter, forwarding to every member
// tracer that implements it.
func (m MultiTracer) SparseFallback(file, reason string) {
	for _, t := range m {
		if sr, ok := t.(SparseReporter); ok {
			sr.SparseFallback(file, reason)
		}
	}
}

// ctxKey keys context values private to this package.
type ctxKey int

const tracerKey ctxKey = iota

// WithTracer returns a context carrying t; the engine reports every
// stage of queries run under that context to it.
func WithTracer(ctx context.Context, t Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or NopTracer.
func TracerFrom(ctx context.Context) Tracer {
	if t, ok := ctx.Value(tracerKey).(Tracer); ok && t != nil {
		return t
	}
	return NopTracer{}
}

// Begin reports a stage start and returns the matching end function,
// which reports the stage end and returns its duration:
//
//	end := obs.Begin(tracer, sql, obs.StagePlan)
//	... work ...
//	planTime := end(err)
func Begin(t Tracer, query string, stage Stage) func(err error) time.Duration {
	t.StageStart(query, stage)
	start := time.Now()
	return func(err error) time.Duration {
		d := time.Since(start)
		t.StageEnd(query, stage, d, err)
		return d
	}
}
