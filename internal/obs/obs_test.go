package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestStageTimeAndAdd(t *testing.T) {
	a := QueryStats{ChunksPlanned: 2, ChunksRead: 1, BytesRead: 10,
		RowsScanned: 5, RowsEmitted: 3, RowsFiltered: 2,
		PlanTime: time.Millisecond, NetTime: 2 * time.Millisecond}
	b := a
	a.Add(b)
	if a.ChunksPlanned != 4 || a.BytesRead != 20 || a.RowsFiltered != 4 {
		t.Errorf("Add counters: %+v", a)
	}
	if a.PlanTime != 2*time.Millisecond || a.NetTime != 4*time.Millisecond {
		t.Errorf("Add times: %+v", a)
	}
	for _, st := range Stages {
		_ = a.StageTime(st) // all stages resolvable
	}
	if a.StageTime(Stage("bogus")) != 0 {
		t.Error("unknown stage has nonzero time")
	}
}

func TestCountersDeterministic(t *testing.T) {
	s := QueryStats{ChunksPlanned: 7, ChunksRead: 7, BytesRead: 123,
		RowsScanned: 40, RowsEmitted: 30, RowsFiltered: 10,
		ExtractTime: 5 * time.Second}
	got := s.Counters()
	if strings.Contains(got, "5s") {
		t.Errorf("Counters leaked a time: %q", got)
	}
	want := "chunks planned: 7\nchunks read: 7\nbytes read: 123\nrows scanned: 40\nrows emitted: 30\nrows filtered: 10"
	if got != want {
		t.Errorf("Counters = %q, want %q", got, want)
	}
	if !strings.Contains(s.String(), "extract: 5s") {
		t.Errorf("String missing stage time: %q", s.String())
	}
}

func TestLogTracerThreshold(t *testing.T) {
	var lines []string
	tr := &LogTracer{Logf: func(f string, a ...any) {
		lines = append(lines, f)
	}, Slow: time.Second}
	tr.StageEnd("SELECT 1", StageExtract, time.Millisecond, nil) // fast: suppressed
	if len(lines) != 0 {
		t.Fatalf("fast stage logged: %v", lines)
	}
	tr.StageEnd("SELECT 1", StageExtract, 2*time.Second, nil) // slow: logged
	tr.StageEnd("SELECT 1", StageNet, time.Millisecond, errors.New("boom"))
	if len(lines) != 2 {
		t.Fatalf("logged %d lines, want 2", len(lines))
	}
}

func TestLogTracerTruncatesQuery(t *testing.T) {
	var got string
	tr := &LogTracer{Logf: func(f string, a ...any) {
		for _, v := range a {
			if s, ok := v.(string); ok && strings.Contains(s, "...") {
				got = s
			}
		}
	}}
	long := "SELECT " + strings.Repeat("X", 300)
	tr.StageEnd(long, StagePlan, time.Second, nil)
	if len(got) == 0 || len(got) > maxLoggedQuery+3 {
		t.Errorf("query not truncated: %d bytes", len(got))
	}
}

func TestContextTracer(t *testing.T) {
	if _, ok := TracerFrom(context.Background()).(NopTracer); !ok {
		t.Error("default tracer is not NopTracer")
	}
	tr := &LogTracer{Logf: func(string, ...any) {}}
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != Tracer(tr) {
		t.Error("WithTracer round-trip failed")
	}
}

func TestBeginEnd(t *testing.T) {
	var evs []ev
	tr := recorder{on: func(e ev) { evs = append(evs, e) }}
	end := Begin(tr, "SELECT 1", StageIndex)
	d := end(nil)
	if d < 0 {
		t.Errorf("duration %v", d)
	}
	if len(evs) != 2 || evs[0].end || !evs[1].end || evs[1].stage != StageIndex {
		t.Errorf("events: %+v", evs)
	}

	var mt MultiTracer = []Tracer{tr, tr}
	evs = nil
	mt.StageStart("q", StagePlan)
	mt.StageEnd("q", StagePlan, time.Second, nil)
	if len(evs) != 4 {
		t.Errorf("MultiTracer fanned out %d events, want 4", len(evs))
	}
}

type ev struct {
	stage Stage
	end   bool
	err   error
}

type recorder struct {
	on func(ev)
}

func (r recorder) StageStart(q string, s Stage) {
	r.on(ev{stage: s})
}

func (r recorder) StageEnd(q string, s Stage, d time.Duration, err error) {
	r.on(ev{stage: s, end: true, err: err})
}

func TestCacheCounters(t *testing.T) {
	s := QueryStats{CacheHits: 8, CacheMisses: 2, FSBytesRead: 100, CacheBytesServed: 900}
	b := s
	s.Add(b)
	if s.CacheHits != 16 || s.CacheMisses != 4 || s.FSBytesRead != 200 || s.CacheBytesServed != 1800 {
		t.Errorf("Add cache counters: %+v", s)
	}
	if got := s.CacheBytesSaved(); got != 1600 {
		t.Errorf("CacheBytesSaved = %d", got)
	}
	neg := QueryStats{FSBytesRead: 500, CacheBytesServed: 100}
	if got := neg.CacheBytesSaved(); got != 0 {
		t.Errorf("CacheBytesSaved clamps at zero, got %d", got)
	}
	// Counters stays byte-stable (golden form) even with cache traffic;
	// String gains the cache line only when the cache was touched.
	if strings.Contains(s.Counters(), "cache") {
		t.Errorf("Counters leaked cache fields: %q", s.Counters())
	}
	if !strings.Contains(s.String(), "cache: 16 hits / 4 misses") {
		t.Errorf("String missing cache line: %q", s.String())
	}
	var cold QueryStats
	if strings.Contains(cold.String(), "cache") {
		t.Errorf("untouched cache rendered: %q", cold.String())
	}
}

func TestAggregateCounters(t *testing.T) {
	s := QueryStats{AggPushedQueries: 2, AggPartialGroups: 9, VectorBatches: 5, AggTime: time.Second}
	b := s
	s.Add(b)
	if s.AggPushedQueries != 4 || s.AggPartialGroups != 18 || s.VectorBatches != 10 {
		t.Errorf("Add aggregate counters: %+v", s)
	}
	if s.StageTime(StageAggregate) != 2*time.Second {
		t.Errorf("StageAggregate time = %v", s.StageTime(StageAggregate))
	}
	// Counters stays byte-stable (golden form) even with aggregate
	// traffic; String gains the agg/vector lines only when pushed-down
	// aggregation or vectorized filtering ran.
	if strings.Contains(s.Counters(), "agg") || strings.Contains(s.Counters(), "vector") {
		t.Errorf("Counters leaked aggregate fields: %q", s.Counters())
	}
	if !strings.Contains(s.String(), "\nagg: 4 pushed / 18 partial groups") {
		t.Errorf("String missing agg line: %q", s.String())
	}
	if !strings.Contains(s.String(), "\nvector: 10 batches") {
		t.Errorf("String missing vector line: %q", s.String())
	}
	if !strings.Contains(s.String(), "aggregate: 2s") {
		t.Errorf("String missing aggregate stage time: %q", s.String())
	}
	var cold QueryStats
	// The per-stage breakdown always prints "aggregate:", so check the
	// conditional lines specifically.
	if strings.Contains(cold.String(), "\nagg: ") || strings.Contains(cold.String(), "\nvector: ") {
		t.Errorf("untouched aggregate counters rendered: %q", cold.String())
	}
}

func TestCacheReporter(t *testing.T) {
	var lines []string
	tr := &LogTracer{Logf: func(f string, a ...any) {
		lines = append(lines, fmt.Sprintf(f, a...))
	}}
	ReportCache(tr, "SELECT 1", 5, 1, 4096)
	if len(lines) != 1 || !strings.Contains(lines[0], "5 hits / 1 misses") {
		t.Fatalf("CacheReport lines: %v", lines)
	}
	// Slow>0 suppresses cache reports like fast stages.
	lines = nil
	tr.Slow = time.Second
	ReportCache(tr, "SELECT 1", 5, 1, 4096)
	if len(lines) != 0 {
		t.Fatalf("suppressed tracer logged: %v", lines)
	}
	// Zero traffic never reports; non-implementors are ignored.
	tr.Slow = 0
	ReportCache(tr, "SELECT 1", 0, 0, 0)
	if len(lines) != 0 {
		t.Fatalf("zero-traffic report logged: %v", lines)
	}
	ReportCache(NopTracer{}, "SELECT 1", 1, 1, 1)

	// MultiTracer forwards to implementing members only.
	lines = nil
	mt := MultiTracer{NopTracer{}, tr}
	ReportCache(mt, "SELECT 2", 3, 0, 64)
	if len(lines) != 1 {
		t.Fatalf("MultiTracer forwarded %d reports, want 1", len(lines))
	}
}
