package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestPlanCacheCounters(t *testing.T) {
	s := QueryStats{PlanCacheHits: 3, PlanCacheMisses: 1}
	b := s
	s.Add(b)
	if s.PlanCacheHits != 6 || s.PlanCacheMisses != 2 {
		t.Errorf("Add plan-cache counters: %+v", s)
	}
	// Counters stays byte-stable (golden form) even with plan-cache
	// traffic; String gains the plans line only when the cache was
	// consulted.
	if strings.Contains(s.Counters(), "plans") {
		t.Errorf("Counters leaked plan-cache fields: %q", s.Counters())
	}
	if !strings.Contains(s.String(), "plans: 6 hits / 2 misses") {
		t.Errorf("String missing plans line: %q", s.String())
	}
	var cold QueryStats
	if strings.Contains(cold.String(), "plans") {
		t.Errorf("untouched plan cache rendered: %q", cold.String())
	}
}

func TestPlanCacheReporter(t *testing.T) {
	var lines []string
	tr := &LogTracer{Logf: func(f string, a ...any) {
		lines = append(lines, fmt.Sprintf(f, a...))
	}}
	ReportPlanCache(tr, "SELECT 1", 1, 0)
	if len(lines) != 1 || !strings.Contains(lines[0], "1 hits / 0 misses") {
		t.Fatalf("PlanCacheReport lines: %v", lines)
	}
	// Slow>0 suppresses plan-cache reports like fast stages.
	lines = nil
	tr.Slow = time.Second
	ReportPlanCache(tr, "SELECT 1", 1, 0)
	if len(lines) != 0 {
		t.Fatalf("suppressed tracer logged: %v", lines)
	}
	// Zero traffic never reports; non-implementors are ignored.
	tr.Slow = 0
	ReportPlanCache(tr, "SELECT 1", 0, 0)
	if len(lines) != 0 {
		t.Fatalf("zero-traffic report logged: %v", lines)
	}
	ReportPlanCache(NopTracer{}, "SELECT 1", 0, 1)

	// MultiTracer forwards to implementing members only.
	lines = nil
	mt := MultiTracer{NopTracer{}, tr}
	ReportPlanCache(mt, "SELECT 2", 0, 1)
	if len(lines) != 1 {
		t.Fatalf("MultiTracer forwarded %d reports, want 1", len(lines))
	}
}
