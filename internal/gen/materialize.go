// Package gen generates the synthetic datasets of the paper's two
// applications — IPARS oil-reservoir simulation output and Titan
// satellite sensor data — in every file layout the evaluation uses
// (the original L0, layouts I–VI, and the Figure 4 cluster layout), at
// sizes scaled to the test machine.
//
// Values are pure deterministic functions of their coordinates
// (realization, time step, grid point, attribute), so any reader can be
// verified against regeneration without storing ground truth.
package gen

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

// ValueFunc produces the value of attr at the given coordinates. The
// map contains the file's binding variables and all enclosing loop
// variables (e.g. REL, TIME, GRID for an IPARS data file).
type ValueFunc func(attr string, at map[string]int64) float64

// NodePath returns the canonical local directory for a cluster node's
// data under root: root/<node>. The materializer writes there and
// extractor resolvers read from there.
func NodePath(root, node string) string { return filepath.Join(root, node) }

// Materialize writes every data file of every DATASPACE leaf in the
// descriptor under root, using the descriptor's own layout description
// to drive the byte order — the same interpretation the query engine
// uses, exercised in reverse. Chunked leaves are not handled here (see
// the Titan writer).
func Materialize(d *metadata.Descriptor, root string, value ValueFunc) error {
	for _, node := range d.Layout.Leaves(nil) {
		if len(node.Chunked) > 0 {
			return fmt.Errorf("gen: Materialize cannot write chunked dataset %q", node.Name)
		}
		sch, extras, err := d.EffectiveSchema(node)
		if err != nil {
			return err
		}
		kinds := map[string]schema.Kind{}
		for _, a := range sch.Attrs() {
			kinds[a.Name] = a.Kind
		}
		for _, a := range extras {
			kinds[a.Name] = a.Kind
		}
		files, err := metadata.ExpandLeaf(d.Storage, node)
		if err != nil {
			return err
		}
		big := d.EffectiveByteOrder(node) == "BIG"
		for _, fi := range files {
			if err := writeFile(root, fi, node, kinds, value, big); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFile(root string, fi metadata.FileInstance, node *metadata.DatasetNode,
	kinds map[string]schema.Kind, value ValueFunc, big bool) error {
	path := filepath.Join(NodePath(root, fi.Node()), filepath.FromSlash(fi.Path()))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)

	at := make(map[string]int64, len(fi.Env)+4)
	for k, v := range fi.Env {
		at[k] = v
	}
	buf := make([]byte, 0, 8)
	var emit func(items []metadata.SpaceItem) error
	emit = func(items []metadata.SpaceItem) error {
		for _, it := range items {
			switch v := it.(type) {
			case metadata.AttrRef:
				kind := kinds[v.Name]
				buf = schema.EncodeValueOrder(buf[:0], schema.KindValue(kind, value(v.Name, at)), big)
				if _, err := w.Write(buf); err != nil {
					return err
				}
			case *metadata.Loop:
				env := metadata.Env(at)
				lo, err := v.Lo.Eval(env)
				if err != nil {
					return err
				}
				hi, err := v.Hi.Eval(env)
				if err != nil {
					return err
				}
				step, err := v.Step.Eval(env)
				if err != nil {
					return err
				}
				if step <= 0 {
					return fmt.Errorf("gen: loop %s has non-positive step", v.Var)
				}
				saved, had := at[v.Var]
				for x := lo; x <= hi; x += step {
					at[v.Var] = x
					if err := emit(v.Body); err != nil {
						return err
					}
				}
				if had {
					at[v.Var] = saved
				} else {
					delete(at, v.Var)
				}
			}
		}
		return nil
	}
	if node.Space == nil {
		f.Close()
		return fmt.Errorf("gen: leaf %q has no dataspace", node.Name)
	}
	if err := emit(node.Space.Items); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mix64 is SplitMix64: a tiny, high-quality deterministic hash used to
// derive reproducible pseudo-random values from coordinates.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a hash to [0, 1).
func u01(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// hashAt derives a stable hash from a seed and up to four coordinates.
func hashAt(seed int64, a, b, c, d int64) uint64 {
	h := mix64(uint64(seed))
	h = mix64(h ^ uint64(a)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(b)*0xc2b2ae3d27d4eb4f)
	h = mix64(h ^ uint64(c)*0x165667b19e3779f9)
	h = mix64(h ^ uint64(d)*0x27d4eb2f165667c5)
	return h
}
