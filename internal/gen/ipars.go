package gen

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"datavirt/internal/metadata"
)

// IparsSpec sizes a synthetic IPARS oil-reservoir study. The paper's
// datasets store, per realization, time step and grid cell, seventeen
// variables plus the cell's 3-D coordinates (stored once, since the
// grid does not change over time or realizations).
type IparsSpec struct {
	// Realizations is the number of geostatistical realizations (REL).
	Realizations int
	// TimeSteps is the number of simulation time steps (TIME = 1..T).
	TimeSteps int
	// GridPoints is the total number of grid cells across partitions.
	GridPoints int
	// Partitions is the number of grid partitions (cluster directories)
	// used by the CLUSTER layout; GridPoints must be divisible by it.
	// Single-file layouts ignore it.
	Partitions int
	// Attrs is the number of non-coordinate variables (17 in the paper;
	// tests may use fewer).
	Attrs int
	// Replicas, when > 1, maps each CLUSTER directory to an R-way
	// replica set in the chained layout: DIR[i]'s partition is served
	// by node<i>, node<(i+1)%P>, ..., so every node is the primary of
	// one partition and a standby for R-1 others. Requires Replicas <=
	// Partitions; 0 or 1 keeps the single-node form. Non-CLUSTER
	// layouts ignore it.
	Replicas int
	// Seed makes every value a pure function of its coordinates.
	Seed int64
}

// canonicalAttrs are the paper-inspired names of the 17 per-cell
// variables; SPEED(OILVX, OILVY, OILVZ) from the example query works on
// them. Specs with more than 17 attributes get ATTRn names.
var canonicalAttrs = []string{
	"SOIL", "SGAS", "SWAT", "POIL", "PGAS", "PWAT", "COIL", "CGAS",
	"OILVX", "OILVY", "OILVZ", "GASVX", "GASVY", "GASVZ",
	"WATVX", "WATVY", "WATVZ",
}

// IparsAttrNames returns the n variable names of a spec.
func IparsAttrNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		if i < len(canonicalAttrs) {
			out[i] = canonicalAttrs[i]
		} else {
			out[i] = fmt.Sprintf("ATTR%d", i)
		}
	}
	return out
}

// Validate checks the spec's shape.
func (s IparsSpec) Validate() error {
	if s.Realizations < 1 || s.TimeSteps < 1 || s.GridPoints < 1 || s.Attrs < 1 {
		return fmt.Errorf("gen: ipars spec must have positive sizes: %+v", s)
	}
	if s.Partitions < 1 {
		return fmt.Errorf("gen: ipars spec needs at least one partition")
	}
	if s.GridPoints%s.Partitions != 0 {
		return fmt.Errorf("gen: grid points (%d) must divide evenly into partitions (%d)",
			s.GridPoints, s.Partitions)
	}
	if s.Replicas > s.Partitions {
		return fmt.Errorf("gen: replicas (%d) cannot exceed partitions (%d): chained replication needs a distinct standby per copy",
			s.Replicas, s.Partitions)
	}
	return nil
}

// Coord returns the 3-D coordinates of grid cell g: cells fill an
// nx×ny×nz box with nx = ny = ceil(cbrt(G)).
func (s IparsSpec) Coord(g int64) (x, y, z float64) {
	n := int64(math.Ceil(math.Cbrt(float64(s.GridPoints))))
	if n < 1 {
		n = 1
	}
	return float64(g % n), float64((g / n) % n), float64(g / (n * n))
}

// Value returns the deterministic value of variable index ai at
// (rel, time, grid). Velocity components (names ending VX/VY/VZ) spread
// over [-30, 30); everything else over [0, 1).
func (s IparsSpec) Value(ai int, rel, time, grid int64) float64 {
	u := u01(hashAt(s.Seed, rel, time, grid, int64(ai)))
	name := IparsAttrNames(s.Attrs)[ai]
	if strings.HasSuffix(name, "VX") || strings.HasSuffix(name, "VY") || strings.HasSuffix(name, "VZ") {
		return (u*2 - 1) * 30
	}
	return u
}

// ValueFunc adapts the spec to the materializer: coordinates come from
// Coord (GRID only), variables from Value (REL, TIME, GRID).
func (s IparsSpec) ValueFunc() ValueFunc {
	names := IparsAttrNames(s.Attrs)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return func(attr string, at map[string]int64) float64 {
		switch attr {
		case "X":
			x, _, _ := s.Coord(at["GRID"])
			return x
		case "Y":
			_, y, _ := s.Coord(at["GRID"])
			return y
		case "Z":
			_, _, z := s.Coord(at["GRID"])
			return z
		}
		return s.Value(idx[attr], at["REL"], at["TIME"], at["GRID"])
	}
}

// IparsLayouts lists the supported layout identifiers: the original L0
// (every attribute in its own file), the paper's layouts I–VI, and the
// Figure 4 CLUSTER layout (grid partitioned across directories).
func IparsLayouts() []string {
	return []string{"L0", "I", "II", "III", "IV", "V", "VI", "CLUSTER"}
}

// IparsDescriptor renders the full three-component descriptor for the
// spec in the given layout. Single-file layouts place everything in
// DIR[0]; CLUSTER uses one directory per partition.
func IparsDescriptor(s IparsSpec, layoutID string) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	names := IparsAttrNames(s.Attrs)
	var b strings.Builder

	// Component I.
	b.WriteString("[IPARS]\nREL = short int\nTIME = int\nX = float\nY = float\nZ = float\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%s = float\n", n)
	}
	b.WriteString("\n[IparsData]\nDatasetDescription = IPARS\n")

	dirs := 1
	if layoutID == "CLUSTER" {
		dirs = s.Partitions
	}
	for i := 0; i < dirs; i++ {
		if layoutID == "CLUSTER" && s.Replicas > 1 {
			// Chained replication: partition i is readable by node i and
			// the next Replicas-1 nodes (mod P).
			set := make([]string, s.Replicas)
			for r := range set {
				set[r] = fmt.Sprintf("node%d", (i+r)%dirs)
			}
			fmt.Fprintf(&b, "DIR[%d] = NODES %s/ipars\n", i, strings.Join(set, ", "))
		} else {
			fmt.Fprintf(&b, "DIR[%d] = node%d/ipars\n", i, i)
		}
	}
	b.WriteString("\n")

	R, T, G := s.Realizations, s.TimeSteps, s.GridPoints
	all := strings.Join(names, " ")
	arrays := func(indent string, attrs []string, gridLo, gridHi string) string {
		var sb strings.Builder
		for _, a := range attrs {
			fmt.Fprintf(&sb, "%sLOOP GRID %s:%s:1 { %s }\n", indent, gridLo, gridHi, a)
		}
		return sb.String()
	}

	fmt.Fprintf(&b, "Dataset \"IparsData\" {\n  DATATYPE { IPARS }\n  DATAINDEX { REL TIME }\n")
	switch layoutID {
	case "L0":
		// COORDS plus one file per variable per realization.
		fmt.Fprintf(&b, `  Dataset "coords" {
    DATASPACE { LOOP GRID 0:%d:1 { X Y Z } }
    DATA { DIR[0]/COORDS }
  }
`, G-1)
		for _, a := range names {
			fmt.Fprintf(&b, `  Dataset "attr_%s" {
    DATASPACE { LOOP TIME 1:%d:1 { LOOP GRID 0:%d:1 { %s } } }
    DATA { DIR[0]/%s.R$REL REL = 0:%d:1 }
  }
`, a, T, G-1, a, a, R-1)
		}
	case "I":
		fmt.Fprintf(&b, `  DATASPACE {
    LOOP REL 0:%d:1 { LOOP TIME 1:%d:1 { LOOP GRID 0:%d:1 { X Y Z %s } } }
  }
  DATA { DIR[0]/alldata }
`, R-1, T, G-1, all)
	case "II":
		fmt.Fprintf(&b, "  DATASPACE {\n    LOOP REL 0:%d:1 { LOOP TIME 1:%d:1 {\n%s    } }\n  }\n  DATA { DIR[0]/alldata }\n",
			R-1, T, arrays("      ", append([]string{"X", "Y", "Z"}, names...), "0", fmt.Sprint(G-1)))
	case "III":
		fmt.Fprintf(&b, `  DATASPACE { LOOP GRID 0:%d:1 { X Y Z %s } }
  DATA { DIR[0]/R$REL.T$TIME REL = 0:%d:1 TIME = 1:%d:1 }
`, G-1, all, R-1, T)
	case "IV":
		fmt.Fprintf(&b, "  DATASPACE {\n%s  }\n  DATA { DIR[0]/R$REL.T$TIME REL = 0:%d:1 TIME = 1:%d:1 }\n",
			arrays("    ", append([]string{"X", "Y", "Z"}, names...), "0", fmt.Sprint(G-1)), R-1, T)
	case "V", "VI":
		fmt.Fprintf(&b, `  Dataset "coords" {
    DATASPACE { LOOP GRID 0:%d:1 { X Y Z } }
    DATA { DIR[0]/COORDS }
  }
`, G-1)
		groups := splitAttrs(names, 6)
		for gi, grp := range groups {
			if layoutID == "V" {
				fmt.Fprintf(&b, `  Dataset "group%d" {
    DATASPACE { LOOP REL 0:%d:1 { LOOP TIME 1:%d:1 { LOOP GRID 0:%d:1 { %s } } } }
    DATA { DIR[0]/group%d }
  }
`, gi, R-1, T, G-1, strings.Join(grp, " "), gi)
			} else {
				fmt.Fprintf(&b, "  Dataset \"group%d\" {\n    DATASPACE { LOOP REL 0:%d:1 { LOOP TIME 1:%d:1 {\n%s    } } }\n    DATA { DIR[0]/group%d }\n  }\n",
					gi, R-1, T, arrays("      ", grp, "0", fmt.Sprint(G-1)), gi)
			}
		}
	case "CLUSTER":
		gp := G / s.Partitions
		lo := fmt.Sprintf("($DIRID*%d)", gp)
		hi := fmt.Sprintf("($DIRID*%d+%d)", gp, gp-1)
		fmt.Fprintf(&b, `  Dataset "coords" {
    DATASPACE { LOOP GRID %s:%s:1 { X Y Z } }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:%d:1 }
  }
  Dataset "data" {
    DATASPACE { LOOP TIME 1:%d:1 { LOOP GRID %s:%s:1 { %s } } }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:%d:1 DIRID = 0:%d:1 }
  }
`, lo, hi, s.Partitions-1, T, lo, hi, all, R-1, s.Partitions-1)
	default:
		return "", fmt.Errorf("gen: unknown ipars layout %q (want one of %v)", layoutID, IparsLayouts())
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// splitAttrs divides names into at most k nearly equal groups.
func splitAttrs(names []string, k int) [][]string {
	if k > len(names) {
		k = len(names)
	}
	out := make([][]string, 0, k)
	per := (len(names) + k - 1) / k
	for i := 0; i < len(names); i += per {
		j := i + per
		if j > len(names) {
			j = len(names)
		}
		out = append(out, names[i:j])
	}
	return out
}

// WriteIpars renders the descriptor for the layout, materializes every
// data file under root, and writes the descriptor itself to
// root/ipars_<layout>.dvd. It returns the descriptor path.
func WriteIpars(root string, s IparsSpec, layoutID string) (string, error) {
	src, err := IparsDescriptor(s, layoutID)
	if err != nil {
		return "", err
	}
	d, err := metadata.Parse(src)
	if err != nil {
		return "", fmt.Errorf("gen: generated descriptor is invalid: %w", err)
	}
	if err := Materialize(d, root, s.ValueFunc()); err != nil {
		return "", err
	}
	descPath := filepath.Join(root, "ipars_"+strings.ToLower(layoutID)+".dvd")
	if err := os.WriteFile(descPath, []byte(src), 0o644); err != nil {
		return "", err
	}
	return descPath, nil
}

// IparsTotalRows returns the virtual table's row count.
func (s IparsSpec) IparsTotalRows() int64 {
	return int64(s.Realizations) * int64(s.TimeSteps) * int64(s.GridPoints)
}
