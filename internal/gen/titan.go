package gen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

// TitanSpec sizes a synthetic Titan satellite dataset: Points sensor
// readings, each with spatial coordinates X, Y, a time coordinate Z,
// and five sensor values S1..S5 — "two spatial, one time dimension, and
// five sensors" (paper §2.2). The processed data is partitioned into
// space-time chunks with a spatial index over chunk bounds.
type TitanSpec struct {
	Points int
	// XMax, YMax, ZMax bound the coordinate space (exclusive).
	XMax, YMax, ZMax int
	// TilesX/Y/Z tile the space-time box; each non-empty tile becomes
	// one chunk.
	TilesX, TilesY, TilesZ int
	// Nodes spreads chunks round-robin across this many cluster nodes
	// (the paper stores Titan on a single node; default 1).
	Nodes int
	Seed  int64
}

// Validate checks the spec's shape.
func (s TitanSpec) Validate() error {
	if s.Points < 1 || s.XMax < 1 || s.YMax < 1 || s.ZMax < 1 {
		return fmt.Errorf("gen: titan spec must have positive sizes: %+v", s)
	}
	if s.TilesX < 1 || s.TilesY < 1 || s.TilesZ < 1 {
		return fmt.Errorf("gen: titan spec needs at least one tile per dimension")
	}
	if s.Nodes < 1 {
		return fmt.Errorf("gen: titan spec needs at least one node")
	}
	return nil
}

// TitanRecordBytes is the fixed record size: 3 int32 coordinates + 5
// float32 sensors.
const TitanRecordBytes = 3*4 + 5*4

// TitanAttrs is the record attribute order.
var TitanAttrs = []string{"X", "Y", "Z", "S1", "S2", "S3", "S4", "S5"}

// Point returns reading j. The satellite sweeps the X range as time (Z)
// advances — adjacent readings are spatially correlated, as on a real
// orbit — with deterministic jitter; sensors are uniform in [0, 1).
func (s TitanSpec) Point(j int64) (x, y, z int32, sens [5]float32) {
	n := int64(s.Points)
	z = int32(j * int64(s.ZMax) / n)
	// Sweep position plus jitter.
	sweep := float64(j%4096) / 4096
	x = int32(math.Mod(sweep*float64(s.XMax)+u01(hashAt(s.Seed, j, 1, 0, 0))*float64(s.XMax)/8, float64(s.XMax)))
	y = int32(u01(hashAt(s.Seed, j, 2, 0, 0)) * float64(s.YMax))
	for k := 0; k < 5; k++ {
		sens[k] = float32(u01(hashAt(s.Seed, j, 3, int64(k), 0)))
	}
	return
}

// TitanDescriptor renders the chunked descriptor for the spec.
func TitanDescriptor(s TitanSpec) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	var b []byte
	b = append(b, "[TITAN]\nX = int\nY = int\nZ = int\nS1 = float\nS2 = float\nS3 = float\nS4 = float\nS5 = float\n\n"...)
	b = append(b, "[TitanData]\nDatasetDescription = TITAN\n"...)
	for i := 0; i < s.Nodes; i++ {
		b = append(b, fmt.Sprintf("DIR[%d] = node%d/titan\n", i, i)...)
	}
	b = append(b, fmt.Sprintf(`
Dataset "TitanData" {
  DATATYPE { TITAN }
  DATAINDEX { X Y Z }
  Dataset "chunks" {
    CHUNKED { X Y Z S1 S2 S3 S4 S5 }
    DATA { DIR[$DIRID]/chunks.dat DIRID = 0:%d:1 }
    INDEXFILE { DIR[$DIRID]/chunks.idx DIRID = 0:%d:1 }
  }
}
`, s.Nodes-1, s.Nodes-1)...)
	return string(b), nil
}

// WriteTitan generates the dataset: per node, a chunks.dat of
// tile-grouped fixed-width records and a chunks.idx R-tree directory.
// The descriptor is written to root/titan.dvd; its path is returned.
func WriteTitan(root string, s TitanSpec) (string, error) {
	src, err := TitanDescriptor(s)
	if err != nil {
		return "", err
	}
	if _, err := metadata.Parse(src); err != nil {
		return "", fmt.Errorf("gen: generated titan descriptor is invalid: %w", err)
	}

	// Assign each point to a tile.
	type pt struct {
		tile    int
		j       int64
		x, y, z int32
		s       [5]float32
	}
	pts := make([]pt, s.Points)
	for j := range pts {
		x, y, z, sens := s.Point(int64(j))
		tx := int(int64(x) * int64(s.TilesX) / int64(s.XMax))
		ty := int(int64(y) * int64(s.TilesY) / int64(s.YMax))
		tz := int(int64(z) * int64(s.TilesZ) / int64(s.ZMax))
		tx, ty, tz = clampTile(tx, s.TilesX), clampTile(ty, s.TilesY), clampTile(tz, s.TilesZ)
		tile := (tz*s.TilesY+ty)*s.TilesX + tx
		pts[j] = pt{tile: tile, j: int64(j), x: x, y: y, z: z, s: sens}
	}
	sort.SliceStable(pts, func(a, b int) bool {
		if pts[a].tile != pts[b].tile {
			return pts[a].tile < pts[b].tile
		}
		return pts[a].j < pts[b].j
	})

	// Split tiles round-robin over nodes and write each node's files.
	type nodeState struct {
		w      *bufio.Writer
		f      *os.File
		off    int64
		chunks []index.ChunkMeta
	}
	states := make([]*nodeState, s.Nodes)
	for n := 0; n < s.Nodes; n++ {
		dir := filepath.Join(NodePath(root, fmt.Sprintf("node%d", n)), "titan")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
		f, err := os.Create(filepath.Join(dir, "chunks.dat"))
		if err != nil {
			return "", err
		}
		states[n] = &nodeState{f: f, w: bufio.NewWriterSize(f, 1<<20)}
	}
	closeAll := func() {
		for _, st := range states {
			if st.f != nil {
				st.f.Close()
			}
		}
	}

	var rec [TitanRecordBytes]byte
	i := 0
	tileSeq := 0
	for i < len(pts) {
		j := i
		for j < len(pts) && pts[j].tile == pts[i].tile {
			j++
		}
		st := states[tileSeq%s.Nodes]
		tileSeq++
		meta := index.ChunkMeta{
			Offset:  st.off,
			NumRows: int64(j - i),
			Min:     []float64{math.Inf(1), math.Inf(1), math.Inf(1)},
			Max:     []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
		}
		for _, p := range pts[i:j] {
			binary.LittleEndian.PutUint32(rec[0:], uint32(p.x))
			binary.LittleEndian.PutUint32(rec[4:], uint32(p.y))
			binary.LittleEndian.PutUint32(rec[8:], uint32(p.z))
			for k := 0; k < 5; k++ {
				binary.LittleEndian.PutUint32(rec[12+4*k:], math.Float32bits(p.s[k]))
			}
			if _, err := st.w.Write(rec[:]); err != nil {
				closeAll()
				return "", err
			}
			for d, v := range []float64{float64(p.x), float64(p.y), float64(p.z)} {
				meta.Min[d] = math.Min(meta.Min[d], v)
				meta.Max[d] = math.Max(meta.Max[d], v)
			}
		}
		st.off += meta.NumRows * TitanRecordBytes
		st.chunks = append(st.chunks, meta)
		i = j
	}
	for n, st := range states {
		if err := st.w.Flush(); err != nil {
			closeAll()
			return "", err
		}
		if err := st.f.Close(); err != nil {
			return "", err
		}
		st.f = nil
		idxPath := filepath.Join(NodePath(root, fmt.Sprintf("node%d", n)), "titan", "chunks.idx")
		if err := index.WriteFile(idxPath, []string{"X", "Y", "Z"}, st.chunks); err != nil {
			return "", err
		}
	}

	descPath := filepath.Join(root, "titan.dvd")
	if err := os.WriteFile(descPath, []byte(src), 0o644); err != nil {
		return "", err
	}
	return descPath, nil
}

func clampTile(t, n int) int {
	if t < 0 {
		return 0
	}
	if t >= n {
		return n - 1
	}
	return t
}

// TitanSchema returns the TITAN schema.
func TitanSchema() *schema.Schema {
	return schema.MustNew("TITAN", []schema.Attribute{
		{Name: "X", Kind: schema.Int}, {Name: "Y", Kind: schema.Int},
		{Name: "Z", Kind: schema.Int},
		{Name: "S1", Kind: schema.Float}, {Name: "S2", Kind: schema.Float},
		{Name: "S3", Kind: schema.Float}, {Name: "S4", Kind: schema.Float},
		{Name: "S5", Kind: schema.Float},
	})
}
