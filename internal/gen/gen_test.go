package gen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datavirt/internal/afc"
	"datavirt/internal/index"
	"datavirt/internal/metadata"
)

func smallSpec() IparsSpec {
	return IparsSpec{
		Realizations: 2, TimeSteps: 5, GridPoints: 12, Partitions: 3,
		Attrs: 4, Seed: 42,
	}
}

func TestIparsSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := smallSpec()
	bad.GridPoints = 10 // not divisible by 3 partitions
	if err := bad.Validate(); err == nil {
		t.Error("indivisible grid accepted")
	}
	bad2 := smallSpec()
	bad2.Attrs = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero attrs accepted")
	}
}

func TestIparsAttrNames(t *testing.T) {
	names := IparsAttrNames(17)
	if len(names) != 17 || names[0] != "SOIL" || names[16] != "WATVZ" {
		t.Errorf("names = %v", names)
	}
	long := IparsAttrNames(20)
	if long[19] != "ATTR19" {
		t.Errorf("overflow name = %s", long[19])
	}
	// The example query's velocity attributes exist.
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"OILVX", "OILVY", "OILVZ", "SGAS"} {
		if !found[want] {
			t.Errorf("missing canonical attr %s", want)
		}
	}
}

func TestIparsValuesDeterministic(t *testing.T) {
	s := smallSpec()
	v1 := s.Value(0, 1, 3, 7)
	v2 := s.Value(0, 1, 3, 7)
	if v1 != v2 {
		t.Error("Value not deterministic")
	}
	if v1 < 0 || v1 >= 1 {
		t.Errorf("SOIL value out of [0,1): %g", v1)
	}
	// Velocity attrs span negative values.
	s17 := s
	s17.Attrs = 17
	neg := false
	for g := int64(0); g < 100; g++ {
		if s17.Value(8, 0, 1, g) < 0 { // OILVX
			neg = true
			break
		}
	}
	if !neg {
		t.Error("velocity attr never negative")
	}
	// Different coordinates give different values (overwhelmingly).
	if s.Value(0, 1, 3, 7) == s.Value(0, 1, 3, 8) {
		t.Error("suspicious value collision")
	}
	// Coordinates are deterministic and box-shaped.
	x, y, z := s.Coord(5)
	if x < 0 || y < 0 || z < 0 {
		t.Errorf("Coord(5) = %g,%g,%g", x, y, z)
	}
}

func TestIparsDescriptorsAllLayoutsParse(t *testing.T) {
	s := smallSpec()
	for _, l := range IparsLayouts() {
		src, err := IparsDescriptor(s, l)
		if err != nil {
			t.Errorf("%s: %v", l, err)
			continue
		}
		d, err := metadata.Parse(src)
		if err != nil {
			t.Errorf("%s: generated descriptor does not parse: %v\n%s", l, err, src)
			continue
		}
		if _, err := afc.Compile(d); err != nil {
			t.Errorf("%s: generated descriptor does not compile: %v", l, err)
		}
	}
	if _, err := IparsDescriptor(s, "BOGUS"); err == nil {
		t.Error("unknown layout accepted")
	}
}

// TestMaterializeSizes verifies that the bytes written by the
// materializer match the sizes the layout compiler computes — the two
// independent interpretations of the descriptor must agree.
func TestMaterializeSizes(t *testing.T) {
	s := smallSpec()
	for _, l := range IparsLayouts() {
		root := t.TempDir()
		descPath, err := WriteIpars(root, s, l)
		if err != nil {
			t.Fatalf("%s: WriteIpars: %v", l, err)
		}
		d, err := metadata.ParseFile(descPath)
		if err != nil {
			t.Fatalf("%s: reparse: %v", l, err)
		}
		p, err := afc.Compile(d)
		if err != nil {
			t.Fatalf("%s: compile: %v", l, err)
		}
		var want int64
		for _, lf := range p.DataLeaves {
			for _, fs := range lf.Files {
				path := filepath.Join(NodePath(root, fs.Inst.Node()), fs.Inst.Path())
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatalf("%s: %v", l, err)
				}
				if fi.Size() != fs.Layout.TotalBytes {
					t.Errorf("%s: %s size %d, layout says %d", l, path, fi.Size(), fs.Layout.TotalBytes)
				}
				want += fs.Layout.TotalBytes
			}
		}
		// Total data volume must be identical across layouts that store
		// coordinates once vs per tuple — so only check it is positive
		// and consistent with the plan.
		if got := p.TotalDataBytes(); got != want || got == 0 {
			t.Errorf("%s: TotalDataBytes %d vs %d", l, got, want)
		}
	}
}

func TestWriteTitan(t *testing.T) {
	root := t.TempDir()
	spec := TitanSpec{
		Points: 5000, XMax: 1000, YMax: 1000, ZMax: 100,
		TilesX: 4, TilesY: 4, TilesZ: 2, Nodes: 1, Seed: 7,
	}
	descPath, err := WriteTitan(root, spec)
	if err != nil {
		t.Fatalf("WriteTitan: %v", err)
	}
	// Data file holds every record.
	dataPath := filepath.Join(root, "node0", "titan", "chunks.dat")
	fi, err := os.Stat(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(spec.Points)*TitanRecordBytes {
		t.Errorf("data size = %d, want %d", fi.Size(), spec.Points*TitanRecordBytes)
	}
	// Index entries cover every row exactly once, offsets ascending.
	ix, err := index.ReadFile(filepath.Join(root, "node0", "titan", "chunks.idx"))
	if err != nil {
		t.Fatal(err)
	}
	var rows, off int64
	for _, c := range ix.Chunks() {
		if c.Offset != off {
			t.Errorf("chunk offset %d, want %d", c.Offset, off)
		}
		rows += c.NumRows
		off += c.NumRows * TitanRecordBytes
	}
	if rows != int64(spec.Points) {
		t.Errorf("index rows = %d, want %d", rows, spec.Points)
	}
	if ix.NumChunks() < 2 || ix.NumChunks() > 4*4*2 {
		t.Errorf("chunks = %d", ix.NumChunks())
	}
	// Descriptor parses and compiles.
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := afc.Compile(d); err != nil {
		t.Errorf("titan descriptor compile: %v", err)
	}
}

func TestWriteTitanMultiNode(t *testing.T) {
	root := t.TempDir()
	spec := TitanSpec{
		Points: 2000, XMax: 100, YMax: 100, ZMax: 100,
		TilesX: 2, TilesY: 2, TilesZ: 2, Nodes: 2, Seed: 3,
	}
	if _, err := WriteTitan(root, spec); err != nil {
		t.Fatalf("WriteTitan: %v", err)
	}
	var rows int64
	for n := 0; n < 2; n++ {
		ix, err := index.ReadFile(filepath.Join(root, "node"+string(rune('0'+n)), "titan", "chunks.idx"))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range ix.Chunks() {
			rows += c.NumRows
		}
	}
	if rows != 2000 {
		t.Errorf("rows across nodes = %d", rows)
	}
}

func TestTitanPointDeterministic(t *testing.T) {
	spec := TitanSpec{Points: 100, XMax: 50, YMax: 60, ZMax: 70,
		TilesX: 1, TilesY: 1, TilesZ: 1, Nodes: 1, Seed: 9}
	x1, y1, z1, s1 := spec.Point(42)
	x2, y2, z2, s2 := spec.Point(42)
	if x1 != x2 || y1 != y2 || z1 != z2 || s1 != s2 {
		t.Error("Point not deterministic")
	}
	if x1 < 0 || int(x1) >= spec.XMax || y1 < 0 || int(y1) >= spec.YMax || z1 < 0 || int(z1) >= spec.ZMax {
		t.Errorf("point out of bounds: %d %d %d", x1, y1, z1)
	}
	for _, v := range s1 {
		if v < 0 || v >= 1 {
			t.Errorf("sensor out of [0,1): %g", v)
		}
	}
}

func TestTitanSpecValidate(t *testing.T) {
	bad := []TitanSpec{
		{},
		{Points: 10, XMax: 1, YMax: 1, ZMax: 1, TilesX: 0, TilesY: 1, TilesZ: 1, Nodes: 1},
		{Points: 10, XMax: 1, YMax: 1, ZMax: 1, TilesX: 1, TilesY: 1, TilesZ: 1, Nodes: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestIparsReplicatedCluster(t *testing.T) {
	s := smallSpec()
	s.Replicas = 2
	src, err := IparsDescriptor(s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"DIR[0] = NODES node0, node1/ipars",
		"DIR[1] = NODES node1, node2/ipars",
		"DIR[2] = NODES node2, node0/ipars",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("descriptor missing %q:\n%s", want, src)
		}
	}
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatalf("replicated CLUSTER descriptor does not parse: %v", err)
	}
	if got := d.Storage.Dirs[1].ReplicaNodes(); len(got) != 2 || got[0] != "node1" {
		t.Errorf("DIR[1] replica set = %v", got)
	}

	// Replicas must not change the materialized bytes: standbys read the
	// primary's files under the shared root.
	base, err := IparsDescriptor(smallSpec(), "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	stripped := src
	for i := 0; i < s.Partitions; i++ {
		old := fmt.Sprintf("DIR[%d] = NODES node%d, node%d/ipars", i, i, (i+1)%s.Partitions)
		stripped = strings.Replace(stripped, old, fmt.Sprintf("DIR[%d] = node%d/ipars", i, i), 1)
	}
	if stripped != base {
		t.Errorf("replicated layout differs beyond DIR lines:\n%s\nvs\n%s", stripped, base)
	}

	bad := s
	bad.Replicas = s.Partitions + 1
	if err := bad.Validate(); err == nil {
		t.Error("replicas > partitions accepted")
	}
}
