package core

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datavirt/internal/gen"
	"datavirt/internal/metadata"
)

// byteorderDescriptor declares the same tiny dataset twice-over: the
// test materializes it in both byte orders and checks the engine reads
// each correctly.
const byteorderDescriptor = `
[S]
T = int
A = float
B = double

[BoData]
DatasetDescription = S
DIR[0] = node0/bo

Dataset "BoData" {
  DATATYPE { S }
  DATAINDEX { T }
  BYTEORDER { %s }
  DATASPACE { LOOP T 0:9:1 { A B } }
  DATA { DIR[0]/data }
}
`

func TestByteOrderEndToEnd(t *testing.T) {
	for _, order := range []string{"LITTLE", "BIG"} {
		src := strings.Replace(byteorderDescriptor, "%s", order, 1)
		d, err := metadata.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", order, err)
		}
		if got := d.EffectiveByteOrder(d.Layout); got != order {
			t.Fatalf("EffectiveByteOrder = %s, want %s", got, order)
		}
		root := t.TempDir()
		value := func(attr string, at map[string]int64) float64 {
			switch attr {
			case "A":
				return float64(at["T"]) + 0.5
			case "B":
				return float64(at["T"]) * -2
			}
			return 0
		}
		if err := gen.Materialize(d, root, value); err != nil {
			t.Fatal(err)
		}

		// The raw bytes must actually differ by order: check A at T=1
		// (offset 12 = one 4+8-byte record in).
		raw, err := os.ReadFile(filepath.Join(root, "node0", "bo", "data"))
		if err != nil {
			t.Fatal(err)
		}
		bits := math.Float32bits(1.5)
		var got uint32
		if order == "BIG" {
			got = binary.BigEndian.Uint32(raw[12:])
		} else {
			got = binary.LittleEndian.Uint32(raw[12:])
		}
		if got != bits {
			t.Fatalf("%s: raw A(T=1) = %#x, want %#x", order, got, bits)
		}

		svc, err := Compile(d, NodeResolver(root))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := svc.Query("SELECT T, A, B FROM BoData WHERE T >= 3 AND T <= 5")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("%s: rows = %d", order, len(rows))
		}
		for i, r := range rows {
			tm := int64(3 + i)
			if r[0].AsInt() != tm || r[1].AsFloat() != float64(tm)+0.5 || r[2].AsFloat() != float64(tm)*-2 {
				t.Errorf("%s: row %d = %v", order, i, r)
			}
		}
	}
}

// TestByteOrderMismatchDetectable reads big-endian data with a
// little-endian descriptor and confirms values come out scrambled —
// the declaration genuinely drives decoding.
func TestByteOrderMismatchDetectable(t *testing.T) {
	bigSrc := strings.Replace(byteorderDescriptor, "%s", "BIG", 1)
	dBig, err := metadata.Parse(bigSrc)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	value := func(attr string, at map[string]int64) float64 { return 1.5 }
	if err := gen.Materialize(dBig, root, value); err != nil {
		t.Fatal(err)
	}
	littleSrc := strings.Replace(byteorderDescriptor, "%s", "LITTLE", 1)
	dLittle, err := metadata.Parse(littleSrc)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Compile(dLittle, NodeResolver(root))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := svc.Query("SELECT A FROM BoData WHERE T = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 1 && rows[0][0].AsFloat() == 1.5 {
		t.Error("little-endian read of big-endian data decoded correctly; byte order is being ignored")
	}
}

// TestByteOrderInheritance checks that children inherit the parent's
// order and the XML embedding round-trips it.
func TestByteOrderInheritance(t *testing.T) {
	src := `
[S]
T = int
A = float
[D]
DatasetDescription = S
DIR[0] = n0/d
Dataset "root" {
  DATATYPE { S }
  BYTEORDER { BIG }
  Dataset "leaf" {
    DATASPACE { LOOP T 0:3:1 { A } }
    DATA { DIR[0]/f }
  }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	leaf := d.Layout.Children[0]
	if got := d.EffectiveByteOrder(leaf); got != "BIG" {
		t.Errorf("inherited order = %s", got)
	}
	// Text round trip preserves the clause.
	if !strings.Contains(d.String(), "BYTEORDER { BIG }") {
		t.Errorf("String() lost BYTEORDER:\n%s", d.String())
	}
	d2, err := metadata.Parse(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Layout.ByteOrder != "BIG" {
		t.Error("text round trip lost byte order")
	}
	// XML round trip.
	xmlSrc, err := metadata.ToXML(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xmlSrc, `byteorder="BIG"`) {
		t.Errorf("XML lost byteorder:\n%s", xmlSrc)
	}
	d3, err := metadata.ParseXML(xmlSrc)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Layout.ByteOrder != "BIG" {
		t.Error("XML round trip lost byte order")
	}
	// Bad order rejected.
	if _, err := metadata.Parse(strings.Replace(src, "{ BIG }", "{ MIDDLE }", 1)); err == nil {
		t.Error("BYTEORDER { MIDDLE } accepted")
	}
}
