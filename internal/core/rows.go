package core

import (
	"context"
	"errors"
	"time"

	"datavirt/internal/obs"
	"datavirt/internal/table"
)

// rowsBuffer is the channel depth between the extraction goroutine and
// the consumer; it decouples bursty chunk extraction from row-at-a-time
// iteration.
const rowsBuffer = 256

// Rows is a streaming cursor over a query's result, in the spirit of
// database/sql.Rows: extraction runs concurrently and rows are pulled
// one at a time, so results of any size are consumed in constant
// memory. The iteration idiom:
//
//	rows, err := svc.QueryContext(ctx, sql)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Row())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is not safe for concurrent use. Abandoning a cursor without
// Close leaks the extraction goroutine until the parent context is
// cancelled; always defer Close.
type Rows struct {
	parent context.Context // the caller's ctx, to tell its cancellation from Close's
	cancel context.CancelFunc
	ch     chan table.Row
	done   chan struct{} // closed after runErr and stats are written

	cols   []string
	cur    table.Row
	err    error
	closed bool

	// Written by the extraction goroutine before done closes.
	runErr error
	stats  obs.QueryStats
}

// NewRows adapts an emit-callback runner into a streaming cursor: run
// is started on its own goroutine with an emit function that hands each
// row to the cursor (blocking when the consumer lags), and the
// QueryStats it returns become the cursor's Stats. The runner must
// honour ctx cancellation — Close cancels it — and must not retain
// rows after emit returns (the cursor copies them). This is the bridge
// both the local service and the cluster coordinator use to present
// one cursor API over push-style execution engines.
func NewRows(ctx context.Context, cols []string, run func(ctx context.Context, emit func(table.Row) error) (obs.QueryStats, error)) *Rows {
	runCtx, cancel := context.WithCancel(ctx)
	r := &Rows{
		parent: ctx,
		cancel: cancel,
		ch:     make(chan table.Row, rowsBuffer),
		done:   make(chan struct{}),
		cols:   cols,
	}
	go func() {
		defer close(r.done)
		defer close(r.ch)
		stats, err := run(runCtx, func(row table.Row) error {
			// The producer may reuse the row; the cursor hands out copies
			// so callers may retain them.
			cp := append(table.Row(nil), row...)
			select {
			case r.ch <- cp:
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		})
		r.stats = stats
		r.runErr = err
	}()
	return r
}

// QueryContext starts the prepared query and returns a streaming
// cursor over its rows. Extraction proceeds concurrently with
// iteration; Close cancels whatever is still in flight.
func (p *Prepared) QueryContext(ctx context.Context, opt Options) (*Rows, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return NewRows(ctx, p.Cols, func(runCtx context.Context, emit func(table.Row) error) (obs.QueryStats, error) {
		start := time.Now()
		stats, err := p.RunContext(runCtx, opt, emit)
		return p.queryStats(stats, time.Since(start)), err
	}), nil
}

// Columns returns the cursor's column names (the SELECT list, *
// expanded).
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, blocking until one is available or
// the query finishes. It returns false at the end of the result set,
// on error (see Err), or after Close.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	row, ok := <-r.ch
	if !ok {
		<-r.done // runErr and stats are now visible
		r.err = r.terminalErr()
		r.cur = nil
		return false
	}
	r.cur = row
	return true
}

// Row returns the current row. It is a copy owned by the caller and
// remains valid across subsequent Next calls.
func (r *Rows) Row() table.Row { return r.cur }

// Err returns the error that terminated iteration, if any. It is nil
// while rows remain, after a complete iteration, and after a plain
// Close; it reports the context's error when the parent context was
// cancelled or timed out.
func (r *Rows) Err() error { return r.err }

// Close cancels any in-flight extraction, releases the cursor's
// resources and returns Err. Close is idempotent and safe to call at
// any point of the iteration.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.cancel()
	for range r.ch { // unblock the producer and drain
	}
	<-r.done
	if r.err == nil {
		r.err = r.terminalErr()
	}
	return r.err
}

// terminalErr maps the run's error to the cursor error: cancellation
// triggered by our own Close is not an iteration error (mirroring
// database/sql), but a parent-context cancellation is.
func (r *Rows) terminalErr() error {
	err := r.runErr
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) && r.parent.Err() == nil {
		return nil
	}
	return err
}

// Stats returns the query's observability record: chunk, byte and row
// counters plus per-stage wall times. It is available once the query
// has finished — after Next returned false or Close was called — and
// returns nil while extraction is still running.
func (r *Rows) Stats() *obs.QueryStats {
	select {
	case <-r.done:
		s := r.stats
		return &s
	default:
		return nil
	}
}
