// Package core is the public engine of datavirt: the automatic data
// virtualization tool of Weng et al. (HPDC 2004). It ties the pieces
// together in the paper's two-phase design:
//
//  1. Open/Compile — performed once per descriptor: parse the meta-data,
//     enumerate and instantiate every file layout, and build the
//     specialized index and extraction machinery (the run-time analogue
//     of the paper's generated code; internal/codegen emits equivalent
//     Go source).
//  2. Query — performed per query with no code generation or meta-data
//     reprocessing: parse SQL, extract per-attribute ranges, compute
//     aligned file chunks via the index functions, extract, filter,
//     and project rows of the virtual table.
package core

import (
	"fmt"
	"path/filepath"
	"sync"

	"datavirt/internal/afc"
	"datavirt/internal/extractor"
	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// Service is a compiled data service for one virtualized dataset.
// It is safe for concurrent queries.
type Service struct {
	desc     *metadata.Descriptor
	plan     *afc.Plan
	registry *filter.Registry
	resolver extractor.Resolver

	mu       sync.Mutex
	idxCache map[string]*index.ChunkIndex
}

// Open loads the descriptor at descPath and compiles a service whose
// data files live under dataRoot in the canonical layout
// dataRoot/<node>/<dir-path>/<file>.
func Open(descPath, dataRoot string) (*Service, error) {
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		return nil, err
	}
	return Compile(d, NodeResolver(dataRoot))
}

// NodeResolver resolves segment files under root/<node>/<file>.
func NodeResolver(root string) extractor.Resolver {
	return func(node, file string) (string, error) {
		return filepath.Join(gen.NodePath(root, node), filepath.FromSlash(file)), nil
	}
}

// Compile builds a service from a parsed descriptor and a file
// resolver. All meta-data analysis happens here, before any query.
func Compile(d *metadata.Descriptor, resolver extractor.Resolver) (*Service, error) {
	plan, err := afc.Compile(d)
	if err != nil {
		return nil, err
	}
	return &Service{
		desc:     d,
		plan:     plan,
		registry: filter.NewRegistry(),
		resolver: resolver,
		idxCache: make(map[string]*index.ChunkIndex),
	}, nil
}

// Descriptor returns the parsed descriptor.
func (s *Service) Descriptor() *metadata.Descriptor { return s.desc }

// Plan returns the compiled AFC plan.
func (s *Service) Plan() *afc.Plan { return s.plan }

// Schema returns the virtual table's schema.
func (s *Service) Schema() *schema.Schema { return s.plan.Schema }

// TableName returns the virtual table's name (the storage section name).
func (s *Service) TableName() string { return s.desc.Storage.DatasetName }

// Filters returns the service's filter registry; callers may register
// additional user-defined filters before querying.
func (s *Service) Filters() *filter.Registry { return s.registry }

// loadIndex memoizes chunk-index files across queries.
func (s *Service) loadIndex(fi metadata.FileInstance) (*index.ChunkIndex, error) {
	key := fi.Node() + "\x00" + fi.Path()
	s.mu.Lock()
	defer s.mu.Unlock()
	if ix, ok := s.idxCache[key]; ok {
		return ix, nil
	}
	path, err := s.resolver(fi.Node(), fi.Path())
	if err != nil {
		return nil, err
	}
	ix, err := index.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.idxCache[key] = ix
	return ix, nil
}

// Prepared is a planned query: SQL resolved against the schema, ranges
// extracted, predicate compiled, and aligned file chunks computed.
type Prepared struct {
	svc *Service
	// Query is the parsed statement.
	Query *sqlparser.Query
	// Cols are the output column names (SELECT list, * expanded).
	Cols []string
	// OutSchema is the schema of emitted rows.
	OutSchema *schema.Schema
	// Ranges are the per-attribute constraint sets driving the index.
	Ranges query.Ranges
	// AFCs are the aligned file chunks the query must read.
	AFCs []afc.AFC

	work    []schema.Attribute
	workIdx map[string]int
	pred    query.Predicate
	project []int // work index per output column
}

// Prepare parses, validates and plans a SQL query.
func (s *Service) Prepare(sql string) (*Prepared, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.PrepareParsed(q)
}

// PrepareParsed plans an already-parsed query.
func (s *Service) PrepareParsed(q *sqlparser.Query) (*Prepared, error) {
	sch := s.Schema()
	if q.From != s.TableName() && q.From != sch.Name() {
		return nil, fmt.Errorf("core: unknown table %q (service provides %q)", q.From, s.TableName())
	}
	cols, err := query.Validate(q, sch, s.registry)
	if err != nil {
		return nil, err
	}
	p := &Prepared{svc: s, Query: q, Cols: cols}

	// Working row layout: every attribute the predicate or projection
	// touches, in schema order.
	neededSet := map[string]bool{}
	for _, c := range cols {
		neededSet[c] = true
	}
	for _, c := range sqlparser.ExprColumns(q.Where) {
		neededSet[c] = true
	}
	p.workIdx = map[string]int{}
	var neededNames []string
	for _, a := range sch.Attrs() {
		if neededSet[a.Name] {
			p.workIdx[a.Name] = len(p.work)
			p.work = append(p.work, a)
			neededNames = append(neededNames, a.Name)
		}
	}
	p.OutSchema, err = sch.Project(cols)
	if err != nil {
		return nil, err
	}
	p.project = make([]int, len(cols))
	for i, c := range cols {
		p.project[i] = p.workIdx[c]
	}

	p.Ranges = query.ExtractRanges(q.Where)
	p.pred, err = query.CompilePredicate(q.Where, func(name string) (int, bool) {
		i, ok := p.workIdx[name]
		return i, ok
	}, s.registry)
	if err != nil {
		return nil, err
	}
	p.AFCs, err = s.plan.Generate(p.Ranges, neededNames, s.loadIndex)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Options tune query execution.
type Options struct {
	// Parallel extracts AFCs with a worker pool.
	Parallel bool
	// Workers bounds the pool (0 = default).
	Workers int
	// NodeFilter restricts execution to AFCs whose segments all live on
	// the given node (used by cluster node servers). Empty = all.
	NodeFilter string
	// BlockBytes bounds per-segment read buffers.
	BlockBytes int
	// Coalesce merges contiguous aligned file chunks before extraction
	// (see afc.Coalesce), trading chunk count for larger reads.
	Coalesce bool
}

// Run executes the prepared query, emitting projected rows. The emitted
// slice is reused; copy to retain.
func (p *Prepared) Run(opt Options, emit func(row table.Row) error) (extractor.Stats, error) {
	afcs := p.AFCs
	if opt.NodeFilter != "" {
		afcs = FilterByNode(afcs, opt.NodeFilter)
	}
	if opt.Coalesce {
		afcs = afc.Coalesce(afcs)
	}
	inner := emit
	if !p.identityProjection() {
		out := make(table.Row, len(p.Cols))
		inner = func(row table.Row) error {
			for i, wi := range p.project {
				out[i] = row[wi]
			}
			return emit(out)
		}
	}
	xopt := extractor.Options{
		Cols: p.work, Pred: p.pred,
		BlockBytes: opt.BlockBytes, Workers: opt.Workers,
	}
	if opt.Parallel {
		return extractor.RunParallel(afcs, p.svc.resolver, xopt, inner)
	}
	return extractor.Run(afcs, p.svc.resolver, xopt, inner)
}

// identityProjection reports whether the working row already is the
// output row (SELECT * or a projection matching the working order), in
// which case the per-row copy is skipped.
func (p *Prepared) identityProjection() bool {
	if len(p.project) != len(p.work) {
		return false
	}
	for i, wi := range p.project {
		if wi != i {
			return false
		}
	}
	return true
}

// Collect runs the query and returns all rows (copied).
func (p *Prepared) Collect(opt Options) ([]table.Row, extractor.Stats, error) {
	var rows []table.Row
	stats, err := p.Run(opt, func(r table.Row) error {
		rows = append(rows, append(table.Row(nil), r...))
		return nil
	})
	return rows, stats, err
}

// Query is the one-call convenience: prepare, run sequentially, collect.
func (s *Service) Query(sql string) ([]table.Row, error) {
	p, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	rows, _, err := p.Collect(Options{})
	return rows, err
}

// FilterByNode keeps the AFCs homed on node: every segment must live
// there, and AFCs without segments (projections of purely implicit
// attributes) belong to their recorded home node, so each chunk is
// served by exactly one node across the cluster.
func FilterByNode(afcs []afc.AFC, node string) []afc.AFC {
	var out []afc.AFC
	for _, a := range afcs {
		if a.Node != node {
			continue
		}
		all := true
		for _, seg := range a.Segments {
			if seg.Node != node {
				all = false
				break
			}
		}
		if all {
			out = append(out, a)
		}
	}
	return out
}

// SplitByNode partitions AFCs by the node holding them, failing on any
// AFC whose segments span nodes (such chunks cannot be dispatched to a
// single node server; co-locate aligned files when distributing data).
func SplitByNode(afcs []afc.AFC) (map[string][]afc.AFC, error) {
	out := map[string][]afc.AFC{}
	for _, a := range afcs {
		node := a.Node
		for _, seg := range a.Segments {
			if seg.Node != node {
				return nil, fmt.Errorf("core: aligned file chunk spans nodes %s and %s: %s",
					node, seg.Node, a.String())
			}
		}
		out[node] = append(out[node], a)
	}
	return out, nil
}

// Nodes returns the distinct node names of the service's storage
// directories, in DIR order.
func (s *Service) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range s.desc.Storage.Dirs {
		if !seen[d.Node] {
			seen[d.Node] = true
			out = append(out, d.Node)
		}
	}
	return out
}
