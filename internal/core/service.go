// Package core is the public engine of datavirt: the automatic data
// virtualization tool of Weng et al. (HPDC 2004). It ties the pieces
// together in the paper's two-phase design:
//
//  1. Open/Compile — performed once per descriptor: parse the meta-data,
//     enumerate and instantiate every file layout, and build the
//     specialized index and extraction machinery (the run-time analogue
//     of the paper's generated code; internal/codegen emits equivalent
//     Go source).
//  2. Query — performed per query with no code generation or meta-data
//     reprocessing: parse SQL, extract per-attribute ranges, compute
//     aligned file chunks via the index functions, extract, filter,
//     and project rows of the virtual table.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"datavirt/internal/afc"
	"datavirt/internal/cache"
	"datavirt/internal/extractor"
	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/obs"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sparse"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// Service is a compiled data service for one virtualized dataset.
// It is safe for concurrent queries.
type Service struct {
	desc     *metadata.Descriptor
	plan     *afc.Plan
	registry *filter.Registry
	resolver extractor.Resolver

	mu       sync.Mutex
	idxCache map[string]*index.ChunkIndex //dvlint:guardedby mu
	scCache  map[string]*sidecarEntry     //dvlint:guardedby mu
	idxGen   uint64                       //dvlint:guardedby mu (bumped by InvalidatePlans; fences stale installs)

	cmu        sync.Mutex
	blockCache *cache.Cache //dvlint:guardedby cmu

	pmu   sync.Mutex
	plans *planCache //dvlint:guardedby pmu
}

// Open loads the descriptor at descPath and compiles a service whose
// data files live under dataRoot in the canonical layout
// dataRoot/<node>/<dir-path>/<file>.
func Open(descPath, dataRoot string) (*Service, error) {
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		return nil, err
	}
	return Compile(d, NodeResolver(dataRoot))
}

// NodeResolver resolves segment files under root/<node>/<file>.
func NodeResolver(root string) extractor.Resolver {
	return func(node, file string) (string, error) {
		return filepath.Join(gen.NodePath(root, node), filepath.FromSlash(file)), nil
	}
}

// Compile builds a service from a parsed descriptor and a file
// resolver. All meta-data analysis happens here, before any query.
func Compile(d *metadata.Descriptor, resolver extractor.Resolver) (*Service, error) {
	plan, err := afc.Compile(d)
	if err != nil {
		return nil, err
	}
	return &Service{
		desc:     d,
		plan:     plan,
		registry: filter.NewRegistry(),
		resolver: resolver,
		idxCache: make(map[string]*index.ChunkIndex),
		scCache:  make(map[string]*sidecarEntry),
		// The node-local block cache, shared by every query this service
		// runs (the paper's data source service sits on exactly this
		// boundary). Defaults: 64 MiB, 256 KiB blocks, no readahead — so
		// compiling a service starts no goroutines.
		blockCache: cache.New(cache.Config{}),
		// The semantic plan cache memoizes AFC lists across queries,
		// keyed by fingerprint rather than SQL text (see afc.Fingerprint).
		plans: newPlanCache(PlanCacheConfig{}),
	}, nil
}

// SetCacheConfig replaces the service's block cache. Call it before
// running queries (typically right after Compile/Open, from CLI
// flags); the previous cache is closed and its contents discarded.
// A Config with Disabled set turns block caching off while keeping
// handle pooling.
func (s *Service) SetCacheConfig(cfg cache.Config) {
	s.cmu.Lock()
	old := s.blockCache
	s.blockCache = cache.New(cfg)
	s.cmu.Unlock()
	if old != nil {
		old.Close()
	}
	// A cache swap marks a configuration boundary; drop memoized plans
	// and chunk indexes along with the blocks so no layer can serve
	// state from before the swap.
	s.InvalidatePlans()
}

// SetPlanCacheConfig replaces the service's semantic plan cache. Call
// it before running queries (typically right after Compile/Open, from
// CLI flags); previously cached plans are discarded.
func (s *Service) SetPlanCacheConfig(cfg PlanCacheConfig) {
	s.pmu.Lock()
	s.plans = newPlanCache(cfg)
	s.pmu.Unlock()
}

// PlanCacheStats snapshots the plan cache's counters.
func (s *Service) PlanCacheStats() PlanCacheStats {
	return s.planCacheRef().stats()
}

// InvalidatePlans drops every memoized plan and chunk index and bumps
// the plan cache's generation counter, so in-flight plan builds cannot
// install entries that survive the invalidation. Call it when the data
// under the descriptor changes.
func (s *Service) InvalidatePlans() {
	s.mu.Lock()
	s.idxCache = make(map[string]*index.ChunkIndex)
	s.scCache = make(map[string]*sidecarEntry)
	s.idxGen++
	s.mu.Unlock()
	s.planCacheRef().invalidate()
}

// planCacheRef returns the current plan cache.
func (s *Service) planCacheRef() *planCache {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.plans
}

// CacheStats snapshots the shared block cache's counters.
func (s *Service) CacheStats() cache.Stats {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.blockCache.Stats()
}

// blockSource returns the cache queries should extract through.
func (s *Service) blockSource() cache.Source {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.blockCache
}

// Close releases the service's pooled file handles and cached blocks
// and stops its readahead worker, if any. Queries must have finished.
// The cache shutdown (which joins the readahead worker) runs outside
// s.cmu so a concurrent CacheStats cannot deadlock against it.
func (s *Service) Close() error {
	s.cmu.Lock()
	bc := s.blockCache
	s.cmu.Unlock()
	bc.Close()
	return nil
}

// Descriptor returns the parsed descriptor.
func (s *Service) Descriptor() *metadata.Descriptor { return s.desc }

// Plan returns the compiled AFC plan.
func (s *Service) Plan() *afc.Plan { return s.plan }

// Schema returns the virtual table's schema.
func (s *Service) Schema() *schema.Schema { return s.plan.Schema }

// TableName returns the virtual table's name (the storage section name).
func (s *Service) TableName() string { return s.desc.Storage.DatasetName }

// Filters returns the service's filter registry; callers may register
// additional user-defined filters before querying.
func (s *Service) Filters() *filter.Registry { return s.registry }

// loadIndex memoizes chunk-index files across queries. The disk read
// happens outside s.mu (which also guards every other index lookup);
// two queries racing on the same cold key may both read the file, and
// the second install wins — identical content, so that is benign. A
// read that straddles InvalidatePlans is fenced by the generation
// counter: its result is returned but not installed.
func (s *Service) loadIndex(fi metadata.FileInstance) (*index.ChunkIndex, error) {
	key := fi.Node() + "\x00" + fi.Path()
	s.mu.Lock()
	ix, ok := s.idxCache[key]
	gen := s.idxGen
	s.mu.Unlock()
	if ok {
		return ix, nil
	}
	path, err := s.resolver(fi.Node(), fi.Path())
	if err != nil {
		return nil, err
	}
	ix, err = index.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if gen == s.idxGen {
		s.idxCache[key] = ix
	}
	s.mu.Unlock()
	return ix, nil
}

// sidecarEntry memoizes one sparse-sidecar load. A missing sidecar is
// the normal case for unindexed datasets and caches as {nil, ""}; an
// unusable one (corrupt, stale, version-mismatched) caches its reason
// so every run can report the fallback deterministically.
type sidecarEntry struct {
	sc     *sparse.Sidecar
	errMsg string
}

// loadSidecar memoizes sparse sidecars across queries, mirroring
// loadIndex: I/O outside s.mu, generation-fenced install so a load
// straddling InvalidatePlans cannot resurrect pre-invalidation state.
// The sidecar bytes are read through the service's block cache, so hot
// sidecars cost no filesystem reads.
func (s *Service) loadSidecar(node, file string) *sidecarEntry {
	key := node + "\x00" + file
	s.mu.Lock()
	e, ok := s.scCache[key]
	gen := s.idxGen
	s.mu.Unlock()
	if ok {
		return e
	}
	e = s.readSidecar(node, file)
	s.mu.Lock()
	if gen == s.idxGen {
		s.scCache[key] = e
	}
	s.mu.Unlock()
	return e
}

func (s *Service) readSidecar(node, file string) *sidecarEntry {
	dataPath, err := s.resolver(node, file)
	if err != nil {
		return &sidecarEntry{}
	}
	scPath := sparse.SidecarPath(dataPath)
	scInfo, err := os.Stat(scPath)
	if err != nil {
		return &sidecarEntry{} // no sidecar: silent full scan
	}
	r, err := s.blockSource().Open(scPath)
	if err != nil {
		return &sidecarEntry{errMsg: err.Error()}
	}
	defer r.Release()
	sc, err := sparse.Decode(r, scInfo.Size())
	if err != nil {
		return &sidecarEntry{errMsg: err.Error()}
	}
	if dataInfo, err := os.Stat(dataPath); err == nil && dataInfo.Size() != sc.DataBytes {
		return &sidecarEntry{errMsg: fmt.Sprintf("stale: built for %d data bytes, file has %d",
			sc.DataBytes, dataInfo.Size())}
	}
	return &sidecarEntry{sc: sc}
}

// Prepared is a planned query: SQL resolved against the schema, ranges
// extracted, predicate compiled, and aligned file chunks computed.
type Prepared struct {
	svc *Service
	// Query is the parsed statement.
	Query *sqlparser.Query
	// Cols are the output column names (SELECT list, * expanded).
	Cols []string
	// OutSchema is the schema of emitted rows.
	OutSchema *schema.Schema
	// Ranges are the per-attribute constraint sets driving the index.
	Ranges query.Ranges
	// AFCs are the aligned file chunks the query must read.
	AFCs []afc.AFC
	// Agg is the aggregate plan for GROUP BY / aggregate-function
	// queries, nil for row queries. Aggregate queries evaluate partial
	// aggregates directly over extracted blocks — no row
	// materialization — and finalize locally (RunContext) or at the
	// cluster coordinator after merging per-leg partials.
	Agg *query.AggPlan

	work    []schema.Attribute
	workIdx map[string]int
	pred    query.Predicate
	vecPred *query.VectorPredicate
	project []int // work index per output column

	sqlText   string        // query text reported to tracers
	planTime  time.Duration // wall time of the plan stage
	indexTime time.Duration // wall time of the index stage (0 on a plan-cache hit)

	planCacheHits   int64 // 1 when the AFC list came from the plan cache
	planCacheMisses int64 // 1 when this prepare built (or waited on a failed build of) the AFC list
}

// Prepare parses, validates and plans a SQL query with a background
// context; it is the convenience form of PrepareContext.
func (s *Service) Prepare(sql string) (*Prepared, error) {
	return s.PrepareContext(context.Background(), sql)
}

// PrepareContext parses, validates and plans a SQL query. The plan and
// index stages are reported to the context's obs.Tracer and their wall
// times recorded on the returned Prepared (surfaced later through
// Rows.Stats).
func (s *Service) PrepareContext(ctx context.Context, sql string) (*Prepared, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.PrepareParsedContext(ctx, q)
}

// PrepareParsed plans an already-parsed query; the convenience form of
// PrepareParsedContext.
func (s *Service) PrepareParsed(q *sqlparser.Query) (*Prepared, error) {
	return s.PrepareParsedContext(context.Background(), q)
}

// PrepareParsedContext plans an already-parsed query.
func (s *Service) PrepareParsedContext(ctx context.Context, q *sqlparser.Query) (*Prepared, error) {
	tracer := obs.TracerFrom(ctx)
	sqlText := q.String()
	endPlan := obs.Begin(tracer, sqlText, obs.StagePlan)
	sch := s.Schema()
	if q.From != s.TableName() && q.From != sch.Name() {
		err := fmt.Errorf("core: unknown table %q (service provides %q)", q.From, s.TableName())
		endPlan(err)
		return nil, err
	}
	cols, err := query.Validate(q, sch, s.registry)
	if err != nil {
		endPlan(err)
		return nil, err
	}
	p := &Prepared{svc: s, Query: q, Cols: cols, sqlText: sqlText}

	if q.Aggregate() {
		p.Agg, err = query.BuildAggPlan(q, sch)
		if err != nil {
			endPlan(err)
			return nil, err
		}
		p.Cols = p.Agg.Labels()
	}

	// Working row layout: every attribute the predicate, projection or
	// aggregate touches, in schema order.
	neededSet := map[string]bool{}
	if p.Agg != nil {
		for _, c := range p.Agg.InputColumns() {
			neededSet[c] = true
		}
	} else {
		for _, c := range cols {
			neededSet[c] = true
		}
	}
	for _, c := range sqlparser.ExprColumns(q.Where) {
		neededSet[c] = true
	}
	p.workIdx = map[string]int{}
	var neededNames []string
	for _, a := range sch.Attrs() {
		if neededSet[a.Name] {
			p.workIdx[a.Name] = len(p.work)
			p.work = append(p.work, a)
			neededNames = append(neededNames, a.Name)
		}
	}
	lookup := func(name string) (int, bool) {
		i, ok := p.workIdx[name]
		return i, ok
	}
	if p.Agg != nil {
		p.OutSchema = p.Agg.OutSchema()
		if err := p.Agg.Bind(lookup); err != nil {
			endPlan(err)
			return nil, err
		}
	} else {
		p.OutSchema, err = sch.Project(cols)
		if err != nil {
			endPlan(err)
			return nil, err
		}
		p.project = make([]int, len(cols))
		for i, c := range cols {
			p.project[i] = p.workIdx[c]
		}
	}

	// A nil WHERE stays a nil Pred (not TruePredicate): the extractor
	// takes "no predicate" as license for the batch fast path.
	if q.Where != nil {
		p.pred, err = query.CompilePredicate(q.Where, lookup, s.registry)
		if err != nil {
			endPlan(err)
			return nil, err
		}
	}
	// The same WHERE clause compiled for batch (vectorized) evaluation;
	// the extractor prefers it unless Options.ScalarFilter forces the
	// per-row path.
	p.vecPred, err = query.CompileVectorPredicate(q.Where, lookup, s.registry)
	if err != nil {
		endPlan(err)
		return nil, err
	}
	// Range extraction is part of the plan's semantic identity (it
	// feeds the cache key), so it belongs to the plan stage; the index
	// stage below is pure AFC generation and is skipped entirely on a
	// plan-cache hit.
	p.Ranges = query.ExtractRanges(q.Where)
	p.planTime = endPlan(nil)

	// Index stage: aligned-file-chunk generation (the run-time analogue
	// of the paper's generated index functions), memoized across queries
	// by semantic fingerprint. Hits and single-flight waiters skip the
	// stage and leave indexTime at zero; the builder times it as usual.
	key := afc.Fingerprint(s.TableName(), p.Ranges, neededNames)
	pc := s.planCacheRef()
	var hit bool
	p.AFCs, hit, err = pc.getOrBuild(key, func() ([]afc.AFC, error) {
		endIndex := obs.Begin(tracer, sqlText, obs.StageIndex)
		afcs, gerr := s.plan.Generate(p.Ranges, neededNames, s.loadIndex)
		p.indexTime = endIndex(gerr)
		return afcs, gerr
	})
	if err != nil {
		return nil, err
	}
	if !pc.cfg.Disabled {
		if hit {
			p.planCacheHits = 1
		} else {
			p.planCacheMisses = 1
		}
		obs.ReportPlanCache(tracer, sqlText, p.planCacheHits, p.planCacheMisses)
	}
	return p, nil
}

// Options tune query execution.
type Options struct {
	// Parallel extracts AFCs with a worker pool.
	Parallel bool
	// Workers bounds the pool (0 = default).
	Workers int
	// NodeFilter restricts execution to AFCs whose segments all live on
	// the given node (used by cluster node servers). Empty = all.
	NodeFilter string
	// BlockBytes bounds per-segment read buffers.
	BlockBytes int
	// Coalesce merges contiguous aligned file chunks before extraction
	// (see afc.Coalesce), trading chunk count for larger reads.
	Coalesce bool
	// NoCache bypasses the service's shared block cache for this query;
	// reads go straight to the filesystem (handles are still pooled for
	// the duration of the run).
	NoCache bool
	// NoSparse disables sparse-sidecar data skipping for this query;
	// every block of every selected chunk is read and filtered. Pruning
	// never changes result rows, so this is a diagnostic knob.
	NoSparse bool
	// ScalarFilter forces per-row predicate evaluation instead of the
	// vectorized (batch) path. The two paths select identical rows, so
	// this is a diagnostic/benchmark knob.
	ScalarFilter bool
}

// Validate rejects nonsensical option values with explicit errors
// instead of silently falling back to defaults. The zero Options value
// is always valid.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: Options.Workers = %d is negative; use 0 for the default pool size", o.Workers)
	}
	if o.BlockBytes < 0 {
		return fmt.Errorf("core: Options.BlockBytes = %d is negative; use 0 for the default block size", o.BlockBytes)
	}
	return nil
}

// Run executes the prepared query with a background context; it is the
// convenience form of RunContext.
func (p *Prepared) Run(opt Options, emit func(row table.Row) error) (extractor.Stats, error) {
	return p.RunContext(context.Background(), opt, emit)
}

// RunContext executes the prepared query, emitting projected rows
// under the reuse contract of extractor.EmitFunc (the slice is reused;
// copy to retain). Cancelling ctx stops extraction between block reads
// and returns the context's error; the extract and filter stages are
// reported to the context's obs.Tracer. For a streaming cursor over
// the same execution, use QueryContext.
func (p *Prepared) RunContext(ctx context.Context, opt Options, emit func(row table.Row) error) (extractor.Stats, error) {
	if err := opt.Validate(); err != nil {
		return extractor.Stats{}, err
	}
	if p.Agg != nil {
		// Aggregate query: fold blocks into partials, finalize locally,
		// emit the (small) aggregated result rows.
		state, stats, err := p.RunAggPartialContext(ctx, opt)
		if err != nil {
			return stats, err
		}
		for _, row := range state.Finalize() {
			if err := emit(row); err != nil {
				return stats, err
			}
		}
		return stats, nil
	}
	afcs := p.execAFCs(opt)
	inner := emit
	if !p.identityProjection() {
		out := make(table.Row, len(p.Cols))
		inner = func(row table.Row) error {
			for i, wi := range p.project {
				out[i] = row[wi]
			}
			return emit(out)
		}
	}
	tracer := obs.TracerFrom(ctx)
	xopt := p.extractorOptions(tracer, opt)
	endExtract := obs.Begin(tracer, p.sqlText, obs.StageExtract)
	var stats extractor.Stats
	var err error
	if opt.Parallel {
		stats, err = extractor.RunParallelContext(ctx, afcs, p.svc.resolver, xopt, inner)
	} else {
		stats, err = extractor.RunContext(ctx, afcs, p.svc.resolver, xopt, inner)
	}
	endExtract(err)
	tracer.StageEnd(p.sqlText, obs.StageFilter, time.Duration(stats.FilterNS), err)
	p.reportRun(tracer, stats)
	return stats, err
}

// RunAggPartialContext executes an aggregate query up to — but not
// including — finalization: every block is extracted, filtered and
// folded into partial aggregates, and the un-finalized state is
// returned. Cluster node legs use this to ship partials to the
// coordinator (which merges states from all legs before finalizing);
// local execution goes through RunContext, which finalizes immediately.
// It fails if the prepared query is not an aggregate.
func (p *Prepared) RunAggPartialContext(ctx context.Context, opt Options) (*query.AggState, extractor.Stats, error) {
	if p.Agg == nil {
		return nil, extractor.Stats{}, fmt.Errorf("core: %q is not an aggregate query", p.sqlText)
	}
	if err := opt.Validate(); err != nil {
		return nil, extractor.Stats{}, err
	}
	afcs := p.execAFCs(opt)
	tracer := obs.TracerFrom(ctx)
	xopt := p.extractorOptions(tracer, opt)
	endExtract := obs.Begin(tracer, p.sqlText, obs.StageExtract)
	var state *query.AggState
	var stats extractor.Stats
	var err error
	if opt.Parallel {
		state, stats, err = extractor.RunAggregateParallelContext(ctx, afcs, p.svc.resolver, xopt, p.Agg)
	} else {
		state, stats, err = extractor.RunAggregateContext(ctx, afcs, p.svc.resolver, xopt, p.Agg)
	}
	endExtract(err)
	tracer.StageEnd(p.sqlText, obs.StageFilter, time.Duration(stats.FilterNS), err)
	tracer.StageEnd(p.sqlText, obs.StageAggregate, time.Duration(stats.AggNS), err)
	p.reportRun(tracer, stats)
	return state, stats, err
}

// execAFCs selects the aligned file chunks one execution reads, after
// node filtering and coalescing.
func (p *Prepared) execAFCs(opt Options) []afc.AFC {
	afcs := p.AFCs
	if opt.NodeFilter != "" {
		afcs = FilterByNode(afcs, opt.NodeFilter)
	}
	if opt.Coalesce {
		afcs = afc.Coalesce(afcs)
	}
	return afcs
}

// extractorOptions assembles the extractor's options for one execution:
// working layout, both predicate forms, block cache and sparse-sidecar
// provider.
func (p *Prepared) extractorOptions(tracer obs.Tracer, opt Options) extractor.Options {
	xopt := extractor.Options{
		Cols: p.work, Pred: p.pred, VecPred: p.vecPred, ScalarFilter: opt.ScalarFilter,
		BlockBytes: opt.BlockBytes, Workers: opt.Workers,
	}
	if !opt.NoCache {
		xopt.Source = p.svc.blockSource()
	}
	if !opt.NoSparse && len(p.Ranges) > 0 {
		xopt.Ranges = p.Ranges
		// The provider is called from extraction workers; the run-level
		// seen set reports each unusable sidecar once per run.
		var sparseMu sync.Mutex
		seen := map[string]bool{}
		xopt.Sparse = func(node, file string) *sparse.Sidecar {
			e := p.svc.loadSidecar(node, file)
			if e.errMsg != "" {
				key := node + "\x00" + file
				sparseMu.Lock()
				first := !seen[key]
				seen[key] = true
				sparseMu.Unlock()
				if first {
					obs.ReportSparseFallback(tracer, file, e.errMsg)
				}
			}
			return e.sc
		}
	}
	return xopt
}

// reportRun forwards one execution's cache and sparse outcomes to the
// tracer.
func (p *Prepared) reportRun(tracer obs.Tracer, stats extractor.Stats) {
	saved := stats.CacheBytesServed - stats.FSBytesRead
	if saved < 0 {
		saved = 0
	}
	obs.ReportCache(tracer, p.sqlText, stats.CacheHits, stats.CacheMisses, saved)
	obs.ReportSparse(tracer, p.sqlText, stats.BlocksSkipped, stats.SparseIndexHits, stats.SparseIndexMisses)
}

// PrepareStats returns the wall times of the plan and index stages
// recorded when the query was prepared (the cluster coordinator folds
// them into its per-query stats).
func (p *Prepared) PrepareStats() (plan, index time.Duration) {
	return p.planTime, p.indexTime
}

// PlanCacheCounters reports whether this prepare hit or missed the
// semantic plan cache (each is 0 or 1; both 0 when caching is off).
func (p *Prepared) PlanCacheCounters() (hits, misses int64) {
	return p.planCacheHits, p.planCacheMisses
}

// queryStats assembles the per-query observability record from the
// prepare-time timings and one execution's extractor counters.
func (p *Prepared) queryStats(x extractor.Stats, extract time.Duration) obs.QueryStats {
	return obs.QueryStats{
		ChunksPlanned: len(p.AFCs),
		ChunksRead:    x.AFCs,
		BytesRead:     x.BytesRead,
		RowsScanned:   x.RowsScanned,
		RowsEmitted:   x.RowsEmitted,
		RowsFiltered:  x.RowsScanned - x.RowsEmitted,

		CacheHits:        x.CacheHits,
		CacheMisses:      x.CacheMisses,
		FSBytesRead:      x.FSBytesRead,
		CacheBytesServed: x.CacheBytesServed,
		MmapBlocksServed: x.MmapBlocksServed,
		MmapRemaps:       x.MmapRemaps,

		PlanCacheHits:   p.planCacheHits,
		PlanCacheMisses: p.planCacheMisses,

		BlocksSkipped:     x.BlocksSkipped,
		SparseIndexHits:   x.SparseIndexHits,
		SparseIndexMisses: x.SparseIndexMisses,

		AggPushedQueries: x.AggPushedQueries,
		AggPartialGroups: x.AggPartialGroups,
		VectorBatches:    x.VectorBatches,

		PlanTime:    p.planTime,
		IndexTime:   p.indexTime,
		ExtractTime: extract,
		FilterTime:  time.Duration(x.FilterNS),
		AggTime:     time.Duration(x.AggNS),
	}
}

// identityProjection reports whether the working row already is the
// output row (SELECT * or a projection matching the working order), in
// which case the per-row copy is skipped.
func (p *Prepared) identityProjection() bool {
	if len(p.project) != len(p.work) {
		return false
	}
	for i, wi := range p.project {
		if wi != i {
			return false
		}
	}
	return true
}

// Collect runs the query and returns all rows (copied); the
// convenience form of CollectContext.
func (p *Prepared) Collect(opt Options) ([]table.Row, extractor.Stats, error) {
	return p.CollectContext(context.Background(), opt)
}

// CollectContext runs the query and returns all rows (copied). Large
// results are better consumed incrementally through QueryContext's
// Rows cursor, which does not materialize the result set.
func (p *Prepared) CollectContext(ctx context.Context, opt Options) ([]table.Row, extractor.Stats, error) {
	var rows []table.Row
	stats, err := p.RunContext(ctx, opt, func(r table.Row) error {
		rows = append(rows, append(table.Row(nil), r...))
		return nil
	})
	return rows, stats, err
}

// Query is the one-call convenience: prepare, run sequentially,
// collect, with a background context.
//
// Deprecated: use QueryContext and iterate the returned cursor (or
// Prepare + CollectContext to materialize); Query cannot be cancelled
// and buffers the entire result set.
func (s *Service) Query(sql string) ([]table.Row, error) {
	p, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	rows, _, err := p.Collect(Options{})
	return rows, err
}

// QueryContext prepares and executes sql, returning a streaming Rows
// cursor — the primary result API: rows are consumed as extraction
// produces them, nothing is materialized, and closing the cursor
// cancels the in-flight query.
func (s *Service) QueryContext(ctx context.Context, sql string) (*Rows, error) {
	return s.QueryContextOptions(ctx, sql, Options{})
}

// QueryContextOptions is QueryContext with explicit execution options
// (parallel extraction, worker count, block size, coalescing).
func (s *Service) QueryContextOptions(ctx context.Context, sql string, opt Options) (*Rows, error) {
	p, err := s.PrepareContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return p.QueryContext(ctx, opt)
}

// FilterByNode keeps the AFCs homed on node: every segment must live
// there, and AFCs without segments (projections of purely implicit
// attributes) belong to their recorded home node, so each chunk is
// served by exactly one node across the cluster.
func FilterByNode(afcs []afc.AFC, node string) []afc.AFC {
	var out []afc.AFC
	for _, a := range afcs {
		if a.Node != node {
			continue
		}
		all := true
		for _, seg := range a.Segments {
			if seg.Node != node {
				all = false
				break
			}
		}
		if all {
			out = append(out, a)
		}
	}
	return out
}

// SplitByNode partitions AFCs by the node holding them, failing on any
// AFC whose segments span nodes (such chunks cannot be dispatched to a
// single node server; co-locate aligned files when distributing data).
func SplitByNode(afcs []afc.AFC) (map[string][]afc.AFC, error) {
	out := map[string][]afc.AFC{}
	for _, a := range afcs {
		node := a.Node
		for _, seg := range a.Segments {
			if seg.Node != node {
				return nil, fmt.Errorf("core: aligned file chunk spans nodes %s and %s: %s",
					node, seg.Node, a.String())
			}
		}
		out[node] = append(out[node], a)
	}
	return out, nil
}

// Nodes returns the distinct node names of the service's storage
// directories, in DIR order.
func (s *Service) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range s.desc.Storage.Dirs {
		if !seen[d.Node] {
			seen[d.Node] = true
			out = append(out, d.Node)
		}
	}
	return out
}

// Replicas returns, for each primary node, the ordered set of nodes
// able to serve that primary's partition — the primary itself first,
// then its standbys. A standby qualifies only if it appears in the
// replica set of EVERY directory the primary owns: a server dispatched
// a partition's legs must be able to read all of its files. With no
// replicated directories the map degenerates to {node: [node]}.
func (s *Service) Replicas() map[string][]string {
	// Intersect the replica sets across each primary's directories.
	counts := map[string]map[string]int{} // primary -> candidate -> #dirs listing it
	dirs := map[string]int{}              // primary -> #dirs it owns
	for _, d := range s.desc.Storage.Dirs {
		dirs[d.Node]++
		m := counts[d.Node]
		if m == nil {
			m = map[string]int{}
			counts[d.Node] = m
		}
		seen := map[string]bool{}
		for _, n := range d.ReplicaNodes() {
			if !seen[n] { // guard against malformed duplicate entries
				seen[n] = true
				m[n]++
			}
		}
	}
	out := make(map[string][]string, len(dirs))
	for _, primary := range s.Nodes() {
		set := []string{primary}
		// Follow the first owned directory's replica order for a
		// deterministic result.
		for _, d := range s.desc.Storage.Dirs {
			if d.Node != primary {
				continue
			}
			for _, n := range d.ReplicaNodes() {
				if n != primary && counts[primary][n] == dirs[primary] {
					set = append(set, n)
				}
			}
			break
		}
		out[primary] = set
	}
	return out
}

// AllNodes returns every node the descriptor names: the primaries in
// DIR order (same as Nodes), then replica-only nodes in order of first
// appearance. A cluster deployment must run a server for each of these.
func (s *Service) AllNodes() []string {
	out := s.Nodes()
	seen := map[string]bool{}
	for _, n := range out {
		seen[n] = true
	}
	for _, d := range s.desc.Storage.Dirs {
		for _, n := range d.ReplicaNodes() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}
