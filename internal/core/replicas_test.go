package core

import (
	"reflect"
	"testing"

	"datavirt/internal/metadata"
)

// replicaDesc parses a storage section with the given DIR lines into a
// descriptor (schema/layout kept minimal and constant).
func replicaDesc(t *testing.T, dirs string) *metadata.Descriptor {
	t.Helper()
	src := `
[IPARS]
TIME = int
SOIL = float

[IparsData]
DatasetDescription = IPARS
` + dirs + `

Dataset "IparsData" {
  DATATYPE { IPARS }
  DATASPACE {
    LOOP TIME 1:4:1 { SOIL }
  }
  DATA { DIR[0]/DATA0 }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReplicasSingleNode(t *testing.T) {
	s := &Service{desc: replicaDesc(t, "DIR[0] = osu0/ipars\nDIR[1] = osu1/ipars")}
	want := map[string][]string{"osu0": {"osu0"}, "osu1": {"osu1"}}
	if got := s.Replicas(); !reflect.DeepEqual(got, want) {
		t.Errorf("Replicas() = %v, want %v", got, want)
	}
	if got := s.AllNodes(); !reflect.DeepEqual(got, []string{"osu0", "osu1"}) {
		t.Errorf("AllNodes() = %v", got)
	}
}

func TestReplicasChained(t *testing.T) {
	s := &Service{desc: replicaDesc(t,
		"DIR[0] = NODES osu0, osu1/ipars\nDIR[1] = NODES osu1, osu2/ipars\nDIR[2] = NODES osu2, osu0/ipars")}
	want := map[string][]string{
		"osu0": {"osu0", "osu1"},
		"osu1": {"osu1", "osu2"},
		"osu2": {"osu2", "osu0"},
	}
	if got := s.Replicas(); !reflect.DeepEqual(got, want) {
		t.Errorf("Replicas() = %v, want %v", got, want)
	}
	if got := s.AllNodes(); !reflect.DeepEqual(got, []string{"osu0", "osu1", "osu2"}) {
		t.Errorf("AllNodes() = %v", got)
	}
}

// TestReplicasIntersection: a standby must replicate every directory a
// primary owns before it can serve that primary's partition.
func TestReplicasIntersection(t *testing.T) {
	s := &Service{desc: replicaDesc(t,
		"DIR[0] = NODES osu0, osu1, osu2/a\nDIR[1] = NODES osu0, osu2/b\nDIR[2] = osu1/c")}
	got := s.Replicas()
	// osu1 replicates DIR[0] but not DIR[1], so only osu2 can stand in
	// for osu0.
	if want := []string{"osu0", "osu2"}; !reflect.DeepEqual(got["osu0"], want) {
		t.Errorf("Replicas()[osu0] = %v, want %v", got["osu0"], want)
	}
	if want := []string{"osu1"}; !reflect.DeepEqual(got["osu1"], want) {
		t.Errorf("Replicas()[osu1] = %v, want %v", got["osu1"], want)
	}
}

// TestAllNodesReplicaOnly: a standby that is primary of nothing still
// appears in AllNodes (after the primaries) but not in Nodes.
func TestAllNodesReplicaOnly(t *testing.T) {
	s := &Service{desc: replicaDesc(t, "DIR[0] = NODES osu0, standby/ipars")}
	if got := s.Nodes(); !reflect.DeepEqual(got, []string{"osu0"}) {
		t.Errorf("Nodes() = %v", got)
	}
	if got := s.AllNodes(); !reflect.DeepEqual(got, []string{"osu0", "standby"}) {
		t.Errorf("AllNodes() = %v", got)
	}
	if want := []string{"osu0", "standby"}; !reflect.DeepEqual(s.Replicas()["osu0"], want) {
		t.Errorf("Replicas()[osu0] = %v, want %v", s.Replicas()["osu0"], want)
	}
}
