package core

import (
	"testing"

	"datavirt/internal/gen"
	"datavirt/internal/metadata"
)

// TestStridedLoopsEndToEnd exercises LOOP steps greater than one: the
// dataset stores every third time step, so query ranges must clip to
// the lattice and implicit TIME values must land on it.
func TestStridedLoopsEndToEnd(t *testing.T) {
	src := `
[S]
T = int
G = int
A = float

[StrideData]
DatasetDescription = S
DIR[0] = node0/d

Dataset "StrideData" {
  DATATYPE { S }
  DATAINDEX { T }
  DATASPACE {
    LOOP T 0:18:3 {
      LOOP G 0:4:1 { A }
    }
  }
  DATA { DIR[0]/f }
}
`
	d, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	value := func(attr string, at map[string]int64) float64 {
		return float64(at["T"]*100 + at["G"])
	}
	if err := gen.Materialize(d, root, value); err != nil {
		t.Fatal(err)
	}
	svc, err := Compile(d, NodeResolver(root))
	if err != nil {
		t.Fatal(err)
	}

	// Full scan: 7 lattice steps × 5 grid points.
	rows, err := svc.Query("SELECT * FROM StrideData")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 35 {
		t.Fatalf("full scan rows = %d, want 35", len(rows))
	}
	seenT := map[int64]bool{}
	for _, r := range rows {
		tv := r[0].AsInt()
		if tv%3 != 0 || tv < 0 || tv > 18 {
			t.Fatalf("off-lattice TIME %d", tv)
		}
		seenT[tv] = true
		if want := float64(tv*100 + r[1].AsInt()); r[2].AsFloat() != want {
			t.Fatalf("A = %v, want %g", r[2], want)
		}
	}
	if len(seenT) != 7 {
		t.Errorf("distinct T = %d, want 7", len(seenT))
	}

	// Range clipping rounds inward to the lattice: T in [4, 13] → {6, 9, 12}.
	rows, err = svc.Query("SELECT T FROM StrideData WHERE T >= 4 AND T <= 13")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*5 {
		t.Fatalf("clipped rows = %d, want 15", len(rows))
	}

	// A point query off the lattice selects nothing.
	rows, err = svc.Query("SELECT T FROM StrideData WHERE T = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("off-lattice point query returned %d rows", len(rows))
	}
	// On the lattice it selects one chunk.
	rows, err = svc.Query("SELECT T FROM StrideData WHERE T = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Errorf("lattice point query returned %d rows", len(rows))
	}
}
