package core

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"datavirt/internal/metadata"
)

// TestBinXEndToEnd writes a raw binary file, describes it with a BinX
// document, and queries the resulting virtual table — the paper's
// claimed interoperability path for single-file binary descriptions.
func TestBinXEndToEnd(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "node0", "data")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// 6 time steps × 4 cells of (SOIL float32, SGAS float32), TIME-major.
	var buf []byte
	for tm := 0; tm < 6; tm++ {
		for g := 0; g < 4; g++ {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(tm)+float32(g)/10))
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(g)))
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "file0.dat"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	binx := `
<binx byteOrder="littleEndian">
  <dataset src="node0/data/file0.dat" name="BinxDemo">
    <arrayFixed>
      <dim name="TIME" count="6"/>
      <dim name="GRID" count="4"/>
      <struct>
        <float-32 varName="SOIL"/>
        <float-32 varName="SGAS"/>
      </struct>
    </arrayFixed>
  </dataset>
</binx>
`
	binxPath := filepath.Join(root, "demo.binx")
	if err := os.WriteFile(binxPath, []byte(binx), 0o644); err != nil {
		t.Fatal(err)
	}
	// ParseFile auto-detects BinX.
	svc, err := Open(binxPath, root)
	if err != nil {
		t.Fatalf("Open(binx): %v", err)
	}
	rows, err := svc.Query("SELECT TIME, GRID, SOIL FROM BinxDemo WHERE TIME >= 2 AND TIME <= 3 AND SGAS = 1")
	if err != nil {
		t.Fatal(err)
	}
	// TIME ∈ {2,3} × GRID=1 (SGAS == g == 1).
	if len(rows) != 2 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	for i, r := range rows {
		tm := r[0].AsFloat()
		if tm != float64(2+i) || r[1].AsFloat() != 1 {
			t.Errorf("row %d = %v", i, r)
		}
		want := tm + 0.1
		if math.Abs(r[2].AsFloat()-want) > 1e-6 {
			t.Errorf("SOIL = %g, want %g", r[2].AsFloat(), want)
		}
	}
	_ = metadata.IsBinX // keep the import for the detection assertions below
	if !metadata.IsBinX(binx) || metadata.IsBinX("[S]\nA = int\n") {
		t.Error("IsBinX misdetects")
	}
}
