package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"datavirt/internal/afc"
)

// Defaults applied by newPlanCache for zero PlanCacheConfig fields.
const (
	DefaultPlanCacheEntries = 256
	DefaultPlanCacheBytes   = 32 << 20
	defaultPlanShards       = 8
)

// PlanCacheConfig sizes the service's semantic plan cache. The zero
// value gives a 256-entry, 32 MiB cache over 8 shards.
type PlanCacheConfig struct {
	// MaxEntries bounds the number of cached plans (approximate: the
	// budget is split evenly across shards and each shard keeps at
	// least one entry).
	MaxEntries int
	// MaxBytes bounds the estimated resident bytes of cached AFC lists
	// (approximate, like MaxEntries).
	MaxBytes int64
	// Shards is the number of lock domains (default 8).
	Shards int
	// Disabled turns plan caching off: every prepare rebuilds its AFC
	// list and no plan-cache counters are recorded.
	Disabled bool
}

// PlanCacheStats snapshots the plan cache's counters.
type PlanCacheStats struct {
	// Hits and Misses count prepares served from / built into the
	// cache. A prepare that waits on another query's in-flight build
	// counts as a hit: it skipped the index stage.
	Hits   int64
	Misses int64
	// Evictions counts plans dropped under entry or byte pressure.
	Evictions int64
	// Entries and Bytes are the current residency (Bytes estimated).
	Entries int64
	Bytes   int64
}

// planEntry is one resident plan: the aligned-file-chunk list produced
// by the index stage for one semantic fingerprint. afcs is shared by
// every query that hits the entry and must be treated as immutable
// (RunContext only ever derives new slices via FilterByNode/Coalesce).
type planEntry struct {
	key   string
	afcs  []afc.AFC
	bytes int64
	gen   uint64 // descriptor generation at install time
	elem  *list.Element
}

// planFlight is one in-progress plan construction; concurrent prepares
// of the same fingerprint wait on done instead of regenerating.
type planFlight struct {
	done chan struct{}
	afcs []afc.AFC
	err  error
}

// planShard is one lock domain of the plan cache.
type planShard struct {
	mu         sync.Mutex
	entries    map[string]*planEntry  //dvlint:guardedby mu
	flights    map[string]*planFlight //dvlint:guardedby mu
	lru        *list.List             //dvlint:guardedby mu (front = most recent)
	bytes      int64                  //dvlint:guardedby mu
	maxBytes   int64                  // immutable after newPlanCache
	maxEntries int                    // immutable after newPlanCache
}

// planCache memoizes AFC lists across queries, keyed by the semantic
// fingerprint of (table, needed columns, normalized WHERE ranges). It
// follows internal/cache's sharded-LRU + single-flight design; entries
// carry the generation counter current at install time and are dropped
// lazily when it no longer matches (InvalidatePlans bumps it, so
// descriptor-level changes can never serve stale chunks even to
// prepares racing an in-flight build).
type planCache struct {
	cfg    PlanCacheConfig
	shards []planShard
	gen    atomic.Uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newPlanCache(cfg PlanCacheConfig) *planCache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultPlanCacheEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultPlanCacheBytes
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultPlanShards
	}
	c := &planCache{cfg: cfg, shards: make([]planShard, cfg.Shards)}
	perBytes := cfg.MaxBytes / int64(cfg.Shards)
	if perBytes < 1 {
		perBytes = 1
	}
	perEntries := cfg.MaxEntries / cfg.Shards
	if perEntries < 1 {
		perEntries = 1
	}
	for i := range c.shards {
		c.shards[i].entries = map[string]*planEntry{}
		c.shards[i].flights = map[string]*planFlight{}
		c.shards[i].lru = list.New()
		c.shards[i].maxBytes = perBytes
		c.shards[i].maxEntries = perEntries
	}
	return c
}

func (c *planCache) shard(key string) *planShard {
	h := uint64(14695981039346656037) // FNV-1a
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// getOrBuild returns the AFC list for key, building it at most once
// across concurrent prepares. hit reports whether the index stage was
// skipped (resident entry or another prepare's completed build).
func (c *planCache) getOrBuild(key string, build func() ([]afc.AFC, error)) (afcs []afc.AFC, hit bool, err error) {
	if c.cfg.Disabled {
		afcs, err = build()
		return afcs, false, err
	}
	s := c.shard(key)
	gen := c.gen.Load()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if e.gen == gen {
			s.lru.MoveToFront(e.elem)
			s.mu.Unlock()
			c.hits.Add(1)
			return e.afcs, true, nil
		}
		// Stale generation: drop and rebuild.
		s.removeLocked(e)
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			c.misses.Add(1)
			return nil, false, f.err
		}
		c.hits.Add(1)
		return f.afcs, true, nil
	}
	f := &planFlight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.afcs, f.err = build()
	c.misses.Add(1)

	s.mu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		e := &planEntry{key: key, afcs: f.afcs, bytes: planBytes(key, f.afcs), gen: gen}
		if old, ok := s.entries[key]; ok {
			s.removeLocked(old)
		}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += e.bytes
		for (s.bytes > s.maxBytes || len(s.entries) > s.maxEntries) && s.lru.Len() > 1 {
			victim := s.lru.Back().Value.(*planEntry)
			s.removeLocked(victim)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.afcs, false, f.err
}

// removeLocked unlinks e from the shard; callers hold s.mu.
func (s *planShard) removeLocked(e *planEntry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.elem)
	s.bytes -= e.bytes
}

// invalidate bumps the generation counter (so racing builds install
// already-stale entries) and drops every resident plan.
func (c *planCache) invalidate() {
	c.gen.Add(1)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = map[string]*planEntry{}
		s.lru.Init()
		s.bytes = 0
		s.mu.Unlock()
	}
}

func (c *planCache) stats() PlanCacheStats {
	st := PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.entries))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// planBytes estimates the resident size of one cached plan for the
// byte budget: struct headers rounded up generously plus every string
// the AFC list pins.
func planBytes(key string, afcs []afc.AFC) int64 {
	n := int64(len(key)) + 96
	for i := range afcs {
		a := &afcs[i]
		n += 64 + int64(len(a.Node))
		for j := range a.Segments {
			seg := &a.Segments[j]
			n += 96 + int64(len(seg.Node)+len(seg.File))
			for _, at := range seg.Attrs {
				n += 40 + int64(len(at.Name))
			}
		}
		for _, im := range a.Implicits {
			n += 48 + int64(len(im.Name))
		}
		for _, rd := range a.RowDims {
			n += 64 + int64(len(rd.Name))
		}
	}
	return n
}
