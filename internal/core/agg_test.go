package core

import (
	"math"
	"testing"

	"datavirt/internal/query"
	"datavirt/internal/table"
)

// rowsEqual asserts two result sets are identical, including value
// kinds and float bit patterns (aggregate results are deterministic:
// groups arrive sorted and the accumulators are exact).
func rowsEqual(t *testing.T, label string, want, got []table.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			a, b := want[i][j], got[i][j]
			if a.Kind != b.Kind || a.Int != b.Int ||
				math.Float64bits(a.Float) != math.Float64bits(b.Float) {
				t.Fatalf("%s: row %d col %d: got %+v, want %+v", label, i, j, b, a)
			}
		}
	}
}

func TestAggregateQueryAgainstRowOracle(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	sql := "SELECT REL, COUNT(*), SUM(TIME), MIN(SOIL), MAX(SOIL), AVG(SOIL) FROM IparsData WHERE SGAS > 0.3 GROUP BY REL"
	p, err := svc.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"REL", "COUNT(*)", "SUM(TIME)", "MIN(SOIL)", "MAX(SOIL)", "AVG(SOIL)"}
	for i, c := range wantCols {
		if p.Cols[i] != c {
			t.Fatalf("Cols = %v, want %v", p.Cols, wantCols)
		}
	}
	if p.OutSchema.NumAttrs() != len(wantCols) {
		t.Fatalf("out schema = %d attrs", p.OutSchema.NumAttrs())
	}
	got, stats, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.AggPushedQueries != 1 || stats.AggPartialGroups == 0 {
		t.Errorf("agg stats not reported: %+v", stats)
	}
	if stats.VectorBatches == 0 {
		t.Errorf("aggregate did not run vectorized: %+v", stats)
	}
	// Oracle: the plain row path (its own correctness is covered by the
	// projection tests), aggregated by hand in test code.
	rows, err := svc.Query("SELECT REL, TIME, SOIL FROM IparsData WHERE SGAS > 0.3")
	if err != nil {
		t.Fatal(err)
	}
	// RowsEmitted counts rows folded into partials, not result groups.
	if stats.RowsEmitted != int64(len(rows)) {
		t.Errorf("RowsEmitted = %d, want %d matching rows", stats.RowsEmitted, len(rows))
	}
	type acc struct {
		n, sumT  int64
		min, max float64
		sumS     float64
	}
	byRel := map[int64]*acc{}
	for _, r := range rows {
		rel := r[0].AsInt()
		a := byRel[rel]
		if a == nil {
			a = &acc{min: math.Inf(1), max: math.Inf(-1)}
			byRel[rel] = a
		}
		a.n++
		a.sumT += r[1].AsInt()
		s := r[2].AsFloat()
		a.min = math.Min(a.min, s)
		a.max = math.Max(a.max, s)
		a.sumS += s
	}
	if len(got) != len(byRel) {
		t.Fatalf("groups = %d, want %d", len(got), len(byRel))
	}
	for _, g := range got {
		a := byRel[g[0].AsInt()]
		if a == nil {
			t.Fatalf("unexpected group %v", g[0])
		}
		if g[1].Int != a.n || g[2].Int != a.sumT {
			t.Errorf("REL %d: count/sum = %d/%d, want %d/%d", g[0].AsInt(), g[1].Int, g[2].Int, a.n, a.sumT)
		}
		if g[3].AsFloat() != a.min || g[4].AsFloat() != a.max {
			t.Errorf("REL %d: min/max = %g/%g, want %g/%g", g[0].AsInt(), g[3].AsFloat(), g[4].AsFloat(), a.min, a.max)
		}
		avg := a.sumS / float64(a.n)
		if d := math.Abs(g[5].AsFloat() - avg); d > 1e-9*math.Abs(avg) {
			t.Errorf("REL %d: avg = %g, naive oracle %g", g[0].AsInt(), g[5].AsFloat(), avg)
		}
	}
}

func TestAggregateParallelMatchesSequential(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	p, err := svc.Prepare("SELECT TIME, COUNT(*), AVG(SOIL), SUM(SGAS) FROM IparsData GROUP BY TIME")
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := p.Collect(Options{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Exact accumulators make the parallel merge bit-identical.
	rowsEqual(t, "parallel", seq, par)

	// The scalar-filter diagnostic path must also agree.
	scalar, sstats, err := p.Collect(Options{ScalarFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "scalar", seq, scalar)
	if sstats.VectorBatches != 0 {
		t.Errorf("ScalarFilter run counted %d vector batches", sstats.VectorBatches)
	}
}

func TestAggregateEmptyAndSkipped(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	for _, sql := range []string{
		// Index prunes every chunk: TIME out of range.
		"SELECT REL, COUNT(*) FROM IparsData WHERE TIME > 100 GROUP BY REL",
		// Chunks survive planning but no row matches.
		"SELECT REL, COUNT(*) FROM IparsData WHERE SOIL > 2 GROUP BY REL",
		// Global aggregate over zero rows: zero result rows, not NULLs.
		"SELECT COUNT(*) FROM IparsData WHERE SOIL > 2",
	} {
		rows, err := svc.Query(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(rows) != 0 {
			t.Errorf("%q: %d rows, want 0", sql, len(rows))
		}
	}
}

func TestAggregateGlobalCount(t *testing.T) {
	svc, s := iparsService(t, "CLUSTER")
	defer svc.Close()
	rows, err := svc.Query("SELECT COUNT(*) FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != s.IparsTotalRows() {
		t.Fatalf("COUNT(*) = %v, want 1 row of %d", rows, s.IparsTotalRows())
	}
	// The zero-column block layout must survive the scalar path too.
	p, err := svc.Prepare("SELECT COUNT(*) FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := p.Collect(Options{ScalarFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "scalar COUNT(*)", rows, scalar)
}

func TestAggregateUnionOverNodesMatchesWhole(t *testing.T) {
	// The cluster push-down contract at the core level: per-node partial
	// states, merged, finalize exactly like one whole-table pass.
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	p, err := svc.Prepare("SELECT TIME, COUNT(*), AVG(SOIL) FROM IparsData WHERE SGAS > 0.2 GROUP BY TIME")
	if err != nil {
		t.Fatal(err)
	}
	whole, _, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged := query.NewAggState(p.Agg)
	for _, n := range svc.Nodes() {
		part, _, err := p.RunAggPartialContext(t.Context(), Options{NodeFilter: n})
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range part.EncodeChunks(64) {
			if err := merged.MergeEncoded(chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	rowsEqual(t, "node union", whole, merged.Finalize())
}

func TestAggregatePrepareErrors(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	bad := []string{
		"SELECT SOIL, COUNT(*) FROM IparsData GROUP BY REL", // bare column not grouped
		"SELECT SUM(NOPE) FROM IparsData",                   // unknown attribute
		"SELECT COUNT(*) FROM IparsData GROUP BY NOPE",      // unknown group key
		"SELECT REL, REL FROM IparsData GROUP BY REL",       // duplicate item
		"SELECT COUNT(*), COUNT(*) FROM IparsData",          // duplicate aggregate
		"SELECT AVG(SOIL) FROM IparsData GROUP BY REL, REL", // duplicate key
	}
	for _, sql := range bad {
		if _, err := svc.Prepare(sql); err == nil {
			t.Errorf("Prepare(%q) accepted", sql)
		}
	}
}
