package core

import (
	"math"
	"sort"
	"strings"
	"testing"

	"datavirt/internal/afc"
	"datavirt/internal/cache"
	"datavirt/internal/extractor"
	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

func iparsService(t *testing.T, layoutID string) (*Service, gen.IparsSpec) {
	t.Helper()
	s := gen.IparsSpec{
		Realizations: 2, TimeSteps: 4, GridPoints: 18, Partitions: 3,
		Attrs: 5, Seed: 21,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, layoutID)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	return svc, s
}

func TestOpenAndQuery(t *testing.T) {
	svc, s := iparsService(t, "CLUSTER")
	if svc.TableName() != "IparsData" {
		t.Errorf("TableName = %q", svc.TableName())
	}
	if svc.Schema().NumAttrs() != 5+s.Attrs {
		t.Errorf("schema attrs = %d", svc.Schema().NumAttrs())
	}
	rows, err := svc.Query("SELECT * FROM IparsData")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if int64(len(rows)) != s.IparsTotalRows() {
		t.Errorf("rows = %d, want %d", len(rows), s.IparsTotalRows())
	}
	// Row width = full schema.
	if len(rows[0]) != svc.Schema().NumAttrs() {
		t.Errorf("row width = %d", len(rows[0]))
	}
}

func TestQueryBySchemaName(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	// FROM accepts the schema name as well as the dataset name.
	if _, err := svc.Query("SELECT TIME FROM IPARS WHERE TIME = 1"); err != nil {
		t.Errorf("FROM IPARS: %v", err)
	}
	if _, err := svc.Query("SELECT TIME FROM Other"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestPreparedProjectionAndValues(t *testing.T) {
	svc, s := iparsService(t, "CLUSTER")
	p, err := svc.Prepare("SELECT SOIL, REL, TIME FROM IparsData WHERE REL = 1 AND TIME = 2 AND SGAS > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cols) != 3 || p.Cols[0] != "SOIL" || p.OutSchema.NumAttrs() != 3 {
		t.Fatalf("cols = %v", p.Cols)
	}
	rows, stats, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Verify against regeneration.
	var want []float64
	for g := int64(0); g < int64(s.GridPoints); g++ {
		if float64(float32(s.Value(1, 1, 2, g))) > 0.5 { // SGAS index 1
			want = append(want, float64(float32(s.Value(0, 1, 2, g)))) // SOIL
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	var got []float64
	for _, r := range rows {
		if r[1].AsFloat() != 1 || r[2].AsFloat() != 2 {
			t.Fatalf("implicit cols wrong: %v", r)
		}
		got = append(got, r[0].AsFloat())
	}
	sort.Float64s(got)
	sort.Float64s(want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("value %d: %g vs %g", i, got[i], want[i])
		}
	}
	if stats.RowsScanned != int64(s.GridPoints) {
		t.Errorf("scanned = %d, want %d (index should prune to one (REL,TIME))",
			stats.RowsScanned, s.GridPoints)
	}
}

func TestParallelOption(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	p, err := svc.Prepare("SELECT * FROM IparsData WHERE SOIL > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := p.Collect(Options{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel rows = %d, sequential = %d", len(par), len(seq))
	}
}

func TestNodeFilterPartitionsWork(t *testing.T) {
	svc, s := iparsService(t, "CLUSTER")
	p, err := svc.Prepare("SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	nodes := svc.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	var total int64
	for _, n := range nodes {
		rows, _, err := p.Collect(Options{NodeFilter: n})
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(rows))
	}
	if total != s.IparsTotalRows() {
		t.Errorf("union over nodes = %d, want %d", total, s.IparsTotalRows())
	}
	// SplitByNode covers every AFC exactly once.
	split, err := SplitByNode(p.AFCs)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, as := range split {
		count += len(as)
	}
	if count != len(p.AFCs) {
		t.Errorf("split count = %d, want %d", count, len(p.AFCs))
	}
}

func TestCoalesceOptionMatches(t *testing.T) {
	svc, s := iparsService(t, "CLUSTER")
	p, err := svc.Prepare("SELECT * FROM IparsData WHERE SOIL > 0.4")
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	coalesced, stats, err := p.Collect(Options{Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(coalesced) {
		t.Fatalf("coalesce changed row count: %d vs %d", len(coalesced), len(plain))
	}
	a := make([]string, len(plain))
	b := make([]string, len(coalesced))
	for i := range plain {
		a[i] = table.FormatRow(plain[i])
		b[i] = table.FormatRow(coalesced[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	if stats.RowsScanned != s.IparsTotalRows() {
		t.Errorf("scanned = %d", stats.RowsScanned)
	}
}

func TestSplitByNodeRejectsCrossNodeChunks(t *testing.T) {
	afcs := []afc.AFC{{
		NumRows: 1,
		Node:    "node0",
		Segments: []afc.Segment{
			{Node: "node0", File: "a", RowStride: 4, RowBytes: 4},
			{Node: "node1", File: "b", RowStride: 4, RowBytes: 4},
		},
	}}
	if _, err := SplitByNode(afcs); err == nil {
		t.Error("cross-node chunk accepted")
	}
	// Segmentless chunks split by their home node.
	out, err := SplitByNode([]afc.AFC{{NumRows: 2, Node: "node1"}})
	if err != nil || len(out["node1"]) != 1 {
		t.Errorf("segmentless split = %v, %v", out, err)
	}
}

func TestCoalesceLayoutIThroughExtractor(t *testing.T) {
	svc, s := iparsService(t, "I")
	p, err := svc.Prepare("SELECT * FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := p.Collect(Options{Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != s.IparsTotalRows() {
		t.Fatalf("rows = %d, want %d", len(rows), s.IparsTotalRows())
	}
	if stats.AFCs != 1 {
		t.Errorf("coalesced layout I full scan used %d chunks, want 1", stats.AFCs)
	}
	// Spot-check implicit synthesis survived the merge: last row's REL
	// must be the last realization.
	last := rows[len(rows)-1]
	if last[0].AsInt() != int64(s.Realizations-1) {
		t.Errorf("last row REL = %v", last[0])
	}
}

func TestCustomFilterRegistration(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	err := svc.Filters().Register(filter.Func{
		Name: "DOUBLE", MinArgs: 1, MaxArgs: 1,
		Fn: func(a []float64) float64 { return 2 * a[0] },
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := svc.Query("SELECT TIME FROM IparsData WHERE DOUBLE(TIME) = 4 AND REL = 0")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].AsFloat() != 2 {
			t.Fatalf("DOUBLE filter selected TIME=%v", r[0])
		}
	}
	if len(rows) == 0 {
		t.Error("filter selected nothing")
	}
}

func TestPrepareErrors(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	bad := []string{
		"not sql at all",
		"SELECT NOPE FROM IparsData",
		"SELECT * FROM IparsData WHERE BOGUS(SOIL) > 1",
		"SELECT * FROM WrongTable",
	}
	for _, sql := range bad {
		if _, err := svc.Prepare(sql); err == nil {
			t.Errorf("Prepare(%q) accepted", sql)
		}
	}
}

func TestEmptyResultQueries(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	for _, sql := range []string{
		"SELECT * FROM IparsData WHERE TIME > 100",
		"SELECT * FROM IparsData WHERE REL = 9",
		"SELECT * FROM IparsData WHERE SOIL > 2",
	} {
		rows, err := svc.Query(sql)
		if err != nil {
			t.Errorf("%q: %v", sql, err)
		}
		if len(rows) != 0 {
			t.Errorf("%q: %d rows", sql, len(rows))
		}
	}
}

func TestRunReusesBuffer(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	p, err := svc.Prepare("SELECT TIME FROM IparsData WHERE REL = 0")
	if err != nil {
		t.Fatal(err)
	}
	var first table.Row
	n := 0
	_, err = p.Run(Options{}, func(r table.Row) error {
		if n == 0 {
			first = r // deliberately retain without copying
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatal("need at least 2 rows")
	}
	// The retained slice aliases the reused buffer; Collect copies.
	rows, _, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	if len(rows) != n {
		t.Errorf("Collect rows = %d, Run emitted %d", len(rows), n)
	}
}

func TestTitanService(t *testing.T) {
	root := t.TempDir()
	ts := gen.TitanSpec{
		Points: 3000, XMax: 500, YMax: 500, ZMax: 50,
		TilesX: 3, TilesY: 3, TilesZ: 2, Nodes: 1, Seed: 13,
	}
	descPath, err := gen.WriteTitan(root, ts)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := svc.Query("SELECT * FROM TitanData WHERE X <= 100 AND Y <= 100")
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for j := int64(0); j < int64(ts.Points); j++ {
		x, y, _, _ := ts.Point(j)
		if x <= 100 && y <= 100 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("rows = %d, want %d", len(rows), want)
	}
	// Index cache: a second query reuses the loaded index.
	if _, err := svc.Query("SELECT * FROM TitanData WHERE Z <= 10"); err != nil {
		t.Fatal(err)
	}
}

func TestServiceCacheWarmsAcrossQueries(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	sql := "SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= 2"

	run := func(opt Options) ([]table.Row, extractor.Stats) {
		t.Helper()
		p, err := svc.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		rows, stats, err := p.Collect(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rows, stats
	}

	cold, coldStats := run(Options{})
	// Under the mmap backend cold blocks arrive as mapping views, not
	// bytes copied through the read path.
	if coldStats.CacheMisses == 0 || coldStats.FSBytesRead+coldStats.MmapBlocksServed == 0 {
		t.Fatalf("cold query saw no cache traffic: %+v", coldStats)
	}
	warm, warmStats := run(Options{})
	if len(warm) != len(cold) {
		t.Fatalf("warm rows = %d, cold = %d", len(warm), len(cold))
	}
	if warmStats.FSBytesRead != 0 {
		t.Errorf("warm query read %d fs bytes, want 0", warmStats.FSBytesRead)
	}
	if warmStats.CacheHits == 0 || warmStats.CacheMisses != 0 {
		t.Errorf("warm query not served from cache: %+v", warmStats)
	}
	// BytesRead (analytic payload) is identical either way.
	if warmStats.BytesRead != coldStats.BytesRead {
		t.Errorf("analytic BytesRead changed: cold %d warm %d", coldStats.BytesRead, warmStats.BytesRead)
	}
	// The shared cache's global stats agree.
	cs := svc.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 || cs.Bytes == 0 {
		t.Errorf("service cache stats empty: %+v", cs)
	}

	// NoCache bypasses the shared cache: fs bytes come back.
	_, bypassStats := run(Options{NoCache: true})
	if bypassStats.CacheHits != 0 || bypassStats.CacheMisses != 0 {
		t.Errorf("NoCache query touched the block cache: %+v", bypassStats)
	}
	if bypassStats.FSBytesRead == 0 {
		t.Errorf("NoCache query reported no fs bytes")
	}

	// queryStats surfaces the cache counters to obs.
	p, err := svc.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs := p.queryStats(stats, 0)
	if qs.CacheHits != stats.CacheHits || qs.FSBytesRead != stats.FSBytesRead ||
		qs.CacheMisses != stats.CacheMisses || qs.CacheBytesServed != stats.CacheBytesServed {
		t.Errorf("queryStats dropped cache counters: %+v vs %+v", qs, stats)
	}
	if !strings.Contains(qs.String(), "cache: ") {
		t.Errorf("QueryStats.String missing cache line:\n%s", qs.String())
	}
}

func TestSetCacheConfigReplacesCache(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	if _, err := svc.Query("SELECT * FROM IparsData WHERE TIME = 1"); err != nil {
		t.Fatal(err)
	}
	if svc.CacheStats().Misses == 0 {
		t.Fatal("expected cache traffic before reconfigure")
	}
	svc.SetCacheConfig(cache.Config{MaxBytes: 1 << 20, BlockBytes: 4096})
	cs := svc.CacheStats()
	if cs.Misses != 0 || cs.Blocks != 0 {
		t.Errorf("SetCacheConfig kept old stats: %+v", cs)
	}
	if _, err := svc.Query("SELECT * FROM IparsData WHERE TIME = 1"); err != nil {
		t.Fatal(err)
	}
	if svc.CacheStats().Misses == 0 {
		t.Error("replacement cache unused")
	}
	// Disabled config: queries still work, no blocks cached.
	svc.SetCacheConfig(cache.Config{Disabled: true})
	if _, err := svc.Query("SELECT * FROM IparsData WHERE TIME = 1"); err != nil {
		t.Fatal(err)
	}
	if cs := svc.CacheStats(); cs.Blocks != 0 {
		t.Errorf("disabled cache holds %d blocks", cs.Blocks)
	}
}
