package core

import (
	"math/rand"
	"sync"
	"testing"

	"datavirt/internal/cache"
	"datavirt/internal/cache/cachetest"
	"datavirt/internal/extractor"
	"datavirt/internal/table"
)

// Service-level cross-backend conformance: the same queries through
// the same service under the pread and mmap cache backends must agree
// row for row and hit for hit; only how cold bytes arrive may differ.

func rowsKey(rows []table.Row) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		vals := make([]float64, len(r))
		for j := range r {
			vals[j] = r[j].AsFloat()
		}
		out[i] = vals
	}
	return out
}

func TestServiceBackendConformance(t *testing.T) {
	queries := []string{
		"SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= 2",
		"SELECT SOIL, TIME FROM IparsData WHERE REL = 1",
		"SELECT * FROM IparsData WHERE TIME = 3 AND SGAS > 0.5",
	}
	type result struct {
		rows  [][][]float64
		stats []extractor.Stats
	}
	run := func(backend string) result {
		svc, _ := iparsService(t, "CLUSTER")
		defer svc.Close()
		svc.SetCacheConfig(cache.Config{BlockBytes: 4096, Backend: backend})
		var res result
		for _, sql := range queries {
			p, err := svc.Prepare(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			rows, stats, err := p.Collect(Options{})
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			res.rows = append(res.rows, rowsKey(rows))
			res.stats = append(res.stats, stats)
		}
		return res
	}
	pread := run(cache.BackendPread)
	mmap := run(cache.BackendMmap)
	for qi := range queries {
		pr, mr := pread.rows[qi], mmap.rows[qi]
		if len(pr) != len(mr) {
			t.Fatalf("q%d: rows %d (pread) vs %d (mmap)", qi, len(pr), len(mr))
		}
		for i := range pr {
			for j := range pr[i] {
				if pr[i][j] != mr[i][j] {
					t.Fatalf("q%d row %d col %d: %v (pread) vs %v (mmap)", qi, i, j, pr[i][j], mr[i][j])
				}
			}
		}
		ps, ms := pread.stats[qi], mmap.stats[qi]
		if ps.CacheHits != ms.CacheHits || ps.CacheMisses != ms.CacheMisses {
			t.Errorf("q%d: lookup sequences diverge: pread %d/%d mmap %d/%d",
				qi, ps.CacheHits, ps.CacheMisses, ms.CacheHits, ms.CacheMisses)
		}
		if ms.FSBytesRead > ps.FSBytesRead {
			t.Errorf("q%d: mmap copied more than pread: %d > %d", qi, ms.FSBytesRead, ps.FSBytesRead)
		}
	}
}

// TestServiceBackendRefusalFallback points the service's cache at an
// opener whose descriptors refuse to map (cachetest's fault): the mmap
// backend must produce the same rows through its pread fallback.
func TestServiceBackendRefusalFallback(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()
	sql := "SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= 2"
	want, err := svc.Query(sql)
	if err != nil {
		t.Fatal(err)
	}

	disk := &cachetest.Disk{RefuseMmap: true}
	svc.SetCacheConfig(cache.Config{BlockBytes: 4096, Backend: cache.BackendMmap, OpenFile: disk.Open})
	p, err := svc.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("fallback rows = %d, want %d", len(rows), len(want))
	}
	if stats.MmapBlocksServed != 0 {
		t.Errorf("refused mappings still served %d blocks", stats.MmapBlocksServed)
	}
	if stats.FSBytesRead == 0 || disk.Reads.Load() == 0 {
		t.Errorf("fallback did not read through pread: %+v (%d physical reads)",
			stats, disk.Reads.Load())
	}
}

// TestServiceBackendShutdownStorm runs concurrent queries against both
// backends while plan invalidations and cache-config swaps (which
// close and replace the shared cache) land mid-flight, then closes the
// service — the -race shutdown-hygiene half of the conformance suite.
func TestServiceBackendShutdownStorm(t *testing.T) {
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		t.Run(backend, func(t *testing.T) {
			svc, _ := iparsService(t, "CLUSTER")
			svc.SetCacheConfig(cache.Config{BlockBytes: 2048, Backend: backend})
			sqls := []string{
				"SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= 2",
				"SELECT SOIL FROM IparsData WHERE REL = 1",
			}
			want := map[string]int{}
			for _, sql := range sqls {
				rows, err := svc.Query(sql)
				if err != nil {
					t.Fatal(err)
				}
				want[sql] = len(rows)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 30; i++ {
						select {
						case <-stop:
							return
						default:
						}
						sql := sqls[rng.Intn(len(sqls))]
						rows, err := svc.Query(sql)
						if err != nil {
							return // lost the race to Close
						}
						if len(rows) != want[sql] {
							panic("storm query returned wrong row count")
						}
					}
				}(w)
			}
			// Invalidations and a cache swap land while queries run.
			for i := 0; i < 5; i++ {
				svc.InvalidatePlans()
				svc.SetCacheConfig(cache.Config{BlockBytes: 2048, Backend: backend})
			}
			close(stop)
			wg.Wait()
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
