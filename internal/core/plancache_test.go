package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"datavirt/internal/afc"
	"datavirt/internal/cache"
	"datavirt/internal/obs"
)

// count returns how many times stage s ended.
func (r *stageRecorder) count(s obs.Stage) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.ends {
		if e == s {
			n++
		}
	}
	return n
}

func TestPlanCacheSemanticHit(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	// Two textually different queries with the same normalized ranges
	// and needed columns share one cached plan.
	a, err := svc.Prepare("SELECT SOIL, TIME FROM IparsData WHERE TIME >= 1 AND REL = 0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Prepare("SELECT TIME, SOIL FROM IparsData WHERE REL = 0 AND NOT TIME < 1")
	if err != nil {
		t.Fatal(err)
	}
	if h, m := a.PlanCacheCounters(); h != 0 || m != 1 {
		t.Errorf("first prepare counters = %d hits / %d misses, want 0/1", h, m)
	}
	if h, m := b.PlanCacheCounters(); h != 1 || m != 0 {
		t.Errorf("second prepare counters = %d hits / %d misses, want 1/0", h, m)
	}
	if !reflect.DeepEqual(a.AFCs, b.AFCs) {
		t.Error("range-equal queries produced different AFC lists")
	}
	if _, idx := b.PrepareStats(); idx != 0 {
		t.Errorf("warm prepare IndexTime = %v, want 0", idx)
	}
	if _, idx := a.PrepareStats(); idx <= 0 {
		t.Errorf("cold prepare IndexTime = %v, want > 0", idx)
	}
	st := svc.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("PlanCacheStats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("PlanCacheStats.Bytes = %d, want > 0", st.Bytes)
	}

	// Different ranges or needed columns miss.
	c, err := svc.Prepare("SELECT SOIL, TIME FROM IparsData WHERE TIME >= 2 AND REL = 0")
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.PlanCacheCounters(); h != 0 || m != 1 {
		t.Errorf("distinct ranges counters = %d hits / %d misses, want 0/1", h, m)
	}

	// A cached plan still executes correctly.
	rows, _, err := b.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := a.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) || len(rows) == 0 {
		t.Errorf("cached plan emitted %d rows, fresh plan %d", len(rows), len(want))
	}
}

func TestPlanCacheSkipsIndexStage(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	rec := &stageRecorder{}
	ctx := obs.WithTracer(context.Background(), rec)
	sql := "SELECT TIME FROM IparsData WHERE TIME = 2"
	if _, err := svc.PrepareContext(ctx, sql); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(obs.StageIndex); got != 1 {
		t.Fatalf("cold prepare index events = %d, want 1", got)
	}
	if _, err := svc.PrepareContext(ctx, sql); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(obs.StageIndex); got != 1 {
		t.Errorf("warm prepare re-ran index stage (%d events)", got)
	}
	// The plan stage always runs (predicate compilation is per query).
	if got := rec.count(obs.StagePlan); got != 2 {
		t.Errorf("plan events = %d, want 2", got)
	}
}

func TestPlanCacheQueryStats(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	sql := "SELECT TIME FROM IparsData WHERE TIME = 1"
	for i, want := range []struct{ hits, misses int64 }{{0, 1}, {1, 0}} {
		rows, err := svc.QueryContext(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		qs := rows.Stats()
		if qs.PlanCacheHits != want.hits || qs.PlanCacheMisses != want.misses {
			t.Errorf("query %d: PlanCache = %d hits / %d misses, want %d/%d",
				i, qs.PlanCacheHits, qs.PlanCacheMisses, want.hits, want.misses)
		}
		if i == 1 && qs.IndexTime != 0 {
			t.Errorf("warm query IndexTime = %v, want 0", qs.IndexTime)
		}
	}
}

func TestPlanCacheInvalidate(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	sql := "SELECT TIME FROM IparsData WHERE TIME = 1"
	if _, err := svc.Prepare(sql); err != nil {
		t.Fatal(err)
	}
	svc.InvalidatePlans()
	if st := svc.PlanCacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after InvalidatePlans: %+v, want empty", st)
	}
	p, err := svc.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := p.PlanCacheCounters(); h != 0 || m != 1 {
		t.Errorf("post-invalidation prepare = %d hits / %d misses, want 0/1", h, m)
	}
	// SetCacheConfig marks a configuration boundary and invalidates too.
	svc.SetCacheConfig(cache.Config{})
	if st := svc.PlanCacheStats(); st.Entries != 0 {
		t.Errorf("after SetCacheConfig: %+v, want no entries", st)
	}
}

func TestPlanCacheDisabledAndResize(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	svc.SetPlanCacheConfig(PlanCacheConfig{Disabled: true})
	sql := "SELECT TIME FROM IparsData WHERE TIME = 1"
	for i := 0; i < 2; i++ {
		p, err := svc.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		if h, m := p.PlanCacheCounters(); h != 0 || m != 0 {
			t.Errorf("disabled cache recorded %d hits / %d misses", h, m)
		}
		if _, idx := p.PrepareStats(); idx <= 0 {
			t.Errorf("disabled cache skipped index stage (IndexTime %v)", idx)
		}
	}
	if st := svc.PlanCacheStats(); st.Hits+st.Misses+st.Entries != 0 {
		t.Errorf("disabled cache stats = %+v, want zero", st)
	}

	// A tiny cache evicts under entry pressure instead of growing.
	svc.SetPlanCacheConfig(PlanCacheConfig{MaxEntries: 1, Shards: 1})
	for i := 0; i < 4; i++ {
		if _, err := svc.Prepare(fmt.Sprintf("SELECT TIME FROM IparsData WHERE TIME = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.PlanCacheStats()
	if st.Entries != 1 {
		t.Errorf("MaxEntries=1 cache holds %d entries", st.Entries)
	}
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
}

func TestPlanCacheSingleFlight(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	defer svc.Close()

	// Gate plan construction so concurrent prepares pile onto one
	// in-flight build; exactly one may run Generate.
	pc := svc.planCacheRef()
	var builds int
	release := make(chan struct{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]afc.AFC, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			afcs, _, err := pc.getOrBuild("k", func() ([]afc.AFC, error) {
				builds++ // safe: single flight means one builder
				<-release
				return []afc.AFC{{NumRows: 42}}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = afcs
		}(i)
	}
	// Let every worker reach the cache before releasing the build.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	for i, afcs := range results {
		if len(afcs) != 1 || afcs[0].NumRows != 42 {
			t.Errorf("worker %d got %v", i, afcs)
		}
	}
	st := pc.stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", st, workers-1)
	}
}

func TestPlanCacheStaleGeneration(t *testing.T) {
	pc := newPlanCache(PlanCacheConfig{})
	if _, hit, _ := pc.getOrBuild("k", func() ([]afc.AFC, error) { return nil, nil }); hit {
		t.Fatal("cold build reported hit")
	}
	// Invalidation mid-flight: the generation snapshot predates the
	// bump, so the installed entry must not be served afterwards.
	pc2 := newPlanCache(PlanCacheConfig{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		pc2.getOrBuild("k", func() ([]afc.AFC, error) {
			pc2.invalidate()
			return []afc.AFC{{NumRows: 1}}, nil
		})
	}()
	<-done
	if _, hit, _ := pc2.getOrBuild("k", func() ([]afc.AFC, error) { return nil, nil }); hit {
		t.Error("entry installed during invalidation was served")
	}
}
