package core

import (
	"os"
	"testing"

	"datavirt/internal/cache"
	"datavirt/internal/cache/cachetest"
	"datavirt/internal/extractor"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
	"datavirt/internal/table"
)

// sparseService generates a monolithic layout-I Ipars dataset whose Z
// coordinate is piecewise-constant along the file, builds sparse
// sidecars with tiny zone blocks (8 rows each), and opens a service on
// it. The returned path is the single data file's sidecar.
func sparseService(t *testing.T) (*Service, string) {
	t.Helper()
	s := gen.IparsSpec{
		Realizations: 1, TimeSteps: 2, GridPoints: 512, Partitions: 1,
		Attrs: 5, Seed: 21,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "I")
	if err != nil {
		t.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sparse.BuildDataset(d, sparse.NodeResolver(root), sparse.BuildOptions{BlockBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("built %d sidecars, want 1", n)
	}
	svc, err := Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, sparse.SidecarPath(root + "/node0/ipars/alldata")
}

// sparseSQL selects a narrow Z window: grid 512 gives an 8x8x8 box, so
// Z >= 6 keeps the top quarter of the file's blocks.
const sparseSQL = "SELECT X, SOIL FROM IparsData WHERE Z >= 6"

// sparseOpt aligns the extraction buffer with the 512-byte zone blocks
// so each zone decision maps to one extraction block.
var sparseOpt = Options{BlockBytes: 512}

func runSparse(t *testing.T, svc *Service, opt Options) ([]table.Row, extractor.Stats) {
	t.Helper()
	p, err := svc.Prepare(sparseSQL)
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := p.Collect(opt)
	if err != nil {
		t.Fatal(err)
	}
	return rows, stats
}

func sameRows(t *testing.T, got, want []table.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j].AsFloat() != want[i][j].AsFloat() {
				t.Fatalf("row %d col %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestSparsePruning(t *testing.T) {
	svc, _ := sparseService(t)
	want, off := runSparse(t, svc, Options{BlockBytes: 512, NoSparse: true})
	if off.BlocksSkipped != 0 || off.SparseIndexHits != 0 {
		t.Fatalf("NoSparse run consulted the index: %+v", off)
	}
	got, on := runSparse(t, svc, sparseOpt)
	sameRows(t, got, want)
	if on.BlocksSkipped == 0 {
		t.Errorf("indexed run skipped 0 blocks, stats %+v", on)
	}
	if on.SparseIndexHits == 0 || on.SparseIndexMisses != 0 {
		t.Errorf("index lookups = %d hits / %d misses, want >0 / 0", on.SparseIndexHits, on.SparseIndexMisses)
	}
	if on.BytesRead >= off.BytesRead {
		t.Errorf("indexed run read %d logical bytes, full scan %d", on.BytesRead, off.BytesRead)
	}
}

// TestSparseFallbackCorrupt damages the sidecar file in place and
// checks every mutation degrades to a full scan with identical rows —
// never an error, never a wrong answer.
func TestSparseFallbackCorrupt(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw := readAll(t, path)
			writeAll(t, path, raw[:len(raw)/2])
		}},
		{"header-magic", func(t *testing.T, path string) { flipByte(t, path, 0) }},
		{"trailer-magic", func(t *testing.T, path string) { flipByte(t, path, -1) }},
		{"version", func(t *testing.T, path string) { flipByte(t, path, -8) }},
		{"block-count", func(t *testing.T, path string) { flipByte(t, path, 16) }},
		{"stale-data-size", func(t *testing.T, path string) {
			// DataBytes in the trailer no longer matches the file on disk.
			flipByte(t, path, -16)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc, scPath := sparseService(t)
			want, _ := runSparse(t, svc, Options{BlockBytes: 512, NoSparse: true})
			tc.mutate(t, scPath)
			svc.InvalidatePlans()
			got, stats := runSparse(t, svc, sparseOpt)
			sameRows(t, got, want)
			if stats.BlocksSkipped != 0 {
				t.Errorf("skipped %d blocks through a damaged sidecar", stats.BlocksSkipped)
			}
			if stats.SparseIndexMisses == 0 {
				t.Errorf("no index miss recorded, stats %+v", stats)
			}
		})
	}
}

// TestSparseFallbackMissing deletes the sidecar: silently a full scan,
// with the lookup recorded as a miss.
func TestSparseFallbackMissing(t *testing.T) {
	svc, scPath := sparseService(t)
	want, _ := runSparse(t, svc, Options{BlockBytes: 512, NoSparse: true})
	if err := os.Remove(scPath); err != nil {
		t.Fatal(err)
	}
	svc.InvalidatePlans()
	got, stats := runSparse(t, svc, sparseOpt)
	sameRows(t, got, want)
	if stats.BlocksSkipped != 0 || stats.SparseIndexMisses == 0 {
		t.Errorf("missing sidecar: skipped %d, misses %d", stats.BlocksSkipped, stats.SparseIndexMisses)
	}
}

// TestSparseFallbackOpenFault injects an open failure (cachetest.Disk)
// on the sidecar read: the query still answers from a full scan.
func TestSparseFallbackOpenFault(t *testing.T) {
	svc, _ := sparseService(t)
	want, _ := runSparse(t, svc, Options{BlockBytes: 512, NoSparse: true})
	disk := &cachetest.Disk{}
	svc.SetCacheConfig(cache.Config{BlockBytes: 4096, OpenFile: disk.Open})
	// The first open of the indexed run is the sidecar's: prune state is
	// resolved before the data file is pooled.
	disk.FailNextOpens(1)
	got, stats := runSparse(t, svc, sparseOpt)
	sameRows(t, got, want)
	if stats.BlocksSkipped != 0 {
		t.Errorf("skipped %d blocks without a readable sidecar", stats.BlocksSkipped)
	}
	if stats.SparseIndexMisses == 0 {
		t.Errorf("no index miss recorded, stats %+v", stats)
	}
	// The failure is memoized per service generation: a second run falls
	// back the same way without re-reading.
	got2, _ := runSparse(t, svc, sparseOpt)
	sameRows(t, got2, want)
}

// TestSparseBackends runs the pruned query under both cache backends:
// identical rows and identical skip counts.
func TestSparseBackends(t *testing.T) {
	svc, _ := sparseService(t)
	want, _ := runSparse(t, svc, Options{BlockBytes: 512, NoSparse: true})
	var skipped []int64
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		svc.SetCacheConfig(cache.Config{BlockBytes: 4096, Backend: backend})
		got, stats := runSparse(t, svc, sparseOpt)
		sameRows(t, got, want)
		if stats.BlocksSkipped == 0 {
			t.Errorf("%s: skipped 0 blocks", backend)
		}
		skipped = append(skipped, stats.BlocksSkipped)
	}
	if skipped[0] != skipped[1] {
		t.Errorf("skip counts diverge across backends: %v", skipped)
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func writeAll(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// flipByte XORs one byte of the file; negative offsets count from EOF.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	raw := readAll(t, path)
	if off < 0 {
		off += len(raw)
	}
	raw[off] ^= 0xFF
	writeAll(t, path, raw)
}
