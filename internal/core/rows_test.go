package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"datavirt/internal/gen"
	"datavirt/internal/obs"
	"datavirt/internal/table"
)

func TestRowsIterationMatchesCollect(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	sql := "SELECT SOIL, TIME FROM IparsData WHERE TIME >= 2"
	p, err := svc.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Collect(Options{})
	if err != nil {
		t.Fatal(err)
	}

	rows, err := svc.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "SOIL" || cols[1] != "TIME" {
		t.Errorf("Columns = %v", cols)
	}
	var got []table.Row
	for rows.Next() {
		got = append(got, rows.Row()) // rows are copies: retaining is safe
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor produced %d rows, Collect %d", len(got), len(want))
	}
	for i := range want {
		if table.FormatRow(got[i]) != table.FormatRow(want[i]) {
			t.Fatalf("row %d: %s != %s", i, table.FormatRow(got[i]), table.FormatRow(want[i]))
		}
	}
	// After exhaustion the stats are available and Close stays clean.
	if rows.Stats() == nil {
		t.Fatal("Stats nil after exhaustion")
	}
	if err := rows.Close(); err != nil {
		t.Errorf("Close after exhaustion: %v", err)
	}
}

// TestRowsCloseCancelsExtraction closes the cursor mid-iteration and
// asserts the extraction goroutine exits without being drained by the
// consumer, with no goroutine leak (ISSUE 1 acceptance criterion).
func TestRowsCloseCancelsExtraction(t *testing.T) {
	svc, _ := bigIparsService(t)
	before := runtime.NumGoroutine()

	rows, err := svc.QueryContextOptions(context.Background(),
		"SELECT * FROM IparsData", Options{Parallel: true, Workers: 4, BlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Errorf("Close mid-iteration: %v", err) // own cancellation is not an error
	}
	if rows.Next() {
		t.Error("Next true after Close")
	}
	if rows.Stats() == nil {
		t.Error("Stats nil after Close")
	}
	assertNoGoroutineLeak(t, before)
}

// TestRowsParentContextCancelled cancels the caller's context during
// parallel extraction: Next must stop promptly and Err report
// context.Canceled, with all workers gone.
func TestRowsParentContextCancelled(t *testing.T) {
	svc, _ := bigIparsService(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := svc.QueryContextOptions(ctx,
		"SELECT * FROM IparsData", Options{Parallel: true, Workers: 4, BlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		if n++; n == 5 {
			cancel()
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after parent cancel = %v", err)
	}
	rows.Close()
	assertNoGoroutineLeak(t, before)
}

func TestRowsDeadline(t *testing.T) {
	svc, _ := bigIparsService(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	rows, err := svc.QueryContextOptions(ctx, "SELECT * FROM IparsData",
		Options{BlockBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() { // slow consumer guarantees the deadline fires mid-query
		time.Sleep(50 * time.Microsecond)
	}
	if err := rows.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err after deadline = %v", err)
	}
}

// TestQueryStatsGolden pins the deterministic QueryStats counters of a
// known query over the quickstart dataset.
func TestQueryStatsGolden(t *testing.T) {
	s := gen.IparsSpec{
		Realizations: 2, TimeSteps: 50, GridPoints: 200, Partitions: 4,
		Attrs: 17, Seed: 1, // the examples/quickstart spec
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := svc.QueryContext(context.Background(),
		"SELECT X, Y, Z, SOIL FROM IparsData WHERE REL = 0 AND TIME = 25")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	const want = `chunks planned: 4
chunks read: 4
bytes read: 3200
rows scanned: 200
rows emitted: 200
rows filtered: 0`
	if got := st.Counters(); got != want {
		t.Errorf("QueryStats counters:\n%s\nwant:\n%s", got, want)
	}
	if st.PlanTime <= 0 || st.IndexTime <= 0 || st.ExtractTime <= 0 {
		t.Errorf("stage times not recorded: %+v", st)
	}
	if st.NetTime != 0 {
		t.Errorf("local query recorded net time %v", st.NetTime)
	}
}

func TestOptionsValidate(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	p, err := svc.Prepare("SELECT TIME FROM IparsData")
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{{Workers: -1}, {BlockBytes: -4096}} {
		if _, err := p.Run(opt, func(table.Row) error { return nil }); err == nil {
			t.Errorf("Options %+v accepted", opt)
		} else if !strings.Contains(err.Error(), "negative") {
			t.Errorf("Options %+v: unhelpful error %v", opt, err)
		}
		if _, err := p.QueryContext(context.Background(), opt); err == nil {
			t.Errorf("QueryContext accepted %+v", opt)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
}

// TestTracerSeesAllLocalStages runs a query under a recording tracer
// and checks the plan, index, extract and filter stages all report.
func TestTracerSeesAllLocalStages(t *testing.T) {
	svc, _ := iparsService(t, "CLUSTER")
	rec := &stageRecorder{}
	ctx := obs.WithTracer(context.Background(), rec)
	rows, err := svc.QueryContext(ctx, "SELECT TIME FROM IparsData WHERE TIME = 1")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	rows.Close()
	for _, stage := range []obs.Stage{obs.StagePlan, obs.StageIndex, obs.StageExtract, obs.StageFilter} {
		if !rec.saw(stage) {
			t.Errorf("tracer never saw stage %s (got %v)", stage, rec.stages())
		}
	}
}

// bigIparsService opens a dataset large enough that full scans take
// many block reads, so cancellation reliably lands mid-extraction.
func bigIparsService(t *testing.T) (*Service, gen.IparsSpec) {
	t.Helper()
	s := gen.IparsSpec{
		Realizations: 2, TimeSteps: 30, GridPoints: 300, Partitions: 4,
		Attrs: 6, Seed: 7,
	}
	root := t.TempDir()
	descPath, err := gen.WriteIpars(root, s, "CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(descPath, root)
	if err != nil {
		t.Fatal(err)
	}
	return svc, s
}

func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d before, %d after\n%s",
			before, g, buf[:runtime.Stack(buf, true)])
	}
}

type stageRecorder struct {
	mu   sync.Mutex
	ends []obs.Stage
}

func (r *stageRecorder) StageStart(string, obs.Stage) {}

func (r *stageRecorder) StageEnd(q string, s obs.Stage, d time.Duration, err error) {
	r.mu.Lock()
	r.ends = append(r.ends, s)
	r.mu.Unlock()
}

func (r *stageRecorder) saw(s obs.Stage) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.ends {
		if e == s {
			return true
		}
	}
	return false
}

func (r *stageRecorder) stages() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	parts := make([]string, len(r.ends))
	for i, e := range r.ends {
		parts[i] = string(e)
	}
	return fmt.Sprint(parts)
}
