// Package schema defines the attribute type system and the virtual-table
// schemas used throughout datavirt. It implements Component I of the
// meta-data description language of Weng et al. (HPDC 2004): the Dataset
// Schema Description, which states the logical (virtual) relational table
// view desired for a dataset.
//
// A schema is an ordered list of named, fixed-size, binary attribute
// types. The fixed sizes are what make offset arithmetic over flat files
// possible: every layout computation in internal/layout and internal/afc
// ultimately reduces to sums and products of the sizes defined here.
package schema

import (
	"fmt"
	"strings"
)

// Kind identifies one of the primitive binary attribute types supported by
// the description language. All kinds have a fixed byte size and a
// little-endian on-disk encoding.
type Kind int

const (
	// Invalid is the zero Kind; it never appears in a validated schema.
	Invalid Kind = iota
	// Char is a 1-byte signed integer ("char").
	Char
	// Short is a 2-byte signed integer ("short int").
	Short
	// Int is a 4-byte signed integer ("int").
	Int
	// Long is an 8-byte signed integer ("long").
	Long
	// Float is a 4-byte IEEE-754 value ("float").
	Float
	// Double is an 8-byte IEEE-754 value ("double").
	Double
)

// Size returns the number of bytes the kind occupies in a data file.
func (k Kind) Size() int {
	switch k {
	case Char:
		return 1
	case Short:
		return 2
	case Int:
		return 4
	case Long:
		return 8
	case Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

// Integral reports whether the kind stores integer values.
func (k Kind) Integral() bool {
	switch k {
	case Char, Short, Int, Long:
		return true
	}
	return false
}

// String returns the description-language spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Char:
		return "char"
	case Short:
		return "short int"
	case Int:
		return "int"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return "invalid"
}

// ParseKind parses a description-language type name. It accepts the
// canonical spellings produced by Kind.String plus common aliases
// ("short", "int32", "int64", "float32", "float64", "byte").
func ParseKind(s string) (Kind, error) {
	switch strings.Join(strings.Fields(strings.ToLower(s)), " ") {
	case "char", "byte", "int8":
		return Char, nil
	case "short", "short int", "int16":
		return Short, nil
	case "int", "int32":
		return Int, nil
	case "long", "long int", "int64":
		return Long, nil
	case "float", "float32":
		return Float, nil
	case "double", "float64":
		return Double, nil
	}
	return Invalid, fmt.Errorf("schema: unknown type %q", s)
}

// Attribute is one named column of a virtual table.
type Attribute struct {
	Name string
	Kind Kind
}

// Size returns the on-disk byte size of the attribute.
func (a Attribute) Size() int { return a.Kind.Size() }

// Schema is an ordered set of attributes forming the virtual relational
// table view of a dataset. The zero Schema is empty and unusable; build
// one with New or the Component-I parser.
type Schema struct {
	name   string
	attrs  []Attribute
	byName map[string]int
}

// New constructs a schema from an ordered attribute list. Attribute names
// are case-sensitive identifiers and must be unique.
func New(name string, attrs []Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty schema name")
	}
	s := &Schema{name: name, byName: make(map[string]int, len(attrs))}
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema %s: attribute with empty name", name)
		}
		if a.Kind.Size() == 0 {
			return nil, fmt.Errorf("schema %s: attribute %s has invalid type", name, a.Name)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("schema %s: duplicate attribute %s", name, a.Name)
		}
		s.byName[a.Name] = len(s.attrs)
		s.attrs = append(s.attrs, a)
	}
	if len(s.attrs) == 0 {
		return nil, fmt.Errorf("schema %s: no attributes", name)
	}
	return s, nil
}

// MustNew is New but panics on error; intended for tests and constants.
func MustNew(name string, attrs []Attribute) *Schema {
	s, err := New(name, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema's name (the bracket header of Component I).
func (s *Schema) Name() string { return s.name }

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i'th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Kind returns the kind of the named attribute and whether it exists.
func (s *Schema) Kind(name string) (Kind, bool) {
	i := s.Index(name)
	if i < 0 {
		return Invalid, false
	}
	return s.attrs[i].Kind, true
}

// RowBytes returns the byte size of one full row with every attribute
// stored contiguously — the record size of a "tabular" layout.
func (s *Schema) RowBytes() int {
	n := 0
	for _, a := range s.attrs {
		n += a.Size()
	}
	return n
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Project returns a new schema containing the named attributes, in the
// given order. It fails if any name is unknown.
func (s *Schema) Project(names []string) (*Schema, error) {
	attrs := make([]Attribute, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("schema %s: no attribute %q", s.name, n)
		}
		attrs = append(attrs, s.attrs[i])
	}
	return New(s.name, attrs)
}

// String renders the schema in Component-I syntax.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", s.name)
	for _, a := range s.attrs {
		fmt.Fprintf(&b, "%s = %s\n", a.Name, a.Kind)
	}
	return b.String()
}
