package schema

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndConversions(t *testing.T) {
	if v := IntValue(42); v.Kind != Int || v.AsInt() != 42 || v.AsFloat() != 42 {
		t.Errorf("IntValue: %+v", v)
	}
	if v := LongValue(-7); v.Kind != Long || v.AsInt() != -7 {
		t.Errorf("LongValue: %+v", v)
	}
	if v := FloatValue(1.5); v.Kind != Float || v.AsFloat() != 1.5 || v.AsInt() != 1 {
		t.Errorf("FloatValue: %+v", v)
	}
	if v := DoubleValue(-2.25); v.Kind != Double || v.AsFloat() != -2.25 {
		t.Errorf("DoubleValue: %+v", v)
	}
	if v := KindValue(Int, 3.9); v.Int != 3 {
		t.Errorf("KindValue(Int, 3.9) = %+v", v)
	}
	if v := KindValue(Double, 3.9); v.Float != 3.9 {
		t.Errorf("KindValue(Double, 3.9) = %+v", v)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{FloatValue(1.5), IntValue(2), -1},
		{IntValue(2), FloatValue(1.5), 1},
		{DoubleValue(2), IntValue(2), 0},
		// Exact comparison for large int64 that float64 cannot hold.
		{LongValue(1 << 62), LongValue(1<<62 + 1), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if got := IntValue(-3).String(); got != "-3" {
		t.Errorf("IntValue.String = %q", got)
	}
	if got := DoubleValue(0.5).String(); got != "0.5" {
		t.Errorf("DoubleValue.String = %q", got)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(Int, "123")
	if err != nil || v.Int != 123 {
		t.Errorf("ParseValue(Int, 123) = %+v, %v", v, err)
	}
	v, err = ParseValue(Int, "1e3")
	if err != nil || v.Int != 1000 {
		t.Errorf("ParseValue(Int, 1e3) = %+v, %v", v, err)
	}
	v, err = ParseValue(Float, "-0.25")
	if err != nil || v.Float != -0.25 {
		t.Errorf("ParseValue(Float, -0.25) = %+v, %v", v, err)
	}
	if _, err := ParseValue(Int, "abc"); err == nil {
		t.Error("ParseValue(Int, abc) accepted")
	}
	if _, err := ParseValue(Double, "abc"); err == nil {
		t.Error("ParseValue(Double, abc) accepted")
	}
}

func TestEncodeDecodeKnownBytes(t *testing.T) {
	b := EncodeValue(nil, IntValue(0x01020304))
	want := []byte{0x04, 0x03, 0x02, 0x01}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("little-endian int encoding = %x", b)
		}
	}
	if got := DecodeValue(Int, b); got.Int != 0x01020304 {
		t.Errorf("decode = %v", got)
	}
}

// Property: encode→decode is the identity for every kind (modulo the
// precision of the kind itself).
func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	kinds := []Kind{Char, Short, Int, Long, Float, Double}
	f := func(raw int64, fraw float64, pick uint8) bool {
		k := kinds[int(pick)%len(kinds)]
		var v Value
		if k.Integral() {
			// Clamp to the kind's range so the round trip is exact.
			switch k {
			case Char:
				v = Value{Kind: k, Int: int64(int8(raw))}
			case Short:
				v = Value{Kind: k, Int: int64(int16(raw))}
			case Int:
				v = Value{Kind: k, Int: int64(int32(raw))}
			default:
				v = Value{Kind: k, Int: raw}
			}
		} else {
			if math.IsNaN(fraw) {
				fraw = 0 // NaN != NaN; skip
			}
			if k == Float {
				v = Value{Kind: k, Float: float64(float32(fraw))}
			} else {
				v = Value{Kind: k, Float: fraw}
			}
		}
		b := EncodeValue(nil, v)
		if len(b) != k.Size() {
			return false
		}
		got := DecodeValue(k, b)
		if got.Kind != k {
			return false
		}
		if k.Integral() {
			return got.Int == v.Int
		}
		return got.Float == v.Float
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeFloat agrees with DecodeValue().AsFloat().
func TestDecodeFloatAgreesQuick(t *testing.T) {
	kinds := []Kind{Char, Short, Int, Long, Float, Double}
	f := func(raw [8]byte, pick uint8) bool {
		k := kinds[int(pick)%len(kinds)]
		b := raw[:k.Size()]
		a := DecodeFloat(k, b)
		c := DecodeValue(k, b).AsFloat()
		if math.IsNaN(a) && math.IsNaN(c) {
			return true
		}
		return a == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{0xAA}
	out := EncodeValue(prefix, ShortVal(259))
	if len(out) != 3 || out[0] != 0xAA || out[1] != 0x03 || out[2] != 0x01 {
		t.Errorf("EncodeValue append = %x", out)
	}
}

// ShortVal builds a Short-kind value; helper shared by tests.
func ShortVal(v int64) Value { return Value{Kind: Short, Int: v} }
