package schema

import (
	"strings"
	"testing"
)

func TestKindSizes(t *testing.T) {
	cases := []struct {
		k    Kind
		size int
		intg bool
	}{
		{Char, 1, true},
		{Short, 2, true},
		{Int, 4, true},
		{Long, 8, true},
		{Float, 4, false},
		{Double, 8, false},
		{Invalid, 0, false},
	}
	for _, c := range cases {
		if got := c.k.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.k, got, c.size)
		}
		if got := c.k.Integral(); got != c.intg {
			t.Errorf("%v.Integral() = %v, want %v", c.k, got, c.intg)
		}
	}
}

func TestParseKind(t *testing.T) {
	ok := map[string]Kind{
		"char": Char, "byte": Char, "int8": Char,
		"short": Short, "short int": Short, "SHORT  INT": Short, "int16": Short,
		"int": Int, "Int32": Int,
		"long": Long, "long int": Long, "int64": Long,
		"float": Float, "float32": Float,
		"double": Double, "Float64": Double,
	}
	for s, want := range ok {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "string", "int 16", "floaty"} {
		if k, err := ParseKind(s); err == nil {
			t.Errorf("ParseKind(%q) = %v, want error", s, k)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{Char, Short, Int, Long, Float, Double} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New("IPARS", []Attribute{
		{"REL", Short}, {"TIME", Int}, {"X", Float}, {"Y", Float},
		{"Z", Float}, {"SOIL", Float}, {"SGAS", Float},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Name() != "IPARS" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.NumAttrs() != 7 {
		t.Errorf("NumAttrs = %d", s.NumAttrs())
	}
	if s.Index("SOIL") != 5 {
		t.Errorf("Index(SOIL) = %d", s.Index("SOIL"))
	}
	if s.Index("NOPE") != -1 {
		t.Errorf("Index(NOPE) = %d", s.Index("NOPE"))
	}
	if !s.Has("Z") || s.Has("zz") {
		t.Error("Has is wrong")
	}
	if k, ok := s.Kind("TIME"); !ok || k != Int {
		t.Errorf("Kind(TIME) = %v, %v", k, ok)
	}
	// 2 + 4 + 5*4 = 26
	if got := s.RowBytes(); got != 26 {
		t.Errorf("RowBytes = %d, want 26", got)
	}
	want := []string{"REL", "TIME", "X", "Y", "Z", "SOIL", "SGAS"}
	names := s.Names()
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := New("", []Attribute{{"A", Int}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("S", nil); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, err := New("S", []Attribute{{"A", Int}, {"A", Float}}); err == nil {
		t.Error("duplicate attr accepted")
	}
	if _, err := New("S", []Attribute{{"", Int}}); err == nil {
		t.Error("empty attr name accepted")
	}
	if _, err := New("S", []Attribute{{"A", Invalid}}); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project([]string{"SOIL", "TIME"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumAttrs() != 2 || p.Attr(0).Name != "SOIL" || p.Attr(1).Name != "TIME" {
		t.Errorf("Project gave %v", p.Names())
	}
	if _, err := s.Project([]string{"MISSING"}); err == nil {
		t.Error("Project of missing attr accepted")
	}
}

func TestAttrsCopyIsDefensive(t *testing.T) {
	s := testSchema(t)
	attrs := s.Attrs()
	attrs[0].Name = "MUTATED"
	if s.Attr(0).Name != "REL" {
		t.Error("Attrs() exposed internal slice")
	}
}

func TestStripComments(t *testing.T) {
	in := "a // line comment\nb {* block *} c\nd {* multi\nline *} e\n"
	got := StripComments(in)
	want := "a \nb  c\nd \n e\n"
	if got != want {
		t.Errorf("StripComments = %q, want %q", got, want)
	}
	// Unterminated block comment swallows the rest.
	if got := StripComments("x {* oops"); got != "x " {
		t.Errorf("unterminated = %q", got)
	}
}

func TestParseSchemas(t *testing.T) {
	src := `
// The IPARS oil reservoir schema (paper Figure 4, Component I).
[IPARS]
REL = short int   // {* realization id *}
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[TITAN]
X = int
Y = int
Z = int
S1 = float
`
	ss, err := ParseSchemas(src)
	if err != nil {
		t.Fatalf("ParseSchemas: %v", err)
	}
	if len(ss) != 2 {
		t.Fatalf("got %d schemas", len(ss))
	}
	if ss[0].Name() != "IPARS" || ss[0].NumAttrs() != 7 {
		t.Errorf("first schema = %s/%d", ss[0].Name(), ss[0].NumAttrs())
	}
	if k, _ := ss[0].Kind("REL"); k != Short {
		t.Errorf("REL kind = %v", k)
	}
	if ss[1].Name() != "TITAN" || ss[1].NumAttrs() != 4 {
		t.Errorf("second schema = %s/%d", ss[1].Name(), ss[1].NumAttrs())
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []string{
		"",
		"REL = int\n",               // attribute before any section
		"[S]\nREL short int\n",      // missing '='
		"[S]\nREL = complex\n",      // unknown type
		"[S\nREL = int\n",           // malformed header
		"[]\nREL = int\n",           // empty section name
		"[S]\nA = int\n[T]\n",       // empty second schema
		"[S]\nA = int\nA = float\n", // duplicate
	}
	for _, src := range bad {
		if _, err := ParseSchemas(src); err == nil {
			t.Errorf("ParseSchemas(%q) accepted", src)
		}
	}
}

func TestParseSchemaSingle(t *testing.T) {
	if _, err := ParseSchema("[A]\nX = int\n[B]\nY = int\n"); err == nil {
		t.Error("ParseSchema accepted two sections")
	}
	s, err := ParseSchema("[A]\nX = int\n")
	if err != nil || s.Name() != "A" {
		t.Errorf("ParseSchema = %v, %v", s, err)
	}
}

func TestSchemaStringRoundTrip(t *testing.T) {
	s := testSchema(t)
	back, err := ParseSchema(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.String() != s.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", back, s)
	}
	if !strings.Contains(s.String(), "REL = short int") {
		t.Errorf("String() = %q", s.String())
	}
}
