package schema

import (
	"fmt"
	"strings"
)

// StripComments removes the two comment forms of the description
// language from src: line comments introduced by "//" and block comments
// delimited by "{*" and "*}". It is shared by the Component-I parser here
// and the Component-II/III parsers in internal/metadata.
func StripComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	for i := 0; i < len(src); {
		if src[i] == '/' && i+1 < len(src) && src[i+1] == '/' {
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		}
		if src[i] == '{' && i+1 < len(src) && src[i+1] == '*' {
			j := strings.Index(src[i+2:], "*}")
			if j < 0 {
				// Unterminated block comment: swallow to end of input.
				i = len(src)
				continue
			}
			// Preserve newlines inside the comment so error line numbers
			// in surrounding text stay correct.
			for _, c := range src[i : i+2+j+2] {
				if c == '\n' {
					b.WriteByte('\n')
				}
			}
			i += 2 + j + 2
			continue
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String()
}

// ParseSchemas parses Component I of a meta-data descriptor: one or more
// bracket-headed schema sections of the form
//
//	[IPARS]
//	REL  = short int
//	TIME = int
//	X    = float
//
// Comments (// and {* *}) are permitted anywhere. The returned schemas
// appear in source order.
func ParseSchemas(src string) ([]*Schema, error) {
	lines := strings.Split(StripComments(src), "\n")
	var out []*Schema
	var name string
	var attrs []Attribute
	flush := func() error {
		if name == "" {
			return nil
		}
		s, err := New(name, attrs)
		if err != nil {
			return err
		}
		out = append(out, s)
		name, attrs = "", nil
		return nil
	}
	for lineno, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("schema: line %d: malformed section header %q", lineno+1, line)
			}
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return nil, fmt.Errorf("schema: line %d: empty section name", lineno+1)
			}
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("schema: line %d: expected NAME = type, got %q", lineno+1, line)
		}
		if name == "" {
			return nil, fmt.Errorf("schema: line %d: attribute outside any [section]", lineno+1)
		}
		attrName := strings.TrimSpace(line[:eq])
		kind, err := ParseKind(strings.TrimSpace(line[eq+1:]))
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %v", lineno+1, err)
		}
		attrs = append(attrs, Attribute{Name: attrName, Kind: kind})
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("schema: no schema sections found")
	}
	return out, nil
}

// ParseSchema parses a Component-I source that must contain exactly one
// schema section.
func ParseSchema(src string) (*Schema, error) {
	ss, err := ParseSchemas(src)
	if err != nil {
		return nil, err
	}
	if len(ss) != 1 {
		return nil, fmt.Errorf("schema: expected 1 schema section, found %d", len(ss))
	}
	return ss[0], nil
}
