package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Value is one attribute value. Integral kinds carry their value in Int,
// floating kinds in Float. The Kind field says which is meaningful.
//
// Value is a small value type (no pointers) so that rows — slices of
// Value — stay allocation-free in the extractor hot path.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
}

// IntValue returns an Int-kind value.
func IntValue(v int64) Value { return Value{Kind: Int, Int: v} }

// LongValue returns a Long-kind value.
func LongValue(v int64) Value { return Value{Kind: Long, Int: v} }

// FloatValue returns a Float-kind value.
func FloatValue(v float64) Value { return Value{Kind: Float, Float: v} }

// DoubleValue returns a Double-kind value.
func DoubleValue(v float64) Value { return Value{Kind: Double, Float: v} }

// KindValue builds a value of the given kind from a float64, truncating
// toward zero for integral kinds.
func KindValue(k Kind, f float64) Value {
	if k.Integral() {
		return Value{Kind: k, Int: int64(f)}
	}
	return Value{Kind: k, Float: f}
}

// AsFloat returns the value as a float64 regardless of kind. This is the
// common currency of predicate evaluation.
func (v Value) AsFloat() float64 {
	if v.Kind.Integral() {
		return float64(v.Int)
	}
	return v.Float
}

// AsInt returns the value as an int64, truncating floats toward zero.
func (v Value) AsInt() int64 {
	if v.Kind.Integral() {
		return v.Int
	}
	return int64(v.Float)
}

// Compare returns -1, 0 or +1 comparing v to w numerically. Integer pairs
// compare exactly; mixed or float pairs compare as float64.
func (v Value) Compare(w Value) int {
	if v.Kind.Integral() && w.Kind.Integral() {
		switch {
		case v.Int < w.Int:
			return -1
		case v.Int > w.Int:
			return 1
		}
		return 0
	}
	a, b := v.AsFloat(), w.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String formats the value for display.
func (v Value) String() string {
	if v.Kind.Integral() {
		return strconv.FormatInt(v.Int, 10)
	}
	return strconv.FormatFloat(v.Float, 'g', -1, 64)
}

// ParseValue parses a literal of the given kind from its text form.
func ParseValue(k Kind, s string) (Value, error) {
	if k.Integral() {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			// Allow "1e3"-style literals for integer attributes.
			f, ferr := strconv.ParseFloat(s, 64)
			if ferr != nil {
				return Value{}, fmt.Errorf("schema: bad %s literal %q: %v", k, s, err)
			}
			n = int64(f)
		}
		return Value{Kind: k, Int: n}, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Value{}, fmt.Errorf("schema: bad %s literal %q: %v", k, s, err)
	}
	return Value{Kind: k, Float: f}, nil
}

// DecodeValue decodes one value of kind k from the start of b, which must
// hold at least k.Size() bytes. Encoding is little-endian, two's
// complement for integers, IEEE-754 for floats — the native layout of the
// scientific datasets the paper targets.
func DecodeValue(k Kind, b []byte) Value {
	switch k {
	case Char:
		return Value{Kind: k, Int: int64(int8(b[0]))}
	case Short:
		return Value{Kind: k, Int: int64(int16(binary.LittleEndian.Uint16(b)))}
	case Int:
		return Value{Kind: k, Int: int64(int32(binary.LittleEndian.Uint32(b)))}
	case Long:
		return Value{Kind: k, Int: int64(binary.LittleEndian.Uint64(b))}
	case Float:
		return Value{Kind: k, Float: float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))}
	case Double:
		return Value{Kind: k, Float: math.Float64frombits(binary.LittleEndian.Uint64(b))}
	}
	panic("schema: DecodeValue on invalid kind")
}

// EncodeValue appends the little-endian encoding of v to dst and returns
// the extended slice.
func EncodeValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case Char:
		return append(dst, byte(int8(v.Int)))
	case Short:
		return binary.LittleEndian.AppendUint16(dst, uint16(int16(v.Int)))
	case Int:
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(v.Int)))
	case Long:
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
	case Float:
		return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v.Float)))
	case Double:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float))
	}
	panic("schema: EncodeValue on invalid kind")
}

// DecodeValueBig is DecodeValue for big-endian data (datasets declared
// with BYTEORDER { BIG }).
func DecodeValueBig(k Kind, b []byte) Value {
	switch k {
	case Char:
		return Value{Kind: k, Int: int64(int8(b[0]))}
	case Short:
		return Value{Kind: k, Int: int64(int16(binary.BigEndian.Uint16(b)))}
	case Int:
		return Value{Kind: k, Int: int64(int32(binary.BigEndian.Uint32(b)))}
	case Long:
		return Value{Kind: k, Int: int64(binary.BigEndian.Uint64(b))}
	case Float:
		return Value{Kind: k, Float: float64(math.Float32frombits(binary.BigEndian.Uint32(b)))}
	case Double:
		return Value{Kind: k, Float: math.Float64frombits(binary.BigEndian.Uint64(b))}
	}
	panic("schema: DecodeValueBig on invalid kind")
}

// EncodeValueBig is EncodeValue for big-endian data.
func EncodeValueBig(dst []byte, v Value) []byte {
	switch v.Kind {
	case Char:
		return append(dst, byte(int8(v.Int)))
	case Short:
		return binary.BigEndian.AppendUint16(dst, uint16(int16(v.Int)))
	case Int:
		return binary.BigEndian.AppendUint32(dst, uint32(int32(v.Int)))
	case Long:
		return binary.BigEndian.AppendUint64(dst, uint64(v.Int))
	case Float:
		return binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(v.Float)))
	case Double:
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float))
	}
	panic("schema: EncodeValueBig on invalid kind")
}

// DecodeValueOrder dispatches on byte order.
func DecodeValueOrder(k Kind, b []byte, big bool) Value {
	if big {
		return DecodeValueBig(k, b)
	}
	return DecodeValue(k, b)
}

// EncodeValueOrder dispatches on byte order.
func EncodeValueOrder(dst []byte, v Value, big bool) []byte {
	if big {
		return EncodeValueBig(dst, v)
	}
	return EncodeValue(dst, v)
}

// DecodeFloat decodes a value of kind k from b directly to float64. It is
// the fast path used by generated extractors for predicate evaluation.
func DecodeFloat(k Kind, b []byte) float64 {
	switch k {
	case Char:
		return float64(int8(b[0]))
	case Short:
		return float64(int16(binary.LittleEndian.Uint16(b)))
	case Int:
		return float64(int32(binary.LittleEndian.Uint32(b)))
	case Long:
		return float64(int64(binary.LittleEndian.Uint64(b)))
	case Float:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	case Double:
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	panic("schema: DecodeFloat on invalid kind")
}
