package metadata

import (
	"strings"
	"testing"
)

// TestXMLRoundTrip converts the paper's descriptors text → AST → XML →
// AST and requires the canonical text forms to match exactly.
func TestXMLRoundTrip(t *testing.T) {
	for _, src := range []string{iparsDescriptor, titanDescriptor} {
		d1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		xmlSrc, err := ToXML(d1)
		if err != nil {
			t.Fatalf("ToXML: %v", err)
		}
		d2, err := ParseXML(xmlSrc)
		if err != nil {
			t.Fatalf("ParseXML: %v\n--- xml ---\n%s", err, xmlSrc)
		}
		if d1.String() != d2.String() {
			t.Errorf("XML round trip changed the descriptor:\n--- original ---\n%s\n--- round-tripped ---\n%s",
				d1.String(), d2.String())
		}
	}
}

func TestXMLStructure(t *testing.T) {
	d, err := Parse(iparsDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	xmlSrc, err := ToXML(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<descriptor>`,
		`<schema name="IPARS">`,
		`<attribute name="REL" type="short int">`,
		`<storage dataset="IparsData" schema="IPARS">`,
		`<dir index="2" node="osu2" path="ipars">`,
		`<dataindex attrs="REL TIME">`,
		`<loop var="GRID" lo="(($DIRID*100)+1)" hi="(($DIRID+1)*100)" step="1">`,
		`<attr name="SOIL">`,
		`<file dir="$DIRID" name="DATA$REL">`,
		`<bind var="REL" lo="0" hi="3" step="1">`,
	} {
		if !strings.Contains(xmlSrc, want) {
			t.Errorf("XML missing %q:\n%s", want, xmlSrc)
		}
	}
}

func TestXMLChunkedRoundTrip(t *testing.T) {
	d, err := Parse(titanDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	xmlSrc, err := ToXML(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xmlSrc, `<chunked attrs="X Y Z S1 S2 S3 S4 S5">`) {
		t.Errorf("missing chunked element:\n%s", xmlSrc)
	}
	if !strings.Contains(xmlSrc, `<indexfile>`) {
		t.Errorf("missing indexfile element:\n%s", xmlSrc)
	}
	if _, err := ParseXML(xmlSrc); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := map[string]string{
		"not xml":        "garbage <<<",
		"no root":        "<other/>",
		"empty":          "<descriptor></descriptor>",
		"bad schema":     `<descriptor><schema name="S"><attribute name="A" type="complex"/></schema></descriptor>`,
		"bad loop":       `<descriptor><schema name="S"><attribute name="A" type="int"/></schema><storage dataset="D" schema="S"><dir index="0" node="n" path="p"/></storage><dataset name="d"><datatype schema="S"/><dataspace><loop var="I" lo="1"><attr name="A"/></loop></dataspace><data><file dir="0" name="f"/></data></dataset></descriptor>`,
		"dangling $":     `<descriptor><schema name="S"><attribute name="A" type="int"/></schema><storage dataset="D" schema="S"><dir index="0" node="n" path="p"/></storage><dataset name="d"><datatype schema="S"/><dataspace><attr name="A"/></dataspace><data><file dir="0" name="f$"/></data></dataset></descriptor>`,
		"dup storage":    `<descriptor><storage dataset="D" schema="S"><dir index="0" node="n"/></storage><storage dataset="D" schema="S"><dir index="0" node="n"/></storage></descriptor>`,
		"gap in dirs":    `<descriptor><schema name="S"><attribute name="A" type="int"/></schema><storage dataset="D" schema="S"><dir index="1" node="n" path="p"/></storage><dataset name="d"><datatype schema="S"/><dataspace><attr name="A"/></dataspace><data><file dir="0" name="f"/></data></dataset></descriptor>`,
		"unvalidatable":  `<descriptor><schema name="S"><attribute name="A" type="int"/></schema><storage dataset="D" schema="NOPE"><dir index="0" node="n" path="p"/></storage><dataset name="d"><datatype schema="S"/><dataspace><attr name="A"/></dataspace><data><file dir="0" name="f"/></data></dataset></descriptor>`,
		"loop sans var":  `<descriptor><schema name="S"><attribute name="A" type="int"/></schema><storage dataset="D" schema="S"><dir index="0" node="n" path="p"/></storage><dataset name="d"><datatype schema="S"/><dataspace><loop lo="0" hi="1"><attr name="A"/></loop></dataspace><data><file dir="0" name="f"/></data></dataset></descriptor>`,
		"double dataset": `<descriptor><schema name="S"><attribute name="A" type="int"/></schema><storage dataset="D" schema="S"><dir index="0" node="n" path="p"/></storage><dataset name="a"><datatype schema="S"/><dataspace><attr name="A"/></dataspace><data><file dir="0" name="f"/></data></dataset><dataset name="b"><datatype schema="S"/><dataspace><attr name="A"/></dataspace><data><file dir="0" name="g"/></data></dataset></descriptor>`,
	}
	for name, src := range bad {
		if _, err := ParseXML(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestXMLCompilesIdentically ensures an XML-loaded descriptor expands
// to the same files as its text twin.
func TestXMLCompilesIdentically(t *testing.T) {
	d1, err := Parse(iparsDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	xmlSrc, err := ToXML(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseXML(xmlSrc)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := ExpandLeaf(d1.Storage, d1.Layout.Children[1])
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ExpandLeaf(d2.Storage, d2.Layout.Children[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) {
		t.Fatalf("file counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].String() != f2[i].String() {
			t.Errorf("file %d: %s vs %s", i, f1[i], f2[i])
		}
	}
}
