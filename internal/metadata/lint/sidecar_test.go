package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
)

// sidecarFixture generates a monolithic layout-I Ipars dataset and
// returns its descriptor path, source text and data root. The
// descriptor declares DATAINDEX { REL TIME } on a DATASPACE leaf whose
// payload stores both, so sidecar coverage applies.
func sidecarFixture(t *testing.T) (descPath, src, root string) {
	t.Helper()
	root = t.TempDir()
	spec := gen.IparsSpec{
		Realizations: 1, TimeSteps: 2, GridPoints: 64, Partitions: 1,
		Attrs: 3, Seed: 7,
	}
	descPath, err := gen.WriteIpars(root, spec, "I")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	return descPath, string(raw), root
}

func TestCheckSidecarsMissing(t *testing.T) {
	descPath, src, root := sidecarFixture(t)
	ds := CheckSidecars(descPath, src, root)
	d := wantDiag(t, ds, "sidecar-missing")
	if d.Severity != SevWarning {
		t.Errorf("severity = %s, want warning", d.Severity)
	}
	if d.Line == 0 {
		t.Errorf("diagnostic has no position: %s", d)
	}
}

func TestCheckSidecarsSatisfied(t *testing.T) {
	descPath, src, root := sidecarFixture(t)
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sparse.BuildDataset(d, sparse.NodeResolver(root), sparse.BuildOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if ds := CheckSidecars(descPath, src, root); len(ds) != 0 {
		t.Errorf("built sidecars still diagnosed: %v", ds)
	}
}

func TestCheckSidecarsUnreadable(t *testing.T) {
	descPath, src, root := sidecarFixture(t)
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sparse.BuildDataset(d, sparse.NodeResolver(root), sparse.BuildOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(root, "node0", "ipars", "alldata"+sparse.Suffix)
	if err := os.WriteFile(scPath, []byte("not a sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds := CheckSidecars(descPath, src, root)
	d2 := wantDiag(t, ds, "sidecar-missing")
	if !strings.Contains(d2.Message, "unreadable") {
		t.Errorf("message %q does not mention unreadable", d2.Message)
	}
}

// TestCheckSidecarsChunkedSkipped confirms chunked leaves are out of
// scope: their DATAINDEX attributes are served by the chunk index.
func TestCheckSidecarsChunkedSkipped(t *testing.T) {
	root := t.TempDir()
	spec := gen.TitanSpec{
		Points: 200, XMax: 100, YMax: 100, ZMax: 10,
		TilesX: 2, TilesY: 2, TilesZ: 1, Nodes: 1, Seed: 7,
	}
	descPath, err := gen.WriteTitan(root, spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(descPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range CheckSidecars(descPath, string(raw), root) {
		if d.Code == "sidecar-missing" {
			t.Errorf("chunked leaf diagnosed: %s", d)
		}
	}
}
