package lint

import (
	"os"
	"path/filepath"
	"testing"

	"datavirt/internal/metadata"
)

// FuzzCheck fuzzes the descriptor parser with the checker as the
// oracle: Check must never panic, must report a syntax diagnostic
// exactly when parsing fails, and — by construction — must report at
// least one error for any descriptor Validate rejects. The seed corpus
// mixes the shipped descriptors with one seed per diagnostic class.
func FuzzCheck(f *testing.F) {
	shipped, _ := filepath.Glob("../../codegen/testdata/*.dvd")
	for _, p := range shipped {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, seed := range []string{
		// syntax
		"Dataset \"x\" {",
		// span-overlap
		header + "Dataset \"d\" {\n DATATYPE { S }\n DATASPACE { LOOP I 0:5:1 { A A } }\n DATA { DIR[0]/f }\n}\n",
		// loop-extent
		header + "Dataset \"d\" {\n DATATYPE { S }\n DATASPACE { LOOP I 5:1:1 { A } }\n DATA { DIR[0]/f }\n}\n",
		// type-conflict
		header + "Dataset \"d\" {\n DATATYPE { S A = int }\n DATASPACE { LOOP I 0:5:1 { A } }\n DATA { DIR[0]/f }\n}\n",
		// attr-unknown
		header + "Dataset \"d\" {\n DATATYPE { S }\n DATASPACE { NOPE }\n DATA { DIR[0]/f }\n}\n",
		// dir-range
		header + "Dataset \"d\" {\n DATATYPE { S }\n DATASPACE { A }\n DATA { DIR[9]/f }\n}\n",
		// file-overlap
		header + "Dataset \"d\" {\n DATATYPE { S }\n DATASPACE { A }\n DATA { DIR[0]/f DIR[0]/f }\n}\n",
		// huge ranges must hit the expansion cap, not hang
		header + "Dataset \"d\" {\n DATATYPE { S }\n DATASPACE { A }\n DATA { DIR[0]/f$I.$J I = 0:99999:1 J = 0:99999:1 }\n}\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ds := Check("fuzz.dvd", src) // must not panic
		_, perr := metadata.ParseUnvalidated(src)
		hasSyntax := false
		for _, d := range ds {
			if d.Code == "syntax" {
				hasSyntax = true
			}
		}
		if (perr != nil) != hasSyntax {
			t.Fatalf("parse err = %v but syntax diagnostic = %v (%v)", perr, hasSyntax, ds)
		}
		if perr != nil {
			return
		}
		if _, err := metadata.Parse(src); err != nil {
			// Validate rejects: the checker must too, either with a
			// positioned error or the coarse validate fallback.
			if !HasErrors(ds) {
				t.Fatalf("Validate rejects (%v) but checker reports no error: %v", err, ds)
			}
		} else {
			for _, d := range ds {
				if d.Code == "validate" {
					t.Fatalf("valid descriptor got validate diagnostic: %v", d)
				}
			}
		}
	})
}
