// Package lint implements the descriptor compile-time checker: the
// "check" stage of the paper's compiler pipeline (parse → check →
// generate index/extractor functions). It analyzes a parsed meta-data
// descriptor WITHOUT touching any data file and reports positioned
// diagnostics (file:line:col) for layout/schema problems that
// internal/metadata.Validate either rejects without a position or does
// not look for at all:
//
//	syntax        (E) the descriptor does not parse
//	validate      (E) a structural rule of Validate fails (coarse
//	                  position; suppressed when a positioned pass below
//	                  already reports an error for the same tree)
//	attr-unknown  (E) DATASPACE/CHUNKED names an attribute that no
//	                  schema or DATATYPE extra declares
//	span-overlap  (E) an attribute is laid out twice in one leaf —
//	                  overlapping DATA spans within the LOOP body
//	loop-extent   (E) a LOOP whose bounds evaluate to an empty range or
//	                  non-positive step, or whose variable collides with
//	                  a file-clause binding of the same leaf
//	dim-mismatch  (W) the same variable iterates with different extents
//	                  in different leaves — LOOP extents inconsistent
//	                  with the dataspace dimensions other leaves declare
//	type-conflict (E) a DATATYPE extra redeclares an attribute with a
//	                  different width/kind than the schema or an
//	                  enclosing DATATYPE
//	attr-unbound  (W) a schema attribute never laid out by any leaf
//	                  (a gap: no DATA span ever binds it)
//	attr-unused   (W) a DATATYPE extra attribute referenced by nothing
//	file-clause   (E) a DATA/INDEXFILE clause cannot be expanded: a
//	                  binding range is empty or has non-positive step,
//	                  or the name/dir template uses an unbound variable
//	dir-range     (E) a file clause selects DIR[i] outside the storage
//	                  description's directory table
//	dir-unused    (W) a storage directory referenced by no layout block
//	file-overlap  (E) two DATA (or two INDEXFILE) clauses expand to the
//	                  same concrete node:path file
//	replica-dup   (E) a DIR replica set (DIR[i] = NODES n1, n2, ...)
//	                  lists the same node twice
//	replica-unknown (W) a DIR replica set names a node that is not the
//	                  primary node of any storage directory
//
// One additional pass, CheckSidecars, is opt-in (dvdesc check -data)
// because it inspects the data directory:
//
//	sidecar-missing (W) an indexed payload attribute has data files
//	                    without a usable sparse block-index sidecar
//
// Diagnostics carry a Severity and a machine-readable Code so dvdesc
// check can emit both human-readable and -json output.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"datavirt/internal/metadata"
)

// Severity classifies a diagnostic. Errors make `dvdesc check` exit
// non-zero; warnings do not.
type Severity string

const (
	// SevError marks a descriptor the generated extractor would
	// misread or fail on.
	SevError Severity = "error"
	// SevWarning marks suspicious but not provably wrong layout.
	SevWarning Severity = "warning"
)

// Diagnostic is one positioned finding. Line/Col are 1-based; 0 means
// the position is unknown (e.g. programmatically built descriptors).
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
}

// String renders the conventional compiler form
// "file:line:col: severity: message [code]".
func (d Diagnostic) String() string {
	pos := d.File
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Message, d.Code)
}

// HasErrors reports whether any diagnostic has error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// WriteJSON writes the diagnostics as a JSON array (machine-readable
// form for -json).
func WriteJSON(w *os.File, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// CheckFile reads and checks one descriptor file. The error is only for
// I/O problems; descriptor problems come back as diagnostics.
func CheckFile(path string) ([]Diagnostic, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Check(path, string(src)), nil
}

var lineRE = regexp.MustCompile(`line (\d+)`)

// Check analyzes one descriptor source and returns its diagnostics,
// sorted by position. It never fails: unparseable input yields a single
// "syntax" diagnostic. It performs no file I/O — bounded expansion of
// the file clauses happens purely over the binding ranges.
func Check(file, src string) []Diagnostic {
	d, err := metadata.ParseUnvalidated(src)
	if err != nil {
		diag := Diagnostic{File: file, Severity: SevError, Code: "syntax", Message: err.Error()}
		// The parser reports "metadata: line N: ..." — recover N.
		if m := lineRE.FindStringSubmatch(err.Error()); m != nil {
			diag.Line, _ = strconv.Atoi(m[1])
			diag.Col = 1
		}
		return []Diagnostic{diag}
	}
	c := &checker{file: file, src: src, desc: d}
	c.run()
	validateErr := metadata.Validate(d)
	if validateErr != nil && !HasErrors(c.diags) {
		// The positioned passes found nothing of error severity, but the
		// structural rules still reject the tree: surface the coarse
		// message so Check never accepts what Parse would not.
		c.report(c.validatePos(validateErr.Error()), SevError, "validate", validateErr.Error())
	}
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return c.diags
}

// validatePos guesses a position for a Validate message by matching the
// dataset name it quotes against the layout tree.
func (c *checker) validatePos(msg string) metadata.Pos {
	if c.desc.Layout == nil {
		return metadata.Pos{}
	}
	var pos metadata.Pos
	var walk func(n *metadata.DatasetNode)
	walk = func(n *metadata.DatasetNode) {
		if pos.IsValid() {
			return
		}
		if n.Name != "" && strings.Contains(msg, fmt.Sprintf("dataset %q", n.Name)) {
			pos = n.Pos
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(c.desc.Layout)
	if !pos.IsValid() {
		pos = c.desc.Layout.Pos
	}
	return pos
}
