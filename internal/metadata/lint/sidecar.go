package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"

	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
)

// CheckSidecarsFile reads one descriptor and runs the opt-in sidecar
// coverage pass against dataRoot. The error is only for I/O problems
// reading the descriptor itself.
func CheckSidecarsFile(path, dataRoot string) ([]Diagnostic, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CheckSidecars(path, string(src), dataRoot), nil
}

// CheckSidecars is the one lint pass that touches the data directory:
// for every non-chunked leaf whose payload stores an effective
// DATAINDEX attribute, it expands the DATA clauses (bounded by
// expandCap, like every other pass) and warns when a concrete data
// file has no usable sparse block-index sidecar covering those
// attributes — the descriptor promises an indexed access path the
// query engine will silently downgrade to a full scan:
//
//	sidecar-missing (W) an indexed payload attribute has data files
//	                    without a sidecar, with an unreadable sidecar,
//	                    or with a sidecar that does not cover it
//
// Chunked leaves are skipped: their DATAINDEX attributes are served by
// the leaf's own spatial chunk index, not by sidecars. A descriptor
// that does not parse yields nothing — Check already reports syntax.
func CheckSidecars(file, src, dataRoot string) []Diagnostic {
	d, err := metadata.ParseUnvalidated(src)
	if err != nil || d.Layout == nil {
		return nil
	}
	// The expander is shared with Check but its diagnostics are not:
	// this checker is a scratch instance whose reports are discarded, so
	// file-clause problems are only ever reported once, by Check.
	scratch := &checker{file: file, src: src, desc: d}
	scratch.usedDirs = map[int]bool{}
	scratch.dims = map[string][]dimRec{}
	scratch.bound = map[string]bool{}
	scratch.referenced = map[string]bool{}

	var diags []Diagnostic
	report := func(pos metadata.Pos, format string, args ...any) {
		c := &checker{file: file}
		c.report(pos, SevWarning, "sidecar-missing", format, args...)
		diags = append(diags, c.diags...)
	}

	var walk func(n *metadata.DatasetNode, indexed []string)
	walk = func(n *metadata.DatasetNode, indexed []string) {
		indexed = append(indexed[:len(indexed):len(indexed)], n.IndexAttrs...)
		if !n.IsLeaf() {
			for _, ch := range n.Children {
				walk(ch, indexed)
			}
			return
		}
		if n.Space == nil || len(n.Chunked) > 0 {
			return
		}
		stored := map[string]bool{}
		var collect func(items []metadata.SpaceItem)
		collect = func(items []metadata.SpaceItem) {
			for _, it := range items {
				switch item := it.(type) {
				case metadata.AttrRef:
					stored[item.Name] = true
				case *metadata.Loop:
					collect(item.Body)
				}
			}
		}
		collect(n.Space.Items)
		// Coverage inside an existing sidecar is only checkable for
		// indexed attributes the payload stores (zone maps summarize
		// stored values); pure loop dimensions like REL/TIME still demand
		// a sidecar, whose zone maps over the stored attributes carry the
		// block-skipping the DATAINDEX declaration promises.
		if len(indexed) == 0 {
			return
		}
		var want []string
		for _, a := range indexed {
			if stored[a] {
				want = append(want, a)
			}
		}

		bindingVars := map[string]metadata.Pos{}
		var total, missing, unreadable int
		uncovered := map[string]bool{}
		for i := range n.Files {
			insts, _ := scratch.expandClause(d.Storage, n, &n.Files[i], bindingVars)
			for _, inst := range insts {
				total++
				node, rel, _ := strings.Cut(inst.key, ":")
				scPath := sparse.SidecarPath(filepath.Join(dataRoot, node, filepath.FromSlash(rel)))
				if _, err := os.Stat(scPath); err != nil {
					missing++
					continue
				}
				sc, err := sparse.ReadFile(scPath)
				if err != nil {
					unreadable++
					continue
				}
				for _, a := range want {
					if sc.Zones(a) == nil {
						uncovered[a] = true
					}
				}
			}
		}
		if total == 0 {
			return
		}
		if missing > 0 {
			report(n.Pos, "dataset %q: %d of %d data files have no sparse index sidecar for indexed attributes %v — queries on them fall back to full scans (build with dvindex)",
				n.Name, missing, total, indexed)
		}
		if unreadable > 0 {
			report(n.Pos, "dataset %q: %d of %d data files have an unreadable sparse index sidecar (rebuild with dvindex)",
				n.Name, unreadable, total)
		}
		if len(uncovered) > 0 {
			attrs := make([]string, 0, len(uncovered))
			for a := range uncovered {
				attrs = append(attrs, a)
			}
			sort.Strings(attrs)
			report(n.Pos, "dataset %q: existing sidecars do not cover indexed attributes %v (rebuild with dvindex)",
				n.Name, attrs)
		}
	}
	walk(d.Layout, nil)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return diags
}
