package lint

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"datavirt/internal/metadata"
	"datavirt/internal/schema"
)

// checker carries one Check invocation's state.
type checker struct {
	file  string
	src   string
	desc  *metadata.Descriptor
	diags []Diagnostic

	// usedDirs marks storage-directory indexes some clause expands to.
	usedDirs map[int]bool
	// dirsUnknowable is set when any clause failed to expand or was
	// truncated at the cap, making dir-unused undecidable.
	dirsUnknowable bool
	// dims collects, per variable, every distinct iteration extent seen
	// (from LOOPs and clause bindings) with the position declaring it.
	dims map[string][]dimRec
	// bound collects every attribute/variable name some leaf lays out.
	bound map[string]bool
	// referenced additionally includes DATAINDEX names (counts as a use
	// for attr-unused, but not as a binding for attr-unbound).
	referenced map[string]bool
}

// dimRec is one observed iteration extent of a variable.
type dimRec struct {
	extent int64
	pos    metadata.Pos
	where  string // "LOOP X in dataset \"d\"" / "binding X in dataset \"d\""
}

func (c *checker) report(pos metadata.Pos, sev Severity, code, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		File: c.file, Line: pos.Line, Col: pos.Col,
		Severity: sev, Code: code, Message: fmt.Sprintf(format, args...),
	})
}

func (c *checker) run() {
	c.usedDirs = map[int]bool{}
	c.dims = map[string][]dimRec{}
	c.bound = map[string]bool{}
	c.referenced = map[string]bool{}

	st := c.desc.Storage
	// seenFiles maps concrete node:path → position of the clause that
	// first produced it, kept separately for data and index files.
	seenData := map[string]metadata.Pos{}
	seenIndex := map[string]metadata.Pos{}

	if c.desc.Layout != nil {
		base := ""
		if st != nil {
			base = st.SchemaName
		}
		c.walkNode(c.desc.Layout, base, nil, seenData, seenIndex)
	}
	c.checkDims()
	c.checkUnboundSchemaAttrs()
	c.checkUnusedDirs()
	c.checkReplicaSets()
}

// checkReplicaSets validates the storage description's DIR replica
// sets: a node listed twice in one set is an error (the coordinator
// would dispatch a failover leg back to the node that just failed),
// and a replica naming a node that is never any directory's primary
// is suspicious — such a node serves legs but owns no partition, so a
// typo here silently removes the redundancy the set was meant to add.
func (c *checker) checkReplicaSets() {
	st := c.desc.Storage
	if st == nil {
		return
	}
	primaries := map[string]bool{}
	for _, e := range st.Dirs {
		primaries[e.Node] = true
	}
	for _, e := range st.Dirs {
		set := e.ReplicaNodes()
		if len(set) < 2 {
			continue
		}
		seen := map[string]bool{}
		for _, n := range set {
			if seen[n] {
				c.report(e.Pos, SevError, "replica-dup",
					"storage [%s]: DIR[%d] lists node %q twice in its replica set",
					st.DatasetName, e.Index, n)
				continue
			}
			seen[n] = true
			if !primaries[n] {
				c.report(e.Pos, SevWarning, "replica-unknown",
					"storage [%s]: DIR[%d] replica set names node %q, which is not the primary node of any storage directory",
					st.DatasetName, e.Index, n)
			}
		}
	}
}

// walkNode descends the layout tree carrying the effective type name
// and the attribute table accumulated so far (nil when unresolvable).
func (c *checker) walkNode(n *metadata.DatasetNode, typeName string, inherited []schema.Attribute, seenData, seenIndex map[string]metadata.Pos) {
	if n.TypeName != "" {
		typeName = n.TypeName
	}
	sch := c.desc.Schema(typeName)

	// type-conflict: an extra redeclaring a known attribute with a
	// different kind changes the attribute's on-disk width mid-tree.
	table := map[string]schema.Kind{}
	declaredBy := map[string]string{}
	if sch != nil {
		for _, a := range sch.Attrs() {
			table[a.Name] = a.Kind
			declaredBy[a.Name] = fmt.Sprintf("schema [%s]", sch.Name())
		}
	}
	for _, a := range inherited {
		table[a.Name] = a.Kind
		declaredBy[a.Name] = "an enclosing DATATYPE"
	}
	for _, a := range n.ExtraAttrs {
		if prev, ok := table[a.Name]; ok && prev != a.Kind {
			c.report(n.Pos, SevError, "type-conflict",
				"dataset %q: DATATYPE redeclares %q as %s (%d bytes) but %s declares it as %s (%d bytes)",
				n.Name, a.Name, a.Kind, a.Kind.Size(), declaredBy[a.Name], prev, prev.Size())
		}
		table[a.Name] = a.Kind
		declaredBy[a.Name] = fmt.Sprintf("DATATYPE of dataset %q", n.Name)
	}
	if sch == nil {
		table = nil // attribute names unresolvable below here
	}

	for _, a := range n.IndexAttrs {
		c.referenced[a] = true
	}

	if !n.IsLeaf() {
		extras := append(append([]schema.Attribute(nil), inherited...), n.ExtraAttrs...)
		for _, ch := range n.Children {
			c.walkNode(ch, typeName, extras, seenData, seenIndex)
		}
		c.checkUnusedExtras(n)
		return
	}
	c.checkLeaf(n, table, seenData, seenIndex)
	c.checkUnusedExtras(n)
}

// checkLeaf runs every per-leaf pass: clause expansion (dir-range,
// file-clause, file-overlap, dims), span overlap, and loop checks.
func (c *checker) checkLeaf(n *metadata.DatasetNode, table map[string]schema.Kind, seenData, seenIndex map[string]metadata.Pos) {
	st := c.desc.Storage

	// Expand the clauses (bounded; no file I/O) and detect two clauses
	// materializing the same concrete file.
	bindingVars := map[string]metadata.Pos{}
	var envs []metadata.Env
	for i := range n.Files {
		fc := &n.Files[i]
		insts, _ := c.expandClause(st, n, fc, bindingVars)
		for _, inst := range insts {
			if prev, ok := seenData[inst.key]; ok {
				c.report(fc.Pos, SevError, "file-overlap",
					"dataset %q: DATA clause produces file %s already produced by the clause at %s",
					n.Name, inst.key, prev)
				break // one report per clause pair
			}
			seenData[inst.key] = fc.Pos
			envs = append(envs, inst.env)
		}
	}
	for i := range n.IndexFiles {
		fc := &n.IndexFiles[i]
		insts, _ := c.expandClause(st, n, fc, bindingVars)
		for _, inst := range insts {
			if prev, ok := seenIndex[inst.key]; ok {
				c.report(fc.Pos, SevError, "file-overlap",
					"dataset %q: INDEXFILE clause produces file %s already produced by the clause at %s",
					n.Name, inst.key, prev)
				break
			}
			seenIndex[inst.key] = fc.Pos
		}
	}
	if len(envs) == 0 {
		envs = []metadata.Env{{}}
	}
	for v := range bindingVars {
		c.bound[v] = true
	}

	// span-overlap / attr-unknown over the dataspace.
	if n.Space != nil {
		seenAttr := map[string]metadata.Pos{}
		c.checkSpaceItems(n, n.Space.Items, table, bindingVars, envs, seenAttr)
	}
	for _, a := range n.Chunked {
		c.bound[a] = true
		if table != nil {
			if _, ok := table[a]; !ok {
				c.report(n.Pos, SevError, "attr-unknown",
					"dataset %q: CHUNKED names unknown attribute %q", n.Name, a)
			}
		}
	}
	if dup := firstDup(n.Chunked); dup != "" {
		c.report(n.Pos, SevError, "span-overlap",
			"dataset %q: CHUNKED lists attribute %q twice", n.Name, dup)
	}
}

// checkSpaceItems walks one dataspace level: records bound attributes,
// flags duplicates (overlapping spans), unknown attributes, loop/binding
// variable collisions, and evaluates loop extents under the leaf's
// file-clause environments.
func (c *checker) checkSpaceItems(n *metadata.DatasetNode, items []metadata.SpaceItem, table map[string]schema.Kind, bindingVars map[string]metadata.Pos, envs []metadata.Env, seenAttr map[string]metadata.Pos) {
	for _, it := range items {
		switch item := it.(type) {
		case metadata.AttrRef:
			c.bound[item.Name] = true
			if prev, ok := seenAttr[item.Name]; ok {
				c.report(item.Pos, SevError, "span-overlap",
					"dataset %q: attribute %q laid out twice in DATASPACE (first at %s) — overlapping DATA spans",
					n.Name, item.Name, prev)
			} else {
				seenAttr[item.Name] = item.Pos
			}
			if table != nil {
				if _, ok := table[item.Name]; !ok {
					c.report(item.Pos, SevError, "attr-unknown",
						"dataset %q: DATASPACE names unknown attribute %q", n.Name, item.Name)
				}
			}
		case *metadata.Loop:
			c.bound[item.Var] = true
			if bpos, ok := bindingVars[item.Var]; ok {
				c.report(item.Pos, SevError, "loop-extent",
					"dataset %q: LOOP variable %q is also bound by the file clause at %s — the loop and the binding would iterate it independently",
					n.Name, item.Var, bpos)
			}
			c.checkLoopExtent(n, item, envs)
			c.checkSpaceItems(n, item.Body, table, bindingVars, envs, seenAttr)
		}
	}
}

// checkLoopExtent evaluates the loop bounds under each file-clause
// environment. Bounds that reference enclosing loop variables cannot be
// evaluated here and are skipped; everything evaluable must give a
// positive step and a non-empty range, and its extent is recorded for
// the cross-leaf dimension-consistency pass.
func (c *checker) checkLoopExtent(n *metadata.DatasetNode, l *metadata.Loop, envs []metadata.Env) {
	reported := false
	for _, env := range envs {
		lo, err1 := l.Lo.Eval(env)
		hi, err2 := l.Hi.Eval(env)
		step, err3 := l.Step.Eval(env)
		if err1 != nil || err2 != nil || err3 != nil {
			continue // depends on an enclosing loop variable
		}
		if reported {
			continue
		}
		switch {
		case step <= 0:
			c.report(l.Pos, SevError, "loop-extent",
				"dataset %q: LOOP %s has non-positive step %d", n.Name, l.Var, step)
			reported = true
		case lo > hi:
			c.report(l.Pos, SevError, "loop-extent",
				"dataset %q: LOOP %s has empty range %d:%d (zero extent)", n.Name, l.Var, lo, hi)
			reported = true
		default:
			c.addDim(l.Var, (hi-lo)/step+1, l.Pos,
				fmt.Sprintf("LOOP %s in dataset %q", l.Var, n.Name))
		}
	}
}

// addDim records one observed iteration extent for a variable.
func (c *checker) addDim(v string, extent int64, pos metadata.Pos, where string) {
	for _, r := range c.dims[v] {
		if r.extent == extent && r.pos == pos {
			return
		}
	}
	c.dims[v] = append(c.dims[v], dimRec{extent, pos, where})
}

// checkDims reports variables whose iteration extent differs between
// declarations: the dataspace dimensions of aligned leaves disagree.
func (c *checker) checkDims() {
	vars := make([]string, 0, len(c.dims))
	for v := range c.dims {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		recs := c.dims[v]
		for _, r := range recs[1:] {
			if r.extent != recs[0].extent {
				c.report(r.pos, SevWarning, "dim-mismatch",
					"variable %q iterates %d values here (%s) but %d values at %s (%s)",
					v, r.extent, r.where, recs[0].extent, recs[0].pos, recs[0].where)
				break
			}
		}
	}
}

// checkUnusedExtras warns about DATATYPE extras nothing ever references.
// Called post-order, so by the time the root is checked every leaf has
// populated bound/referenced.
func (c *checker) checkUnusedExtras(n *metadata.DatasetNode) {
	for _, a := range n.ExtraAttrs {
		if !c.bound[a.Name] && !c.referenced[a.Name] {
			c.report(n.Pos, SevWarning, "attr-unused",
				"dataset %q: DATATYPE extra attribute %q is never laid out or indexed", n.Name, a.Name)
		}
	}
}

// checkUnboundSchemaAttrs warns about virtual-table attributes no leaf
// ever lays out: a query selecting them could never be answered — the
// layout leaves a gap.
func (c *checker) checkUnboundSchemaAttrs() {
	sch := c.desc.TableSchema()
	if sch == nil || c.desc.Layout == nil {
		return
	}
	for _, a := range sch.Attrs() {
		if c.bound[a.Name] {
			continue
		}
		c.report(c.findSchemaAttrPos(sch.Name(), a.Name), SevWarning, "attr-unbound",
			"schema [%s] attribute %q is never bound by any DATA clause, DATASPACE or LOOP — no file provides it",
			sch.Name(), a.Name)
	}
}

// checkUnusedDirs warns about storage directories no clause selects.
// Suppressed when any clause failed to expand (usage is unknowable).
func (c *checker) checkUnusedDirs() {
	st := c.desc.Storage
	if st == nil || c.desc.Layout == nil || c.dirsUnknowable {
		return
	}
	for i, e := range st.Dirs {
		if !c.usedDirs[i] {
			c.report(e.Pos, SevWarning, "dir-unused",
				"storage directory DIR[%d] = %s is referenced by no layout block", i, e.Raw())
		}
	}
}

// findSchemaAttrPos locates "NAME =" inside the "[Schema]" section by
// scanning the raw source (the schema parser does not record positions).
func (c *checker) findSchemaAttrPos(schemaName, attr string) metadata.Pos {
	inSection := false
	for i, line := range strings.Split(c.src, "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "[") && strings.HasSuffix(t, "]") {
			inSection = strings.TrimSpace(t[1:len(t)-1]) == schemaName
			continue
		}
		if !inSection {
			continue
		}
		if name, _, ok := strings.Cut(t, "="); ok && strings.TrimSpace(name) == attr {
			return metadata.Pos{Line: i + 1, Col: strings.Index(line, attr) + 1}
		}
	}
	return metadata.Pos{}
}

// firstDup returns the first string appearing twice in the list.
func firstDup(list []string) string {
	seen := map[string]bool{}
	for _, s := range list {
		if seen[s] {
			return s
		}
		seen[s] = true
	}
	return ""
}

// expandCap bounds clause expansion: the checker inspects at most this
// many concrete files per clause, so huge binding ranges cannot make
// checking (or fuzzing) explode. Past the cap, dir-unused is suppressed.
const expandCap = 512

// fileInst is one concrete file a clause expands to.
type fileInst struct {
	key string // node:path — the file's identity for overlap detection
	env metadata.Env
}

// expandClause enumerates a clause's files up to expandCap, reporting
// file-clause and dir-range diagnostics and recording used directories,
// binding variables and binding extents. It performs no file I/O.
func (c *checker) expandClause(st *metadata.Storage, n *metadata.DatasetNode, fc *metadata.FileClause, bindingVars map[string]metadata.Pos) ([]fileInst, bool) {
	var insts []fileInst
	failed := false
	truncated := false
	var rec func(i int, env metadata.Env) bool
	rec = func(i int, env metadata.Env) bool {
		if len(insts) >= expandCap {
			truncated = true
			return false
		}
		if i == len(fc.Bindings) {
			if st == nil {
				return false
			}
			dv, err := fc.Dir.Eval(env)
			if err != nil {
				failed = true
				c.report(fc.Pos, SevError, "file-clause",
					"dataset %q: directory expression: %v", n.Name, err)
				return false
			}
			if dv < 0 || int(dv) >= len(st.Dirs) {
				failed = true
				c.report(fc.Pos, SevError, "dir-range",
					"dataset %q: DIR[%d] out of range (storage declares %d directories)",
					n.Name, dv, len(st.Dirs))
				return false
			}
			c.usedDirs[int(dv)] = true
			var b strings.Builder
			for _, p := range fc.Name {
				if p.Var == "" {
					b.WriteString(p.Lit)
					continue
				}
				v, ok := env[p.Var]
				if !ok {
					failed = true
					c.report(fc.Pos, SevError, "file-clause",
						"dataset %q: file name uses unbound variable $%s", n.Name, p.Var)
					return false
				}
				b.WriteString(strconv.FormatInt(v, 10))
			}
			e := st.Dirs[dv]
			frozen := make(metadata.Env, len(env))
			for k, v := range env {
				frozen[k] = v
			}
			insts = append(insts, fileInst{key: e.Node + ":" + path.Join(e.Path, b.String()), env: frozen})
			return true
		}
		bind := fc.Bindings[i]
		if _, ok := bindingVars[bind.Var]; !ok {
			bindingVars[bind.Var] = bind.Pos
		}
		lo, err1 := bind.Lo.Eval(env)
		hi, err2 := bind.Hi.Eval(env)
		step, err3 := bind.Step.Eval(env)
		if err := firstErr(err1, err2, err3); err != nil {
			failed = true
			c.report(bind.Pos, SevError, "file-clause",
				"dataset %q: binding %s: %v", n.Name, bind.Var, err)
			return false
		}
		switch {
		case step <= 0:
			failed = true
			c.report(bind.Pos, SevError, "file-clause",
				"dataset %q: binding %s has non-positive step %d", n.Name, bind.Var, step)
			return false
		case lo > hi:
			failed = true
			c.report(bind.Pos, SevError, "file-clause",
				"dataset %q: binding %s has empty range %d:%d", n.Name, bind.Var, lo, hi)
			return false
		}
		c.addDim(bind.Var, (hi-lo)/step+1, bind.Pos,
			fmt.Sprintf("binding %s in dataset %q", bind.Var, n.Name))
		for v := lo; v <= hi; v += step {
			env2 := make(metadata.Env, len(env)+1)
			for k, vv := range env {
				env2[k] = vv
			}
			env2[bind.Var] = v
			if !rec(i+1, env2) {
				return false
			}
		}
		return true
	}
	rec(0, metadata.Env{})
	if failed || truncated || st == nil {
		c.dirsUnknowable = true
	}
	return insts, truncated
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
